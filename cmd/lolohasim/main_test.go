package main

import (
	"testing"

	"github.com/loloha-ldp/loloha/internal/simulation"
)

func TestParseFloats(t *testing.T) {
	def := []float64{1, 2}
	got, err := parseFloats("", def)
	if err != nil || len(got) != 2 || got[0] != 1 {
		t.Errorf("default parse: %v %v", got, err)
	}
	got, err = parseFloats("0.5, 1.5,3", def)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.5, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("parsed %v, want %v", got, want)
		}
	}
	if _, err := parseFloats("0.5,x", def); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFloatHeaders(t *testing.T) {
	h := floatHeaders([]float64{0.5, 1, 2.25})
	want := []string{"0.5", "1", "2.25"}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("headers %v, want %v", h, want)
		}
	}
}

func TestOrderedProtocols(t *testing.T) {
	pts := []simulation.Point{
		{Protocol: "B"}, {Protocol: "A"}, {Protocol: "B"}, {Protocol: "C"},
	}
	got := orderedProtocols(pts)
	want := []string{"B", "A", "C"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order %v, want %v", got, want)
		}
	}
}

func TestRunRejectsUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(nil); err == nil {
		t.Error("missing command accepted")
	}
	if err := run([]string{"fig3", "-eps", "zzz"}); err == nil {
		t.Error("bad eps grid accepted")
	}
}

func TestRunFig1SmokeTest(t *testing.T) {
	// fig1 is closed-form and instant; run it end to end.
	if err := run([]string{"fig1", "-eps", "0.5,1", "-alphas", "0.2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1SmokeTest(t *testing.T) {
	if err := run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}
}
