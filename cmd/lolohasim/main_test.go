package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/simulation"
)

func TestParseFloats(t *testing.T) {
	def := []float64{1, 2}
	got, err := parseFloats("-eps", "", def)
	if err != nil || len(got) != 2 || got[0] != 1 {
		t.Errorf("default parse: %v %v", got, err)
	}
	got, err = parseFloats("-eps", "0.5, 1.5,3", def)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1.5, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("parsed %v, want %v", got, want)
		}
	}
	if _, err := parseFloats("-eps", "0.5,x", def); err == nil {
		t.Error("garbage accepted")
	}
	// The error names the flag and the offending token (here: the empty
	// token of a double comma), not just the bare strconv failure.
	_, err = parseFloats("-alphas", "1,,2", def)
	if err == nil {
		t.Fatal("empty token accepted")
	}
	for _, want := range []string{"-alphas", `""`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

func TestFloatHeaders(t *testing.T) {
	h := floatHeaders([]float64{0.5, 1, 2.25})
	want := []string{"0.5", "1", "2.25"}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("headers %v, want %v", h, want)
		}
	}
}

func TestOrderedProtocols(t *testing.T) {
	pts := []simulation.Point{
		{Protocol: "B"}, {Protocol: "A"}, {Protocol: "B"}, {Protocol: "C"},
	}
	got := orderedProtocols(pts)
	want := []string{"B", "A", "C"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order %v, want %v", got, want)
		}
	}
}

func TestSpecsCommandListsFamilies(t *testing.T) {
	var buf bytes.Buffer
	if err := specsCmd(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LOLOHA", "RAPPOR", "dBitFlipPM", "eps_inf", "-proto"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("specs output missing %q", want)
		}
	}
}

func TestSpecsCommandViaRun(t *testing.T) {
	if err := run([]string{"specs"}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecFileSelection(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 12, N: 10, Tau: 2, Seed: 1})
	path := filepath.Join(t.TempDir(), "specs.json")
	specJSON := `[{"family":"L-GRR","k":12},{"family":"dBitFlipPM","k":12,"b":6,"d":2}]`
	if err := os.WriteFile(path, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	specs, err := specsFor(options{specFile: path}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "L-GRR" || specs[1].Name != "dBitFlipPM" {
		t.Fatalf("spec-file selection = %+v", specs)
	}
	for _, s := range specs {
		// The grid fills the budgets; dBitFlipPM must ignore eps1.
		if _, err := s.Build(ds.K, 2, 1); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}

	// -proto filters the standard set; unknown names enumerate what exists.
	specs, err = specsFor(options{proto: "RAPPOR, BiLOLOHA"}, ds)
	if err != nil || len(specs) != 2 || specs[0].Name != "RAPPOR" || specs[1].Name != "BiLOLOHA" {
		t.Fatalf("-proto selection = %+v, %v", specs, err)
	}
	if _, err := specsFor(options{proto: "nope"}, ds); err == nil || !strings.Contains(err.Error(), "available:") {
		t.Errorf("-proto nope error = %v, want available-protocol list", err)
	}
	if _, err := specsFor(options{proto: "RAPPOR", specFile: path}, ds); err == nil {
		t.Error("-proto and -spec accepted together")
	}
	if _, err := specsFor(options{specFile: filepath.Join(t.TempDir(), "missing.json")}, ds); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestLoadgenPartition(t *testing.T) {
	// The K slices must tile the full ID range exactly: no overlap, no gap,
	// including when K does not divide the user count.
	for _, tc := range []struct {
		users, firstID, k int
	}{
		{100, 0, 2}, {100, 7, 3}, {101, 0, 4}, {5, 2, 5},
	} {
		next := tc.firstID
		for i := 0; i < tc.k; i++ {
			o := loadgenOptions{users: tc.users, firstID: tc.firstID,
				partition: fmt.Sprintf("%d/%d", i, tc.k)}
			if err := o.applyPartition(); err != nil {
				t.Fatalf("partition %d/%d of %d users: %v", i, tc.k, tc.users, err)
			}
			if o.firstID != next {
				t.Fatalf("partition %d/%d starts at %d, want %d (gap or overlap)", i, tc.k, o.firstID, next)
			}
			next = o.firstID + o.users
		}
		if next != tc.firstID+tc.users {
			t.Fatalf("partitions of %d users cover [..%d), want [..%d)", tc.users, next, tc.firstID+tc.users)
		}
	}

	// "0/2" of a single user is the empty slice [0,0): rejected, while the
	// slice that does hold the user works.
	for _, bad := range []string{"x", "1", "2/2", "3/2", "-1/2", "0/0", "0/2"} {
		o := loadgenOptions{users: 1, partition: bad}
		if err := o.applyPartition(); err == nil {
			t.Errorf("partition %q accepted", bad)
		}
	}
	o := loadgenOptions{users: 1, partition: "1/2"}
	if err := o.applyPartition(); err != nil || o.users != 1 || o.firstID != 0 {
		t.Errorf("partition 1/2 of 1 user = %+v, %v", o, err)
	}
}

func TestRunRejectsUnknownCommand(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run(nil); err == nil {
		t.Error("missing command accepted")
	}
	if err := run([]string{"fig3", "-eps", "zzz"}); err == nil {
		t.Error("bad eps grid accepted")
	}
}

func TestRunFig1SmokeTest(t *testing.T) {
	// fig1 is closed-form and instant; run it end to end.
	if err := run([]string{"fig1", "-eps", "0.5,1", "-alphas", "0.2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1SmokeTest(t *testing.T) {
	if err := run([]string{"table1"}); err != nil {
		t.Fatal(err)
	}
}
