// Command lolohasim regenerates every table and figure of the paper's
// evaluation:
//
//	lolohasim fig1                      # optimal g curves (Eq. 6)
//	lolohasim fig2                      # numeric V* comparison
//	lolohasim fig3 -dataset syn         # MSE_avg over τ collections
//	lolohasim fig4 -dataset syn         # averaged longitudinal privacy loss
//	lolohasim table1                    # theoretical comparison
//	lolohasim table2 -dataset syn       # dBitFlipPM change detection
//	lolohasim specs                     # registered protocol families
//	lolohasim loadgen                   # drive a running lolohad daemon
//	lolohasim all                       # everything, all datasets
//
// Flags control the grid (-eps, -alphas), the repetitions (-runs), the
// cohort randomness (-seed), parallelism (-workers for grid cells,
// -shards for intra-collection sharding), protocol selection (-proto for
// a subset of the standard set, -spec for a declarative ProtocolSpec JSON
// file) and CSV output (-csv).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	loloha "github.com/loloha-ldp/loloha"
	"github.com/loloha-ldp/loloha/internal/analysis"
	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/report"
	"github.com/loloha-ldp/loloha/internal/simulation"
)

type options struct {
	dataset    string
	runs       int
	eps        []float64
	alphas     []float64
	n          int
	seed       uint64
	workers    int
	shards     int
	proto      string
	specFile   string
	csvDir     string
	cpuProfile string
	memProfile string
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lolohasim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	cmd := args[0]
	if cmd == "loadgen" {
		// loadgen has its own flag set (daemon address, transport, batch
		// shape) — intercept before the shared experiment flags parse.
		return loadgenCmd(args[1:])
	}

	fs := flag.NewFlagSet("lolohasim", flag.ContinueOnError)
	var o options
	var epsStr, alphaStr string
	var seed64 int64
	fs.StringVar(&o.dataset, "dataset", "all", "dataset: syn, adult, db_mt, db_de or all")
	fs.IntVar(&o.runs, "runs", 3, "repetitions per grid point (paper: 20)")
	fs.StringVar(&epsStr, "eps", "", "comma-separated eps_inf grid (default 0.5..5 step 0.5)")
	fs.StringVar(&alphaStr, "alphas", "", "comma-separated alpha grid (default per figure)")
	fs.IntVar(&o.n, "n", 10000, "cohort size for fig2's numeric variance")
	fs.Int64Var(&seed64, "seed", 42, "experiment seed")
	fs.IntVar(&o.workers, "workers", 0, "parallel cells (0 = GOMAXPROCS)")
	fs.IntVar(&o.shards, "shards", 1, "per-collection user shards, >= 0 (0 or 1 serial; results identical for any value)")
	fs.StringVar(&o.proto, "proto", "", "comma-separated subset of the standard protocols for fig3/fig4 (see `lolohasim specs`)")
	fs.StringVar(&o.specFile, "spec", "", "JSON ProtocolSpec file (object or array) replacing the standard fig3/fig4 protocol set; the grid fills eps_inf/eps1 per cell")
	fs.StringVar(&o.csvDir, "csv", "", "directory to also write CSV results into")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile to this file (pprof format)")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a heap profile to this file on exit (pprof format)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	// Profiles bracket the whole command so a perf regression anywhere in
	// the experiment pipeline — client generation, ingestion, estimation —
	// is diagnosable in place with `go tool pprof`.
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lolohasim: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lolohasim: -memprofile:", err)
			}
		}()
	}
	// Reject rather than silently coerce: a negative count is a typo, and
	// the layers below would quietly serialize the collection.
	if o.shards < 0 {
		return fmt.Errorf("bad -shards: must be >= 0, got %d", o.shards)
	}
	if o.workers < 0 {
		return fmt.Errorf("bad -workers: must be >= 0, got %d", o.workers)
	}
	o.seed = uint64(seed64)

	var err error
	if o.eps, err = parseFloats("-eps", epsStr, analysis.DefaultEpsInfGrid()); err != nil {
		return err
	}
	defAlphas := []float64{0.4, 0.5, 0.6}
	if cmd == "fig1" || cmd == "fig2" {
		defAlphas = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	}
	if o.alphas, err = parseFloats("-alphas", alphaStr, defAlphas); err != nil {
		return err
	}

	switch cmd {
	case "fig1":
		return fig1(o)
	case "fig2":
		return fig2(o)
	case "fig3":
		return overDatasets(o, fig3)
	case "fig4":
		return overDatasets(o, fig4)
	case "table1":
		return table1(o)
	case "table2":
		return overDatasets(o, table2)
	case "ablation":
		return ablation(o)
	case "specs":
		return specsCmd(os.Stdout)
	case "all":
		if err := fig1(o); err != nil {
			return err
		}
		if err := fig2(o); err != nil {
			return err
		}
		if err := table1(o); err != nil {
			return err
		}
		for _, f := range []func(options, *datasets.Dataset) error{fig3, fig4, table2} {
			if err := overDatasets(o, f); err != nil {
				return err
			}
		}
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: lolohasim <command> [flags]
commands:  fig1 fig2 fig3 fig4 table1 table2 ablation specs loadgen all
protocols: %s (-proto; families via 'lolohasim specs')
flags:     -dataset -runs -eps -alphas -n -seed -workers -shards -proto -spec -csv
           -cpuprofile -memprofile
loadgen:   drive a running lolohad daemon ('lolohasim loadgen -h')
`, strings.Join(simulation.StandardSpecNames(), " "))
}

// parseFloats parses a comma-separated float list; errors carry the flag
// name and the offending token rather than a bare strconv message.
func parseFloats(flagName, s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s: token %q: %w", flagName, p, err)
		}
		out = append(out, f)
	}
	return out, nil
}

// specsFor resolves the protocol set for a dataset-driven figure: the
// standard §5.1 specs by default, a -proto subset of them, or the contents
// of a -spec JSON file built through the protocol family registry.
func specsFor(o options, ds *datasets.Dataset) ([]simulation.Spec, error) {
	if o.specFile != "" {
		if o.proto != "" {
			return nil, fmt.Errorf("-proto and -spec are mutually exclusive")
		}
		data, err := os.ReadFile(o.specFile)
		if err != nil {
			return nil, err
		}
		protos, err := loloha.ParseSpecs(data)
		if err != nil {
			return nil, err
		}
		if len(protos) == 0 {
			return nil, fmt.Errorf("-spec %s: no protocol specs in file", o.specFile)
		}
		specs := make([]simulation.Spec, 0, len(protos))
		seen := map[string]int{}
		for _, ps := range protos {
			name := ps.Family
			if seen[name]++; seen[name] > 1 {
				name = fmt.Sprintf("%s#%d", ps.Family, seen[ps.Family])
			}
			specs = append(specs, simulation.Spec{Name: name, Proto: ps})
		}
		return specs, nil
	}
	specs := simulation.StandardSpecs(ds.Name, ds.K)
	if o.proto == "" {
		return specs, nil
	}
	var kept []simulation.Spec
	for _, name := range strings.Split(o.proto, ",") {
		s, err := simulation.SpecByName(ds.Name, ds.K, strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("bad -proto: %w", err)
		}
		kept = append(kept, s)
	}
	return kept, nil
}

// specsCmd prints the registered protocol families with their parameter
// domains: everything a declarative ProtocolSpec (-spec) can build.
func specsCmd(w io.Writer) error {
	fmt.Fprintln(w, "== Registered protocol families (loloha.RegisterFamily) ==")
	tbl := report.NewTable("family", "required", "optional", "description")
	fields := func(fs []loloha.SpecField) string {
		if len(fs) == 0 {
			return "-"
		}
		parts := make([]string, len(fs))
		for i, f := range fs {
			parts[i] = string(f)
		}
		return strings.Join(parts, ",")
	}
	for _, name := range loloha.Families() {
		info, ok := loloha.LookupFamily(name)
		if !ok {
			continue
		}
		doc := info.Doc
		if info.Build == nil {
			doc = strings.TrimSpace(doc + " (decoder-only: not spec-constructible)")
		}
		tbl.AddRow(name, fields(info.Required), fields(info.Optional), doc)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nstandard simulation set (-proto): %s\n",
		strings.Join(simulation.StandardSpecNames(), ", "))
	return nil
}

func overDatasets(o options, f func(options, *datasets.Dataset) error) error {
	names := datasets.Names()
	if o.dataset != "all" {
		names = []string{o.dataset}
	}
	for _, name := range names {
		start := time.Now()
		ds, err := datasets.ByName(name, o.seed)
		if err != nil {
			return err
		}
		fmt.Printf("# dataset %s: k=%d n=%d tau=%d (generated in %v)\n",
			ds.Name, ds.K, ds.N(), ds.Tau(), time.Since(start).Round(time.Millisecond))
		if err := f(o, ds); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figures and tables.

func fig1(o options) error {
	fmt.Println("\n== Fig. 1: optimal g (Eq. 6) by eps_inf and alpha ==")
	pts := analysis.Fig1(o.eps, o.alphas)
	tbl := report.NewTable(append([]string{"alpha \\ eps_inf"}, floatHeaders(o.eps)...)...)
	var csv [][]string
	for _, a := range o.alphas {
		row := []any{fmt.Sprintf("%.1f", a)}
		for _, p := range pts {
			if p.Alpha == a {
				row = append(row, p.OptimalG)
				csv = append(csv, []string{
					fmt.Sprintf("%g", a), fmt.Sprintf("%g", p.EpsInf), strconv.Itoa(p.OptimalG)})
			}
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return writeCSV(o, "fig1.csv", []string{"alpha", "eps_inf", "optimal_g"}, csv)
}

func fig2(o options) error {
	fmt.Printf("\n== Fig. 2: approximate variance V* (Eq. 5), n=%d ==\n", o.n)
	pts, err := analysis.Fig2(o.n, o.eps, o.alphas)
	if err != nil {
		return err
	}
	var csv [][]string
	for _, a := range o.alphas {
		fmt.Printf("\n-- eps1 = %.1f * eps_inf --\n", a)
		tbl := report.NewTable(append([]string{"protocol"}, floatHeaders(o.eps)...)...)
		for _, proto := range analysis.Fig2Protocols {
			row := []any{proto}
			for _, p := range pts {
				if p.Protocol == proto && p.Alpha == a {
					row = append(row, p.VStar)
					csv = append(csv, []string{proto,
						fmt.Sprintf("%g", a), fmt.Sprintf("%g", p.EpsInf),
						strconv.FormatFloat(p.VStar, 'e', 6, 64)})
				}
			}
			tbl.AddRow(row...)
		}
		if err := tbl.Render(os.Stdout); err != nil {
			return err
		}
	}
	return writeCSV(o, "fig2.csv", []string{"protocol", "alpha", "eps_inf", "v_star"}, csv)
}

func fig3(o options, ds *datasets.Dataset) error {
	fmt.Printf("\n== Fig. 3 (%s): MSE_avg (Eq. 7), runs=%d ==\n", ds.Name, o.runs)
	specs, err := specsFor(o, ds)
	if err != nil {
		return err
	}
	// The paper omits dBitFlipPM from the MSE plots when b < k (bucket
	// histograms are not comparable to k-bin ones). An explicit -proto or
	// -spec selection is honored as given.
	if o.proto == "" && o.specFile == "" && (ds.Name == "db_mt" || ds.Name == "db_de") {
		var kept []simulation.Spec
		for _, s := range specs {
			if !strings.Contains(s.Name, "BitFlipPM") {
				kept = append(kept, s)
			}
		}
		specs = kept
		fmt.Println("(dBitFlipPM omitted: b = k/4 estimates a different histogram)")
	}
	pts, err := simulation.RunMSE(ds, specs, gridConfig(o))
	if err != nil {
		return err
	}
	printPoints(pts, o, "mse_avg")
	return writePointsCSV(o, fmt.Sprintf("fig3_%s.csv", ds.Name), pts, "mse_avg")
}

func fig4(o options, ds *datasets.Dataset) error {
	fmt.Printf("\n== Fig. 4 (%s): averaged longitudinal privacy loss (Eq. 8), runs=%d ==\n",
		ds.Name, o.runs)
	specs, err := specsFor(o, ds)
	if err != nil {
		return err
	}
	pts, err := simulation.RunPrivacyLoss(ds, specs, gridConfig(o))
	if err != nil {
		return err
	}
	printPoints(pts, o, "eps_avg")
	return writePointsCSV(o, fmt.Sprintf("fig4_%s.csv", ds.Name), pts, "eps_avg")
}

func table1(o options) error {
	fmt.Println("\n== Table 1: theoretical comparison (k=360, g=4, b=90, d=4 example) ==")
	rows := analysis.Table1(360, 4, 90, 4)
	tbl := report.NewTable("protocol", "comm bits/step", "(formula)", "server time", "budget / eps_inf", "(formula)")
	var csv [][]string
	for _, r := range rows {
		tbl.AddRow(r.Protocol, r.CommBits, r.CommFormula, r.ServerTime, r.BudgetUnits, r.BudgetFormula)
		csv = append(csv, []string{r.Protocol, strconv.Itoa(r.CommBits), r.CommFormula,
			r.ServerTime, strconv.Itoa(r.BudgetUnits), r.BudgetFormula})
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return writeCSV(o, "table1.csv",
		[]string{"protocol", "comm_bits", "comm_formula", "server_time", "budget_units", "budget_formula"}, csv)
}

func table2(o options, ds *datasets.Dataset) error {
	fmt.Printf("\n== Table 2 (%s): %% users with all bucket changes detected (dBitFlipPM) ==\n", ds.Name)
	b := ds.K
	if ds.Name == "db_mt" || ds.Name == "db_de" {
		b = ds.K / 4
	}
	cfg := gridConfig(o)
	cfg.Alphas = []float64{0.5} // unused by dBitFlipPM
	pts, err := simulation.RunDetection(ds, b, []int{1, b}, cfg)
	if err != nil {
		return err
	}
	tbl := report.NewTable("eps_inf", "d=1", fmt.Sprintf("d=b (%d)", b))
	var csv [][]string
	for _, e := range o.eps {
		row := []any{fmt.Sprintf("%.1f", e)}
		for _, p := range pts {
			if p.EpsInf == e {
				row = append(row, fmt.Sprintf("%.4f%%", p.Mean*100))
				csv = append(csv, []string{ds.Name, fmt.Sprintf("%g", e), p.Protocol,
					strconv.FormatFloat(p.Mean, 'f', 6, 64)})
			}
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return writeCSV(o, fmt.Sprintf("table2_%s.csv", ds.Name),
		[]string{"dataset", "eps_inf", "d", "fully_detected_rate"}, csv)
}

func ablation(o options) error {
	fmt.Printf("\n== Ablation: paper vs exact IRR calibration (V*, n=%d) ==\n", o.n)
	fmt.Println("(the paper's Algorithm 1 εIRR is tight for g=2, conservative for g>2;")
	fmt.Println(" the exact g-ary calibration recovers the slack at identical ε1)")
	tbl := report.NewTable("eps_inf", "alpha", "g", "V* paper", "V* exact", "improvement")
	var csv [][]string
	for _, e := range o.eps {
		for _, a := range o.alphas {
			eps1 := a * e
			for _, g := range []int{2, 4, 8, 16} {
				vPaper, err := analysis.VStarLOLOHA(e, eps1, g, o.n)
				if err != nil {
					continue
				}
				vExact, err := analysis.VStarLOLOHAExactIRR(e, eps1, g, o.n)
				if err != nil {
					continue
				}
				imp := 1 - vExact/vPaper
				tbl.AddRow(fmt.Sprintf("%.1f", e), fmt.Sprintf("%.1f", a), g,
					vPaper, vExact, fmt.Sprintf("%.2f%%", imp*100))
				csv = append(csv, []string{
					fmt.Sprintf("%g", e), fmt.Sprintf("%g", a), strconv.Itoa(g),
					strconv.FormatFloat(vPaper, 'e', 6, 64),
					strconv.FormatFloat(vExact, 'e', 6, 64),
					strconv.FormatFloat(imp, 'f', 6, 64),
				})
			}
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	return writeCSV(o, "ablation_irr.csv",
		[]string{"eps_inf", "alpha", "g", "v_paper", "v_exact", "improvement"}, csv)
}

// ---------------------------------------------------------------------------
// Output plumbing.

func gridConfig(o options) simulation.Config {
	return simulation.Config{
		EpsInfs: o.eps,
		Alphas:  o.alphas,
		Runs:    o.runs,
		Seed:    o.seed,
		Workers: o.workers,
		Shards:  o.shards,
	}
}

func printPoints(pts []simulation.Point, o options, metric string) {
	for _, a := range o.alphas {
		fmt.Printf("\n-- eps1 = %.1f * eps_inf (%s) --\n", a, metric)
		tbl := report.NewTable(append([]string{"protocol"}, floatHeaders(o.eps)...)...)
		protos := orderedProtocols(pts)
		for _, proto := range protos {
			row := []any{proto}
			for _, e := range o.eps {
				cell := "-"
				for _, p := range pts {
					if p.Protocol == proto && p.Alpha == a && p.EpsInf == e {
						if p.Err != nil {
							cell = "err"
						} else {
							cell = report.FormatFloat(p.Mean)
						}
					}
				}
				row = append(row, cell)
			}
			tbl.AddRow(row...)
		}
		tbl.Render(os.Stdout)
	}
}

func orderedProtocols(pts []simulation.Point) []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range pts {
		if !seen[p.Protocol] {
			seen[p.Protocol] = true
			out = append(out, p.Protocol)
		}
	}
	return out
}

func writePointsCSV(o options, name string, pts []simulation.Point, metric string) error {
	var rows [][]string
	for _, p := range pts {
		if p.Err != nil {
			continue
		}
		rows = append(rows, []string{
			p.Dataset, p.Protocol,
			fmt.Sprintf("%g", p.EpsInf), fmt.Sprintf("%g", p.Alpha),
			strconv.FormatFloat(p.Mean, 'e', 6, 64),
			strconv.FormatFloat(p.Std, 'e', 6, 64),
			strconv.Itoa(p.Runs),
		})
	}
	return writeCSV(o, name,
		[]string{"dataset", "protocol", "eps_inf", "alpha", metric, "std", "runs"}, rows)
}

func writeCSV(o options, name string, header []string, rows [][]string) error {
	if o.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(o.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteCSV(f, header, rows); err != nil {
		return err
	}
	fmt.Printf("(csv written to %s)\n", filepath.Join(o.csvDir, name))
	return nil
}

func floatHeaders(fs []float64) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = strconv.FormatFloat(f, 'g', -1, 64)
	}
	return out
}
