package main

// loadgen drives a running lolohad daemon with synthetic users: it reads
// the daemon's protocol spec from /v1/status, builds the same protocol
// locally, enrolls -users clients and pushes -rounds rounds of reports
// over HTTP batch bodies, raw TCP frames, or (-columnar) columnar batches
// on either transport.
//
//	lolohad -spec '{"family":"LOLOHA","k":100,"g":2,"eps_inf":2,"eps1":1}' -tcp :9090 &
//	lolohasim loadgen -addr http://127.0.0.1:8080 -users 10000
//	lolohasim loadgen -addr http://127.0.0.1:8080 -tcp 127.0.0.1:9090
//	lolohasim loadgen -addr http://127.0.0.1:8080 -tcp 127.0.0.1:9090 -columnar

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/netserver"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

type loadgenOptions struct {
	addr      string
	tcpAddr   string
	users     int
	firstID   int
	partition string
	rounds    int
	batch     int
	workers   int
	seed      uint64
	closeEach bool
	columnar  bool
}

// applyPartition narrows the run to slice i of K ("-partition i/K"): the
// user range becomes the i-th of K near-equal blocks of the full range.
// Client seeds and report values are keyed on the absolute user ID and
// round, so K partitioned runs (one per collector-tree leaf) ship exactly
// the reports one full run would — no overlap, nothing missed.
func (o *loadgenOptions) applyPartition() error {
	if o.partition == "" {
		return nil
	}
	var i, k int
	if n, err := fmt.Sscanf(o.partition, "%d/%d", &i, &k); err != nil || n != 2 {
		return fmt.Errorf("loadgen: -partition %q: want i/K, e.g. 0/2", o.partition)
	}
	if k <= 0 || i < 0 || i >= k {
		return fmt.Errorf("loadgen: -partition %q: need 0 <= i < K", o.partition)
	}
	lo, hi := o.firstID+i*o.users/k, o.firstID+(i+1)*o.users/k
	if lo == hi {
		return fmt.Errorf("loadgen: -partition %s of %d users is empty", o.partition, o.users)
	}
	o.firstID, o.users = lo, hi-lo
	return nil
}

func loadgenCmd(args []string) error {
	fs := flag.NewFlagSet("lolohasim loadgen", flag.ContinueOnError)
	var o loadgenOptions
	var seed64 int64
	fs.StringVar(&o.addr, "addr", "http://127.0.0.1:8080", "daemon HTTP base URL (spec discovery, enrollment, round control)")
	fs.StringVar(&o.tcpAddr, "tcp", "", "daemon raw-frame TCP address; when set, enrollment and reports go over TCP frames instead of HTTP")
	fs.IntVar(&o.users, "users", 10_000, "synthetic users to enroll")
	fs.IntVar(&o.firstID, "firstid", 0, "first user ID (separate runs against one daemon need disjoint ID ranges)")
	fs.StringVar(&o.partition, "partition", "", "drive only slice i/K of the user range (collector-tree leaves: one loadgen per leaf, same -users and -seed)")
	fs.IntVar(&o.rounds, "rounds", 5, "collection rounds to push")
	fs.IntVar(&o.batch, "batch", 1024, "reports per batch body (HTTP and columnar)")
	fs.BoolVar(&o.columnar, "columnar", false, "push reports as columnar batches (columnar TCP frames / "+netserver.ContentTypeColumnar+" bodies)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent connections (0 = GOMAXPROCS)")
	fs.Int64Var(&seed64, "seed", 42, "client randomness seed")
	fs.BoolVar(&o.closeEach, "close", true, "close the daemon's round after each pushed round")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o.seed = uint64(seed64)
	if o.users <= 0 || o.rounds <= 0 || o.batch <= 0 {
		return fmt.Errorf("loadgen: -users, -rounds and -batch must be positive")
	}
	if o.firstID < 0 {
		return fmt.Errorf("loadgen: -firstid must be non-negative")
	}
	if err := o.applyPartition(); err != nil {
		return err
	}
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	if o.workers > o.users {
		o.workers = o.users
	}
	return loadgen(o)
}

func loadgen(o loadgenOptions) error {
	proto, baseRounds, err := discoverProtocol(o.addr)
	if err != nil {
		return err
	}
	k := proto.K()
	fmt.Printf("loadgen: %s (k=%d), %d users x %d rounds over %s, %d workers\n",
		proto.Name(), k, o.users, o.rounds, transportName(o), o.workers)

	// Each worker owns a contiguous user block end to end: its clients,
	// its connection, its reusable buffers.
	type result struct {
		sent, rejected uint64
		err            error
	}
	results := make([]result, o.workers)
	var wg sync.WaitGroup
	var barrier sync.WaitGroup // all workers finish a round before it closes

	start := time.Now()
	rounds := make([]chan int, o.workers)
	for w := range rounds {
		rounds[w] = make(chan int)
	}
	for w := 0; w < o.workers; w++ {
		lo, hi := o.firstID+w*o.users/o.workers, o.firstID+(w+1)*o.users/o.workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// A worker that dies early must keep the round barrier moving,
			// or the coordinator deadlocks sending it rounds: drain the
			// channel and count each skipped round off the barrier.
			defer func() {
				for range rounds[w] {
					barrier.Done()
				}
			}()
			res := &results[w]
			clients := make([]longitudinal.AppendReporter, hi-lo)
			for i := range clients {
				cl, ok := proto.NewClient(o.seed + uint64(lo+i)).(longitudinal.AppendReporter)
				if !ok {
					res.err = fmt.Errorf("%s client lacks the append fast path", proto.Name())
					return
				}
				clients[i] = cl
			}
			var push pusher
			if o.columnar {
				push, res.err = newColumnarPusher(o, proto)
			} else if o.tcpAddr != "" {
				push, res.err = newTCPPusher(o.tcpAddr)
			} else {
				push, res.err = newHTTPPusher(o.addr, o.batch)
			}
			if res.err != nil {
				return
			}
			defer push.close()
			if res.err = push.enroll(lo, clients); res.err != nil {
				return
			}
			for round := range rounds[w] {
				var payload []byte
				for i, cl := range clients {
					u := lo + i
					v := int(randsrc.Mix64(o.seed^uint64(u)<<20^uint64(round)) % uint64(k))
					payload = cl.AppendReport(payload[:0], v)
					if err := push.report(u, payload); err != nil {
						res.err = err
						break
					}
				}
				sent, rejected, err := push.flush()
				res.sent += sent
				res.rejected += rejected
				if res.err == nil {
					res.err = err
				}
				barrier.Done()
			}
		}(w, lo, hi)
	}

	for round := 0; round < o.rounds; round++ {
		barrier.Add(o.workers)
		for w := range rounds {
			rounds[w] <- round
		}
		barrier.Wait()
		for w := range results {
			if results[w].err != nil {
				stopWorkers(rounds)
				wg.Wait()
				return fmt.Errorf("worker %d: %w", w, results[w].err)
			}
		}
		if o.closeEach {
			reports, err := closeRound(o.addr)
			if err != nil {
				stopWorkers(rounds)
				wg.Wait()
				return err
			}
			fmt.Printf("loadgen: round %d closed with %d reports\n", round, reports)
		} else if round < o.rounds-1 {
			// The daemon owns round closure (its -round timer or another
			// operator); pushing the next round before this one closes
			// would only produce duplicate rejections, so wait for the
			// round counter to advance.
			if err := waitForRound(o.addr, baseRounds+round+1); err != nil {
				stopWorkers(rounds)
				wg.Wait()
				return err
			}
		}
	}
	stopWorkers(rounds)
	wg.Wait()

	var sent, rejected uint64
	for _, r := range results {
		sent += r.sent
		rejected += r.rejected
	}
	elapsed := time.Since(start)
	fmt.Printf("loadgen: %d reports (%d rejected) in %s — %.0f reports/s\n",
		sent, rejected, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds())
	if rejected > 0 {
		return fmt.Errorf("loadgen: daemon rejected %d reports", rejected)
	}
	return nil
}

func stopWorkers(rounds []chan int) {
	for _, ch := range rounds {
		close(ch)
	}
}

func transportName(o loadgenOptions) string {
	name := o.addr
	if o.tcpAddr != "" {
		name = "tcp://" + o.tcpAddr
	}
	if o.columnar {
		name += " (columnar)"
	}
	return name
}

// discoverProtocol builds the daemon's protocol locally from the spec it
// publishes on /v1/status, so client and server agree by construction. It
// also returns the daemon's published round count, the baseline for
// daemon-paced runs.
func discoverProtocol(addr string) (longitudinal.Protocol, int, error) {
	st, err := fetchStatus(addr)
	if err != nil {
		return nil, 0, err
	}
	if st.Spec == nil {
		return nil, 0, fmt.Errorf("loadgen: daemon protocol %q publishes no buildable spec", st.Protocol)
	}
	proto, err := st.Spec.Build()
	if err != nil {
		return nil, 0, fmt.Errorf("loadgen: building daemon spec: %w", err)
	}
	return proto, st.Rounds, nil
}

type daemonStatus struct {
	Protocol string                     `json:"protocol"`
	Spec     *longitudinal.ProtocolSpec `json:"spec"`
	Rounds   int                        `json:"rounds"`
}

func fetchStatus(addr string) (daemonStatus, error) {
	var st daemonStatus
	resp, err := http.Get(addr + "/v1/status")
	if err != nil {
		return st, fmt.Errorf("loadgen: %w", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("loadgen: decoding /v1/status: %w", err)
	}
	return st, nil
}

// waitForRound polls until the daemon has published at least `rounds`
// rounds.
func waitForRound(addr string, rounds int) error {
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := fetchStatus(addr)
		if err != nil {
			return err
		}
		if st.Rounds >= rounds {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: daemon stuck at %d rounds waiting for %d — is its -round timer on?", st.Rounds, rounds)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func closeRound(addr string) (int, error) {
	resp, err := http.Post(addr+"/v1/round/close", "application/json", http.NoBody)
	if err != nil {
		return 0, fmt.Errorf("loadgen: closing round: %w", err)
	}
	defer resp.Body.Close()
	var round struct {
		Round   int `json:"round"`
		Reports int `json:"reports"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&round); err != nil {
		return 0, fmt.Errorf("loadgen: decoding round result: %w", err)
	}
	return round.Reports, nil
}

// pusher is one worker's transport: enroll its users once, then stream
// reports with batching left to the implementation. flush pushes out any
// buffered reports and returns what the daemon acknowledged.
type pusher interface {
	enroll(firstID int, clients []longitudinal.AppendReporter) error
	report(userID int, payload []byte) error
	flush() (sent, rejected uint64, err error)
	close()
}

// ---------------------------------------------------------------------------
// HTTP transport: JSON enrollment, binary batch bodies.

type httpPusher struct {
	base     string
	client   *http.Client
	body     []byte
	batch    int
	buffered int
	sent     uint64
	rejected uint64
}

func newHTTPPusher(base string, batch int) (pusher, error) {
	return &httpPusher{base: base, client: http.DefaultClient, batch: batch}, nil
}

func (p *httpPusher) enroll(firstID int, clients []longitudinal.AppendReporter) error {
	for i, cl := range clients {
		reg := cl.WireRegistration()
		body, err := json.Marshal(map[string]any{
			"user_id":   firstID + i,
			"hash_seed": reg.HashSeed,
			"sampled":   reg.Sampled,
		})
		if err != nil {
			return err
		}
		resp, err := p.client.Post(p.base+"/v1/enroll", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		// 409 means already enrolled with the same metadata on a rerun
		// against a live daemon — only a changed registration is fatal,
		// and the daemon reports that as 409 too; treat both as fatal to
		// keep reruns honest.
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("enroll user %d: HTTP %d", firstID+i, resp.StatusCode)
		}
	}
	return nil
}

func (p *httpPusher) report(userID int, payload []byte) error {
	p.body = netserver.AppendBatchRecord(p.body, userID, payload)
	p.buffered++
	if p.buffered >= p.batch {
		return p.post()
	}
	return nil
}

func (p *httpPusher) post() error {
	if p.buffered == 0 {
		return nil
	}
	if err := p.postReports("application/octet-stream", p.body); err != nil {
		return err
	}
	p.body = p.body[:0]
	p.buffered = 0
	return nil
}

// postReports POSTs one /v1/reports body of the given content type and
// folds the daemon's accounting into the pusher's counters.
func (p *httpPusher) postReports(contentType string, body []byte) error {
	resp, err := p.client.Post(p.base+"/v1/reports", contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var got struct {
		Received int `json:"received"`
		Rejected int `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("batch POST: HTTP %d", resp.StatusCode)
	}
	p.sent += uint64(got.Received)
	p.rejected += uint64(got.Rejected)
	return nil
}

func (p *httpPusher) flush() (uint64, uint64, error) {
	err := p.post()
	sent, rejected := p.sent, p.rejected
	p.sent, p.rejected = 0, 0
	return sent, rejected, err
}

func (p *httpPusher) close() {}

// ---------------------------------------------------------------------------
// TCP transport: enroll and report frames, flush as the sync point.

type tcpPusher struct {
	conn     net.Conn
	buf      []byte
	acked    netserver.Ack // counters are connection-lifetime; diff per flush
	enrolled int
}

func newTCPPusher(addr string) (pusher, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpPusher{conn: conn}, nil
}

func (p *tcpPusher) enroll(firstID int, clients []longitudinal.AppendReporter) error {
	p.buf = p.buf[:0]
	for i, cl := range clients {
		var err error
		if p.buf, err = netserver.AppendEnrollFrame(p.buf, firstID+i, cl.WireRegistration()); err != nil {
			return err
		}
	}
	if _, err := p.conn.Write(netserver.AppendFlushFrame(p.buf)); err != nil {
		return err
	}
	ack, err := netserver.ReadAck(p.conn)
	if err != nil {
		return err
	}
	if ack.EnrollRejected > 0 {
		return fmt.Errorf("daemon rejected %d enrollments", ack.EnrollRejected)
	}
	p.buf = p.buf[:0]
	p.acked = ack
	p.enrolled = len(clients)
	return nil
}

func (p *tcpPusher) report(userID int, payload []byte) error {
	p.buf = netserver.AppendReportFrame(p.buf, userID, payload)
	// One TCP write per ~64 KiB keeps syscall overhead off the clock
	// without a second buffering layer.
	if len(p.buf) >= 64<<10 {
		if _, err := p.conn.Write(p.buf); err != nil {
			return err
		}
		p.buf = p.buf[:0]
	}
	return nil
}

func (p *tcpPusher) flush() (uint64, uint64, error) {
	if _, err := p.conn.Write(netserver.AppendFlushFrame(p.buf)); err != nil {
		return 0, 0, err
	}
	p.buf = p.buf[:0]
	ack, err := netserver.ReadAck(p.conn)
	if err != nil {
		return 0, 0, err
	}
	sent := ack.Reports - p.acked.Reports
	rejected := ack.ReportRejected - p.acked.ReportRejected
	p.acked = ack
	return sent, rejected, nil
}

func (p *tcpPusher) close() { p.conn.Close() }

// ---------------------------------------------------------------------------
// Columnar transport: enrollment rides the per-report paths (JSON or
// enroll frames), reports ship as columnar batches — the daemon's
// decode-free fast path.

// newColumnarPusher wraps the transport selected by -tcp with a columnar
// report encoder sized to -batch.
func newColumnarPusher(o loadgenOptions, proto longitudinal.Protocol) (pusher, error) {
	stride, ok := longitudinal.ColumnarStrideOf(proto)
	if !ok {
		return nil, fmt.Errorf("%s has no columnar tallier; drop -columnar", proto.Name())
	}
	w, err := longitudinal.NewColumnarWriter(longitudinal.SpecHashOf(proto), stride)
	if err != nil {
		return nil, err
	}
	if o.tcpAddr != "" {
		inner, err := newTCPPusher(o.tcpAddr)
		if err != nil {
			return nil, err
		}
		return &tcpColumnarPusher{tcpPusher: inner.(*tcpPusher), w: w, batch: o.batch}, nil
	}
	inner, err := newHTTPPusher(o.addr, o.batch)
	if err != nil {
		return nil, err
	}
	return &httpColumnarPusher{httpPusher: inner.(*httpPusher), w: w}, nil
}

type httpColumnarPusher struct {
	*httpPusher // JSON enrollment and /v1/reports accounting
	w           *longitudinal.ColumnarWriter
	enc         []byte
}

func (p *httpColumnarPusher) report(userID int, payload []byte) error {
	if err := p.w.Add(userID, payload); err != nil {
		return err
	}
	if p.w.Count() >= p.batch {
		return p.post()
	}
	return nil
}

func (p *httpColumnarPusher) post() error {
	if p.w.Count() == 0 {
		return nil
	}
	p.enc = p.w.AppendTo(p.enc[:0])
	p.w.Reset()
	return p.postReports(netserver.ContentTypeColumnar, p.enc)
}

func (p *httpColumnarPusher) flush() (uint64, uint64, error) {
	err := p.post()
	sent, rejected := p.sent, p.rejected
	p.sent, p.rejected = 0, 0
	return sent, rejected, err
}

type tcpColumnarPusher struct {
	*tcpPusher // enroll frames, flush barrier, ack accounting
	w          *longitudinal.ColumnarWriter
	batch      int
	enc        []byte
}

func (p *tcpColumnarPusher) report(userID int, payload []byte) error {
	if err := p.w.Add(userID, payload); err != nil {
		return err
	}
	if p.w.Count() < p.batch {
		return nil
	}
	return p.emit()
}

func (p *tcpColumnarPusher) emit() error {
	if p.w.Count() == 0 {
		return nil
	}
	p.enc = p.w.AppendTo(p.enc[:0])
	p.w.Reset()
	p.buf = netserver.AppendColumnarFrame(p.buf, p.enc)
	if len(p.buf) >= 64<<10 {
		if _, err := p.conn.Write(p.buf); err != nil {
			return err
		}
		p.buf = p.buf[:0]
	}
	return nil
}

func (p *tcpColumnarPusher) flush() (uint64, uint64, error) {
	if err := p.emit(); err != nil {
		return 0, 0, err
	}
	return p.tcpPusher.flush()
}
