// Command lolohad is the networked collection daemon: one server.Stream
// behind real sockets, with durable state and an optional collector tree.
//
//	lolohad -spec '{"family":"LOLOHA","k":100,"g":2,"eps_inf":2,"eps1":1}'
//	lolohad -spec spec.json -http :8080 -tcp :9090 -round 10s
//	lolohad -spec spec.json -snapshot-dir /var/lib/loloha -snapshot-every 30s
//	lolohad -spec spec.json -mode root -tcp :9090
//	lolohad -spec spec.json -mode leaf -parent root:9090 -round 10s
//
// HTTP serves the v1 API (enrollment, batched report ingestion, round
// control, status, a live SSE round stream) and an embedded dashboard at
// /. The optional raw-TCP listener ingests length-prefixed report frames
// on the zero-allocation decode→tally path — the transport for load
// generators and high-volume collectors (`lolohasim loadgen` drives
// either). Rounds close on the -round period when reports are pending, or
// on demand via POST /v1/round/close.
//
// Durability: with -snapshot-dir the daemon writes its full state (tally
// vectors, registration table, round index) as an atomically-replaced
// LSS1 image — periodically with -snapshot-every and always on SIGTERM /
// SIGINT after draining in-flight batches — and restores it at startup,
// refusing an image written under a different protocol spec.
//
// Collector tree: -mode root accepts merge traffic (TCP merge frames and
// POST /v1/merge); -mode leaf -parent host:port -leaf-id name ships every
// closed round's tallies upstream as a merge envelope, making the root's
// rounds bit-identical to a single daemon that saw all reports. Delivery
// is exactly-once: the root deduplicates per (-leaf-id, sequence) in a
// durable ledger, and a leaf with -snapshot-dir spools unshipped
// envelopes to disk and replays them after a crash. -round-deadline,
// -quorum and -expect-leaves let a root publish partial rounds instead of
// stalling on a dead leaf.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	// Registers the LOLOHA/BiLOLOHA/OLOLOHA families; the baseline
	// families register from longitudinal itself.
	_ "github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lolohad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lolohad", flag.ContinueOnError)
	var o daemonOptions
	fs.StringVar(&o.spec, "spec", "", "protocol: inline ProtocolSpec JSON (starts with '{') or a path to a spec file (required)")
	fs.StringVar(&o.mode, "mode", "single", "daemon role: single, root (accepts merge traffic) or leaf (ships closed rounds to -parent)")
	fs.StringVar(&o.parent, "parent", "", "collector-tree parent: raw-frame TCP host:port or http(s):// URL (required with -mode leaf)")
	fs.StringVar(&o.leafID, "leaf-id", "", "this leaf's stable identity in the parent's dedup ledger (required with -parent; must survive restarts)")
	fs.StringVar(&o.httpAddr, "http", "127.0.0.1:8080", "HTTP listen address (API + dashboard)")
	fs.StringVar(&o.tcpAddr, "tcp", "", "raw-frame TCP listen address (empty = disabled)")
	fs.IntVar(&o.shards, "shards", 0, "ingestion shards (0 = the stream's default)")
	fs.DurationVar(&o.round, "round", 0, "close the round on this period when reports are pending (0 = manual via the API)")
	fs.IntVar(&o.roundCap, "roundcap", 0, "retained round history and subscriber buffer depth (0 = the stream's default)")
	fs.IntVar(&o.maxFrame, "maxframe", 0, "max TCP frame body / batch record payload in bytes (0 = 1 MiB)")
	fs.IntVar(&o.maxBatch, "maxbatch", 0, "max HTTP /v1/reports body in bytes (0 = 8 MiB)")
	fs.DurationVar(&o.roundDeadline, "round-deadline", 0, "root: close the round this long after its first merge envelope even if leaves are missing (0 = wait forever)")
	fs.IntVar(&o.quorum, "quorum", 0, "root: minimum distinct leaves before -round-deadline may close the round (0 = 1)")
	fs.IntVar(&o.expectLeaves, "expect-leaves", 0, "root: the tree's leaf count — close immediately when all arrived, count slower deadline closes as partial")
	fs.StringVar(&o.snapDir, "snapshot-dir", "", "directory for the durable state image; restored at startup, written on shutdown (empty = no durability)")
	fs.DurationVar(&o.snapEvery, "snapshot-every", 0, "also snapshot on this period (0 = only at shutdown; requires -snapshot-dir)")
	fs.DurationVar(&o.drain, "drain", 5*time.Second, "graceful-shutdown budget for in-flight batches before the final snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (lolohad takes flags only)", fs.Arg(0))
	}
	if o.spec == "" {
		fs.Usage()
		return fmt.Errorf("-spec is required")
	}

	d, err := newDaemon(o, os.Stdout)
	if err != nil {
		return err
	}
	signal.Notify(d.sig, os.Interrupt, syscall.SIGTERM)
	return d.run()
}

// buildProtocol resolves -spec: inline JSON when the argument looks like a
// JSON object, otherwise a file path.
func buildProtocol(arg string) (longitudinal.Protocol, error) {
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "{") {
		var err error
		if data, err = os.ReadFile(arg); err != nil {
			return nil, fmt.Errorf("-spec: %w", err)
		}
	}
	spec, err := longitudinal.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("-spec: %w", err)
	}
	proto, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("-spec: %w", err)
	}
	return proto, nil
}
