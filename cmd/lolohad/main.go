// Command lolohad is the networked collection daemon: one server.Stream
// behind real sockets.
//
//	lolohad -spec '{"family":"LOLOHA","k":100,"g":2,"eps_inf":2,"eps1":1}'
//	lolohad -spec spec.json -http :8080 -tcp :9090 -round 10s
//
// HTTP serves the v1 API (enrollment, batched report ingestion, round
// control, status, a live SSE round stream) and an embedded dashboard at
// /. The optional raw-TCP listener ingests length-prefixed report frames
// on the zero-allocation decode→tally path — the transport for load
// generators and high-volume collectors (`lolohasim loadgen` drives
// either). Rounds close on the -round period when reports are pending, or
// on demand via POST /v1/round/close.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	// Registers the LOLOHA/BiLOLOHA/OLOLOHA families; the baseline
	// families register from longitudinal itself.
	_ "github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/netserver"
	"github.com/loloha-ldp/loloha/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lolohad:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lolohad", flag.ContinueOnError)
	var (
		spec     = fs.String("spec", "", "protocol: inline ProtocolSpec JSON (starts with '{') or a path to a spec file (required)")
		httpAddr = fs.String("http", "127.0.0.1:8080", "HTTP listen address (API + dashboard)")
		tcpAddr  = fs.String("tcp", "", "raw-frame TCP listen address (empty = disabled)")
		shards   = fs.Int("shards", 0, "ingestion shards (0 = the stream's default)")
		round    = fs.Duration("round", 0, "close the round on this period when reports are pending (0 = manual via the API)")
		roundCap = fs.Int("roundcap", 0, "retained round history and subscriber buffer depth (0 = the stream's default)")
		maxFrame = fs.Int("maxframe", 0, "max TCP frame body / batch record payload in bytes (0 = 1 MiB)")
		maxBatch = fs.Int("maxbatch", 0, "max HTTP /v1/reports body in bytes (0 = 8 MiB)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (lolohad takes flags only)", fs.Arg(0))
	}
	if *spec == "" {
		fs.Usage()
		return fmt.Errorf("-spec is required")
	}

	proto, err := buildProtocol(*spec)
	if err != nil {
		return err
	}
	var opts []server.Option
	if *shards > 0 {
		opts = append(opts, server.WithShards(*shards))
	}
	if *roundCap > 0 {
		opts = append(opts, server.WithRoundCapacity(*roundCap))
	}
	stream, err := server.NewStream(proto, opts...)
	if err != nil {
		return err
	}
	defer stream.Close()

	srv, err := netserver.New(netserver.Config{
		Stream:        stream,
		MaxFrameBytes: *maxFrame,
		MaxBatchBytes: *maxBatch,
		RoundEvery:    *round,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	// Listener failures after startup land here; the first one wins and
	// shuts the daemon down.
	errc := make(chan error, 2)
	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return fmt.Errorf("-http %s: %w", *httpAddr, err)
	}
	go func() { errc <- srv.ServeHTTP(hl) }()
	fmt.Printf("lolohad: %s on http://%s (dashboard at /)\n", proto.Name(), hl.Addr())
	if *tcpAddr != "" {
		tl, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			return fmt.Errorf("-tcp %s: %w", *tcpAddr, err)
		}
		go func() { errc <- srv.ServeTCP(tl) }()
		fmt.Printf("lolohad: raw-frame ingestion on tcp://%s\n", tl.Addr())
	}
	if *round > 0 {
		fmt.Printf("lolohad: closing rounds every %s when reports are pending\n", *round)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("lolohad: %s, shutting down (%d rounds published, %d users enrolled)\n",
			s, stream.Rounds(), stream.Enrolled())
		return nil
	case err := <-errc:
		return err
	}
}

// buildProtocol resolves -spec: inline JSON when the argument looks like a
// JSON object, otherwise a file path.
func buildProtocol(arg string) (longitudinal.Protocol, error) {
	data := []byte(arg)
	if !strings.HasPrefix(strings.TrimSpace(arg), "{") {
		var err error
		if data, err = os.ReadFile(arg); err != nil {
			return nil, fmt.Errorf("-spec: %w", err)
		}
	}
	spec, err := longitudinal.ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("-spec: %w", err)
	}
	proto, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("-spec: %w", err)
	}
	return proto, nil
}
