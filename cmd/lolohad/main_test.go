package main

// Daemon lifecycle tests: a real daemon in-process — bound sockets,
// injectable signal channel — killed mid-round and restarted from its
// snapshot must finish the round bit-identical to a daemon that was
// never interrupted.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/netserver"
	"github.com/loloha-ldp/loloha/internal/randsrc"
	"github.com/loloha-ldp/loloha/internal/server"
)

const testSpec = `{"family":"BiLOLOHA","k":32,"eps_inf":2,"eps1":1}`

func testOptions(dir string) daemonOptions {
	return daemonOptions{
		spec:     testSpec,
		mode:     "single",
		httpAddr: "127.0.0.1:0",
		tcpAddr:  "127.0.0.1:0",
		snapDir:  dir,
		drain:    10 * time.Second,
	}
}

// startDaemon runs a daemon like main does, returning it and its exit
// channel. The caller shuts it down by sending on d.sig.
func startDaemon(t *testing.T, opts daemonOptions) (*daemon, chan error) {
	t.Helper()
	d, err := newDaemon(opts, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.run() }()
	return d, done
}

func stopDaemon(t *testing.T, d *daemon, done chan error) {
	t.Helper()
	d.sig <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
}

// testClients builds n deterministic clients and enrolls them in the
// reference stream.
func testClients(t *testing.T, proto longitudinal.Protocol, ref *server.Stream, n int) []longitudinal.AppendReporter {
	t.Helper()
	clients := make([]longitudinal.AppendReporter, n)
	for u := range clients {
		clients[u] = proto.NewClient(randsrc.Derive(77, uint64(u))).(longitudinal.AppendReporter)
		if err := ref.Enroll(u, clients[u].WireRegistration()); err != nil {
			t.Fatal(err)
		}
	}
	return clients
}

// roundPayloads generates each client's report for the round ONCE —
// report chains are memoized per client, so the identical bytes must
// feed both the daemon and the reference stream.
func roundPayloads(clients []longitudinal.AppendReporter, round, k int) [][]byte {
	payloads := make([][]byte, len(clients))
	for u, cl := range clients {
		payloads[u] = cl.AppendReport(nil, (u*3+round)%k)
	}
	return payloads
}

// enrollTCP enrolls all clients over the daemon's raw-frame TCP front.
func enrollTCP(t *testing.T, conn net.Conn, clients []longitudinal.AppendReporter) {
	t.Helper()
	var frames []byte
	var err error
	for u := range clients {
		if frames, err = netserver.AppendEnrollFrame(frames, u, clients[u].WireRegistration()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(netserver.AppendFlushFrame(frames)); err != nil {
		t.Fatal(err)
	}
	ack, err := netserver.ReadAck(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ack.EnrollRejected != 0 {
		t.Fatalf("enroll ack = %+v", ack)
	}
}

// reportTCP ships payloads[lo:hi] over the connection and syncs with a
// flush.
func reportTCP(t *testing.T, conn net.Conn, payloads [][]byte, lo, hi int) {
	t.Helper()
	var frames []byte
	for u := lo; u < hi; u++ {
		frames = netserver.AppendReportFrame(frames, u, payloads[u])
	}
	if _, err := conn.Write(netserver.AppendFlushFrame(frames)); err != nil {
		t.Fatal(err)
	}
	ack, err := netserver.ReadAck(conn)
	if err != nil {
		t.Fatal(err)
	}
	if ack.ReportRejected != 0 {
		t.Fatalf("report ack = %+v", ack)
	}
}

// ingestRef feeds payloads[lo:hi] into the reference stream.
func ingestRef(t *testing.T, ref *server.Stream, payloads [][]byte, lo, hi int) {
	t.Helper()
	for u := lo; u < hi; u++ {
		if err := ref.Ingest(u, payloads[u]); err != nil {
			t.Fatal(err)
		}
	}
}

func dialDaemon(t *testing.T, d *daemon) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", d.tcpLn.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLifecycleKillMidRoundRestore(t *testing.T) {
	const n = 48
	dir := t.TempDir()
	proto, err := buildProtocol(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := server.NewStream(proto)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	clients := testClients(t, proto, ref, n)

	d1, done1 := startDaemon(t, testOptions(dir))
	conn := dialDaemon(t, d1)
	enrollTCP(t, conn, clients)
	payloads := roundPayloads(clients, 0, proto.K())
	reportTCP(t, conn, payloads, 0, n/2)
	ingestRef(t, ref, payloads, 0, n/2)
	// Kill mid-round: the second half of the round has not been reported.
	conn.Close()
	stopDaemon(t, d1, done1)
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("no snapshot after SIGTERM: %v", err)
	}

	// Restart from the snapshot and finish the round.
	d2, done2 := startDaemon(t, testOptions(dir))
	if got := d2.stream.Enrolled(); got != n {
		t.Fatalf("restored %d users, want %d", got, n)
	}
	if got := d2.stream.Pending(); got != n/2 {
		t.Fatalf("restored %d pending reports, want %d", got, n/2)
	}
	conn2 := dialDaemon(t, d2)
	reportTCP(t, conn2, payloads, n/2, n)
	ingestRef(t, ref, payloads, n/2, n)
	got, want := d2.stream.CloseRound(), ref.CloseRound()
	if got.Round != want.Round || got.Reports != want.Reports {
		t.Fatalf("restored round = %d/%d reports, want %d/%d", got.Round, got.Reports, want.Round, want.Reports)
	}
	if !sameFloats(got.Raw, want.Raw) || !sameFloats(got.Estimates, want.Estimates) {
		t.Fatal("restored round's estimates diverge from the uninterrupted run")
	}
	// A duplicate of an already-tallied report must still be rejected
	// after restore (the reported bitset survived the crash) — exercised
	// on the next round via its payloads below.
	payloads1 := roundPayloads(clients, 1, proto.K())
	reportTCP(t, conn2, payloads1, 0, n)
	if p := d2.stream.Pending(); p != n {
		t.Fatalf("round 1 pending = %d, want %d", p, n)
	}
	conn2.Close() // let Drain finish without waiting out its deadline
	stopDaemon(t, d2, done2)
}

func TestLifecycleRestoreWrongSpec(t *testing.T) {
	dir := t.TempDir()
	d1, done1 := startDaemon(t, testOptions(dir))
	stopDaemon(t, d1, done1)

	opts := testOptions(dir)
	opts.spec = `{"family":"dBitFlipPM","k":32,"b":8,"d":3,"eps_inf":2}`
	if _, err := newDaemon(opts, io.Discard); !errors.Is(err, server.ErrSnapshotMismatch) {
		t.Fatalf("restore under a different spec: err = %v, want ErrSnapshotMismatch", err)
	}
}

// TestLifecycleReshardedRestore restores a 1-shard daemon's snapshot into
// a 4-shard daemon: users re-partition deterministically (shard-of is a
// pure hash of the user ID) and the round closes identically.
func TestLifecycleReshardedRestore(t *testing.T) {
	const n = 32
	dir := t.TempDir()
	proto, err := buildProtocol(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := server.NewStream(proto)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	clients := testClients(t, proto, ref, n)

	opts := testOptions(dir)
	opts.shards = 1
	d1, done1 := startDaemon(t, opts)
	conn := dialDaemon(t, d1)
	enrollTCP(t, conn, clients)
	payloads := roundPayloads(clients, 0, proto.K())
	reportTCP(t, conn, payloads, 0, n)
	ingestRef(t, ref, payloads, 0, n)
	conn.Close()
	stopDaemon(t, d1, done1)

	opts.shards = 4
	d2, done2 := startDaemon(t, opts)
	if got := d2.stream.Shards(); got != 4 {
		t.Fatalf("restored stream has %d shards, want 4", got)
	}
	got, want := d2.stream.CloseRound(), ref.CloseRound()
	if got.Reports != want.Reports || !sameFloats(got.Estimates, want.Estimates) {
		t.Fatal("re-sharded restore diverges from the uninterrupted run")
	}
	// The re-partitioned stream keeps working across rounds.
	conn2 := dialDaemon(t, d2)
	reportTCP(t, conn2, roundPayloads(clients, 1, proto.K()), 0, n)
	if p := d2.stream.Pending(); p != n {
		t.Fatalf("round 1 pending = %d, want %d", p, n)
	}
	conn2.Close() // let Drain finish without waiting out its deadline
	stopDaemon(t, d2, done2)
}

func TestLifecyclePeriodicSnapshot(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.snapEvery = 20 * time.Millisecond
	d, done := startDaemon(t, opts)
	path := filepath.Join(dir, snapshotFile)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopDaemon(t, d, done)
}

func TestOptionsValidate(t *testing.T) {
	for name, mutate := range map[string]func(*daemonOptions){
		"missing-spec":           func(o *daemonOptions) { o.spec = "" },
		"bad-mode":               func(o *daemonOptions) { o.mode = "follower" },
		"leaf-without-parent":    func(o *daemonOptions) { o.mode = "leaf" },
		"parent-in-single-mode":  func(o *daemonOptions) { o.parent = "localhost:9" },
		"parent-without-leaf-id": func(o *daemonOptions) { o.mode = "leaf"; o.parent = "localhost:9" },
		"deadline-on-leaf": func(o *daemonOptions) {
			o.mode = "leaf"
			o.parent = "localhost:9"
			o.leafID = "leaf-a"
			o.roundDeadline = time.Second
		},
		"snap-every-without-dir": func(o *daemonOptions) { o.snapDir = ""; o.snapEvery = time.Second },
	} {
		t.Run(name, func(t *testing.T) {
			o := testOptions(t.TempDir())
			mutate(&o)
			if err := o.validate(); err == nil {
				t.Fatal("validate accepted a bad configuration")
			}
		})
	}
}

// TestLifecycleCollectorTree wires a root and two leaf daemons exactly as
// the CLI flags would and checks the root's merged round against a
// single-node reference.
func TestLifecycleCollectorTree(t *testing.T) {
	const n = 40
	proto, err := buildProtocol(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := server.NewStream(proto)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	clients := testClients(t, proto, ref, n)

	rootOpts := testOptions("")
	rootOpts.snapDir = ""
	rootOpts.mode = "root"
	root, rootDone := startDaemon(t, rootOpts)

	leaves := make([]*daemon, 2)
	leafDone := make([]chan error, 2)
	for i := range leaves {
		opts := testOptions("")
		opts.snapDir = ""
		opts.mode = "leaf"
		opts.parent = root.tcpLn.Addr().String()
		opts.leafID = fmt.Sprintf("leaf-%d", i)
		leaves[i], leafDone[i] = startDaemon(t, opts)
	}

	// Partition users across the leaves, ship one round, close leaves
	// (which ship upstream), then close the root.
	conns := []net.Conn{dialDaemon(t, leaves[0]), dialDaemon(t, leaves[1])}
	for i, conn := range conns {
		var frames []byte
		for u := i; u < n; u += 2 {
			if frames, err = netserver.AppendEnrollFrame(frames, u, clients[u].WireRegistration()); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := conn.Write(netserver.AppendFlushFrame(frames)); err != nil {
			t.Fatal(err)
		}
		if _, err := netserver.ReadAck(conn); err != nil {
			t.Fatal(err)
		}
	}
	payloads := roundPayloads(clients, 0, proto.K())
	ingestRef(t, ref, payloads, 0, n)
	for i, conn := range conns {
		var frames []byte
		for u := i; u < n; u += 2 {
			frames = netserver.AppendReportFrame(frames, u, payloads[u])
		}
		if _, err := conn.Write(netserver.AppendFlushFrame(frames)); err != nil {
			t.Fatal(err)
		}
		ack, err := netserver.ReadAck(conn)
		if err != nil {
			t.Fatal(err)
		}
		if ack.ReportRejected != 0 {
			t.Fatalf("leaf %d ack = %+v", i, ack)
		}
	}
	for i, leaf := range leaves {
		// The HTTP round-close endpoint routes through the daemon's role
		// (leaf: export + ship); drive it the way an operator would.
		resp, err := leafHTTPClose(leaf)
		if err != nil {
			t.Fatalf("leaf %d close: %v", i, err)
		}
		if resp != n/2 {
			t.Fatalf("leaf %d closed round with %d reports, want %d", i, resp, n/2)
		}
	}
	got, want := root.stream.CloseRound(), ref.CloseRound()
	if got.Reports != want.Reports || !sameFloats(got.Raw, want.Raw) || !sameFloats(got.Estimates, want.Estimates) {
		t.Fatal("collector-tree root diverges from single-node reference")
	}

	for _, conn := range conns {
		conn.Close() // let each leaf's Drain finish without waiting out its deadline
	}
	for i := range leaves {
		stopDaemon(t, leaves[i], leafDone[i])
	}
	stopDaemon(t, root, rootDone)
}

// TestLifecycleLeafOutboxReplay is the kill-mid-ship path through the
// real daemon wiring: a leaf whose parent dies before the round ships
// spools the envelope under -snapshot-dir, reports it in /v1/status,
// survives its own shutdown, and a restarted leaf replays it to the
// restarted parent — the root ends with every report exactly once.
func TestLifecycleLeafOutboxReplay(t *testing.T) {
	const n = 24
	proto, err := buildProtocol(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := server.NewStream(proto)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	clients := testClients(t, proto, ref, n)

	rootOpts := testOptions("")
	rootOpts.snapDir = ""
	rootOpts.mode = "root"
	// The leaf's idle merge connection would otherwise hold the root's
	// drain open until its deadline.
	rootOpts.drain = 500 * time.Millisecond
	root1, root1Done := startDaemon(t, rootOpts)
	rootTCP := root1.tcpLn.Addr().String()

	leafDir := t.TempDir()
	leafOpts := testOptions(leafDir)
	leafOpts.mode = "leaf"
	leafOpts.parent = rootTCP
	leafOpts.leafID = "leaf-a"
	leafOpts.drain = 500 * time.Millisecond // don't wait out a dead parent at shutdown
	leaf1, leaf1Done := startDaemon(t, leafOpts)

	conn := dialDaemon(t, leaf1)
	enrollTCP(t, conn, clients)
	payloads := roundPayloads(clients, 0, proto.K())
	reportTCP(t, conn, payloads, 0, n)
	ingestRef(t, ref, payloads, 0, n)
	conn.Close()

	// The parent dies before the round ships; the leaf's round close must
	// still publish locally, with the envelope spooled for later.
	stopDaemon(t, root1, root1Done)
	if _, err := leafHTTPClose(leaf1); err == nil {
		t.Fatal("leaf round close shipped through a dead parent")
	}
	var st struct {
		Merge struct {
			Unshipped int `json:"unshipped"`
			Oldest    int `json:"oldest_unshipped_round"`
		} `json:"merge"`
	}
	if err := getJSON("http://"+leaf1.httpLn.Addr().String()+"/v1/status", &st); err != nil {
		t.Fatal(err)
	}
	if st.Merge.Unshipped != 1 || st.Merge.Oldest != 0 {
		t.Fatalf("leaf status = %+v, want round 0 spooled", st.Merge)
	}
	stopDaemon(t, leaf1, leaf1Done)

	// Both sides restart — the root first (same address), then the leaf,
	// whose boot replay must deliver the spooled round unprompted.
	rootOpts.tcpAddr = rootTCP
	root2, root2Done := startDaemon(t, rootOpts)
	leaf2, leaf2Done := startDaemon(t, leafOpts)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := getJSON("http://"+leaf2.httpLn.Addr().String()+"/v1/status", &st); err != nil {
			t.Fatal(err)
		}
		if st.Merge.Unshipped == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted leaf never replayed the spooled envelope: %+v", st.Merge)
		}
		time.Sleep(10 * time.Millisecond)
	}
	got, want := root2.stream.CloseRound(), ref.CloseRound()
	if got.Reports != want.Reports || !sameFloats(got.Raw, want.Raw) {
		t.Fatalf("replayed root round = %d reports, want %d bit-identical to the reference",
			got.Reports, want.Reports)
	}
	stopDaemon(t, leaf2, leaf2Done)
	stopDaemon(t, root2, root2Done)
}

// getJSON fetches and decodes url into v.
func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// leafHTTPClose closes a leaf's round over its HTTP API and returns the
// published report count.
func leafHTTPClose(d *daemon) (int, error) {
	resp, err := http.Post("http://"+d.httpLn.Addr().String()+"/v1/round/close", "application/json", http.NoBody)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var round struct {
		Reports   int    `json:"reports"`
		ShipError string `json:"ship_error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&round); err != nil {
		return 0, err
	}
	if round.ShipError != "" {
		return 0, errors.New(round.ShipError)
	}
	return round.Reports, nil
}
