package main

// The daemon type is lolohad's lifecycle, separated from flag parsing so
// the lifecycle tests can run a real daemon in-process: bind listeners,
// restore state, serve, snapshot on a timer, and shut down gracefully on
// a signal delivered through an injectable channel.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"time"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/netserver"
	"github.com/loloha-ldp/loloha/internal/server"
)

// snapshotFile is the state image inside -snapshot-dir. One file, always
// replaced atomically: a crash mid-write leaves the previous image, never
// a torn one.
const snapshotFile = "stream.lss1"

// daemonOptions is the parsed flag set.
type daemonOptions struct {
	spec     string
	mode     string // single | root | leaf
	parent   string // leaf: parent's TCP address or http(s):// URL
	leafID   string // leaf: stable identity in the parent's dedup ledger
	httpAddr string
	tcpAddr  string
	shards   int
	roundCap int
	round    time.Duration
	maxFrame int
	maxBatch int

	// Root graceful degradation: close the round roundDeadline after its
	// first envelope once quorum leaves arrived; expectLeaves closes early
	// when everyone reported and marks slower closes partial.
	roundDeadline time.Duration
	quorum        int
	expectLeaves  int

	snapDir   string
	snapEvery time.Duration
	drain     time.Duration
}

func (o *daemonOptions) validate() error {
	if o.spec == "" {
		return fmt.Errorf("-spec is required")
	}
	switch o.mode {
	case "single", "root", "leaf":
	default:
		return fmt.Errorf("-mode %q: must be single, root or leaf", o.mode)
	}
	if o.mode == "leaf" && o.parent == "" {
		return fmt.Errorf("-mode leaf requires -parent host:port")
	}
	if o.parent != "" && o.mode == "single" {
		return fmt.Errorf("-parent requires -mode leaf (or root, for an interior node)")
	}
	if o.parent != "" && o.leafID == "" {
		return fmt.Errorf("-parent requires -leaf-id: the parent deduplicates retried rounds " +
			"per leaf identity, and the identity must survive restarts")
	}
	if (o.roundDeadline > 0 || o.quorum > 0 || o.expectLeaves > 0) && o.mode == "leaf" {
		return fmt.Errorf("-round-deadline/-quorum/-expect-leaves apply to a merge-accepting daemon (-mode root)")
	}
	if o.snapEvery > 0 && o.snapDir == "" {
		return fmt.Errorf("-snapshot-every requires -snapshot-dir")
	}
	return nil
}

// daemon is one running lolohad: a stream (possibly restored), the
// netserver engine fronting it, bound listeners, and the shutdown logic.
type daemon struct {
	opts     daemonOptions
	out      io.Writer
	proto    longitudinal.Protocol
	stream   *server.Stream
	srv      *netserver.Server
	upstream netserver.MergeSender
	httpLn   net.Listener
	tcpLn    net.Listener

	// sig is the shutdown trigger. main wires os signals into it; tests
	// send directly.
	sig  chan os.Signal
	errc chan error
}

// newDaemon builds the protocol, restores or creates the stream, connects
// upstream (leaf mode) and binds the listeners, so every configuration
// error — bad spec, mismatched snapshot, unreachable parent, busy port —
// fails here, before the daemon reports itself up.
func newDaemon(opts daemonOptions, out io.Writer) (*daemon, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	proto, err := buildProtocol(opts.spec)
	if err != nil {
		return nil, err
	}
	var streamOpts []server.Option
	if opts.shards > 0 {
		streamOpts = append(streamOpts, server.WithShards(opts.shards))
	}
	if opts.roundCap > 0 {
		streamOpts = append(streamOpts, server.WithRoundCapacity(opts.roundCap))
	}
	d := &daemon{
		opts: opts,
		out:  out,
		sig:  make(chan os.Signal, 1),
		errc: make(chan error, 2),
	}
	d.proto = proto
	if d.stream, err = openStream(proto, opts, streamOpts, out); err != nil {
		return nil, err
	}

	cfg := netserver.Config{
		Stream:        d.stream,
		MaxFrameBytes: opts.maxFrame,
		MaxBatchBytes: opts.maxBatch,
		RoundEvery:    opts.round,
		AcceptMerges:  opts.mode == "root",
		RoundDeadline: opts.roundDeadline,
		Quorum:        opts.quorum,
		ExpectLeaves:  opts.expectLeaves,
	}
	if opts.parent != "" {
		if d.upstream, err = netserver.NewMergeSender(opts.parent, 0); err != nil {
			d.stream.Close()
			return nil, err
		}
		cfg.Upstream = d.upstream
		cfg.LeafID = opts.leafID
		if opts.snapDir != "" {
			// The outbox shares the durability root with the state image:
			// a leaf with -snapshot-dir survives a crash between round
			// close and the parent's ack too.
			cfg.OutboxDir = filepath.Join(opts.snapDir, "outbox")
		}
	}
	if d.srv, err = netserver.New(cfg); err != nil {
		d.close()
		return nil, err
	}
	if d.httpLn, err = net.Listen("tcp", opts.httpAddr); err != nil {
		d.close()
		return nil, fmt.Errorf("-http %s: %w", opts.httpAddr, err)
	}
	if opts.tcpAddr != "" {
		if d.tcpLn, err = net.Listen("tcp", opts.tcpAddr); err != nil {
			d.close()
			return nil, fmt.Errorf("-tcp %s: %w", opts.tcpAddr, err)
		}
	}
	return d, nil
}

// openStream restores the stream from -snapshot-dir when an image exists
// there, and creates a fresh one otherwise. A snapshot for a different
// protocol or an unreadable image is a hard startup error: silently
// starting empty would discard durable state.
func openStream(proto longitudinal.Protocol, opts daemonOptions,
	streamOpts []server.Option, out io.Writer) (*server.Stream, error) {
	if opts.snapDir == "" {
		return server.NewStream(proto, streamOpts...)
	}
	if err := os.MkdirAll(opts.snapDir, 0o755); err != nil {
		return nil, fmt.Errorf("-snapshot-dir: %w", err)
	}
	path := filepath.Join(opts.snapDir, snapshotFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return server.NewStream(proto, streamOpts...)
	}
	if err != nil {
		return nil, fmt.Errorf("opening snapshot: %w", err)
	}
	defer f.Close()
	stream, err := server.RestoreStream(f, proto, streamOpts...)
	if err != nil {
		return nil, fmt.Errorf("restoring %s: %w", path, err)
	}
	fmt.Fprintf(out, "lolohad: restored %s — %d users, %d pending reports, history resumes at round %d\n",
		path, stream.Enrolled(), stream.Pending(), stream.Rounds())
	return stream, nil
}

// run serves until a signal or a listener failure, then shuts down:
// drain the sockets, snapshot, close. The started listeners own their
// goroutines; the loop owns the snapshot timer.
func (d *daemon) run() error {
	defer d.close()
	go func() { d.errc <- d.srv.ServeHTTP(d.httpLn) }()
	fmt.Fprintf(d.out, "lolohad: %s (%s) on http://%s (dashboard at /)\n",
		d.proto.Name(), d.opts.mode, d.httpLn.Addr())
	if d.tcpLn != nil {
		go func() { d.errc <- d.srv.ServeTCP(d.tcpLn) }()
		fmt.Fprintf(d.out, "lolohad: raw-frame ingestion on tcp://%s\n", d.tcpLn.Addr())
	}
	if d.upstream != nil {
		fmt.Fprintf(d.out, "lolohad: shipping closed rounds to %s\n", d.upstream.Addr())
	}
	if d.opts.round > 0 {
		fmt.Fprintf(d.out, "lolohad: closing rounds every %s when reports are pending\n", d.opts.round)
	}

	var snapC <-chan time.Time
	if d.opts.snapEvery > 0 {
		t := time.NewTicker(d.opts.snapEvery)
		defer t.Stop()
		snapC = t.C
		fmt.Fprintf(d.out, "lolohad: snapshotting to %s every %s\n",
			filepath.Join(d.opts.snapDir, snapshotFile), d.opts.snapEvery)
	}
	for {
		select {
		case <-snapC:
			if err := d.writeSnapshot(); err != nil {
				// A failed periodic snapshot (disk full, dir removed) is not
				// fatal: the daemon keeps collecting and the previous image
				// keeps its atomicity guarantee.
				fmt.Fprintf(d.out, "lolohad: snapshot failed: %v\n", err)
			}
		case s := <-d.sig:
			fmt.Fprintf(d.out, "lolohad: %s, shutting down (%d rounds published, %d users enrolled)\n",
				s, d.stream.Rounds(), d.stream.Enrolled())
			return d.shutdown()
		case err := <-d.errc:
			return err
		}
	}
}

// shutdown is the graceful exit: quiesce the sockets so in-flight batches
// tally, then write the final snapshot. Drain errors don't skip the
// snapshot — a partial drain still delivered everything it consumed.
func (d *daemon) shutdown() error {
	if err := d.srv.Drain(d.opts.drain); err != nil {
		fmt.Fprintf(d.out, "lolohad: drain: %v\n", err)
	}
	if err := d.srv.FlushOutbox(d.opts.drain); err != nil {
		// Not fatal: with an outbox directory the unshipped envelopes are
		// spooled and the next start replays them; without one they are
		// lost with the process, which the message makes explicit.
		fmt.Fprintf(d.out, "lolohad: outbox flush: %v\n", err)
	}
	if d.opts.snapDir == "" {
		return nil
	}
	if err := d.writeSnapshot(); err != nil {
		return fmt.Errorf("final snapshot: %w", err)
	}
	fmt.Fprintf(d.out, "lolohad: final snapshot written (%d pending reports preserved)\n", d.stream.Pending())
	return nil
}

// writeSnapshot replaces the state image atomically: write to a temp file
// in the same directory, fsync, rename over the old image.
func (d *daemon) writeSnapshot() error {
	f, err := os.CreateTemp(d.opts.snapDir, snapshotFile+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := d.stream.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(d.opts.snapDir, snapshotFile))
}

// close tears down whatever newDaemon managed to build; safe on a
// half-constructed daemon and idempotent enough for run's defer.
func (d *daemon) close() {
	if d.srv != nil {
		d.srv.Close()
	}
	for _, l := range []net.Listener{d.httpLn, d.tcpLn} {
		// Close also closes tracked listeners, but only after Serve* has
		// registered them; closing here covers newDaemon failing between
		// bind and serve.
		if l != nil {
			l.Close()
		}
	}
	if d.upstream != nil {
		d.upstream.Close()
	}
	if d.stream != nil {
		d.stream.Close()
	}
}
