// Command lolohadata generates and inspects the four evaluation workloads
// of §5.1 (syn, adult, db_mt, db_de):
//
//	lolohadata -dataset syn                  # summary statistics
//	lolohadata -dataset adult -hist          # marginal histogram sketch
//	lolohadata -dataset db_mt -export x.csv  # dump user×round value matrix
//	lolohadata -dataset syn -specs s.json    # dataset's standard ProtocolSpecs
//	lolohadata -dataset syn -columnar DIR \
//	  -spec '{"family":"BiLOLOHA","k":360,"eps_inf":2,"eps1":1}'  # columnar round files
//
// The -specs output is the declarative §5.1 protocol set for the dataset
// (bucket counts and all), ready for `lolohasim fig3 -spec s.json`.
//
// The folktables and Adult workloads are offline surrogates; DESIGN.md
// documents what they preserve from the originals.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/report"
	"github.com/loloha-ldp/loloha/internal/simulation"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lolohadata:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("dataset", "syn", "syn, adult, db_mt, db_de or all")
		seed     = flag.Int64("seed", 42, "generation seed")
		hist     = flag.Bool("hist", false, "print a sketch of the round-0 marginal")
		export   = flag.String("export", "", "write the value matrix as CSV to this path")
		specsOut = flag.String("specs", "", "write the dataset's standard ProtocolSpec list (JSON) to this path, for lolohasim -spec")
		colDir   = flag.String("columnar", "", "write one columnar batch file per round into this directory (requires -spec)")
		specJSON = flag.String("spec", "", "ProtocolSpec JSON the -columnar export encodes reports for")
	)
	flag.Parse()

	names := datasets.Names()
	if *name != "all" {
		names = []string{*name}
	}
	if *specsOut != "" && len(names) != 1 {
		return fmt.Errorf("-specs needs a single -dataset (the spec shape is per dataset)")
	}
	if (*colDir == "") != (*specJSON == "") {
		return fmt.Errorf("-columnar and -spec go together: the round files encode reports for one protocol")
	}
	if *colDir != "" && len(names) != 1 {
		return fmt.Errorf("-columnar needs a single -dataset")
	}
	for _, n := range names {
		ds, err := datasets.ByName(n, uint64(*seed))
		if err != nil {
			return err
		}
		if err := summarize(ds, *hist); err != nil {
			return err
		}
		if *export != "" {
			if err := exportCSV(ds, *export); err != nil {
				return err
			}
			fmt.Printf("value matrix written to %s\n", *export)
		}
		if *specsOut != "" {
			if err := exportSpecs(ds, *specsOut); err != nil {
				return err
			}
			fmt.Printf("protocol specs written to %s\n", *specsOut)
		}
		if *colDir != "" {
			files, err := exportColumnar(ds, *specJSON, uint64(*seed), *colDir)
			if err != nil {
				return err
			}
			fmt.Printf("%d columnar round files written to %s\n", files, *colDir)
		}
	}
	return nil
}

// exportColumnar materializes the dataset as columnar round files for the
// protocol described by specJSON: round 0 carries the cohort's
// registration columns, so a collection service replays the files without
// separate enrollment. Returns the number of files written.
func exportColumnar(ds *datasets.Dataset, specJSON string, seed uint64, dir string) (int, error) {
	spec, err := longitudinal.ParseSpec([]byte(specJSON))
	if err != nil {
		return 0, fmt.Errorf("-spec: %w", err)
	}
	proto, err := spec.Build()
	if err != nil {
		return 0, fmt.Errorf("-spec: %w", err)
	}
	files, err := simulation.ExportColumnar(ds, proto, seed, dir)
	if err != nil {
		return 0, err
	}
	return len(files), nil
}

// exportSpecs writes the dataset's standard §5.1 protocol set as a JSON
// array of declarative ProtocolSpecs. The budget fields stay zero — the
// lolohasim grid fills them per (ε∞, α) cell.
func exportSpecs(ds *datasets.Dataset, path string) error {
	standard := simulation.StandardSpecs(ds.Name, ds.K)
	specs := make([]longitudinal.ProtocolSpec, len(standard))
	for i, s := range standard {
		specs[i] = s.Proto
	}
	data, err := json.MarshalIndent(specs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func summarize(ds *datasets.Dataset, hist bool) error {
	fmt.Printf("== %s ==\n", ds.Name)
	tbl := report.NewTable("property", "value")
	tbl.AddRow("domain size k", ds.K)
	tbl.AddRow("users n", ds.N())
	tbl.AddRow("collections tau", ds.Tau())
	tbl.AddRow("change rate", ds.ChangeRate())

	distinct := ds.DistinctPerUser()
	sort.Ints(distinct)
	tbl.AddRow("distinct values/user (median)", distinct[len(distinct)/2])
	tbl.AddRow("distinct values/user (max)", distinct[len(distinct)-1])
	total := 0
	for _, d := range distinct {
		total += d
	}
	tbl.AddRow("distinct values/user (mean)", float64(total)/float64(len(distinct)))
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	if hist {
		fmt.Println("\nround-0 marginal (16 coarse bins):")
		freq := ds.TrueFrequencies(0)
		bins := make([]float64, 16)
		for v, f := range freq {
			bins[v*16/ds.K] += f
		}
		labels := make([]string, 16)
		for i := range labels {
			labels[i] = fmt.Sprintf("[%d..%d)", i*ds.K/16, (i+1)*ds.K/16)
		}
		if err := report.Histogram(os.Stdout, bins, labels, 40); err != nil {
			return err
		}
	}
	fmt.Println()
	return nil
}

func exportCSV(ds *datasets.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	header := make([]string, ds.Tau()+1)
	header[0] = "user"
	for t := 1; t <= ds.Tau(); t++ {
		header[t] = "t" + strconv.Itoa(t-1)
	}
	rows := make([][]string, ds.N())
	for u := 0; u < ds.N(); u++ {
		row := make([]string, ds.Tau()+1)
		row[0] = strconv.Itoa(u)
		for t := 0; t < ds.Tau(); t++ {
			row[t+1] = strconv.Itoa(ds.Value(u, t))
		}
		rows[u] = row
	}
	return report.WriteCSV(f, header, rows)
}
