package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/loloha-ldp/loloha/internal/datasets"
)

func TestSummarizeRuns(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 20, N: 100, Tau: 5, Seed: 1})
	if err := summarize(ds, true); err != nil {
		t.Fatal(err)
	}
}

func TestExportCSV(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 10, N: 4, Tau: 3, Seed: 2})
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := exportCSV(ds, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+4 { // header + one row per user
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "user,t0,t1,t2" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Errorf("first row %q", lines[1])
	}
}

func TestExportCSVBadPath(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 10, N: 2, Tau: 2, Seed: 3})
	if err := exportCSV(ds, "/nonexistent-dir/x.csv"); err == nil {
		t.Error("bad path accepted")
	}
}
