package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/simulation"
)

func TestSummarizeRuns(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 20, N: 100, Tau: 5, Seed: 1})
	if err := summarize(ds, true); err != nil {
		t.Fatal(err)
	}
}

func TestExportCSV(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 10, N: 4, Tau: 3, Seed: 2})
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := exportCSV(ds, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 1+4 { // header + one row per user
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "user,t0,t1,t2" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,") {
		t.Errorf("first row %q", lines[1])
	}
}

func TestExportCSVBadPath(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 10, N: 2, Tau: 2, Seed: 3})
	if err := exportCSV(ds, "/nonexistent-dir/x.csv"); err == nil {
		t.Error("bad path accepted")
	}
}

func TestSpecExportRoundTrips(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 20, N: 10, Tau: 2, Seed: 3})
	path := filepath.Join(t.TempDir(), "specs.json")
	if err := exportSpecs(ds, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := longitudinal.ParseSpecs(data)
	if err != nil {
		t.Fatalf("exported specs do not parse: %v\n%s", err, data)
	}
	if want := len(simulation.StandardSpecs(ds.Name, ds.K)); len(specs) != want {
		t.Fatalf("exported %d specs, want %d", len(specs), want)
	}
	for _, ps := range specs {
		if ps.K != ds.K {
			t.Errorf("%s: exported k = %d, want %d", ps.Family, ps.K, ds.K)
		}
		// The budgets stay open for the grid; filling them must build.
		if _, err := (simulation.Spec{Name: ps.Family, Proto: ps}).Build(ds.K, 2, 1); err != nil {
			t.Errorf("%s: exported spec does not build: %v", ps.Family, err)
		}
	}
}
