module github.com/loloha-ldp/loloha/lint

go 1.24
