// Package analysistest runs one analyzer over GOPATH-style fixture
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<importpath>/<file>.go
//
// A line producing a diagnostic carries a trailing comment of the form
//
//	// want "regexp" "another regexp"
//
// Every diagnostic must match an unconsumed want pattern on its line, and
// every want pattern must be consumed, or the test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/loloha-ldp/loloha/lint/analysis"
	"github.com/loloha-ldp/loloha/lint/load"
	"github.com/loloha-ldp/loloha/lint/runner"
)

// Run loads the patterns from testdata (the directory containing src/)
// and checks the analyzer's diagnostics against the fixtures' want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	env := append(os.Environ(),
		"GO111MODULE=off",
		"GOPATH="+abs,
		"GOWORK=off",
		"GOFLAGS=",
	)
	pkgs, err := load.Packages(load.Config{Dir: abs, Env: env, Patterns: patterns})
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v under %s", patterns, abs)
	}
	for _, pkg := range pkgs {
		checkPackage(t, pkg, a)
	}
}

// want is one expectation: a compiled pattern at file:line.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	raw     string
	matched bool
}

func checkPackage(t *testing.T, pkg *load.Package, a *analysis.Analyzer) {
	t.Helper()
	wants := collectWants(t, pkg)
	diags := runner.AnalyzeForTest(pkg, a)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !consume(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

func consume(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.rx.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans fixture comments for want expectations.
func collectWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := wantBody(c)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats, err := parseWant(text)
				if err != nil {
					t.Fatalf("%s: %v", pos, err)
				}
				for _, p := range pats {
					rx, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx, raw: p})
				}
			}
		}
	}
	return wants
}

func wantBody(c *ast.Comment) (string, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	body, ok := strings.CutPrefix(text, "want ")
	return body, ok
}

// parseWant splits `"rx1" "rx2"` into its quoted patterns.
func parseWant(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("want expectation must be double-quoted regexps, got %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		p, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %q: %v", s[:end+1], err)
		}
		out = append(out, p)
		s = s[end+1:]
	}
}
