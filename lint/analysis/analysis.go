// Package analysis defines the analyzer plumbing of lolohalint: a minimal,
// dependency-free mirror of the golang.org/x/tools/go/analysis surface. The
// repository's root module is deliberately free of external dependencies,
// and this build environment cannot fetch x/tools, so the suite carries its
// own Analyzer/Pass/Diagnostic types plus a loader (package load) and a
// driver (package runner) speaking the `go vet -vettool` protocol. An
// analyzer written against this package looks exactly like an x/tools
// analyzer without facts: a Name, a Doc and a Run over one type-checked
// package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic tag.
	Name string
	// Doc describes the contract the analyzer enforces.
	Doc string
	// Run inspects one package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FileOf returns the file containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// IsTestFile reports whether pos lies in a _test.go file. The lolohalint
// contracts are production-code contracts: test files exercise cold paths,
// deliberately race, and pin allocations at runtime instead.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
