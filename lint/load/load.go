// Package load type-checks Go packages for lolohalint without any
// dependency outside the standard library.
//
// Two entry points cover the two ways the suite runs:
//
//   - Packages shells out to `go list -export -json -deps`, which compiles
//     dependencies and hands back per-package export data; the packages
//     named by the patterns are then parsed from source and type-checked
//     against that export data via the stdlib gc importer. This is the
//     standalone CLI path and the analysistest path (the latter in GOPATH
//     mode, via Config.Env).
//
//   - VetPackage reads the JSON config file cmd/go passes to a -vettool:
//     the file lists sources, the import map and the export file of every
//     dependency, so no `go list` round trip is needed.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Config controls Packages.
type Config struct {
	// Dir is the working directory for the go command ("" = current).
	Dir string
	// Env, if non-nil, replaces the go command environment. Callers that
	// want GOPATH-mode fixture loading pass os.Environ() plus overrides
	// (GO111MODULE=off, GOPATH=..., GOWORK=off, GOFLAGS=).
	Env []string
	// Patterns are the package patterns to load (e.g. "./...").
	Patterns []string
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	DepOnly    bool
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matched by cfg.Patterns.
// Dependencies are consumed as export data; only matched packages are
// parsed from source.
func Packages(cfg Config) ([]*Package, error) {
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, cfg.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = cfg.Env
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", cfg.Patterns, err, stderr.String())
	}

	var roots []*listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			roots = append(roots, &q)
		}
	}

	fset := token.NewFileSet()
	imp := newImporter(fset, nil, exports)
	var pkgs []*Package
	for _, lp := range roots {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			if filepath.IsAbs(f) {
				files[i] = f
			} else {
				files[i] = filepath.Join(lp.Dir, f)
			}
		}
		pkg, err := check(fset, lp.ImportPath, files, imp, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// VetConfig mirrors the JSON config file cmd/go hands to a -vettool.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses a vet .cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	return cfg, nil
}

// VetPackage type-checks the package described by a vet config.
func VetPackage(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	imp := newImporter(fset, cfg.ImportMap, cfg.PackageFile)
	return check(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
}

// check parses files and type-checks them as one package.
func check(fset *token.FileSet, importPath string, files []string, imp types.Importer, goVersion string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(importPath, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		PkgPath:   importPath,
		Fset:      fset,
		Files:     asts,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// mapImporter resolves raw import paths through an import map (vet test
// variants) and serves dependencies from compiler export files via the
// stdlib gc importer.
type mapImporter struct {
	importMap map[string]string // raw -> resolved; nil or missing = identity
	base      types.ImporterFrom
}

func newImporter(fset *token.FileSet, importMap, packageFile map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &mapImporter{
		importMap: importMap,
		base:      importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
	}
}

func (m *mapImporter) Import(path string) (*types.Package, error) {
	if r, ok := m.importMap[path]; ok {
		path = r
	}
	return m.base.ImportFrom(path, "", 0)
}
