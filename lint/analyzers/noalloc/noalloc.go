// Package noalloc enforces the engine's zero-alloc hot-path contract.
//
// A function whose doc comment carries //loloha:noalloc must not execute a
// known-allocating construct on its steady path: make/new, map and slice
// literals, address-of composite literal, closures, go statements, string
// concatenation, string<->[]byte conversions, boxing a non-pointer-shaped
// value into an interface, append to anything but its own first argument,
// or a call to a function that is neither //loloha:noalloc in the same
// package nor in the cross-package trust table below.
//
// Branch discipline: an if (or else) block whose last statement terminates
// (return, continue, break, goto, panic) is treated as an error/cold exit
// and skipped — annotated hot functions report errors via early exits, and
// those paths may allocate. //loloha:steady on the if statement forces the
// block to be checked anyway (used where the steady path itself ends in a
// return). //loloha:alloc-ok on a statement exempts that one subtree:
// amortized cold paths such as first-use cache fills.
//
// The trust table is the cross-package frontier: every in-repo entry is
// itself annotated //loloha:noalloc and checked when its own package is
// analyzed; stdlib entries are vetted by the AllocsPerRun suites.
package noalloc

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"github.com/loloha-ldp/loloha/lint/analysis"
	"github.com/loloha-ldp/loloha/lint/annot"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "//loloha:noalloc functions must not allocate on their steady path",
	Run:  run,
}

// trustRule marks calls that are allowed from noalloc code. pkg is matched
// as a full import path or a path suffix (so fixtures and forks keep
// working); recv is the named receiver type ("" = package-level function,
// "*" = any); name "*" = any function/method of the package.
type trustRule struct{ pkg, recv, name string }

var trustTable = []trustRule{
	// Pure stdlib math.
	{"math", "*", "*"},
	{"math/bits", "*", "*"},
	// Fixed-width codecs write into caller buffers.
	{"encoding/binary", "littleEndian", "*"},
	{"encoding/binary", "bigEndian", "*"},
	{"encoding/binary", "", "Uvarint"},
	{"encoding/binary", "", "PutUvarint"},
	{"encoding/binary", "", "Varint"},
	{"encoding/binary", "", "PutVarint"},
	// errors.Join allocates only when at least one error is non-nil, i.e.
	// only off the steady path; errors.Is walks the chain without
	// allocating (and the steady-state chain is nil).
	{"errors", "", "Join"},
	{"errors", "", "Is"},
	// crc32's IEEE fast path builds its slicing-by-8 table once under a
	// sync.Once at first use; every subsequent checksum is table lookups
	// over the caller's bytes (vetted by the envelope-reader AllocsPerRun
	// pin).
	{"hash/crc32", "", "ChecksumIEEE"},
	// io.ReadFull fills a caller buffer; any allocation belongs to the
	// underlying Reader (the netserver read loop hands it a bufio.Reader
	// with a fixed buffer, vetted by the frame-path AllocsPerRun pin).
	{"io", "", "ReadFull"},
	// Lock/pool operations; Pool.Get is the amortized scratch contract.
	{"sync", "Mutex", "*"},
	{"sync", "RWMutex", "*"},
	{"sync", "Pool", "*"},
	// Deterministic randomness substrate (word-level API only; the
	// slice-returning helpers like SampleWithoutReplacement are absent).
	{"internal/randsrc", "", "Mix64"},
	{"internal/randsrc", "", "Derive"},
	{"internal/randsrc", "", "StreamWord"},
	{"internal/randsrc", "", "BernoulliThreshold"},
	{"internal/randsrc", "", "BernoulliWord"},
	{"internal/randsrc", "", "GeometricInv"},
	{"internal/randsrc", "", "GeometricWord"},
	{"internal/randsrc", "Rand", "Uint64"},
	{"internal/randsrc", "Rand", "Float64"},
	{"internal/randsrc", "Rand", "Intn"},
	{"internal/randsrc", "Rand", "IntnOther"},
	{"internal/randsrc", "Rand", "Bernoulli"},
	{"internal/randsrc", "Rand", "Geometric"},
	{"internal/randsrc", "SplitMix64", "Uint64"},
	{"internal/randsrc", "PCG", "Uint64"},
	{"internal/randsrc", "Source", "Uint64"},
	// Dense bit vectors: in-place accessors (not New/FromWords/Clone);
	// Grow is the amortized scratch-reuse contract.
	{"internal/bitset", "Bitset", "Len"},
	{"internal/bitset", "Bitset", "Words"},
	{"internal/bitset", "Bitset", "Get"},
	{"internal/bitset", "Bitset", "Set"},
	{"internal/bitset", "Bitset", "Flip"},
	{"internal/bitset", "Bitset", "Count"},
	{"internal/bitset", "Bitset", "Equal"},
	{"internal/bitset", "Bitset", "Reset"},
	{"internal/bitset", "Bitset", "Grow"},
	{"internal/bitset", "Bitset", "AccumulateInto"},
	// Privacy ledger: Charge is one amortized map write.
	{"internal/privacy", "Ledger", "Charge"},
	{"internal/privacy", "Ledger", "Spent"},
	// Universal hashing: stateless value types.
	{"internal/domain", "Bucketizer", "Bucket"},
	{"internal/domain", "Bucketizer", "BucketWidth"},
	{"internal/domain", "Bucketizer", "K"},
	{"internal/domain", "Bucketizer", "B"},

	{"internal/hashfamily", "Hash", "*"},
	{"internal/hashfamily", "SplitMixHash", "*"},
	{"internal/hashfamily", "CarterWegmanHash", "*"},
	// freqoracle's annotated surface, re-exported across package
	// boundaries (each entry is checked in freqoracle's own pass).
	{"internal/freqoracle", "", "AppendGRRReport"},
	{"internal/freqoracle", "", "AppendLHReport"},
	{"internal/freqoracle", "", "DecodeGRRReport"},
	{"internal/freqoracle", "", "DecodeLHReport"},
	{"internal/freqoracle", "", "ParseGRRPayload"},
	{"internal/freqoracle", "", "CheckUEPayload"},
	{"internal/freqoracle", "", "AccumulateUEPayload"},
	{"internal/freqoracle", "", "GRRPayloadBytes"},
	{"internal/freqoracle", "", "UEPayloadBytes"},
	{"internal/freqoracle", "GRR", "Perturb"},
	{"internal/freqoracle", "GRR", "PerturbWord"},
	{"internal/freqoracle", "GRR", "Params"},
	{"internal/freqoracle", "GRR", "K"},
	{"internal/freqoracle", "ReportSampler", "AppendReport"},
	{"internal/freqoracle", "ReportSampler", "K"},
	{"internal/freqoracle", "ReportSampler", "PayloadBytes"},
	// Contract interfaces of the longitudinal engine: implementations are
	// required (by this analyzer, in their own packages) to be noalloc.
	{"internal/longitudinal", "WireTallier", "TallyWire"},
	{"internal/longitudinal", "AppendReporter", "AppendReport"},
	{"internal/longitudinal", "AppendReporter", "WireRegistration"},
	// Columnar batch surface: the decoder reuses the batch's columns (the
	// payload column aliases the source) and the accessors slice them;
	// ColumnarTallier implementations carry their own annotations.
	{"internal/longitudinal", "", "DecodeColumnar"},
	{"internal/longitudinal", "ColumnarBatch", "Count"},
	{"internal/longitudinal", "ColumnarBatch", "HasRegistrations"},
	{"internal/longitudinal", "ColumnarBatch", "Payload"},
	{"internal/longitudinal", "ColumnarBatch", "Registration"},
	{"internal/longitudinal", "ColumnarTallier", "PayloadStride"},
	{"internal/longitudinal", "ColumnarTallier", "TallyCell"},
	// core's annotated surface, for the server package.
	{"internal/core", "Aggregator", "AddReport"},
	{"internal/core", "Client", "AppendReport"},
	// server's annotated ingestion surface, for the netserver frame loop.
	{"internal/server", "Stream", "Ingest"},
	{"internal/server", "Stream", "IngestBatch"},
	{"internal/server", "Stream", "IngestColumnar"},
}

func pkgMatch(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

func trusted(pkg, recv, name string) bool {
	for _, r := range trustTable {
		if pkgMatch(pkg, r.pkg) &&
			(r.recv == recv || r.recv == "*") &&
			(r.name == name || r.name == "*") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	ix := annot.NewIndex(pass.Fset, pass.Files)

	// Same-package trust: every annotated function may call every other.
	annotated := map[types.Object]bool{}
	var todo []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !annot.FuncHas(fd, "noalloc") {
				continue
			}
			if pass.IsTestFile(fd.Pos()) {
				pass.Reportf(fd.Pos(), "//loloha:noalloc on a _test.go function has no effect; pin allocations with testing.AllocsPerRun instead")
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				annotated[obj] = true
			}
			todo = append(todo, fd)
		}
	}
	for _, fd := range todo {
		c := &checker{pass: pass, ix: ix, annotated: annotated}
		if fd.Body != nil {
			c.block(fd.Body.List)
		}
	}
	return nil
}

type checker struct {
	pass      *analysis.Pass
	ix        *annot.Index
	annotated map[types.Object]bool
}

func (c *checker) bad(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format, args...)
}

// terminates reports whether the block's last statement diverges or exits.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		return isPanic(last.X)
	}
	return false
}

func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (c *checker) block(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	if s == nil || c.ix.At(s, "alloc-ok") {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		c.block(s.List)
	case *ast.IfStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		if !terminates(s.Body) || c.ix.At(s, "steady") {
			c.block(s.Body.List)
		}
		switch el := s.Else.(type) {
		case *ast.BlockStmt:
			if !terminates(el) || c.ix.At(s, "steady") {
				c.block(el.List)
			}
		case *ast.IfStmt:
			c.stmt(el)
		}
	case *ast.ForStmt:
		c.stmt(s.Init)
		c.expr(s.Cond)
		c.stmt(s.Post)
		c.block(s.Body.List)
	case *ast.RangeStmt:
		c.expr(s.X)
		c.block(s.Body.List)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.exprCtx(r, nil, true)
		}
	case *ast.AssignStmt:
		if s.Tok == token.ADD_ASSIGN && isString(c.pass.TypesInfo.TypeOf(s.Lhs[0])) {
			c.bad(s.Pos(), "string concatenation allocates")
			return
		}
		for i, rhs := range s.Rhs {
			var lhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				lhs = s.Lhs[i]
			}
			c.exprCtx(rhs, lhs, false)
		}
		for _, lhs := range s.Lhs {
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				// Map/slice index targets: check the index expression
				// (map growth on write is the amortized memo contract).
				c.expr(ix.Index)
			}
		}
	case *ast.ExprStmt:
		c.exprCtx(s.X, nil, false)
	case *ast.DeferStmt:
		c.call(s.Call, nil, false)
	case *ast.GoStmt:
		c.bad(s.Pos(), "go statement allocates a goroutine")
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.SwitchStmt:
		c.stmt(s.Init)
		c.expr(s.Tag)
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			for _, e := range clause.List {
				c.expr(e)
			}
			c.block(clause.Body)
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init)
		for _, cc := range s.Body.List {
			c.block(cc.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			c.stmt(clause.Comm)
			c.block(clause.Body)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// exprCtx walks e knowing its assignment target (for the self-append rule)
// and whether it sits in return position.
func (c *checker) exprCtx(e ast.Expr, lhs ast.Expr, retPos bool) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		c.call(call, lhs, retPos)
		return
	}
	c.expr(e)
}

func (c *checker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil, *ast.Ident, *ast.BasicLit:
	case *ast.ParenExpr:
		c.expr(e.X)
	case *ast.SelectorExpr:
		c.expr(e.X)
	case *ast.StarExpr:
		c.expr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				c.bad(e.Pos(), "address of composite literal allocates")
				return
			}
		}
		c.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && isString(c.pass.TypesInfo.TypeOf(e)) {
			c.bad(e.Pos(), "string concatenation allocates")
			return
		}
		if e.Op == token.EQL || e.Op == token.NEQ {
			c.cmpOperand(e.X)
			c.cmpOperand(e.Y)
			return
		}
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.CallExpr:
		c.call(e, nil, false)
	case *ast.CompositeLit:
		switch c.pass.TypesInfo.TypeOf(e).Underlying().(type) {
		case *types.Map:
			c.bad(e.Pos(), "map literal allocates")
		case *types.Slice:
			c.bad(e.Pos(), "slice literal allocates")
		default: // struct/array value: fine, check the elements
			for _, el := range e.Elts {
				c.expr(el)
			}
		}
	case *ast.FuncLit:
		c.bad(e.Pos(), "function literal allocates a closure")
	case *ast.IndexExpr:
		c.expr(e.X)
		if tv, ok := c.pass.TypesInfo.Types[e.Index]; !ok || !tv.IsType() {
			c.expr(e.Index)
		}
	case *ast.IndexListExpr:
		c.expr(e.X)
	case *ast.SliceExpr:
		c.expr(e.X)
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
	case *ast.TypeAssertExpr:
		c.expr(e.X)
	case *ast.KeyValueExpr:
		c.expr(e.Key)
		c.expr(e.Value)
	}
}

func (c *checker) call(call *ast.CallExpr, lhs ast.Expr, retPos bool) {
	info := c.pass.TypesInfo
	fun := ast.Unparen(call.Fun)
	tv := info.Types[call.Fun]

	if tv.IsBuiltin() {
		name := ""
		switch f := fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		}
		switch name {
		case "append":
			c.checkAppend(call, lhs, retPos)
		case "make":
			c.bad(call.Pos(), "make allocates")
		case "new":
			c.bad(call.Pos(), "new allocates")
		case "panic":
			// Diverging: the panic path may allocate its message.
		case "print", "println":
			c.bad(call.Pos(), "%s allocates (and has no place on a hot path)", name)
		default:
			for _, a := range call.Args {
				c.expr(a)
			}
		}
		return
	}

	if tv.IsType() { // conversion
		c.checkConversion(call, tv.Type)
		return
	}

	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	c.checkCallee(call, fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		c.expr(sel.X)
	}
	for i, a := range call.Args {
		c.exprCtx(a, nil, false)
		if sig != nil {
			c.checkBoxing(call, sig, i, a)
		}
	}
}

// checkAppend enforces the self-append contract: the result of append must
// flow back into its own first argument or be returned (the AppendReport
// convention, where the caller owns the buffer and growth is amortized).
func (c *checker) checkAppend(call *ast.CallExpr, lhs ast.Expr, retPos bool) {
	if len(call.Args) == 0 {
		return
	}
	dst := call.Args[0]
	if !retPos && (lhs == nil || render(c.pass.Fset, lhs) != render(c.pass.Fset, dst)) {
		c.bad(call.Pos(), "append result is neither returned nor assigned back to %s; growing another slice allocates untracked", render(c.pass.Fset, dst))
	}
	c.expr(dst)
	rest := call.Args[1:]
	if call.Ellipsis.IsValid() && len(rest) == 1 {
		if mk, ok := ast.Unparen(rest[0]).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(mk.Fun).(*ast.Ident); ok && id.Name == "make" {
				// append(dst, make([]T, n)...) is the compiler-recognized
				// bulk-extend; it allocates nothing when dst has capacity.
				for _, a := range mk.Args[1:] {
					c.expr(a)
				}
				return
			}
		}
	}
	for _, a := range rest {
		c.expr(a)
	}
}

func (c *checker) checkConversion(call *ast.CallExpr, target types.Type) {
	arg := call.Args[0]
	at := c.pass.TypesInfo.TypeOf(arg)
	switch target.Underlying().(type) {
	case *types.Basic:
		if isString(target) && !isString(at) && !isUntypedConst(c.pass.TypesInfo, arg) {
			c.bad(call.Pos(), "conversion to string allocates")
			return
		}
	case *types.Slice:
		if isString(at) {
			c.bad(call.Pos(), "string to slice conversion allocates")
			return
		}
	case *types.Interface:
		if boxAllocates(at) {
			c.bad(call.Pos(), "conversion to interface boxes %s", at)
			return
		}
	}
	c.expr(arg)
}

// checkCallee applies the trust rules to a non-builtin, non-conversion call.
func (c *checker) checkCallee(call *ast.CallExpr, fun ast.Expr) {
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		c.bad(call.Pos(), "dynamic call through a function value cannot be verified noalloc")
		return
	}
	pkg := fn.Pkg()
	if pkg == nil { // error.Error and friends from the universe scope
		return
	}
	recv := recvName(fn)
	if pkg == c.pass.Pkg {
		if c.annotated[fn] || trusted(pkg.Path(), recv, fn.Name()) {
			return
		}
		c.bad(call.Pos(), "calls %s, which is not annotated //loloha:noalloc", fn.Name())
		return
	}
	if trusted(pkg.Path(), recv, fn.Name()) {
		return
	}
	c.bad(call.Pos(), "calls %s.%s, which is not in the noalloc trust table", pkg.Path(), qualify(recv, fn.Name()))
}

func qualify(recv, name string) string {
	if recv == "" {
		return name
	}
	return "(" + recv + ")." + name
}

// checkBoxing flags a concrete, non-pointer-shaped argument passed to an
// interface-typed parameter: the conversion heap-allocates the value.
func (c *checker) checkBoxing(call *ast.CallExpr, sig *types.Signature, i int, arg ast.Expr) {
	params := sig.Params()
	var pt types.Type
	switch {
	case sig.Variadic() && i >= params.Len()-1:
		if call.Ellipsis.IsValid() {
			return // slice passed through, no per-element conversion
		}
		pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
	case i < params.Len():
		pt = params.At(i).Type()
	default:
		return
	}
	if _, ok := pt.Underlying().(*types.Interface); !ok {
		return
	}
	tv := c.pass.TypesInfo.Types[arg]
	if tv.IsNil() {
		return
	}
	at := tv.Type
	if _, ok := at.Underlying().(*types.Interface); ok {
		return
	}
	if boxAllocates(at) {
		c.bad(arg.Pos(), "passing %s to an interface parameter boxes it", at)
	}
}

// boxAllocates reports whether converting a value of type t to an interface
// heap-allocates: everything except pointer-shaped types does.
func boxAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.UntypedNil
	}
	return true
}

func recvName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// cmpOperand walks one operand of an ==/!= comparison, treating a direct
// []byte→string conversion as free: the compiler lowers string(b) == s to
// a length check plus memequal without materializing the string (the
// wire-reader magic checks depend on this).
func (c *checker) cmpOperand(e ast.Expr) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && isString(tv.Type) && isByteSlice(c.pass.TypesInfo.TypeOf(call.Args[0])) {
			c.expr(call.Args[0])
			return
		}
	}
	c.expr(e)
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func render(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	printer.Fprint(&b, fset, e)
	return b.String()
}
