package noalloc_test

import (
	"testing"

	"github.com/loloha-ldp/loloha/lint/analysistest"
	"github.com/loloha-ldp/loloha/lint/analyzers/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "noalloctest")
}
