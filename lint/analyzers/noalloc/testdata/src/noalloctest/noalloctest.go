// Package noalloctest exercises the noalloc analyzer.
package noalloctest

import (
	"errors"
	"fmt"
	"math"
)

type buf struct{ b []byte }

type iface interface{ M() }

type impl struct{ x int }

func (impl) M() {}

//loloha:noalloc
func selfAppend(dst []byte, x byte) []byte {
	dst = append(dst, x)                  // ok: self-append
	dst = append(dst, make([]byte, 4)...) // ok: compiler bulk-extend
	return append(dst, 0)                 // ok: returned append
}

//loloha:noalloc
func growsOther(dst, other []byte) []byte {
	other = append(dst, 1) // want "append result is neither returned nor assigned back"
	_ = other
	return dst
}

//loloha:noalloc
func allocates(n int) {
	_ = make([]int, n) // want "make allocates"
	_ = map[int]int{}  // want "map literal allocates"
	_ = []int{1, 2}    // want "slice literal allocates"
	_ = &buf{}         // want "address of composite literal allocates"
	f := func() {}     // want "function literal allocates a closure"
	f()                // want "dynamic call through a function value"
	go helper()        // want "go statement allocates a goroutine"
}

//loloha:noalloc
func concat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//loloha:noalloc
func convert(b []byte) string {
	return string(b) // want "conversion to string allocates"
}

//loloha:noalloc
func magicCheck(b []byte) bool {
	// string(b) used directly as a comparison operand is lowered to
	// memequal — no string is materialized.
	return string(b[:4]) == "LME1" && string(b) != "nope"
}

func makeString() string { return "x" }

//loloha:noalloc
func cmpStillChecksOperands(b []byte) bool {
	return string(b) == makeString() // want "calls makeString, which is not annotated"
}

//loloha:noalloc
func runeConversionStillFlagged(r rune) bool {
	return string(r) == "a" // want "conversion to string allocates"
}

//loloha:noalloc
func callsFmt(x int) {
	fmt.Println(x) // want "not in the noalloc trust table" "boxes it"
}

//loloha:noalloc
func trustedMath(x float64) float64 {
	return math.Sqrt(x) // ok: trusted stdlib
}

func helper() {}

//loloha:noalloc
func callsHelper() {
	helper() // want "calls helper, which is not annotated"
}

//loloha:noalloc
func callsAnnotated(dst []byte) []byte {
	return selfAppend(dst, 1) // ok: same-package //loloha:noalloc callee
}

//loloha:noalloc
func errorPath(n int) error {
	if n < 0 {
		return fmt.Errorf("negative %d", n) // ok: terminating error branch
	}
	return nil
}

var errNegative = errors.New("negative")

//loloha:noalloc
func steadyBranch(n int) error {
	//loloha:steady
	if n >= 0 {
		_ = make([]int, n) // want "make allocates"
		return nil
	}
	return errNegative // ok: sentinel errors do not allocate
}

//loloha:noalloc
func coldPath(m map[int][]int, k int) []int {
	v, ok := m[k]
	if !ok {
		//loloha:alloc-ok first materialization, amortized over reuse
		v = make([]int, 8)
		m[k] = v // ok: amortized map write
	}
	return v
}

//loloha:noalloc
func guarded(i, n int) {
	if i >= n {
		panic(fmt.Sprintf("index %d out of %d", i, n)) // ok: panic path
	}
}

//loloha:noalloc
func takesIface(_ iface) {}

//loloha:noalloc
func boxing(p *impl, s impl) {
	takesIface(p) // ok: pointers are interface-shaped
	takesIface(s) // want "boxes it"
}

// unannotated may do anything.
func unannotated() []int {
	return []int{1, 2, 3}
}
