package lockorder_test

import (
	"testing"

	"github.com/loloha-ldp/loloha/lint/analysistest"
	"github.com/loloha-ldp/loloha/lint/analyzers/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockfix/internal/server")
}
