// Package lockorder enforces the server's lock discipline (the PR 2/3
// decode-outside-lock design) inside packages whose import path ends in
// internal/server or internal/netserver:
//
//   - No Decoder.Decode call while a sync.Mutex (shard lock) or an
//     exclusively held sync.RWMutex is held. Decoding under the shared
//     stream lock is the IngestBatch phase-2 design and is allowed.
//   - No channel send or receive while any lock is held, unless the send
//     is occupancy-guarded in the same block (`if len(ch) == cap(ch)
//     { continue }` before it) or marked //loloha:locksafe. close() never
//     blocks and is always allowed.
//   - No call through a function-typed value (user callback) and no
//     Subscribe call while any lock is held.
//   - Lock ranking: the stream RWMutex is the outer lock, shard Mutexes
//     are inner. Acquiring an RWMutex while holding a Mutex, or a second
//     Mutex while one is held, is an inversion. Re-acquiring a held lock
//     is a self-deadlock.
//
// WireTallier.TallyWire deliberately runs under the shard lock (tallies
// are integer adds); its allocation behaviour is noalloc's job, so it is
// not banned here.
//
// The analysis is intra-function and syntactic about lock identity (the
// rendered receiver expression, e.g. "sh.mu"). Functions whose name ends
// in "Locked" are analyzed as holding the stream lock exclusively.
package lockorder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"github.com/loloha-ldp/loloha/lint/analysis"
	"github.com/loloha-ldp/loloha/lint/annot"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "internal/server must not decode, send, or call back while holding locks out of rank",
	Run:  run,
}

// scopes are the import-path suffixes the discipline applies to: the
// collection engine and the network daemon fronting it (whose SSE hub
// must follow the same occupancy-guarded-send rule as the round
// publisher).
var scopes = []string{"internal/server", "internal/netserver"}

type lockKind int

const (
	mutexHeld lockKind = iota // sync.Mutex, the inner (shard) rank
	rwShared                  // sync.RWMutex held via RLock
	rwExcl                    // sync.RWMutex held via Lock
)

// lockedByConvention is the synthetic key seeded for *Locked functions.
const lockedByConvention = "s.mu"

type lockSet map[string]lockKind

func (ls lockSet) clone() lockSet {
	c := make(lockSet, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func (ls lockSet) anyMutex() (string, bool) {
	for k, v := range ls {
		if v == mutexHeld {
			return k, true
		}
	}
	return "", false
}

func (ls lockSet) anyExclusive() (string, bool) {
	for k, v := range ls {
		if v == mutexHeld || v == rwExcl {
			return k, true
		}
	}
	return "", false
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	inScope := false
	for _, scope := range scopes {
		if path == scope || strings.HasSuffix(path, "/"+scope) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	ix := annot.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.IsTestFile(fd.Pos()) {
				continue
			}
			held := lockSet{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				held[lockedByConvention] = rwExcl
			}
			c := &checker{pass: pass, ix: ix}
			c.blockStmts(fd.Body.List, held)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	ix   *annot.Index
}

// blockStmts walks one statement list, threading lock acquisitions
// sequentially and remembering which channels an earlier sibling
// occupancy-guarded.
func (c *checker) blockStmts(list []ast.Stmt, held lockSet) {
	guarded := map[string]bool{}
	for _, s := range list {
		if ch, ok := occupancyGuard(s); ok {
			guarded[ch] = true
		}
		c.stmt(s, held, guarded)
	}
}

// occupancyGuard recognizes `if len(ch) == cap(ch) { continue/break/return }`
// and returns the rendered channel expression.
func occupancyGuard(s ast.Stmt) (string, bool) {
	ifs, ok := s.(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Else != nil || !terminates(ifs.Body) {
		return "", false
	}
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.EQL {
		return "", false
	}
	lc, lok := builtinArg(bin.X, "len", "cap")
	rc, rok := builtinArg(bin.Y, "len", "cap")
	if !lok || !rok || lc != rc {
		return "", false
	}
	return lc, true
}

// builtinArg matches a call to one of the named builtins and returns its
// rendered argument.
func builtinArg(e ast.Expr, names ...string) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	for _, n := range names {
		if id.Name == n {
			return render(call.Args[0]), true
		}
	}
	return "", false
}

func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

func (c *checker) stmt(s ast.Stmt, held lockSet, guarded map[string]bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		c.blockStmts(s.List, held)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, meth, rw, isOp := c.lockOp(call); isOp {
				c.applyLockOp(call.Pos(), held, key, meth, rw)
				return
			}
		}
		c.exprs(held, s.X)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to function end (so no
		// change to held); other deferred work runs outside this walk.
		return
	case *ast.IfStmt:
		c.stmt(s.Init, held, guarded)
		c.exprs(held, s.Cond)
		c.blockStmts(s.Body.List, held.clone())
		if s.Else != nil {
			c.stmt(s.Else, held.clone(), guarded)
		}
	case *ast.ForStmt:
		c.stmt(s.Init, held, guarded)
		c.exprs(held, s.Cond)
		inner := held.clone()
		c.blockStmts(s.Body.List, inner)
		c.stmt(s.Post, inner, guarded)
	case *ast.RangeStmt:
		c.exprs(held, s.X)
		c.blockStmts(s.Body.List, held.clone())
	case *ast.SendStmt:
		c.checkSend(s, held, guarded)
		c.exprs(held, s.Value)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.exprs(held, r)
		}
	case *ast.AssignStmt:
		c.exprs(held, s.Rhs...)
		c.exprs(held, s.Lhs...)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.exprs(held, vs.Values...)
				}
			}
		}
	case *ast.SwitchStmt:
		c.stmt(s.Init, held, guarded)
		c.exprs(held, s.Tag)
		for _, cc := range s.Body.List {
			c.blockStmts(cc.(*ast.CaseClause).Body, held.clone())
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, held, guarded)
		for _, cc := range s.Body.List {
			c.blockStmts(cc.(*ast.CaseClause).Body, held.clone())
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			c.stmt(clause.Comm, held.clone(), guarded)
			c.blockStmts(clause.Body, held.clone())
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, held, guarded)
	case *ast.IncDecStmt:
		c.exprs(held, s.X)
	case *ast.GoStmt:
		// The goroutine body runs without the caller's locks.
		return
	}
}

func (c *checker) checkSend(s *ast.SendStmt, held lockSet, guarded map[string]bool) {
	if len(held) == 0 {
		return
	}
	if guarded[render(s.Chan)] || c.ix.At(s, "locksafe") {
		return
	}
	c.pass.Reportf(s.Pos(), "channel send on %s while holding %s may block the lock; guard with `if len(ch) == cap(ch)` or mark //loloha:locksafe", render(s.Chan), holdList(held))
}

// applyLockOp mutates held for a Lock/Unlock/RLock/RUnlock call and reports
// rank inversions and re-acquisitions.
func (c *checker) applyLockOp(pos token.Pos, held lockSet, key, meth string, rw bool) {
	switch meth {
	case "Lock", "RLock":
		if _, ok := held[key]; ok {
			c.pass.Reportf(pos, "%s is already held; re-acquiring self-deadlocks", key)
			return
		}
		kind := mutexHeld
		if rw {
			kind = rwExcl
			if meth == "RLock" {
				kind = rwShared
			}
		}
		if inner, ok := held.anyMutex(); ok {
			// Mutexes are the inner (shard) rank: nothing is acquired
			// after one.
			c.pass.Reportf(pos, "acquiring %s while holding %s inverts the stream-before-shard lock order", key, inner)
		}
		held[key] = kind
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// lockOp matches a call to (*sync.Mutex)/(*sync.RWMutex) Lock/Unlock/
// RLock/RUnlock and returns the lock's identity.
func (c *checker) lockOp(call *ast.CallExpr) (key, meth string, rw, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false, false
	}
	t := c.pass.TypesInfo.TypeOf(sel.X)
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return "", "", false, false
	}
	switch n.Obj().Name() {
	case "Mutex":
		return render(sel.X), sel.Sel.Name, false, true
	case "RWMutex":
		return render(sel.X), sel.Sel.Name, true, true
	}
	return "", "", false, false
}

// exprs inspects expressions for banned calls and receives under held locks.
func (c *checker) exprs(held lockSet, list ...ast.Expr) {
	for _, e := range list {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // runs later, without these locks
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && len(held) > 0 && !c.ix.At(n, "locksafe") {
					c.pass.Reportf(n.Pos(), "channel receive while holding %s may block the lock", holdList(held))
				}
			case *ast.CallExpr:
				c.checkCall(n, held)
			}
			return true
		})
	}
}

func (c *checker) checkCall(call *ast.CallExpr, held lockSet) {
	if len(held) == 0 {
		return
	}
	tv := c.pass.TypesInfo.Types[call.Fun]
	if tv.IsBuiltin() || tv.IsType() {
		return // close(), len(), conversions: never block
	}
	fun := ast.Unparen(call.Fun)
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[f.Sel]
	}
	fn, isFunc := obj.(*types.Func)
	if !isFunc {
		if _, isSig := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); isSig && !c.ix.At(call, "locksafe") {
			c.pass.Reportf(call.Pos(), "call through a function value (user callback) while holding %s", holdList(held))
		}
		return
	}
	switch fn.Name() {
	case "Decode":
		if c.ix.At(call, "locksafe") {
			return
		}
		if lk, bad := held.anyExclusive(); bad {
			c.pass.Reportf(call.Pos(), "Decoder.Decode while holding %s exclusively; decode outside the lock (IngestBatch phase 2) or mark //loloha:locksafe", lk)
		}
	case "Subscribe":
		if !c.ix.At(call, "locksafe") {
			c.pass.Reportf(call.Pos(), "Subscribe while holding %s can deliver under the lock", holdList(held))
		}
	}
}

func holdList(held lockSet) string {
	var keys []string
	for k := range held {
		keys = append(keys, k)
	}
	// Deterministic message for tests: small sets, insertion order varies.
	if len(keys) > 1 {
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
	}
	return strings.Join(keys, ", ")
}

func render(e ast.Expr) string {
	var b bytes.Buffer
	printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}
