// Package server exercises the lockorder analyzer.
package server

import "sync"

type decoder interface {
	Decode(p []byte) (int, error)
}

type stream struct {
	mu   sync.RWMutex
	dec  decoder
	subs []chan int
	cb   func(int)
}

type shard struct {
	mu sync.Mutex
}

func (s *stream) decodeUnderShardLock(sh *shard, p []byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.dec.Decode(p) // want "Decoder.Decode while holding sh.mu exclusively"
}

func (s *stream) decodeUnderRLock(p []byte) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.dec.Decode(p) // ok: shared stream lock (the IngestBatch phase-2 design)
}

func (s *stream) decodeOutside(sh *shard, p []byte) {
	sh.mu.Lock()
	sh.mu.Unlock()
	s.dec.Decode(p) // ok: lock already released
}

func (s *stream) decodeMarkedSafe(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dec.Decode(p) //loloha:locksafe construction-time decode, nothing concurrent yet
}

func (s *stream) sendUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range s.subs {
		sub <- v // want "channel send on sub while holding s.mu"
	}
}

func (s *stream) guardedSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range s.subs {
		if len(sub) == cap(sub) {
			continue
		}
		sub <- v // ok: occupancy-guarded, cannot block
	}
}

func (s *stream) callbackUnderLock(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cb(v) // want "call through a function value"
}

func (s *stream) callbackOutside(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.cb(v) // ok: released before the callback
}

func inversion(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want "inverts the stream-before-shard lock order"
	b.mu.Unlock()
	a.mu.Unlock()
}

func (s *stream) shardUnderStream(sh *shard) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh.mu.Lock() // ok: stream-before-shard is the canonical order
	sh.mu.Unlock()
}

func (s *stream) reacquire() {
	s.mu.Lock()
	s.mu.Lock() // want "already held; re-acquiring self-deadlocks"
	s.mu.Unlock()
}

func (s *stream) publishLocked(v int) {
	for _, sub := range s.subs {
		sub <- v // want "channel send on sub while holding s.mu"
	}
}

func (s *stream) closeAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sub := range s.subs {
		close(sub) // ok: close never blocks
	}
}
