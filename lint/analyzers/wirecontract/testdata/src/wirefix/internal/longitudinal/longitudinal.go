// Package longitudinal exercises the wirecontract analyzer with a
// miniature replica of the registry surface.
package longitudinal

type ProtocolSpec struct{ Name string }

type Protocol interface{ K() int }

type SpecProtocol interface {
	Protocol
	Spec() ProtocolSpec
}

type WireTallier interface{ TallyWire(payload []byte) error }

type ColumnarTallier interface {
	WireTallier
	PayloadStride() int
}

type TallyProtocol interface{ WireTallier() WireTallier }

type AppendReporter interface{ AppendReport([]byte, int) []byte }

type Aggregator interface{ EndRound() []float64 }

// SnapshotTallier is the durability contract: aggregators that can
// export and re-import their tally state for snapshots and merges.
type SnapshotTallier interface {
	ExportTally(dst []int64) ([]int64, int)
	ImportTally(counts []int64, n int) error
}

type FamilyInfo struct {
	Build func(ProtocolSpec) (Protocol, error)
}

func RegisterFamily(name string, info FamilyInfo) {}

func RegisterWireDecoder(name string, mk func() int) {}

// goodTallier supports both the row and the columnar tally paths.
type goodTallier struct{}

func (goodTallier) TallyWire(payload []byte) error { return nil }
func (goodTallier) PayloadStride() int             { return 1 }

// good is the fully asserted fast-path family.
type good struct{}

func (*good) K() int                   { return 2 }
func (*good) Spec() ProtocolSpec       { return ProtocolSpec{Name: "good"} }
func (*good) WireTallier() WireTallier { return goodTallier{} }

func (p *good) NewClient(seed uint64) *goodClient { return &goodClient{} }
func (p *good) NewAggregator() Aggregator         { return &goodAgg{} }

type goodClient struct{}

func (*goodClient) AppendReport(dst []byte, v int) []byte { return dst }

// goodAgg carries the full durability contract.
type goodAgg struct{}

func (*goodAgg) EndRound() []float64                     { return nil }
func (*goodAgg) ExportTally(dst []int64) ([]int64, int)  { return dst, 0 }
func (*goodAgg) ImportTally(counts []int64, n int) error { return nil }

var (
	_ SpecProtocol    = (*good)(nil)
	_ TallyProtocol   = (*good)(nil)
	_ AppendReporter  = (*goodClient)(nil)
	_ ColumnarTallier = goodTallier{}
	_ SnapshotTallier = (*goodAgg)(nil)
)

// missing implements the fast path but forgot its assertions. Its tallier
// is the already-reported goodTallier, so only the protocol assertions are
// flagged.
type missing struct{}

func (*missing) K() int                   { return 2 }
func (*missing) Spec() ProtocolSpec       { return ProtocolSpec{Name: "missing"} }
func (*missing) WireTallier() WireTallier { return goodTallier{} }

// boxedProto implements only the boxed minimum.
type boxedProto struct{}

func (*boxedProto) K() int             { return 2 }
func (*boxedProto) Spec() ProtocolSpec { return ProtocolSpec{Name: "boxed"} }

var _ SpecProtocol = (*boxedProto)(nil)

// rowTallier handles single reports only: no PayloadStride, so columnar
// batches for this family re-frame per report.
type rowTallier struct{}

func (rowTallier) TallyWire(payload []byte) error { return nil }

// rowOnly is asserted for the protocol interfaces but its tallier never
// grew a columnar path.
type rowOnly struct{}

func (*rowOnly) K() int                   { return 2 }
func (*rowOnly) Spec() ProtocolSpec       { return ProtocolSpec{Name: "rowOnly"} }
func (*rowOnly) WireTallier() WireTallier { return rowTallier{} }

var (
	_ SpecProtocol  = (*rowOnly)(nil)
	_ TallyProtocol = (*rowOnly)(nil)
)

// colTallier implements the columnar path but forgot its assertion.
type colTallier struct{}

func (colTallier) TallyWire(payload []byte) error { return nil }
func (colTallier) PayloadStride() int             { return 1 }

type colMissing struct{}

func (*colMissing) K() int                   { return 2 }
func (*colMissing) Spec() ProtocolSpec       { return ProtocolSpec{Name: "colMissing"} }
func (*colMissing) WireTallier() WireTallier { return colTallier{} }

var (
	_ SpecProtocol  = (*colMissing)(nil)
	_ TallyProtocol = (*colMissing)(nil)
)

// snapNoAgg tallies but cannot export its counts: the family cannot take
// part in snapshots or collector-tree merges.
type snapNoAgg struct{}

func (*snapNoAgg) EndRound() []float64 { return nil }

type snapNo struct{}

func (*snapNo) K() int                    { return 2 }
func (*snapNo) Spec() ProtocolSpec        { return ProtocolSpec{Name: "snapNo"} }
func (*snapNo) WireTallier() WireTallier  { return goodTallier{} }
func (*snapNo) NewAggregator() Aggregator { return &snapNoAgg{} }

var (
	_ SpecProtocol  = (*snapNo)(nil)
	_ TallyProtocol = (*snapNo)(nil)
)

// snapMissingAgg implements the durability contract but forgot the
// assertion that keeps it implemented.
type snapMissingAgg struct{}

func (*snapMissingAgg) EndRound() []float64                     { return nil }
func (*snapMissingAgg) ExportTally(dst []int64) ([]int64, int)  { return dst, 0 }
func (*snapMissingAgg) ImportTally(counts []int64, n int) error { return nil }

type snapMissing struct{}

func (*snapMissing) K() int                    { return 2 }
func (*snapMissing) Spec() ProtocolSpec        { return ProtocolSpec{Name: "snapMissing"} }
func (*snapMissing) WireTallier() WireTallier  { return goodTallier{} }
func (*snapMissing) NewAggregator() Aggregator { return &snapMissingAgg{} }

var (
	_ SpecProtocol  = (*snapMissing)(nil)
	_ TallyProtocol = (*snapMissing)(nil)
)

func init() {
	RegisterFamily("good", FamilyInfo{ // ok: implemented and asserted
		Build: func(s ProtocolSpec) (Protocol, error) { return &good{}, nil },
	})
	RegisterFamily("missing", FamilyInfo{ // want "var _ SpecProtocol" "var _ TallyProtocol"
		Build: func(s ProtocolSpec) (Protocol, error) { return &missing{}, nil },
	})
	RegisterFamily("boxed", FamilyInfo{ // want "does not implement TallyProtocol"
		Build: func(s ProtocolSpec) (Protocol, error) { return &boxedProto{}, nil },
	})
	RegisterFamily("rowOnly", FamilyInfo{ // want "does not implement ColumnarTallier"
		Build: func(s ProtocolSpec) (Protocol, error) { return &rowOnly{}, nil },
	})
	RegisterFamily("colMissing", FamilyInfo{ // want "var _ ColumnarTallier"
		Build: func(s ProtocolSpec) (Protocol, error) { return &colMissing{}, nil },
	})
	RegisterFamily("snapNo", FamilyInfo{ // want "does not implement SnapshotTallier"
		Build: func(s ProtocolSpec) (Protocol, error) { return &snapNo{}, nil },
	})
	RegisterFamily("snapMissing", FamilyInfo{ // want "var _ SnapshotTallier"
		Build: func(s ProtocolSpec) (Protocol, error) { return &snapMissing{}, nil },
	})
	//loloha:boxed decoder-compat shim kept for the legacy wire format
	RegisterWireDecoder("legacy", func() int { return 0 })
	RegisterWireDecoder("loud", func() int { return 0 }) // want "decoder-only family"
}
