// Package longitudinal exercises the wirecontract analyzer with a
// miniature replica of the registry surface.
package longitudinal

type ProtocolSpec struct{ Name string }

type Protocol interface{ K() int }

type SpecProtocol interface {
	Protocol
	Spec() ProtocolSpec
}

type TallyProtocol interface{ WireTallier() int }

type AppendReporter interface{ AppendReport([]byte, int) []byte }

type FamilyInfo struct {
	Build func(ProtocolSpec) (Protocol, error)
}

func RegisterFamily(name string, info FamilyInfo) {}

func RegisterWireDecoder(name string, mk func() int) {}

// good is the fully asserted fast-path family.
type good struct{}

func (*good) K() int             { return 2 }
func (*good) Spec() ProtocolSpec { return ProtocolSpec{Name: "good"} }
func (*good) WireTallier() int   { return 0 }

func (p *good) NewClient(seed uint64) *goodClient { return &goodClient{} }

type goodClient struct{}

func (*goodClient) AppendReport(dst []byte, v int) []byte { return dst }

var (
	_ SpecProtocol   = (*good)(nil)
	_ TallyProtocol  = (*good)(nil)
	_ AppendReporter = (*goodClient)(nil)
)

// missing implements the fast path but forgot its assertions.
type missing struct{}

func (*missing) K() int             { return 2 }
func (*missing) Spec() ProtocolSpec { return ProtocolSpec{Name: "missing"} }
func (*missing) WireTallier() int   { return 0 }

// boxedProto implements only the boxed minimum.
type boxedProto struct{}

func (*boxedProto) K() int             { return 2 }
func (*boxedProto) Spec() ProtocolSpec { return ProtocolSpec{Name: "boxed"} }

var _ SpecProtocol = (*boxedProto)(nil)

func init() {
	RegisterFamily("good", FamilyInfo{ // ok: implemented and asserted
		Build: func(s ProtocolSpec) (Protocol, error) { return &good{}, nil },
	})
	RegisterFamily("missing", FamilyInfo{ // want "var _ SpecProtocol" "var _ TallyProtocol"
		Build: func(s ProtocolSpec) (Protocol, error) { return &missing{}, nil },
	})
	RegisterFamily("boxed", FamilyInfo{ // want "does not implement TallyProtocol"
		Build: func(s ProtocolSpec) (Protocol, error) { return &boxedProto{}, nil },
	})
	//loloha:boxed decoder-compat shim kept for the legacy wire format
	RegisterWireDecoder("legacy", func() int { return 0 })
	RegisterWireDecoder("loud", func() int { return 0 }) // want "decoder-only family"
}
