package wirecontract_test

import (
	"testing"

	"github.com/loloha-ldp/loloha/lint/analysistest"
	"github.com/loloha-ldp/loloha/lint/analyzers/wirecontract"
)

func TestWirecontract(t *testing.T) {
	analysistest.Run(t, "testdata", wirecontract.Analyzer, "wirefix/internal/longitudinal")
}
