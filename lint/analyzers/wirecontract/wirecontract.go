// Package wirecontract keeps protocol families on the fast wire path. A
// family registered with longitudinal.RegisterFamily whose protocol or
// client type silently stops implementing the fast-path interfaces
// (TallyProtocol for tally-direct ingestion, AppendReporter for
// allocation-free report generation) degrades to the boxed Report path
// with no compile error — the engine still works, just slower. The
// analyzer makes that degradation loud:
//
//   - Every concrete protocol type returned by a family's Build hook must
//     carry a package-level compile-time assertion
//     `var _ longitudinal.SpecProtocol = (*T)(nil)` — and must implement
//     the interface in the first place.
//   - If the protocol implements TallyProtocol, the same assertion is
//     required for it; if it does not, the registration is flagged as
//     falling back to the boxed path unless marked //loloha:boxed <why>.
//   - The concrete client type returned by the protocol's NewClient must
//     implement AppendReporter and carry its assertion, with the same
//     //loloha:boxed escape.
//   - The concrete tallier returned by a TallyProtocol's WireTallier must
//     implement ColumnarTallier (the decode-free batch fast path) and
//     carry its assertion; a row-only tallier is flagged unless marked
//     //loloha:boxed <why>.
//   - The concrete aggregator returned by a fast-path (TallyProtocol)
//     family's NewAggregator must implement SnapshotTallier (the
//     durability contract: snapshot/restore and collector-tree merges
//     serialize tally state through it) and carry its assertion; an
//     aggregator without it is flagged unless marked //loloha:boxed <why>.
//   - RegisterWireDecoder registers a decoder-only (inherently boxed)
//     family and always requires the //loloha:boxed marker.
//
// Resolution is intra-package and one level deep: Build/NewClient bodies
// whose returns have concrete static types (the idiom everywhere in this
// repository) are resolved; a hook returning an interface-typed expression
// that cannot be resolved is skipped, not flagged.
package wirecontract

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/loloha-ldp/loloha/lint/analysis"
	"github.com/loloha-ldp/loloha/lint/annot"
)

// Analyzer is the wirecontract pass.
var Analyzer = &analysis.Analyzer{
	Name: "wirecontract",
	Doc:  "registered families must assert their fast-path interfaces so boxed fallback cannot happen silently",
	Run:  run,
}

// registryPkg is the import-path suffix of the registry package.
const registryPkg = "internal/longitudinal"

// assertion is one package-level `var _ Iface = value`.
type assertion struct {
	iface    types.Type
	concrete types.Type
}

func run(pass *analysis.Pass) error {
	asserts := collectAssertions(pass)
	reported := map[string]bool{} // (type, iface) dedup across families
	ix := annot.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != registryPkg && !strings.HasSuffix(path, "/"+registryPkg) {
				return true
			}
			switch fn.Name() {
			case "RegisterWireDecoder":
				if !ix.At(call, "boxed") {
					pass.Reportf(call.Pos(), "RegisterWireDecoder registers a decoder-only family that always takes the boxed Report path; mark //loloha:boxed <why> or register a full family")
				}
			case "RegisterFamily":
				checkFamily(pass, ix, asserts, reported, call, fn.Pkg())
			}
			return true
		})
	}
	return nil
}

func checkFamily(pass *analysis.Pass, ix *annot.Index, asserts []assertion, reported map[string]bool, call *ast.CallExpr, registry *types.Package) {
	if len(call.Args) < 2 {
		return
	}
	info, ok := ast.Unparen(call.Args[1]).(*ast.CompositeLit)
	if !ok {
		return
	}
	var build ast.Expr
	for _, el := range info.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Build" {
			build = kv.Value
		}
	}
	if build == nil {
		return
	}
	specIface := lookupIface(registry, "SpecProtocol")
	tallyIface := lookupIface(registry, "TallyProtocol")
	reporterIface := lookupIface(registry, "AppendReporter")
	columnarIface := lookupIface(registry, "ColumnarTallier")
	snapIface := lookupIface(registry, "SnapshotTallier")

	for _, proto := range resolveReturns(pass, build) {
		key := proto.String()
		if reported[key] {
			continue
		}
		reported[key] = true

		if specIface != nil {
			switch {
			case !implements(proto, specIface):
				pass.Reportf(call.Pos(), "%s does not implement SpecProtocol; spec round-trips (SpecOf, registry rebuilds) will fail", proto)
			case !asserted(asserts, specIface, proto):
				pass.Reportf(call.Pos(), "missing compile-time assertion: var _ SpecProtocol = (%s)(nil)", proto)
			}
		}
		if tallyIface != nil {
			switch {
			case !implements(proto, tallyIface):
				if !ix.At(call, "boxed") {
					pass.Reportf(call.Pos(), "%s does not implement TallyProtocol: ingestion falls back to the boxed Decoder path; implement WireTallier or mark //loloha:boxed <why>", proto)
				}
			case !asserted(asserts, tallyIface, proto):
				pass.Reportf(call.Pos(), "missing compile-time assertion: var _ TallyProtocol = (%s)(nil)", proto)
			}
		}
		if columnarIface != nil && tallyIface != nil && implements(proto, tallyIface) {
			if tallier := resolveMethodReturn(pass, proto, "WireTallier"); tallier != nil {
				tkey := tallier.String() + " columnar"
				if !reported[tkey] {
					reported[tkey] = true
					switch {
					case !implements(tallier, columnarIface):
						if !ix.At(call, "boxed") {
							pass.Reportf(call.Pos(), "tallier %s does not implement ColumnarTallier: columnar batches fall back to per-report re-framing; implement TallyCell or mark //loloha:boxed <why>", tallier)
						}
					case !asserted(asserts, columnarIface, tallier):
						pass.Reportf(call.Pos(), "missing compile-time assertion: var _ ColumnarTallier = %s", zeroValueOf(tallier))
					}
				}
			}
		}
		if snapIface != nil && tallyIface != nil && implements(proto, tallyIface) {
			if agg := resolveMethodReturn(pass, proto, "NewAggregator"); agg != nil {
				akey := agg.String() + " snapshot"
				if !reported[akey] {
					reported[akey] = true
					switch {
					case !implements(agg, snapIface):
						if !ix.At(call, "boxed") {
							pass.Reportf(call.Pos(), "aggregator %s does not implement SnapshotTallier: this family cannot snapshot/restore or merge across a collector tree; implement ExportTally/ImportTally or mark //loloha:boxed <why>", agg)
						}
					case !asserted(asserts, snapIface, agg):
						pass.Reportf(call.Pos(), "missing compile-time assertion: var _ SnapshotTallier = %s", zeroValueOf(agg))
					}
				}
			}
		}
		if reporterIface == nil {
			continue
		}
		client := resolveClientType(pass, proto)
		if client == nil {
			continue
		}
		ckey := client.String() + " reporter"
		if reported[ckey] {
			continue
		}
		reported[ckey] = true
		switch {
		case !implements(client, reporterIface):
			if !ix.At(call, "boxed") {
				pass.Reportf(call.Pos(), "client %s does not implement AppendReporter: report generation falls back to the boxed Report path; mark //loloha:boxed <why> if intended", client)
			}
		case !asserted(asserts, reporterIface, client):
			pass.Reportf(call.Pos(), "missing compile-time assertion: var _ AppendReporter = (%s)(nil)", client)
		}
	}
}

// collectAssertions gathers every package-level `var _ Iface = value`.
func collectAssertions(pass *analysis.Pass) []assertion {
	var out []assertion
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil || len(vs.Names) != 1 || vs.Names[0].Name != "_" || len(vs.Values) != 1 {
					continue
				}
				iface := pass.TypesInfo.TypeOf(vs.Type)
				if iface == nil {
					continue
				}
				if _, ok := iface.Underlying().(*types.Interface); !ok {
					continue
				}
				concrete := pass.TypesInfo.TypeOf(vs.Values[0])
				if concrete == nil {
					continue
				}
				out = append(out, assertion{iface: iface, concrete: concrete})
			}
		}
	}
	return out
}

func asserted(asserts []assertion, iface *types.Interface, concrete types.Type) bool {
	for _, a := range asserts {
		if !types.Identical(a.iface.Underlying(), iface) {
			continue
		}
		if types.Identical(a.concrete, concrete) || types.Identical(a.concrete, types.NewPointer(concrete)) {
			return true
		}
	}
	return false
}

func implements(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

func lookupIface(pkg *types.Package, name string) *types.Interface {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[f]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[f.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// resolveReturns collects the concrete static types of the first result of
// every return in a Build hook (a func literal, or a named function whose
// declared first result is already concrete).
func resolveReturns(pass *analysis.Pass, build ast.Expr) []types.Type {
	var out []types.Type
	add := func(t types.Type) {
		t = firstOfTuple(t)
		if t == nil {
			return
		}
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			return // unresolvable: the hook genuinely returns an interface
		}
		for _, seen := range out {
			if types.Identical(seen, t) {
				return
			}
		}
		out = append(out, t)
	}
	switch b := ast.Unparen(build).(type) {
	case *ast.FuncLit:
		forEachReturn(b.Body, func(ret *ast.ReturnStmt) {
			if len(ret.Results) == 0 {
				return
			}
			tv := pass.TypesInfo.Types[ret.Results[0]]
			if tv.IsNil() {
				return
			}
			add(tv.Type)
		})
	default:
		if sig, ok := pass.TypesInfo.TypeOf(build).(*types.Signature); ok && sig.Results().Len() > 0 {
			add(sig.Results().At(0).Type())
		}
	}
	return out
}

// resolveClientType finds the concrete type returned by proto's NewClient
// by reading its declaration in this package.
func resolveClientType(pass *analysis.Pass, proto types.Type) types.Type {
	return resolveMethodReturn(pass, proto, "NewClient")
}

// resolveMethodReturn finds the concrete static type of the first result
// returned by proto's named method, by reading the method's declaration in
// this package. Returns nil when the method or its body is elsewhere, or
// when every return is interface-typed (unresolvable, so skipped).
func resolveMethodReturn(pass *analysis.Pass, proto types.Type, method string) types.Type {
	obj, _, _ := types.LookupFieldOrMethod(proto, true, pass.Pkg, method)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	fd := declOf(pass, fn)
	if fd == nil || fd.Body == nil {
		return nil
	}
	var client types.Type
	forEachReturn(fd.Body, func(ret *ast.ReturnStmt) {
		if client != nil || len(ret.Results) == 0 {
			return
		}
		tv := pass.TypesInfo.Types[ret.Results[0]]
		if tv.IsNil() {
			return
		}
		t := firstOfTuple(tv.Type)
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			return
		}
		client = t
	})
	return client
}

func declOf(pass *analysis.Pass, fn *types.Func) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// forEachReturn visits returns belonging to body itself, not to nested
// function literals.
func forEachReturn(body *ast.BlockStmt, visit func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			visit(n)
		}
		return true
	})
}

// zeroValueOf renders the spelling of a zero value of t for use in an
// assertion suggestion: `T{}` for structs (talliers are value types in this
// repository), `(*T)(nil)` for pointers, `T(0)`-less bare name otherwise.
func zeroValueOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		return "(" + p.String() + ")(nil)"
	}
	if _, ok := t.Underlying().(*types.Struct); ok {
		return t.String() + "{}"
	}
	return t.String()
}

func firstOfTuple(t types.Type) types.Type {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return nil
		}
		return tup.At(0).Type()
	}
	return t
}
