// Package core exercises the detrand analyzer.
package core

import (
	"math/rand" // want "global math/rand breaks counter-addressable determinism"
	"sort"
	"time"
)

func draw() int { return rand.Int() }

func stamp() int64 {
	return time.Now().Unix() // want "time.Now on the estimate path"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since on the estimate path"
}

func orderedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k) // ok: sorted below
	}
	sort.Strings(out)
	return out
}

func unorderedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appending to out inside a map range"
	}
	return out
}

func markedIndep(m map[string]int) []string {
	var out []string
	//loloha:orderindep the consumer treats this as a set
	for k := range m {
		out = append(out, k)
	}
	return out
}

func localInside(m map[string]int) int {
	n := 0
	for k := range m {
		var tmp []byte
		tmp = append(tmp, k...) // ok: tmp never escapes the iteration
		n += len(tmp)
	}
	return n
}

func emit(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send inside a map range"
	}
}
