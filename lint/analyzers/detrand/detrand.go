// Package detrand guards the determinism of the estimate path. The
// reproducibility claims (bit-identical P=1 vs P=8, spec-vs-constructor
// parity) require that every random draw flows from internal/randsrc's
// counter-addressable streams and that nothing on the tally/estimate path
// depends on wall-clock time or Go's randomized map iteration order.
//
// In the scoped packages (internal/core, internal/freqoracle,
// internal/longitudinal, internal/postprocess, internal/simulation) the
// analyzer flags:
//
//   - importing math/rand or math/rand/v2 (use internal/randsrc);
//   - calling time.Now, time.Since or time.Until;
//   - ranging over a map while accumulating into an outer slice or
//     sending on a channel — ordered output from unordered iteration —
//     unless the slice is subsequently sorted in the same function
//     (the append-then-sort idiom) or the range is marked
//     //loloha:orderindep <why>.
package detrand

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"github.com/loloha-ldp/loloha/lint/analysis"
	"github.com/loloha-ldp/loloha/lint/annot"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "estimate-path packages must stay deterministic: no math/rand, no wall clock, no map-order-dependent output",
	Run:  run,
}

// scopes are the import-path suffixes of the estimate path.
var scopes = []string{
	"internal/core",
	"internal/freqoracle",
	"internal/longitudinal",
	"internal/postprocess",
	"internal/simulation",
}

func inScope(path string) bool {
	for _, s := range scopes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	ix := annot.NewIndex(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "global math/rand breaks counter-addressable determinism; draw from internal/randsrc")
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkClockCalls(pass, fd)
			checkMapRanges(pass, ix, fd)
		}
	}
	return nil
}

func checkClockCalls(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s on the estimate path makes results time-dependent", fn.Name())
		}
		return true
	})
}

func checkMapRanges(pass *analysis.Pass, ix *annot.Index, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
			return true
		}
		if ix.At(rs, "orderindep") {
			return true
		}
		checkOneMapRange(pass, fd, rs)
		return true
	})
}

// checkOneMapRange flags order-dependent accumulation inside one map range.
func checkOneMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a map range emits values in nondeterministic order")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(n.Lhs) != len(n.Rhs) {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" || len(call.Args) == 0 {
					continue
				}
				target := render(n.Lhs[i])
				if target != render(call.Args[0]) {
					continue
				}
				if declaredInside(pass, n.Lhs[i], rs) {
					continue
				}
				if sortedAfter(pass, fd, rs, target) {
					continue
				}
				pass.Reportf(n.Pos(), "appending to %s inside a map range produces nondeterministic order; sort it afterwards or mark //loloha:orderindep", target)
			}
		}
		return true
	})
}

// declaredInside reports whether the append target is local to the range
// body (its order never escapes the iteration).
func declaredInside(pass *analysis.Pass, target ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return false // field/index target: assume it escapes
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
}

// sortedAfter reports whether the function sorts target after the range:
// the append-then-sort idiom is deterministic regardless of map order.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, a := range call.Args {
			if render(a) == target {
				found = true
			}
		}
		return true
	})
	return found
}

func render(e ast.Expr) string {
	var b bytes.Buffer
	printer.Fprint(&b, token.NewFileSet(), e)
	return b.String()
}
