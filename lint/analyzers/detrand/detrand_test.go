package detrand_test

import (
	"testing"

	"github.com/loloha-ldp/loloha/lint/analysistest"
	"github.com/loloha-ldp/loloha/lint/analyzers/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "detfix/internal/core")
}
