// Package runner drives lolohalint's analyzers in the two modes the suite
// supports:
//
//   - Standalone: `lolohalint [-dir d] ./...` loads packages via go list
//     and prints diagnostics; exit status 2 when anything is reported.
//
//   - Vet tool: when cmd/go invokes the binary as `go vet -vettool=...`,
//     it speaks the unitchecker protocol — answer -V=full with a
//     buildID-shaped version line, answer -flags with a JSON flag list,
//     and otherwise accept a single *.cfg argument describing one
//     package to check.
package runner

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/loloha-ldp/loloha/lint/analysis"
	"github.com/loloha-ldp/loloha/lint/load"
)

// Main runs the analyzers with os.Args and exits. It is the entire body
// of cmd/lolohalint.
func Main(analyzers ...*analysis.Analyzer) {
	os.Exit(Run(os.Args[1:], analyzers))
}

// Run executes one invocation and returns the process exit code.
func Run(args []string, analyzers []*analysis.Analyzer) int {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V=") {
		return printVersion(args[0])
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		// No analyzer exposes vet flags; cmd/go requires the query to
		// succeed with a JSON array.
		fmt.Println("[]")
		return 0
	}
	dir := ""
	for len(args) > 0 && strings.HasPrefix(args[0], "-") {
		switch {
		case args[0] == "-dir" && len(args) > 1:
			dir = args[1]
			args = args[2:]
		case strings.HasPrefix(args[0], "-dir="):
			dir = strings.TrimPrefix(args[0], "-dir=")
			args = args[1:]
		default:
			fmt.Fprintf(os.Stderr, "lolohalint: unknown flag %s\n", args[0])
			return 1
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVet(args[0], analyzers)
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: lolohalint [-dir d] packages... | lolohalint <unit>.cfg")
		return 1
	}
	return runStandalone(dir, args, analyzers)
}

// printVersion answers `-V=full`. cmd/go demands the last space-separated
// field start with "buildID=" and uses it to fingerprint the tool for vet
// result caching; hashing the executable makes rebuilt tools re-run.
func printVersion(flag string) int {
	if flag != "-V=full" {
		fmt.Printf("lolohalint version devel\n")
		return 0
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", progName(), id)
	return 0
}

func progName() string {
	return filepath.Base(os.Args[0])
}

// runVet checks the single package described by a cmd/go vet config.
func runVet(cfgPath string, analyzers []*analysis.Analyzer) int {
	cfg, err := load.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lolohalint: %v\n", err)
		return 1
	}
	// The facts file must exist even though this suite exchanges none:
	// cmd/go feeds it to dependent packages' runs.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "lolohalint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	pkg, err := load.VetPackage(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "lolohalint: %v\n", err)
		return 1
	}
	diags := analyze(pkg, analyzers)
	printDiags(pkg, diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func runStandalone(dir string, patterns []string, analyzers []*analysis.Analyzer) int {
	pkgs, err := load.Packages(load.Config{Dir: dir, Env: os.Environ(), Patterns: patterns})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lolohalint: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags := analyze(pkg, analyzers)
		printDiags(pkg, diags)
		if len(diags) > 0 {
			exit = 2
		}
	}
	return exit
}

// tagged pairs a diagnostic with the analyzer that produced it.
type tagged struct {
	analysis.Diagnostic
	analyzer string
}

// analyze runs every analyzer over one package and returns diagnostics in
// file order.
func analyze(pkg *load.Package, analyzers []*analysis.Analyzer) []tagged {
	var diags []tagged
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, tagged{Diagnostic: d, analyzer: name})
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, tagged{
				Diagnostic: analysis.Diagnostic{Message: fmt.Sprintf("analyzer failed: %v", err)},
				analyzer:   name,
			})
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

func printDiags(pkg *load.Package, diags []tagged) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.analyzer)
	}
}

// AnalyzeForTest exposes the per-package analysis to the analysistest
// package without exporting the driver internals.
func AnalyzeForTest(pkg *load.Package, a *analysis.Analyzer) []analysis.Diagnostic {
	out := analyze(pkg, []*analysis.Analyzer{a})
	diags := make([]analysis.Diagnostic, len(out))
	for i, d := range out {
		diags[i] = d.Diagnostic
	}
	return diags
}
