// Command lolohalint is the multichecker for the LOLOHA engine's
// machine-checked contracts: noalloc (zero-alloc hot paths), lockorder
// (server lock discipline), detrand (estimate-path determinism) and
// wirecontract (fast-path interface assertions for registered families).
//
// Run it standalone:
//
//	go build -C lint -o bin/lolohalint ./cmd/lolohalint
//	lint/bin/lolohalint ./...
//
// or as a vet tool, which caches per-package results:
//
//	go vet -vettool=$PWD/lint/bin/lolohalint ./...
package main

import (
	"github.com/loloha-ldp/loloha/lint/analyzers/detrand"
	"github.com/loloha-ldp/loloha/lint/analyzers/lockorder"
	"github.com/loloha-ldp/loloha/lint/analyzers/noalloc"
	"github.com/loloha-ldp/loloha/lint/analyzers/wirecontract"
	"github.com/loloha-ldp/loloha/lint/runner"
)

func main() {
	runner.Main(
		noalloc.Analyzer,
		lockorder.Analyzer,
		detrand.Analyzer,
		wirecontract.Analyzer,
	)
}
