// Package annot indexes the //loloha: comment markers that carry the
// engine's machine-checked contracts:
//
//	//loloha:noalloc              (func doc)   function must not allocate
//	//loloha:alloc-ok <why>       (statement)  exempt one statement subtree
//	//loloha:steady               (statement)  force-check an early-exit branch
//	//loloha:locksafe <why>       (statement)  exempt a lockorder finding
//	//loloha:orderindep <why>     (statement)  exempt a detrand map-range
//	//loloha:boxed <why>          (statement)  family intentionally boxed
//
// Statement-level markers apply to code on the marker's own line or on the
// line directly below (i.e. a marker may trail the statement or sit on its
// own line above it). Several markers may stack on consecutive lines above
// one statement; the whole contiguous run applies.
package annot

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment-directive namespace of the suite.
const Prefix = "loloha:"

// Index records, per file and line, which markers are present.
type Index struct {
	fset  *token.FileSet
	lines map[string]map[int][]string // filename -> line -> marker names
}

// NewIndex scans the comments of files.
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, lines: map[string]map[int][]string{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parse(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				m := ix.lines[pos.Filename]
				if m == nil {
					m = map[int][]string{}
					ix.lines[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], name)
			}
		}
	}
	return ix
}

// parse extracts the marker name from one comment, e.g.
// "//loloha:alloc-ok cold path" -> "alloc-ok".
func parse(text string) (string, bool) {
	body, ok := strings.CutPrefix(text, "//"+Prefix)
	if !ok {
		return "", false
	}
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		body = body[:i]
	}
	return body, body != ""
}

// At reports whether marker is present on node's first line or in the
// contiguous run of marker-bearing lines directly above it (markers may
// stack, one per line).
func (ix *Index) At(node ast.Node, marker string) bool {
	pos := ix.fset.Position(node.Pos())
	m := ix.lines[pos.Filename]
	if m == nil {
		return false
	}
	if hasMarker(m[pos.Line], marker) {
		return true
	}
	for l := pos.Line - 1; len(m[l]) > 0; l-- {
		if hasMarker(m[l], marker) {
			return true
		}
	}
	return false
}

func hasMarker(names []string, marker string) bool {
	for _, name := range names {
		if name == marker {
			return true
		}
	}
	return false
}

// FuncHas reports whether the doc comment of fd carries marker.
func FuncHas(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if name, ok := parse(c.Text); ok && name == marker {
			return true
		}
	}
	return false
}
