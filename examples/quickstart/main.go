// Quickstart: monitor the frequencies of an evolving categorical value
// across a cohort under local differential privacy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	loloha "github.com/loloha-ldp/loloha"
)

func main() {
	const (
		k      = 20   // domain size: values are 0..19
		users  = 5000 // cohort size
		rounds = 10   // collection rounds
		epsInf = 1.0  // longitudinal budget per memoized unit
		eps1   = 0.5  // privacy of the very first report
	)

	// BiLOLOHA (g = 2) gives the strongest longitudinal guarantee: each
	// user's total loss is at most 2·ε∞ = 2.0, forever, no matter how
	// often their value changes.
	proto, err := loloha.NewBiLOLOHA(k, epsInf, eps1)
	if err != nil {
		log.Fatal(err)
	}
	// One Stream is the whole pipeline; WithCohort attaches in-process
	// simulation clients so Collect drives complete rounds from values.
	stream, err := loloha.NewStream(proto, loloha.WithCohort(users, 1 /* seed */))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	values := make([]int, users)
	for u := range values {
		values[u] = rng.Intn(k / 2) // start concentrated on the low half
	}

	for t := 0; t < rounds; t++ {
		// Values evolve: each round 20% of users drift upward.
		for u := range values {
			if rng.Float64() < 0.2 {
				values[u] = (values[u] + 1) % k
			}
		}
		res, err := stream.Collect(values)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %2d: f̂(0)=%+.4f f̂(%d)=%+.4f  %d reports  worst user ε̌ = %.2f (cap %.2f)\n",
			res.Round, res.Raw[0], k-1, res.Raw[k-1], res.Reports,
			stream.MaxPrivacySpent(), proto.LongitudinalBudget())
	}

	fmt.Println("\nEvery estimate above is unbiased; the privacy ledger is bounded")
	fmt.Println("by g·ε∞ regardless of how long the collection continues.")
}
