// Heavy hitters: the canonical application of LDP frequency oracles —
// find which values are popular right now, and notice when popularity
// shifts, without ever seeing a single raw value.
//
// A cohort monitors k = 200 possible error codes; code 17 dominates until
// a "deploy" at round 12 makes code 93 spike. The Stream owns the whole
// pipeline: WithHeavyHitters folds every round's estimates into a tracker
// and a Subscribe channel delivers RoundResults — estimates plus the
// current heavy-hitter set — to the consumer as rounds close.
//
//	go run ./examples/heavyhitters
package main

import (
	"fmt"
	"log"
	"math/rand"

	loloha "github.com/loloha-ldp/loloha"
)

const (
	k      = 200
	users  = 12000
	rounds = 24
	epsInf = 2.0
	eps1   = 1.0
)

func main() {
	proto, err := loloha.NewOLOLOHA(k, epsInf, eps1)
	if err != nil {
		log.Fatal(err)
	}

	threshold := loloha.SuggestedHeavyHitterThreshold(proto.Params(), users, 0.4, 3)
	if threshold < 0.04 {
		threshold = 0.04 // domain-knowledge floor: we care about >4% shares
	}
	stream, err := loloha.NewStream(proto,
		loloha.WithCohort(users, 8),
		loloha.WithHeavyHitters(loloha.HeavyHitterConfig{
			K: k, Threshold: threshold, Alpha: 0.4,
		}),
		loloha.WithRoundCapacity(rounds),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OLOLOHA g=%d; detection threshold %.3f (3 noise floors, smoothed)\n\n",
		proto.G(), threshold)

	// The monitoring consumer: reads published rounds from the
	// subscription, decoupled from the collection loop.
	results := stream.Subscribe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for res := range results {
			fmt.Printf("round %2d: %d hitter(s):", res.Round, len(res.HeavyHitters))
			for _, h := range res.HeavyHitters {
				fmt.Printf("  code %d (%.3f, since round %d)", h.Value, h.Freq, h.Since)
			}
			fmt.Println()
		}
	}()

	rng := rand.New(rand.NewSource(6))
	codes := make([]int, users)
	for t := 0; t < rounds; t++ {
		regression := t >= 12
		for u := range codes {
			r := rng.Float64()
			switch {
			case r < 0.30:
				codes[u] = 17 // the chronic offender
			case regression && r < 0.55:
				codes[u] = 93 // the new regression
			default:
				codes[u] = rng.Intn(k)
			}
		}
		if _, err := stream.Collect(codes); err != nil {
			log.Fatal(err)
		}
	}
	stream.Close()
	<-done

	fmt.Printf("\nworst user ε̌ after %d rounds: %.2f (cap %.1f)\n",
		rounds, stream.MaxPrivacySpent(), proto.LongitudinalBudget())
	fmt.Println("code 93 was detected within a few rounds of the regression,")
	fmt.Println("from estimates alone — no raw error reports were collected.")
}
