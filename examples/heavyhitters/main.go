// Heavy hitters: the canonical application of LDP frequency oracles —
// find which values are popular right now, and notice when popularity
// shifts, without ever seeing a single raw value.
//
// A cohort monitors k = 200 possible error codes; code 17 dominates until
// a "deploy" at round 12 makes code 93 spike. The tracker, fed only
// LDP estimates, detects both the steady hitter and the regression.
//
//	go run ./examples/heavyhitters
package main

import (
	"fmt"
	"log"
	"math/rand"

	loloha "github.com/loloha-ldp/loloha"
)

const (
	k      = 200
	users  = 12000
	rounds = 24
	epsInf = 2.0
	eps1   = 1.0
)

func main() {
	proto, err := loloha.NewOLOLOHA(k, epsInf, eps1)
	if err != nil {
		log.Fatal(err)
	}
	cohort, err := loloha.NewCohort(proto, users, 8)
	if err != nil {
		log.Fatal(err)
	}

	threshold := loloha.SuggestedHeavyHitterThreshold(proto.Params(), users, 0.4, 3)
	if threshold < 0.04 {
		threshold = 0.04 // domain-knowledge floor: we care about >4% shares
	}
	tracker, err := loloha.NewHeavyHitterTracker(loloha.HeavyHitterConfig{
		K: k, Threshold: threshold, Alpha: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OLOLOHA g=%d; detection threshold %.3f (3 noise floors, smoothed)\n\n",
		proto.G(), threshold)

	rng := rand.New(rand.NewSource(6))
	codes := make([]int, users)
	for t := 0; t < rounds; t++ {
		regression := t >= 12
		for u := range codes {
			r := rng.Float64()
			switch {
			case r < 0.30:
				codes[u] = 17 // the chronic offender
			case regression && r < 0.55:
				codes[u] = 93 // the new regression
			default:
				codes[u] = rng.Intn(k)
			}
		}
		est, err := cohort.Collect(codes)
		if err != nil {
			log.Fatal(err)
		}
		tracker.Observe(est)

		hh := tracker.HeavyHitters()
		fmt.Printf("round %2d: %d hitter(s):", t, len(hh))
		for _, h := range hh {
			fmt.Printf("  code %d (%.3f, since round %d)", h.Value, h.Freq, h.Since)
		}
		fmt.Println()
	}

	fmt.Printf("\nworst user ε̌ after %d rounds: %.2f (cap %.1f)\n",
		rounds, cohort.MaxPrivacySpent(), proto.LongitudinalBudget())
	fmt.Println("code 93 was detected within a few rounds of the regression,")
	fmt.Println("from estimates alone — no raw error reports were collected.")
}
