// Census: large-domain counter monitoring in the style of the paper's
// folktables DB_MT/DB_DE experiments — per-person replicate weights over a
// dictionary of more than a thousand values, collected repeatedly. At this
// domain size the choice of protocol matters enormously:
//
//   - L-GRR's variance explodes with k;
//   - RAPPOR/L-OSUE transmit k bits per user per round and their privacy
//     ledger grows with every changed value;
//   - OLOLOHA transmits ⌈log₂ g⌉ bits and caps the ledger at g·ε∞.
//
// This example runs OLOLOHA on such a workload and reports estimate
// quality on the heaviest values, communication cost, and the ledger.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	loloha "github.com/loloha-ldp/loloha"
)

const (
	k      = 1400 // dictionary of replicate-weight values
	users  = 8000
	rounds = 20
	epsInf = 5.0 // low-privacy regime: optimal g is well above 2
	eps1   = 2.5
)

func main() {
	proto, err := loloha.NewOLOLOHA(k, epsInf, eps1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OLOLOHA: g = %d (Eq. 6), report = %d bit(s)/round, ledger cap = g·ε∞ = %.1f\n",
		proto.G(), proto.SteadyReportBits(), proto.LongitudinalBudget())
	vstar, err := loloha.ApproxVarianceLOLOHA(epsInf, eps1, proto.G(), users)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theoretical V* per bin (Eq. 5): %.3e\n\n", vstar)

	stream, err := loloha.NewStream(proto, loloha.WithCohort(users, 5))
	if err != nil {
		log.Fatal(err)
	}

	// Heavy-tailed base weights plus a bounded per-round random walk —
	// the folktables replicate-weight structure.
	rng := rand.New(rand.NewSource(2024))
	weights := make([]int, users)
	for u := range weights {
		x := rng.Float64()
		weights[u] = clamp(int(float64(k)*x*x*x), 0, k-1)
	}

	var est []float64
	for t := 0; t < rounds; t++ {
		for u := range weights {
			if rng.Float64() < 0.85 {
				weights[u] = clamp(weights[u]+rng.Intn(25)-12, 0, k-1)
			}
		}
		res, err := stream.Collect(weights)
		if err != nil {
			log.Fatal(err)
		}
		est = res.Raw
	}

	truth := make([]float64, k)
	for _, v := range weights {
		truth[v] += 1.0 / float64(users)
	}

	fmt.Println("top-10 values of the final round (truth vs estimate):")
	fmt.Println("value   truth    estimate  |error|")
	for _, v := range topIndices(truth, 10) {
		fmt.Printf("%5d  %.4f   %+.4f   %.4f\n", v, truth[v], est[v], abs(est[v]-truth[v]))
	}

	msev := 0.0
	for v := range truth {
		d := est[v] - truth[v]
		msev += d * d
	}
	msev /= float64(k)
	fmt.Printf("\nfinal-round MSE: %.3e (theory V*: %.3e)\n", msev, vstar)
	fmt.Printf("worst user ε̌ after %d rounds of churn: %.2f of cap %.2f\n",
		rounds, stream.MaxPrivacySpent(), proto.LongitudinalBudget())
	fmt.Printf("per-user uplink: %d bits/round vs %d bits for RAPPOR (%dx saving)\n",
		proto.SteadyReportBits(), k, k/proto.SteadyReportBits())
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func topIndices(freq []float64, m int) []int {
	idx := make([]int, len(freq))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return freq[idx[a]] > freq[idx[b]] })
	if m > len(idx) {
		m = len(idx)
	}
	return idx[:m]
}
