// URL monitor: RAPPOR's original use case — which homepage do users have
// configured? — over a *string* domain, demonstrating two things:
//
//  1. the Codec for non-integer domains, and
//
//  2. why memoization exists: against a naive client that re-randomizes
//     fresh every round, the server can run an averaging attack and
//     recover individual users' homepages; against LOLOHA it cannot.
//
//     go run ./examples/urlmonitor
package main

import (
	"fmt"
	"log"
	"math/rand"

	loloha "github.com/loloha-ldp/loloha"
)

var pages = []string{
	"search.example", "news.example", "mail.example", "video.example",
	"social.example", "shop.example", "wiki.example", "weather.example",
	"sports.example", "finance.example", "games.example", "maps.example",
}

const (
	users  = 3000
	rounds = 60
	epsInf = 2.0
	eps1   = 1.0
	// attackRounds is how long the averaging adversary observes; the
	// attack's whole point is that more observations keep helping when
	// noise is fresh — and stop helping when it is memoized.
	attackRounds = 2000
)

func main() {
	codec, err := loloha.NewCodec(pages)
	if err != nil {
		log.Fatal(err)
	}
	k := codec.Size()

	proto, err := loloha.NewBiLOLOHA(k, epsInf, eps1)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithCohort(users, 3))
	if err != nil {
		log.Fatal(err)
	}

	// Skewed popularity; homepages rarely change.
	rng := rand.New(rand.NewSource(17))
	home := make([]int, users)
	for u := range home {
		home[u] = zipf(rng, k)
	}

	var est []float64
	for t := 0; t < rounds; t++ {
		for u := range home {
			if rng.Float64() < 0.02 { // occasional homepage change
				home[u] = zipf(rng, k)
			}
		}
		values := make([]int, users)
		copy(values, home)
		res, err := stream.Collect(values)
		if err != nil {
			log.Fatal(err)
		}
		est = res.Raw
	}

	truth := make([]float64, k)
	for _, v := range home {
		truth[v] += 1.0 / float64(users)
	}
	fmt.Println("estimated homepage shares after", rounds, "rounds:")
	fmt.Println("page              truth   estimate")
	for i := 0; i < k; i++ {
		fmt.Printf("%-16s  %.3f   %+.3f\n", codec.Value(i), truth[i], est[i])
	}
	fmt.Printf("\nworst user ε̌: %.2f (cap %.1f) after %d rounds\n",
		stream.MaxPrivacySpent(), proto.LongitudinalBudget(), rounds)

	// ----------------------------------------------------------------
	// The averaging attack: why fresh per-round noise is not enough.
	fmt.Println("\n--- averaging attack demo (single user, value =", pages[2], ") ---")
	grr, err := loloha.NewGRR(k, eps1)
	if err != nil {
		log.Fatal(err)
	}
	target, _ := codec.Index(pages[2])

	// Naive client: fresh GRR every round. The server counts the mode.
	counts := make([]int, k)
	attackRng := rand.New(rand.NewSource(5))
	for t := 0; t < attackRounds; t++ {
		counts[naiveGRR(grr, target, attackRng)]++
	}
	fmt.Printf("fresh noise:  after %d rounds the mode of the reports is %q (true: %q)\n",
		attackRounds, pages[argmax(counts)], pages[target])

	// LOLOHA client: the adversary sees IRR re-randomizations of ONE
	// memoized cell of a 2-cell hash — the mode identifies at most the
	// user's hash cell, which ~half the domain shares. The client emits
	// wire bytes through the allocation-free AppendReport fast path into
	// one reused buffer — what a real device loop looks like.
	cl := proto.NewClient(1234).(loloha.AppendReporter)
	cellCounts := make([]int, 2)
	var wire []byte
	for t := 0; t < attackRounds; t++ {
		wire = cl.AppendReport(wire[:0], target)
		cellCounts[int(wire[0])&1]++
	}
	fmt.Printf("LOLOHA:       after %d rounds the adversary learns one hash cell (counts %v);\n",
		attackRounds, cellCounts)
	fmt.Printf("              ~%d of %d pages share that cell — the homepage stays hidden.\n", k/2, k)
}

// naiveGRR applies one fresh GRR round (no memoization) — the anti-pattern.
func naiveGRR(grr *loloha.GRR, v int, rng *rand.Rand) int {
	// Drive the library mechanism with an ad-hoc stream for the demo.
	if rng.Float64() < grr.Params().P {
		return v
	}
	x := rng.Intn(grr.K() - 1)
	if x >= v {
		x++
	}
	return x
}

func zipf(rng *rand.Rand, k int) int {
	for {
		v := int(rng.ExpFloat64() * 2.5)
		if v < k {
			return v
		}
	}
}

func argmax(counts []int) int {
	best := 0
	for v, c := range counts {
		if c > counts[best] {
			best = v
		}
	}
	return best
}
