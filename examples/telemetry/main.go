// Telemetry: the paper's motivating deployment (after Ding et al.'s
// dBitFlipPM at Microsoft) — collect "minutes of app usage in the last 6
// hours" (k = 360) from a cohort every collection period and monitor the
// histogram over time, comparing the longitudinal privacy spend of
// BiLOLOHA against RAPPOR-style memoization on identical data.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	loloha "github.com/loloha-ldp/loloha"
)

const (
	k      = 360 // minutes in six hours
	users  = 10000
	rounds = 24 // six days of 6-hour windows
	epsInf = 2.0
	eps1   = 1.0
)

func main() {
	lolohaProto, err := loloha.NewBiLOLOHA(k, epsInf, eps1)
	if err != nil {
		log.Fatal(err)
	}
	rapporProto, err := loloha.NewRAPPOR(k, epsInf, eps1)
	if err != nil {
		log.Fatal(err)
	}
	// Identical cohorts behind two Streams. Simplex projection removes the
	// negative noise excursions at no privacy cost (post-processing), so
	// every RoundResult carries both Raw and projected Estimates.
	lolohaStream, err := loloha.NewStream(lolohaProto,
		loloha.WithCohort(users, 11), loloha.WithPostProcess(loloha.PostSimplex))
	if err != nil {
		log.Fatal(err)
	}
	rapporStream, err := loloha.NewStream(rapporProto, loloha.WithCohort(users, 11))
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	usage := make([]int, users)
	for u := range usage {
		usage[u] = heavyUser(rng)
	}

	fmt.Println("round  mean-true  mean-est(LOLOHA)  worst ε̌ LOLOHA  worst ε̌ RAPPOR")
	var last loloha.RoundResult
	for t := 0; t < rounds; t++ {
		// Usage evolves: most users wiggle around their habit; some churn.
		for u := range usage {
			switch {
			case rng.Float64() < 0.05:
				usage[u] = heavyUser(rng) // habit change
			case rng.Float64() < 0.6:
				usage[u] = clamp(usage[u]+rng.Intn(21)-10, 0, k-1)
			}
		}
		res, err := lolohaStream.Collect(usage)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rapporStream.Collect(usage); err != nil {
			log.Fatal(err)
		}
		last = res
		fmt.Printf("%5d  %9.1f  %16.1f  %14.2f  %14.2f\n",
			res.Round, histMean(trueFreq(usage)), histMean(res.Raw),
			lolohaStream.MaxPrivacySpent(), rapporStream.MaxPrivacySpent())
	}

	fmt.Printf("\nLongitudinal caps: LOLOHA %.1f (g·ε∞) vs RAPPOR %.1f (k·ε∞) — a %.0fx gap.\n",
		lolohaProto.LongitudinalBudget(), float64(k)*epsInf,
		float64(k)*epsInf/lolohaProto.LongitudinalBudget())

	// A coarse view of the final histogram: 30-minute bands over the
	// simplex-projected estimates the stream already computed.
	fmt.Println("\nEstimated final usage histogram (30-minute bands, simplex-projected):")
	bands := make([]float64, 12)
	labels := make([]string, 12)
	for v, f := range last.Estimates {
		bands[v/30] += f
	}
	for i := range labels {
		labels[i] = fmt.Sprintf("%d-%dm", i*30, i*30+29)
	}
	printBands(labels, bands)
}

// heavyUser draws a usage habit: a mixture of light, moderate and heavy.
func heavyUser(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.5:
		return rng.Intn(40) // light
	case r < 0.85:
		return 40 + rng.Intn(120) // moderate
	default:
		return 160 + rng.Intn(200) // heavy
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func trueFreq(values []int) []float64 {
	f := make([]float64, k)
	for _, v := range values {
		f[v] += 1.0 / float64(len(values))
	}
	return f
}

// histMean returns the mean of the histogram's underlying variable
// (estimates may be slightly negative; that is fine for a mean).
func histMean(freq []float64) float64 {
	m := 0.0
	for v, f := range freq {
		m += float64(v) * f
	}
	return m
}

func printBands(labels []string, bands []float64) {
	max := 0.0
	for _, b := range bands {
		if b > max {
			max = b
		}
	}
	for i, b := range bands {
		bar := 0
		if max > 0 && b > 0 {
			bar = int(b / max * 40)
		}
		fmt.Fprintf(os.Stdout, "%10s %7.4f %s\n", labels[i], b, strings.Repeat("#", bar))
	}
}
