// Daemon: the networked deployment shape — a lolohad-style collection
// server on one side of a socket, remote reporting clients on the other,
// and a live round stream for whoever is watching.
//
// Everything here talks to the daemon the way real deployments would:
// clients enroll and report over the wire (HTTP batch bodies and raw TCP
// frames — both land on the same stream), rounds close through the API,
// and an SSE subscriber tails the round feed like the dashboard does. The
// only in-process access is constructing the engine itself; point the
// same client code at a running `lolohad` binary and nothing changes.
//
//	go run ./examples/daemon
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	loloha "github.com/loloha-ldp/loloha"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/netserver"
	"github.com/loloha-ldp/loloha/internal/server"
)

const (
	k      = 64  // error-code domain
	users  = 400 // half report over HTTP, half over TCP
	rounds = 4
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server side: a BiLOLOHA stream behind the daemon engine, listening
	// on loopback HTTP (API + SSE) and raw-frame TCP.
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		return err
	}
	stream, err := server.NewStream(proto, server.WithShards(4))
	if err != nil {
		return err
	}
	defer stream.Close()
	srv, err := netserver.New(netserver.Config{Stream: stream})
	if err != nil {
		return err
	}
	defer srv.Close()

	ts := httptest.NewServer(srv.Handler()) // stands in for lolohad's -http listener
	defer ts.Close()
	tl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.ServeTCP(tl)
	fmt.Printf("daemon: %s on %s (HTTP) and %s (TCP)\n", proto.Name(), ts.URL, tl.Addr())

	// A watcher tails the SSE round feed; wait until the daemon reports
	// the subscriber so no round is published before it is listening.
	events := make(chan string, rounds)
	go tailRounds(ts.URL+"/v1/stream", events)
	if err := waitForSubscriber(ts.URL); err != nil {
		return err
	}

	// Client side: enroll everyone over their transport, then report a
	// shifting distribution — value 7 dominates early, value 21 takes
	// over halfway through — and watch the estimates follow.
	clients := make([]longitudinal.AppendReporter, users)
	conn, err := net.Dial("tcp", tl.Addr().String())
	if err != nil {
		return err
	}
	defer conn.Close()
	var frames []byte
	for u := range clients {
		cl, ok := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		if !ok {
			return fmt.Errorf("%s client does not implement AppendReporter", proto.Name())
		}
		clients[u] = cl
		reg := cl.WireRegistration()
		if u < users/2 {
			if err := enrollJSON(ts.URL, u, reg); err != nil {
				return err
			}
		} else if frames, err = netserver.AppendEnrollFrame(frames, u, reg); err != nil {
			return err
		}
	}
	if _, err := conn.Write(netserver.AppendFlushFrame(frames)); err != nil {
		return err
	}
	ack, err := netserver.ReadAck(conn)
	if err != nil {
		return err
	}
	fmt.Printf("enrolled: %d over HTTP JSON, %d over TCP frames (%d rejected)\n",
		users/2, ack.Enrolled, ack.EnrollRejected)

	for round := 0; round < rounds; round++ {
		popular := 7
		if round >= rounds/2 {
			popular = 21
		}
		var body, frames []byte
		for u, cl := range clients {
			v := u % k
			if u%3 != 0 {
				v = popular
			}
			payload := cl.AppendReport(nil, v)
			if u < users/2 {
				body = netserver.AppendBatchRecord(body, u, payload)
			} else {
				frames = netserver.AppendReportFrame(frames, u, payload)
			}
		}
		resp, err := http.Post(ts.URL+"/v1/reports", "application/octet-stream", bytesReader(body))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if _, err := conn.Write(netserver.AppendFlushFrame(frames)); err != nil {
			return err
		}
		if _, err := netserver.ReadAck(conn); err != nil {
			return err
		}
		// Both transports have synced; close the round through the API and
		// let the SSE feed announce the result.
		resp, err = http.Post(ts.URL+"/v1/round/close", "application/json", nil)
		if err != nil {
			return err
		}
		resp.Body.Close()
		fmt.Printf("round %d (popular value %d): %s\n", round, popular, <-events)
	}
	// Shut the engine down first so the SSE stream ends and the HTTP
	// server can drain its connections (Close is idempotent; the defers
	// re-run it harmlessly).
	srv.Close()
	return nil
}

func enrollJSON(base string, userID int, reg longitudinal.Registration) error {
	body := fmt.Sprintf(`{"user_id":%d,"hash_seed":%d}`, userID, reg.HashSeed)
	resp, err := http.Post(base+"/v1/enroll", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("enroll user %d: status %d", userID, resp.StatusCode)
	}
	return nil
}

func bytesReader(b []byte) *strings.Reader { return strings.NewReader(string(b)) }

// waitForSubscriber polls /v1/status until the SSE hub reports a client.
func waitForSubscriber(base string) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/status")
		if err != nil {
			return err
		}
		var st struct {
			SSE struct {
				Clients int `json:"clients"`
			} `json:"sse"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err == nil && st.SSE.Clients > 0 {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("SSE subscriber never registered")
}

// tailRounds subscribes to the SSE round feed and emits one summary line
// per published round.
func tailRounds(url string, out chan<- string) {
	resp, err := http.Get(url)
	if err != nil {
		out <- "SSE error: " + err.Error()
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var round struct {
			Round     int       `json:"round"`
			Reports   int       `json:"reports"`
			Estimates []float64 `json:"estimates"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &round); err != nil {
			out <- "SSE error: " + err.Error()
			return
		}
		top, topEst := 0, 0.0
		for v, e := range round.Estimates {
			if e > topEst {
				top, topEst = v, e
			}
		}
		out <- fmt.Sprintf("SSE says %d reports, top estimated value %d at %.1f", round.Reports, top, topEst)
	}
}
