// Collectortree: the multi-node deployment shape — two leaf collection
// daemons near the clients, one root holding the round, and a merge link
// in between.
//
// Every aggregator in this repository keeps its round state as an integer
// tally vector, and tally adds commute. That is the whole trick: a leaf
// closing its round exports the vector (the LSS1 snapshot wire form),
// wraps it in a merge envelope — leaf identity plus a durable sequence
// number — and ships it to the root, which deduplicates per leaf before
// adding it in. The tree topology never touches the estimates — the
// root's round is bit-identical to a single daemon that collected every
// report itself, which this program checks against a reference stream
// every round, and the envelope ledger makes that hold under retries too.
//
// The same wiring as `lolohad -mode root` + two `lolohad -mode leaf
// -parent host:port` processes fed by partitioned `lolohasim loadgen`
// runs (see the CI collector-tree smoke); here the three daemons live in
// one process so the example is self-contained.
//
//	go run ./examples/collectortree
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	loloha "github.com/loloha-ldp/loloha"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/netserver"
	"github.com/loloha-ldp/loloha/internal/server"
)

const (
	k      = 32  // value domain
	users  = 300 // split into two contiguous partitions, one per leaf
	rounds = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// node is one daemon: a stream behind the netserver engine with both
// listeners up, like a lolohad process.
type node struct {
	stream *server.Stream
	srv    *netserver.Server
	http   *httptest.Server
	tcpLn  net.Listener
}

func startNode(proto longitudinal.Protocol, cfg netserver.Config) (*node, error) {
	stream, err := server.NewStream(proto)
	if err != nil {
		return nil, err
	}
	cfg.Stream = stream
	srv, err := netserver.New(cfg)
	if err != nil {
		stream.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		stream.Close()
		return nil, err
	}
	go srv.ServeTCP(ln)
	return &node{stream: stream, srv: srv, http: httptest.NewServer(srv.Handler()), tcpLn: ln}, nil
}

func (n *node) close() {
	n.http.Close()
	n.srv.Close()
	n.tcpLn.Close()
	n.stream.Close()
}

func run() error {
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		return err
	}

	// The tree: a root that accepts merge frames on its TCP listener, and
	// two leaves whose round close ships upstream instead of publishing a
	// partial result.
	root, err := startNode(proto, netserver.Config{AcceptMerges: true})
	if err != nil {
		return err
	}
	defer root.close()
	leaves := make([]*node, 2)
	for i := range leaves {
		up, err := netserver.DialMerge(root.tcpLn.Addr().String(), 5*time.Second)
		if err != nil {
			return err
		}
		cfg := netserver.Config{Upstream: up, LeafID: fmt.Sprintf("leaf-%d", i)}
		if leaves[i], err = startNode(proto, cfg); err != nil {
			up.Close()
			return err
		}
		defer leaves[i].close()
	}
	fmt.Printf("root %s on %s; leaves ship merges to it from %s and %s\n",
		proto.Name(), root.tcpLn.Addr(), leaves[0].http.URL, leaves[1].http.URL)

	// The single-daemon baseline the tree must match, plus one TCP client
	// connection per leaf. Users split into contiguous halves, exactly
	// like `lolohasim loadgen -partition 0/2` / `-partition 1/2`.
	ref, err := server.NewStream(proto)
	if err != nil {
		return err
	}
	defer ref.Close()
	conns := make([]net.Conn, len(leaves))
	frames := make([][]byte, len(leaves))
	for i, leaf := range leaves {
		if conns[i], err = net.Dial("tcp", leaf.tcpLn.Addr().String()); err != nil {
			return err
		}
		defer conns[i].Close()
	}
	clients := make([]longitudinal.AppendReporter, users)
	for u := range clients {
		cl, ok := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		if !ok {
			return fmt.Errorf("%s client does not implement AppendReporter", proto.Name())
		}
		clients[u] = cl
		reg := cl.WireRegistration()
		if err := ref.Enroll(u, reg); err != nil {
			return err
		}
		leaf := leafOf(u)
		if frames[leaf], err = netserver.AppendEnrollFrame(frames[leaf], u, reg); err != nil {
			return err
		}
	}
	for i := range leaves {
		if err := flush(conns[i], &frames[i]); err != nil {
			return err
		}
	}

	for round := 0; round < rounds; round++ {
		// One payload per user per round, fed to both the reference stream
		// and the user's leaf: report chains are stateful, so parity means
		// the same bytes on both paths, not two independent draws.
		for u, cl := range clients {
			payload := cl.AppendReport(nil, (u*5+round)%k)
			if err := ref.Ingest(u, payload); err != nil {
				return err
			}
			leaf := leafOf(u)
			frames[leaf] = netserver.AppendReportFrame(frames[leaf], u, payload)
		}
		for i := range leaves {
			if err := flush(conns[i], &frames[i]); err != nil {
				return err
			}
			// Leaf round close = export the tally vector and ship it as a
			// merge frame; no partial estimate is published at the leaf.
			if err := closeRound(leaves[i].http.URL); err != nil {
				return err
			}
		}
		if err := closeRound(root.http.URL); err != nil {
			return err
		}
		want := ref.CloseRound()
		got, err := fetchRaw(root.http.URL, round)
		if err != nil {
			return err
		}
		if err := sameFloats(got, want.Raw); err != nil {
			return fmt.Errorf("round %d: tree diverged from single-node baseline: %w", round, err)
		}
		fmt.Printf("round %d: root estimate bit-identical to the single-node run (%d values, est[7]=%.4f)\n",
			round, len(got), got[7])
	}

	// The root's merge counters account for every shipped tally, and every
	// leaf's outbox is empty: each round's envelope was acked before the
	// round close returned, so nothing waits on the background shipper.
	var st struct {
		Merge struct {
			Frames     int `json:"frames"`
			Reports    int `json:"reports"`
			Duplicates int `json:"duplicates"`
		} `json:"merge"`
	}
	if err := getJSON(root.http.URL+"/v1/status", &st); err != nil {
		return err
	}
	fmt.Printf("root merged %d frames carrying %d reports, %d duplicates (%d leaves x %d rounds, %d users/round)\n",
		st.Merge.Frames, st.Merge.Reports, st.Merge.Duplicates, len(leaves), rounds, users)
	for i, leaf := range leaves {
		var ls struct {
			Merge struct {
				Shipped   int `json:"shipped"`
				Unshipped int `json:"unshipped"`
				Oldest    int `json:"oldest_unshipped_round"`
			} `json:"merge"`
		}
		if err := getJSON(leaf.http.URL+"/v1/status", &ls); err != nil {
			return err
		}
		if ls.Merge.Unshipped != 0 || ls.Merge.Oldest != -1 {
			return fmt.Errorf("leaf %d: %d envelopes unshipped (oldest round %d), want an empty outbox",
				i, ls.Merge.Unshipped, ls.Merge.Oldest)
		}
		fmt.Printf("leaf %d shipped %d envelopes, outbox empty\n", i, ls.Merge.Shipped)
	}
	return nil
}

// leafOf partitions the user space into contiguous halves.
func leafOf(u int) int {
	if u < users/2 {
		return 0
	}
	return 1
}

// flush writes the accumulated frames plus a flush barrier and waits for
// the ack, so the leaf has applied everything before the round closes.
func flush(conn net.Conn, frames *[]byte) error {
	if _, err := conn.Write(netserver.AppendFlushFrame(*frames)); err != nil {
		return err
	}
	*frames = (*frames)[:0]
	_, err := netserver.ReadAck(conn)
	return err
}

func closeRound(base string) error {
	resp, err := http.Post(base+"/v1/round/close", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var body struct {
		ShipError string `json:"ship_error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return err
	}
	if body.ShipError != "" {
		return fmt.Errorf("round close at %s: ship failed: %s", base, body.ShipError)
	}
	return nil
}

func fetchRaw(base string, round int) ([]float64, error) {
	var body struct {
		Raw []float64 `json:"raw"`
	}
	err := getJSON(fmt.Sprintf("%s/v1/rounds/%d", base, round), &body)
	return body.Raw, err
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func sameFloats(got, want []float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("est[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	return nil
}
