// Declarative construction tests: every built-in family builds from a
// serializable ProtocolSpec alone, spec-built protocols are bit-identical
// to constructor-built ones, and built protocols round-trip back through
// Protocol.Spec(). These tests are deterministic by construction (CI runs
// them with -count=2 to prove it).
package loloha_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

// specCase pairs a declarative spec with the equivalent positional
// constructor call for one protocol family.
type specCase struct {
	name string
	spec loloha.ProtocolSpec
	mk   func() (loloha.Protocol, error)
}

// specCases covers the paper's seven protocol families (the three LOLOHA
// configurations count as one family with three registered names).
func specCases() []specCase {
	const (
		k      = 24
		epsInf = 1.2
		eps1   = 0.6
	)
	return []specCase{
		{
			name: "LOLOHA",
			spec: loloha.ProtocolSpec{Family: "LOLOHA", K: k, G: 4, EpsInf: epsInf, Eps1: eps1},
			mk:   func() (loloha.Protocol, error) { return loloha.New(k, 4, epsInf, eps1) },
		},
		{
			name: "BiLOLOHA",
			spec: loloha.ProtocolSpec{Family: "BiLOLOHA", K: k, EpsInf: epsInf, Eps1: eps1},
			mk:   func() (loloha.Protocol, error) { return loloha.NewBiLOLOHA(k, epsInf, eps1) },
		},
		{
			name: "OLOLOHA",
			spec: loloha.ProtocolSpec{Family: "OLOLOHA", K: k, EpsInf: epsInf, Eps1: eps1},
			mk:   func() (loloha.Protocol, error) { return loloha.NewOLOLOHA(k, epsInf, eps1) },
		},
		{
			name: "RAPPOR",
			spec: loloha.ProtocolSpec{Family: "RAPPOR", K: k, EpsInf: epsInf, Eps1: eps1},
			mk:   func() (loloha.Protocol, error) { return loloha.NewRAPPOR(k, epsInf, eps1) },
		},
		{
			name: "L-OSUE",
			spec: loloha.ProtocolSpec{Family: "L-OSUE", K: k, EpsInf: epsInf, Eps1: eps1},
			mk:   func() (loloha.Protocol, error) { return loloha.NewLOSUE(k, epsInf, eps1) },
		},
		{
			name: "L-OUE",
			spec: loloha.ProtocolSpec{Family: "L-OUE", K: k, EpsInf: epsInf, Eps1: eps1},
			mk:   func() (loloha.Protocol, error) { return loloha.NewLOUE(k, epsInf, eps1) },
		},
		{
			name: "L-SOUE",
			spec: loloha.ProtocolSpec{Family: "L-SOUE", K: k, EpsInf: epsInf, Eps1: eps1},
			mk:   func() (loloha.Protocol, error) { return loloha.NewLSOUE(k, epsInf, eps1) },
		},
		{
			name: "L-GRR",
			spec: loloha.ProtocolSpec{Family: "L-GRR", K: k, EpsInf: epsInf, Eps1: eps1},
			mk:   func() (loloha.Protocol, error) { return loloha.NewLGRR(k, epsInf, eps1) },
		},
		{
			name: "dBitFlipPM",
			spec: loloha.ProtocolSpec{Family: "dBitFlipPM", K: k, B: 12, D: 3, EpsInf: epsInf},
			mk:   func() (loloha.Protocol, error) { return loloha.NewDBitFlipPM(k, 12, 3, epsInf) },
		},
		{
			name: "1BitFlipPM",
			spec: loloha.ProtocolSpec{Family: "1BitFlipPM", K: k, B: 12, EpsInf: epsInf},
			mk:   func() (loloha.Protocol, error) { return loloha.NewDBitFlipPM(k, 12, 1, epsInf) },
		},
		{
			name: "bBitFlipPM",
			spec: loloha.ProtocolSpec{Family: "bBitFlipPM", K: k, B: 12, EpsInf: epsInf},
			mk:   func() (loloha.Protocol, error) { return loloha.NewDBitFlipPM(k, 12, 12, epsInf) },
		},
	}
}

// specCollect runs three sharded cohort rounds at a fixed seed and returns
// the raw per-round estimates; identical protocol configurations produce
// bit-identical results.
func specCollect(t *testing.T, proto loloha.Protocol) [][]float64 {
	t.Helper()
	stream, err := loloha.NewStream(proto, loloha.WithCohort(48, 99), loloha.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int, 48)
	var out [][]float64
	for r := 0; r < 3; r++ {
		for u := range values {
			values[u] = (u + r) % proto.K()
		}
		res, err := stream.Collect(values)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, res.Raw)
	}
	return out
}

func TestSpecBuildMatchesConstructors(t *testing.T) {
	for _, c := range specCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			fromSpec, err := c.spec.Build()
			if err != nil {
				t.Fatalf("spec build: %v", err)
			}
			fromCtor, err := c.mk()
			if err != nil {
				t.Fatalf("constructor: %v", err)
			}
			if got, want := specCollect(t, fromSpec), specCollect(t, fromCtor); !reflect.DeepEqual(got, want) {
				t.Errorf("spec-built estimates differ from constructor-built")
			}
		})
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, c := range specCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			data, err := json.Marshal(c.spec)
			if err != nil {
				t.Fatal(err)
			}
			back, err := loloha.ParseSpec(data)
			if err != nil {
				t.Fatalf("parse %s: %v", data, err)
			}
			if back != c.spec {
				t.Fatalf("round-trip %s: got %+v, want %+v", data, back, c.spec)
			}
			if _, err := back.Build(); err != nil {
				t.Fatalf("unmarshaled spec does not build: %v", err)
			}
		})
	}
}

func TestSpecProtocolRoundTrip(t *testing.T) {
	// spec → Build → Spec → Build yields bit-identical estimates.
	for _, c := range specCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			first, err := c.spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			derived, ok := loloha.SpecOf(first)
			if !ok {
				t.Fatalf("%T does not describe itself as a spec", first)
			}
			second, err := derived.Build()
			if err != nil {
				t.Fatalf("derived spec %+v does not build: %v", derived, err)
			}
			if got, want := specCollect(t, second), specCollect(t, first); !reflect.DeepEqual(got, want) {
				t.Errorf("round-tripped protocol estimates differ (derived spec %+v)", derived)
			}
		})
	}
}

func TestSpecFamiliesRegistered(t *testing.T) {
	registered := strings.Join(loloha.Families(), ",")
	for _, c := range specCases() {
		if !strings.Contains(registered, c.spec.Family) {
			t.Errorf("family %q missing from Families() = %s", c.spec.Family, registered)
		}
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec loloha.ProtocolSpec
		want string
	}{
		{"unknown family", loloha.ProtocolSpec{Family: "nope", K: 4, EpsInf: 1, Eps1: 0.5},
			"unknown protocol family"},
		{"empty family", loloha.ProtocolSpec{K: 4}, "no family"},
		{"missing required eps1", loloha.ProtocolSpec{Family: "RAPPOR", K: 10, EpsInf: 1},
			`requires spec field "eps1"`},
		{"foreign field g", loloha.ProtocolSpec{Family: "RAPPOR", K: 10, G: 3, EpsInf: 1, Eps1: 0.5},
			`does not take spec field "g"`},
		{"BiLOLOHA pins g", loloha.ProtocolSpec{Family: "BiLOLOHA", K: 10, G: 3, EpsInf: 1, Eps1: 0.5},
			"fixes g = 2"},
		{"1BitFlipPM pins d", loloha.ProtocolSpec{Family: "1BitFlipPM", K: 10, B: 5, D: 4, EpsInf: 1},
			"fixes d = 1"},
		{"dBit bucket bounds", loloha.ProtocolSpec{Family: "dBitFlipPM", K: 4, B: 8, D: 2, EpsInf: 1},
			"2 <= b <= k"},
		{"swapped budgets", loloha.ProtocolSpec{Family: "L-GRR", K: 10, EpsInf: 0.5, Eps1: 1},
			"0 < eps1 < epsInf"},
	}
	for _, c := range cases {
		_, err := c.spec.Build()
		if err == nil {
			t.Errorf("%s: spec %+v accepted", c.name, c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	// The unknown-family error enumerates what IS registered.
	_, err := loloha.ProtocolSpec{Family: "nope", K: 4}.Build()
	for _, want := range []string{"RAPPOR", "BiLOLOHA", "dBitFlipPM"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-family error %q does not list %s", err, want)
		}
	}
}

func TestSpecParseStrictness(t *testing.T) {
	if _, err := loloha.ParseSpec([]byte(`{"family":"RAPPOR","k":10,"epsilon":1}`)); err == nil {
		t.Error("unknown JSON field accepted")
	}
	if _, err := loloha.ParseSpec([]byte(`{"family":"RAPPOR","k":10} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
	specs, err := loloha.ParseSpecs([]byte(`{"family":"L-GRR","k":8,"eps_inf":1,"eps1":0.5}`))
	if err != nil || len(specs) != 1 {
		t.Fatalf("single-object list: %v %v", specs, err)
	}
	specs, err = loloha.ParseSpecs([]byte(`[{"family":"L-GRR","k":8},{"family":"RAPPOR","k":8}]`))
	if err != nil || len(specs) != 2 {
		t.Fatalf("array list: %v %v", specs, err)
	}
}

func TestSpecDecoderOnlyFamilyNotBuildable(t *testing.T) {
	const fam = "spec-decoder-only"
	loloha.RegisterDecoder(fam, func(p loloha.Protocol) (loloha.Decoder, error) {
		return histDecoder{k: p.K()}, nil
	})
	defer loloha.RegisterDecoder(fam, nil)
	_, err := loloha.ProtocolSpec{Family: fam, K: 4}.Build()
	if err == nil || !strings.Contains(err.Error(), "decoder-only") {
		t.Fatalf("decoder-only family build error = %v, want decoder-only mention", err)
	}
}
