// Package loloha is a Go implementation of LOLOHA — "Frequency Estimation
// of Evolving Data Under Local Differential Privacy" (Arcolezi, Pinzón,
// Palamidessi, Gambs; EDBT 2023) — together with the longitudinal LDP
// baselines the paper evaluates against: RAPPOR (L-SUE), L-OSUE, L-OUE,
// L-SOUE, L-GRR and dBitFlipPM, and the one-shot frequency oracles they
// build on (GRR, BLH/OLH, SUE/OUE).
//
// The core abstraction is a Protocol that binds a per-user Client (which
// sanitizes one value per collection round and tracks its own longitudinal
// privacy ledger) to a server-side Aggregator (which tallies a round of
// reports and produces unbiased frequency estimates).
//
//	proto, _ := loloha.NewBiLOLOHA(k, 1.0 /* ε∞ */, 0.5 /* ε1 */)
//	stream, _ := loloha.NewStream(proto, loloha.WithCohort(numUsers, seed))
//	for each collection round {
//	    res, _ := stream.Collect(values) // values[u] = user u's current value
//	    use res.Raw                      // the round's frequency estimates
//	}
//
// LOLOHA's guarantee (Theorem 3.5): however long the collection runs and
// however often values change, each user's total privacy loss is bounded
// by g·ε∞, where g ≪ k is the reduced hash domain — against k·ε∞ for
// RAPPOR-style memoization.
package loloha

import (
	"github.com/loloha-ldp/loloha/internal/analysis"
	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/domain"
	"github.com/loloha-ldp/loloha/internal/freqoracle"
	"github.com/loloha-ldp/loloha/internal/heavyhitter"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/postprocess"
	"github.com/loloha-ldp/loloha/internal/server"
)

// Client is the per-user side of a longitudinal protocol. See
// internal/longitudinal for the contract.
type Client = longitudinal.Client

// Aggregator is the server side of a longitudinal protocol.
type Aggregator = longitudinal.Aggregator

// MergeableAggregator is an Aggregator that supports sharded parallel
// collection via Fork and Merge. Every aggregator in this repository
// implements it.
type MergeableAggregator = longitudinal.MergeableAggregator

// Protocol binds clients and aggregators together.
type Protocol = longitudinal.Protocol

// Report is one round's sanitized payload.
type Report = longitudinal.Report

// AppendReporter is a Client with an allocation-free emission path:
// AppendReport writes the round's steady-state wire payload straight into
// a caller buffer (no boxed Report, no intermediate bitset) and
// WireRegistration exposes the client's enrollment metadata. Every client
// in this repository implements it; collection layers use it automatically
// and fall back to Report for clients that don't.
type AppendReporter = longitudinal.AppendReporter

// LOLOHA is the configured protocol of the paper (Algorithms 1 and 2).
type LOLOHA = core.Protocol

// ChainParams carries the two-round probabilities (p1, q1, p2, q2) used by
// the Eq. (3) estimator and the Eq. (4)/(5) variances.
type ChainParams = longitudinal.ChainParams

// ---------------------------------------------------------------------------
// LOLOHA constructors.

// New returns a LOLOHA protocol over domain size k with reduced domain g:
// longitudinal budget epsInf, first-report budget eps1 (0 < eps1 < epsInf).
func New(k, g int, epsInf, eps1 float64) (*LOLOHA, error) {
	return core.New(k, g, epsInf, eps1)
}

// NewBiLOLOHA returns the privacy-tuned variant (g = 2): worst-case
// longitudinal loss 2·ε∞ on the users' values.
func NewBiLOLOHA(k int, epsInf, eps1 float64) (*LOLOHA, error) {
	return core.NewBinary(k, epsInf, eps1)
}

// NewOLOLOHA returns the utility-tuned variant: g minimizes the
// approximate variance (Eq. (6)).
func NewOLOLOHA(k int, epsInf, eps1 float64) (*LOLOHA, error) {
	return core.NewOptimal(k, epsInf, eps1)
}

// OptimalG evaluates the closed-form optimal reduced domain size (Eq. (6)).
func OptimalG(epsInf, eps1 float64) int { return core.OptimalG(epsInf, eps1) }

// ---------------------------------------------------------------------------
// Baseline longitudinal protocols (§2.4).

// NewRAPPOR returns the RAPPOR protocol (SUE chained with SUE).
func NewRAPPOR(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewRAPPOR(k, epsInf, eps1)
}

// NewLOSUE returns L-OSUE (OUE chained with SUE), the optimized
// unary-encoding baseline.
func NewLOSUE(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewLOSUE(k, epsInf, eps1)
}

// NewLOUE returns L-OUE (OUE chained with OUE).
func NewLOUE(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewLOUE(k, epsInf, eps1)
}

// NewLSOUE returns L-SOUE (SUE chained with OUE).
func NewLSOUE(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewLSOUE(k, epsInf, eps1)
}

// NewLGRR returns L-GRR (GRR chained with GRR), best for small domains.
func NewLGRR(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewLGRR(k, epsInf, eps1)
}

// NewDBitFlipPM returns Microsoft's dBitFlipPM over b equal-width buckets
// with d sampled bits per user.
func NewDBitFlipPM(k, b, d int, epsInf float64) (Protocol, error) {
	return longitudinal.NewDBitFlipPM(k, b, d, epsInf)
}

// ---------------------------------------------------------------------------
// Stream: the collection service.

// Stream is the collection service of the library: one configurable,
// thread-safe, multi-round frequency-monitoring pipeline built with
// functional options. It subsumes the deprecated Cohort/Collection pair:
//
//	stream, _ := loloha.NewStream(proto,
//	    loloha.WithShards(8),
//	    loloha.WithPostProcess(loloha.PostSimplex),
//	    loloha.WithHeavyHitters(loloha.HeavyHitterConfig{Threshold: 0.05}),
//	)
//	results := stream.Subscribe()
//	// Wire path: stream.Enroll / stream.Ingest / stream.IngestBatch,
//	// then stream.CloseRound() publishes a RoundResult to results.
//
// Attach in-process simulation clients with WithCohort and drive complete
// rounds with stream.Collect(values). Estimates are bit-identical across
// shard counts and ingestion paths (wire vs cohort, batch vs per-report)
// at a fixed seed. See internal/server for the full contract.
type Stream = server.Stream

// RoundResult is one published collection round: its index, report count,
// raw and post-processed estimates, and heavy-hitter set.
type RoundResult = server.RoundResult

// StreamOption configures a Stream.
type StreamOption = server.Option

// Decoder turns a round payload into a protocol report for an enrolled
// user.
type Decoder = server.Decoder

// WireProtocol is a Protocol that supplies the decoder for its own wire
// payloads. Implement it to plug an out-of-repository protocol into
// Stream with no registration step; every protocol in this repository
// implements it.
type WireProtocol = longitudinal.WireProtocol

// WireTallier tallies a steady-state round payload directly into an
// aggregator — no intermediate Report value — so wire ingestion performs
// zero allocations per report. Stream resolves it automatically from
// protocols implementing TallyProtocol.
type WireTallier = longitudinal.WireTallier

// TallyProtocol is a Protocol whose payloads can be tallied in place.
// Every protocol in this repository implements it; external protocols
// may implement only WireProtocol (or register a Decoder) and take the
// decode path instead, with bit-identical estimates.
type TallyProtocol = longitudinal.TallyProtocol

// ---------------------------------------------------------------------------
// Columnar batch wire format.

// ColumnarBatch is one decoded columnar report batch: parallel columns
// of user IDs, fixed-stride payload cells and (optionally) enrollment
// registrations, sharing one header. Decode with DecodeColumnar and feed
// to Stream.IngestColumnar; the payload column aliases the source buffer,
// so the batch must be consumed before the buffer is reused.
type ColumnarBatch = longitudinal.ColumnarBatch

// ColumnarWriter builds columnar batches on the producer side. Reset
// keeps configuration and capacity for reuse across rounds.
type ColumnarWriter = longitudinal.ColumnarWriter

// ColumnarTallier is a WireTallier that also tallies fixed-stride payload
// cells straight out of a columnar batch. Every protocol in this
// repository provides one; external protocols without it still ingest
// columnar batches through the per-report compatibility path.
type ColumnarTallier = longitudinal.ColumnarTallier

// NewColumnarWriter returns a writer for batches of stride-byte payload
// cells bound to the given protocol spec hash (see SpecHashOf).
func NewColumnarWriter(specHash uint64, stride int) (*ColumnarWriter, error) {
	return longitudinal.NewColumnarWriter(specHash, stride)
}

// DecodeColumnar parses an encoded columnar batch into b, reusing b's
// columns. The payload column aliases src.
func DecodeColumnar(src []byte, b *ColumnarBatch) error {
	return longitudinal.DecodeColumnar(src, b)
}

// ColumnarStrideOf returns the fixed payload size the protocol's tallier
// expects per report, or false if the protocol has no ColumnarTallier.
func ColumnarStrideOf(p Protocol) (int, bool) { return longitudinal.ColumnarStrideOf(p) }

// SpecHashOf returns the stable hash of the protocol's normalized spec —
// the value producers must stamp into columnar batch headers — or 0 if
// the protocol does not expose a spec.
func SpecHashOf(p Protocol) uint64 { return longitudinal.SpecHashOf(p) }

// ErrColumnarMismatch reports a columnar batch whose spec hash or payload
// stride does not match the stream's protocol; Stream.IngestColumnar
// rejects the whole batch without tallying any of its rows.
var ErrColumnarMismatch = server.ErrColumnarMismatch

// NewStream returns a collection service for the protocol. Ingestion is
// resolved from the protocol itself — tallier first (TallyProtocol, the
// zero-allocation path every built-in protocol provides), then a Decoder
// via WireProtocol or the RegisterDecoder registry — unless WithDecoder
// pins the stream to the decoder you supply.
func NewStream(proto Protocol, opts ...StreamOption) (*Stream, error) {
	return server.NewStream(proto, opts...)
}

// WithShards sets the ingestion stripe count and, with WithCohort, the
// collection parallelism. 0 (the default) selects one shard per available
// CPU; 1 fully serializes; negative counts are rejected at construction.
func WithShards(shards int) StreamOption { return server.WithShards(shards) }

// WithDecoder overrides payload decoding for protocols with a custom wire
// format.
func WithDecoder(dec Decoder) StreamOption { return server.WithDecoder(dec) }

// WithPostProcess selects the estimate transform applied to every
// RoundResult's Estimates (costs no privacy by Proposition 2.2); the
// unbiased estimates stay available as RoundResult.Raw.
func WithPostProcess(m PostProcess) StreamOption { return server.WithPostProcess(m) }

// WithHeavyHitters attaches a heavy-hitter tracker fed each round's
// post-processed estimates; RoundResult.HeavyHitters carries its current
// set. cfg.K defaults to the protocol's estimate domain.
func WithHeavyHitters(cfg HeavyHitterConfig) StreamOption { return server.WithHeavyHitters(cfg) }

// WithRoundCapacity sets each Subscribe channel's buffer (default 16).
// The backpressure policy is explicit: publication never blocks on a
// subscriber — a subscriber whose buffer is full when a round is published
// drops that round (detectable via RoundResult.Round gaps, recoverable via
// Stream.Round, counted by Stream.DroppedRounds).
func WithRoundCapacity(n int) StreamOption { return server.WithRoundCapacity(n) }

// WithCohort attaches n in-process simulation clients (seeded
// deterministically from seed) so Collect can drive complete rounds from
// raw values.
func WithCohort(n int, seed uint64) StreamOption { return server.WithCohort(n, seed) }

// RegisterDecoder associates a decoder factory with a protocol name, for
// external protocols that cannot implement WireProtocol themselves. It is
// a decoder-only shim over the unified family registry: RegisterFamily
// additionally makes the protocol constructible from a ProtocolSpec.
func RegisterDecoder(name string, mk func(Protocol) (Decoder, error)) {
	server.RegisterDecoder(name, mk)
}

// ---------------------------------------------------------------------------
// Cohort: deprecated pre-Stream simulation surface.

// Cohort couples n protocol clients with one aggregator so applications
// can drive a complete collection round with a single call.
//
// Deprecated: use NewStream with WithCohort; Collect returns a
// RoundResult whose Raw field is this type's estimate slice.
type Cohort struct {
	stream *Stream
}

// NewCohort creates n clients (seeded deterministically from seed) and a
// fresh aggregator for proto, collecting with one shard per available CPU.
//
// Deprecated: use NewStream(proto, WithCohort(n, seed)).
func NewCohort(proto Protocol, n int, seed uint64) (*Cohort, error) {
	return NewShardedCohort(proto, n, seed, longitudinal.DefaultShards())
}

// NewShardedCohort is NewCohort with an explicit collection parallelism.
// shards <= 1 — including any negative value — selects the fully serial
// path (NewStream, unlike this shim, rejects negative counts).
//
// Deprecated: use NewStream(proto, WithCohort(n, seed), WithShards(shards)).
func NewShardedCohort(proto Protocol, n int, seed uint64, shards int) (*Cohort, error) {
	if shards < 1 {
		shards = 1
	}
	s, err := NewStream(proto, WithCohort(n, seed), WithShards(shards))
	if err != nil {
		return nil, err
	}
	return &Cohort{stream: s}, nil
}

// Stream returns the underlying Stream service.
func (c *Cohort) Stream() *Stream { return c.stream }

// N returns the cohort size.
func (c *Cohort) N() int { return c.stream.CohortSize() }

// Shards returns the cohort's effective collection parallelism.
func (c *Cohort) Shards() int { return c.stream.CohortShards() }

// Collect runs one collection round: values[u] is user u's current value.
// It returns the round's frequency estimates.
func (c *Cohort) Collect(values []int) ([]float64, error) {
	res, err := c.stream.Collect(values)
	if err != nil {
		return nil, err
	}
	return res.Raw, nil
}

// PrivacySpent returns each user's longitudinal privacy loss ε̌ so far.
func (c *Cohort) PrivacySpent() []float64 { return c.stream.PrivacySpent() }

// MaxPrivacySpent returns the worst ε̌ across the cohort.
func (c *Cohort) MaxPrivacySpent() float64 { return c.stream.MaxPrivacySpent() }

// ---------------------------------------------------------------------------
// One-shot oracles (§2.3) for non-longitudinal collections.

// GRR is the one-shot generalized randomized response mechanism.
type GRR = freqoracle.GRR

// LH is the one-shot local hashing protocol.
type LH = freqoracle.LH

// UE is the one-shot unary encoding protocol.
type UE = freqoracle.UE

// NewGRR returns one-shot GRR over domain size k at privacy level eps.
func NewGRR(k int, eps float64) (*GRR, error) { return freqoracle.NewGRR(k, eps) }

// NewBLH returns one-shot binary local hashing (g = 2).
func NewBLH(k int, eps float64) (*LH, error) { return freqoracle.NewBLH(k, eps) }

// NewOLH returns one-shot optimal local hashing (g = ⌊e^ε⌉+1).
func NewOLH(k int, eps float64) (*LH, error) { return freqoracle.NewOLH(k, eps) }

// NewSUE returns one-shot symmetric unary encoding.
func NewSUE(k int, eps float64) (*UE, error) { return freqoracle.NewSUE(k, eps) }

// NewOUE returns one-shot optimal unary encoding.
func NewOUE(k int, eps float64) (*UE, error) { return freqoracle.NewOUE(k, eps) }

// ---------------------------------------------------------------------------
// Collection: deprecated pre-Stream wire surface.

// Collection is the deprecated pre-Stream wire-level collection service:
// the same engine as Stream with []float64 results instead of RoundResult.
//
// Deprecated: use Stream.
type Collection = server.Collection

// Registration is a user's one-time enrollment metadata (LOLOHA hash seed
// or dBitFlipPM sampled buckets).
type Registration = server.Registration

// NewCollection returns a collection service for the protocol, selecting
// the matching payload decoder automatically. Ingestion is striped over
// one shard per available CPU.
//
// Deprecated: use NewStream(proto).
func NewCollection(proto Protocol) (*Collection, error) {
	return NewShardedCollection(proto, longitudinal.DefaultShards())
}

// NewShardedCollection is NewCollection with an explicit ingestion stripe
// count. shards <= 1 — including any negative value — fully serializes
// the service (NewStream, unlike this shim, rejects negative counts).
//
// Deprecated: use NewStream(proto, WithShards(shards)).
func NewShardedCollection(proto Protocol, shards int) (*Collection, error) {
	dec, err := server.ForProtocol(proto)
	if err != nil {
		return nil, err
	}
	return server.NewSharded(proto, dec, shards), nil
}

// ---------------------------------------------------------------------------
// Domain helpers.

// Codec maps application-level string values onto the dense indices [0..k)
// that every protocol operates on. Servers and clients must construct it
// from the same value list.
type Codec = domain.Codec

// NewCodec builds a codec over the given distinct values.
func NewCodec(values []string) (*Codec, error) { return domain.NewCodec(values) }

// ---------------------------------------------------------------------------
// Heavy-hitter monitoring (application layer).

// HeavyHitterTracker folds per-round estimates into smoothed frequencies
// and maintains the heavy-hitter set with hysteresis.
type HeavyHitterTracker = heavyhitter.Tracker

// HeavyHitterConfig parameterizes a HeavyHitterTracker.
type HeavyHitterConfig = heavyhitter.Config

// Hitter is one detected heavy hitter.
type Hitter = heavyhitter.Hitter

// NewHeavyHitterTracker returns a tracker over per-round estimates.
func NewHeavyHitterTracker(cfg HeavyHitterConfig) (*HeavyHitterTracker, error) {
	return heavyhitter.New(cfg)
}

// SuggestedHeavyHitterThreshold returns a detection threshold z noise
// floors above zero for a chain's estimates smoothed at the given alpha.
func SuggestedHeavyHitterThreshold(params ChainParams, n int, alpha, z float64) float64 {
	return heavyhitter.SuggestedThreshold(params, n, alpha, z)
}

// ---------------------------------------------------------------------------
// Post-processing (extension; costs no privacy by Proposition 2.2).

// PostProcess selects a server-side estimate transform.
type PostProcess = postprocess.Method

// Post-processing methods: raw estimates (paper default), clamping,
// clip-and-rescale, and the L2-optimal simplex projection.
const (
	PostNone      = postprocess.None
	PostClip      = postprocess.Clip
	PostNormalize = postprocess.Normalize
	PostSimplex   = postprocess.SimplexProject
)

// ApplyPostProcess transforms raw estimates in place and returns them.
func ApplyPostProcess(m PostProcess, est []float64) []float64 {
	return postprocess.Apply(m, est)
}

// ---------------------------------------------------------------------------
// Analysis helpers.

// AccuracyBound evaluates the Proposition 3.6 high-probability bound: with
// probability at least 1−beta, every estimate of a chain with the given
// parameters is within the returned distance of the truth.
func AccuracyBound(k, n int, beta float64, params ChainParams) (float64, error) {
	return analysis.AccuracyBound(k, n, beta, params)
}

// ApproxVarianceLOLOHA returns V* (Eq. (5)) for a LOLOHA configuration.
func ApproxVarianceLOLOHA(epsInf, eps1 float64, g, n int) (float64, error) {
	return analysis.VStarLOLOHA(epsInf, eps1, g, n)
}
