// Package loloha is a Go implementation of LOLOHA — "Frequency Estimation
// of Evolving Data Under Local Differential Privacy" (Arcolezi, Pinzón,
// Palamidessi, Gambs; EDBT 2023) — together with the longitudinal LDP
// baselines the paper evaluates against: RAPPOR (L-SUE), L-OSUE, L-OUE,
// L-SOUE, L-GRR and dBitFlipPM, and the one-shot frequency oracles they
// build on (GRR, BLH/OLH, SUE/OUE).
//
// The core abstraction is a Protocol that binds a per-user Client (which
// sanitizes one value per collection round and tracks its own longitudinal
// privacy ledger) to a server-side Aggregator (which tallies a round of
// reports and produces unbiased frequency estimates).
//
//	proto, _ := loloha.NewBiLOLOHA(k, 1.0 /* ε∞ */, 0.5 /* ε1 */)
//	cohort := loloha.NewCohort(proto, numUsers, seed)
//	for each collection round {
//	    est := cohort.Collect(values) // values[u] = user u's current value
//	}
//
// LOLOHA's guarantee (Theorem 3.5): however long the collection runs and
// however often values change, each user's total privacy loss is bounded
// by g·ε∞, where g ≪ k is the reduced hash domain — against k·ε∞ for
// RAPPOR-style memoization.
package loloha

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/analysis"
	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/domain"
	"github.com/loloha-ldp/loloha/internal/freqoracle"
	"github.com/loloha-ldp/loloha/internal/heavyhitter"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/postprocess"
	"github.com/loloha-ldp/loloha/internal/randsrc"
	"github.com/loloha-ldp/loloha/internal/server"
)

// Client is the per-user side of a longitudinal protocol. See
// internal/longitudinal for the contract.
type Client = longitudinal.Client

// Aggregator is the server side of a longitudinal protocol.
type Aggregator = longitudinal.Aggregator

// MergeableAggregator is an Aggregator that supports sharded parallel
// collection via Fork and Merge. Every aggregator in this repository
// implements it.
type MergeableAggregator = longitudinal.MergeableAggregator

// Protocol binds clients and aggregators together.
type Protocol = longitudinal.Protocol

// Report is one round's sanitized payload.
type Report = longitudinal.Report

// LOLOHA is the configured protocol of the paper (Algorithms 1 and 2).
type LOLOHA = core.Protocol

// ChainParams carries the two-round probabilities (p1, q1, p2, q2) used by
// the Eq. (3) estimator and the Eq. (4)/(5) variances.
type ChainParams = longitudinal.ChainParams

// ---------------------------------------------------------------------------
// LOLOHA constructors.

// New returns a LOLOHA protocol over domain size k with reduced domain g:
// longitudinal budget epsInf, first-report budget eps1 (0 < eps1 < epsInf).
func New(k, g int, epsInf, eps1 float64) (*LOLOHA, error) {
	return core.New(k, g, epsInf, eps1)
}

// NewBiLOLOHA returns the privacy-tuned variant (g = 2): worst-case
// longitudinal loss 2·ε∞ on the users' values.
func NewBiLOLOHA(k int, epsInf, eps1 float64) (*LOLOHA, error) {
	return core.NewBinary(k, epsInf, eps1)
}

// NewOLOLOHA returns the utility-tuned variant: g minimizes the
// approximate variance (Eq. (6)).
func NewOLOLOHA(k int, epsInf, eps1 float64) (*LOLOHA, error) {
	return core.NewOptimal(k, epsInf, eps1)
}

// OptimalG evaluates the closed-form optimal reduced domain size (Eq. (6)).
func OptimalG(epsInf, eps1 float64) int { return core.OptimalG(epsInf, eps1) }

// ---------------------------------------------------------------------------
// Baseline longitudinal protocols (§2.4).

// NewRAPPOR returns the RAPPOR protocol (SUE chained with SUE).
func NewRAPPOR(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewRAPPOR(k, epsInf, eps1)
}

// NewLOSUE returns L-OSUE (OUE chained with SUE), the optimized
// unary-encoding baseline.
func NewLOSUE(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewLOSUE(k, epsInf, eps1)
}

// NewLOUE returns L-OUE (OUE chained with OUE).
func NewLOUE(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewLOUE(k, epsInf, eps1)
}

// NewLSOUE returns L-SOUE (SUE chained with OUE).
func NewLSOUE(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewLSOUE(k, epsInf, eps1)
}

// NewLGRR returns L-GRR (GRR chained with GRR), best for small domains.
func NewLGRR(k int, epsInf, eps1 float64) (Protocol, error) {
	return longitudinal.NewLGRR(k, epsInf, eps1)
}

// NewDBitFlipPM returns Microsoft's dBitFlipPM over b equal-width buckets
// with d sampled bits per user.
func NewDBitFlipPM(k, b, d int, epsInf float64) (Protocol, error) {
	return longitudinal.NewDBitFlipPM(k, b, d, epsInf)
}

// ---------------------------------------------------------------------------
// Cohort: convenience wiring of n clients plus an aggregator.

// Cohort couples n protocol clients with one aggregator so applications can
// drive a complete collection round with a single call. It is a
// convenience for simulations and examples; production deployments run
// Client on devices and Aggregator on the server.
//
// Collection is sharded: users are partitioned into contiguous blocks that
// report and tally on their own goroutines, and the per-shard tallies are
// merged before estimation. Estimates are bit-identical to a serial
// collection for any shard count and fixed seed, because all per-user
// randomness lives in the user's Client and shard tallies are integer
// counts.
type Cohort struct {
	proto     Protocol
	clients   []Client
	collector *longitudinal.ShardedCollector
}

// NewCohort creates n clients (seeded deterministically from seed) and a
// fresh aggregator for proto, collecting with one shard per available CPU.
func NewCohort(proto Protocol, n int, seed uint64) (*Cohort, error) {
	return NewShardedCohort(proto, n, seed, longitudinal.DefaultShards())
}

// NewShardedCohort is NewCohort with an explicit collection parallelism:
// users are split into at most shards blocks collected concurrently.
// shards <= 1 selects the fully serial path.
func NewShardedCohort(proto Protocol, n int, seed uint64, shards int) (*Cohort, error) {
	if n < 1 {
		return nil, fmt.Errorf("loloha: cohort needs at least one user, got %d", n)
	}
	c := &Cohort{
		proto:     proto,
		clients:   make([]Client, n),
		collector: longitudinal.NewShardedCollector(proto.NewAggregator(), n, shards),
	}
	for u := range c.clients {
		c.clients[u] = proto.NewClient(randsrc.Derive(seed, uint64(u)))
	}
	return c, nil
}

// N returns the cohort size.
func (c *Cohort) N() int { return len(c.clients) }

// Shards returns the cohort's effective collection parallelism.
func (c *Cohort) Shards() int { return c.collector.Shards() }

// Collect runs one collection round: values[u] is user u's current value.
// It returns the round's frequency estimates.
func (c *Cohort) Collect(values []int) ([]float64, error) {
	if len(values) != len(c.clients) {
		return nil, fmt.Errorf("loloha: got %d values for %d users", len(values), len(c.clients))
	}
	return c.collector.Collect(c.clients, values)
}

// PrivacySpent returns each user's longitudinal privacy loss ε̌ so far.
func (c *Cohort) PrivacySpent() []float64 {
	out := make([]float64, len(c.clients))
	for u, cl := range c.clients {
		out[u] = cl.PrivacySpent()
	}
	return out
}

// MaxPrivacySpent returns the worst ε̌ across the cohort.
func (c *Cohort) MaxPrivacySpent() float64 {
	worst := 0.0
	for _, cl := range c.clients {
		if s := cl.PrivacySpent(); s > worst {
			worst = s
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// One-shot oracles (§2.3) for non-longitudinal collections.

// GRR is the one-shot generalized randomized response mechanism.
type GRR = freqoracle.GRR

// LH is the one-shot local hashing protocol.
type LH = freqoracle.LH

// UE is the one-shot unary encoding protocol.
type UE = freqoracle.UE

// NewGRR returns one-shot GRR over domain size k at privacy level eps.
func NewGRR(k int, eps float64) (*GRR, error) { return freqoracle.NewGRR(k, eps) }

// NewBLH returns one-shot binary local hashing (g = 2).
func NewBLH(k int, eps float64) (*LH, error) { return freqoracle.NewBLH(k, eps) }

// NewOLH returns one-shot optimal local hashing (g = ⌊e^ε⌉+1).
func NewOLH(k int, eps float64) (*LH, error) { return freqoracle.NewOLH(k, eps) }

// NewSUE returns one-shot symmetric unary encoding.
func NewSUE(k int, eps float64) (*UE, error) { return freqoracle.NewSUE(k, eps) }

// NewOUE returns one-shot optimal unary encoding.
func NewOUE(k int, eps float64) (*UE, error) { return freqoracle.NewOUE(k, eps) }

// ---------------------------------------------------------------------------
// Wire-level collection service.

// Collection is a thread-safe multi-round collection service that ingests
// raw report bytes: users Enroll once with registration metadata, Ingest a
// payload per round, and CloseRound publishes estimates. See
// internal/server for the contract.
type Collection = server.Collection

// Registration is a user's one-time enrollment metadata (LOLOHA hash seed
// or dBitFlipPM sampled buckets).
type Registration = server.Registration

// NewCollection returns a collection service for the protocol, selecting
// the matching payload decoder automatically. Ingestion is striped over
// one shard per available CPU.
func NewCollection(proto Protocol) (*Collection, error) {
	return NewShardedCollection(proto, longitudinal.DefaultShards())
}

// NewShardedCollection is NewCollection with an explicit ingestion stripe
// count (shards <= 1 fully serializes the service).
func NewShardedCollection(proto Protocol, shards int) (*Collection, error) {
	dec, err := server.ForProtocol(proto)
	if err != nil {
		return nil, err
	}
	return server.NewSharded(proto, dec, shards), nil
}

// ---------------------------------------------------------------------------
// Domain helpers.

// Codec maps application-level string values onto the dense indices [0..k)
// that every protocol operates on. Servers and clients must construct it
// from the same value list.
type Codec = domain.Codec

// NewCodec builds a codec over the given distinct values.
func NewCodec(values []string) (*Codec, error) { return domain.NewCodec(values) }

// ---------------------------------------------------------------------------
// Heavy-hitter monitoring (application layer).

// HeavyHitterTracker folds per-round estimates into smoothed frequencies
// and maintains the heavy-hitter set with hysteresis.
type HeavyHitterTracker = heavyhitter.Tracker

// HeavyHitterConfig parameterizes a HeavyHitterTracker.
type HeavyHitterConfig = heavyhitter.Config

// Hitter is one detected heavy hitter.
type Hitter = heavyhitter.Hitter

// NewHeavyHitterTracker returns a tracker over per-round estimates.
func NewHeavyHitterTracker(cfg HeavyHitterConfig) (*HeavyHitterTracker, error) {
	return heavyhitter.New(cfg)
}

// SuggestedHeavyHitterThreshold returns a detection threshold z noise
// floors above zero for a chain's estimates smoothed at the given alpha.
func SuggestedHeavyHitterThreshold(params ChainParams, n int, alpha, z float64) float64 {
	return heavyhitter.SuggestedThreshold(params, n, alpha, z)
}

// ---------------------------------------------------------------------------
// Post-processing (extension; costs no privacy by Proposition 2.2).

// PostProcess selects a server-side estimate transform.
type PostProcess = postprocess.Method

// Post-processing methods: raw estimates (paper default), clamping,
// clip-and-rescale, and the L2-optimal simplex projection.
const (
	PostNone      = postprocess.None
	PostClip      = postprocess.Clip
	PostNormalize = postprocess.Normalize
	PostSimplex   = postprocess.SimplexProject
)

// ApplyPostProcess transforms raw estimates in place and returns them.
func ApplyPostProcess(m PostProcess, est []float64) []float64 {
	return postprocess.Apply(m, est)
}

// ---------------------------------------------------------------------------
// Analysis helpers.

// AccuracyBound evaluates the Proposition 3.6 high-probability bound: with
// probability at least 1−beta, every estimate of a chain with the given
// parameters is within the returned distance of the truth.
func AccuracyBound(k, n int, beta float64, params ChainParams) (float64, error) {
	return analysis.AccuracyBound(k, n, beta, params)
}

// ApproxVarianceLOLOHA returns V* (Eq. (5)) for a LOLOHA configuration.
func ApproxVarianceLOLOHA(epsInf, eps1 float64, g, n int) (float64, error) {
	return analysis.VStarLOLOHA(epsInf, eps1, g, n)
}
