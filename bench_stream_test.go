// Benchmarks for the Stream ingestion paths. Two axes:
//
//   - Entry point: per-report Ingest (one shard-lock acquisition per
//     payload) vs IngestBatch (one lock acquisition per shard per batch).
//   - Ingestion path: the decoder rows pin the legacy Decoder path with
//     WithDecoder (one boxed Report allocation per payload plus batch
//     phase buffers); the tally rows take the default tally-direct path,
//     where payloads tally straight into the shard aggregator with zero
//     steady-state allocations.
//
// Workers ingest concurrently, the deployment the service is built for.
// BENCH_ingest.json records the checked-in baseline.
//
//	go test -run xxx -bench 'IngestPath' -benchmem .
package loloha_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

func BenchmarkIngestPath(b *testing.B) {
	const k, n, batchSize = 64, 50_000, 4096
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // still measures lock contention on small boxes
	}
	type seeded interface{ HashSeed() uint64 }
	for _, shards := range []int{1, 2, 4, 8} {
		for _, tally := range []bool{false, true} {
			proto, err := loloha.NewBiLOLOHA(k, 2, 1)
			if err != nil {
				b.Fatal(err)
			}
			opts := []loloha.StreamOption{loloha.WithShards(shards)}
			if !tally {
				// Pin the legacy Decoder path; the default is tally-direct.
				opts = append(opts, loloha.WithDecoder(proto.WireDecoder()))
			}
			stream, err := loloha.NewStream(proto, opts...)
			if err != nil {
				b.Fatal(err)
			}
			userIDs := make([]int, n)
			payloads := make([][]byte, n)
			for u := 0; u < n; u++ {
				cl := proto.NewClient(uint64(u))
				if err := stream.Enroll(u, loloha.Registration{HashSeed: cl.(seeded).HashSeed()}); err != nil {
					b.Fatal(err)
				}
				userIDs[u] = u
				payloads[u] = cl.Report(u % k).AppendBinary(nil)
			}
			// Each worker owns a contiguous block of users and ingests it
			// either one report or one batch slice at a time.
			ingestRound := func(b *testing.B, batch bool) {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						lo, hi := w*n/workers, (w+1)*n/workers
						if batch {
							for ; lo < hi; lo += batchSize {
								end := min(lo+batchSize, hi)
								if err := stream.IngestBatch(userIDs[lo:end], payloads[lo:end]); err != nil {
									b.Error(err)
									return
								}
							}
							return
						}
						for u := lo; u < hi; u++ {
							if err := stream.Ingest(u, payloads[u]); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				benchSink = stream.CloseRound()
			}
			for _, batch := range []bool{false, true} {
				name := "per-report"
				if batch {
					name = "batch"
				}
				if tally {
					name = "tally-" + name
				}
				b.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						ingestRound(b, batch)
					}
					b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
				})
			}
		}
	}
}

// BenchmarkIngestColumnar measures the columnar fast path against the
// same workload as BenchmarkIngestPath's tally/batch rows: each worker
// owns a block of pre-encoded columnar batches and replays decode →
// IngestColumnar every round, the shape of a daemon draining FrameColumnar
// bodies. Compare against tally-batch at equal shard counts for the
// per-report-framing speedup.
//
//	go test -run xxx -bench 'IngestColumnar' -benchmem .
func BenchmarkIngestColumnar(b *testing.B) {
	const k, n, batchSize = 64, 50_000, 4096
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	type seeded interface{ HashSeed() uint64 }
	for _, shards := range []int{1, 2, 4, 8} {
		proto, err := loloha.NewBiLOLOHA(k, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		stream, err := loloha.NewStream(proto, loloha.WithShards(shards))
		if err != nil {
			b.Fatal(err)
		}
		stride, ok := loloha.ColumnarStrideOf(proto)
		if !ok {
			b.Fatal("protocol has no columnar stride")
		}
		w, err := loloha.NewColumnarWriter(loloha.SpecHashOf(proto), stride)
		if err != nil {
			b.Fatal(err)
		}
		// One encoded batch per batchSize block of users, partitioned over
		// the workers below.
		var encoded [][]byte
		for u := 0; u < n; u++ {
			cl := proto.NewClient(uint64(u))
			if err := stream.Enroll(u, loloha.Registration{HashSeed: cl.(seeded).HashSeed()}); err != nil {
				b.Fatal(err)
			}
			if err := w.Add(u, cl.Report(u%k).AppendBinary(nil)); err != nil {
				b.Fatal(err)
			}
			if w.Count() == batchSize || u == n-1 {
				encoded = append(encoded, w.AppendTo(nil))
				w.Reset()
			}
		}
		ingestRound := func(b *testing.B) {
			var wg sync.WaitGroup
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					var batch loloha.ColumnarBatch
					for i := wk; i < len(encoded); i += workers {
						if err := loloha.DecodeColumnar(encoded[i], &batch); err != nil {
							b.Error(err)
							return
						}
						if err := stream.IngestColumnar(&batch); err != nil {
							b.Error(err)
							return
						}
					}
				}(wk)
			}
			wg.Wait()
			benchSink = stream.CloseRound()
		}
		b.Run(fmt.Sprintf("columnar/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ingestRound(b)
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
