// Benchmarks for the Stream ingestion paths: per-report Ingest acquires a
// shard lock per payload, IngestBatch decodes outside the locks and takes
// one lock acquisition per shard per batch — the amortization this file
// measures. Workers ingest concurrently, the deployment the service is
// built for; with a single stripe every per-report call contends on one
// mutex while the batch path takes it once per batch.
// BENCH_ingest.json records the checked-in baseline.
//
//	go test -bench 'IngestPath' -benchmem
package loloha_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

func BenchmarkIngestPath(b *testing.B) {
	const k, n, batchSize = 64, 50_000, 4096
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // still measures lock contention on small boxes
	}
	type seeded interface{ HashSeed() uint64 }
	for _, shards := range []int{1, 8} {
		proto, err := loloha.NewBiLOLOHA(k, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		stream, err := loloha.NewStream(proto, loloha.WithShards(shards))
		if err != nil {
			b.Fatal(err)
		}
		userIDs := make([]int, n)
		payloads := make([][]byte, n)
		for u := 0; u < n; u++ {
			cl := proto.NewClient(uint64(u))
			if err := stream.Enroll(u, loloha.Registration{HashSeed: cl.(seeded).HashSeed()}); err != nil {
				b.Fatal(err)
			}
			userIDs[u] = u
			payloads[u] = cl.Report(u % k).AppendBinary(nil)
		}
		// Each worker owns a contiguous block of users and ingests it
		// either one report or one batch slice at a time.
		ingestRound := func(b *testing.B, batch bool) {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					lo, hi := w*n/workers, (w+1)*n/workers
					if batch {
						for ; lo < hi; lo += batchSize {
							end := min(lo+batchSize, hi)
							if err := stream.IngestBatch(userIDs[lo:end], payloads[lo:end]); err != nil {
								b.Error(err)
								return
							}
						}
						return
					}
					for u := lo; u < hi; u++ {
						if err := stream.Ingest(u, payloads[u]); err != nil {
							b.Error(err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			benchSink = stream.CloseRound()
		}
		for _, batch := range []bool{false, true} {
			name := "per-report"
			if batch {
				name = "batch"
			}
			b.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ingestRound(b, batch)
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
			})
		}
	}
}
