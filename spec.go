package loloha

import (
	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// Declarative protocol construction. A ProtocolSpec is a plain,
// JSON-serializable description of one protocol configuration, and the
// family registry turns it into a running Protocol:
//
//	spec, _ := loloha.ParseSpec([]byte(`{"family":"BiLOLOHA","k":100,"eps_inf":1.0,"eps1":0.5}`))
//	proto, _ := spec.Build()
//	stream, _ := loloha.NewStream(proto)
//
// Every New* constructor has a spec equivalent (see the README migration
// table), every built protocol describes itself back via SpecOf, and a
// family registered once with RegisterFamily is constructible from a spec
// everywhere — Stream serving, simulation grids and the lolohasim CLI.

// ProtocolSpec is the declarative protocol description: a family name plus
// the union of every family's parameters (K, G, B, D, EpsInf, Eps1).
// Fields a family does not consume must stay zero; Build validates against
// the family's declared parameter domains before constructing.
type ProtocolSpec = longitudinal.ProtocolSpec

// FamilyInfo describes one registered protocol family: its builder, its
// wire-payload decoder factory and the spec fields it consumes.
type FamilyInfo = longitudinal.FamilyInfo

// SpecField names one ProtocolSpec parameter inside a FamilyInfo's
// Required/Optional domain lists.
type SpecField = longitudinal.Field

// The ProtocolSpec parameters, as used in FamilyInfo domain lists. The
// values match the spec's JSON keys.
const (
	SpecFieldK      = longitudinal.FieldK
	SpecFieldG      = longitudinal.FieldG
	SpecFieldB      = longitudinal.FieldB
	SpecFieldD      = longitudinal.FieldD
	SpecFieldEpsInf = longitudinal.FieldEpsInf
	SpecFieldEps1   = longitudinal.FieldEps1
)

// SpecProtocol is a Protocol that describes itself as a ProtocolSpec, so
// built protocols round-trip (spec → Build → Spec → Build) to bit-identical
// configurations. Every protocol in this repository implements it.
type SpecProtocol = longitudinal.SpecProtocol

// RegisterFamily associates a protocol family name with its builder,
// decoder factory and parameter domains. One registration makes the family
// constructible from a ProtocolSpec everywhere a built-in is: Stream
// serving, simulation grids and the CLI. Registering an existing name
// replaces the entry; a zero FamilyInfo removes it.
func RegisterFamily(name string, info FamilyInfo) {
	longitudinal.RegisterFamily(name, info)
}

// LookupFamily returns the registered info for a family name.
func LookupFamily(name string) (FamilyInfo, bool) {
	return longitudinal.LookupFamily(name)
}

// Families returns the registered protocol family names, sorted. All
// built-in families self-register: LOLOHA, BiLOLOHA, OLOLOHA, RAPPOR,
// L-OSUE, L-OUE, L-SOUE, L-GRR, dBitFlipPM, 1BitFlipPM and bBitFlipPM.
func Families() []string {
	return longitudinal.Families()
}

// ParseSpec decodes one JSON ProtocolSpec, rejecting unknown fields so a
// typo'd parameter fails loudly instead of building a different protocol.
func ParseSpec(data []byte) (ProtocolSpec, error) {
	return longitudinal.ParseSpec(data)
}

// ParseSpecs decodes a JSON array of ProtocolSpecs (a single object parses
// as a one-element list) — the `lolohasim -spec <file.json>` format.
func ParseSpecs(data []byte) ([]ProtocolSpec, error) {
	return longitudinal.ParseSpecs(data)
}

// SpecOf returns the declarative spec of a built protocol, when the
// protocol can describe itself (every protocol in this repository can).
func SpecOf(p Protocol) (ProtocolSpec, bool) {
	return longitudinal.SpecOf(p)
}
