// Tests for tally-direct ingestion: the WireTallier fast path must be
// bit-identical to the Decoder compatibility path for every protocol
// family and shard count, and the steady-state wire hot path must not
// allocate — testing.AllocsPerRun pins Ingest at 0 allocs/report and
// IngestBatch at 0 allocs/batch so regressions fail loudly instead of
// showing up as GC pressure under production load.
package loloha_test

import (
	"fmt"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

// tallyProtocols builds one protocol per family, paired with the decoder
// that pins a stream to the legacy Decoder path (WithDecoder disables the
// protocol's tallier).
func tallyProtocols(t testing.TB, k int) map[string]loloha.Protocol {
	t.Helper()
	protos := map[string]loloha.Protocol{}
	add := func(name string, p loloha.Protocol, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		protos[name] = p
	}
	p1, err1 := loloha.NewBiLOLOHA(k, 2, 1)
	add("LOLOHA", p1, err1)
	p2, err2 := loloha.NewRAPPOR(k, 2, 1)
	add("chained-UE", p2, err2)
	p3, err3 := loloha.NewLGRR(k, 2, 1)
	add("L-GRR", p3, err3)
	p4, err4 := loloha.NewDBitFlipPM(k, 8, 3, 2)
	add("dBitFlipPM", p4, err4)
	return protos
}

// decoderOf resolves a protocol's wire decoder so tests can force the
// Decoder path explicitly.
func decoderOf(t testing.TB, proto loloha.Protocol) loloha.Decoder {
	t.Helper()
	wp, ok := proto.(loloha.WireProtocol)
	if !ok {
		t.Fatalf("%T does not implement WireProtocol", proto)
	}
	return wp.WireDecoder()
}

// TestTallyDirectMatchesDecoderPath is the acceptance gate of the
// tally-direct refactor: for every protocol family × shard count, a stream
// on the default tally path and a stream pinned to the Decoder path via
// WithDecoder produce bit-identical estimates from identical payloads,
// through both per-report and batch ingestion.
func TestTallyDirectMatchesDecoderPath(t *testing.T) {
	const k, n, rounds = 24, 400, 3
	for name, proto := range tallyProtocols(t, k) {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				tally, err := loloha.NewStream(proto, loloha.WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				decode, err := loloha.NewStream(proto, loloha.WithShards(shards),
					loloha.WithDecoder(decoderOf(t, proto)))
				if err != nil {
					t.Fatal(err)
				}
				clients := make([]loloha.Client, n)
				for u := range clients {
					clients[u] = proto.NewClient(uint64(u)*0x9E3779B9 + 1)
					reg := registrationFor(t, clients[u])
					if err := tally.Enroll(u, reg); err != nil {
						t.Fatal(err)
					}
					if err := decode.Enroll(u, reg); err != nil {
						t.Fatal(err)
					}
				}
				for round := 0; round < rounds; round++ {
					userIDs := make([]int, n)
					payloads := make([][]byte, n)
					for u, cl := range clients {
						userIDs[u] = u
						payloads[u] = cl.Report((u + round*7) % k).AppendBinary(nil)
					}
					// Odd rounds batch, even rounds go report by report, so
					// both entry points are exercised on both paths.
					if round%2 == 1 {
						if err := tally.IngestBatch(userIDs, payloads); err != nil {
							t.Fatal(err)
						}
						if err := decode.IngestBatch(userIDs, payloads); err != nil {
							t.Fatal(err)
						}
					} else {
						for u := range userIDs {
							if err := tally.Ingest(u, payloads[u]); err != nil {
								t.Fatal(err)
							}
							if err := decode.Ingest(u, payloads[u]); err != nil {
								t.Fatal(err)
							}
						}
					}
					got, want := tally.CloseRound(), decode.CloseRound()
					if got.Reports != n || want.Reports != n {
						t.Fatalf("round %d: reports %d vs %d, want %d", round, got.Reports, want.Reports, n)
					}
					if !equalFloats(got.Raw, want.Raw) {
						t.Fatalf("round %d: tally-direct estimates diverged from Decoder path", round)
					}
				}
			})
		}
	}
}

// TestTallyDirectRejectsWhatDecoderRejects: malformed payloads —
// truncated, trailing bytes, out-of-range values — are rejected by both
// paths, and a rejected payload tallies nothing on either.
func TestTallyDirectRejectsWhatDecoderRejects(t *testing.T) {
	const k = 24
	for name, proto := range tallyProtocols(t, k) {
		t.Run(name, func(t *testing.T) {
			tally, err := loloha.NewStream(proto, loloha.WithShards(1))
			if err != nil {
				t.Fatal(err)
			}
			decode, err := loloha.NewStream(proto, loloha.WithShards(1),
				loloha.WithDecoder(decoderOf(t, proto)))
			if err != nil {
				t.Fatal(err)
			}
			cl := proto.NewClient(7)
			reg := registrationFor(t, cl)
			for _, s := range []*loloha.Stream{tally, decode} {
				if err := s.Enroll(0, reg); err != nil {
					t.Fatal(err)
				}
			}
			good := cl.Report(3).AppendBinary(nil)
			for label, payload := range map[string][]byte{
				"empty":     {},
				"truncated": good[:len(good)-1],
				"trailing":  append(append([]byte{}, good...), 0xAA),
			} {
				tallyErr := tally.Ingest(0, payload)
				decodeErr := decode.Ingest(0, payload)
				if (tallyErr == nil) != (decodeErr == nil) {
					t.Fatalf("%s payload: tally err=%v, decoder err=%v", label, tallyErr, decodeErr)
				}
			}
			if got, want := tally.CloseRound(), decode.CloseRound(); got.Reports != want.Reports {
				t.Fatalf("paths tallied different report counts: %d vs %d", got.Reports, want.Reports)
			}
		})
	}
}

// TestIngestSteadyStateZeroAllocs pins the headline guarantee of the
// tally-direct refactor: after enrollment and a warm-up round, wire Ingest
// of every built-in protocol performs zero allocations per report.
func TestIngestSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	const k, n, runs = 24, 256, 100
	for name, proto := range tallyProtocols(t, k) {
		t.Run(name, func(t *testing.T) {
			stream, err := loloha.NewStream(proto, loloha.WithShards(4))
			if err != nil {
				t.Fatal(err)
			}
			payloads := make([][]byte, n)
			for u := 0; u < n; u++ {
				cl := proto.NewClient(uint64(u) + 3)
				if err := stream.Enroll(u, registrationFor(t, cl)); err != nil {
					t.Fatal(err)
				}
				payloads[u] = cl.Report(u % k).AppendBinary(nil)
			}
			// Warm-up round: first-sight work (the LOLOHA per-user hash
			// table) is enrollment-time cost, not steady state.
			for u := 0; u < n; u++ {
				if err := stream.Ingest(u, payloads[u]); err != nil {
					t.Fatal(err)
				}
			}
			stream.CloseRound()
			u := 0
			avg := testing.AllocsPerRun(runs, func() {
				if err := stream.Ingest(u, payloads[u]); err != nil {
					t.Fatal(err)
				}
				u++
			})
			if avg != 0 {
				t.Errorf("steady-state Ingest allocates %.2f times per report, want 0", avg)
			}
		})
	}
}

// TestIngestBatchScratchReuse: steady-state batches on the tally path
// reuse pooled working memory — zero allocations per batch — and the
// Decoder path's pooled phase buffers hold its per-report cost to the
// decode itself (the materialized Report), not batch bookkeeping.
func TestIngestBatchScratchReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; counts are only meaningful without -race")
	}
	const k, batchSize, runs = 24, 64, 20
	proto := tallyProtocols(t, k)["LOLOHA"]
	mkBatches := func(s *loloha.Stream) ([][]int, [][][]byte) {
		t.Helper()
		nBatches := runs + 2
		ids := make([][]int, nBatches)
		payloads := make([][][]byte, nBatches)
		u := 0
		for b := range ids {
			ids[b] = make([]int, batchSize)
			payloads[b] = make([][]byte, batchSize)
			for i := 0; i < batchSize; i++ {
				cl := proto.NewClient(uint64(u)*31 + 5)
				if err := s.Enroll(u, registrationFor(t, cl)); err != nil {
					t.Fatal(err)
				}
				ids[b][i] = u
				payloads[b][i] = cl.Report(u % k).AppendBinary(nil)
				u++
			}
		}
		return ids, payloads
	}

	t.Run("tally", func(t *testing.T) {
		stream, err := loloha.NewStream(proto, loloha.WithShards(4))
		if err != nil {
			t.Fatal(err)
		}
		ids, payloads := mkBatches(stream)
		// Warm-up: populate the scratch pool and the per-user hash tables.
		for b := range ids {
			if err := stream.IngestBatch(ids[b], payloads[b]); err != nil {
				t.Fatal(err)
			}
		}
		stream.CloseRound()
		b := 0
		avg := testing.AllocsPerRun(runs, func() {
			if err := stream.IngestBatch(ids[b], payloads[b]); err != nil {
				t.Fatal(err)
			}
			b++
		})
		if avg != 0 {
			t.Errorf("steady-state IngestBatch allocates %.2f times per batch, want 0", avg)
		}
	})

	t.Run("decoder", func(t *testing.T) {
		stream, err := loloha.NewStream(proto, loloha.WithShards(4),
			loloha.WithDecoder(decoderOf(t, proto)))
		if err != nil {
			t.Fatal(err)
		}
		ids, payloads := mkBatches(stream)
		for b := range ids {
			if err := stream.IngestBatch(ids[b], payloads[b]); err != nil {
				t.Fatal(err)
			}
		}
		stream.CloseRound()
		b := 0
		avg := testing.AllocsPerRun(runs, func() {
			if err := stream.IngestBatch(ids[b], payloads[b]); err != nil {
				t.Fatal(err)
			}
			b++
		})
		// One boxed Report per payload is the decode cost itself; the
		// pooled scratch must not add batch-proportional allocations on
		// top of it.
		if perReport := avg / batchSize; perReport > 1.5 {
			t.Errorf("decoder-path IngestBatch allocates %.2f times per report, want <= 1.5 (scratch not reused?)", perReport)
		}
	})
}
