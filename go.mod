module github.com/loloha-ldp/loloha

go 1.24
