// Tests for the Stream collection service: parity across every ingestion
// path and shard count, the options surface, round subscriptions, batch
// ingest, and the open (WireProtocol / registry) decoder resolution that
// replaced the closed ForProtocol type-switch.
package loloha_test

import (
	"fmt"
	"sync"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

// registrationFor extracts a client's enrollment metadata the way a
// deployment would: LOLOHA clients expose their hash seed, dBitFlipPM
// clients their sampled buckets, UE/GRR chains need nothing.
func registrationFor(t *testing.T, cl loloha.Client) loloha.Registration {
	t.Helper()
	switch c := cl.(type) {
	case interface{ HashSeed() uint64 }:
		return loloha.Registration{HashSeed: c.HashSeed()}
	case interface{ Sampled() []int }:
		return loloha.Registration{Sampled: c.Sampled()}
	default:
		return loloha.Registration{}
	}
}

// TestStreamParityAllPathsAllFamilies is the acceptance gate of the API
// redesign: for every protocol family, estimates from the new Stream —
// any shard count, batch or per-report ingest — are bit-identical to the
// legacy Collection path and to direct in-memory aggregation at the same
// seed.
func TestStreamParityAllPathsAllFamilies(t *testing.T) {
	const k, n, rounds = 24, 600, 3
	protos := map[string]func() (loloha.Protocol, error){
		"LOLOHA":     func() (loloha.Protocol, error) { return loloha.NewBiLOLOHA(k, 2, 1) },
		"chained-UE": func() (loloha.Protocol, error) { return loloha.NewRAPPOR(k, 2, 1) },
		"L-GRR":      func() (loloha.Protocol, error) { return loloha.NewLGRR(k, 2, 1) },
		"dBitFlipPM": func() (loloha.Protocol, error) { return loloha.NewDBitFlipPM(k, 8, 3, 2) },
	}
	for name, mk := range protos {
		t.Run(name, func(t *testing.T) {
			proto, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := loloha.NewShardedCollection(proto, 4)
			if err != nil {
				t.Fatal(err)
			}
			streams := map[string]*loloha.Stream{}
			for _, shards := range []int{1, 8} {
				for _, batch := range []bool{false, true} {
					s, err := loloha.NewStream(proto, loloha.WithShards(shards))
					if err != nil {
						t.Fatal(err)
					}
					streams[fmt.Sprintf("shards=%d/batch=%v", shards, batch)] = s
				}
			}
			direct := proto.NewAggregator()

			clients := make([]loloha.Client, n)
			for u := range clients {
				clients[u] = proto.NewClient(uint64(u)*2654435761 + 7)
				reg := registrationFor(t, clients[u])
				if err := legacy.Enroll(u, reg); err != nil {
					t.Fatal(err)
				}
				for _, s := range streams {
					if err := s.Enroll(u, reg); err != nil {
						t.Fatal(err)
					}
				}
			}
			for round := 0; round < rounds; round++ {
				userIDs := make([]int, n)
				payloads := make([][]byte, n)
				for u, cl := range clients {
					rep := cl.Report((u + round*5) % k)
					direct.Add(u, rep)
					userIDs[u] = u
					payloads[u] = rep.AppendBinary(nil)
					if err := legacy.Ingest(u, payloads[u]); err != nil {
						t.Fatal(err)
					}
				}
				want := direct.EndRound()
				if got := legacy.CloseRound(); !equalFloats(got, want) {
					t.Fatalf("round %d: legacy Collection diverged from direct aggregation", round)
				}
				for label, s := range streams {
					if label == "shards=1/batch=true" || label == "shards=8/batch=true" {
						if err := s.IngestBatch(userIDs, payloads); err != nil {
							t.Fatalf("%s: %v", label, err)
						}
					} else {
						for u := range userIDs {
							if err := s.Ingest(u, payloads[u]); err != nil {
								t.Fatalf("%s: %v", label, err)
							}
						}
					}
					res := s.CloseRound()
					if res.Round != round || res.Reports != n {
						t.Fatalf("%s round %d: got round=%d reports=%d", label, round, res.Round, res.Reports)
					}
					if !equalFloats(res.Raw, want) {
						t.Fatalf("%s round %d: estimates diverged from direct aggregation", label, round)
					}
					if !equalFloats(res.Estimates, want) {
						t.Fatalf("%s round %d: post-processed estimates differ without WithPostProcess", label, round)
					}
				}
			}
		})
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamCohortMatchesLegacyCohort: the deprecated Cohort shim and a
// Stream built with WithCohort are the same engine; both must match for
// every shard count.
func TestStreamCohortMatchesLegacyCohort(t *testing.T) {
	const k, n, seed = 20, 500, 9
	proto, err := loloha.NewOLOLOHA(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := loloha.NewShardedCohort(proto, n, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithCohort(n, seed), loloha.WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	if stream.CohortSize() != n {
		t.Fatalf("cohort size %d", stream.CohortSize())
	}
	values := make([]int, n)
	for round := 0; round < 3; round++ {
		for u := range values {
			values[u] = (u*3 + round*11) % k
		}
		want, err := legacy.Collect(values)
		if err != nil {
			t.Fatal(err)
		}
		res, err := stream.Collect(values)
		if err != nil {
			t.Fatal(err)
		}
		if !equalFloats(res.Raw, want) {
			t.Fatalf("round %d: Stream cohort diverged from legacy Cohort", round)
		}
		if res.Reports != n {
			t.Fatalf("round %d: reports=%d, want %d", round, res.Reports, n)
		}
	}
	if legacy.MaxPrivacySpent() != stream.MaxPrivacySpent() {
		t.Fatalf("privacy ledgers diverged: %v vs %v", legacy.MaxPrivacySpent(), stream.MaxPrivacySpent())
	}
}

// TestStreamMixesWireAndCohortReports: a wire report ingested before
// Collect lands in the same round as the cohort's reports, and the
// cohort's ID range [0..n) is fenced off from wire enrollment (a shared
// ID would tally one user twice per round).
func TestStreamMixesWireAndCohortReports(t *testing.T) {
	const k, n = 8, 40
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithCohort(n, 3))
	if err != nil {
		t.Fatal(err)
	}
	wire := proto.NewClient(999)
	if err := stream.Enroll(10_000, registrationFor(t, wire)); err != nil {
		t.Fatal(err)
	}
	if err := stream.Ingest(10_000, wire.Report(2).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	res, err := stream.Collect(make([]int, n))
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports != n+1 {
		t.Fatalf("reports=%d, want %d cohort + 1 wire", res.Reports, n+1)
	}
	// Cohort-owned IDs are rejected on every wire entry point.
	if err := stream.Enroll(n-1, registrationFor(t, wire)); err == nil {
		t.Fatal("wire enrollment under a cohort client ID accepted")
	}
	if err := stream.Ingest(n-1, wire.Report(1).AppendBinary(nil)); err == nil {
		t.Fatal("wire report under a cohort client ID accepted")
	}
	if err := stream.IngestBatch([]int{0}, [][]byte{wire.Report(1).AppendBinary(nil)}); err == nil {
		t.Fatal("batched wire report under a cohort client ID accepted")
	}
}

// TestStreamSubscribe: every published round reaches each subscriber in
// order, Close terminates the channels, and a slow subscriber misses
// rounds instead of blocking CloseRound.
func TestStreamSubscribe(t *testing.T) {
	proto, err := loloha.NewBiLOLOHA(6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithRoundCapacity(4))
	if err != nil {
		t.Fatal(err)
	}
	sub := stream.Subscribe()
	for i := 0; i < 3; i++ {
		stream.CloseRound()
	}
	for i := 0; i < 3; i++ {
		res, ok := <-sub
		if !ok || res.Round != i {
			t.Fatalf("subscription round %d: ok=%v res=%+v", i, ok, res)
		}
	}
	// Overflow the buffer: rounds 3..8 publish into capacity 4, so the
	// subscriber sees exactly rounds 3,4,5,6 and misses 7,8.
	for i := 0; i < 6; i++ {
		stream.CloseRound()
	}
	stream.Close()
	var got []int
	for res := range sub {
		got = append(got, res.Round)
	}
	if len(got) != 4 || got[0] != 3 || got[3] != 6 {
		t.Fatalf("lagging subscriber got rounds %v, want [3 4 5 6]", got)
	}
	if res, ok := <-stream.Subscribe(); ok {
		t.Fatalf("subscription after Close delivered %+v", res)
	}
	// History still backfills the missed rounds.
	if res, err := stream.Round(8); err != nil || res.Round != 8 {
		t.Fatalf("Round(8) after Close: %+v, %v", res, err)
	}
}

// TestStreamPostProcessAndHeavyHitters: RoundResult carries raw and
// post-processed estimates plus the tracker's heavy-hitter set.
func TestStreamPostProcessAndHeavyHitters(t *testing.T) {
	const k, n = 12, 4000
	proto, err := loloha.NewBiLOLOHA(k, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto,
		loloha.WithCohort(n, 5),
		loloha.WithPostProcess(loloha.PostSimplex),
		loloha.WithHeavyHitters(loloha.HeavyHitterConfig{Threshold: 0.2, Alpha: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int, n)
	for u := range values {
		values[u] = u % 3 // 1/3 mass each on 0,1,2
	}
	res, err := stream.Collect(values)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, e := range res.Estimates {
		if e < 0 {
			t.Fatalf("simplex-projected estimate %v < 0", e)
		}
		sum += e
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("simplex-projected estimates sum to %v", sum)
	}
	if equalFloats(res.Raw, res.Estimates) {
		t.Fatal("post-processing left estimates identical to raw (LDP noise makes that implausible)")
	}
	if len(res.HeavyHitters) != 3 {
		t.Fatalf("heavy hitters %+v, want the three 1/3-mass values", res.HeavyHitters)
	}
	for _, h := range res.HeavyHitters {
		if h.Value > 2 {
			t.Fatalf("false heavy hitter %+v", h)
		}
	}
}

// TestStreamBatchErrors: a batch with unknown, duplicate and malformed
// entries tallies the good reports and reports every failure.
func TestStreamBatchErrors(t *testing.T) {
	const k = 10
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	good := proto.NewClient(1)
	if err := stream.Enroll(0, registrationFor(t, good)); err != nil {
		t.Fatal(err)
	}
	payload := good.Report(3).AppendBinary(nil)
	err = stream.IngestBatch(
		[]int{0, 99, 0, 0},
		[][]byte{payload, payload, {}, payload},
	)
	if err == nil {
		t.Fatal("batch with unenrolled, malformed and duplicate entries returned nil error")
	}
	res := stream.CloseRound()
	if res.Reports != 1 {
		t.Fatalf("reports=%d, want exactly the one good report", res.Reports)
	}
	if err := stream.IngestBatch([]int{0}, nil); err == nil {
		t.Fatal("mismatched batch lengths accepted")
	}
}

// TestStreamOptionValidation: the constructor rejects bad options.
func TestStreamOptionValidation(t *testing.T) {
	proto, err := loloha.NewBiLOLOHA(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, opts := range map[string][]loloha.StreamOption{
		"negative shards":    {loloha.WithShards(-1)},
		"zero cohort":        {loloha.WithCohort(0, 1)},
		"zero round cap":     {loloha.WithRoundCapacity(0)},
		"bad heavy hitters":  {loloha.WithHeavyHitters(loloha.HeavyHitterConfig{Threshold: 2})},
		"mismatched tracker": {loloha.WithHeavyHitters(loloha.HeavyHitterConfig{K: 99, Threshold: 0.1})},
	} {
		if _, err := loloha.NewStream(proto, opts...); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := loloha.NewStream(nil); err == nil {
		t.Error("nil protocol accepted")
	}
	if _, err := stream_CollectWithoutCohort(proto); err == nil {
		t.Error("Collect without WithCohort accepted")
	}
}

func stream_CollectWithoutCohort(proto loloha.Protocol) (loloha.RoundResult, error) {
	s, err := loloha.NewStream(proto)
	if err != nil {
		return loloha.RoundResult{}, err
	}
	return s.Collect([]int{1})
}

// TestStreamConcurrentEnrollIngestSubscribe hammers the service the way
// the redesign intends it to be used: goroutines enrolling and batch- and
// per-report-ingesting concurrently while a subscriber streams results
// across rounds. Run with -race.
func TestStreamConcurrentEnrollIngestSubscribe(t *testing.T) {
	const k, n, rounds, workers = 16, 240, 4, 6
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithShards(4), loloha.WithRoundCapacity(rounds))
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]loloha.Client, n)
	regs := make([]loloha.Registration, n)
	for u := range clients {
		clients[u] = proto.NewClient(uint64(u) + 1)
		regs[u] = registrationFor(t, clients[u])
	}

	sub := stream.Subscribe()
	var subWG sync.WaitGroup
	subWG.Add(1)
	var received []loloha.RoundResult
	go func() {
		defer subWG.Done()
		for res := range sub {
			received = append(received, res)
		}
	}()

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo, hi := w*n/workers, (w+1)*n/workers
				var ids []int
				var payloads [][]byte
				for u := lo; u < hi; u++ {
					if err := stream.Enroll(u, regs[u]); err != nil {
						t.Error(err)
						return
					}
					payload := clients[u].Report(u % k).AppendBinary(nil)
					if u%2 == 0 {
						if err := stream.Ingest(u, payload); err != nil {
							t.Error(err)
							return
						}
					} else {
						ids = append(ids, u)
						payloads = append(payloads, payload)
					}
				}
				if err := stream.IngestBatch(ids, payloads); err != nil {
					t.Error(err)
				}
			}(w)
		}
		wg.Wait()
		if res := stream.CloseRound(); res.Reports != n {
			t.Fatalf("round %d: reports=%d, want %d", round, res.Reports, n)
		}
	}
	stream.Close()
	subWG.Wait()
	if len(received) != rounds {
		t.Fatalf("subscriber received %d rounds, want %d", len(received), rounds)
	}
	for i, res := range received {
		if res.Round != i {
			t.Fatalf("subscription out of order: got round %d at position %d", res.Round, i)
		}
	}
	if stream.Enrolled() != n {
		t.Fatalf("enrolled %d, want %d", stream.Enrolled(), n)
	}
}

// FuzzStreamIngestBatch: arbitrary batch payloads — truncated, trailing,
// garbage — must either tally or error, never panic, and never corrupt
// the round accounting.
func FuzzStreamIngestBatch(f *testing.F) {
	f.Add([]byte{}, []byte{0x01})
	f.Add([]byte{0x00}, []byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00}, []byte{0x01, 0x02, 0x03, 0x04, 0x05})
	proto, err := loloha.NewRAPPOR(24, 2, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, a, b []byte) {
		stream, err := loloha.NewStream(proto, loloha.WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 2; u++ {
			if err := stream.Enroll(u, loloha.Registration{}); err != nil {
				t.Fatal(err)
			}
		}
		batchErr := stream.IngestBatch([]int{0, 1}, [][]byte{a, b})
		res := stream.CloseRound()
		if len(res.Raw) != 24 {
			t.Fatalf("round published %d estimates, want 24", len(res.Raw))
		}
		// A 24-bit UE payload is exactly 3 bytes; anything else must have
		// been rejected and the accounting must agree with the error.
		want := 0
		if len(a) == 3 {
			want++
		}
		if len(b) == 3 {
			want++
		}
		if res.Reports != want {
			t.Fatalf("tallied %d reports from payload lengths %d,%d (want %d; err=%v)",
				res.Reports, len(a), len(b), want, batchErr)
		}
		if want < 2 && batchErr == nil {
			t.Fatal("malformed payload tallied without error")
		}
	})
}
