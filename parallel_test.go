// Tests for the sharded parallel collection engine: for every protocol,
// sharded collection must be bit-identical to serial collection for a
// fixed seed — parallelism is a pure throughput optimization, never a
// semantics change. Run with -race to also exercise shard isolation.
package loloha_test

import (
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

// parallelProtos builds one instance of every longitudinal protocol family
// in the repository.
func parallelProtos(t *testing.T, k int) map[string]loloha.Protocol {
	t.Helper()
	protos := map[string]loloha.Protocol{}
	for name, mk := range map[string]func() (loloha.Protocol, error){
		"BiLOLOHA":   func() (loloha.Protocol, error) { return loloha.NewBiLOLOHA(k, 2, 1) },
		"OLOLOHA":    func() (loloha.Protocol, error) { return loloha.NewOLOLOHA(k, 2, 1) },
		"RAPPOR":     func() (loloha.Protocol, error) { return loloha.NewRAPPOR(k, 2, 1) },
		"L-OSUE":     func() (loloha.Protocol, error) { return loloha.NewLOSUE(k, 2, 1) },
		"L-OUE":      func() (loloha.Protocol, error) { return loloha.NewLOUE(k, 2, 1) },
		"L-SOUE":     func() (loloha.Protocol, error) { return loloha.NewLSOUE(k, 2, 1) },
		"L-GRR":      func() (loloha.Protocol, error) { return loloha.NewLGRR(k, 2, 1) },
		"dBitFlipPM": func() (loloha.Protocol, error) { return loloha.NewDBitFlipPM(k, k/2, 3, 2) },
	} {
		p, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		protos[name] = p
	}
	return protos
}

func TestShardedCollectMatchesSerial(t *testing.T) {
	const k, n, rounds, seed = 24, 700, 3, 11
	for name, proto := range parallelProtos(t, k) {
		serial, err := loloha.NewShardedCohort(proto, n, seed, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sharded, err := loloha.NewShardedCohort(proto, n, seed, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := serial.Shards(); got != 1 {
			t.Fatalf("%s: serial cohort has %d shards", name, got)
		}
		if got := sharded.Shards(); got != 8 {
			t.Fatalf("%s: sharded cohort has %d shards, want 8", name, got)
		}
		values := make([]int, n)
		for round := 0; round < rounds; round++ {
			for u := range values {
				values[u] = (u*7 + round*13) % k // churn
			}
			want, err := serial.Collect(values)
			if err != nil {
				t.Fatalf("%s: serial round %d: %v", name, round, err)
			}
			got, err := sharded.Collect(values)
			if err != nil {
				t.Fatalf("%s: sharded round %d: %v", name, round, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: estimate lengths differ: %d vs %d", name, len(got), len(want))
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s round %d: est[%d] = %v sharded vs %v serial (must be bit-identical)",
						name, round, v, got[v], want[v])
				}
			}
		}
	}
}

func TestShardedCohortPrivacyMatchesSerial(t *testing.T) {
	// The ledger is client-side state; sharding the collection must not
	// change any user's accounted loss.
	const k, n, seed = 16, 96, 5
	proto, err := loloha.NewBiLOLOHA(k, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	serial, _ := loloha.NewShardedCohort(proto, n, seed, 1)
	sharded, _ := loloha.NewShardedCohort(proto, n, seed, 6)
	values := make([]int, n)
	for round := 0; round < 5; round++ {
		for u := range values {
			values[u] = (u + round*3) % k
		}
		if _, err := serial.Collect(values); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.Collect(values); err != nil {
			t.Fatal(err)
		}
	}
	ss, ps := serial.PrivacySpent(), sharded.PrivacySpent()
	for u := range ss {
		if ss[u] != ps[u] {
			t.Fatalf("user %d: serial spent %v, sharded spent %v", u, ss[u], ps[u])
		}
	}
}

func TestShardedCohortClampsShards(t *testing.T) {
	proto, err := loloha.NewBiLOLOHA(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// More shards than users: clamped, still correct.
	cohort, err := loloha.NewShardedCohort(proto, 3, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := cohort.Shards(); got > 3 {
		t.Errorf("shards = %d for 3 users", got)
	}
	if _, err := cohort.Collect([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	// Default constructor picks up parallelism automatically.
	def, err := loloha.NewCohort(proto, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if def.Shards() < 1 {
		t.Errorf("default cohort shards = %d", def.Shards())
	}
}

func TestShardedCollectionServiceMatchesSerial(t *testing.T) {
	// The wire-level service with striped ingestion publishes the same
	// estimates as a single-stripe service fed the same payloads.
	const k, n = 20, 600
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := loloha.NewShardedCollection(proto, 1)
	if err != nil {
		t.Fatal(err)
	}
	striped, err := loloha.NewShardedCollection(proto, 8)
	if err != nil {
		t.Fatal(err)
	}
	type lolohaClient interface {
		HashSeed() uint64
		Report(v int) loloha.Report
	}
	clients := make([]lolohaClient, n)
	for u := 0; u < n; u++ {
		cl, ok := proto.NewClient(uint64(u) * 2654435761).(lolohaClient)
		if !ok {
			t.Fatal("LOLOHA client does not expose HashSeed")
		}
		clients[u] = cl
		reg := loloha.Registration{HashSeed: cl.HashSeed()}
		if err := serial.Enroll(u, reg); err != nil {
			t.Fatal(err)
		}
		if err := striped.Enroll(u, reg); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 2; round++ {
		for u, cl := range clients {
			payload := cl.Report((u + round) % k).AppendBinary(nil)
			if err := serial.Ingest(u, payload); err != nil {
				t.Fatal(err)
			}
			if err := striped.Ingest(u, payload); err != nil {
				t.Fatal(err)
			}
		}
		want := serial.CloseRound()
		got := striped.CloseRound()
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("round %d est[%d]: striped %v vs serial %v", round, v, got[v], want[v])
			}
		}
	}
	if serial.Enrolled() != n || striped.Enrolled() != n {
		t.Errorf("enrolled: serial %d, striped %d, want %d", serial.Enrolled(), striped.Enrolled(), n)
	}
}
