// Stream lifecycle tests: the slow-subscriber drop policy that the
// networked daemon's SSE hub builds on, and races between enrollment,
// batch ingestion, subscription and Close. The concurrency tests are
// written for -race; they pass without it but prove much less.
package loloha_test

import (
	"sync"
	"sync/atomic"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

// TestStreamSlowSubscriberDropPolicy pins the backpressure contract
// documented on WithRoundCapacity: publication never blocks on a
// subscriber — a subscriber whose buffer is full misses that round (drop,
// not block), drops hit only the lagging subscriber, every delivered
// result carries its Round index so gaps are detectable, Round(t)
// backfills what was missed bit-identically, and DroppedRounds counts
// every skipped delivery.
func TestStreamSlowSubscriberDropPolicy(t *testing.T) {
	const k, capacity, rounds = 8, 2, 6
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithRoundCapacity(capacity))
	if err != nil {
		t.Fatal(err)
	}
	cl := proto.NewClient(1)
	if err := stream.Enroll(0, registrationFor(t, cl)); err != nil {
		t.Fatal(err)
	}

	slow := stream.Subscribe() // never drained while rounds publish
	fast := stream.Subscribe() // drained after every round
	var delivered []loloha.RoundResult
	for round := 0; round < rounds; round++ {
		// Distinct value per round so the published estimates differ and a
		// backfill comparison cannot pass by accident.
		if err := stream.Ingest(0, cl.Report(round%k).AppendBinary(nil)); err != nil {
			t.Fatal(err)
		}
		// CloseRound runs on this goroutine with the slow buffer full from
		// round `capacity` on: if the policy were block-not-drop, this test
		// would deadlock right here.
		stream.CloseRound()
		delivered = append(delivered, <-fast)
	}

	// The fast subscriber saw everything; only the slow one dropped.
	wantDropped := uint64(rounds - capacity)
	if got := stream.DroppedRounds(); got != wantDropped {
		t.Fatalf("DroppedRounds=%d, want %d (slow subscriber only)", got, wantDropped)
	}

	// Draining one slot reopens the buffer: the next round is delivered
	// again, and the gap is visible in the Round indices.
	if res := <-slow; res.Round != 0 {
		t.Fatalf("slow subscriber's first buffered round = %d, want 0", res.Round)
	}
	if err := stream.Ingest(0, cl.Report(3).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	stream.CloseRound()
	delivered = append(delivered, <-fast)
	res := <-slow
	if res.Round != 1 {
		t.Fatalf("slow subscriber's second buffered round = %d, want 1", res.Round)
	}
	prev := res.Round
	res = <-slow
	if res.Round != rounds {
		t.Fatalf("after draining, slow subscriber got round %d, want %d", res.Round, rounds)
	}
	if gap := res.Round - prev - 1; gap != rounds-capacity {
		t.Fatalf("detected gap of %d rounds, want %d", gap, rounds-capacity)
	}

	// Every round the slow subscriber missed backfills from the history,
	// bit-identical to what the fast subscriber received live.
	for miss := capacity; miss < rounds; miss++ {
		got, err := stream.Round(miss)
		if err != nil {
			t.Fatalf("Round(%d): %v", miss, err)
		}
		want := delivered[miss]
		if got.Round != want.Round || got.Reports != want.Reports ||
			!equalFloats(got.Raw, want.Raw) || !equalFloats(got.Estimates, want.Estimates) {
			t.Fatalf("backfilled round %d diverged from the live delivery", miss)
		}
	}
}

// TestStreamSubscribeAfterClose: Close ends the streaming side only —
// later Subscribe calls get already-closed channels, Close is idempotent,
// and ingestion, round closing and the history all remain usable.
func TestStreamSubscribeAfterClose(t *testing.T) {
	proto, err := loloha.NewBiLOLOHA(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto)
	if err != nil {
		t.Fatal(err)
	}
	cl := proto.NewClient(1)
	if err := stream.Enroll(0, registrationFor(t, cl)); err != nil {
		t.Fatal(err)
	}
	stream.Close()
	stream.Close() // idempotent
	if _, ok := <-stream.Subscribe(); ok {
		t.Fatal("Subscribe after Close delivered a value")
	}
	if err := stream.Ingest(0, cl.Report(5).AppendBinary(nil)); err != nil {
		t.Fatalf("ingest after Close: %v", err)
	}
	if res := stream.CloseRound(); res.Reports != 1 {
		t.Fatalf("round closed after Close tallied %d reports, want 1", res.Reports)
	}
	if res, err := stream.Round(0); err != nil || res.Reports != 1 {
		t.Fatalf("history after Close: %+v, %v", res, err)
	}
	if got := stream.DroppedRounds(); got != 0 {
		t.Fatalf("publishing to zero live subscribers counted %d drops", got)
	}
}

// TestStreamCloseWhileBatchInFlight races Close against batches that are
// mid-IngestBatch. Close must neither block on them nor corrupt the
// accounting: every report a batch call accepted is tallied in a
// published round, no matter how the race lands.
func TestStreamCloseWhileBatchInFlight(t *testing.T) {
	const k, users, workers, batches = 16, 64, 4, 30
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	type user struct {
		id      int
		payload []byte
	}
	perWorker := make([][]user, workers)
	for w := 0; w < workers; w++ {
		for i := 0; i < users/workers; i++ {
			id := w*(users/workers) + i
			cl := proto.NewClient(uint64(id) + 1)
			if err := stream.Enroll(id, registrationFor(t, cl)); err != nil {
				t.Fatal(err)
			}
			perWorker[w] = append(perWorker[w], user{id, cl.Report(id % k).AppendBinary(nil)})
		}
	}

	var accepted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(mine []user) {
			defer wg.Done()
			<-start
			ids := make([]int, len(mine))
			payloads := make([][]byte, len(mine))
			for i, u := range mine {
				ids[i] = u.id
				payloads[i] = u.payload
			}
			for b := 0; b < batches; b++ {
				// Same users every batch: within one round the repeats are
				// duplicate-rejected, after a CloseRound they tally again.
				err := stream.IngestBatch(ids, payloads)
				accepted.Add(int64(len(ids)) - int64(countBatchErrors(err)))
			}
		}(perWorker[w])
	}
	// One goroutine churns rounds, one Closes the streaming side mid-flight.
	tallied := make(chan int, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		total := 0
		for i := 0; i < batches; i++ {
			if i == batches/2 {
				stream.Close()
			}
			total += stream.CloseRound().Reports
		}
		tallied <- total
	}()
	close(start)
	wg.Wait()
	total := <-tallied + stream.CloseRound().Reports

	if got := int64(total); got != accepted.Load() {
		t.Fatalf("published rounds tallied %d reports, batch calls accepted %d", got, accepted.Load())
	}
	if accepted.Load() == 0 {
		t.Fatal("no batch report was ever accepted; the race never exercised ingestion")
	}
}

// countBatchErrors counts the per-report rejections inside an IngestBatch
// error (errors.Join of one error per rejected report).
func countBatchErrors(err error) int {
	if err == nil {
		return 0
	}
	if multi, ok := err.(interface{ Unwrap() []error }); ok {
		return len(multi.Unwrap())
	}
	return 1
}

// TestStreamLifecycleRaces points every public entry point at one Stream
// at once — Enroll, Ingest, IngestBatch, CloseRound, Subscribe, Close and
// all the read accessors — and demands the invariants hold when the dust
// settles. The assertions are deliberately loose (exact interleaving is
// nondeterministic); the race detector provides the sharp ones.
func TestStreamLifecycleRaces(t *testing.T) {
	const k, users = 12, 96
	proto, err := loloha.NewBiLOLOHA(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithShards(4), loloha.WithRoundCapacity(2))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	run := func(f func()) {
		wg.Add(1)
		go func() { defer wg.Done(); <-start; f() }()
	}

	// Enrollers + reporters, one goroutine per disjoint user range.
	for w := 0; w < 4; w++ {
		lo, hi := w*users/4, (w+1)*users/4
		run(func() {
			var ids []int
			var payloads [][]byte
			for id := lo; id < hi; id++ {
				cl := proto.NewClient(uint64(id) + 1)
				if err := stream.Enroll(id, registrationFor(t, cl)); err != nil {
					t.Error(err)
					return
				}
				payload := cl.Report(id % k).AppendBinary(nil)
				if id%2 == 0 {
					stream.Ingest(id, payload) // duplicate-vs-round races are data, not errors
				} else {
					ids = append(ids, id)
					payloads = append(payloads, payload)
				}
			}
			stream.IngestBatch(ids, payloads)
		})
	}
	// Subscribers that appear, drain and disappear while rounds publish.
	for i := 0; i < 3; i++ {
		run(func() {
			sub := stream.Subscribe()
			prev := -1
			for res := range sub {
				if res.Round <= prev {
					t.Errorf("subscription went backwards: %d after %d", res.Round, prev)
					return
				}
				prev = res.Round
			}
		})
	}
	// Round churn, read accessors, and the Close that ends streaming.
	run(func() {
		for i := 0; i < 20; i++ {
			stream.CloseRound()
		}
	})
	run(func() {
		for i := 0; i < 200; i++ {
			stream.Rounds()
			stream.Enrolled()
			stream.Pending()
			stream.DroppedRounds()
			if n := stream.Rounds(); n > 0 {
				if _, err := stream.Round(n - 1); err != nil {
					t.Errorf("Round(%d) with %d published: %v", n-1, n, err)
					return
				}
			}
		}
	})
	run(func() { stream.Close() })

	close(start)
	wg.Wait()
	stream.CloseRound() // flush whatever the last interleaving left pending
	if got := stream.Enrolled(); got != users {
		t.Fatalf("enrolled %d users, want %d", got, users)
	}
	if _, ok := <-stream.Subscribe(); ok {
		t.Fatal("Subscribe after the concurrent Close delivered a value")
	}
}
