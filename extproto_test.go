// An out-of-package protocol plugged into Stream: the decoder resolution
// is open (WireProtocol interface + RegisterDecoder registry), so a
// protocol defined entirely outside the library — here a noise-free
// histogram protocol in this external test package — round-trips through
// the wire service end to end. Before the redesign this was impossible:
// internal/server enumerated the repository's protocol types in a closed
// type-switch.
package loloha_test

import (
	"fmt"
	"math"
	"slices"
	"testing"

	loloha "github.com/loloha-ldp/loloha"
)

// histBase is a trivial "protocol": clients report their value verbatim
// (no privacy — it exists to exercise the wire plumbing, not the
// estimators). It deliberately does NOT implement loloha.WireProtocol, so
// decoder resolution for it must go through the registry.
type histBase struct {
	k    int
	name string
}

func (p *histBase) Name() string          { return p.name }
func (p *histBase) K() int                { return p.k }
func (p *histBase) SteadyReportBits() int { return 8 }

func (p *histBase) NewClient(seed uint64) loloha.Client { return &histClient{k: p.k} }
func (p *histBase) NewAggregator() loloha.Aggregator {
	return &histAgg{k: p.k, counts: make([]int64, p.k)}
}

// histProto adds WireDecoder, making the protocol self-describing.
type histProto struct{ histBase }

// WireDecoder implements loloha.WireProtocol.
func (p *histProto) WireDecoder() loloha.Decoder { return histDecoder{k: p.k} }

func newExternalProtocol(k int, selfDecoding bool) loloha.Protocol {
	if selfDecoding {
		return &histProto{histBase{k: k, name: "ext-hist"}}
	}
	return &histBase{k: k, name: "ext-hist-registered"}
}

// Statically assert which variant satisfies the interface.
var (
	_ loloha.WireProtocol = (*histProto)(nil)
	_ loloha.Protocol     = (*histBase)(nil)
)

type histClient struct{ k int }

func (c *histClient) Report(v int) loloha.Report { return histReport{v: v} }
func (c *histClient) Charge(v int)               {}
func (c *histClient) PrivacySpent() float64      { return math.Inf(1) } // no privacy at all

type histReport struct{ v int }

func (r histReport) AppendBinary(dst []byte) []byte { return append(dst, byte(r.v)) }

type histDecoder struct{ k int }

func (d histDecoder) Decode(payload []byte, _ loloha.Registration) (loloha.Report, error) {
	if len(payload) != 1 {
		return nil, fmt.Errorf("ext-hist: payload is %d bytes, want 1", len(payload))
	}
	v := int(payload[0])
	if v >= d.k {
		return nil, fmt.Errorf("ext-hist: value %d outside [0,%d)", v, d.k)
	}
	return histReport{v: v}, nil
}

type histAgg struct {
	k      int
	counts []int64
	n      int
}

func (a *histAgg) Add(userID int, rep loloha.Report) { a.counts[rep.(histReport).v]++; a.n++ }
func (a *histAgg) EstimateDomain() int               { return a.k }
func (a *histAgg) EndRound() []float64 {
	est := make([]float64, a.k)
	if a.n > 0 {
		for v, c := range a.counts {
			est[v] = float64(c) / float64(a.n)
		}
	}
	clear(a.counts)
	a.n = 0
	return est
}

// (histAgg is deliberately NOT mergeable: the stream must degrade to a
// single shard and still work.)

func runExternalProtocol(t *testing.T, proto loloha.Protocol, opts ...loloha.StreamOption) {
	t.Helper()
	const n = 64
	stream, err := loloha.NewStream(proto, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if got := stream.Shards(); got != 1 {
		t.Fatalf("non-mergeable external aggregator got %d shards, want serial fallback", got)
	}
	sub := stream.Subscribe()
	userIDs := make([]int, n)
	payloads := make([][]byte, n)
	for u := 0; u < n; u++ {
		if err := stream.Enroll(u, loloha.Registration{}); err != nil {
			t.Fatal(err)
		}
		userIDs[u] = u
		payloads[u] = proto.NewClient(0).Report(u % 4).AppendBinary(nil)
	}
	if err := stream.IngestBatch(userIDs, payloads); err != nil {
		t.Fatal(err)
	}
	stream.CloseRound()
	res := <-sub
	for v := 0; v < 4; v++ {
		if math.Abs(res.Estimates[v]-0.25) > 1e-12 {
			t.Fatalf("est[%d] = %v, want 0.25 exactly (protocol is noise-free)", v, res.Estimates[v])
		}
	}
	if err := stream.Ingest(0, []byte{0xFF}); err == nil {
		t.Fatal("out-of-domain external payload accepted")
	}
	if err := stream.Ingest(1, []byte{0x01, 0x02}); err == nil {
		t.Fatal("over-length external payload accepted")
	}
}

func TestExternalWireProtocolRoundTrip(t *testing.T) {
	runExternalProtocol(t, newExternalProtocol(10, true))
}

func TestExternalRegisteredDecoderRoundTrip(t *testing.T) {
	proto := newExternalProtocol(10, false)
	// Without a registry entry the protocol is unknown...
	if _, err := loloha.NewStream(proto); err == nil {
		t.Fatal("unregistered external protocol accepted")
	}
	// ...and with one it round-trips like any built-in.
	loloha.RegisterDecoder(proto.Name(), func(p loloha.Protocol) (loloha.Decoder, error) {
		return histDecoder{k: p.K()}, nil
	})
	defer loloha.RegisterDecoder(proto.Name(), nil)
	runExternalProtocol(t, proto)
}

func TestExternalDecoderOptionRoundTrip(t *testing.T) {
	// WithDecoder bypasses resolution entirely.
	proto := newExternalProtocol(10, false)
	runExternalProtocol(t, proto, loloha.WithDecoder(histDecoder{k: 10}))
}

func TestSpecExternalFamilyRegistry(t *testing.T) {
	// One RegisterFamily call makes an out-of-repository protocol
	// constructible from a declarative ProtocolSpec AND resolvable at the
	// wire level — build and decoder resolution share the entry, with no
	// separate RegisterDecoder step.
	const fam = "ext-hist-family"
	loloha.RegisterFamily(fam, loloha.FamilyInfo{
		Doc:      "noise-free histogram (test-only)",
		Required: []loloha.SpecField{loloha.SpecFieldK},
		Build: func(s loloha.ProtocolSpec) (loloha.Protocol, error) {
			return &histBase{k: s.K, name: fam}, nil
		},
		NewDecoder: func(p loloha.Protocol) (loloha.Decoder, error) {
			return histDecoder{k: p.K()}, nil
		},
	})
	defer loloha.RegisterFamily(fam, loloha.FamilyInfo{}) // zero info unregisters

	if reg := loloha.Families(); !slices.Contains(reg, fam) {
		t.Fatalf("registered family %q missing from Families() = %v", fam, reg)
	}
	proto, err := loloha.ProtocolSpec{Family: fam, K: 10}.Build()
	if err != nil {
		t.Fatal(err)
	}
	runExternalProtocol(t, proto)
	// histBase does not implement SpecProtocol; SpecOf reports that
	// honestly instead of inventing a description.
	if _, ok := loloha.SpecOf(proto); ok {
		t.Error("SpecOf invented a spec for a protocol without Spec()")
	}
}
