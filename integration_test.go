// Integration tests asserting the paper's headline claims end-to-end at
// reduced scale: the protocols, datasets, harness, attacks and accounting
// all composed the way cmd/lolohasim composes them. These are "shape"
// tests — who wins, by roughly what factor — exactly the reproduction
// criteria of EXPERIMENTS.md.
package loloha_test

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/analysis"
	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/simulation"
)

// integrationDataset is a Syn-style workload small enough for CI but large
// enough that protocol orderings are stable.
func integrationDataset() *datasets.Dataset {
	return datasets.Syn(datasets.SynConfig{K: 60, N: 4000, Tau: 12, ChangeProb: 0.25, Seed: 17})
}

func runMSEOnce(t *testing.T, ds *datasets.Dataset, epsInf, alpha float64, names ...string) map[string]float64 {
	t.Helper()
	var specs []simulation.Spec
	for _, n := range names {
		s, err := simulation.SpecByName("syn", ds.K, n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	pts, err := simulation.RunMSE(ds, specs, simulation.Config{
		EpsInfs: []float64{epsInf}, Alphas: []float64{alpha},
		Runs: 3, Seed: 99, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]float64{}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatalf("%s: %v", p.Protocol, p.Err)
		}
		out[p.Protocol] = p.Mean
	}
	return out
}

func TestFig3ShapeProtocolOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds := integrationDataset()
	mse := runMSEOnce(t, ds, 2.0, 0.5,
		"RAPPOR", "L-OSUE", "L-GRR", "BiLOLOHA", "OLOLOHA", "1BitFlipPM", "bBitFlipPM")

	// Paper §5.2, Fig. 3: bBitFlipPM best (single sanitization round, all
	// bits); L-GRR and 1BitFlipPM worst; OLOLOHA comparable to L-OSUE.
	for _, proto := range []string{"RAPPOR", "L-OSUE", "BiLOLOHA", "OLOLOHA"} {
		if mse["bBitFlipPM"] >= mse[proto] {
			t.Errorf("bBitFlipPM MSE %v not below %s %v", mse["bBitFlipPM"], proto, mse[proto])
		}
		if mse["L-GRR"] <= mse[proto] {
			t.Errorf("L-GRR MSE %v not above %s %v (k=60 should already hurt)",
				mse["L-GRR"], proto, mse[proto])
		}
		if mse["1BitFlipPM"] <= mse[proto] {
			t.Errorf("1BitFlipPM MSE %v not above %s %v", mse["1BitFlipPM"], proto, mse[proto])
		}
	}
	ratio := mse["OLOLOHA"] / mse["L-OSUE"]
	if ratio > 2.0 || ratio < 0.5 {
		t.Errorf("OLOLOHA/L-OSUE MSE ratio %v, want ~1 (the OLH/OUE connection)", ratio)
	}
}

func TestFig3ShapeMSEMatchesEq5(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// The paper validates Fig. 3 against Fig. 2: measured MSE must match
	// the Eq. (5) approximate variance. Check RAPPOR and BiLOLOHA.
	ds := integrationDataset()
	mse := runMSEOnce(t, ds, 2.0, 0.5, "RAPPOR", "BiLOLOHA")
	vr, err := analysis.VStarRAPPOR(2.0, 1.0, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	vb, err := analysis.VStarBiLOLOHA(2.0, 1.0, ds.N())
	if err != nil {
		t.Fatal(err)
	}
	if r := mse["RAPPOR"] / vr; r < 0.7 || r > 1.4 {
		t.Errorf("RAPPOR measured/theory = %v (measured %v, V* %v)", r, mse["RAPPOR"], vr)
	}
	if r := mse["BiLOLOHA"] / vb; r < 0.7 || r > 1.4 {
		t.Errorf("BiLOLOHA measured/theory = %v (measured %v, V* %v)", r, mse["BiLOLOHA"], vb)
	}
}

func TestFig4ShapeBudgetSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Long collection so ledger caps bind: LOLOHA variants stay capped,
	// k-linear protocols keep paying per distinct value.
	ds := datasets.Syn(datasets.SynConfig{K: 60, N: 800, Tau: 200, ChangeProb: 0.25, Seed: 23})
	var specs []simulation.Spec
	for _, n := range []string{"RAPPOR", "L-OSUE", "L-GRR", "BiLOLOHA", "OLOLOHA", "1BitFlipPM", "bBitFlipPM"} {
		s, err := simulation.SpecByName("syn", ds.K, n)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	const epsInf = 1.0
	pts, err := simulation.RunPrivacyLoss(ds, specs, simulation.Config{
		EpsInfs: []float64{epsInf}, Alphas: []float64{0.5},
		Runs: 1, Seed: 7, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	eps := map[string]float64{}
	for _, p := range pts {
		eps[p.Protocol] = p.Mean
	}
	// Caps.
	if eps["BiLOLOHA"] > 2*epsInf+1e-9 {
		t.Errorf("BiLOLOHA ε̌ %v exceeds 2ε∞", eps["BiLOLOHA"])
	}
	if eps["1BitFlipPM"] > 2*epsInf+1e-9 {
		t.Errorf("1BitFlipPM ε̌ %v exceeds 2ε∞", eps["1BitFlipPM"])
	}
	// k-linear protocols all agree (they track distinct raw values) and
	// dwarf the LOLOHA variants.
	if math.Abs(eps["RAPPOR"]-eps["L-OSUE"]) > 1e-9 || math.Abs(eps["RAPPOR"]-eps["L-GRR"]) > 1e-9 {
		t.Errorf("k-linear ledgers disagree: RAPPOR %v L-OSUE %v L-GRR %v",
			eps["RAPPOR"], eps["L-OSUE"], eps["L-GRR"])
	}
	if eps["RAPPOR"] < 10*eps["BiLOLOHA"] {
		t.Errorf("RAPPOR ε̌ %v not ≫ BiLOLOHA %v", eps["RAPPOR"], eps["BiLOLOHA"])
	}
	if eps["OLOLOHA"] >= eps["RAPPOR"] {
		t.Errorf("OLOLOHA ε̌ %v not below RAPPOR %v", eps["OLOLOHA"], eps["RAPPOR"])
	}
	// bBitFlipPM with b = k tracks the k-linear protocols (within the cap
	// structure: it charges per distinct bucket = distinct value).
	if math.Abs(eps["bBitFlipPM"]-eps["RAPPOR"]) > 1e-9 {
		t.Errorf("bBitFlipPM ε̌ %v != RAPPOR %v on b=k", eps["bBitFlipPM"], eps["RAPPOR"])
	}
}

func TestTable2ShapeDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds := datasets.Syn(datasets.SynConfig{K: 60, N: 400, Tau: 60, ChangeProb: 0.25, Seed: 29})
	pts, err := simulation.RunDetection(ds, 60, []int{1, 60}, simulation.Config{
		EpsInfs: []float64{1.0, 5.0}, Alphas: []float64{0.5},
		Runs: 1, Seed: 31, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]map[float64]float64{}
	for _, p := range pts {
		if rates[p.Protocol] == nil {
			rates[p.Protocol] = map[float64]float64{}
		}
		rates[p.Protocol][p.EpsInf] = p.Mean
	}
	for _, e := range []float64{1.0, 5.0} {
		if r := rates["d=1"][e]; r > 0.02 {
			t.Errorf("d=1 eps=%v: fully-detected %v, want ~0", e, r)
		}
		if r := rates["d=60"][e]; r < 0.98 {
			t.Errorf("d=b eps=%v: fully-detected %v, want ~1", e, r)
		}
	}
}

func TestAllDatasetsReplayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Miniature versions of all four workload families run through a full
	// protocol round trip without error and with sane estimates.
	mini := []*datasets.Dataset{
		datasets.Syn(datasets.SynConfig{K: 30, N: 1500, Tau: 4, Seed: 3}),
		datasets.Adult(datasets.AdultConfig{N: 1500, Tau: 4, Seed: 3}),
	}
	if folk, err := datasets.Folk(datasets.FolkConfig{Name: "mini", K: 120, N: 1500, Tau: 4, Seed: 3}); err == nil {
		mini = append(mini, folk)
	} else {
		t.Fatal(err)
	}
	for _, ds := range mini {
		spec, err := simulation.SpecByName("syn", ds.K, "OLOLOHA")
		if err != nil {
			t.Fatal(err)
		}
		proto, err := spec.Build(ds.K, 2.0, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		est := simulation.Replay(ds, proto, 5)
		for round := range est {
			truth := ds.TrueFrequencies(round)
			worst := 0.0
			for v := range truth {
				if d := math.Abs(est[round][v] - truth[v]); d > worst {
					worst = d
				}
			}
			if worst > 0.25 {
				t.Errorf("%s round %d: worst error %v", ds.Name, round, worst)
			}
		}
	}
}
