package loloha_test

import (
	"fmt"

	loloha "github.com/loloha-ldp/loloha"
)

// The simplest possible deployment: one cohort, one round.
func ExampleNewCohort() {
	proto, err := loloha.NewBiLOLOHA(4, 1.0, 0.5)
	if err != nil {
		panic(err)
	}
	cohort, err := loloha.NewCohort(proto, 3, 42)
	if err != nil {
		panic(err)
	}
	est, err := cohort.Collect([]int{0, 0, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(est), "estimates; worst ε̌ =", cohort.MaxPrivacySpent())
	// Output: 4 estimates; worst ε̌ = 1
}

// Choosing the reduced domain size: the closed-form optimum of Eq. (6).
func ExampleOptimalG() {
	fmt.Println(loloha.OptimalG(1.0, 0.5)) // high privacy: binary
	fmt.Println(loloha.OptimalG(5.0, 3.0)) // low privacy: larger g
	// Output:
	// 2
	// 17
}

// The longitudinal budget guarantee of Theorem 3.5.
func ExampleNewBiLOLOHA() {
	proto, err := loloha.NewBiLOLOHA(1000, 1.5, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("k=%d compresses to g=%d; lifetime budget %.1f vs RAPPOR's %.1f\n",
		proto.K(), proto.G(), proto.LongitudinalBudget(), 1000*1.5)
	// Output: k=1000 compresses to g=2; lifetime budget 3.0 vs RAPPOR's 1500.0
}

// Wire-level ingestion: enroll once, then stream payload bytes.
func ExampleNewCollection() {
	proto, err := loloha.NewBiLOLOHA(8, 1.0, 0.5)
	if err != nil {
		panic(err)
	}
	col, err := loloha.NewCollection(proto)
	if err != nil {
		panic(err)
	}
	// One device:
	client := proto.NewClient(7)
	rep := client.Report(3)
	// Registration metadata travels once; payloads every round.
	type seeded interface{ HashSeed() uint64 }
	if err := col.Enroll(0, loloha.Registration{HashSeed: client.(seeded).HashSeed()}); err != nil {
		panic(err)
	}
	if err := col.Ingest(0, rep.AppendBinary(nil)); err != nil {
		panic(err)
	}
	est := col.CloseRound()
	fmt.Println(len(est), "estimates from", col.Enrolled(), "user")
	// Output: 8 estimates from 1 user
}
