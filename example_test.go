package loloha_test

import (
	"fmt"

	loloha "github.com/loloha-ldp/loloha"
)

// Declarative construction: a serializable ProtocolSpec replaces the
// positional New* constructors, and a built protocol describes itself back
// via SpecOf — the spec round-trips through JSON, config files and RPCs.
func ExampleProtocolSpec() {
	spec, err := loloha.ParseSpec([]byte(`{"family":"BiLOLOHA","k":4,"eps_inf":1.0,"eps1":0.5}`))
	if err != nil {
		panic(err)
	}
	proto, err := spec.Build()
	if err != nil {
		panic(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithCohort(3, 42))
	if err != nil {
		panic(err)
	}
	res, err := stream.Collect([]int{0, 0, 1})
	if err != nil {
		panic(err)
	}
	back, _ := loloha.SpecOf(proto)
	fmt.Printf("%s over k=%d: %d estimates from %d reports\n",
		back.Family, back.K, len(res.Raw), res.Reports)
	// Output: BiLOLOHA over k=4: 4 estimates from 3 reports
}

// The simplest possible deployment: one stream, an attached simulation
// cohort, one round.
func ExampleNewStream() {
	proto, err := loloha.NewBiLOLOHA(4, 1.0, 0.5)
	if err != nil {
		panic(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithCohort(3, 42))
	if err != nil {
		panic(err)
	}
	res, err := stream.Collect([]int{0, 0, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Raw), "estimates from", res.Reports, "reports; worst ε̌ =", stream.MaxPrivacySpent())
	// Output: 4 estimates from 3 reports; worst ε̌ = 1
}

// Streaming consumption: every closed round is published to subscribers
// as a RoundResult.
func ExampleStream_Subscribe() {
	proto, err := loloha.NewBiLOLOHA(4, 1.0, 0.5)
	if err != nil {
		panic(err)
	}
	stream, err := loloha.NewStream(proto, loloha.WithCohort(3, 42))
	if err != nil {
		panic(err)
	}
	results := stream.Subscribe()
	for round := 0; round < 2; round++ {
		if _, err := stream.Collect([]int{0, 1, 2}); err != nil {
			panic(err)
		}
	}
	stream.Close()
	for res := range results {
		fmt.Printf("round %d: %d reports\n", res.Round, res.Reports)
	}
	// Output:
	// round 0: 3 reports
	// round 1: 3 reports
}

// Choosing the reduced domain size: the closed-form optimum of Eq. (6).
func ExampleOptimalG() {
	fmt.Println(loloha.OptimalG(1.0, 0.5)) // high privacy: binary
	fmt.Println(loloha.OptimalG(5.0, 3.0)) // low privacy: larger g
	// Output:
	// 2
	// 17
}

// The longitudinal budget guarantee of Theorem 3.5.
func ExampleNewBiLOLOHA() {
	proto, err := loloha.NewBiLOLOHA(1000, 1.5, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("k=%d compresses to g=%d; lifetime budget %.1f vs RAPPOR's %.1f\n",
		proto.K(), proto.G(), proto.LongitudinalBudget(), 1000*1.5)
	// Output: k=1000 compresses to g=2; lifetime budget 3.0 vs RAPPOR's 1500.0
}

// Wire-level ingestion: enroll once, then stream payload bytes — one
// report at a time or a whole batch per call.
func ExampleStream_IngestBatch() {
	proto, err := loloha.NewBiLOLOHA(8, 1.0, 0.5)
	if err != nil {
		panic(err)
	}
	stream, err := loloha.NewStream(proto)
	if err != nil {
		panic(err)
	}
	// Two devices:
	type seeded interface{ HashSeed() uint64 }
	var userIDs []int
	var payloads [][]byte
	for u := 0; u < 2; u++ {
		client := proto.NewClient(uint64(7 + u))
		// Registration metadata travels once; payloads every round.
		if err := stream.Enroll(u, loloha.Registration{HashSeed: client.(seeded).HashSeed()}); err != nil {
			panic(err)
		}
		userIDs = append(userIDs, u)
		payloads = append(payloads, client.Report(3).AppendBinary(nil))
	}
	if err := stream.IngestBatch(userIDs, payloads); err != nil {
		panic(err)
	}
	res := stream.CloseRound()
	fmt.Println(len(res.Raw), "estimates from", stream.Enrolled(), "users")
	// Output: 8 estimates from 2 users
}
