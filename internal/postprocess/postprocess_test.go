package postprocess

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNoneIsIdentity(t *testing.T) {
	in := []float64{-0.5, 0.3, 1.7}
	out := Apply(None, append([]float64(nil), in...))
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("None changed the input at %d", i)
		}
	}
}

func TestClip(t *testing.T) {
	out := Apply(Clip, []float64{-0.5, 0.3, 1.7, 0})
	want := []float64{0, 0.3, 1, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("clip[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestNormalizeSumsToOne(t *testing.T) {
	out := Apply(Normalize, []float64{-0.2, 0.3, 0.9})
	sum := 0.0
	for _, v := range out {
		if v < 0 {
			t.Errorf("negative after normalize: %v", v)
		}
		sum += v
	}
	if !almostEqual(sum, 1) {
		t.Errorf("normalized sum %v", sum)
	}
	if out[0] != 0 {
		t.Errorf("negative entry should clip to 0, got %v", out[0])
	}
	// 0.3/1.2 and 0.9/1.2.
	if !almostEqual(out[1], 0.25) || !almostEqual(out[2], 0.75) {
		t.Errorf("normalize proportions wrong: %v", out)
	}
}

func TestNormalizeAllNegative(t *testing.T) {
	out := Apply(Normalize, []float64{-1, -2})
	for _, v := range out {
		if v != 0 {
			t.Errorf("all-negative input should yield zeros, got %v", out)
		}
	}
}

func TestSimplexProjectBasic(t *testing.T) {
	// Already on the simplex: unchanged.
	out := Apply(SimplexProject, []float64{0.2, 0.3, 0.5})
	want := []float64{0.2, 0.3, 0.5}
	for i := range want {
		if !almostEqual(out[i], want[i]) {
			t.Errorf("projection moved a feasible point: %v", out)
		}
	}
}

func TestSimplexProjectProperties(t *testing.T) {
	r := randsrc.NewSeeded(3)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(30)
		in := make([]float64, n)
		for i := range in {
			in[i] = (r.Float64() - 0.4) * 3 // mix of negatives and positives
		}
		out := Apply(SimplexProject, append([]float64(nil), in...))
		sum := 0.0
		for _, v := range out {
			if v < -1e-12 {
				t.Fatalf("negative coordinate %v", v)
			}
			sum += v
		}
		if !almostEqual(sum, 1) {
			t.Fatalf("projected sum %v", sum)
		}
	}
}

func TestSimplexProjectIsClosestPoint(t *testing.T) {
	// The projection must beat (or match) any other feasible candidate in
	// L2 distance; compare against a few heuristic candidates.
	in := []float64{0.9, -0.3, 0.5, 0.1}
	proj := Apply(SimplexProject, append([]float64(nil), in...))
	dProj := l2(in, proj)
	candidates := [][]float64{
		{0.25, 0.25, 0.25, 0.25},
		{1, 0, 0, 0},
		Apply(Normalize, append([]float64(nil), in...)),
	}
	for _, c := range candidates {
		if d := l2(in, c); d < dProj-1e-9 {
			t.Errorf("candidate %v closer (%v) than projection %v (%v)", c, d, proj, dProj)
		}
	}
}

func TestSimplexProjectQuickSumInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		in := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			in = append(in, math.Mod(v, 5))
		}
		if len(in) == 0 {
			return true
		}
		out := Apply(SimplexProject, in)
		sum := 0.0
		for _, v := range out {
			if v < -1e-9 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPostProcessingReducesMSEOnSparseEstimates(t *testing.T) {
	// A realistic scenario: true histogram concentrated on few values,
	// noisy unbiased estimates everywhere. All three transforms should
	// reduce MSE relative to None.
	r := randsrc.NewSeeded(7)
	const k = 200
	truth := make([]float64, k)
	truth[0], truth[1], truth[2] = 0.5, 0.3, 0.2
	mseBy := map[Method]float64{}
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		noisy := make([]float64, k)
		for v := range noisy {
			noisy[v] = truth[v] + (r.Float64()-0.5)*0.1
		}
		for _, m := range Methods() {
			est := Apply(m, append([]float64(nil), noisy...))
			s := 0.0
			for v := range est {
				d := est[v] - truth[v]
				s += d * d
			}
			mseBy[m] += s / k / trials
		}
	}
	// Clip and the simplex projection can only move estimates toward the
	// feasible set and must help; Normalize's rescale is workload-dependent
	// (it can distort heavy bins under dense noise), so it is only logged.
	for _, m := range []Method{Clip, SimplexProject} {
		if mseBy[m] >= mseBy[None] {
			t.Errorf("%v MSE %v not below raw %v", m, mseBy[m], mseBy[None])
		}
	}
	t.Logf("MSE by method: none=%.3e clip=%.3e normalize=%.3e simplex=%.3e",
		mseBy[None], mseBy[Clip], mseBy[Normalize], mseBy[SimplexProject])
	// The simplex projection is the L2-optimal feasible point; it should
	// be the best of the three here.
	if mseBy[SimplexProject] > mseBy[Clip]+1e-12 {
		t.Errorf("simplex %v worse than clip %v", mseBy[SimplexProject], mseBy[Clip])
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		None: "none", Clip: "clip", Normalize: "normalize", SimplexProject: "simplex",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if Method(99).String() != "Method(99)" {
		t.Errorf("unknown method string %q", Method(99).String())
	}
}

func TestApplyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method did not panic")
		}
	}()
	Apply(Method(99), []float64{1})
}

func l2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
