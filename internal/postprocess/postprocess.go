// Package postprocess implements server-side estimate post-processing for
// LDP frequency oracles. The paper reports raw unbiased estimates (Eq. (1)
// and Eq. (3)); it is well known that enforcing the simplex constraints —
// estimates are frequencies, so they are non-negative and sum to one —
// can only help squared error. By the post-processing property of LDP
// (Proposition 2.2) none of these transforms costs any privacy.
//
// Three standard methods are provided (this is an extension relative to
// the paper; the benches quantify its effect):
//
//   - Clip: clamp to [0, 1] coordinate-wise (biased, cheap).
//   - Normalize: clip then rescale to sum one (the classic RAPPOR
//     post-step).
//   - SimplexProject: Euclidean projection onto the probability simplex
//     (Duchi et al.'s algorithm) — the L2-optimal feasible point.
package postprocess

import (
	"fmt"
	"sort"
)

// Method selects a post-processing transform.
type Method int

const (
	// None returns estimates unchanged (the paper's setting).
	None Method = iota
	// Clip clamps each estimate to [0, 1].
	Clip
	// Normalize clips to non-negative and rescales to sum 1.
	Normalize
	// SimplexProject computes the Euclidean projection onto the simplex.
	SimplexProject
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case None:
		return "none"
	case Clip:
		return "clip"
	case Normalize:
		return "normalize"
	case SimplexProject:
		return "simplex"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Apply transforms the estimates in place and returns them. The input is a
// raw (possibly negative, possibly not normalized) frequency-estimate
// vector.
func Apply(m Method, est []float64) []float64 {
	switch m {
	case None:
		return est
	case Clip:
		for i, v := range est {
			if v < 0 {
				est[i] = 0
			} else if v > 1 {
				est[i] = 1
			}
		}
		return est
	case Normalize:
		sum := 0.0
		for i, v := range est {
			if v < 0 {
				est[i] = 0
			} else {
				sum += v
			}
		}
		if sum > 0 {
			for i := range est {
				est[i] /= sum
			}
		}
		return est
	case SimplexProject:
		return projectSimplex(est)
	default:
		panic(fmt.Sprintf("postprocess: unknown method %d", int(m)))
	}
}

// projectSimplex computes the Euclidean projection of est onto
// {x : x_i >= 0, Σx_i = 1} in place (Duchi, Shalev-Shwartz, Singer,
// Chandra 2008: sort, find the threshold, shift and clip).
func projectSimplex(est []float64) []float64 {
	n := len(est)
	if n == 0 {
		return est
	}
	sorted := make([]float64, n)
	copy(sorted, est)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))

	cum := 0.0
	rho, theta := -1, 0.0
	for i, v := range sorted {
		cum += v
		t := (cum - 1) / float64(i+1)
		if v-t > 0 {
			rho, theta = i, t
		}
	}
	if rho < 0 {
		// All mass below threshold: degenerate input; put uniform mass.
		for i := range est {
			est[i] = 1 / float64(n)
		}
		return est
	}
	for i, v := range est {
		if v-theta > 0 {
			est[i] = v - theta
		} else {
			est[i] = 0
		}
	}
	return est
}

// Methods lists all transforms in presentation order.
func Methods() []Method { return []Method{None, Clip, Normalize, SimplexProject} }
