package simulation

import (
	"testing"

	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/postprocess"
)

func TestRunMSEWithPostProcessing(t *testing.T) {
	// On a sparse workload, simplex projection should not hurt and
	// normally helps; at minimum the pipeline must run and score.
	ds := datasets.Syn(datasets.SynConfig{K: 40, N: 2500, Tau: 4, ChangeProb: 0.2, Seed: 13})
	spec := mustSpecK(t, 40, "BiLOLOHA")
	base := Config{
		EpsInfs: []float64{1.0}, Alphas: []float64{0.5}, Runs: 2, Seed: 77, Workers: 2,
	}
	raw, err := RunMSE(ds, []Spec{spec}, base)
	if err != nil {
		t.Fatal(err)
	}
	withPP := base
	withPP.PostProcess = postprocess.SimplexProject
	proj, err := RunMSE(ds, []Spec{spec}, withPP)
	if err != nil {
		t.Fatal(err)
	}
	if !(proj[0].Mean > 0) {
		t.Fatalf("post-processed MSE %v", proj[0].Mean)
	}
	if proj[0].Mean > raw[0].Mean {
		t.Errorf("simplex projection increased MSE: %v -> %v", raw[0].Mean, proj[0].Mean)
	}
	t.Logf("raw %.3e vs simplex %.3e", raw[0].Mean, proj[0].Mean)
}
