package simulation

// Columnar round files: a dataset materialized as one encoded columnar
// batch per collection round, the decode-free interchange format between
// lolohadata (which generates workloads) and a collection service (which
// ingests them). Round 0 carries the cohort's registration columns, so a
// fresh stream enrolls and tallies from the files alone; later rounds are
// the steady-state form. The decoder's payload column aliases the file
// bytes, so a memory-mapped file replays without copying.

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
	"github.com/loloha-ldp/loloha/internal/server"
)

// ExportColumnar writes one columnar batch file per round of the dataset
// into dir (round-0000.lcb, round-0001.lcb, ...) and returns the paths in
// round order. Clients are seeded randsrc.Derive(seed, u) — the same
// cohort Replay builds — so ReplayColumnar over the files reproduces
// Replay's estimates bit-identically.
func ExportColumnar(ds *datasets.Dataset, proto longitudinal.Protocol, seed uint64, dir string) ([]string, error) {
	stride, ok := longitudinal.ColumnarStrideOf(proto)
	if !ok {
		return nil, fmt.Errorf("simulation: %s has no columnar tallier", proto.Name())
	}
	specHash := longitudinal.SpecHashOf(proto)
	n, tau := ds.N(), ds.Tau()
	clients := make([]longitudinal.AppendReporter, n)
	regs := make([]longitudinal.Registration, n)
	for u := range clients {
		cl, ok := proto.NewClient(randsrc.Derive(seed, uint64(u))).(longitudinal.AppendReporter)
		if !ok {
			return nil, fmt.Errorf("simulation: %s client lacks the append fast path", proto.Name())
		}
		clients[u] = cl
		regs[u] = cl.WireRegistration()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	paths := make([]string, tau)
	var payload []byte
	for t := 0; t < tau; t++ {
		// A fresh writer per round: only round 0 carries the registration
		// columns, and WithRegistrations is a construction-time choice.
		w, err := longitudinal.NewColumnarWriter(specHash, stride)
		if err != nil {
			return nil, err
		}
		w.SetRound(uint32(t))
		if t == 0 {
			if err := w.WithRegistrations(len(regs[0].Sampled)); err != nil {
				return nil, err
			}
		}
		round := ds.Round(t)
		for u, cl := range clients {
			payload = cl.AppendReport(payload[:0], round[u])
			if t == 0 {
				err = w.AddWithRegistration(u, payload, regs[u])
			} else {
				err = w.Add(u, payload)
			}
			if err != nil {
				return nil, fmt.Errorf("simulation: round %d user %d: %w", t, u, err)
			}
		}
		paths[t] = filepath.Join(dir, fmt.Sprintf("round-%04d.lcb", t))
		if err := os.WriteFile(paths[t], w.AppendTo(nil), 0o644); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// ReplayColumnar feeds columnar round files (as written by ExportColumnar,
// in round order) through a fresh sharded Stream and returns each round's
// raw estimates. Enrollment comes from the first file's registration
// columns; estimates are bit-identical to Replay at any shard count.
func ReplayColumnar(proto longitudinal.Protocol, shards int, files []string) ([][]float64, error) {
	stream, err := server.NewStream(proto, server.WithShards(shards))
	if err != nil {
		return nil, err
	}
	defer stream.Close()

	out := make([][]float64, 0, len(files))
	var batch longitudinal.ColumnarBatch
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if err := longitudinal.DecodeColumnar(data, &batch); err != nil {
			return nil, fmt.Errorf("simulation: %s: %w", path, err)
		}
		if err := stream.IngestColumnar(&batch); err != nil {
			return nil, fmt.Errorf("simulation: %s: %w", path, err)
		}
		res := stream.CloseRound()
		out = append(out, res.Raw)
	}
	return out, nil
}
