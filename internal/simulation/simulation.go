// Package simulation is the experiment harness that regenerates the
// paper's empirical results: the MSE_avg of Eq. (7) over τ collections
// (Fig. 3), the averaged longitudinal privacy loss ε̌_avg of Eq. (8)
// (Fig. 4) and the dBitFlipPM change-detection rates (Table 2).
//
// Experiments are grids over (protocol, ε∞, α, run); every grid cell is an
// independent job with a deterministic seed derived from (cell coordinates,
// experiment seed), so results are reproducible regardless of scheduling.
package simulation

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/loloha-ldp/loloha/internal/attack"
	// The blank core import links the LOLOHA families into the protocol
	// family registry; every spec here builds through that registry.
	_ "github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/postprocess"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// Spec names a protocol of the experiment grid. It is declarative: Proto is
// a longitudinal.ProtocolSpec template whose budget fields the grid fills
// per cell and resolves through the protocol family registry — no
// per-family constructor closures. Any family registered with
// longitudinal.RegisterFamily (including external ones) is usable here.
type Spec struct {
	// Name labels the grid rows; defaults matter only for presentation.
	Name string
	// Proto is the declarative template: family plus fixed shape parameters
	// (k, g, b, d). A zero K is filled with the grid's domain size; the
	// budget fields (EpsInf, and Eps1 where the family takes it) are
	// overwritten per grid cell.
	Proto longitudinal.ProtocolSpec
	// BuildFunc, when non-nil, overrides registry-driven construction —
	// the escape hatch for injecting pre-built protocols (ablations).
	BuildFunc func(k int, epsInf, eps1 float64) (longitudinal.Protocol, error)
}

// Build constructs the spec's protocol for domain size k at (ε∞, ε1). With
// a declarative template the budget pair is written into the template (ε1
// only for families that take it, so dBitFlipPM grids ignore α exactly as
// the paper does) and the family registry builds the protocol.
func (s Spec) Build(k int, epsInf, eps1 float64) (longitudinal.Protocol, error) {
	if s.BuildFunc != nil {
		return s.BuildFunc(k, epsInf, eps1)
	}
	ps := s.Proto
	if ps.K == 0 {
		ps.K = k
	} else if k != 0 && ps.K != k {
		return nil, fmt.Errorf("simulation: spec %s pins k=%d but the grid runs at k=%d", s.Name, ps.K, k)
	}
	ps.EpsInf, ps.Eps1 = epsInf, eps1
	// Budget fields the family does not consume stay zero (dBitFlipPM has
	// no ε1; a budget-free external family takes neither). Unknown families
	// keep both so Build surfaces its registry error with the caller's
	// full intent.
	if info, ok := longitudinal.LookupFamily(ps.Family); ok {
		if !info.Uses(longitudinal.FieldEpsInf) {
			ps.EpsInf = 0
		}
		if !info.Uses(longitudinal.FieldEps1) {
			ps.Eps1 = 0
		}
	}
	return ps.Build()
}

// StandardSpecs returns the §5.1 evaluated methods for a dataset with
// domain size k: RAPPOR, L-OSUE, L-GRR, BiLOLOHA, OLOLOHA, 1BitFlipPM and
// bBitFlipPM. Following the paper, the dBitFlipPM bucket count is b = k
// for the small-domain datasets (syn, adult) and b = ⌊k/4⌋ for the
// folktables datasets (db_mt, db_de); domains too small to quarter
// (⌊k/4⌋ < 2) fall back to b = k rather than building an invalid
// bucketizer.
func StandardSpecs(datasetName string, k int) []Spec {
	b := k
	if datasetName == "db_mt" || datasetName == "db_de" {
		b = k / 4
		if b < 2 {
			b = k
		}
	}
	spec := func(name, family string) Spec {
		return Spec{Name: name, Proto: longitudinal.ProtocolSpec{Family: family, K: k}}
	}
	dbit := func(name string, d int) Spec {
		return Spec{Name: name, Proto: longitudinal.ProtocolSpec{Family: "dBitFlipPM", K: k, B: b, D: d}}
	}
	return []Spec{
		spec("RAPPOR", "RAPPOR"),
		spec("L-OSUE", "L-OSUE"),
		spec("L-GRR", "L-GRR"),
		spec("BiLOLOHA", "BiLOLOHA"),
		spec("OLOLOHA", "OLOLOHA"),
		dbit("1BitFlipPM", 1),
		dbit("bBitFlipPM", b),
	}
}

// StandardSpecNames returns the names of the §5.1 evaluated methods, in
// presentation order.
func StandardSpecNames() []string {
	specs := StandardSpecs("syn", 8)
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// SpecByName returns the standard spec with the given name; an unknown name
// errors with the full list of available protocol names.
func SpecByName(datasetName string, k int, name string) (Spec, error) {
	for _, s := range StandardSpecs(datasetName, k) {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("simulation: unknown protocol %q (available: %s)",
		name, strings.Join(StandardSpecNames(), ", "))
}

// Config parameterizes an experiment grid.
type Config struct {
	// EpsInfs is the ε∞ grid (paper: 0.5..5 in steps of 0.5).
	EpsInfs []float64
	// Alphas is the α = ε1/ε∞ grid (paper Fig. 3/4: 0.4, 0.5, 0.6).
	Alphas []float64
	// Runs is the number of repetitions per point (paper: 20).
	Runs int
	// Seed derives all per-cell seeds.
	Seed uint64
	// Workers bounds concurrent cells; 0 means GOMAXPROCS.
	Workers int
	// Shards is the intra-collection parallelism: each round's client
	// reports are sharded over this many goroutines with per-shard
	// aggregator forks (see longitudinal.ShardedCollector). 0 or 1 keeps
	// rounds serial, which is usually right when the grid itself saturates
	// the CPUs; estimates are bit-identical either way. Negative counts
	// are rejected by validate.
	Shards int
	// PostProcess transforms each round's estimates before scoring MSE
	// (extension; the paper's setting is postprocess.None).
	PostProcess postprocess.Method
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) validate() error {
	if len(c.EpsInfs) == 0 || len(c.Alphas) == 0 {
		return fmt.Errorf("simulation: empty eps/alpha grid")
	}
	if c.Runs < 1 {
		return fmt.Errorf("simulation: Runs must be >= 1, got %d", c.Runs)
	}
	if c.Shards < 0 {
		return fmt.Errorf("simulation: Shards must be >= 0, got %d", c.Shards)
	}
	if c.Workers < 0 {
		return fmt.Errorf("simulation: Workers must be >= 0, got %d", c.Workers)
	}
	return nil
}

// Point is one measured grid point.
type Point struct {
	Dataset  string
	Protocol string
	EpsInf   float64
	Alpha    float64
	// Mean and Std summarize the metric over runs (MSE_avg for Fig. 3,
	// ε̌_avg for Fig. 4, fully-detected rate for Table 2).
	Mean, Std float64
	Runs      int
	// Err carries a build failure (e.g. infeasible calibration); such
	// points hold no measurement.
	Err error
}

// ---------------------------------------------------------------------------
// Fig. 3: averaged MSE.

// RunMSE measures MSE_avg (Eq. (7)) for every (spec, ε∞, α) grid point.
// For bucket-domain protocols (dBitFlipPM with b < k) the ground truth is
// folded into buckets before scoring, which is only comparable to k-bin
// results when b == k — the caller decides whether to include them, as the
// paper does.
func RunMSE(ds *datasets.Dataset, specs []Spec, cfg Config) ([]Point, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	truth := make([][]float64, ds.Tau())
	for t := range truth {
		truth[t] = ds.TrueFrequencies(t)
	}
	return runGrid(ds, specs, cfg, func(proto longitudinal.Protocol, seed uint64) float64 {
		return mseRun(ds, truth, proto, seed, cfg.PostProcess, cfg.Shards)
	})
}

// mseRun executes one full τ-round collection and returns MSE_avg.
func mseRun(ds *datasets.Dataset, truth [][]float64, proto longitudinal.Protocol, seed uint64,
	pp postprocess.Method, shards int) float64 {
	n, tau := ds.N(), ds.Tau()
	clients := make([]longitudinal.Client, n)
	for u := range clients {
		clients[u] = proto.NewClient(randsrc.Derive(seed, uint64(u)))
	}
	collector := newCollector(proto, n, shards)

	// Bucket-domain protocols score against folded truth.
	fold := func(f []float64) []float64 { return f }
	if d, ok := proto.(*longitudinal.DBitFlipPM); ok && collector.Aggregator().EstimateDomain() != ds.K {
		z := d.Bucketizer()
		fold = z.FoldFrequencies
	}

	total := 0.0
	for t := 0; t < tau; t++ {
		raw, err := collector.Collect(clients, ds.Round(t))
		if err != nil {
			panic(err) // impossible: clients and rounds share the dataset's n
		}
		est := postprocess.Apply(pp, raw)
		ft := fold(truth[t])
		sum := 0.0
		for v := range est {
			d := est[v] - ft[v]
			sum += d * d
		}
		total += sum / float64(len(est))
	}
	return total / float64(tau)
}

// newCollector builds the per-run collection engine, routed through the
// protocol's allocation-free wire fast path (AppendReport + tally-direct)
// whenever the protocol supports it — every built-in family does. The
// grid's millions of simulated reports then generate and tally without a
// bitset, boxed Report or wire-buffer allocation per report; estimates are
// bit-identical to the Report/Add path.
func newCollector(proto longitudinal.Protocol, n, shards int) *longitudinal.ShardedCollector {
	collector := longitudinal.NewShardedCollector(proto.NewAggregator(), n, shards)
	if tp, ok := proto.(longitudinal.TallyProtocol); ok {
		collector.EnableTallyDirect(tp.WireTallier())
	}
	return collector
}

// ---------------------------------------------------------------------------
// Fig. 4: averaged longitudinal privacy loss.

// RunPrivacyLoss measures ε̌_avg (Eq. (8)): each client replays its value
// sequence through the privacy ledger and the losses are averaged over the
// cohort.
func RunPrivacyLoss(ds *datasets.Dataset, specs []Spec, cfg Config) ([]Point, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return runGrid(ds, specs, cfg, func(proto longitudinal.Protocol, seed uint64) float64 {
		return privacyLossRun(ds, proto, seed)
	})
}

func privacyLossRun(ds *datasets.Dataset, proto longitudinal.Protocol, seed uint64) float64 {
	n, tau := ds.N(), ds.Tau()
	total := 0.0
	for u := 0; u < n; u++ {
		cl := proto.NewClient(randsrc.Derive(seed, uint64(u)))
		for t := 0; t < tau; t++ {
			cl.Charge(ds.Value(u, t))
		}
		total += cl.PrivacySpent()
	}
	return total / float64(n)
}

// ---------------------------------------------------------------------------
// Table 2: dBitFlipPM change detection.

// RunDetection measures the fully-detected-users rate of the Table 2
// adversary for dBitFlipPM with the given d choices, over the ε∞ grid.
// Alphas are irrelevant (dBitFlipPM has no ε1); the Alpha field is 0.
func RunDetection(ds *datasets.Dataset, b int, dChoices []int, cfg Config) ([]Point, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	values := make([][]int, ds.Tau())
	for t := range values {
		values[t] = ds.Round(t)
	}
	var specs []Spec
	for _, d := range dChoices {
		specs = append(specs, Spec{
			Name:  fmt.Sprintf("d=%d", d),
			Proto: longitudinal.ProtocolSpec{Family: "dBitFlipPM", K: ds.K, B: b, D: d},
		})
	}
	detCfg := cfg
	detCfg.Alphas = []float64{0.5} // placeholder; unused by dBitFlipPM
	pts, err := runGrid(ds, specs, detCfg, func(proto longitudinal.Protocol, seed uint64) float64 {
		res, err := attack.DetectDBitFlipChanges(proto.(*longitudinal.DBitFlipPM), values, seed)
		if err != nil {
			return math.NaN()
		}
		return res.FullyDetectedRate()
	})
	if err != nil {
		return nil, err
	}
	for i := range pts {
		pts[i].Alpha = 0
	}
	return pts, nil
}

// ---------------------------------------------------------------------------
// Grid execution.

type cellJob struct {
	specIdx, epsIdx, alphaIdx, run int
}

// runGrid executes metric once per (spec, ε∞, α, run) cell in parallel and
// aggregates means and standard deviations per point.
func runGrid(ds *datasets.Dataset, specs []Spec, cfg Config,
	metric func(proto longitudinal.Protocol, seed uint64) float64) ([]Point, error) {

	type cellKey struct{ s, e, a int }
	results := make(map[cellKey][]float64)
	buildErrs := make(map[cellKey]error)
	var mu sync.Mutex

	jobs := make(chan cellJob)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec := specs[j.specIdx]
				epsInf := cfg.EpsInfs[j.epsIdx]
				alpha := cfg.Alphas[j.alphaIdx]
				proto, err := spec.Build(ds.K, epsInf, alpha*epsInf)
				key := cellKey{j.specIdx, j.epsIdx, j.alphaIdx}
				if err != nil {
					mu.Lock()
					buildErrs[key] = err
					mu.Unlock()
					continue
				}
				seed := randsrc.Derive(cfg.Seed,
					uint64(j.specIdx), uint64(j.epsIdx), uint64(j.alphaIdx), uint64(j.run))
				v := metric(proto, seed)
				mu.Lock()
				results[key] = append(results[key], v)
				mu.Unlock()
			}
		}()
	}
	for s := range specs {
		for e := range cfg.EpsInfs {
			for a := range cfg.Alphas {
				for r := 0; r < cfg.Runs; r++ {
					jobs <- cellJob{s, e, a, r}
				}
			}
		}
	}
	close(jobs)
	wg.Wait()

	var out []Point
	for s, spec := range specs {
		for e, epsInf := range cfg.EpsInfs {
			for a, alpha := range cfg.Alphas {
				key := cellKey{s, e, a}
				p := Point{
					Dataset:  ds.Name,
					Protocol: spec.Name,
					EpsInf:   epsInf,
					Alpha:    alpha,
				}
				if err, bad := buildErrs[key]; bad {
					p.Err = err
				} else {
					vals := results[key]
					sort.Float64s(vals)
					p.Runs = len(vals)
					p.Mean, p.Std = meanStd(vals)
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}

func meanStd(vals []float64) (mean, std float64) {
	if len(vals) == 0 {
		return math.NaN(), math.NaN()
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	if len(vals) < 2 {
		return mean, 0
	}
	for _, v := range vals {
		std += (v - mean) * (v - mean)
	}
	return mean, math.Sqrt(std / float64(len(vals)-1))
}

// ---------------------------------------------------------------------------
// Replay: run one protocol over a dataset and return per-round estimates
// (used by examples and integration tests).

// Replay drives proto over the whole dataset once and returns the
// estimates of every round.
func Replay(ds *datasets.Dataset, proto longitudinal.Protocol, seed uint64) [][]float64 {
	return ReplaySharded(ds, proto, seed, 1)
}

// ReplaySharded is Replay with the per-round client loop sharded over the
// given number of goroutines; estimates are bit-identical to Replay.
func ReplaySharded(ds *datasets.Dataset, proto longitudinal.Protocol, seed uint64, shards int) [][]float64 {
	n, tau := ds.N(), ds.Tau()
	clients := make([]longitudinal.Client, n)
	for u := range clients {
		clients[u] = proto.NewClient(randsrc.Derive(seed, uint64(u)))
	}
	collector := newCollector(proto, n, shards)
	out := make([][]float64, tau)
	for t := 0; t < tau; t++ {
		est, err := collector.Collect(clients, ds.Round(t))
		if err != nil {
			panic(err) // impossible: clients and rounds share the dataset's n
		}
		out[t] = est
	}
	return out
}
