package simulation

import (
	"math"
	"strings"
	"testing"

	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// tinySyn builds a small synthetic dataset for fast grid tests.
func tinySyn(t *testing.T) *datasets.Dataset {
	t.Helper()
	return datasets.Syn(datasets.SynConfig{K: 12, N: 3000, Tau: 4, ChangeProb: 0.3, Seed: 9})
}

func tinyCfg() Config {
	return Config{
		EpsInfs: []float64{1.0, 3.0},
		Alphas:  []float64{0.5},
		Runs:    2,
		Seed:    1234,
		Workers: 2,
	}
}

func TestStandardSpecsCoverPaperMethods(t *testing.T) {
	specs := StandardSpecs("syn", 360)
	want := []string{"RAPPOR", "L-OSUE", "L-GRR", "BiLOLOHA", "OLOLOHA", "1BitFlipPM", "bBitFlipPM"}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Errorf("spec %d = %q, want %q", i, s.Name, want[i])
		}
		p, err := s.Build(360, 2, 1)
		if err != nil {
			t.Errorf("%s build failed: %v", s.Name, err)
			continue
		}
		if p.K() != 360 {
			t.Errorf("%s K = %d", s.Name, p.K())
		}
	}
}

func TestStandardSpecsBucketChoice(t *testing.T) {
	// b = k for syn/adult; b = k/4 for folktables datasets.
	for _, c := range []struct {
		ds    string
		k, wb int
	}{
		{"syn", 360, 360}, {"adult", 96, 96}, {"db_mt", 1412, 353}, {"db_de", 1234, 308},
	} {
		spec, err := SpecByName(c.ds, c.k, "bBitFlipPM")
		if err != nil {
			t.Fatal(err)
		}
		p, err := spec.Build(c.k, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.(*longitudinal.DBitFlipPM).B(); got != c.wb {
			t.Errorf("%s: b = %d, want %d", c.ds, got, c.wb)
		}
	}
	if _, err := SpecByName("syn", 10, "nope"); err == nil {
		t.Error("unknown spec accepted")
	}
}

func TestSpecByNameErrorEnumeratesProtocols(t *testing.T) {
	_, err := SpecByName("syn", 10, "nope")
	if err == nil {
		t.Fatal("unknown spec accepted")
	}
	for _, want := range StandardSpecNames() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %s", err, want)
		}
	}
}

func TestSpecStandardSpecsAreDeclarative(t *testing.T) {
	// The standard set carries no constructor closures: every entry is a
	// registry-resolvable ProtocolSpec template.
	for _, s := range StandardSpecs("syn", 40) {
		if s.BuildFunc != nil {
			t.Errorf("%s: standard spec carries a BuildFunc closure", s.Name)
		}
		if _, ok := longitudinal.LookupFamily(s.Proto.Family); !ok {
			t.Errorf("%s: family %q not registered", s.Name, s.Proto.Family)
		}
	}
}

func TestSpecStandardSpecsBucketGuardTinyDomain(t *testing.T) {
	// ⌊6/4⌋ = 1 bucket would be an invalid bucketizer; the folktables
	// quartering falls back to b = k instead.
	spec, err := SpecByName("db_mt", 6, "bBitFlipPM")
	if err != nil {
		t.Fatal(err)
	}
	p, err := spec.Build(6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.(*longitudinal.DBitFlipPM).B(); got != 6 {
		t.Errorf("tiny-domain bucket count = %d, want fallback to k = 6", got)
	}
}

func TestSpecPinnedDomainMismatch(t *testing.T) {
	s := Spec{Name: "pinned", Proto: longitudinal.ProtocolSpec{Family: "L-GRR", K: 10}}
	if _, err := s.Build(12, 2, 1); err == nil {
		t.Error("spec pinned to k=10 built at k=12")
	}
	if _, err := s.Build(10, 2, 1); err != nil {
		t.Errorf("matching pinned k rejected: %v", err)
	}
}

func TestSpecBudgetFreeExternalFamilyGrid(t *testing.T) {
	// A family consuming neither eps_inf nor eps1 (k only) must run through
	// the grid: Build leaves budget fields the family does not declare at
	// zero instead of tripping strict validation.
	const fam = "sim-budget-free"
	longitudinal.RegisterFamily(fam, longitudinal.FamilyInfo{
		Doc:      "fixed-budget L-GRR wrapper (test-only)",
		Required: []longitudinal.Field{longitudinal.FieldK},
		Build: func(s longitudinal.ProtocolSpec) (longitudinal.Protocol, error) {
			return longitudinal.NewLGRR(s.K, 2, 1)
		},
	})
	defer longitudinal.RegisterFamily(fam, longitudinal.FamilyInfo{})

	ds := tinySyn(t)
	pts, err := RunMSE(ds, []Spec{{Name: fam, Proto: longitudinal.ProtocolSpec{Family: fam}}}, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Errorf("budget-free family cell error: %v", p.Err)
		}
	}
}

func TestSpecRegistryDrivenExternalFamilyGrid(t *testing.T) {
	// A family registered once (here: an alias wrapping L-GRR) runs through
	// the experiment grid exactly like a built-in — bit-identical to the
	// standard L-GRR spec at the same grid coordinates.
	const fam = "sim-ext-family"
	longitudinal.RegisterFamily(fam, longitudinal.FamilyInfo{
		Doc:      "L-GRR alias (test-only)",
		Required: []longitudinal.Field{longitudinal.FieldK, longitudinal.FieldEpsInf, longitudinal.FieldEps1},
		Build: func(s longitudinal.ProtocolSpec) (longitudinal.Protocol, error) {
			return longitudinal.NewLGRR(s.K, s.EpsInf, s.Eps1)
		},
	})
	defer longitudinal.RegisterFamily(fam, longitudinal.FamilyInfo{})

	ds := tinySyn(t)
	ext, err := RunMSE(ds, []Spec{{Name: fam, Proto: longitudinal.ProtocolSpec{Family: fam}}}, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	std, err := RunMSE(ds, []Spec{mustSpec(t, "L-GRR")}, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != len(std) {
		t.Fatalf("grid shapes differ: %d vs %d", len(ext), len(std))
	}
	for i := range ext {
		if ext[i].Err != nil {
			t.Fatalf("external family cell error: %v", ext[i].Err)
		}
		if ext[i].Mean != std[i].Mean || ext[i].Std != std[i].Std {
			t.Errorf("cell %d: external family (%v ± %v) differs from built-in (%v ± %v)",
				i, ext[i].Mean, ext[i].Std, std[i].Mean, std[i].Std)
		}
	}
}

func TestRunMSEGridShapeAndSanity(t *testing.T) {
	ds := tinySyn(t)
	specs := []Spec{
		mustSpec(t, "RAPPOR"), mustSpec(t, "BiLOLOHA"), mustSpec(t, "L-GRR"),
	}
	pts, err := RunMSE(ds, specs, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3*2*1 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Errorf("%s: unexpected build error %v", p.Protocol, p.Err)
			continue
		}
		if p.Runs != 2 {
			t.Errorf("%s: %d runs", p.Protocol, p.Runs)
		}
		if !(p.Mean > 0) || math.IsInf(p.Mean, 0) {
			t.Errorf("%s eps=%v: MSE %v not positive/finite", p.Protocol, p.EpsInf, p.Mean)
		}
		if p.Mean > 0.1 {
			t.Errorf("%s eps=%v: MSE %v implausibly large", p.Protocol, p.EpsInf, p.Mean)
		}
	}
}

func TestRunMSEDecreasesWithEps(t *testing.T) {
	ds := tinySyn(t)
	pts, err := RunMSE(ds, []Spec{mustSpec(t, "RAPPOR")}, Config{
		EpsInfs: []float64{0.5, 5.0}, Alphas: []float64{0.5}, Runs: 3, Seed: 7, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[0].EpsInf < pts[1].EpsInf) {
		t.Fatal("points out of order")
	}
	if pts[1].Mean >= pts[0].Mean {
		t.Errorf("MSE did not improve with eps: %v -> %v", pts[0].Mean, pts[1].Mean)
	}
}

func TestRunMSEDeterministicAcrossWorkerCounts(t *testing.T) {
	ds := tinySyn(t)
	cfg1 := tinyCfg()
	cfg1.Workers = 1
	cfg4 := tinyCfg()
	cfg4.Workers = 4
	pts1, err := RunMSE(ds, []Spec{mustSpec(t, "BiLOLOHA")}, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	pts4, err := RunMSE(ds, []Spec{mustSpec(t, "BiLOLOHA")}, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts1 {
		if pts1[i].Mean != pts4[i].Mean {
			t.Errorf("point %d differs across worker counts: %v vs %v",
				i, pts1[i].Mean, pts4[i].Mean)
		}
	}
}

func TestRunPrivacyLossMatchesLedgerSemantics(t *testing.T) {
	// On a dataset where every user holds a constant value, every
	// memoization protocol spends exactly one ε∞.
	values := make([][]int, 5)
	row := make([]int, 200)
	for u := range row {
		row[u] = u % 12
	}
	for t := range values {
		values[t] = row
	}
	ds := datasets.Syn(datasets.SynConfig{K: 12, N: 200, Tau: 5, ChangeProb: 1e-12, Seed: 3})
	_ = values
	pts, err := RunPrivacyLoss(ds, []Spec{mustSpec(t, "RAPPOR"), mustSpec(t, "BiLOLOHA")}, Config{
		EpsInfs: []float64{2.0}, Alphas: []float64{0.5}, Runs: 1, Seed: 5, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		// Constant sequences: ε̌ = ε∞ for every user and protocol.
		if math.Abs(p.Mean-2.0) > 1e-9 {
			t.Errorf("%s: ε̌_avg = %v, want 2.0 (constant data)", p.Protocol, p.Mean)
		}
	}
}

func TestRunPrivacyLossOrderingMatchesFig4(t *testing.T) {
	// On churning data: RAPPOR ε̌ grows with distinct values; BiLOLOHA is
	// capped at 2ε∞; OLOLOHA at g·ε∞ — the Fig. 4 story. τ must be long
	// enough for the LOLOHA caps to bind (distinct values ≫ g).
	ds := datasets.Syn(datasets.SynConfig{K: 60, N: 500, Tau: 150, ChangeProb: 0.5, Seed: 21})
	specs := []Spec{
		mustSpecK(t, 60, "RAPPOR"), mustSpecK(t, 60, "BiLOLOHA"),
		mustSpecK(t, 60, "OLOLOHA"), mustSpecK(t, 60, "bBitFlipPM"),
	}
	pts, err := RunPrivacyLoss(ds, specs, Config{
		EpsInfs: []float64{5.0}, Alphas: []float64{0.6}, Runs: 1, Seed: 6, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	by := map[string]float64{}
	for _, p := range pts {
		by[p.Protocol] = p.Mean
	}
	if by["BiLOLOHA"] > 2*5.0+1e-9 {
		t.Errorf("BiLOLOHA ε̌ %v exceeds 2ε∞", by["BiLOLOHA"])
	}
	if by["RAPPOR"] < 5*by["BiLOLOHA"] {
		t.Errorf("RAPPOR ε̌ %v not far above BiLOLOHA %v", by["RAPPOR"], by["BiLOLOHA"])
	}
	if by["OLOLOHA"] >= by["RAPPOR"] {
		t.Errorf("OLOLOHA ε̌ %v not below RAPPOR %v", by["OLOLOHA"], by["RAPPOR"])
	}
	// bBitFlipPM with b=k tracks RAPPOR (every bucket change is a state)
	// and sits far above the capped OLOLOHA.
	if by["bBitFlipPM"] < 1.5*by["OLOLOHA"] {
		t.Errorf("bBitFlipPM ε̌ %v not well above OLOLOHA %v", by["bBitFlipPM"], by["OLOLOHA"])
	}
}

func TestRunDetectionTable2Shape(t *testing.T) {
	// τ large enough that each user has many bucket changes: detecting
	// *all* of them with a single memoized bit is then essentially
	// impossible (the Table 2 d=1 column).
	ds := datasets.Syn(datasets.SynConfig{K: 40, N: 300, Tau: 60, ChangeProb: 0.3, Seed: 31})
	pts, err := RunDetection(ds, 40, []int{1, 40}, Config{
		EpsInfs: []float64{1.0}, Alphas: []float64{0.5}, Runs: 1, Seed: 8, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, p := range pts {
		rates[p.Protocol] = p.Mean
	}
	if rates["d=1"] > 0.05 {
		t.Errorf("d=1 fully-detected rate %v, want ~0", rates["d=1"])
	}
	if rates["d=40"] < 0.95 {
		t.Errorf("d=b fully-detected rate %v, want ~1", rates["d=40"])
	}
}

func TestRunGridReportsBuildErrors(t *testing.T) {
	ds := tinySyn(t)
	specs := []Spec{{
		Name: "broken",
		BuildFunc: func(k int, e, e1 float64) (longitudinal.Protocol, error) {
			return longitudinal.NewRAPPOR(k, e1, e) // swapped budgets: always invalid
		},
	}}
	pts, err := RunMSE(ds, specs, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Err == nil {
			t.Error("broken spec produced no error")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	ds := tinySyn(t)
	if _, err := RunMSE(ds, nil, Config{Runs: 1}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := RunMSE(ds, nil, Config{EpsInfs: []float64{1}, Alphas: []float64{0.5}}); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestReplayProducesRoundEstimates(t *testing.T) {
	ds := tinySyn(t)
	proto, err := longitudinal.NewLGRR(ds.K, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	est := Replay(ds, proto, 42)
	if len(est) != ds.Tau() {
		t.Fatalf("got %d rounds, want %d", len(est), ds.Tau())
	}
	for t0, round := range est {
		if len(round) != ds.K {
			t.Fatalf("round %d has %d bins", t0, len(round))
		}
		truth := ds.TrueFrequencies(t0)
		worst := 0.0
		for v := range round {
			if d := math.Abs(round[v] - truth[v]); d > worst {
				worst = d
			}
		}
		if worst > 0.2 {
			t.Errorf("round %d worst error %v", t0, worst)
		}
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{1, 2, 3, 4})
	if math.Abs(m-2.5) > 1e-12 {
		t.Errorf("mean %v", m)
	}
	if math.Abs(s-math.Sqrt(5.0/3)) > 1e-12 {
		t.Errorf("std %v", s)
	}
	m1, s1 := meanStd([]float64{7})
	if m1 != 7 || s1 != 0 {
		t.Errorf("single value: %v %v", m1, s1)
	}
	mn, _ := meanStd(nil)
	if !math.IsNaN(mn) {
		t.Error("empty mean not NaN")
	}
}

func mustSpec(t *testing.T, name string) Spec {
	return mustSpecK(t, 12, name)
}

// mustSpecK resolves a standard spec for domain size k; k matters for the
// dBitFlipPM variants, whose bucket count is fixed at spec-building time.
func mustSpecK(t *testing.T, k int, name string) Spec {
	t.Helper()
	s, err := SpecByName("syn", k, name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
