package simulation

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/loloha-ldp/loloha/internal/datasets"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// TestReplayColumnarParity pins the interchange contract: exporting a
// dataset as columnar round files and replaying them through a sharded
// Stream reproduces ReplaySharded's estimates bit-identically, for a
// hash-seed family and a sampled-bucket family, at 1 and 4 shards.
func TestReplayColumnarParity(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 24, N: 200, Tau: 4, Seed: 7})
	const seed = 11
	for _, tc := range []struct {
		name string
		spec string
	}{
		{"BiLOLOHA", `{"family":"BiLOLOHA","k":24,"eps_inf":2,"eps1":1}`},
		{"dBitFlipPM", `{"family":"dBitFlipPM","k":24,"b":8,"d":3,"eps_inf":2}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			proto := buildSpec(t, tc.spec)
			want := Replay(ds, proto, seed)

			dir := filepath.Join(t.TempDir(), "rounds")
			files, err := ExportColumnar(ds, proto, seed, dir)
			if err != nil {
				t.Fatalf("ExportColumnar: %v", err)
			}
			if len(files) != ds.Tau() {
				t.Fatalf("exported %d files, want %d", len(files), ds.Tau())
			}
			for _, f := range files {
				if _, err := os.Stat(f); err != nil {
					t.Fatalf("exported file missing: %v", err)
				}
			}

			for _, shards := range []int{1, 4} {
				got, err := ReplayColumnar(proto, shards, files)
				if err != nil {
					t.Fatalf("ReplayColumnar(shards=%d): %v", shards, err)
				}
				if len(got) != len(want) {
					t.Fatalf("shards=%d: %d rounds, want %d", shards, len(got), len(want))
				}
				for r := range want {
					for v := range want[r] {
						if got[r][v] != want[r][v] {
							t.Fatalf("shards=%d round %d estimate %d = %v, want %v",
								shards, r, v, got[r][v], want[r][v])
						}
					}
				}
			}
		})
	}
}

// TestReplayColumnarRejectsForeignFiles pins that files from a different
// protocol are refused as a whole rather than mis-tallied.
func TestReplayColumnarRejectsForeignFiles(t *testing.T) {
	ds := datasets.Syn(datasets.SynConfig{K: 24, N: 50, Tau: 2, Seed: 7})
	exportProto := buildSpec(t, `{"family":"BiLOLOHA","k":24,"eps_inf":2,"eps1":1}`)
	files, err := ExportColumnar(ds, exportProto, 3, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	other := buildSpec(t, `{"family":"BiLOLOHA","k":24,"eps_inf":3,"eps1":1}`)
	if _, err := ReplayColumnar(other, 1, files); err == nil {
		t.Fatal("ReplayColumnar tallied files written for a different protocol")
	}
}

func buildSpec(t *testing.T, spec string) longitudinal.Protocol {
	t.Helper()
	s, err := longitudinal.ParseSpec([]byte(spec))
	if err != nil {
		t.Fatalf("parsing spec: %v", err)
	}
	p, err := s.Build()
	if err != nil {
		t.Fatalf("building spec: %v", err)
	}
	return p
}
