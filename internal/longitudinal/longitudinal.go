// Package longitudinal implements the memoization-based longitudinal LDP
// protocols of §2.4 of the paper — RAPPOR (L-SUE), L-OSUE, L-GRR and
// dBitFlipPM — plus the L-OUE and L-SOUE chains analyzed in the paper's
// reference [5]. All follow the same two-step structure:
//
//	PRR (permanent randomized response): the encoded value is sanitized
//	once at level ε∞ and the result memoized — identical inputs reuse the
//	identical sanitized output forever, which defeats averaging attacks.
//
//	IRR (instantaneous randomized response): each round, the memoized
//	value is sanitized again so the first report satisfies ε1 < ε∞ and
//	changes of the underlying value are harder to detect. dBitFlipPM is
//	the exception: it has no IRR round.
//
// Memoization is implemented as a PRF of (client seed, encoded value): the
// paper notes (§3.1) that pre-computing the mapping and memoizing are
// "equivalent in terms of the functionality provided"; the PRF form is the
// O(1)-memory way to pre-compute lazily.
package longitudinal

import (
	"fmt"
	"math"
)

// Report is one round's sanitized payload. AppendBinary produces the
// steady-state wire form (registration metadata such as the hash seed or
// the sampled bucket indices is sent once, out of band, and excluded).
type Report interface {
	AppendBinary(dst []byte) []byte
}

// Client is the user-side state of a longitudinal protocol: it sanitizes
// one value per collection round and tracks its own longitudinal privacy
// ledger (Definition 3.2).
type Client interface {
	// Report sanitizes v (an index in [0..k)) for the current round and
	// advances the client's clock.
	Report(v int) Report
	// Charge advances the privacy ledger exactly as Report(v) would,
	// without producing a payload. Privacy-loss-only experiments (Fig. 4)
	// use it to replay long sequences cheaply; the ledger state after a
	// Charge is indistinguishable from the state after a Report.
	Charge(v int)
	// PrivacySpent returns the longitudinal privacy loss ε̌ consumed so far.
	PrivacySpent() float64
}

// AppendReporter is a Client with an allocation-free emission path: it can
// write a round's steady-state wire payload straight into a caller buffer,
// skipping the boxed Report and any intermediate encoding (the bitset of a
// UE report). Every client in this repository implements it; collection
// layers type-assert for it and fall back to Report for clients that
// don't. AppendReport(dst, v) must emit exactly the bytes
// Report(v).AppendBinary(nil) would for the same client state, so the two
// paths are interchangeable round for round.
type AppendReporter interface {
	Client
	// AppendReport sanitizes v for the current round, advances the
	// client's clock exactly as Report(v) would, and appends the
	// steady-state wire payload to dst, returning the extended buffer.
	// With capacity in dst the steady state performs no allocations.
	AppendReport(dst []byte, v int) []byte
	// WireRegistration returns the client's one-time enrollment metadata
	// — what a server needs besides the payload bytes. The returned value
	// may alias client state and must not be mutated.
	WireRegistration() Registration
}

// Aggregator is the server-side state: it tallies the reports of one
// collection round and produces the round's frequency estimates.
type Aggregator interface {
	// Add tallies the report of the identified user for the current round.
	Add(userID int, rep Report)
	// EndRound finalizes the round and returns its frequency estimates
	// over the estimation domain.
	EndRound() []float64
	// EstimateDomain returns the length of EndRound's result: k for most
	// protocols, b (the bucket count) for dBitFlipPM.
	EstimateDomain() int
}

// MergeableAggregator is an Aggregator that supports sharded collection:
// Fork'd siblings tally disjoint partitions of the cohort on their own
// goroutines and Merge folds each sibling's round state back into one
// aggregator before EndRound. Every aggregator in this repository
// implements it.
type MergeableAggregator interface {
	Aggregator
	// Fork returns a fresh aggregator with the same configuration and no
	// accumulated round state. Forks do not share mutable state with the
	// receiver: each maintains its own tallies and registration caches, so
	// distinct forks may Add concurrently.
	Fork() Aggregator
	// Merge folds other's current-round tallies into the receiver and
	// resets other's round tallies (long-lived registration caches stay
	// with other, so a fork remains cheap to reuse across rounds). other
	// must come from Fork on the receiver or on a sibling; tallies are
	// integer counts, so any merge order yields bit-identical estimates.
	Merge(other Aggregator)
}

// Protocol binds the two sides together with the protocol's metadata.
type Protocol interface {
	Name() string
	// K returns the size of the original domain.
	K() int
	// NewClient returns a fresh per-user client. seed determines all of
	// the user's randomness (hash choice, memoized responses, IRR noise).
	NewClient(seed uint64) Client
	// NewAggregator returns a fresh server-side aggregator.
	NewAggregator() Aggregator
	// SteadyReportBits returns the per-round communication cost in bits
	// (the Table 1 column).
	SteadyReportBits() int
}

// ---------------------------------------------------------------------------
// Chained parameters: Eq. (3), Eq. (4), Eq. (5).

// ChainParams holds the four probabilities of a two-round sanitization:
// (P1, Q1) for the PRR step and (P2, Q2) for the IRR step. For local-hashing
// protocols Q1 carries the server-side q′ = 1/g of Algorithm 2.
type ChainParams struct {
	P1, Q1, P2, Q2 float64
}

// PS returns Pr[report supports v | true value v] = p1p2 + (1−p1)q2.
func (c ChainParams) PS() float64 { return c.P1*c.P2 + (1-c.P1)*c.Q2 }

// QS returns Pr[report supports v | true value ≠ v] = q1p2 + (1−q1)q2.
func (c ChainParams) QS() float64 { return c.Q1*c.P2 + (1-c.Q1)*c.Q2 }

// EstimateL is the unbiased two-round estimator of Eq. (3):
//
//	f̂_L(v) = (C(v) − n(q1(p2−q2) + q2)) / (n(p1−q1)(p2−q2)).
func (c ChainParams) EstimateL(count float64, n int) float64 {
	nf := float64(n)
	return (count - nf*(c.Q1*(c.P2-c.Q2)+c.Q2)) / (nf * (c.P1 - c.Q1) * (c.P2 - c.Q2))
}

// EstimateAllL applies EstimateL to a count vector. A round with zero
// reports estimates zero everywhere (rather than dividing by n = 0).
func (c ChainParams) EstimateAllL(counts []int64, n int) []float64 {
	out := make([]float64, len(counts))
	if n == 0 {
		return out
	}
	for v, cnt := range counts {
		out[v] = c.EstimateL(float64(cnt), n)
	}
	return out
}

// Variance is Eq. (4): the exact variance of the Eq. (3) estimator at true
// frequency f with n users.
func (c ChainParams) Variance(f float64, n int) float64 {
	gamma := f*(2*c.P1*c.P2-2*c.P1*c.Q2+2*c.Q2-1) + c.P2*c.Q1 + c.Q2*(1-c.Q1)
	d1 := c.P1 - c.Q1
	d2 := c.P2 - c.Q2
	return gamma * (1 - gamma) / (float64(n) * d1 * d1 * d2 * d2)
}

// ApproxVariance is Eq. (5): Eq. (4) evaluated at f = 0, the approximation
// the paper uses for all numerical comparisons (Fig. 2).
func (c ChainParams) ApproxVariance(n int) float64 {
	return c.Variance(0, n)
}

// EpsIRR computes the instantaneous-round privacy level of Algorithm 1:
//
//	ε_IRR = ln((e^{ε∞+ε1} − 1) / (e^{ε∞} − e^{ε1})),
//
// the unique level making the chained first report ε1-LDP (Theorem 3.4).
// It requires 0 < ε1 < ε∞.
func EpsIRR(epsInf, eps1 float64) (float64, error) {
	if err := ValidateBudgets(epsInf, eps1); err != nil {
		return 0, err
	}
	return math.Log((math.Exp(epsInf+eps1) - 1) / (math.Exp(epsInf) - math.Exp(eps1))), nil
}

// ValidateBudgets checks the standing constraint 0 < ε1 < ε∞ of Algorithm 1.
// Both budgets must be finite: ε∞ = +Inf would pass the ordering check and
// then turn EpsIRR into NaN (Inf/Inf), and NaN budgets fail every
// comparison, so the checks are phrased to reject them.
func ValidateBudgets(epsInf, eps1 float64) error {
	if !(eps1 > 0) || !(eps1 < epsInf) || math.IsInf(epsInf, 0) {
		return fmt.Errorf("longitudinal: need 0 < eps1 < epsInf, both finite, got eps1=%v epsInf=%v", eps1, epsInf)
	}
	return nil
}

// ExactEpsIRR computes the instantaneous-round budget that makes the
// chained first report of a g-ary GRR chain *exactly* ε1-LDP, accounting
// for all g−1 wrong memoized cells:
//
//	(p1p2 + (g−1)q1q2) / (q1p2 + p1q2 + (g−2)q1q2) = e^{ε1},
//
// which solves to p2 = (AB + (g−2)B − (g−1)) / ((A−1)(B+g−1)) with
// A = e^{ε∞}, B = e^{ε1}. The paper's EpsIRR uses the g = 2 form for every
// g and is therefore slightly conservative (extra IRR noise) when g > 2;
// this exact form is the utility-side ablation discussed in DESIGN.md.
// For g = 2 the two coincide.
func ExactEpsIRR(epsInf, eps1 float64, g int) (float64, error) {
	if err := ValidateBudgets(epsInf, eps1); err != nil {
		return 0, err
	}
	if g < 2 {
		return 0, fmt.Errorf("longitudinal: ExactEpsIRR needs g >= 2, got %d", g)
	}
	gf := float64(g)
	a, b := math.Exp(epsInf), math.Exp(eps1)
	p2 := (a*b + (gf-2)*b - (gf - 1)) / ((a - 1) * (b + gf - 1))
	if p2 <= 1/gf || p2 >= 1 {
		return 0, fmt.Errorf("longitudinal: exact calibration infeasible for eps1=%v epsInf=%v g=%d (p2=%v)",
			eps1, epsInf, g, p2)
	}
	// GRR with keep probability p2 over g cells has ε = ln(p2(g−1)/(1−p2)).
	return math.Log(p2 * (gf - 1) / (1 - p2)), nil
}

// UEEpsOfChain returns the first-report LDP level of a chained unary
// encoding: ln(ps(1−qs)/((1−ps)qs)).
func UEEpsOfChain(c ChainParams) float64 {
	ps, qs := c.PS(), c.QS()
	return math.Log(ps * (1 - qs) / ((1 - ps) * qs))
}

// GRREpsOfChain returns the first-report LDP level of a chained GRR as the
// paper computes it: ln(ps/qs).
func GRREpsOfChain(c ChainParams) float64 {
	return math.Log(c.PS() / c.QS())
}
