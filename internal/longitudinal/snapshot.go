package longitudinal

import "fmt"

// Snapshot export/import — the durability half of the tally contract. An
// aggregator's open-round state is exactly (counts, n): integer support
// counts plus the number of reports behind them. EndRound computes its
// estimates from those two alone, so exporting them, persisting or
// shipping them, and adding them back is lossless — a restored or merged
// round ends bit-identically to the uninterrupted one. Everything else an
// aggregator holds (per-user hash caches, lookup tables) is a pure
// function of enrollment metadata and rebuilds lazily.
//
// The same contract serves two consumers: server.Stream.Snapshot writes
// shard tallies to disk for crash recovery, and a collector-tree leaf
// exports its round so the root can ImportTally it — integer adds
// commute, so the tree's estimates match a single-node run exactly.

// SnapshotTallier is an Aggregator whose open-round tallies can be
// exported and re-imported exactly. Every aggregator in this repository
// implements it; the wirecontract linter pins the assertion for each
// registered family.
type SnapshotTallier interface {
	// ExportTally appends the aggregator's current-round support counts to
	// dst and returns the extended slice plus the round's report count n.
	// The aggregator's state is unchanged.
	ExportTally(dst []int64) ([]int64, int)
	// ImportTally adds counts and n into the aggregator's current round.
	// counts must have exactly the aggregator's tally length (the exported
	// length); a mismatch imports nothing and returns an error. counts is
	// not retained or mutated.
	ImportTally(counts []int64, n int) error
}

// Snapshot-contract assertions (wirecontract): every family's aggregator
// must stay export/import-capable or snapshot/restore and the collector
// tree silently lose it.
var (
	_ SnapshotTallier = (*chainUEAggregator)(nil)
	_ SnapshotTallier = (*lgrrAggregator)(nil)
	_ SnapshotTallier = (*dBitAggregator)(nil)
)

// importCounts adds src into dst after the length check shared by every
// ImportTally implementation. Unlike MergeCounts it leaves src untouched,
// so a caller may re-import the same snapshot after a failed ship.
func importCounts(dst, src []int64, n int, name string) error {
	if len(src) != len(dst) {
		return fmt.Errorf("longitudinal: %s import has %d counts, aggregator tallies %d", name, len(src), len(dst))
	}
	if n < 0 {
		return fmt.Errorf("longitudinal: %s import has negative report count %d", name, n)
	}
	for i, c := range src {
		dst[i] += c
	}
	return nil
}

// ExportTally implements SnapshotTallier.
func (a *chainUEAggregator) ExportTally(dst []int64) ([]int64, int) {
	return append(dst, a.counts...), a.n
}

// ImportTally implements SnapshotTallier.
func (a *chainUEAggregator) ImportTally(counts []int64, n int) error {
	if err := importCounts(a.counts, counts, n, a.proto.name); err != nil {
		return err
	}
	a.n += n
	return nil
}

// ExportTally implements SnapshotTallier.
func (a *lgrrAggregator) ExportTally(dst []int64) ([]int64, int) {
	return append(dst, a.counts...), a.n
}

// ImportTally implements SnapshotTallier.
func (a *lgrrAggregator) ImportTally(counts []int64, n int) error {
	if err := importCounts(a.counts, counts, n, "L-GRR"); err != nil {
		return err
	}
	a.n += n
	return nil
}

// ExportTally implements SnapshotTallier.
func (a *dBitAggregator) ExportTally(dst []int64) ([]int64, int) {
	return append(dst, a.counts...), a.n
}

// ImportTally implements SnapshotTallier.
func (a *dBitAggregator) ImportTally(counts []int64, n int) error {
	if err := importCounts(a.counts, counts, n, "dBitFlipPM"); err != nil {
		return err
	}
	a.n += n
	return nil
}
