package longitudinal

import (
	"testing"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// Every aggregator in this package must support sharded collection.
var (
	_ MergeableAggregator = (*chainUEAggregator)(nil)
	_ MergeableAggregator = (*lgrrAggregator)(nil)
	_ MergeableAggregator = (*dBitAggregator)(nil)
)

func TestMergeFoldsAndResetsRoundState(t *testing.T) {
	const k = 8
	proto, err := NewLGRR(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	main := proto.NewAggregator().(MergeableAggregator)
	fork := main.Fork()
	cl := proto.NewClient(1)
	fork.Add(0, cl.Report(3))
	fork.Add(1, cl.Report(5))
	main.Merge(fork)

	// The fork was reset: its next round starts empty.
	forkEst := fork.EndRound()
	for v, e := range forkEst {
		if e != 0 {
			t.Errorf("fork estimate[%d] = %v after merge, want 0 (round state not reset)", v, e)
		}
	}
	// The merge target carries the two reports.
	est := main.EndRound()
	sum := 0.0
	for _, e := range est {
		sum += e
	}
	if sum == 0 {
		t.Error("merge target lost the fork's reports")
	}
}

func TestMergePanicsOnForeignAggregator(t *testing.T) {
	lgrr, _ := NewLGRR(8, 2, 1)
	rappor, _ := NewRAPPOR(8, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("merging an aggregator of a different protocol did not panic")
		}
	}()
	lgrr.NewAggregator().(MergeableAggregator).Merge(rappor.NewAggregator())
}

func TestShardedCollectorShardCounts(t *testing.T) {
	proto, _ := NewRAPPOR(8, 2, 1)
	for _, tc := range []struct{ n, shards, want int }{
		{10, 1, 1},  // explicit serial
		{10, 4, 4},  // normal split
		{3, 8, 3},   // clamped to n
		{10, 0, 1},  // non-positive is serial
		{10, -2, 1}, // non-positive is serial
		{1, 16, 1},  // single user
	} {
		c := NewShardedCollector(proto.NewAggregator(), tc.n, tc.shards)
		if got := c.Shards(); got != tc.want {
			t.Errorf("n=%d shards=%d: got %d effective shards, want %d", tc.n, tc.shards, got, tc.want)
		}
	}
}

func TestShardedCollectorRepanicsOnCallerStack(t *testing.T) {
	// Caller bugs (out-of-range values) panic inside shard goroutines;
	// the collector must re-raise them where the caller can recover,
	// matching the serial path's failure mode.
	proto, _ := NewLGRR(8, 2, 1)
	clients := make([]Client, 4)
	for u := range clients {
		clients[u] = proto.NewClient(uint64(u))
	}
	c := NewShardedCollector(proto.NewAggregator(), 4, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range value did not panic on the caller's stack")
		}
	}()
	c.Collect(clients, []int{0, 1, 99, 2}) // 99 outside [0,8)
}

func TestShardedCollectorRejectsLengthMismatch(t *testing.T) {
	proto, _ := NewRAPPOR(8, 2, 1)
	c := NewShardedCollector(proto.NewAggregator(), 4, 2)
	clients := make([]Client, 4)
	for u := range clients {
		clients[u] = proto.NewClient(randsrc.Derive(1, uint64(u)))
	}
	if _, err := c.Collect(clients, []int{1, 2}); err == nil {
		t.Error("mismatched values length accepted")
	}
	if _, err := c.Collect(clients[:2], []int{1, 2}); err == nil {
		t.Error("mismatched clients length accepted")
	}
	if _, err := c.Collect(clients, []int{1, 2, 3, 4}); err != nil {
		t.Errorf("well-formed round rejected: %v", err)
	}
}
