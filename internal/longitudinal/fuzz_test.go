package longitudinal

import (
	"bytes"
	"math"
	"slices"
	"testing"
)

// Fuzz targets for the wire decoders: arbitrary bytes must produce either
// a valid report or an error — never a panic, never an out-of-domain
// report. `go test` exercises the seed corpus; `go test -fuzz` explores.

// FuzzParseSpec feeds arbitrary bytes through the strict JSON spec parser
// and, when a spec parses, through Build: malformed JSON, unknown fields
// and out-of-range parameters must all surface as errors, never panics,
// and a successful build must round-trip its spec.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{"family":"LOLOHA","k":100,"eps_inf":1.2,"eps1":0.5}`))
	f.Add([]byte(`{"family":"dBitFlipPM","k":100,"b":10,"d":4,"eps_inf":2}`))
	f.Add([]byte(`{"family":"L-GRR","k":0,"eps_inf":-1,"eps1":9}`))
	f.Add([]byte(`{"family":"nope"}`))
	f.Add([]byte(`[{"family":"L-OSUE"}]`))
	f.Add([]byte(`{"family":"RAPPOR","k":5,`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		p, err := s.Build()
		if err != nil {
			return
		}
		got := p.(SpecProtocol).Spec()
		if got.Family == "" || got.K != s.K {
			t.Fatalf("built protocol reports spec %+v from %+v", got, s)
		}
	})
}

// FuzzParseSpecs is the list form of FuzzParseSpec.
func FuzzParseSpecs(f *testing.F) {
	f.Add([]byte(`[{"family":"LOLOHA","k":10,"eps_inf":1,"eps1":0.4}]`))
	f.Add([]byte(`{"family":"BiLOLOHA","k":10,"eps_inf":1,"eps1":0.4}`))
	f.Add([]byte(`[[]]`))
	f.Add([]byte(` [ `))
	f.Fuzz(func(t *testing.T, data []byte) {
		specs, err := ParseSpecs(data)
		if err != nil {
			return
		}
		for _, s := range specs {
			if _, err := s.Build(); err != nil {
				continue
			}
		}
	})
}

// FuzzSpecBuild drives Build with parameters JSON cannot even express
// (NaN and ±Inf budgets reach this API from Go callers, not the wire):
// every out-of-range K/G/B/D and non-finite epsilon must error, never
// panic, for every registered family.
func FuzzSpecBuild(f *testing.F) {
	f.Add("LOLOHA", 100, 0, 0, 0, 1.2, 0.5)
	f.Add("LOLOHA", 100, 2, 0, 0, math.Inf(1), 0.5)
	f.Add("BiLOLOHA", 50, 0, 0, 0, math.NaN(), 0.2)
	f.Add("L-GRR", 10, 0, 0, 0, 1.0, math.Inf(1))
	f.Add("L-OSUE", 10, 0, 0, 0, math.Inf(-1), math.NaN())
	f.Add("dBitFlipPM", 100, 0, 10, 4, math.Inf(1), 0.0)
	f.Add("RAPPOR", -5, 0, 0, 0, 2.0, 1.0)
	f.Fuzz(func(t *testing.T, family string, k, g, b, d int, epsInf, eps1 float64) {
		s := ProtocolSpec{Family: family, K: k, G: g, B: b, D: d, EpsInf: epsInf, Eps1: eps1}
		p, err := s.Build()
		if err != nil {
			return
		}
		spent := p.NewClient(1).PrivacySpent()
		if math.IsNaN(spent) || math.IsInf(spent, 0) {
			t.Fatalf("Build(%+v) accepted a non-finite privacy budget (spent=%v)", s, spent)
		}
	})
}

// FuzzColumnarBatch drives the columnar batch decoder with arbitrary
// bytes: malformed headers, truncated columns and count/length mismatches
// must error — never panic, never over-read — and anything that decodes
// must survive a re-encode→re-decode round trip with identical rows.
func FuzzColumnarBatch(f *testing.F) {
	// Seeds: a valid plain batch, a valid batch with registration columns,
	// and a bare header.
	w, err := NewColumnarWriter(0xABCD, 2)
	if err != nil {
		f.Fatal(err)
	}
	for u := 0; u < 5; u++ {
		if err := w.Add(u*10, []byte{byte(u), byte(u * 2)}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(w.AppendTo(nil))
	wr, err := NewColumnarWriter(1, 1)
	if err != nil {
		f.Fatal(err)
	}
	if err := wr.WithRegistrations(2); err != nil {
		f.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		if err := wr.AddWithRegistration(u, []byte{byte(u)}, Registration{HashSeed: uint64(u), Sampled: []int{u, u + 1}}); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(wr.AppendTo(nil))
	empty, err := NewColumnarWriter(0, 4)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty.AppendTo(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		var b ColumnarBatch
		if err := DecodeColumnar(data, &b); err != nil {
			return
		}
		n := b.Count()
		if len(b.Payloads) != n*b.Stride {
			t.Fatalf("payload column is %d bytes for %d rows of stride %d", len(b.Payloads), n, b.Stride)
		}
		if b.HasRegistrations() && (len(b.Seeds) != n || len(b.Buckets) != n*b.D) {
			t.Fatalf("registration columns hold %d seeds / %d buckets for %d rows, d=%d",
				len(b.Seeds), len(b.Buckets), n, b.D)
		}
		// Rebuild the batch through the writer; varints may have been
		// non-minimal in data, so compare decoded rows, not bytes.
		rw, err := NewColumnarWriter(b.SpecHash, max(b.Stride, 1))
		if err != nil {
			t.Fatal(err)
		}
		rw.SetRound(b.Round)
		if b.HasRegistrations() {
			if err := rw.WithRegistrations(b.D); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			var cell []byte
			if b.Stride > 0 {
				cell = b.Payload(i)
			} else {
				cell = make([]byte, 1) // n==0 here; unreachable, keeps types honest
			}
			if b.HasRegistrations() {
				err = rw.AddWithRegistration(b.IDs[i], cell, b.Registration(i))
			} else {
				err = rw.Add(b.IDs[i], cell)
			}
			if err != nil {
				t.Fatalf("re-encode of decoded row %d failed: %v", i, err)
			}
		}
		var rb ColumnarBatch
		if err := DecodeColumnar(rw.AppendTo(nil), &rb); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if rb.Count() != n || !slices.Equal(rb.IDs, b.IDs) || !bytes.Equal(rb.Payloads, b.Payloads) ||
			!slices.Equal(rb.Seeds, b.Seeds) || !slices.Equal(rb.Buckets, b.Buckets) {
			t.Fatalf("round trip changed the batch")
		}
	})
}

func FuzzDecodeUEReport(f *testing.F) {
	f.Add([]byte{0x00}, 8)
	f.Add([]byte{0xFF, 0x01}, 9)
	f.Add([]byte{}, 64)
	f.Fuzz(func(t *testing.T, data []byte, kRaw int) {
		k := kRaw%500 + 2
		if k < 2 {
			k = 2
		}
		rep, _, err := DecodeUEReport(data, k)
		if err != nil {
			return
		}
		if rep.Bits.Len() != k {
			t.Fatalf("decoded %d bits, want %d", rep.Bits.Len(), k)
		}
	})
}

func FuzzDecodeGRRValueReport(f *testing.F) {
	f.Add([]byte{0x03}, 10)
	f.Add([]byte{0xFF, 0xFF}, 70000)
	f.Fuzz(func(t *testing.T, data []byte, kRaw int) {
		k := kRaw%100000 + 2
		if k < 2 {
			k = 2
		}
		rep, _, err := DecodeGRRValueReport(data, k)
		if err != nil {
			return
		}
		if rep.X < 0 || rep.X >= k {
			t.Fatalf("decoded %d outside [0,%d)", rep.X, k)
		}
	})
}

func FuzzDecodeDBitReport(f *testing.F) {
	f.Add([]byte{0xAA}, 5)
	f.Add([]byte{0x01, 0x02}, 12)
	f.Fuzz(func(t *testing.T, data []byte, dRaw int) {
		d := dRaw%64 + 1
		if d < 1 {
			d = 1
		}
		sampled := make([]int, d)
		for i := range sampled {
			sampled[i] = i
		}
		rep, _, err := DecodeDBitReport(data, sampled)
		if err != nil {
			return
		}
		if len(rep.Bits) != d {
			t.Fatalf("decoded %d bits, want %d", len(rep.Bits), d)
		}
	})
}
