package longitudinal

import (
	"testing"
)

// Fuzz targets for the wire decoders: arbitrary bytes must produce either
// a valid report or an error — never a panic, never an out-of-domain
// report. `go test` exercises the seed corpus; `go test -fuzz` explores.

func FuzzDecodeUEReport(f *testing.F) {
	f.Add([]byte{0x00}, 8)
	f.Add([]byte{0xFF, 0x01}, 9)
	f.Add([]byte{}, 64)
	f.Fuzz(func(t *testing.T, data []byte, kRaw int) {
		k := kRaw%500 + 2
		if k < 2 {
			k = 2
		}
		rep, _, err := DecodeUEReport(data, k)
		if err != nil {
			return
		}
		if rep.Bits.Len() != k {
			t.Fatalf("decoded %d bits, want %d", rep.Bits.Len(), k)
		}
	})
}

func FuzzDecodeGRRValueReport(f *testing.F) {
	f.Add([]byte{0x03}, 10)
	f.Add([]byte{0xFF, 0xFF}, 70000)
	f.Fuzz(func(t *testing.T, data []byte, kRaw int) {
		k := kRaw%100000 + 2
		if k < 2 {
			k = 2
		}
		rep, _, err := DecodeGRRValueReport(data, k)
		if err != nil {
			return
		}
		if rep.X < 0 || rep.X >= k {
			t.Fatalf("decoded %d outside [0,%d)", rep.X, k)
		}
	})
}

func FuzzDecodeDBitReport(f *testing.F) {
	f.Add([]byte{0xAA}, 5)
	f.Add([]byte{0x01, 0x02}, 12)
	f.Fuzz(func(t *testing.T, data []byte, dRaw int) {
		d := dRaw%64 + 1
		if d < 1 {
			d = 1
		}
		sampled := make([]int, d)
		for i := range sampled {
			sampled[i] = i
		}
		rep, _, err := DecodeDBitReport(data, sampled)
		if err != nil {
			return
		}
		if len(rep.Bits) != d {
			t.Fatalf("decoded %d bits, want %d", len(rep.Bits), d)
		}
	})
}
