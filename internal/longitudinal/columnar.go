package longitudinal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Columnar batch wire format: one header plus packed parallel arrays for a
// batch of same-protocol reports. The per-report framing of the existing
// batch formats (a user ID and a length prefix per record) makes the
// decoder, not memory bandwidth, the ingestion ceiling; steady-state
// payloads of every protocol in this repository are fixed-size for a given
// configuration (UE chains: ⌈k/8⌉ bytes, GRR chains: value bytes of k,
// LOLOHA: value bytes of g, dBitFlipPM: ⌈d/8⌉ bytes), so a batch can carry
// one stride and pack the payload bytes contiguously with no per-record
// framing at all. The layout:
//
//	u32 LE  magic "LCB1"
//	u64 LE  spec hash (ProtocolSpec.Hash of the batch's protocol; 0 = none)
//	u32 LE  round (informational; servers own round boundaries)
//	u32 LE  count n
//	u32 LE  payload stride s
//	u32 LE  flags (bit 0: registration columns present)
//	ids       n zigzag-varint user-ID deltas (first delta is from 0)
//	if flags bit 0:
//	  u32 LE  d — sampled buckets per user
//	  n × u64 LE  hash seeds
//	  n × d × u32 LE  sampled bucket indices
//	payloads  n × s bytes, cell i at [i·s, (i+1)·s)
//
// User IDs are delta-encoded because batches are typically built from
// contiguous or near-contiguous ID blocks: the common delta of +1 encodes
// in one byte regardless of the ID magnitude. The optional registration
// columns let a cold batch enroll and report in one frame; steady-state
// batches omit them. The encoding is canonical — exact column lengths, no
// trailing bytes — so decode∘encode is the identity and a round file can
// be memory-mapped and decoded in place (the payload column aliases the
// source buffer; only IDs, seeds and buckets are unpacked into ints).

const (
	// columnarMagic is "LCB1" little-endian.
	columnarMagic = uint32('L') | uint32('C')<<8 | uint32('B')<<16 | uint32('1')<<24

	columnarHeaderBytes = 4 + 8 + 4 + 4 + 4 + 4

	// columnarFlagRegs marks the presence of the registration columns.
	columnarFlagRegs = 1 << 0
)

// ---------------------------------------------------------------------------
// Spec hashing.

// Hash returns a stable 64-bit fingerprint of the spec (FNV-1a over the
// family name and the fixed field encoding). Columnar batches carry it so
// a batch built for one protocol configuration cannot silently tally into
// a stream running another: the server rejects the whole batch on
// mismatch, exactly as it would a framing error.
func (s ProtocolSpec) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s.Family); i++ {
		h = (h ^ uint64(s.Family[i])) * prime64
	}
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v>>(8*i))&0xff) * prime64
		}
	}
	mix(uint64(s.K))
	mix(uint64(s.G))
	mix(uint64(s.B))
	mix(uint64(s.D))
	mix(math.Float64bits(s.EpsInf))
	mix(math.Float64bits(s.Eps1))
	return h
}

// SpecHashOf returns the spec hash of a built protocol, or 0 when the
// protocol cannot describe itself declaratively (SpecProtocol). A stream
// for a spec-less protocol accepts only hash-0 batches.
func SpecHashOf(p Protocol) uint64 {
	if sp, ok := SpecOf(p); ok {
		return sp.Hash()
	}
	return 0
}

// ---------------------------------------------------------------------------
// The columnar tally fast path.

// ColumnarTallier is a WireTallier whose steady-state payloads are
// fixed-size, so a whole batch of them can be packed in one contiguous
// column and tallied cell by cell with the length validation hoisted out
// of the loop. Every tallier in this repository implements it.
type ColumnarTallier interface {
	WireTallier
	// PayloadStride returns the exact steady-state payload size in bytes.
	PayloadStride() int
	// TallyCell is TallyWire under the columnar contract: the caller
	// guarantees len(cell) == PayloadStride(), so implementations skip
	// whole-payload length validation; data-dependent checks (value
	// range, trailing bits, registration shape) remain per cell.
	TallyCell(agg Aggregator, userID int, cell []byte, reg Registration) error
}

// ColumnarStrideOf returns the steady-state payload stride of the
// protocol's tallier, when the protocol supports columnar ingestion
// (TallyProtocol whose tallier is a ColumnarTallier).
func ColumnarStrideOf(p Protocol) (int, bool) {
	tp, ok := p.(TallyProtocol)
	if !ok {
		return 0, false
	}
	ct, ok := tp.WireTallier().(ColumnarTallier)
	if !ok {
		return 0, false
	}
	return ct.PayloadStride(), true
}

// ---------------------------------------------------------------------------
// Decoding.

// ColumnarBatch is one decoded columnar batch. DecodeColumnar reuses its
// slices across calls, and the payload column aliases the decode source —
// a batch is a view, valid until the source buffer is reused.
type ColumnarBatch struct {
	// SpecHash is the batch's protocol fingerprint (0 = unspecified).
	SpecHash uint64
	// Round is the informational round index from the header.
	Round uint32
	// Stride is the payload cell size in bytes.
	Stride int
	// IDs holds the decoded user IDs, one per report.
	IDs []int
	// Payloads is the packed payload column (len(IDs) × Stride bytes),
	// aliasing the decode source.
	Payloads []byte
	// Seeds and Buckets are the registration columns (nil/empty unless
	// HasRegistrations): Seeds[i] is user i's hash seed and
	// Buckets[i·D:(i+1)·D] its sampled bucket indices.
	Seeds   []uint64
	Buckets []int
	// D is the sampled-bucket count per user in the Buckets column.
	D int

	hasRegs bool
}

// Count returns the number of reports in the batch.
//
//loloha:noalloc
func (b *ColumnarBatch) Count() int { return len(b.IDs) }

// HasRegistrations reports whether the batch carries the registration
// columns (a cold batch that enrolls and reports in one frame).
//
//loloha:noalloc
func (b *ColumnarBatch) HasRegistrations() bool { return b.hasRegs }

// Payload returns report i's payload cell, aliasing the packed column.
//
//loloha:noalloc
func (b *ColumnarBatch) Payload(i int) []byte {
	return b.Payloads[i*b.Stride : (i+1)*b.Stride : (i+1)*b.Stride]
}

// Registration returns report i's enrollment metadata. The Sampled slice
// aliases the batch's bucket column: callers that retain it past the next
// decode must copy it.
//
//loloha:noalloc
func (b *ColumnarBatch) Registration(i int) Registration {
	reg := Registration{HashSeed: b.Seeds[i]}
	if b.D > 0 {
		reg.Sampled = b.Buckets[i*b.D : (i+1)*b.D : (i+1)*b.D]
	}
	return reg
}

// DecodeColumnar decodes one columnar batch from src into b, reusing b's
// slice capacity. The payload column aliases src; IDs, seeds and buckets
// are unpacked. Every count and length is validated against the available
// bytes before any allocation sized by it, and trailing bytes are an
// error — a valid encoding is canonical. A decode error leaves b in an
// unspecified state; nothing of src is retained on error.
//
//loloha:noalloc
func DecodeColumnar(src []byte, b *ColumnarBatch) error {
	if len(src) < columnarHeaderBytes {
		return fmt.Errorf("longitudinal: short columnar batch: %d bytes, want at least %d", len(src), columnarHeaderBytes)
	}
	if m := binary.LittleEndian.Uint32(src); m != columnarMagic {
		return fmt.Errorf("longitudinal: columnar batch magic %#08x, want %#08x", m, columnarMagic)
	}
	b.SpecHash = binary.LittleEndian.Uint64(src[4:])
	b.Round = binary.LittleEndian.Uint32(src[12:])
	n := binary.LittleEndian.Uint32(src[16:])
	stride := binary.LittleEndian.Uint32(src[20:])
	flags := binary.LittleEndian.Uint32(src[24:])
	if flags&^uint32(columnarFlagRegs) != 0 {
		return fmt.Errorf("longitudinal: unknown columnar batch flags %#x", flags)
	}
	if n > 0 && stride == 0 {
		return fmt.Errorf("longitudinal: columnar batch declares %d reports with zero payload stride", n)
	}
	b.Stride = int(stride)
	b.hasRegs = flags&columnarFlagRegs != 0
	rest := src[columnarHeaderBytes:]

	// ID column: n zigzag varints. Each varint is at least one byte, so a
	// hostile count cannot run past the actual bytes — decoding fails
	// before anything is sized by n.
	b.IDs = b.IDs[:0]
	prev := int64(0)
	for i := uint32(0); i < n; i++ {
		delta, w := binary.Uvarint(rest)
		if w <= 0 {
			return fmt.Errorf("longitudinal: columnar batch ID column truncated at report %d", i)
		}
		rest = rest[w:]
		d := int64(delta>>1) ^ -int64(delta&1)
		if (d > 0 && prev > math.MaxInt64-d) || (d < 0 && prev < math.MinInt64-d) {
			return fmt.Errorf("longitudinal: columnar batch ID delta overflows at report %d", i)
		}
		prev += d
		if prev < 0 || uint64(prev) > maxColumnarUserID {
			return fmt.Errorf("longitudinal: columnar batch user ID %d not representable", prev)
		}
		//loloha:alloc-ok amortized ID-column growth, reused across batches
		b.IDs = append(b.IDs, int(prev))
	}

	// Registration columns: fixed-width, validated before unpacking.
	b.Seeds = b.Seeds[:0]
	b.Buckets = b.Buckets[:0]
	b.D = 0
	if b.hasRegs {
		if len(rest) < 4 {
			return fmt.Errorf("longitudinal: columnar batch registration columns truncated")
		}
		d := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if d > MaxRegistrationSampled {
			return fmt.Errorf("longitudinal: columnar batch claims %d sampled buckets per user, max %d", d, MaxRegistrationSampled)
		}
		b.D = int(d)
		need := uint64(n)*8 + uint64(n)*uint64(d)*4
		if uint64(len(rest)) < need {
			return fmt.Errorf("longitudinal: columnar batch registration columns need %d bytes, have %d", need, len(rest))
		}
		for i := uint32(0); i < n; i++ {
			//loloha:alloc-ok amortized seed-column growth, reused across batches
			b.Seeds = append(b.Seeds, binary.LittleEndian.Uint64(rest[8*i:]))
		}
		rest = rest[8*n:]
		for i := uint64(0); i < uint64(n)*uint64(d); i++ {
			//loloha:alloc-ok amortized bucket-column growth, reused across batches
			b.Buckets = append(b.Buckets, int(binary.LittleEndian.Uint32(rest[4*i:])))
		}
		rest = rest[4*uint64(n)*uint64(d):]
	}

	// Payload column: exactly n × stride bytes, aliased rather than copied.
	if need := uint64(n) * uint64(stride); uint64(len(rest)) != need {
		return fmt.Errorf("longitudinal: columnar batch payload column is %d bytes, want exactly %d", len(rest), need)
	}
	b.Payloads = rest
	return nil
}

// maxColumnarUserID is the largest wire user ID an int can hold.
const maxColumnarUserID = uint64(int(^uint(0) >> 1))

// ---------------------------------------------------------------------------
// Encoding.

// ColumnarWriter builds one columnar batch. It is reusable: Reset keeps
// the configuration and the accumulated column capacity, so a steady-state
// producer (the load generator, a round-file exporter) allocates nothing
// per batch after warm-up.
type ColumnarWriter struct {
	specHash uint64
	round    uint32
	stride   int
	withRegs bool
	d        int

	count    int
	prevID   int
	ids      []byte
	seeds    []byte
	buckets  []byte
	payloads []byte
}

// NewColumnarWriter returns a writer for batches of stride-byte payload
// cells carrying the given spec hash (SpecHashOf of the protocol, or 0
// for a protocol with no spec).
func NewColumnarWriter(specHash uint64, stride int) (*ColumnarWriter, error) {
	if stride <= 0 {
		return nil, fmt.Errorf("longitudinal: columnar payload stride must be positive, got %d", stride)
	}
	return &ColumnarWriter{specHash: specHash, stride: stride}, nil
}

// WithRegistrations enables the registration columns with d sampled
// buckets per user (0 for seed-only families). It must be called before
// the first Add and makes AddWithRegistration the required add form.
func (w *ColumnarWriter) WithRegistrations(d int) error {
	if w.count > 0 {
		return fmt.Errorf("longitudinal: WithRegistrations after %d reports were added", w.count)
	}
	if d < 0 || d > MaxRegistrationSampled {
		return fmt.Errorf("longitudinal: registration column d=%d outside [0, %d]", d, MaxRegistrationSampled)
	}
	w.withRegs = true
	w.d = d
	return nil
}

// SetRound sets the informational round index carried in the header.
func (w *ColumnarWriter) SetRound(round uint32) { w.round = round }

// Count returns the number of reports added since the last Reset.
//
//loloha:noalloc
func (w *ColumnarWriter) Count() int { return w.count }

// EncodedSize returns the exact size AppendTo will append.
//
//loloha:noalloc
func (w *ColumnarWriter) EncodedSize() int {
	n := columnarHeaderBytes + len(w.ids) + len(w.payloads)
	if w.withRegs {
		n += 4 + len(w.seeds) + len(w.buckets)
	}
	return n
}

// Add appends one report. The payload must be exactly the writer's stride;
// its bytes are copied, so the caller may reuse the buffer.
//
//loloha:noalloc
func (w *ColumnarWriter) Add(userID int, payload []byte) error {
	if w.withRegs {
		return fmt.Errorf("longitudinal: writer has registration columns; use AddWithRegistration")
	}
	return w.add(userID, payload)
}

// AddWithRegistration appends one report together with the user's
// enrollment metadata. len(reg.Sampled) must equal the d configured by
// WithRegistrations.
func (w *ColumnarWriter) AddWithRegistration(userID int, payload []byte, reg Registration) error {
	if !w.withRegs {
		return fmt.Errorf("longitudinal: writer has no registration columns; call WithRegistrations first")
	}
	if len(reg.Sampled) != w.d {
		return fmt.Errorf("longitudinal: registration has %d sampled buckets, column takes %d", len(reg.Sampled), w.d)
	}
	for i, s := range reg.Sampled {
		if s < 0 || int64(s) > math.MaxUint32 {
			return fmt.Errorf("longitudinal: sampled bucket %d out of wire range: %d", i, s)
		}
	}
	if err := w.add(userID, payload); err != nil {
		return err
	}
	w.seeds = binary.LittleEndian.AppendUint64(w.seeds, reg.HashSeed)
	for _, s := range reg.Sampled {
		w.buckets = binary.LittleEndian.AppendUint32(w.buckets, uint32(s))
	}
	return nil
}

//loloha:noalloc
func (w *ColumnarWriter) add(userID int, payload []byte) error {
	if userID < 0 {
		return fmt.Errorf("longitudinal: negative user ID %d not encodable", userID)
	}
	if len(payload) != w.stride {
		return fmt.Errorf("longitudinal: payload is %d bytes, columnar stride is %d", len(payload), w.stride)
	}
	if w.count == math.MaxUint32 {
		return fmt.Errorf("longitudinal: columnar batch is full")
	}
	d := int64(userID) - int64(w.prevID)
	//loloha:alloc-ok amortized column growth, reused across Reset cycles
	w.ids = binary.AppendUvarint(w.ids, uint64(d<<1)^uint64(d>>63))
	//loloha:alloc-ok amortized column growth, reused across Reset cycles
	w.payloads = append(w.payloads, payload...)
	w.prevID = userID
	w.count++
	return nil
}

// AppendTo appends the encoded batch to dst and returns the extended
// buffer. The writer remains usable; call Reset to start the next batch.
//
//loloha:noalloc
func (w *ColumnarWriter) AppendTo(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, columnarMagic)
	dst = binary.LittleEndian.AppendUint64(dst, w.specHash)
	dst = binary.LittleEndian.AppendUint32(dst, w.round)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(w.count))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(w.stride))
	flags := uint32(0)
	if w.withRegs {
		flags |= columnarFlagRegs
	}
	dst = binary.LittleEndian.AppendUint32(dst, flags)
	dst = append(dst, w.ids...)
	if w.withRegs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(w.d))
		dst = append(dst, w.seeds...)
		dst = append(dst, w.buckets...)
	}
	return append(dst, w.payloads...)
}

// Reset clears the accumulated reports, keeping the configuration
// (spec hash, stride, registration columns) and the column capacity.
//
//loloha:noalloc
func (w *ColumnarWriter) Reset() {
	w.count = 0
	w.prevID = 0
	w.ids = w.ids[:0]
	w.seeds = w.seeds[:0]
	w.buckets = w.buckets[:0]
	w.payloads = w.payloads[:0]
}
