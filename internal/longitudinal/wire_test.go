package longitudinal

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func TestUEReportWireRoundTrip(t *testing.T) {
	p, err := NewRAPPOR(100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(1)
	for i := 0; i < 20; i++ {
		rep := cl.Report(i % 100).(UEReport)
		buf := rep.AppendBinary(nil)
		got, rest, err := DecodeUEReport(buf, 100)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Fatalf("leftover %d bytes", len(rest))
		}
		if !got.Bits.Equal(rep.Bits) {
			t.Fatal("UE wire round trip mismatch")
		}
	}
}

func TestGRRValueReportWireRoundTrip(t *testing.T) {
	p, err := NewLGRR(300, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(2)
	for i := 0; i < 50; i++ {
		rep := cl.Report(i % 300).(GRRValueReport)
		buf := rep.AppendBinary(nil)
		got, rest, err := DecodeGRRValueReport(buf, 300)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 || got.X != rep.X || got.K != 300 {
			t.Fatalf("round trip: got %+v want %+v", got, rep)
		}
	}
}

func TestDBitReportWireRoundTrip(t *testing.T) {
	p, err := NewDBitFlipPM(100, 20, 9, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(3)
	first := cl.Report(5).(DBitReport)
	buf := first.AppendBinary(nil)
	if len(buf) != 2 { // 9 bits -> 2 bytes
		t.Fatalf("encoded %d bytes, want 2", len(buf))
	}
	got, rest, err := DecodeDBitReport(buf, first.Sampled)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("leftover %d bytes", len(rest))
	}
	if !got.Equal(first) {
		t.Fatal("dBit wire round trip mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeUEReport(make([]byte, 1), 100); err == nil {
		t.Error("short UE buffer accepted")
	}
	if _, _, err := DecodeGRRValueReport(nil, 300); err == nil {
		t.Error("short GRR buffer accepted")
	}
	if _, _, err := DecodeDBitReport(nil, []int{1, 2, 3}); err == nil {
		t.Error("short dBit buffer accepted")
	}
	if _, _, err := DecodeDBitReport([]byte{0}, nil); err == nil {
		t.Error("empty sampled set accepted")
	}
}

func TestWireAggregationEquivalence(t *testing.T) {
	// Feeding an aggregator through encode→decode must produce estimates
	// identical to feeding reports directly — the full production path.
	const k, n = 50, 2000
	p, err := NewLOSUE(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct := p.NewAggregator()
	viaWire := p.NewAggregator()
	r := randsrc.NewSeeded(4)
	for u := 0; u < n; u++ {
		cl := p.NewClient(uint64(u))
		rep := cl.Report(r.Intn(k))
		direct.Add(u, rep)
		buf := rep.AppendBinary(nil)
		decoded, _, err := DecodeUEReport(buf, k)
		if err != nil {
			t.Fatal(err)
		}
		viaWire.Add(u, decoded)
	}
	a, b := direct.EndRound(), viaWire.EndRound()
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-15 {
			t.Fatalf("estimates diverge at v=%d: %v vs %v", v, a[v], b[v])
		}
	}
}
