package longitudinal

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// budgetsFromRaw maps fuzz bytes onto a valid (ε∞, ε1) pair.
func budgetsFromRaw(a, b uint8) (epsInf, eps1 float64) {
	epsInf = 0.2 + float64(a%60)/10 // 0.2 .. 6.1
	alpha := 0.05 + float64(b%90)/100
	return epsInf, alpha * epsInf
}

func TestQuickLSUECalibrationAlwaysValid(t *testing.T) {
	f := func(a, b uint8) bool {
		epsInf, eps1 := budgetsFromRaw(a, b)
		p, err := LSUEParams(epsInf, eps1)
		if err != nil {
			return false
		}
		return p.P1 > p.Q1 && p.P2 > p.Q2 &&
			p.P1 > 0 && p.P1 < 1 && p.P2 > 0 && p.P2 < 1 &&
			math.Abs(UEEpsOfChain(p)-eps1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickLOSUECalibrationAlwaysValid(t *testing.T) {
	f := func(a, b uint8) bool {
		epsInf, eps1 := budgetsFromRaw(a, b)
		p, err := LOSUEParams(epsInf, eps1)
		if err != nil {
			return false
		}
		return p.P1 == 0.5 && p.P2 > p.Q2 &&
			math.Abs(UEEpsOfChain(p)-eps1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEpsIRRWithinBounds(t *testing.T) {
	// 0 < εIRR always; and εIRR < ε1 + something sane... specifically the
	// IRR round must be noisier than "no noise": εIRR is finite and
	// positive; and the chain identity holds.
	f := func(a, b uint8) bool {
		epsInf, eps1 := budgetsFromRaw(a, b)
		epsIRR, err := EpsIRR(epsInf, eps1)
		if err != nil {
			return false
		}
		if !(epsIRR > 0) || math.IsInf(epsIRR, 0) || math.IsNaN(epsIRR) {
			return false
		}
		lhs := math.Exp(epsIRR)*math.Exp(epsInf) + 1
		rhs := math.Exp(eps1) * (math.Exp(epsIRR) + math.Exp(epsInf))
		return math.Abs(lhs-rhs) < 1e-6*lhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickEstimateLRecoverFrequency(t *testing.T) {
	// For any valid chain and any f in [0,1], plugging the expected count
	// into Eq. (3) returns f.
	f := func(a, b uint8, fRaw uint8) bool {
		epsInf, eps1 := budgetsFromRaw(a, b)
		p, err := LOSUEParams(epsInf, eps1)
		if err != nil {
			return false
		}
		freq := float64(fRaw) / 255
		const n = 100000
		count := float64(n) * (freq*p.PS() + (1-freq)*p.QS())
		return math.Abs(p.EstimateL(count, n)-freq) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickClientReportsAlwaysDecodable(t *testing.T) {
	// Random protocol configs: the client's wire output must round-trip.
	f := func(seed uint64, kRaw, vRaw uint8) bool {
		k := int(kRaw%60) + 2
		v := int(vRaw) % k
		p, err := NewLGRR(k, 2.0, 1.0)
		if err != nil {
			return false
		}
		rep := p.NewClient(seed).Report(v).(GRRValueReport)
		got, rest, err := DecodeGRRValueReport(rep.AppendBinary(nil), k)
		return err == nil && len(rest) == 0 && got.X == rep.X
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickLedgerNeverExceedsCap(t *testing.T) {
	// Whatever the sequence, ε̌ ≤ cap for every protocol.
	r := randsrc.NewSeeded(55)
	f := func(seed uint64, seqRaw []uint8) bool {
		const k, b, d = 30, 10, 3
		protos := []Client{}
		if p, err := NewRAPPOR(k, 1.5, 0.5); err == nil {
			protos = append(protos, p.NewClient(seed))
		}
		if p, err := NewDBitFlipPM(k, b, d, 1.5); err == nil {
			protos = append(protos, p.NewClient(seed))
		}
		caps := []float64{float64(k) * 1.5, float64(d+1) * 1.5}
		for i, cl := range protos {
			for _, s := range seqRaw {
				cl.Charge(int(s) % k)
			}
			cl.Charge(r.Intn(k))
			if cl.PrivacySpent() > caps[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickChargeReportLedgerEquivalence(t *testing.T) {
	// Charge(v) and Report(v) must leave the ledger in the same state.
	f := func(seed uint64, seqRaw []uint8) bool {
		const k = 24
		pa, err := NewLOSUE(k, 2, 1)
		if err != nil {
			return false
		}
		chargeOnly := pa.NewClient(seed)
		reporting := pa.NewClient(seed)
		for _, s := range seqRaw {
			v := int(s) % k
			chargeOnly.Charge(v)
			reporting.Report(v)
			if math.Abs(chargeOnly.PrivacySpent()-reporting.PrivacySpent()) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
