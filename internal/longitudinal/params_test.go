package longitudinal

import (
	"math"
	"testing"
	"testing/quick"
)

var budgetGrid = []struct{ epsInf, alpha float64 }{
	{0.5, 0.1}, {0.5, 0.5}, {1, 0.3}, {2, 0.4}, {2, 0.6}, {3.5, 0.5}, {5, 0.2}, {5, 0.6},
}

func TestEpsIRRIdentity(t *testing.T) {
	// Theorem 3.4's algebra: e^{εIRR}·e^{ε∞} + 1 = e^{ε1}(e^{εIRR} + e^{ε∞}).
	for _, b := range budgetGrid {
		eps1 := b.alpha * b.epsInf
		epsIRR, err := EpsIRR(b.epsInf, eps1)
		if err != nil {
			t.Fatal(err)
		}
		lhs := math.Exp(epsIRR)*math.Exp(b.epsInf) + 1
		rhs := math.Exp(eps1) * (math.Exp(epsIRR) + math.Exp(b.epsInf))
		if math.Abs(lhs-rhs) > 1e-6*math.Abs(lhs) {
			t.Errorf("eps∞=%v α=%v: identity violated: %v != %v", b.epsInf, b.alpha, lhs, rhs)
		}
		if epsIRR <= 0 {
			t.Errorf("eps∞=%v α=%v: epsIRR = %v not positive", b.epsInf, b.alpha, epsIRR)
		}
	}
}

func TestEpsIRRRejectsBadBudgets(t *testing.T) {
	cases := []struct{ epsInf, eps1 float64 }{
		{1, 0}, {1, -0.5}, {1, 1}, {1, 2}, {0, 0.5},
	}
	for _, c := range cases {
		if _, err := EpsIRR(c.epsInf, c.eps1); err == nil {
			t.Errorf("EpsIRR(%v,%v) accepted", c.epsInf, c.eps1)
		}
	}
}

func TestEpsIRRMonotoneInEps1(t *testing.T) {
	// A laxer first report (larger ε1) needs less IRR noise (larger εIRR).
	prev := 0.0
	for _, alpha := range []float64{0.1, 0.2, 0.4, 0.6, 0.8} {
		epsIRR, err := EpsIRR(2.0, alpha*2.0)
		if err != nil {
			t.Fatal(err)
		}
		if epsIRR <= prev {
			t.Errorf("epsIRR not increasing at α=%v: %v <= %v", alpha, epsIRR, prev)
		}
		prev = epsIRR
	}
}

func TestEq3ReducesToEq1Form(t *testing.T) {
	// Eq. (3) must equal the single-round Eq. (1) with effective (ps, qs):
	// f̂ = (C − n·qs)/(n(ps−qs)).
	c := ChainParams{P1: 0.7, Q1: 0.2, P2: 0.8, Q2: 0.3}
	n := 12345
	for _, count := range []float64{0, 100, 5000, 12345} {
		got := c.EstimateL(count, n)
		ps, qs := c.PS(), c.QS()
		want := (count - float64(n)*qs) / (float64(n) * (ps - qs))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("count=%v: Eq3 %v != Eq1(ps,qs) %v", count, got, want)
		}
	}
}

func TestEstimateLInverse(t *testing.T) {
	// Expected count at frequency f is n(f·ps + (1−f)·qs); Eq. (3) must
	// recover f exactly.
	c := ChainParams{P1: 0.75, Q1: 0.25, P2: 0.9, Q2: 0.1}
	n := 50000
	ps, qs := c.PS(), c.QS()
	for _, f := range []float64{0, 0.1, 0.5, 0.99, 1} {
		count := float64(n) * (f*ps + (1-f)*qs)
		if got := c.EstimateL(count, n); math.Abs(got-f) > 1e-9 {
			t.Errorf("f=%v: estimate %v", f, got)
		}
	}
}

func TestVarianceEq4AtZeroMatchesEq5(t *testing.T) {
	c := ChainParams{P1: 0.7, Q1: 0.1, P2: 0.85, Q2: 0.2}
	if v4, v5 := c.Variance(0, 777), c.ApproxVariance(777); v4 != v5 {
		t.Errorf("Eq4(f=0) %v != Eq5 %v", v4, v5)
	}
}

func TestVarianceEq5ClosedForm(t *testing.T) {
	// Eq. (5) written out: (p2q1 − q2(q1−1))(−p2q1 + q2(q1−1) + 1) /
	// (n(p1−q1)²(p2−q2)²) — check our gamma-form against the verbatim text.
	c := ChainParams{P1: 0.66, Q1: 0.15, P2: 0.81, Q2: 0.27}
	n := 10000
	num := (c.P2*c.Q1 - c.Q2*(c.Q1-1)) * (-c.P2*c.Q1 + c.Q2*(c.Q1-1) + 1)
	want := num / (float64(n) * (c.P1 - c.Q1) * (c.P1 - c.Q1) * (c.P2 - c.Q2) * (c.P2 - c.Q2))
	if got := c.ApproxVariance(n); math.Abs(got-want) > 1e-15 {
		t.Errorf("Eq5 gamma-form %v != verbatim %v", got, want)
	}
}

func TestVarianceSymmetricInFAroundHalf(t *testing.T) {
	// γ(1−γ) peaks at γ = 1/2, so variance as a function of f is bounded
	// by the f giving γ = 1/2 — used in Prop 3.6. Check the bound.
	c := ChainParams{P1: 0.7, Q1: 0.2, P2: 0.75, Q2: 0.25}
	n := 1000
	bound := 1 / (4 * float64(n) * (c.P1 - c.Q1) * (c.P1 - c.Q1) * (c.P2 - c.Q2) * (c.P2 - c.Q2))
	for _, f := range []float64{0, 0.2, 0.5, 0.8, 1} {
		if v := c.Variance(f, n); v > bound+1e-15 {
			t.Errorf("Variance(f=%v) = %v exceeds the 1/4 bound %v", f, v, bound)
		}
	}
}

func TestChainEpsQuickPositive(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		p := ChainParams{
			P1: 0.5 + float64(a%50)/100.01,
			Q1: float64(b%49)/100.01 + 0.001,
			P2: 0.5 + float64(c%50)/100.01,
			Q2: float64(d%49)/100.01 + 0.001,
		}
		if !(p.P1 > p.Q1 && p.P2 > p.Q2) {
			return true
		}
		return p.PS() > p.QS() && UEEpsOfChain(p) > 0 && GRREpsOfChain(p) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLSUECalibration(t *testing.T) {
	for _, b := range budgetGrid {
		eps1 := b.alpha * b.epsInf
		p, err := LSUEParams(b.epsInf, eps1)
		if err != nil {
			t.Fatal(err)
		}
		// PRR is symmetric at ε∞: UE-eps of (p1, q1) alone is ε∞.
		prrEps := math.Log(p.P1 * (1 - p.Q1) / ((1 - p.P1) * p.Q1))
		if math.Abs(prrEps-b.epsInf) > 1e-9 {
			t.Errorf("L-SUE PRR eps = %v, want %v", prrEps, b.epsInf)
		}
		// Both rounds symmetric.
		if math.Abs(p.P1+p.Q1-1) > 1e-12 || math.Abs(p.P2+p.Q2-1) > 1e-12 {
			t.Errorf("L-SUE not symmetric: %+v", p)
		}
		// Chained first report is exactly ε1-LDP.
		if got := UEEpsOfChain(p); math.Abs(got-eps1) > 1e-9 {
			t.Errorf("L-SUE chain eps = %v, want %v", got, eps1)
		}
	}
}

func TestLSUERappor75(t *testing.T) {
	// RAPPOR's deployed IRR used p2 = 0.75: recover the (ε∞, ε1) pair that
	// yields it and check the round trip.
	epsInf := 4.0
	a := math.Exp(epsInf / 2)
	// p2 = (ab−1)/((b+1)(a−1)) = 3/4 -> solve for b.
	// (ab−1)·4 = 3(b+1)(a−1) -> b(4a − 3(a−1)) = 3(a−1) + 4 -> b = (3a+1)/(a+3).
	bb := (3*a + 1) / (a + 3)
	eps1 := 2 * math.Log(bb)
	p, err := LSUEParams(epsInf, eps1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.P2-0.75) > 1e-9 {
		t.Errorf("p2 = %v, want 0.75", p.P2)
	}
}

func TestLOSUECalibration(t *testing.T) {
	for _, b := range budgetGrid {
		eps1 := b.alpha * b.epsInf
		p, err := LOSUEParams(b.epsInf, eps1)
		if err != nil {
			t.Fatal(err)
		}
		// PRR is OUE at ε∞.
		if p.P1 != 0.5 {
			t.Errorf("L-OSUE p1 = %v, want 0.5", p.P1)
		}
		if want := 1 / (math.Exp(b.epsInf) + 1); math.Abs(p.Q1-want) > 1e-12 {
			t.Errorf("L-OSUE q1 = %v, want %v", p.Q1, want)
		}
		// IRR symmetric, chain exactly ε1.
		if math.Abs(p.P2+p.Q2-1) > 1e-12 {
			t.Errorf("L-OSUE IRR not symmetric: %+v", p)
		}
		if got := UEEpsOfChain(p); math.Abs(got-eps1) > 1e-9 {
			t.Errorf("L-OSUE chain eps = %v, want %v", got, eps1)
		}
	}
}

func TestLOUEAndLSOUECalibration(t *testing.T) {
	for _, b := range budgetGrid {
		eps1 := b.alpha * b.epsInf
		for name, fn := range map[string]func(float64, float64) (ChainParams, error){
			"L-OUE":  LOUEParams,
			"L-SOUE": LSOUEParams,
		} {
			p, err := fn(b.epsInf, eps1)
			if err != nil {
				// OUE-style IRR has a feasibility ceiling; only accept
				// errors that state it.
				t.Logf("%s eps∞=%v α=%v: %v", name, b.epsInf, b.alpha, err)
				continue
			}
			if p.P2 != 0.5 {
				t.Errorf("%s p2 = %v, want 0.5", name, p.P2)
			}
			if got := UEEpsOfChain(p); math.Abs(got-eps1) > 1e-6 {
				t.Errorf("%s chain eps = %v, want %v", name, got, eps1)
			}
		}
	}
}

func TestLOUEInfeasiblePairRejected(t *testing.T) {
	// ε1 → ε∞ cannot be reached with a fixed p2 = 1/2.
	if _, err := LOUEParams(0.5, 0.45); err == nil {
		t.Error("near-equal budgets accepted for L-OUE")
	}
}

func TestLOSUEApproxVarianceClosedForm(t *testing.T) {
	// §4: V*[L-OSUE] = 4e^{ε1} / (n(e^{ε1}−1)²).
	n := 10000
	for _, b := range budgetGrid {
		eps1 := b.alpha * b.epsInf
		p, err := LOSUEParams(b.epsInf, eps1)
		if err != nil {
			t.Fatal(err)
		}
		got := p.ApproxVariance(n)
		e := math.Exp(eps1)
		want := 4 * e / (float64(n) * (e - 1) * (e - 1))
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("eps∞=%v α=%v: V* = %v, closed form %v", b.epsInf, b.alpha, got, want)
		}
	}
}

func TestChainVarianceOrderingMatchesFig2(t *testing.T) {
	// Fig. 2 shape at high ε∞, high α: L-OSUE < RAPPOR.
	n := 10000
	losue, err := LOSUEParams(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	lsue, err := LSUEParams(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if losue.ApproxVariance(n) >= lsue.ApproxVariance(n) {
		t.Errorf("L-OSUE V* %v not below RAPPOR V* %v",
			losue.ApproxVariance(n), lsue.ApproxVariance(n))
	}
}
