package longitudinal

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/freqoracle"
)

// Wire decoding for the steady-state report formats produced by
// Report.AppendBinary. A production deployment ships registration metadata
// (hash seeds, sampled bucket indices) once at enrollment and then streams
// these fixed-size payloads every round; the decoders below are the
// server-side ingestion path and are exercised against the encoders in
// tests and benchmarks.

// Registration carries a user's one-time enrollment metadata: everything a
// decoder needs beyond the per-round payload bytes.
type Registration struct {
	// HashSeed identifies a LOLOHA user's hash function (Algorithm 1,
	// "Send H").
	HashSeed uint64
	// Sampled lists a dBitFlipPM user's fixed sampled buckets.
	Sampled []int
}

// Decoder turns a round payload into a protocol report for an enrolled
// user. Implementations exist for every protocol in this repository, and
// external protocols supply their own through the WireProtocol interface
// or the server-side decoder registry.
type Decoder interface {
	Decode(payload []byte, reg Registration) (Report, error)
}

// WireProtocol is a Protocol that is self-describing at the wire level: it
// supplies the decoder for its own steady-state payloads. Every protocol in
// this repository implements it, and out-of-repository protocols implement
// it to plug into the collection service without any registration step.
type WireProtocol interface {
	Protocol
	// WireDecoder returns a decoder for the payloads this protocol's
	// clients produce via Report.AppendBinary.
	WireDecoder() Decoder
}

// DecodeUEReport reads a k-bit unary-encoding round payload.
func DecodeUEReport(src []byte, k int) (UEReport, []byte, error) {
	bits, rest, err := freqoracle.DecodeUEReport(src, k)
	if err != nil {
		return UEReport{}, nil, err
	}
	return UEReport{Bits: bits}, rest, nil
}

// DecodeGRRValueReport reads a scalar GRR round payload over [0..k).
func DecodeGRRValueReport(src []byte, k int) (GRRValueReport, []byte, error) {
	x, rest, err := freqoracle.DecodeGRRReport(src, k)
	if err != nil {
		return GRRValueReport{}, nil, err
	}
	return GRRValueReport{X: x, K: k}, rest, nil
}

// DecodeDBitReport reads a d-bit dBitFlipPM round payload. The sampled
// bucket indices are the user's registration metadata; the returned report
// aliases the given slice.
func DecodeDBitReport(src []byte, sampled []int) (DBitReport, []byte, error) {
	d := len(sampled)
	if d == 0 {
		return DBitReport{}, nil, fmt.Errorf("longitudinal: empty sampled set")
	}
	nBytes := (d + 7) / 8
	if len(src) < nBytes {
		return DBitReport{}, nil, fmt.Errorf("longitudinal: short dBit report: %d bytes, want %d",
			len(src), nBytes)
	}
	bits := make([]bool, d)
	for i := range bits {
		bits[i] = src[i/8]>>(uint(i)%8)&1 == 1
	}
	return DBitReport{Sampled: sampled, Bits: bits}, src[nBytes:], nil
}

// ---------------------------------------------------------------------------
// Decoders for the protocol families of this package. The LOLOHA decoder
// lives in internal/core with the rest of that protocol.

// UEDecoder decodes unary-encoding round payloads of k bits.
type UEDecoder struct{ K int }

// Decode implements Decoder.
func (d UEDecoder) Decode(payload []byte, _ Registration) (Report, error) {
	rep, rest, err := DecodeUEReport(payload, d.K)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("longitudinal: %d trailing bytes in UE payload", len(rest))
	}
	return rep, nil
}

// GRRDecoder decodes scalar GRR round payloads over [0..k).
type GRRDecoder struct{ K int }

// Decode implements Decoder.
func (d GRRDecoder) Decode(payload []byte, _ Registration) (Report, error) {
	rep, rest, err := DecodeGRRValueReport(payload, d.K)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("longitudinal: %d trailing bytes in GRR payload", len(rest))
	}
	return rep, nil
}

// DBitDecoder decodes dBitFlipPM round payloads using the user's enrolled
// sampled buckets.
type DBitDecoder struct{}

// Decode implements Decoder.
func (DBitDecoder) Decode(payload []byte, reg Registration) (Report, error) {
	if len(reg.Sampled) == 0 {
		return nil, fmt.Errorf("longitudinal: user enrolled without sampled buckets")
	}
	rep, rest, err := DecodeDBitReport(payload, reg.Sampled)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("longitudinal: %d trailing bytes in dBit payload", len(rest))
	}
	return rep, nil
}
