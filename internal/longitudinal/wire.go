package longitudinal

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/freqoracle"
)

// Wire decoding for the steady-state report formats produced by
// Report.AppendBinary. A production deployment ships registration metadata
// (hash seeds, sampled bucket indices) once at enrollment and then streams
// these fixed-size payloads every round; the decoders below are the
// server-side ingestion path and are exercised against the encoders in
// tests and benchmarks.

// DecodeUEReport reads a k-bit unary-encoding round payload.
func DecodeUEReport(src []byte, k int) (UEReport, []byte, error) {
	bits, rest, err := freqoracle.DecodeUEReport(src, k)
	if err != nil {
		return UEReport{}, nil, err
	}
	return UEReport{Bits: bits}, rest, nil
}

// DecodeGRRValueReport reads a scalar GRR round payload over [0..k).
func DecodeGRRValueReport(src []byte, k int) (GRRValueReport, []byte, error) {
	x, rest, err := freqoracle.DecodeGRRReport(src, k)
	if err != nil {
		return GRRValueReport{}, nil, err
	}
	return GRRValueReport{X: x, K: k}, rest, nil
}

// DecodeDBitReport reads a d-bit dBitFlipPM round payload. The sampled
// bucket indices are the user's registration metadata; the returned report
// aliases the given slice.
func DecodeDBitReport(src []byte, sampled []int) (DBitReport, []byte, error) {
	d := len(sampled)
	if d == 0 {
		return DBitReport{}, nil, fmt.Errorf("longitudinal: empty sampled set")
	}
	nBytes := (d + 7) / 8
	if len(src) < nBytes {
		return DBitReport{}, nil, fmt.Errorf("longitudinal: short dBit report: %d bytes, want %d",
			len(src), nBytes)
	}
	bits := make([]bool, d)
	for i := range bits {
		bits[i] = src[i/8]>>(uint(i)%8)&1 == 1
	}
	return DBitReport{Sampled: sampled, Bits: bits}, src[nBytes:], nil
}
