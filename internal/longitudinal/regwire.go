package longitudinal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Canonical binary encoding for Registration — the enrollment half of the
// wire contract. Round payloads have had a wire form since PR 2
// (Report.AppendBinary); this gives the one-time enrollment metadata one
// too, so a networked front end can carry enrollment over the same socket
// as reports. The layout is fixed-width and positional, hence canonical:
// a Registration has exactly one encoding and every valid encoding
// re-encodes to the same bytes.
//
//	u64 LE  HashSeed
//	u32 LE  len(Sampled)
//	u32 LE  Sampled[0] … Sampled[len-1]
//
// A LOLOHA user ships only the first 12 bytes (seed + zero count), a
// dBitFlipPM user seed 0 plus its sampled buckets, UE/GRR chains the
// 12-byte empty form.

// MaxRegistrationSampled caps the encoded sampled-bucket count: dBitFlipPM
// samples d ≤ b buckets and real deployments use small d, so anything past
// this bound is a malformed or hostile frame, rejected before the decoder
// allocates.
const MaxRegistrationSampled = 1 << 20

// registrationFixedBytes is the seed + count prefix every encoding carries.
const registrationFixedBytes = 8 + 4

// RegistrationWireSize returns the exact encoded size of reg.
func RegistrationWireSize(reg Registration) int {
	return registrationFixedBytes + 4*len(reg.Sampled)
}

// AppendRegistration appends the canonical encoding of reg to dst and
// returns the extended buffer. It errors (returning dst unmodified) when
// reg is not encodable: more than MaxRegistrationSampled buckets, or a
// bucket index outside [0, 2³²).
func AppendRegistration(dst []byte, reg Registration) ([]byte, error) {
	if len(reg.Sampled) > MaxRegistrationSampled {
		return dst, fmt.Errorf("longitudinal: registration has %d sampled buckets, max %d",
			len(reg.Sampled), MaxRegistrationSampled)
	}
	for i, s := range reg.Sampled {
		if s < 0 || int64(s) > math.MaxUint32 {
			return dst, fmt.Errorf("longitudinal: sampled bucket %d out of wire range: %d", i, s)
		}
	}
	dst = binary.LittleEndian.AppendUint64(dst, reg.HashSeed)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(reg.Sampled)))
	for _, s := range reg.Sampled {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s))
	}
	return dst, nil
}

// DecodeRegistration reads one canonical Registration encoding from the
// front of src, returning the registration and the remaining bytes.
// Truncated input and sampled counts above MaxRegistrationSampled are
// errors; the count is validated against the available bytes before any
// allocation, so hostile lengths cannot force a large allocation. The
// returned registration shares nothing with src.
func DecodeRegistration(src []byte) (Registration, []byte, error) {
	if len(src) < registrationFixedBytes {
		return Registration{}, nil, fmt.Errorf("longitudinal: short registration: %d bytes, want at least %d",
			len(src), registrationFixedBytes)
	}
	seed := binary.LittleEndian.Uint64(src)
	n := binary.LittleEndian.Uint32(src[8:])
	if n > MaxRegistrationSampled {
		return Registration{}, nil, fmt.Errorf("longitudinal: registration claims %d sampled buckets, max %d",
			n, MaxRegistrationSampled)
	}
	rest := src[registrationFixedBytes:]
	if uint64(len(rest)) < 4*uint64(n) {
		return Registration{}, nil, fmt.Errorf("longitudinal: short registration: %d sampled buckets need %d bytes, have %d",
			n, 4*uint64(n), len(rest))
	}
	reg := Registration{HashSeed: seed}
	if n > 0 {
		reg.Sampled = make([]int, n)
		for i := range reg.Sampled {
			reg.Sampled[i] = int(binary.LittleEndian.Uint32(rest[4*i:]))
		}
	}
	return reg, rest[4*n:], nil
}
