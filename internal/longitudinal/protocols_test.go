package longitudinal

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/domain"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// runRounds drives n clients over the value matrix values[t][u] and returns
// per-round estimates.
func runRounds(t *testing.T, p Protocol, values [][]int) [][]float64 {
	t.Helper()
	n := len(values[0])
	clients := make([]Client, n)
	for u := range clients {
		clients[u] = p.NewClient(randsrc.Derive(99, uint64(u)))
	}
	agg := p.NewAggregator()
	var out [][]float64
	for _, round := range values {
		for u, v := range round {
			agg.Add(u, clients[u].Report(v))
		}
		out = append(out, agg.EndRound())
	}
	return out
}

// staticValues builds τ identical rounds of a skewed assignment over [0..k).
func staticValues(n, k, tau int) [][]int {
	row := make([]int, n)
	for u := range row {
		// Heavily skewed: half the users at 0, then spread.
		switch {
		case u < n/2:
			row[u] = 0
		case u < 3*n/4:
			row[u] = 1 % k
		default:
			row[u] = u % k
		}
	}
	values := make([][]int, tau)
	for t := range values {
		values[t] = row
	}
	return values
}

func protocolsUnderTest(t *testing.T, k int, epsInf, eps1 float64) []Protocol {
	t.Helper()
	rappor, err := NewRAPPOR(k, epsInf, eps1)
	if err != nil {
		t.Fatal(err)
	}
	losue, err := NewLOSUE(k, epsInf, eps1)
	if err != nil {
		t.Fatal(err)
	}
	lgrr, err := NewLGRR(k, epsInf, eps1)
	if err != nil {
		t.Fatal(err)
	}
	dbit, err := NewDBitFlipPM(k, k, k, epsInf) // b = k, d = b
	if err != nil {
		t.Fatal(err)
	}
	return []Protocol{rappor, losue, lgrr, dbit}
}

func TestProtocolsEstimateStaticHistogram(t *testing.T) {
	const k, n, tau = 8, 20000, 3
	values := staticValues(n, k, tau)
	truth := domain.TrueFrequencies(values[0], k)
	for _, p := range protocolsUnderTest(t, k, 3.0, 1.5) {
		ests := runRounds(t, p, values)
		for round, est := range ests {
			if len(est) != k {
				t.Fatalf("%s: estimate length %d, want %d", p.Name(), len(est), k)
			}
			for v := 0; v < k; v++ {
				if math.Abs(est[v]-truth[v]) > 0.05 {
					t.Errorf("%s round %d: est[%d] = %v, truth %v",
						p.Name(), round, v, est[v], truth[v])
				}
			}
		}
	}
}

func TestMemoizationStableAcrossRounds(t *testing.T) {
	// Without the IRR step the memoized response would be constant; with
	// it, the *distribution* is constant. Here we check the PRR layer
	// directly: the same client reporting the same value twice must reuse
	// the same memoized basis. For dBitFlipPM (no IRR) the full report
	// must be bit-identical.
	dbit, err := NewDBitFlipPM(100, 10, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cl := dbit.NewClient(42)
	first := cl.Report(33).(DBitReport)
	for i := 0; i < 20; i++ {
		rep := cl.Report(33).(DBitReport)
		if !rep.Equal(first) {
			t.Fatal("dBitFlipPM re-randomized a memoized value")
		}
	}
	// Values in the same bucket share the memoized response.
	same := cl.Report(34).(DBitReport) // bucket(33)==bucket(34) for k=100,b=10
	if !same.Equal(first) {
		t.Error("values in one bucket produced different memoized responses")
	}
}

func TestChainUEPRRMemoizationViaPRF(t *testing.T) {
	p, err := NewRAPPOR(16, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(7).(*chainUEClient)
	for i := 0; i < 16; i++ {
		a := cl.prrBit(3, i)
		for rep := 0; rep < 5; rep++ {
			if cl.prrBit(3, i) != a {
				t.Fatal("PRR bit changed between invocations")
			}
		}
	}
}

func TestChainUEPRRBitBias(t *testing.T) {
	// Across many clients, the memoized PRR bit at the one-hot position
	// must be 1 with probability p1, elsewhere q1.
	p, err := NewRAPPOR(4, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	params := p.Params()
	const trials = 50000
	onesHot, onesCold := 0, 0
	for s := 0; s < trials; s++ {
		cl := p.NewClient(uint64(s)).(*chainUEClient)
		if cl.prrBit(2, 2) {
			onesHot++
		}
		if cl.prrBit(2, 0) {
			onesCold++
		}
	}
	if got := float64(onesHot) / trials; math.Abs(got-params.P1) > 0.01 {
		t.Errorf("hot PRR bit rate %v, want %v", got, params.P1)
	}
	if got := float64(onesCold) / trials; math.Abs(got-params.Q1) > 0.01 {
		t.Errorf("cold PRR bit rate %v, want %v", got, params.Q1)
	}
}

func TestPrivacyLedgerRAPPORCountsDistinctValues(t *testing.T) {
	p, err := NewRAPPOR(50, 1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(1)
	seq := []int{5, 5, 5, 9, 5, 9, 30, 5}
	wantUnits := []int{1, 1, 1, 2, 2, 2, 3, 3}
	for i, v := range seq {
		cl.Report(v)
		want := float64(wantUnits[i]) * 1.0
		if got := cl.PrivacySpent(); math.Abs(got-want) > 1e-12 {
			t.Errorf("after %d reports: spent %v, want %v", i+1, got, want)
		}
	}
}

func TestPrivacyLedgerLGRRCapsAtK(t *testing.T) {
	const k = 6
	p, err := NewLGRR(k, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(1)
	for v := 0; v < k; v++ {
		cl.Report(v)
		cl.Report(v)
	}
	if got, want := cl.PrivacySpent(), float64(k)*2.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("spent %v, want cap %v", got, want)
	}
}

func TestPrivacyLedgerDBitStates(t *testing.T) {
	// With d = 1 the ledger can hold at most 2 states (the sampled bucket
	// and "other") no matter how wildly the value changes.
	p, err := NewDBitFlipPM(100, 10, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(3)
	r := randsrc.NewSeeded(4)
	for i := 0; i < 200; i++ {
		cl.Report(r.Intn(100))
	}
	if got := cl.PrivacySpent(); got > 2*1.5+1e-12 {
		t.Errorf("1BitFlipPM spent %v, cap is 2ε∞ = 3", got)
	}
	// With d = b the ledger tracks distinct buckets, up to b.
	p2, err := NewDBitFlipPM(100, 10, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := p2.NewClient(3)
	for v := 0; v < 100; v++ {
		cl2.Report(v)
	}
	if got, want := cl2.PrivacySpent(), 10*1.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("bBitFlipPM spent %v, want %v", got, want)
	}
}

func TestDBitFlipSampledBucketsFixed(t *testing.T) {
	p, err := NewDBitFlipPM(60, 12, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(9)
	first := cl.Report(0).(DBitReport)
	for i := 1; i < 30; i++ {
		rep := cl.Report(i % 60).(DBitReport)
		for l := range rep.Sampled {
			if rep.Sampled[l] != first.Sampled[l] {
				t.Fatal("sampled buckets changed across rounds")
			}
		}
	}
	// Sampled buckets must be d distinct values in [0..b).
	seen := map[int]bool{}
	for _, j := range first.Sampled {
		if j < 0 || j >= 12 || seen[j] {
			t.Fatalf("bad sampled set %v", first.Sampled)
		}
		seen[j] = true
	}
}

func TestDBitFlipEstimatesBuckets(t *testing.T) {
	// bBitFlipPM over a static distribution: bucket estimates must match
	// the folded truth.
	const k, b, n = 40, 8, 30000
	p, err := NewDBitFlipPM(k, b, b, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]int, n)
	for u := range row {
		row[u] = (u * 7) % k
	}
	truth := p.Bucketizer().FoldFrequencies(domain.TrueFrequencies(row, k))
	ests := runRounds(t, p, [][]int{row})
	for j := 0; j < b; j++ {
		if math.Abs(ests[0][j]-truth[j]) > 0.05 {
			t.Errorf("bucket %d: est %v, truth %v", j, ests[0][j], truth[j])
		}
	}
}

func TestLGRRReportsStayInDomain(t *testing.T) {
	p, err := NewLGRR(12, 2.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(5)
	for i := 0; i < 500; i++ {
		rep := cl.Report(i % 12).(GRRValueReport)
		if rep.X < 0 || rep.X >= 12 {
			t.Fatalf("report %d outside domain", rep.X)
		}
	}
}

func TestIRRFreshAcrossRounds(t *testing.T) {
	// The IRR step must re-randomize: a RAPPOR client reporting the same
	// value many times should not emit identical bit vectors (that's the
	// whole defense against change detection).
	p, err := NewRAPPOR(64, 2.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(11)
	first := cl.Report(7).(UEReport)
	distinct := false
	for i := 0; i < 10 && !distinct; i++ {
		if !cl.Report(7).(UEReport).Bits.Equal(first.Bits) {
			distinct = true
		}
	}
	if !distinct {
		t.Error("10 IRR rounds produced identical reports; IRR looks frozen")
	}
}

func TestAggregatorRejectsForeignReports(t *testing.T) {
	rappor, _ := NewRAPPOR(8, 2, 1)
	lgrr, _ := NewLGRR(8, 2, 1)
	agg := rappor.NewAggregator()
	rep := lgrr.NewClient(1).Report(0)
	defer func() {
		if recover() == nil {
			t.Fatal("UE aggregator accepted a GRR report")
		}
	}()
	agg.Add(0, rep)
}

func TestEndRoundResetsState(t *testing.T) {
	p, _ := NewLGRR(4, 2, 1)
	agg := p.NewAggregator()
	cl := p.NewClient(1)
	agg.Add(0, cl.Report(2))
	_ = agg.EndRound()
	// Second round with no reports: estimates are all-zero, not NaN.
	est := agg.EndRound()
	if len(est) != 4 {
		t.Fatalf("estimate length %d after empty round", len(est))
	}
	for v, e := range est {
		if e != 0 {
			t.Errorf("empty round estimate[%d] = %v, want 0", v, e)
		}
	}
	// Same guarantee for the bucket-domain aggregator.
	dbit, _ := NewDBitFlipPM(10, 5, 2, 1)
	if got := dbit.NewAggregator().EndRound(); len(got) != 5 || got[0] != 0 {
		t.Errorf("dBit empty round: %v", got)
	}
}

func TestReportEncodingSizes(t *testing.T) {
	// Table 1 comm column, measured: UE = k bits; L-GRR = ⌈log2 k⌉ bits;
	// dBitFlipPM = d bits (all byte-aligned in our wire format).
	const k = 360
	rappor, _ := NewRAPPOR(k, 2, 1)
	if got := len(rappor.NewClient(1).Report(0).AppendBinary(nil)); got != (k+7)/8 {
		t.Errorf("RAPPOR report %d bytes, want %d", got, (k+7)/8)
	}
	lgrr, _ := NewLGRR(k, 2, 1)
	if got := len(lgrr.NewClient(1).Report(0).AppendBinary(nil)); got != 2 {
		t.Errorf("L-GRR report %d bytes, want 2", got)
	}
	dbit, _ := NewDBitFlipPM(k, 90, 4, 2)
	if got := len(dbit.NewClient(1).Report(0).AppendBinary(nil)); got != 1 {
		t.Errorf("dBit report %d bytes, want 1", got)
	}
}

func TestSteadyReportBits(t *testing.T) {
	rappor, _ := NewRAPPOR(360, 2, 1)
	if rappor.SteadyReportBits() != 360 {
		t.Errorf("RAPPOR bits = %d, want 360", rappor.SteadyReportBits())
	}
	lgrr, _ := NewLGRR(360, 2, 1)
	if lgrr.SteadyReportBits() != 9 {
		t.Errorf("L-GRR bits = %d, want 9", lgrr.SteadyReportBits())
	}
	dbit, _ := NewDBitFlipPM(360, 90, 7, 2)
	if dbit.SteadyReportBits() != 7 {
		t.Errorf("dBit bits = %d, want 7", dbit.SteadyReportBits())
	}
}

func TestProtocolMetadata(t *testing.T) {
	d1, _ := NewDBitFlipPM(100, 20, 1, 1)
	if d1.Name() != "1BitFlipPM" {
		t.Errorf("name %q", d1.Name())
	}
	db, _ := NewDBitFlipPM(100, 20, 20, 1)
	if db.Name() != "bBitFlipPM" {
		t.Errorf("name %q", db.Name())
	}
	dm, _ := NewDBitFlipPM(100, 20, 5, 1)
	if dm.Name() != "5BitFlipPM" {
		t.Errorf("name %q", dm.Name())
	}
	if d1.K() != 100 || d1.B() != 20 || d1.D() != 1 {
		t.Error("metadata accessors wrong")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewRAPPOR(1, 2, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewLGRR(10, 1, 2); err == nil {
		t.Error("eps1 > epsInf accepted")
	}
	if _, err := NewDBitFlipPM(10, 5, 0, 1); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewDBitFlipPM(10, 5, 6, 1); err == nil {
		t.Error("d>b accepted")
	}
	if _, err := NewDBitFlipPM(10, 5, 2, 0); err == nil {
		t.Error("eps=0 accepted")
	}
}
