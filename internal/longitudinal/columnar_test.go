package longitudinal

import (
	"bytes"
	"encoding/binary"
	"slices"
	"testing"
)

// buildColumnar encodes one batch of (id, payload[, reg]) triples through
// the writer, failing the test on any writer error.
func buildColumnar(t *testing.T, specHash uint64, stride int, round uint32, ids []int, payloads [][]byte, regs []Registration, d int) []byte {
	t.Helper()
	w, err := NewColumnarWriter(specHash, stride)
	if err != nil {
		t.Fatalf("NewColumnarWriter: %v", err)
	}
	w.SetRound(round)
	if regs != nil {
		if err := w.WithRegistrations(d); err != nil {
			t.Fatalf("WithRegistrations(%d): %v", d, err)
		}
	}
	for i, id := range ids {
		if regs != nil {
			err = w.AddWithRegistration(id, payloads[i], regs[i])
		} else {
			err = w.Add(id, payloads[i])
		}
		if err != nil {
			t.Fatalf("add report %d: %v", i, err)
		}
	}
	if got := w.Count(); got != len(ids) {
		t.Fatalf("Count() = %d, want %d", got, len(ids))
	}
	enc := w.AppendTo(nil)
	if got := w.EncodedSize(); got != len(enc) {
		t.Fatalf("EncodedSize() = %d, encoded %d bytes", got, len(enc))
	}
	return enc
}

func TestColumnarRoundTrip(t *testing.T) {
	// Non-monotonic IDs exercise negative deltas; stride-3 payloads make
	// off-by-one cell slicing visible.
	ids := []int{40, 7, 7_000_000, 0, 41}
	payloads := make([][]byte, len(ids))
	regs := make([]Registration, len(ids))
	for i := range ids {
		payloads[i] = []byte{byte(i), byte(i * 3), byte(0xF0 | i)}
		regs[i] = Registration{HashSeed: uint64(1000 + i), Sampled: []int{i, i + 7}}
	}

	for _, withRegs := range []bool{false, true} {
		name := "plain"
		r := []Registration(nil)
		if withRegs {
			name, r = "with-registrations", regs
		}
		t.Run(name, func(t *testing.T) {
			enc := buildColumnar(t, 0xfeed, 3, 9, ids, payloads, r, 2)
			var b ColumnarBatch
			if err := DecodeColumnar(enc, &b); err != nil {
				t.Fatalf("DecodeColumnar: %v", err)
			}
			if b.SpecHash != 0xfeed || b.Round != 9 || b.Stride != 3 {
				t.Fatalf("header = (%#x, %d, %d), want (0xfeed, 9, 3)", b.SpecHash, b.Round, b.Stride)
			}
			if b.Count() != len(ids) || !slices.Equal(b.IDs, ids) {
				t.Fatalf("IDs = %v, want %v", b.IDs, ids)
			}
			if b.HasRegistrations() != withRegs {
				t.Fatalf("HasRegistrations() = %v, want %v", b.HasRegistrations(), withRegs)
			}
			for i := range ids {
				if !bytes.Equal(b.Payload(i), payloads[i]) {
					t.Fatalf("payload %d = %x, want %x", i, b.Payload(i), payloads[i])
				}
				if withRegs {
					got := b.Registration(i)
					if got.HashSeed != regs[i].HashSeed || !slices.Equal(got.Sampled, regs[i].Sampled) {
						t.Fatalf("registration %d = %+v, want %+v", i, got, regs[i])
					}
				}
			}
		})
	}
}

// TestColumnarWriterReuse pins the writer's reuse contract: Reset keeps
// configuration and capacity, and an identical batch re-encodes to
// identical bytes.
func TestColumnarWriterReuse(t *testing.T) {
	w, err := NewColumnarWriter(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	encode := func() []byte {
		for u := 0; u < 10; u++ {
			if err := w.Add(u*3, []byte{byte(u), byte(u + 1)}); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		enc := w.AppendTo(nil)
		w.Reset()
		return enc
	}
	first := encode()
	second := encode()
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encoded batch differs after Reset")
	}
	// A decode target reused across batches of different sizes must not
	// leak rows from the earlier, larger batch.
	var b ColumnarBatch
	if err := DecodeColumnar(first, &b); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(5, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := DecodeColumnar(w.AppendTo(nil), &b); err != nil {
		t.Fatal(err)
	}
	if b.Count() != 1 || b.IDs[0] != 5 {
		t.Fatalf("reused decode target holds %d rows (IDs %v), want 1 row [5]", b.Count(), b.IDs)
	}
}

func TestColumnarWriterErrors(t *testing.T) {
	if _, err := NewColumnarWriter(0, 0); err == nil {
		t.Error("NewColumnarWriter accepted stride 0")
	}
	w, _ := NewColumnarWriter(0, 2)
	if err := w.Add(-1, []byte{1, 2}); err == nil {
		t.Error("Add accepted a negative user ID")
	}
	if err := w.Add(1, []byte{1}); err == nil {
		t.Error("Add accepted a payload shorter than the stride")
	}
	if err := w.AddWithRegistration(1, []byte{1, 2}, Registration{}); err == nil {
		t.Error("AddWithRegistration accepted on a writer without registration columns")
	}
	if err := w.Add(1, []byte{1, 2}); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := w.WithRegistrations(1); err == nil {
		t.Error("WithRegistrations accepted after reports were added")
	}

	wr, _ := NewColumnarWriter(0, 2)
	if err := wr.WithRegistrations(2); err != nil {
		t.Fatal(err)
	}
	if err := wr.Add(1, []byte{1, 2}); err == nil {
		t.Error("Add accepted on a writer with registration columns")
	}
	if err := wr.AddWithRegistration(1, []byte{1, 2}, Registration{Sampled: []int{3}}); err == nil {
		t.Error("AddWithRegistration accepted a sampled set narrower than the column")
	}
	if err := wr.AddWithRegistration(1, []byte{1, 2}, Registration{Sampled: []int{3, -1}}); err == nil {
		t.Error("AddWithRegistration accepted a negative sampled bucket")
	}
}

func TestDecodeColumnarRejectsMalformed(t *testing.T) {
	valid := buildColumnar(t, 5, 2, 0, []int{1, 2, 3}, [][]byte{{1, 2}, {3, 4}, {5, 6}}, nil, 0)
	withRegs := buildColumnar(t, 5, 2, 0, []int{1, 2}, [][]byte{{1, 2}, {3, 4}},
		[]Registration{{HashSeed: 9, Sampled: []int{1}}, {HashSeed: 8, Sampled: []int{2}}}, 1)

	corrupt := func(name string, mutate func([]byte) []byte, src []byte) {
		t.Helper()
		bad := mutate(slices.Clone(src))
		var b ColumnarBatch
		if err := DecodeColumnar(bad, &b); err == nil {
			t.Errorf("%s: decode accepted the corrupted batch", name)
		}
	}
	corrupt("short header", func(b []byte) []byte { return b[:10] }, valid)
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, valid)
	corrupt("unknown flags", func(b []byte) []byte { b[24] |= 0x80; return b }, valid)
	corrupt("zero stride", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[20:], 0)
		return b
	}, valid)
	corrupt("inflated count", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[16:], 1<<30)
		return b
	}, valid)
	corrupt("truncated ID column", func(b []byte) []byte { return b[:columnarHeaderBytes+1] }, valid)
	corrupt("short payload column", func(b []byte) []byte { return b[:len(b)-1] }, valid)
	corrupt("trailing bytes", func(b []byte) []byte { return append(b, 0) }, valid)
	corrupt("truncated registration columns", func(b []byte) []byte {
		return b[:columnarHeaderBytes+2+4+8]
	}, withRegs)
	corrupt("oversize registration d", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[columnarHeaderBytes+2:], MaxRegistrationSampled+1)
		return b
	}, withRegs)

	// An empty batch is valid and decodes to zero rows.
	w, _ := NewColumnarWriter(5, 2)
	var b ColumnarBatch
	if err := DecodeColumnar(w.AppendTo(nil), &b); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if b.Count() != 0 {
		t.Fatalf("empty batch decoded to %d rows", b.Count())
	}
}

// TestSpecHash pins that the hash separates every registered family and
// parameter change, and that it is stable across builds of the same spec.
func TestSpecHash(t *testing.T) {
	specs := []ProtocolSpec{
		{Family: "LOLOHA", K: 32, G: 2, EpsInf: 2, Eps1: 1},
		{Family: "LOLOHA", K: 64, G: 2, EpsInf: 2, Eps1: 1},
		{Family: "LOLOHA", K: 32, G: 4, EpsInf: 2, Eps1: 1},
		{Family: "LOLOHA", K: 32, G: 2, EpsInf: 3, Eps1: 1},
		{Family: "BiLOLOHA", K: 32, EpsInf: 2, Eps1: 1},
		{Family: "L-OSUE", K: 32, EpsInf: 2, Eps1: 1},
		{Family: "dBitFlipPM", K: 32, B: 8, D: 3, EpsInf: 2},
	}
	seen := make(map[uint64]ProtocolSpec)
	for _, s := range specs {
		h := s.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("specs %+v and %+v share hash %#x", prev, s, h)
		}
		seen[h] = s
		if h != s.Hash() {
			t.Errorf("hash of %+v is unstable", s)
		}
	}
}

// TestColumnarStrideOf pins the stride every registered family exposes
// through its tallier: the payload sizes the clients emit.
func TestColumnarStrideOf(t *testing.T) {
	cases := []struct {
		spec   ProtocolSpec
		stride int
	}{
		{ProtocolSpec{Family: "RAPPOR", K: 20, EpsInf: 2, Eps1: 1}, 3},        // ⌈20/8⌉
		{ProtocolSpec{Family: "L-OSUE", K: 16, EpsInf: 2, Eps1: 1}, 2},        // ⌈16/8⌉
		{ProtocolSpec{Family: "L-GRR", K: 300, EpsInf: 2, Eps1: 1}, 2},        // value bytes of 300
		{ProtocolSpec{Family: "dBitFlipPM", K: 32, B: 8, D: 3, EpsInf: 2}, 1}, // ⌈3/8⌉
	}
	for _, c := range cases {
		p, err := c.spec.Build()
		if err != nil {
			t.Fatalf("Build(%+v): %v", c.spec, err)
		}
		stride, ok := ColumnarStrideOf(p)
		if !ok {
			t.Fatalf("%s: no columnar stride", c.spec.Family)
		}
		if stride != c.stride {
			t.Errorf("%s stride = %d, want %d", c.spec.Family, stride, c.stride)
		}
		// Producer and server both derive the hash from the protocol's
		// normalized spec, so SpecHashOf must agree with SpecOf's hash.
		sp, ok := SpecOf(p)
		if !ok || SpecHashOf(p) != sp.Hash() {
			t.Errorf("%s: SpecHashOf disagrees with the built spec", c.spec.Family)
		}
	}
}
