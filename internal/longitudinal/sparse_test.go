package longitudinal

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// sparseParityKs is the acceptance grid of the sparse refactor: small,
// medium and large domains.
var sparseParityKs = []int{16, 64, 1024}

// forceSamplerPath rebuilds a protocol twice with the IRR/memo sampler
// pinned to each path. Both protocols are otherwise identical, so any
// output divergence is a dense/sparse parity break.
func chainUEPair(t *testing.T, mk func() (*ChainUE, error)) (dense, sparse *ChainUE) {
	t.Helper()
	d, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	s, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	d.sampler.Sparse = false
	s.sampler.Sparse = true
	return d, s
}

func dbitPair(t *testing.T, k, b, d int, epsInf float64) (dense, sparse *DBitFlipPM) {
	t.Helper()
	mk := func() *DBitFlipPM {
		p, err := NewDBitFlipPM(k, b, d, epsInf)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	dn, sp := mk(), mk()
	dn.sampler.Sparse = false
	sp.sampler.Sparse = true
	return dn, sp
}

// valueSequence drives a client through a deterministic evolving-value
// sequence: mostly stable with occasional jumps, the paper's setting.
func valueSequence(seed uint64, k, rounds int) []int {
	r := randsrc.NewSeeded(seed)
	out := make([]int, rounds)
	v := r.Intn(k)
	for t := range out {
		if r.Float64() < 0.15 {
			v = r.Intn(k)
		}
		out[t] = v
	}
	return out
}

// TestChainUESparseDenseParity: for every chained-UE calibration and
// domain size, a dense-pinned and a sparse-pinned protocol with identical
// seeds must emit bit-identical reports — through AppendReport, through
// the boxed Report path, and across both — and identical estimates.
func TestChainUESparseDenseParity(t *testing.T) {
	chains := map[string]func(k int) (*ChainUE, error){
		"RAPPOR": func(k int) (*ChainUE, error) { return NewRAPPOR(k, 2, 1) },
		"L-OSUE": func(k int) (*ChainUE, error) { return NewLOSUE(k, 2, 1) },
		"L-OUE":  func(k int) (*ChainUE, error) { return NewLOUE(k, 2, 0.4) },
		"L-SOUE": func(k int) (*ChainUE, error) { return NewLSOUE(k, 2, 0.4) },
	}
	const users, rounds = 16, 6
	for name, mk := range chains {
		for _, k := range sparseParityKs {
			t.Run(fmt.Sprintf("%s/k=%d", name, k), func(t *testing.T) {
				dense, sparse := chainUEPair(t, func() (*ChainUE, error) { return mk(k) })
				aggD, aggS := dense.NewAggregator(), sparse.NewAggregator()
				for u := 0; u < users; u++ {
					seed := randsrc.Derive(77, uint64(u))
					clD := dense.NewClient(seed).(*chainUEClient)
					clS := sparse.NewClient(seed).(*chainUEClient)
					var bufD, bufS []byte
					for _, v := range valueSequence(uint64(u), k, rounds) {
						bufD = clD.AppendReport(bufD[:0], v)
						bufS = clS.AppendReport(bufS[:0], v)
						if !bytes.Equal(bufD, bufS) {
							t.Fatalf("user %d value %d: dense %x != sparse %x", u, v, bufD, bufS)
						}
						aggD.Add(u, UEDecoder{K: k}.mustDecode(t, bufD))
						aggS.Add(u, UEDecoder{K: k}.mustDecode(t, bufS))
					}
				}
				if !equalFloats(aggD.EndRound(), aggS.EndRound()) {
					t.Fatal("dense and sparse estimates diverged")
				}
			})
		}
	}
}

// mustDecode decodes one payload or fails the test.
func (d UEDecoder) mustDecode(t *testing.T, payload []byte) Report {
	t.Helper()
	rep, err := d.Decode(payload, Registration{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestChainUEReportMatchesAppendReport: the boxed Report path and
// AppendReport must emit identical bytes for identical client state.
func TestChainUEReportMatchesAppendReport(t *testing.T) {
	for _, k := range sparseParityKs {
		p, err := NewLOSUE(k, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		clA := p.NewClient(11)
		clB := p.NewClient(11)
		var buf []byte
		for t2 := 0; t2 < 8; t2++ {
			v := (t2 * 3) % k
			boxed := clA.Report(v).AppendBinary(nil)
			buf = clB.(AppendReporter).AppendReport(buf[:0], v)
			if !bytes.Equal(boxed, buf) {
				t.Fatalf("k=%d round %d: Report %x != AppendReport %x", k, t2, boxed, buf)
			}
		}
	}
}

// TestDBitSparseDenseParity: dense- and sparse-pinned dBitFlipPM must
// memoize identical responses (reports AND estimates), for d spanning the
// 1-bit, partial and full-bucket cases.
func TestDBitSparseDenseParity(t *testing.T) {
	for _, k := range sparseParityKs {
		b := k / 4
		for _, d := range []int{1, b / 2, b} {
			if d < 1 {
				continue
			}
			t.Run(fmt.Sprintf("k=%d/d=%d", k, d), func(t *testing.T) {
				dense, sparse := dbitPair(t, k, b, d, 2)
				aggD, aggS := dense.NewAggregator(), sparse.NewAggregator()
				for u := 0; u < 32; u++ {
					seed := randsrc.Derive(99, uint64(u))
					clD := dense.NewClient(seed).(*dBitClient)
					clS := sparse.NewClient(seed).(*dBitClient)
					var bufD, bufS []byte
					for _, v := range valueSequence(uint64(u)+1, k, 5) {
						bufD = clD.AppendReport(bufD[:0], v)
						bufS = clS.AppendReport(bufS[:0], v)
						if !bytes.Equal(bufD, bufS) {
							t.Fatalf("user %d value %d: dense %x != sparse %x", u, v, bufD, bufS)
						}
						aggD.Add(u, clD.Report(v))
						aggS.Add(u, clS.Report(v))
					}
				}
				if !equalFloats(aggD.EndRound(), aggS.EndRound()) {
					t.Fatal("dense and sparse estimates diverged")
				}
			})
		}
	}
}

// TestDBitReportMatchesAppendReport: the packed AppendReport payload must
// byte-match the boxed DBitReport serialization.
func TestDBitReportMatchesAppendReport(t *testing.T) {
	p, err := NewDBitFlipPM(64, 16, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.NewClient(5)
	ar := cl.(AppendReporter)
	var buf []byte
	for v := 0; v < 64; v += 7 {
		boxed := cl.Report(v).AppendBinary(nil)
		buf = ar.AppendReport(buf[:0], v)
		if !bytes.Equal(boxed, buf) {
			t.Fatalf("value %d: Report %x != AppendReport %x", v, boxed, buf)
		}
	}
}

// TestLGRRReportMatchesAppendReport: same-seed clients on the two paths
// must emit identical wire bytes (the scalar families have no dense/sparse
// split; parity here is boxed-vs-append).
func TestLGRRReportMatchesAppendReport(t *testing.T) {
	for _, k := range sparseParityKs {
		p, err := NewLGRR(k, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		clA, clB := p.NewClient(13), p.NewClient(13)
		ar := clB.(AppendReporter)
		var buf []byte
		for i := 0; i < 20; i++ {
			v := (i * 5) % k
			boxed := clA.Report(v).AppendBinary(nil)
			buf = ar.AppendReport(buf[:0], v)
			if !bytes.Equal(boxed, buf) {
				t.Fatalf("k=%d round %d: Report %x != AppendReport %x", k, i, boxed, buf)
			}
		}
	}
}

// TestCollectorTallyDirectMatchesAddPath: a collector routed through
// AppendReport + WireTallier must produce bit-identical estimates to the
// Report/Add path, per family and shard count — the gate for switching
// simulation.Replay/RunMSE and Stream.Collect onto the wire fast path.
func TestCollectorTallyDirectMatchesAddPath(t *testing.T) {
	const k, n, rounds = 24, 300, 4
	protos := map[string]Protocol{}
	if p, err := NewRAPPOR(k, 2, 1); err == nil {
		protos["RAPPOR"] = p
	}
	if p, err := NewLGRR(k, 2, 1); err == nil {
		protos["L-GRR"] = p
	}
	if p, err := NewDBitFlipPM(k, 8, 3, 2); err == nil {
		protos["dBitFlipPM"] = p
	}
	for name, proto := range protos {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				mkClients := func() []Client {
					cls := make([]Client, n)
					for u := range cls {
						cls[u] = proto.NewClient(randsrc.Derive(7, uint64(u)))
					}
					return cls
				}
				plain := NewShardedCollector(proto.NewAggregator(), n, shards)
				wired := NewShardedCollector(proto.NewAggregator(), n, shards)
				wired.EnableTallyDirect(proto.(TallyProtocol).WireTallier())
				clP, clW := mkClients(), mkClients()
				values := make([]int, n)
				for round := 0; round < rounds; round++ {
					for u := range values {
						values[u] = (u + round*3) % k
					}
					estP, err := plain.Collect(clP, values)
					if err != nil {
						t.Fatal(err)
					}
					estW, err := wired.Collect(clW, values)
					if err != nil {
						t.Fatal(err)
					}
					if !equalFloats(estP, estW) {
						t.Fatalf("round %d: tally-direct estimates diverged from Add path", round)
					}
				}
			})
		}
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
