package longitudinal

import (
	"fmt"
	"math"

	"github.com/loloha-ldp/loloha/internal/freqoracle"
	"github.com/loloha-ldp/loloha/internal/privacy"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// LGRR is the L-GRR protocol (§2.4.3): GRR chained in both the PRR and IRR
// steps over the full domain [0..k). Optimal for small k; its variance
// degrades quickly as k grows (which Fig. 3 shows).
type LGRR struct {
	k            int
	epsInf, eps1 float64
	epsIRR       float64
	prr          *freqoracle.GRR // ε∞ over k
	irr          *freqoracle.GRR // ε_IRR over k
	params       ChainParams
}

// Fast-path contracts (wirecontract).
var (
	_ SpecProtocol   = (*LGRR)(nil)
	_ TallyProtocol  = (*LGRR)(nil)
	_ AppendReporter = (*lgrrClient)(nil)
)

// NewLGRR returns the L-GRR protocol for domain size k with longitudinal
// budget epsInf and first-report budget eps1.
func NewLGRR(k int, epsInf, eps1 float64) (*LGRR, error) {
	if k < 2 {
		return nil, fmt.Errorf("longitudinal: L-GRR needs k >= 2, got %d", k)
	}
	epsIRR, err := EpsIRR(epsInf, eps1)
	if err != nil {
		return nil, err
	}
	prr, err := freqoracle.NewGRR(k, epsInf)
	if err != nil {
		return nil, err
	}
	irr, err := freqoracle.NewGRR(k, epsIRR)
	if err != nil {
		return nil, err
	}
	return &LGRR{
		k:      k,
		epsInf: epsInf,
		eps1:   eps1,
		epsIRR: epsIRR,
		prr:    prr,
		irr:    irr,
		params: ChainParams{
			P1: prr.Params().P, Q1: prr.Params().Q,
			P2: irr.Params().P, Q2: irr.Params().Q,
		},
	}, nil
}

// Name implements Protocol.
func (m *LGRR) Name() string { return "L-GRR" }

// K implements Protocol.
func (m *LGRR) K() int { return m.k }

// Params returns the calibrated chain probabilities.
func (m *LGRR) Params() ChainParams { return m.params }

// EpsIRR returns the instantaneous-round budget derived from (ε∞, ε1).
func (m *LGRR) EpsIRR() float64 { return m.epsIRR }

// ApproxVariance returns Eq. (5) for this chain with n users.
func (m *LGRR) ApproxVariance(n int) float64 { return m.params.ApproxVariance(n) }

// SteadyReportBits implements Protocol: one value in [0..k) per round.
func (m *LGRR) SteadyReportBits() int {
	return int(math.Ceil(math.Log2(float64(m.k))))
}

// WireDecoder implements WireProtocol.
func (m *LGRR) WireDecoder() Decoder { return GRRDecoder{K: m.k} }

// Spec implements SpecProtocol.
func (m *LGRR) Spec() ProtocolSpec {
	return ProtocolSpec{Family: "L-GRR", K: m.k, EpsInf: m.epsInf, Eps1: m.eps1}
}

// NewClient implements Protocol.
func (m *LGRR) NewClient(seed uint64) Client {
	return &lgrrClient{
		proto:  m,
		seed:   seed,
		rng:    randsrc.NewSeeded(randsrc.Derive(seed, 0x16E1)),
		ledger: privacy.NewLedger(m.epsInf, m.k),
	}
}

type lgrrClient struct {
	proto  *LGRR
	seed   uint64
	rng    *randsrc.Rand
	ledger *privacy.Ledger
}

// reportValue runs one round: memoized PRR (a PRF of the value) then a
// fresh IRR round, charging the ledger.
//
//loloha:noalloc
func (cl *lgrrClient) reportValue(v int) int {
	cl.Charge(v)
	memo := cl.proto.prr.PerturbWord(v,
		randsrc.Derive(cl.seed, uint64(v), 1),
		randsrc.Derive(cl.seed, uint64(v), 2))
	return cl.proto.irr.Perturb(memo, cl.rng)
}

// Report implements Client.
func (cl *lgrrClient) Report(v int) Report {
	return GRRValueReport{X: cl.reportValue(v), K: cl.proto.k}
}

// AppendReport implements AppendReporter: the sanitized value straight
// into wire bytes, no boxed report.
//
//loloha:noalloc
func (cl *lgrrClient) AppendReport(dst []byte, v int) []byte {
	return freqoracle.AppendGRRReport(dst, cl.reportValue(v), cl.proto.k)
}

// WireRegistration implements AppendReporter: L-GRR needs no enrollment
// metadata.
func (cl *lgrrClient) WireRegistration() Registration { return Registration{} }

// Charge implements Client.
//
//loloha:noalloc
func (cl *lgrrClient) Charge(v int) {
	if v < 0 || v >= cl.proto.k {
		panic(fmt.Sprintf("longitudinal: L-GRR value %d outside [0,%d)", v, cl.proto.k))
	}
	cl.ledger.Charge(v)
}

// PrivacySpent implements Client.
func (cl *lgrrClient) PrivacySpent() float64 { return cl.ledger.Spent() }

// GRRValueReport is a scalar report over the domain [0..K); K fixes the
// wire-encoding width.
type GRRValueReport struct {
	X int
	K int
}

// AppendBinary implements Report.
func (r GRRValueReport) AppendBinary(dst []byte) []byte {
	return freqoracle.AppendGRRReport(dst, r.X, r.K)
}

type lgrrAggregator struct {
	proto  *LGRR
	counts []int64
	n      int
}

// NewAggregator implements Protocol.
func (m *LGRR) NewAggregator() Aggregator {
	return &lgrrAggregator{proto: m, counts: make([]int64, m.k)}
}

// Add implements Aggregator.
func (a *lgrrAggregator) Add(userID int, rep Report) {
	g, ok := rep.(GRRValueReport)
	if !ok {
		panic(fmt.Sprintf("longitudinal: L-GRR aggregator got %T", rep))
	}
	if g.X < 0 || g.X >= a.proto.k {
		panic(fmt.Sprintf("longitudinal: L-GRR report %d outside [0,%d)", g.X, a.proto.k))
	}
	a.counts[g.X]++
	a.n++
}

// Fork implements MergeableAggregator.
func (a *lgrrAggregator) Fork() Aggregator {
	return a.proto.NewAggregator()
}

// Merge implements MergeableAggregator.
func (a *lgrrAggregator) Merge(other Aggregator) {
	o, ok := other.(*lgrrAggregator)
	if !ok || o.proto != a.proto {
		panic(fmt.Sprintf("longitudinal: L-GRR aggregator cannot merge %T", other))
	}
	MergeCounts(a.counts, o.counts)
	a.n += o.n
	o.n = 0
}

// EndRound implements Aggregator.
func (a *lgrrAggregator) EndRound() []float64 {
	est := a.proto.params.EstimateAllL(a.counts, a.n)
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.n = 0
	return est
}

// EstimateDomain implements Aggregator.
func (a *lgrrAggregator) EstimateDomain() int { return a.proto.k }
