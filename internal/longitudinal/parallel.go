package longitudinal

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultShards returns the default collection parallelism: one shard per
// available CPU.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// ShardedCollector drives collection rounds over a fixed-size cohort,
// partitioned into contiguous user shards that report and tally on their
// own goroutines. Results are bit-identical to a serial collection for any
// shard count: per-user randomness lives in each Client, users keep their
// shard across rounds, and shard tallies are integer counts merged before
// estimation.
//
// When the protocol's aggregator does not implement MergeableAggregator
// the collector transparently falls back to a single serial shard.
type ShardedCollector struct {
	agg    Aggregator   // merge target; sole tally when serial
	forks  []Aggregator // per-shard forks (empty when serial)
	bounds []int        // len(forks)+1 offsets partitioning [0..n)
	n      int
	// tallier, when set via EnableTallyDirect, routes collection through
	// the protocol's wire fast path: clients that implement AppendReporter
	// emit payload bytes into bufs (one reusable buffer per shard) and the
	// tallier bumps shard tallies in place — no bitset, no boxed Report,
	// zero steady-state allocations per report.
	tallier WireTallier
	bufs    [][]byte
}

// NewShardedCollector partitions n users into at most shards contiguous
// blocks tallied by forks of agg. shards <= 1 — including any negative
// value — or a non-mergeable agg selects the serial path; shards is
// clamped to n. Callers that want to reject negative shard counts (the
// public constructors do) must validate before constructing.
func NewShardedCollector(agg Aggregator, n, shards int) *ShardedCollector {
	c := &ShardedCollector{agg: agg, n: n}
	if shards > n {
		shards = n
	}
	ma, mergeable := agg.(MergeableAggregator)
	if shards <= 1 || !mergeable {
		return c
	}
	c.forks = make([]Aggregator, shards)
	c.bounds = make([]int, shards+1)
	for i := range c.forks {
		c.forks[i] = ma.Fork()
		c.bounds[i] = i * n / shards
	}
	c.bounds[shards] = n
	return c
}

// EnableTallyDirect routes collection rounds through the protocol's wire
// fast path: each user's report is emitted with AppendReport into a
// per-shard reusable buffer and tallied in place by t, composing the
// allocation-free generate path with tally-direct ingestion. Clients that
// do not implement AppendReporter fall back to Report/Add per user.
// Estimates are bit-identical on either path — AppendReport emits exactly
// the bytes Report would serialize, and the tallier bumps the same integer
// tallies Add would.
func (c *ShardedCollector) EnableTallyDirect(t WireTallier) {
	c.tallier = t
	if c.bufs == nil {
		n := len(c.forks)
		if n == 0 {
			n = 1
		}
		c.bufs = make([][]byte, n)
	}
}

// Shards returns the effective parallelism (1 on the serial path).
func (c *ShardedCollector) Shards() int {
	if len(c.forks) == 0 {
		return 1
	}
	return len(c.forks)
}

// Aggregator returns the merge target (the aggregator the collector was
// constructed with).
func (c *ShardedCollector) Aggregator() Aggregator { return c.agg }

// Collect runs one collection round: clients[u].Report(values[u]) is
// tallied for every user u and the round's estimates returned. clients and
// values must have the length the collector was constructed for.
func (c *ShardedCollector) Collect(clients []Client, values []int) ([]float64, error) {
	if err := c.Tally(clients, values); err != nil {
		return nil, err
	}
	return c.agg.EndRound(), nil
}

// Tally is Collect without the round finalization: every report lands in
// the collector's merge target but EndRound is left to the caller, so
// collector tallies can share a round with reports added to the target
// through other paths (the Stream service mixes wire ingestion and cohort
// collection this way).
func (c *ShardedCollector) Tally(clients []Client, values []int) error {
	if len(clients) != c.n || len(values) != c.n {
		return fmt.Errorf("longitudinal: sharded collector built for %d users, got %d clients / %d values",
			c.n, len(clients), len(values))
	}
	if len(c.forks) == 0 {
		c.tallyRange(c.agg, 0, clients, values, 0, c.n)
		return nil
	}
	// Client/aggregator panics (caller bugs like out-of-range values) are
	// re-raised on the caller's stack, so sharding keeps the serial path's
	// failure mode instead of crashing the process from a worker.
	panics := make([]any, len(c.forks))
	var wg sync.WaitGroup
	for i, fork := range c.forks {
		wg.Add(1)
		go func(i int, fork Aggregator, lo, hi int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			c.tallyRange(fork, i, clients, values, lo, hi)
		}(i, fork, c.bounds[i], c.bounds[i+1])
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	ma := c.agg.(MergeableAggregator)
	for _, fork := range c.forks {
		ma.Merge(fork)
	}
	return nil
}

// tallyRange tallies users [lo..hi) into agg. shard indexes the reusable
// wire buffer on the tally-direct path; each shard (and the serial path's
// index 0) is owned by exactly one goroutine per round, so buffers are
// contention-free.
func (c *ShardedCollector) tallyRange(agg Aggregator, shard int, clients []Client, values []int, lo, hi int) {
	if c.tallier == nil {
		for u := lo; u < hi; u++ {
			agg.Add(u, clients[u].Report(values[u]))
		}
		return
	}
	buf := c.bufs[shard]
	for u := lo; u < hi; u++ {
		ar, ok := clients[u].(AppendReporter)
		if !ok {
			agg.Add(u, clients[u].Report(values[u]))
			continue
		}
		buf = ar.AppendReport(buf[:0], values[u])
		if err := c.tallier.TallyWire(agg, u, buf, ar.WireRegistration()); err != nil {
			// A payload the protocol's own client just emitted cannot be
			// malformed; a rejection here is a protocol implementation bug,
			// surfaced like any other caller bug on this path.
			panic(fmt.Sprintf("longitudinal: tally-direct collection rejected its own report: %v", err))
		}
	}
	c.bufs[shard] = buf
}

// MergeCounts folds src's tallies into dst and zeroes src: the shared
// round-state transfer of every Merge implementation in this repository.
func MergeCounts(dst, src []int64) {
	for i, c := range src {
		dst[i] += c
		src[i] = 0
	}
}
