package longitudinal

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultShards returns the default collection parallelism: one shard per
// available CPU.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// ShardedCollector drives collection rounds over a fixed-size cohort,
// partitioned into contiguous user shards that report and tally on their
// own goroutines. Results are bit-identical to a serial collection for any
// shard count: per-user randomness lives in each Client, users keep their
// shard across rounds, and shard tallies are integer counts merged before
// estimation.
//
// When the protocol's aggregator does not implement MergeableAggregator
// the collector transparently falls back to a single serial shard.
type ShardedCollector struct {
	agg    Aggregator   // merge target; sole tally when serial
	forks  []Aggregator // per-shard forks (empty when serial)
	bounds []int        // len(forks)+1 offsets partitioning [0..n)
	n      int
}

// NewShardedCollector partitions n users into at most shards contiguous
// blocks tallied by forks of agg. shards <= 1 — including any negative
// value — or a non-mergeable agg selects the serial path; shards is
// clamped to n. Callers that want to reject negative shard counts (the
// public constructors do) must validate before constructing.
func NewShardedCollector(agg Aggregator, n, shards int) *ShardedCollector {
	c := &ShardedCollector{agg: agg, n: n}
	if shards > n {
		shards = n
	}
	ma, mergeable := agg.(MergeableAggregator)
	if shards <= 1 || !mergeable {
		return c
	}
	c.forks = make([]Aggregator, shards)
	c.bounds = make([]int, shards+1)
	for i := range c.forks {
		c.forks[i] = ma.Fork()
		c.bounds[i] = i * n / shards
	}
	c.bounds[shards] = n
	return c
}

// Shards returns the effective parallelism (1 on the serial path).
func (c *ShardedCollector) Shards() int {
	if len(c.forks) == 0 {
		return 1
	}
	return len(c.forks)
}

// Aggregator returns the merge target (the aggregator the collector was
// constructed with).
func (c *ShardedCollector) Aggregator() Aggregator { return c.agg }

// Collect runs one collection round: clients[u].Report(values[u]) is
// tallied for every user u and the round's estimates returned. clients and
// values must have the length the collector was constructed for.
func (c *ShardedCollector) Collect(clients []Client, values []int) ([]float64, error) {
	if err := c.Tally(clients, values); err != nil {
		return nil, err
	}
	return c.agg.EndRound(), nil
}

// Tally is Collect without the round finalization: every report lands in
// the collector's merge target but EndRound is left to the caller, so
// collector tallies can share a round with reports added to the target
// through other paths (the Stream service mixes wire ingestion and cohort
// collection this way).
func (c *ShardedCollector) Tally(clients []Client, values []int) error {
	if len(clients) != c.n || len(values) != c.n {
		return fmt.Errorf("longitudinal: sharded collector built for %d users, got %d clients / %d values",
			c.n, len(clients), len(values))
	}
	if len(c.forks) == 0 {
		for u, v := range values {
			c.agg.Add(u, clients[u].Report(v))
		}
		return nil
	}
	// Client/aggregator panics (caller bugs like out-of-range values) are
	// re-raised on the caller's stack, so sharding keeps the serial path's
	// failure mode instead of crashing the process from a worker.
	panics := make([]any, len(c.forks))
	var wg sync.WaitGroup
	for i, fork := range c.forks {
		wg.Add(1)
		go func(i int, fork Aggregator, lo, hi int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			for u := lo; u < hi; u++ {
				fork.Add(u, clients[u].Report(values[u]))
			}
		}(i, fork, c.bounds[i], c.bounds[i+1])
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	ma := c.agg.(MergeableAggregator)
	for _, fork := range c.forks {
		ma.Merge(fork)
	}
	return nil
}

// MergeCounts folds src's tallies into dst and zeroes src: the shared
// round-state transfer of every Merge implementation in this repository.
func MergeCounts(dst, src []int64) {
	for i, c := range src {
		dst[i] += c
		src[i] = 0
	}
}
