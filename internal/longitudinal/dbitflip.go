package longitudinal

import (
	"fmt"
	"math"

	"github.com/loloha-ldp/loloha/internal/domain"
	"github.com/loloha-ldp/loloha/internal/freqoracle"
	"github.com/loloha-ldp/loloha/internal/privacy"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// DBitFlipPM is Microsoft's dBitFlipPM protocol (§2.4.4): the ordinal
// domain [0..k) is generalized into b equal-width buckets; each user fixes
// d sampled buckets and memoizes one randomized bit per (input bucket,
// sampled bucket) pair at level ε∞. There is no IRR round, which is what
// makes bucket changes detectable (Table 2).
type DBitFlipPM struct {
	k, b, d int
	epsInf  float64
	p, q    float64
	z       domain.Bucketizer
	// sampler draws the memoized d-bit response for one input bucket:
	// each sampled slot flips with q, the slot holding the input bucket
	// (if any) with p — skip-sampled when q is sparse. Anchored at the
	// bucket's PRF base, the draw is a pure function of (seed, bucket),
	// which is exactly the memoization contract.
	sampler freqoracle.ReportSampler
}

// Fast-path contracts (wirecontract).
var (
	_ SpecProtocol   = (*DBitFlipPM)(nil)
	_ TallyProtocol  = (*DBitFlipPM)(nil)
	_ AppendReporter = (*dBitClient)(nil)
)

// NewDBitFlipPM returns a dBitFlipPM protocol over domain size k with b
// buckets, d sampled bits per user and longitudinal budget epsInf. The
// bounds k >= 2, 2 <= b <= k and 1 <= d <= b are all validated here with
// protocol-level errors, so a mis-derived bucket count (e.g. b = ⌊k/4⌋ on
// a tiny domain) fails at construction instead of misbehaving downstream.
func NewDBitFlipPM(k, b, d int, epsInf float64) (*DBitFlipPM, error) {
	if k < 2 {
		return nil, fmt.Errorf("longitudinal: dBitFlipPM needs k >= 2, got k=%d", k)
	}
	if b < 2 || b > k {
		return nil, fmt.Errorf("longitudinal: dBitFlipPM needs 2 <= b <= k, got b=%d k=%d", b, k)
	}
	if d < 1 || d > b {
		return nil, fmt.Errorf("longitudinal: dBitFlipPM needs 1 <= d <= b, got d=%d b=%d", d, b)
	}
	z, err := domain.NewBucketizer(k, b)
	if err != nil {
		return nil, err
	}
	if !(epsInf > 0) || math.IsInf(epsInf, 0) {
		return nil, fmt.Errorf("longitudinal: dBitFlipPM needs finite epsInf > 0, got %v", epsInf)
	}
	e := math.Exp(epsInf / 2)
	p := e / (e + 1)
	sampler, err := freqoracle.NewReportSampler(d, p, 1-p)
	if err != nil {
		return nil, fmt.Errorf("longitudinal: dBitFlipPM mis-calibrated: %w", err)
	}
	return &DBitFlipPM{
		k: k, b: b, d: d,
		epsInf: epsInf,
		p:      p, q: 1 - p,
		z:       z,
		sampler: sampler,
	}, nil
}

// Name implements Protocol.
func (m *DBitFlipPM) Name() string {
	if m.d == 1 {
		return "1BitFlipPM"
	}
	if m.d == m.b {
		return "bBitFlipPM"
	}
	return fmt.Sprintf("%dBitFlipPM", m.d)
}

// K implements Protocol.
func (m *DBitFlipPM) K() int { return m.k }

// B returns the bucket count.
func (m *DBitFlipPM) B() int { return m.b }

// D returns the number of sampled bits per user.
func (m *DBitFlipPM) D() int { return m.d }

// Bucketizer exposes the generalization map (the Table 2 attack and the
// simulation need it to fold ground truth).
func (m *DBitFlipPM) Bucketizer() domain.Bucketizer { return m.z }

// ApproxVariance is the f→0 estimator variance
// b·e^{ε∞/2} / (n·d·(e^{ε∞/2}−1)²) — the §4 closed form, derived from
// Eq. (1) with n replaced by nd/b.
func (m *DBitFlipPM) ApproxVariance(n int) float64 {
	e := math.Exp(m.epsInf / 2)
	return float64(m.b) * e / (float64(n) * float64(m.d) * (e - 1) * (e - 1))
}

// SteadyReportBits implements Protocol: d bits per round (Table 1).
func (m *DBitFlipPM) SteadyReportBits() int { return m.d }

// WireDecoder implements WireProtocol.
func (m *DBitFlipPM) WireDecoder() Decoder { return DBitDecoder{} }

// Spec implements SpecProtocol. The family is always the generic
// "dBitFlipPM" with explicit b and d — the canonical form the 1BitFlipPM /
// bBitFlipPM convenience families normalize to.
func (m *DBitFlipPM) Spec() ProtocolSpec {
	return ProtocolSpec{Family: "dBitFlipPM", K: m.k, B: m.b, D: m.d, EpsInf: m.epsInf}
}

// NewClient implements Protocol.
func (m *DBitFlipPM) NewClient(seed uint64) Client {
	r := randsrc.NewSeeded(randsrc.Derive(seed, 0xDB17))
	sampled := r.SampleWithoutReplacement(m.b, m.d)
	return &dBitClient{
		proto:   m,
		seed:    seed,
		sampled: sampled,
		state:   make(map[int]int, m.d+1),
		memo:    make(map[int][]byte, m.d+1),
		ledger:  privacy.NewLedger(m.epsInf, minInt(m.d+1, m.b)),
	}
}

type dBitClient struct {
	proto   *DBitFlipPM
	seed    uint64
	sampled []int
	state   map[int]int
	// memo caches the packed memoized d-bit response per input bucket —
	// dBitFlipPM has no IRR, so after the first materialization a report
	// is a byte copy.
	memo   map[int][]byte
	ledger *privacy.Ledger
}

// baseOf returns the PRF stream anchor of the memoized response for an
// input bucket.
//
//loloha:noalloc
func (cl *dBitClient) baseOf(inputBucket int) uint64 {
	return randsrc.Derive(cl.seed, uint64(inputBucket))
}

// packedOf returns the memoized response for an input bucket, wire-packed
// (bit l of the payload is sampled slot l), drawing it on first use: one
// sampler round anchored at the bucket's PRF base, with the slot holding
// the input bucket (at most one — sampled buckets are distinct) upgraded
// from q to p.
//
//loloha:noalloc
func (cl *dBitClient) packedOf(inputBucket int) []byte {
	if m, ok := cl.memo[inputBucket]; ok {
		return m
	}
	var ones []int32
	var hit [1]int32
	for l, j := range cl.sampled {
		if j == inputBucket {
			hit[0] = int32(l)
			ones = hit[:]
			break
		}
	}
	//loloha:alloc-ok cold: at most b memoized responses ever materialize per client
	m := cl.proto.sampler.AppendReport(make([]byte, 0, (cl.proto.d+7)/8), cl.baseOf(inputBucket), ones)
	cl.memo[inputBucket] = m
	return m
}

// memoBit returns the memoized randomized bit for (input bucket, sampled
// slot l): Bernoulli(p) when the input falls in the sampled bucket,
// Bernoulli(q) otherwise, fixed forever by the PRF behind packedOf.
func (cl *dBitClient) memoBit(inputBucket, l int) bool {
	m := cl.packedOf(inputBucket)
	return m[l>>3]>>(uint(l)&7)&1 == 1
}

// Report implements Client. The privacy ledger charges per distinct
// *memoized state*: the input bucket collapses to "which sampled bucket it
// hits, if any", so at most min(d+1, b) states exist (Table 1). Bits is a
// fresh slice — callers (the Table 2 adversary) hold reports across
// rounds — so Report allocates; AppendReport is the zero-allocation path.
func (cl *dBitClient) Report(v int) Report {
	cl.Charge(v)
	m := cl.packedOf(cl.proto.z.Bucket(v))
	bits := make([]bool, cl.proto.d)
	for l := range bits {
		bits[l] = m[l>>3]>>(uint(l)&7)&1 == 1
	}
	return DBitReport{Sampled: cl.sampled, Bits: bits}
}

// AppendReport implements AppendReporter: a memoized report is a straight
// copy of the cached packed response — zero allocations once the bucket
// has been seen (at most b materializations ever; unsampled buckets share
// a response *distribution* but are cached per bucket, since each draws
// from its own PRF anchor).
//
//loloha:noalloc
func (cl *dBitClient) AppendReport(dst []byte, v int) []byte {
	cl.Charge(v)
	return append(dst, cl.packedOf(cl.proto.z.Bucket(v))...)
}

// WireRegistration implements AppendReporter: the fixed sampled buckets.
func (cl *dBitClient) WireRegistration() Registration {
	return Registration{Sampled: cl.sampled}
}

// Charge implements Client.
//
//loloha:noalloc
func (cl *dBitClient) Charge(v int) {
	if v < 0 || v >= cl.proto.k {
		panic(fmt.Sprintf("longitudinal: dBitFlipPM value %d outside [0,%d)", v, cl.proto.k))
	}
	cl.ledger.Charge(cl.memoStateOf(cl.proto.z.Bucket(v)))
}

// memoStateOf maps an input bucket onto its memoized-state identifier:
// 1+l when it equals sampled bucket l, 0 for "none of the sampled buckets".
// When d == b every bucket is sampled and states are exactly buckets.
//
//loloha:noalloc
func (cl *dBitClient) memoStateOf(bucket int) int {
	if s, ok := cl.state[bucket]; ok {
		return s
	}
	s := 0
	for l, j := range cl.sampled {
		if j == bucket {
			s = 1 + l
			break
		}
	}
	cl.state[bucket] = s
	return s
}

// PrivacySpent implements Client.
func (cl *dBitClient) PrivacySpent() float64 { return cl.ledger.Spent() }

// Sampled exposes the client's fixed sampled buckets (used by the Table 2
// attack harness to build ground truth).
func (cl *dBitClient) Sampled() []int { return cl.sampled }

// DBitReport is one round's payload: the user's fixed sampled buckets and
// their memoized bits. Only the d bits travel each round; the sampled
// indices are registration metadata.
type DBitReport struct {
	Sampled []int
	Bits    []bool
}

// AppendBinary implements Report (steady state: d bits, byte-packed).
func (r DBitReport) AppendBinary(dst []byte) []byte {
	nBytes := (len(r.Bits) + 7) / 8
	start := len(dst)
	for i := 0; i < nBytes; i++ {
		dst = append(dst, 0)
	}
	for i, bit := range r.Bits {
		if bit {
			dst[start+i/8] |= 1 << (uint(i) % 8)
		}
	}
	return dst
}

// Equal reports whether two reports carry identical bits (the adversary's
// change-detection test of Table 2).
func (r DBitReport) Equal(o DBitReport) bool {
	if len(r.Bits) != len(o.Bits) {
		return false
	}
	for i := range r.Bits {
		if r.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

type dBitAggregator struct {
	proto  *DBitFlipPM
	counts []int64
	n      int
}

// NewAggregator implements Protocol.
func (m *DBitFlipPM) NewAggregator() Aggregator {
	return &dBitAggregator{proto: m, counts: make([]int64, m.b)}
}

// Add implements Aggregator.
func (a *dBitAggregator) Add(userID int, rep Report) {
	d, ok := rep.(DBitReport)
	if !ok {
		panic(fmt.Sprintf("longitudinal: dBitFlipPM aggregator got %T", rep))
	}
	if len(d.Bits) != a.proto.d || len(d.Sampled) != a.proto.d {
		panic(fmt.Sprintf("longitudinal: dBitFlipPM report carries %d bits, want %d",
			len(d.Bits), a.proto.d))
	}
	for l, j := range d.Sampled {
		if d.Bits[l] {
			a.counts[j]++
		}
	}
	a.n++
}

// Fork implements MergeableAggregator.
func (a *dBitAggregator) Fork() Aggregator {
	return a.proto.NewAggregator()
}

// Merge implements MergeableAggregator.
func (a *dBitAggregator) Merge(other Aggregator) {
	o, ok := other.(*dBitAggregator)
	if !ok || o.proto != a.proto {
		panic(fmt.Sprintf("longitudinal: dBitFlipPM aggregator cannot merge %T", other))
	}
	MergeCounts(a.counts, o.counts)
	a.n += o.n
	o.n = 0
}

// EndRound implements Aggregator: Eq. (1) with n replaced by nd/b, since
// each bucket is observed by ~nd/b users (§2.4.4). A round with zero
// reports estimates zero everywhere.
func (a *dBitAggregator) EndRound() []float64 {
	est := make([]float64, a.proto.b)
	if a.n == 0 {
		return est
	}
	nEff := float64(a.n) * float64(a.proto.d) / float64(a.proto.b)
	den := nEff * (a.proto.p - a.proto.q)
	for j, c := range a.counts {
		est[j] = (float64(c) - nEff*a.proto.q) / den
		a.counts[j] = 0
	}
	a.n = 0
	return est
}

// EstimateDomain implements Aggregator: estimates are per bucket.
func (a *dBitAggregator) EstimateDomain() int { return a.proto.b }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
