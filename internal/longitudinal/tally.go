package longitudinal

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/freqoracle"
)

// Tally-direct ingestion. The Decoder contract materializes a Report value
// per payload — which costs one interface-boxing allocation per report on
// the server's hot path. A WireTallier instead decodes the payload bits in
// place (views over the payload bytes, no intermediate report structs) and
// bumps the aggregator's support counts directly, so steady-state wire
// ingestion performs zero allocations per report. Estimates are
// bit-identical to the Decoder path: both bump the same integer tallies.
//
// Decoder remains the compatibility path: protocols that only implement it
// keep working, and a custom server.WithDecoder always wins over the
// protocol's tallier.

// WireTallier tallies one steady-state round payload directly into an
// aggregator, without materializing a Report.
type WireTallier interface {
	// TallyWire decodes payload in place and adds the report it carries to
	// agg's current-round tallies for the identified user. agg must come
	// from the same protocol that supplied the tallier (NewAggregator or a
	// Fork of it); reg is the user's enrollment metadata. A non-nil error
	// means nothing was tallied, exactly as a Decoder rejection would.
	TallyWire(agg Aggregator, userID int, payload []byte, reg Registration) error
}

// TallyProtocol is a Protocol whose steady-state payloads can be tallied
// in place. Every protocol in this repository implements it; external
// protocols may implement only WireProtocol (or register a Decoder) and
// still plug into the collection service via the decode path.
type TallyProtocol interface {
	Protocol
	// WireTallier returns the tallier for this protocol's steady-state
	// payloads.
	WireTallier() WireTallier
}

// ---------------------------------------------------------------------------
// Chained-UE tallier.

// WireTallier implements TallyProtocol.
func (c *ChainUE) WireTallier() WireTallier { return ueWireTallier{k: c.k} }

type ueWireTallier struct{ k int }

var _ ColumnarTallier = ueWireTallier{}

// PayloadStride implements ColumnarTallier.
//
//loloha:noalloc
func (t ueWireTallier) PayloadStride() int { return freqoracle.UEPayloadBytes(t.k) }

// TallyCell implements ColumnarTallier: the cell length is guaranteed by
// the columnar contract; only the trailing-bit check remains per cell.
//
//loloha:noalloc
func (t ueWireTallier) TallyCell(agg Aggregator, _ int, cell []byte, _ Registration) error {
	a, ok := agg.(*chainUEAggregator)
	if !ok || a.proto.k != t.k {
		return fmt.Errorf("longitudinal: chained-UE tallier cannot tally into %T", agg)
	}
	if err := freqoracle.CheckUEPayload(cell, t.k); err != nil {
		return err
	}
	freqoracle.AccumulateUEPayload(cell, t.k, a.counts)
	a.n++
	return nil
}

// TallyWire implements WireTallier: each set payload bit bumps one support
// count straight from the payload bytes.
//
//loloha:noalloc
func (t ueWireTallier) TallyWire(agg Aggregator, _ int, payload []byte, _ Registration) error {
	a, ok := agg.(*chainUEAggregator)
	if !ok || a.proto.k != t.k {
		return fmt.Errorf("longitudinal: chained-UE tallier cannot tally into %T", agg)
	}
	if err := freqoracle.CheckUEPayload(payload, t.k); err != nil {
		return err
	}
	freqoracle.AccumulateUEPayload(payload, t.k, a.counts)
	a.n++
	return nil
}

// ---------------------------------------------------------------------------
// L-GRR tallier.

// WireTallier implements TallyProtocol.
func (m *LGRR) WireTallier() WireTallier { return grrWireTallier{k: m.k} }

type grrWireTallier struct{ k int }

var _ ColumnarTallier = grrWireTallier{}

// PayloadStride implements ColumnarTallier.
//
//loloha:noalloc
func (t grrWireTallier) PayloadStride() int { return freqoracle.GRRPayloadBytes(t.k) }

// TallyCell implements ColumnarTallier: the scalar parse keeps its value
// range check; the length check is hoisted to the batch decoder.
//
//loloha:noalloc
func (t grrWireTallier) TallyCell(agg Aggregator, _ int, cell []byte, _ Registration) error {
	a, ok := agg.(*lgrrAggregator)
	if !ok || a.proto.k != t.k {
		return fmt.Errorf("longitudinal: L-GRR tallier cannot tally into %T", agg)
	}
	x, err := freqoracle.ParseGRRPayload(cell, t.k)
	if err != nil {
		return err
	}
	a.counts[x]++
	a.n++
	return nil
}

// TallyWire implements WireTallier: parse the scalar value and bump its
// count.
//
//loloha:noalloc
func (t grrWireTallier) TallyWire(agg Aggregator, _ int, payload []byte, _ Registration) error {
	a, ok := agg.(*lgrrAggregator)
	if !ok || a.proto.k != t.k {
		return fmt.Errorf("longitudinal: L-GRR tallier cannot tally into %T", agg)
	}
	x, err := freqoracle.ParseGRRPayload(payload, t.k)
	if err != nil {
		return err
	}
	a.counts[x]++
	a.n++
	return nil
}

// ---------------------------------------------------------------------------
// dBitFlipPM tallier.

// WireTallier implements TallyProtocol.
func (m *DBitFlipPM) WireTallier() WireTallier { return dbitWireTallier{proto: m} }

type dbitWireTallier struct{ proto *DBitFlipPM }

var _ ColumnarTallier = dbitWireTallier{}

// PayloadStride implements ColumnarTallier.
//
//loloha:noalloc
func (t dbitWireTallier) PayloadStride() int { return (t.proto.d + 7) / 8 }

// TallyCell implements ColumnarTallier: the registration-shape checks
// stay per cell (they depend on the user's enrollment, not the wire
// framing); the payload length is guaranteed by the columnar contract.
//
//loloha:noalloc
func (t dbitWireTallier) TallyCell(agg Aggregator, _ int, cell []byte, reg Registration) error {
	a, ok := agg.(*dBitAggregator)
	if !ok || a.proto != t.proto {
		return fmt.Errorf("longitudinal: dBitFlipPM tallier cannot tally into %T", agg)
	}
	d := len(reg.Sampled)
	if d == 0 {
		return fmt.Errorf("longitudinal: user enrolled without sampled buckets")
	}
	if d != a.proto.d {
		// Mirror TallyWire: an enrollment whose sampled-set size disagrees
		// with the protocol is a programming error, not a malformed cell.
		panic(fmt.Sprintf("longitudinal: dBitFlipPM report carries %d bits, want %d", d, a.proto.d))
	}
	for l, j := range reg.Sampled {
		if cell[l/8]>>(uint(l)%8)&1 == 1 {
			a.counts[j]++
		}
	}
	a.n++
	return nil
}

// TallyWire implements WireTallier: each set payload bit bumps the count
// of the user's enrolled sampled bucket at that slot, straight from the
// payload bytes.
//
//loloha:noalloc
func (t dbitWireTallier) TallyWire(agg Aggregator, _ int, payload []byte, reg Registration) error {
	a, ok := agg.(*dBitAggregator)
	if !ok || a.proto != t.proto {
		return fmt.Errorf("longitudinal: dBitFlipPM tallier cannot tally into %T", agg)
	}
	d := len(reg.Sampled)
	if d == 0 {
		return fmt.Errorf("longitudinal: user enrolled without sampled buckets")
	}
	nBytes := (d + 7) / 8
	if len(payload) < nBytes {
		return fmt.Errorf("longitudinal: short dBit report: %d bytes, want %d", len(payload), nBytes)
	}
	if len(payload) > nBytes {
		return fmt.Errorf("longitudinal: %d trailing bytes in dBit payload", len(payload)-nBytes)
	}
	if d != a.proto.d {
		// Mirror the aggregator's Add contract: a registration whose
		// sampled-set size disagrees with the protocol is a programming
		// error, not a malformed payload.
		panic(fmt.Sprintf("longitudinal: dBitFlipPM report carries %d bits, want %d", d, a.proto.d))
	}
	for l, j := range reg.Sampled {
		if payload[l/8]>>(uint(l)%8)&1 == 1 {
			a.counts[j]++
		}
	}
	a.n++
	return nil
}
