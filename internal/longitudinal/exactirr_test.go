package longitudinal

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/privacy"
)

func TestExactEpsIRRMatchesPaperAtG2(t *testing.T) {
	for _, b := range budgetGrid {
		eps1 := b.alpha * b.epsInf
		paper, err := EpsIRR(b.epsInf, eps1)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactEpsIRR(b.epsInf, eps1, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(paper-exact) > 1e-9 {
			t.Errorf("eps∞=%v α=%v: g=2 exact %v != paper %v",
				b.epsInf, b.alpha, exact, paper)
		}
	}
}

func TestExactEpsIRRAchievesExactRatio(t *testing.T) {
	// The exact calibration must make the true g-ary two-round output
	// ratio equal e^{ε1} precisely.
	for _, g := range []int{2, 3, 5, 16} {
		for _, b := range budgetGrid {
			eps1 := b.alpha * b.epsInf
			exact, err := ExactEpsIRR(b.epsInf, eps1, g)
			if err != nil {
				t.Fatalf("g=%d eps∞=%v α=%v: %v", g, b.epsInf, b.alpha, err)
			}
			ratio := privacy.ChainedGRRMaxRatioExact(b.epsInf, exact, g)
			if math.Abs(ratio-math.Exp(eps1)) > 1e-6 {
				t.Errorf("g=%d eps∞=%v α=%v: exact ratio %v, want %v",
					g, b.epsInf, b.alpha, ratio, math.Exp(eps1))
			}
		}
	}
}

func TestExactEpsIRRAllowsLessNoiseForLargerG(t *testing.T) {
	// The paper's calibration under-budgets the IRR for g > 2; the exact
	// one recovers the slack: εIRR_exact ≥ εIRR_paper, strictly for g > 2.
	for _, g := range []int{3, 8, 16} {
		paper, _ := EpsIRR(3.0, 1.5)
		exact, err := ExactEpsIRR(3.0, 1.5, g)
		if err != nil {
			t.Fatal(err)
		}
		if exact <= paper {
			t.Errorf("g=%d: exact εIRR %v not above paper %v", g, exact, paper)
		}
	}
}

func TestExactEpsIRRReducesVariance(t *testing.T) {
	// Less IRR noise at the same ε1 means strictly lower V* for g > 2.
	const epsInf, eps1, g, n = 4.0, 2.0, 8, 10000
	mk := func(epsIRR float64) ChainParams {
		gf := float64(g)
		a, c := math.Exp(epsInf), math.Exp(epsIRR)
		return ChainParams{
			P1: a / (a + gf - 1), Q1: 1 / gf,
			P2: c / (c + gf - 1), Q2: 1 / (c + gf - 1),
		}
	}
	paper, _ := EpsIRR(epsInf, eps1)
	exact, _ := ExactEpsIRR(epsInf, eps1, g)
	vPaper := mk(paper).ApproxVariance(n)
	vExact := mk(exact).ApproxVariance(n)
	if vExact >= vPaper {
		t.Errorf("exact calibration V* %v not below paper %v", vExact, vPaper)
	}
}

func TestExactEpsIRRValidation(t *testing.T) {
	if _, err := ExactEpsIRR(1, 2, 4); err == nil {
		t.Error("eps1 > epsInf accepted")
	}
	if _, err := ExactEpsIRR(2, 1, 1); err == nil {
		t.Error("g=1 accepted")
	}
}
