package longitudinal

import (
	"bytes"
	"encoding/binary"
	"math"
	"slices"
	"testing"
)

// TestRegistrationRoundTrip: encode→decode is the identity for every shape
// of registration the protocols produce, and decode→encode reproduces the
// exact input bytes (canonical form).
func TestRegistrationRoundTrip(t *testing.T) {
	cases := []Registration{
		{},
		{HashSeed: 1},
		{HashSeed: math.MaxUint64},
		{Sampled: []int{0}},
		{Sampled: []int{7, 3, 7, 0}}, // duplicates and disorder survive verbatim
		{HashSeed: 0xdeadbeefcafe, Sampled: []int{1, 2, 3}},
		{Sampled: []int{math.MaxUint32}},
		{HashSeed: 42, Sampled: make([]int, 257)},
	}
	for i := range cases[len(cases)-1].Sampled {
		cases[len(cases)-1].Sampled[i] = i * 3
	}
	for _, reg := range cases {
		enc, err := AppendRegistration(nil, reg)
		if err != nil {
			t.Fatalf("%+v: %v", reg, err)
		}
		if len(enc) != RegistrationWireSize(reg) {
			t.Fatalf("%+v: encoded %d bytes, RegistrationWireSize says %d", reg, len(enc), RegistrationWireSize(reg))
		}
		got, rest, err := DecodeRegistration(enc)
		if err != nil {
			t.Fatalf("%+v: decode: %v", reg, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%+v: %d undecoded bytes", reg, len(rest))
		}
		if got.HashSeed != reg.HashSeed || !slices.Equal(got.Sampled, reg.Sampled) {
			t.Fatalf("round trip: got %+v, want %+v", got, reg)
		}
		// Canonical: re-encoding the decoded value reproduces the bytes.
		re, err := AppendRegistration(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("%+v: re-encode differs: %x vs %x", reg, re, enc)
		}
		// Trailing bytes flow through untouched.
		withTail := append(append([]byte(nil), enc...), 0xAA, 0xBB)
		_, rest, err = DecodeRegistration(withTail)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rest, []byte{0xAA, 0xBB}) {
			t.Fatalf("tail not preserved: %x", rest)
		}
	}
}

// TestRegistrationAppendExtends pins the append contract: the encoding
// lands after existing bytes and reuses capacity.
func TestRegistrationAppendExtends(t *testing.T) {
	prefix := []byte{1, 2, 3}
	buf := make([]byte, len(prefix), 64)
	copy(buf, prefix)
	out, err := AppendRegistration(buf, Registration{HashSeed: 9, Sampled: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:3], prefix) {
		t.Fatalf("prefix clobbered: %x", out[:3])
	}
	if &out[0] != &buf[0] {
		t.Fatal("append with spare capacity reallocated")
	}
	if _, _, err := DecodeRegistration(out[3:]); err != nil {
		t.Fatal(err)
	}
}

// TestRegistrationDecodeTruncated: every strict prefix of a valid encoding
// is an error, never a panic or a silent partial decode.
func TestRegistrationDecodeTruncated(t *testing.T) {
	enc, err := AppendRegistration(nil, Registration{HashSeed: 5, Sampled: []int{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeRegistration(enc[:n]); err == nil {
			t.Fatalf("decoding %d of %d bytes succeeded", n, len(enc))
		}
	}
}

// TestRegistrationEncodeRejects: unencodable registrations error and leave
// dst untouched.
func TestRegistrationEncodeRejects(t *testing.T) {
	for _, reg := range []Registration{
		{Sampled: []int{-1}},
		{Sampled: []int{int(math.MaxUint32) + 1}},
		{Sampled: make([]int, MaxRegistrationSampled+1)},
	} {
		dst := []byte{0xFF}
		out, err := AppendRegistration(dst, reg)
		if err == nil {
			t.Fatalf("encoding %+v succeeded", reg)
		}
		if !bytes.Equal(out, dst) {
			t.Fatalf("failed encode mutated dst: %x", out)
		}
	}
}

// TestRegistrationDecodeHostileCount: a count field promising more buckets
// than the payload carries (or more than the cap) is rejected before any
// allocation sized by the count.
func TestRegistrationDecodeHostileCount(t *testing.T) {
	var b []byte
	b = binary.LittleEndian.AppendUint64(b, 1)
	b = binary.LittleEndian.AppendUint32(b, math.MaxUint32) // 4G buckets, 0 bytes of them
	if _, _, err := DecodeRegistration(b); err == nil {
		t.Fatal("hostile count accepted")
	}
	b = b[:8]
	b = binary.LittleEndian.AppendUint32(b, MaxRegistrationSampled+1)
	b = append(b, make([]byte, 4*8)...)
	if _, _, err := DecodeRegistration(b); err == nil {
		t.Fatal("over-cap count accepted")
	}
}

// FuzzDecodeRegistration: arbitrary bytes either decode into a registration
// that re-encodes to exactly the consumed bytes, or error.
func FuzzDecodeRegistration(f *testing.F) {
	seed, _ := AppendRegistration(nil, Registration{HashSeed: 3, Sampled: []int{1, 2}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		reg, rest, err := DecodeRegistration(data)
		if err != nil {
			return
		}
		consumed := data[:len(data)-len(rest)]
		re, err := AppendRegistration(nil, reg)
		if err != nil {
			t.Fatalf("decoded registration does not re-encode: %v", err)
		}
		if !bytes.Equal(re, consumed) {
			t.Fatalf("non-canonical decode: consumed %x, re-encodes %x", consumed, re)
		}
	})
}
