package longitudinal

import (
	"fmt"
	"math"

	"github.com/loloha-ldp/loloha/internal/bitset"
	"github.com/loloha-ldp/loloha/internal/freqoracle"
	"github.com/loloha-ldp/loloha/internal/privacy"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// UE chain calibrations. Naming follows the paper's reference [5]: the
// first letter(s) name the IRR is appended, e.g. L-OSUE chains OUE in the
// PRR step with SUE in the IRR step.

// LSUEParams calibrates RAPPOR (L-SUE): SUE in both steps (§2.4.1).
// p1 = e^{ε∞/2}/(e^{ε∞/2}+1); p2 solves the symmetric-IRR chain so the
// first report is exactly ε1-LDP: p2 = (ab−1)/((b+1)(a−1)) with
// a = e^{ε∞/2}, b = e^{ε1/2}.
func LSUEParams(epsInf, eps1 float64) (ChainParams, error) {
	if err := ValidateBudgets(epsInf, eps1); err != nil {
		return ChainParams{}, err
	}
	a := math.Exp(epsInf / 2)
	b := math.Exp(eps1 / 2)
	p1 := a / (a + 1)
	p2 := (a*b - 1) / ((b + 1) * (a - 1))
	return ChainParams{P1: p1, Q1: 1 - p1, P2: p2, Q2: 1 - p2}, nil
}

// LOSUEParams calibrates L-OSUE (§2.4.2): OUE in the PRR step
// (p1 = 1/2, q1 = 1/(e^{ε∞}+1)) and SUE in the IRR step with
// p2 = (AB−1)/(A−B+AB−1), A = e^{ε∞}, B = e^{ε1}.
func LOSUEParams(epsInf, eps1 float64) (ChainParams, error) {
	if err := ValidateBudgets(epsInf, eps1); err != nil {
		return ChainParams{}, err
	}
	ea := math.Exp(epsInf)
	eb := math.Exp(eps1)
	p2 := (ea*eb - 1) / (ea - eb + ea*eb - 1)
	return ChainParams{P1: 0.5, Q1: 1 / (ea + 1), P2: p2, Q2: 1 - p2}, nil
}

// LOUEParams calibrates L-OUE: OUE in both steps. The IRR keeps p2 = 1/2
// and q2 is solved numerically so the first report is ε1-LDP. Not every
// (ε∞, ε1) pair is feasible with a fixed p2 = 1/2; infeasible pairs return
// an error.
func LOUEParams(epsInf, eps1 float64) (ChainParams, error) {
	if err := ValidateBudgets(epsInf, eps1); err != nil {
		return ChainParams{}, err
	}
	ea := math.Exp(epsInf)
	return solveOUEStyleIRR(ChainParams{P1: 0.5, Q1: 1 / (ea + 1)}, eps1)
}

// LSOUEParams calibrates L-SOUE: SUE in the PRR step, OUE in the IRR step
// (p2 = 1/2, q2 solved numerically). Infeasible pairs return an error.
func LSOUEParams(epsInf, eps1 float64) (ChainParams, error) {
	if err := ValidateBudgets(epsInf, eps1); err != nil {
		return ChainParams{}, err
	}
	a := math.Exp(epsInf / 2)
	p1 := a / (a + 1)
	return solveOUEStyleIRR(ChainParams{P1: p1, Q1: 1 - p1}, eps1)
}

// solveOUEStyleIRR fixes p2 = 1/2 and bisects q2 ∈ (0, 1/2) so that the
// chained first report satisfies exactly eps1. The chain's ε is strictly
// decreasing in q2 (more IRR noise, less leakage), so bisection converges;
// if even q2 → 0 cannot reach eps1 the pair is infeasible.
func solveOUEStyleIRR(prr ChainParams, eps1 float64) (ChainParams, error) {
	prr.P2 = 0.5
	epsAt := func(q2 float64) float64 {
		c := prr
		c.Q2 = q2
		return UEEpsOfChain(c)
	}
	const floor = 1e-12
	if epsAt(floor) < eps1 {
		return ChainParams{}, fmt.Errorf(
			"longitudinal: eps1=%v infeasible for OUE-style IRR (max %v); use a smaller eps1 or an SUE-style IRR",
			eps1, epsAt(floor))
	}
	lo, hi := floor, 0.5-floor // eps is ~0 at q2 = p2 = 1/2
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if epsAt(mid) > eps1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	prr.Q2 = (lo + hi) / 2
	return prr, nil
}

// ---------------------------------------------------------------------------
// The chained-UE protocol (client + aggregator).

// ChainUE is a longitudinal protocol chaining two unary-encoding rounds.
// RAPPOR, L-OSUE, L-OUE and L-SOUE are instances differing only in their
// ChainParams.
type ChainUE struct {
	name         string
	k            int
	params       ChainParams
	epsInf, eps1 float64
	// sampler draws the IRR layer: every bit flips with q2, memoized
	// PRR-one bits with p2 — skip-sampled when q2 is sparse (see
	// freqoracle.ReportSampler for the canonical randomness contract).
	sampler freqoracle.ReportSampler
}

// Fast-path contracts (wirecontract): a regression in either interface
// would silently degrade ingestion to the boxed Report path.
var (
	_ SpecProtocol   = (*ChainUE)(nil)
	_ TallyProtocol  = (*ChainUE)(nil)
	_ AppendReporter = (*chainUEClient)(nil)
)

// NewChainUE builds a chained-UE protocol from explicit parameters;
// normally constructed through NewRAPPOR, NewLOSUE, NewLOUE or NewLSOUE.
func NewChainUE(name string, k int, params ChainParams, epsInf, eps1 float64) (*ChainUE, error) {
	if k < 2 {
		return nil, fmt.Errorf("longitudinal: %s needs k >= 2, got %d", name, k)
	}
	if !(params.P1 > params.Q1) || !(params.P2 > params.Q2) {
		return nil, fmt.Errorf("longitudinal: %s mis-calibrated: %+v", name, params)
	}
	sampler, err := freqoracle.NewReportSampler(k, params.P2, params.Q2)
	if err != nil {
		return nil, fmt.Errorf("longitudinal: %s mis-calibrated: %w", name, err)
	}
	return &ChainUE{name: name, k: k, params: params, epsInf: epsInf, eps1: eps1, sampler: sampler}, nil
}

// NewRAPPOR returns the utility-oriented RAPPOR protocol (L-SUE).
func NewRAPPOR(k int, epsInf, eps1 float64) (*ChainUE, error) {
	p, err := LSUEParams(epsInf, eps1)
	if err != nil {
		return nil, err
	}
	return NewChainUE("RAPPOR", k, p, epsInf, eps1)
}

// NewLOSUE returns the optimized L-OSUE protocol.
func NewLOSUE(k int, epsInf, eps1 float64) (*ChainUE, error) {
	p, err := LOSUEParams(epsInf, eps1)
	if err != nil {
		return nil, err
	}
	return NewChainUE("L-OSUE", k, p, epsInf, eps1)
}

// NewLOUE returns the L-OUE protocol (OUE chained with OUE).
func NewLOUE(k int, epsInf, eps1 float64) (*ChainUE, error) {
	p, err := LOUEParams(epsInf, eps1)
	if err != nil {
		return nil, err
	}
	return NewChainUE("L-OUE", k, p, epsInf, eps1)
}

// NewLSOUE returns the L-SOUE protocol (SUE chained with OUE).
func NewLSOUE(k int, epsInf, eps1 float64) (*ChainUE, error) {
	p, err := LSOUEParams(epsInf, eps1)
	if err != nil {
		return nil, err
	}
	return NewChainUE("L-SOUE", k, p, epsInf, eps1)
}

// Name implements Protocol.
func (c *ChainUE) Name() string { return c.name }

// K implements Protocol.
func (c *ChainUE) K() int { return c.k }

// Params returns the calibrated chain probabilities.
func (c *ChainUE) Params() ChainParams { return c.params }

// EpsInf returns the longitudinal budget ε∞.
func (c *ChainUE) EpsInf() float64 { return c.epsInf }

// Eps1 returns the first-report budget ε1.
func (c *ChainUE) Eps1() float64 { return c.eps1 }

// ApproxVariance returns Eq. (5) for this chain with n users.
func (c *ChainUE) ApproxVariance(n int) float64 { return c.params.ApproxVariance(n) }

// SteadyReportBits implements Protocol: a UE report is k bits per round.
func (c *ChainUE) SteadyReportBits() int { return c.k }

// WireDecoder implements WireProtocol.
func (c *ChainUE) WireDecoder() Decoder { return UEDecoder{K: c.k} }

// Spec implements SpecProtocol. Chains built through NewChainUE with a
// custom name yield a spec whose family may not be registered; the four
// standard calibrations round-trip.
func (c *ChainUE) Spec() ProtocolSpec {
	return ProtocolSpec{Family: c.name, K: c.k, EpsInf: c.epsInf, Eps1: c.eps1}
}

// NewClient implements Protocol.
func (c *ChainUE) NewClient(seed uint64) Client {
	return &chainUEClient{
		proto:  c,
		seed:   seed,
		rng:    randsrc.NewSeeded(randsrc.Derive(seed, 0xC11E57)),
		bases:  make(map[int]uint64),
		ones:   make(map[int][]int32),
		p1T:    randsrc.BernoulliThreshold(c.params.P1),
		q1T:    randsrc.BernoulliThreshold(c.params.Q1),
		ledger: privacy.NewLedger(c.epsInf, c.k),
	}
}

// onesCacheCap bounds the per-client cache of memoized PRR one-lists.
// Evicting is always safe: a one-list is a pure PRF of (seed, value) and
// recomputes bit-identically, so the cap trades recompute time for memory
// on clients that roam across many distinct values.
const onesCacheCap = 256

type chainUEClient struct {
	proto *ChainUE
	seed  uint64
	rng   *randsrc.Rand
	// bases caches the PRF stream anchor of each memoized value, so the
	// per-bit cost of the PRR step is a single mix round.
	bases map[int]uint64
	// ones caches, per memoized value, the sorted positions whose PRR bit
	// is one — the sparse form of the memoized encoding, the only thing
	// the IRR sampler needs.
	ones     map[int][]int32
	p1T, q1T uint64
	wire     []byte // Report() scratch: one payload, reused across rounds
	ledger   *privacy.Ledger
}

// baseOf returns the PRF stream anchor for the memoized encoding of w.
//
//loloha:noalloc
func (cl *chainUEClient) baseOf(w int) uint64 {
	if b, ok := cl.bases[w]; ok {
		return b
	}
	b := randsrc.Derive(cl.seed, uint64(w))
	cl.bases[w] = b
	return b
}

// prrBit returns the memoized PRR bit i of the unary encoding of value w:
// a PRF draw, identical every time the same (w, i) pair recurs.
//
//loloha:noalloc
func (cl *chainUEClient) prrBit(w, i int) bool {
	t := cl.q1T
	if i == w {
		t = cl.p1T
	}
	return randsrc.BernoulliWord(randsrc.StreamWord(cl.baseOf(w), i), t)
}

// onesOf returns the memoized PRR one-positions of value w, cached after
// the first materialization (one O(k) PRF scan per distinct value, against
// one per *round* on the old dense path).
//
//loloha:noalloc
func (cl *chainUEClient) onesOf(w int) []int32 {
	if o, ok := cl.ones[w]; ok {
		return o
	}
	k := cl.proto.k
	//loloha:alloc-ok cold: one one-list materialization per distinct value, capped by onesCacheCap
	o := make([]int32, 0, 8+k/8)
	for i := 0; i < k; i++ {
		if cl.prrBit(w, i) {
			o = append(o, int32(i))
		}
	}
	if len(cl.ones) >= onesCacheCap {
		clear(cl.ones)
	}
	cl.ones[w] = o
	return o
}

// Report implements Client: one-hot encode, PRR (memoized), then IRR. It
// is the boxed compatibility path — AppendReport emits the same bytes with
// no Bitset or Report value.
func (cl *chainUEClient) Report(v int) Report {
	cl.wire = cl.AppendReport(cl.wire[:0], v)
	rep, _, err := DecodeUEReport(cl.wire, cl.proto.k)
	if err != nil {
		panic(err) // impossible: the scratch holds exactly one payload
	}
	return rep
}

// AppendReport implements AppendReporter: one sampler round anchored at
// the next word of the client's stream, with the memoized one-list as the
// upgraded positions. Steady state (warm caches, capacity in dst) performs
// zero allocations.
//
//loloha:noalloc
func (cl *chainUEClient) AppendReport(dst []byte, v int) []byte {
	cl.Charge(v)
	return cl.proto.sampler.AppendReport(dst, cl.rng.Uint64(), cl.onesOf(v))
}

// WireRegistration implements AppendReporter: chained UE needs no
// enrollment metadata.
func (cl *chainUEClient) WireRegistration() Registration { return Registration{} }

// Charge implements Client.
//
//loloha:noalloc
func (cl *chainUEClient) Charge(v int) {
	if v < 0 || v >= cl.proto.k {
		panic(fmt.Sprintf("longitudinal: %s value %d outside [0,%d)", cl.proto.name, v, cl.proto.k))
	}
	cl.ledger.Charge(v)
}

// PrivacySpent implements Client.
func (cl *chainUEClient) PrivacySpent() float64 { return cl.ledger.Spent() }

// UEReport is a chained-UE round payload: the k sanitized bits.
type UEReport struct {
	Bits *bitset.Bitset
}

// AppendBinary implements Report.
func (r UEReport) AppendBinary(dst []byte) []byte {
	return freqoracle.AppendUEReport(dst, r.Bits)
}

// chainUEAggregator tallies one round of UE reports.
type chainUEAggregator struct {
	proto  *ChainUE
	counts []int64
	n      int
}

// NewAggregator implements Protocol.
func (c *ChainUE) NewAggregator() Aggregator {
	return &chainUEAggregator{proto: c, counts: make([]int64, c.k)}
}

// Add implements Aggregator.
func (a *chainUEAggregator) Add(userID int, rep Report) {
	ue, ok := rep.(UEReport)
	if !ok {
		panic(fmt.Sprintf("longitudinal: %s aggregator got %T", a.proto.name, rep))
	}
	if ue.Bits.Len() != a.proto.k {
		panic(fmt.Sprintf("longitudinal: %s report has %d bits, want %d",
			a.proto.name, ue.Bits.Len(), a.proto.k))
	}
	ue.Bits.AccumulateInto(a.counts)
	a.n++
}

// Fork implements MergeableAggregator.
func (a *chainUEAggregator) Fork() Aggregator {
	return a.proto.NewAggregator()
}

// Merge implements MergeableAggregator.
func (a *chainUEAggregator) Merge(other Aggregator) {
	o, ok := other.(*chainUEAggregator)
	if !ok || o.proto != a.proto {
		panic(fmt.Sprintf("longitudinal: %s aggregator cannot merge %T", a.proto.name, other))
	}
	MergeCounts(a.counts, o.counts)
	a.n += o.n
	o.n = 0
}

// EndRound implements Aggregator.
func (a *chainUEAggregator) EndRound() []float64 {
	est := a.proto.params.EstimateAllL(a.counts, a.n)
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.n = 0
	return est
}

// EstimateDomain implements Aggregator.
func (a *chainUEAggregator) EstimateDomain() int { return a.proto.k }
