package longitudinal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Declarative protocol construction. A ProtocolSpec is a plain, serializable
// description of one protocol configuration — the config-driven pattern used
// by production LDP systems and by evaluation harnesses such as
// multi-freq-ldpy — and the family registry maps its Family name onto a
// builder and a wire decoder. One registration per family replaces three
// parallel enumeration mechanisms (positional constructors, simulation
// closures and the decoder-only server registry): a family registered once
// is usable from Stream, simulation grids and the CLI alike.

// Field names one ProtocolSpec parameter; FamilyInfo uses Fields to declare
// which parameters a family consumes, driving both validation and the CLI's
// `lolohasim specs` listing.
type Field string

// The ProtocolSpec parameters. The string values match the spec's JSON keys.
const (
	FieldK      Field = "k"
	FieldG      Field = "g"
	FieldB      Field = "b"
	FieldD      Field = "d"
	FieldEpsInf Field = "eps_inf"
	FieldEps1   Field = "eps1"
)

// specFieldOrder fixes the field iteration order so validation errors are
// deterministic.
var specFieldOrder = []Field{FieldK, FieldG, FieldB, FieldD, FieldEpsInf, FieldEps1}

// ProtocolSpec is a declarative, JSON-serializable protocol description:
// the family name plus the union of every built-in family's parameters.
// Fields a family does not consume must stay zero — Validate rejects
// anything else, so a spec never silently drops a parameter.
//
//	spec := longitudinal.ProtocolSpec{Family: "RAPPOR", K: 100, EpsInf: 1.0, Eps1: 0.5}
//	proto, err := spec.Build()
type ProtocolSpec struct {
	// Family is the registered family name (RegisterFamily).
	Family string `json:"family"`
	// K is the original domain size; every family requires it.
	K int `json:"k"`
	// G is the reduced hash domain (LOLOHA with explicit g).
	G int `json:"g,omitempty"`
	// B is the bucket count (dBitFlipPM).
	B int `json:"b,omitempty"`
	// D is the sampled bits per user (dBitFlipPM).
	D int `json:"d,omitempty"`
	// EpsInf is the longitudinal budget ε∞.
	EpsInf float64 `json:"eps_inf,omitempty"`
	// Eps1 is the first-report budget ε1 (chained protocols only).
	Eps1 float64 `json:"eps1,omitempty"`
}

// FamilyInfo describes one registered protocol family.
type FamilyInfo struct {
	// Build constructs a protocol from a validated spec. A nil Build marks
	// a decoder-only entry (the RegisterDecoder compatibility surface).
	Build func(ProtocolSpec) (Protocol, error)
	// NewDecoder returns the payload decoder for a protocol of this family;
	// the collection service consults it when the protocol does not
	// implement WireProtocol itself. May be nil.
	NewDecoder func(Protocol) (Decoder, error)
	// Required lists the spec fields the family demands (beyond being
	// non-zero, range checks live in Build).
	Required []Field
	// Optional lists spec fields the family accepts but does not demand.
	Optional []Field
	// Doc is a one-line human-readable description, shown by
	// `lolohasim specs`.
	Doc string
}

// Uses reports whether the family consumes the given spec field.
func (i FamilyInfo) Uses(f Field) bool {
	for _, r := range i.Required {
		if r == f {
			return true
		}
	}
	for _, o := range i.Optional {
		if o == f {
			return true
		}
	}
	return false
}

var (
	familyMu sync.RWMutex
	families = map[string]FamilyInfo{}
)

// RegisterFamily associates a family name with its builder, decoder factory
// and parameter domains. Registering an existing name replaces the earlier
// entry; registering a zero FamilyInfo removes it. External protocols
// register once and become constructible from a ProtocolSpec everywhere a
// built-in family is.
func RegisterFamily(name string, info FamilyInfo) {
	if name == "" {
		panic("longitudinal: RegisterFamily with empty family name")
	}
	familyMu.Lock()
	defer familyMu.Unlock()
	if info.Build == nil && info.NewDecoder == nil {
		delete(families, name)
		return
	}
	families[name] = info
}

// RegisterWireDecoder is the decoder-only compatibility surface (the former
// server.RegisterDecoder): it sets the NewDecoder of the named family,
// creating a decoder-only entry when the family is unknown. A nil factory
// clears the decoder and removes the entry entirely if it had no builder.
func RegisterWireDecoder(name string, mk func(Protocol) (Decoder, error)) {
	familyMu.Lock()
	defer familyMu.Unlock()
	info := families[name]
	info.NewDecoder = mk
	if info.Build == nil && info.NewDecoder == nil {
		delete(families, name)
		return
	}
	families[name] = info
}

// LookupFamily returns the registered info for a family name.
func LookupFamily(name string) (FamilyInfo, bool) {
	familyMu.RLock()
	defer familyMu.RUnlock()
	info, ok := families[name]
	return info, ok
}

// Families returns the registered family names, sorted.
func Families() []string {
	familyMu.RLock()
	defer familyMu.RUnlock()
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// set reports whether the spec assigns the field a non-zero value.
func (s ProtocolSpec) set(f Field) bool {
	switch f {
	case FieldK:
		return s.K != 0
	case FieldG:
		return s.G != 0
	case FieldB:
		return s.B != 0
	case FieldD:
		return s.D != 0
	case FieldEpsInf:
		return s.EpsInf != 0
	case FieldEps1:
		return s.Eps1 != 0
	}
	return false
}

// Validate checks the spec against its family's declared parameter domains:
// the family must be registered, every required field set and every field
// outside the family's domain zero. Range checks (k >= 2, 0 < ε1 < ε∞, ...)
// belong to the family's Build.
func (s ProtocolSpec) Validate() error {
	info, err := familyFor(s.Family)
	if err != nil {
		return err
	}
	return s.validateFields(info)
}

func (s ProtocolSpec) validateFields(info FamilyInfo) error {
	for _, f := range specFieldOrder {
		switch {
		case !s.set(f) && fieldIn(info.Required, f):
			return fmt.Errorf("longitudinal: family %q requires spec field %q", s.Family, f)
		case s.set(f) && !info.Uses(f):
			return fmt.Errorf("longitudinal: family %q does not take spec field %q", s.Family, f)
		}
	}
	return nil
}

func fieldIn(fs []Field, f Field) bool {
	for _, x := range fs {
		if x == f {
			return true
		}
	}
	return false
}

func familyFor(name string) (FamilyInfo, error) {
	if name == "" {
		return FamilyInfo{}, fmt.Errorf("longitudinal: protocol spec has no family (registered: %s)",
			strings.Join(Families(), ", "))
	}
	info, ok := LookupFamily(name)
	if !ok {
		return FamilyInfo{}, fmt.Errorf("longitudinal: unknown protocol family %q (registered: %s)",
			name, strings.Join(Families(), ", "))
	}
	return info, nil
}

// Build validates the spec and constructs the protocol through the family
// registry.
func (s ProtocolSpec) Build() (Protocol, error) {
	info, err := familyFor(s.Family)
	if err != nil {
		return nil, err
	}
	if info.Build == nil {
		return nil, fmt.Errorf("longitudinal: family %q is decoder-only (registered via RegisterDecoder); it cannot be built from a spec",
			s.Family)
	}
	if err := s.validateFields(info); err != nil {
		return nil, err
	}
	return info.Build(s)
}

// ParseSpec decodes one JSON ProtocolSpec, rejecting unknown fields and
// trailing data — a typo'd parameter fails loudly instead of silently
// building a different protocol.
func ParseSpec(data []byte) (ProtocolSpec, error) {
	var s ProtocolSpec
	if err := strictUnmarshal(data, &s); err != nil {
		return ProtocolSpec{}, fmt.Errorf("longitudinal: parsing protocol spec: %w", err)
	}
	return s, nil
}

// ParseSpecs decodes a JSON array of ProtocolSpecs; a single object parses
// as a one-element list.
func ParseSpecs(data []byte) ([]ProtocolSpec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] != '[' {
		s, err := ParseSpec(data)
		if err != nil {
			return nil, err
		}
		return []ProtocolSpec{s}, nil
	}
	var specs []ProtocolSpec
	if err := strictUnmarshal(data, &specs); err != nil {
		return nil, fmt.Errorf("longitudinal: parsing protocol spec list: %w", err)
	}
	return specs, nil
}

func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

// SpecProtocol is a Protocol that can describe itself as a ProtocolSpec, so
// a built protocol round-trips: spec → Build → Spec → Build produces a
// configuration with bit-identical estimates. Every protocol in this
// repository implements it; the spec captures the declarative parameters
// only (non-default construction options such as a custom hash family are
// not part of the wire-level description).
type SpecProtocol interface {
	Protocol
	// Spec returns the declarative description of this protocol.
	Spec() ProtocolSpec
}

// SpecOf returns the declarative spec of a built protocol, when the
// protocol can describe itself (every protocol in this repository can).
func SpecOf(p Protocol) (ProtocolSpec, bool) {
	sp, ok := p.(SpecProtocol)
	if !ok {
		return ProtocolSpec{}, false
	}
	return sp.Spec(), true
}

// ---------------------------------------------------------------------------
// Built-in family registrations for this package's protocols. The LOLOHA
// families register from internal/core.

func init() {
	chained := []Field{FieldK, FieldEpsInf, FieldEps1}
	ueDecoder := func(p Protocol) (Decoder, error) { return UEDecoder{K: p.K()}, nil }

	RegisterFamily("RAPPOR", FamilyInfo{
		Doc:        "RAPPOR (L-SUE): SUE chained with SUE (§2.4.1)",
		Required:   chained,
		Build:      func(s ProtocolSpec) (Protocol, error) { return NewRAPPOR(s.K, s.EpsInf, s.Eps1) },
		NewDecoder: ueDecoder,
	})
	RegisterFamily("L-OSUE", FamilyInfo{
		Doc:        "L-OSUE: OUE chained with SUE, the optimized unary-encoding baseline (§2.4.2)",
		Required:   chained,
		Build:      func(s ProtocolSpec) (Protocol, error) { return NewLOSUE(s.K, s.EpsInf, s.Eps1) },
		NewDecoder: ueDecoder,
	})
	RegisterFamily("L-OUE", FamilyInfo{
		Doc:        "L-OUE: OUE chained with OUE (infeasible (ε∞, ε1) pairs error)",
		Required:   chained,
		Build:      func(s ProtocolSpec) (Protocol, error) { return NewLOUE(s.K, s.EpsInf, s.Eps1) },
		NewDecoder: ueDecoder,
	})
	RegisterFamily("L-SOUE", FamilyInfo{
		Doc:        "L-SOUE: SUE chained with OUE (infeasible (ε∞, ε1) pairs error)",
		Required:   chained,
		Build:      func(s ProtocolSpec) (Protocol, error) { return NewLSOUE(s.K, s.EpsInf, s.Eps1) },
		NewDecoder: ueDecoder,
	})
	RegisterFamily("L-GRR", FamilyInfo{
		Doc:        "L-GRR: GRR chained with GRR, best for small domains (§2.4.3)",
		Required:   chained,
		Build:      func(s ProtocolSpec) (Protocol, error) { return NewLGRR(s.K, s.EpsInf, s.Eps1) },
		NewDecoder: func(p Protocol) (Decoder, error) { return GRRDecoder{K: p.K()}, nil },
	})

	dbitDecoder := func(Protocol) (Decoder, error) { return DBitDecoder{}, nil }
	RegisterFamily("dBitFlipPM", FamilyInfo{
		Doc:        "Microsoft dBitFlipPM: b equal-width buckets, d sampled bits per user, no IRR round (§2.4.4)",
		Required:   []Field{FieldK, FieldB, FieldD, FieldEpsInf},
		Build:      func(s ProtocolSpec) (Protocol, error) { return NewDBitFlipPM(s.K, s.B, s.D, s.EpsInf) },
		NewDecoder: dbitDecoder,
	})
	RegisterFamily("1BitFlipPM", FamilyInfo{
		Doc:      "dBitFlipPM with d = 1: one sampled bit per user (lowest communication)",
		Required: []Field{FieldK, FieldB, FieldEpsInf},
		Optional: []Field{FieldD},
		Build: func(s ProtocolSpec) (Protocol, error) {
			if s.D != 0 && s.D != 1 {
				return nil, fmt.Errorf("longitudinal: family 1BitFlipPM fixes d = 1, got d=%d", s.D)
			}
			return NewDBitFlipPM(s.K, s.B, 1, s.EpsInf)
		},
		NewDecoder: dbitDecoder,
	})
	RegisterFamily("bBitFlipPM", FamilyInfo{
		Doc:      "dBitFlipPM with d = b: every bucket sampled (best utility, b bits per round)",
		Required: []Field{FieldK, FieldB, FieldEpsInf},
		Optional: []Field{FieldD},
		Build: func(s ProtocolSpec) (Protocol, error) {
			if s.D != 0 && s.D != s.B {
				return nil, fmt.Errorf("longitudinal: family bBitFlipPM fixes d = b = %d, got d=%d", s.B, s.D)
			}
			return NewDBitFlipPM(s.K, s.B, s.B, s.EpsInf)
		},
		NewDecoder: dbitDecoder,
	})
}
