package freqoracle

import (
	"bytes"
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// samplerGrid spans the calibrations the protocols actually produce: very
// sparse q (large ε OUE-style IRR), moderately sparse, and dense SUE-style.
var samplerGrid = []struct{ p, q float64 }{
	{0.5, 0.018},
	{0.5, 0.119},
	{0.803, 0.197},
	{0.765, 0.235},
	{0.731, 0.269},
	{0.9, 0.45},
	{1, 0.1},     // deterministic ones
	{0.25, 0},    // no base pass
	{0.02, 0.02}, // p == q: ones behave like zeros
}

// onesPatterns returns representative "one" sets for domain size k: empty,
// singleton at the boundaries, and a spread multi-one set.
func onesPatterns(k int) [][]int32 {
	// The sampler contract wants ones sorted ascending and distinct, so
	// dedupe the candidates (they collide for tiny k).
	dedupe := func(in []int32) []int32 {
		var out []int32
		for _, v := range in {
			if len(out) == 0 || out[len(out)-1] != v {
				out = append(out, v)
			}
		}
		return out
	}
	return [][]int32{
		nil,
		{0},
		{int32(k) - 1},
		{int32(k) / 2},
		dedupe([]int32{0, int32(k) / 3, int32(k) / 2, int32(k) - 1}),
	}
}

// TestReportSamplerPathsBitIdentical is the parity gate of the sparse
// refactor: the sparse walk and the dense reference loop must produce
// byte-identical payloads for every calibration, domain size, "one"
// pattern and round anchor.
func TestReportSamplerPathsBitIdentical(t *testing.T) {
	for _, k := range []int{1, 7, 16, 64, 1024} {
		for _, pq := range samplerGrid {
			s, err := NewReportSampler(k, pq.p, pq.q)
			if err != nil {
				t.Fatal(err)
			}
			for _, ones := range onesPatterns(k) {
				for rb := uint64(0); rb < 200; rb++ {
					sparse, dense := s, s
					sparse.Sparse, dense.Sparse = true, false
					got := sparse.AppendReport(nil, rb*0x9E3779B9+1, ones)
					want := dense.AppendReport(nil, rb*0x9E3779B9+1, ones)
					if !bytes.Equal(got, want) {
						t.Fatalf("k=%d p=%v q=%v ones=%v rb=%d: sparse %x != dense %x",
							k, pq.p, pq.q, ones, rb, got, want)
					}
				}
			}
		}
	}
}

func TestReportSamplerRejectsBadParams(t *testing.T) {
	for _, bad := range []struct {
		k    int
		p, q float64
	}{
		{0, 0.5, 0.1},
		{8, 0.1, 0.5},  // p < q
		{8, 1.1, 0.5},  // p > 1
		{8, 0.5, -0.1}, // q < 0
		{8, 1, 1},      // q == 1
		{8, math.NaN(), 0.1},
	} {
		if _, err := NewReportSampler(bad.k, bad.p, bad.q); err == nil {
			t.Errorf("NewReportSampler(%d, %v, %v) accepted", bad.k, bad.p, bad.q)
		}
	}
}

// TestReportSamplerMarginals checks the per-position flip probabilities on
// both paths: base positions fire at rate q, "one" positions at rate p.
func TestReportSamplerMarginals(t *testing.T) {
	const k, rounds = 64, 60000
	for _, pq := range []struct{ p, q float64 }{{0.5, 0.119}, {0.803, 0.197}} {
		for _, sparse := range []bool{false, true} {
			s, err := NewReportSampler(k, pq.p, pq.q)
			if err != nil {
				t.Fatal(err)
			}
			s.Sparse = sparse
			ones := []int32{5, 40}
			counts := make([]int, k)
			buf := make([]byte, 0, s.PayloadBytes())
			r := randsrc.NewSeeded(7)
			for round := 0; round < rounds; round++ {
				buf = s.AppendReport(buf[:0], r.Uint64(), ones)
				for i := 0; i < k; i++ {
					if buf[i>>3]>>(uint(i)&7)&1 == 1 {
						counts[i]++
					}
				}
			}
			for i := 0; i < k; i++ {
				want := pq.q
				if i == 5 || i == 40 {
					want = pq.p
				}
				got := float64(counts[i]) / rounds
				// 6-sigma binomial tolerance at the larger rate.
				if math.Abs(got-want) > 0.013 {
					t.Errorf("sparse=%v p=%v q=%v: position %d fires at %v, want %v",
						sparse, pq.p, pq.q, i, got, want)
				}
			}
		}
	}
}

// TestReportSamplerFlipCountsBinomial is the χ² goodness-of-fit gate: with
// no "one" positions, the number of skip-sampled flips per round must
// follow Binomial(k, q). Counts are pooled so every cell has expected
// frequency >= 5, the usual χ² validity rule.
func TestReportSamplerFlipCountsBinomial(t *testing.T) {
	const k, rounds = 64, 40000
	const q = 0.1
	s, err := NewReportSampler(k, q, q)
	if err != nil {
		t.Fatal(err)
	}
	s.Sparse = true

	observed := make([]int, k+1)
	buf := make([]byte, 0, s.PayloadBytes())
	r := randsrc.NewSeeded(13)
	for round := 0; round < rounds; round++ {
		buf = s.AppendReport(buf[:0], r.Uint64(), nil)
		flips := 0
		for _, b := range buf {
			for w := b; w != 0; w &= w - 1 {
				flips++
			}
		}
		observed[flips]++
	}

	// Binomial(k, q) pmf via the recurrence pmf(i+1)/pmf(i).
	pmf := make([]float64, k+1)
	pmf[0] = math.Pow(1-q, k)
	for i := 0; i < k; i++ {
		pmf[i+1] = pmf[i] * float64(k-i) / float64(i+1) * q / (1 - q)
	}

	// Pool consecutive outcomes until each cell expects >= 5 rounds; fold
	// the remainder tail into the final cell.
	var cellObs, cellExp []float64
	obs, exp := 0.0, 0.0
	for i := 0; i <= k; i++ {
		obs += float64(observed[i])
		exp += pmf[i] * rounds
		if exp >= 5 {
			cellObs, cellExp = append(cellObs, obs), append(cellExp, exp)
			obs, exp = 0, 0
		}
	}
	if len(cellExp) == 0 {
		t.Fatal("no χ² cells; rounds too small")
	}
	cellObs[len(cellObs)-1] += obs
	cellExp[len(cellExp)-1] += exp
	var chi2 float64
	for i := range cellObs {
		d := cellObs[i] - cellExp[i]
		chi2 += d * d / cellExp[i]
	}
	cells := len(cellObs)
	// Critical value of χ² at significance 1e-4 grows roughly like
	// df + 4*sqrt(2*df) + 15; with the fixed seed above this is a
	// deterministic regression test, not a flaky statistical one.
	df := float64(cells - 1)
	crit := df + 4*math.Sqrt(2*df) + 15
	if chi2 > crit {
		t.Errorf("skip-sampled flip counts: χ² = %.1f over %d cells (crit ~%.1f); not Binomial(%d, %v)?",
			chi2, cells, crit, k, q)
	}
}

// TestUEPrivatizeMatchesSamplerContract: the one-shot UE mechanism must be
// exactly one sampler round with ones = {v} anchored at the next word of
// the caller's stream.
func TestUEPrivatizeMatchesSamplerContract(t *testing.T) {
	const k, eps = 48, 2.0
	m, err := NewOUE(k, eps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewReportSampler(k, m.Params().P, m.Params().Q)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed < 50; seed++ {
		r1, r2 := randsrc.NewSeeded(seed), randsrc.NewSeeded(seed)
		v := int(seed) % k
		got := AppendUEReport(nil, m.Privatize(v, r1))
		ones := [1]int32{int32(v)}
		want := s.AppendReport(nil, r2.Uint64(), ones[:])
		if !bytes.Equal(got, want) {
			t.Fatalf("seed %d: Privatize(%d) = %x, sampler contract %x", seed, v, got, want)
		}
	}
}
