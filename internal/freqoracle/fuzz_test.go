package freqoracle

import (
	"math"
	"testing"
)

// Fuzz targets for the allocation-free payload readers and the LH decoder:
// arbitrary bytes must produce either a valid value or an error — never a
// panic, never an out-of-domain value. `go test` exercises the seed
// corpus; `go test -fuzz` explores.

func FuzzDecodeLHReport(f *testing.F) {
	f.Add([]byte{}, 2)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 0}, 16)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 300)
	f.Fuzz(func(t *testing.T, data []byte, gRaw int) {
		g := gRaw%1000 + 2
		if g < 2 {
			g = 2
		}
		rep, _, err := DecodeLHReport(data, g)
		if err != nil {
			return
		}
		if rep.X < 0 || rep.X >= g {
			t.Fatalf("decoded hash %d outside [0,%d)", rep.X, g)
		}
	})
}

func FuzzParseGRRPayload(f *testing.F) {
	f.Add([]byte{0x00}, 10)
	f.Add([]byte{0xFF, 0xFF}, 70000)
	f.Add([]byte{}, 2)
	f.Fuzz(func(t *testing.T, data []byte, kRaw int) {
		k := kRaw%100000 + 2
		if k < 2 {
			k = 2
		}
		v, err := ParseGRRPayload(data, k)
		if err != nil {
			return
		}
		if v < 0 || v >= k {
			t.Fatalf("parsed %d outside [0,%d)", v, k)
		}
		if len(data) != GRRPayloadBytes(k) {
			t.Fatalf("accepted %d payload bytes, want exactly %d", len(data), GRRPayloadBytes(k))
		}
	})
}

func FuzzCheckUEPayload(f *testing.F) {
	f.Add([]byte{0x0F}, 4)
	f.Add([]byte{0xFF, 0x01}, 9)
	f.Add([]byte{}, 64)
	f.Fuzz(func(t *testing.T, data []byte, kRaw int) {
		k := kRaw%4096 + 1
		if k < 1 {
			k = 1
		}
		if err := CheckUEPayload(data, k); err != nil {
			return
		}
		// An accepted payload must accumulate within bounds and agree with
		// the boxed decoder on every bit.
		counts := make([]int64, k)
		AccumulateUEPayload(data, k, counts)
		bs, _, err := DecodeUEReport(data, k)
		if err != nil {
			t.Fatalf("CheckUEPayload accepted what DecodeUEReport rejects: %v", err)
		}
		for i := 0; i < k; i++ {
			want := int64(0)
			if bs.Get(i) {
				want = 1
			}
			if counts[i] != want {
				t.Fatalf("bit %d: accumulated %d, decoded %d", i, counts[i], want)
			}
		}
	})
}

func FuzzGRRParams(f *testing.F) {
	f.Add(1.0, 10)
	f.Add(math.Inf(1), 4)
	f.Add(math.NaN(), 4)
	f.Add(-3.0, 2)
	f.Fuzz(func(t *testing.T, eps float64, k int) {
		p, err := GRRParams(eps, k)
		if err != nil {
			return
		}
		if math.IsNaN(p.P) || math.IsNaN(p.Q) || !p.Valid() {
			t.Fatalf("GRRParams(%v, %d) accepted unusable params %+v", eps, k, p)
		}
	})
}
