package freqoracle

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// ReportSampler draws one UE-family sanitization round: every position of a
// k-bit vector flips to one with a base probability q, except a (typically
// small) set of "one" positions — the memoized/encoded support — that flip
// with probability p >= q. One-shot unary encoding is the instance with
// ones = {v}; the chained-UE IRR step is the instance whose ones are the
// memoized PRR one-positions; dBitFlipPM is the instance over the d sampled
// slots with at most one "one".
//
// # The canonical randomness contract
//
// A round is a deterministic function of (rb, ones), where rb is the
// caller's per-round 64-bit anchor. Two counter-addressable word streams
// are derived from it:
//
//	base(j) = StreamWord(Derive(rb, 0), j)   j = 0, 1, 2, ...
//	up(j)   = StreamWord(Derive(rb, 1), j)
//
// Base flips are drawn from base() as a geometric gap walk with parameter
// q (nextGap below): consecutive gaps give the positions where an
// independent Bernoulli(q) would fire, in O(k·q + 1) draws instead of k.
// Every "one" position i that did NOT base-fire then draws one word from
// up(), in ascending position order, and fires iff the word falls under
// the conditional upgrade threshold r = (p−q)/(1−q) — lifting its total
// flip probability to q + (1−q)·r = p while every other position stays at
// q. Because both streams are addressed by draw counter, not by generator
// state, any implementation that walks positions in ascending order
// consumes identical words and produces bit-identical output.
//
// Two implementations exist: a dense per-position reference loop and a
// sparse walk that touches only the flip and "one" positions. They are
// proven bit-identical in tests (TestReportSamplerPathsBitIdentical), so
// the density threshold below may pick either freely. External protocols
// that want to interoperate with this wire format reuse ReportSampler (or
// reimplement this contract word for word).
type ReportSampler struct {
	k    int
	rT   uint64 // conditional upgrade threshold for (p-q)/(1-q)
	hasQ bool   // q > 0: the base pass exists
	// Gap sampler state: geoT, when non-nil, holds the 256-entry
	// fixed-point inverse CDF of Geometric(q) — geoT[g] is the 64-bit
	// threshold of Pr[G <= g] — and geoLut jump-starts the inversion: for
	// a raw word w, geoLut[w>>56] is a lower bound on the answer, and a
	// short linear scan (usually zero or one compare) finishes it. No
	// floating point and no data-dependent branching tree in the hot
	// loop. For very sparse q (below geoTableMinQ, where the table would
	// cover too little mass) geoT is nil and gaps fall back to log
	// inversion via invQ.
	geoT   []uint64
	geoLut []int16
	invQ   float64
	// Sparse selects the sparse walk; NewReportSampler auto-selects it
	// whenever the expected flip density makes skipping pay
	// (q <= SparseQMax). Exported so tests can force either path.
	Sparse bool
}

// geoTableMinQ is the base density below which the gap sampler uses log
// inversion instead of the threshold table: the 256-entry table covers
// (1-(1-q)^256) of the mass, so below ~1/128 the escape loop would run
// too often — and with so few flips per report the log cost is paid
// rarely anyway.
const geoTableMinQ = 1.0 / 128

// SparseQMax is the base flip density above which the sampler prefers the
// dense reference loop: with q this large the gap walk visits a large
// fraction of positions anyway, and the straightforward loop's
// per-position cost is predictable. Both paths are bit-identical, so the
// threshold affects only speed, never output.
const SparseQMax = 0.25

// NewReportSampler returns a sampler over k positions with base flip
// probability q and "one"-position flip probability p. Requires k >= 1 and
// 0 <= q <= p <= 1 with q < 1.
func NewReportSampler(k int, p, q float64) (ReportSampler, error) {
	if k < 1 {
		return ReportSampler{}, fmt.Errorf("freqoracle: sampler needs k >= 1, got %d", k)
	}
	if !(q >= 0) || !(q < 1) || !(p >= q) || !(p <= 1) {
		return ReportSampler{}, fmt.Errorf("freqoracle: sampler needs 0 <= q <= p <= 1, q < 1, got p=%v q=%v", p, q)
	}
	s := ReportSampler{k: k, Sparse: q <= SparseQMax}
	if q > 0 {
		s.hasQ = true
		if q >= geoTableMinQ {
			s.geoT = geoThresholds(q)
			s.geoLut = geoJumpTable(s.geoT)
		} else {
			s.invQ = randsrc.GeometricInv(q)
		}
	}
	s.rT = randsrc.BernoulliThreshold((p - q) / (1 - q))
	return s, nil
}

// geoThresholds builds the fixed-point inverse CDF of Geometric(q):
// entry g holds the 64-bit threshold of Pr[G <= g] = 1 - (1-q)^(g+1), so
// a raw uniform word w maps to the smallest g with w < geoT[g], and words
// beyond geoT[255] escape to g >= 256 (handled by the memoryless
// recursion in nextGap). Quantization is the same 2^-64 granularity every
// Bernoulli threshold in this repository accepts.
func geoThresholds(q float64) []uint64 {
	t := make([]uint64, 256)
	tail := 1.0 // (1-q)^g
	for g := range t {
		tail *= 1 - q
		t[g] = randsrc.BernoulliThreshold(1 - tail)
	}
	return t
}

// geoJumpTable indexes the inverse CDF by the top byte of a uniform word:
// entry b is the smallest g whose threshold exceeds the bucket's lowest
// word (b << 56), i.e. a lower bound on the inversion answer for every w
// in the bucket. The geometric pmf decays fast, so almost every bucket
// lies inside one CDF cell and the scan in nextGap finishes immediately.
func geoJumpTable(t []uint64) []int16 {
	lut := make([]int16, 256)
	g := 0
	for b := range lut {
		low := uint64(b) << 56
		for g < len(t) && t[g] <= low {
			g++
		}
		lut[b] = int16(g) // len(t) means "past the table": escape
	}
	return lut
}

// nextGap draws the next base-flip gap from the counter-addressed stream
// anchored at baseA, advancing *j by the words consumed. Table path: the
// jump table bounds the answer from below and a short scan finishes the
// inversion; a word past the table's mass adds 256 and redraws (Geometric
// is memoryless, so the recursion is exact).
//
//loloha:noalloc
func (s *ReportSampler) nextGap(baseA uint64, j *int) int {
	if s.geoT == nil {
		w := randsrc.StreamWord(baseA, *j)
		*j++
		return randsrc.GeometricWord(w, s.invQ)
	}
	t := s.geoT
	total := 0
	for {
		w := randsrc.StreamWord(baseA, *j)
		*j++
		g := int(s.geoLut[w>>56])
		for g < 256 && w >= t[g] {
			g++
		}
		if g == 256 {
			total += 256
			continue
		}
		return total + g
	}
}

// K returns the number of positions per round.
//
//loloha:noalloc
func (s *ReportSampler) K() int { return s.k }

// PayloadBytes returns the wire size of one round: the k bits packed
// little-endian, as AppendUEReport lays them out.
//
//loloha:noalloc
func (s *ReportSampler) PayloadBytes() int { return UEPayloadBytes(s.k) }

// AppendReport appends one round's wire payload — PayloadBytes() bytes, the
// k sanitized bits packed little-endian — to dst and returns the extended
// buffer. rb anchors the round's randomness; ones lists the positions whose
// flip probability is p, sorted ascending, distinct, each in [0..k). When
// dst has capacity the call performs no allocations.
//
//loloha:noalloc
func (s *ReportSampler) AppendReport(dst []byte, rb uint64, ones []int32) []byte {
	n := UEPayloadBytes(s.k)
	dst = append(dst, make([]byte, n)...)
	buf := dst[len(dst)-n:]
	if s.Sparse {
		s.sparseInto(buf, rb, ones)
	} else {
		s.denseInto(buf, rb, ones)
	}
	return dst
}

// sparseInto is the production path for sparse q: it walks only the base
// flips (geometric gaps) and the "one" positions, merged in ascending
// order, so a round costs O(k·q + len(ones) + 1) word draws.
//
//loloha:noalloc
func (s *ReportSampler) sparseInto(buf []byte, rb uint64, ones []int32) {
	baseA := randsrc.Derive(rb, 0)
	upA := randsrc.Derive(rb, 1)
	j, uj, oi := 0, 0, 0
	next := s.k // next base flip; k means "none"
	if s.hasQ {
		next = s.nextGap(baseA, &j)
	}
	for next < s.k || oi < len(ones) {
		if oi < len(ones) && int(ones[oi]) < next {
			// A "one" position the base pass skipped: one upgrade draw.
			if randsrc.BernoulliWord(randsrc.StreamWord(upA, uj), s.rT) {
				i := int(ones[oi])
				buf[i>>3] |= 1 << (uint(i) & 7)
			}
			uj++
			oi++
			continue
		}
		if next >= s.k {
			break
		}
		buf[next>>3] |= 1 << (uint(next) & 7)
		if oi < len(ones) && int(ones[oi]) == next {
			oi++ // base-fired "one": already set, no upgrade draw
		}
		next += 1 + s.nextGap(baseA, &j)
	}
}

// denseInto is the reference implementation: a per-position loop that
// consumes the canonical streams exactly as the sparse walk does, kept as
// the obviously-correct form the parity tests pin the sparse path against
// and as the faster path when flips are dense.
//
//loloha:noalloc
func (s *ReportSampler) denseInto(buf []byte, rb uint64, ones []int32) {
	baseA := randsrc.Derive(rb, 0)
	upA := randsrc.Derive(rb, 1)
	j, uj, oi := 0, 0, 0
	next := s.k
	if s.hasQ {
		next = s.nextGap(baseA, &j)
	}
	for i := 0; i < s.k; i++ {
		baseFired := i == next
		if baseFired {
			buf[i>>3] |= 1 << (uint(i) & 7)
			next += 1 + s.nextGap(baseA, &j)
		}
		if oi < len(ones) && int(ones[oi]) == i {
			oi++
			if !baseFired {
				if randsrc.BernoulliWord(randsrc.StreamWord(upA, uj), s.rT) {
					buf[i>>3] |= 1 << (uint(i) & 7)
				}
				uj++
			}
		}
	}
}
