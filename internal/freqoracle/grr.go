package freqoracle

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// GRR is the Generalized Randomized Response mechanism M_GRR over the
// domain [0..k): the input is kept with probability p = e^ε/(e^ε+k−1) and
// otherwise replaced by a uniform different value (§2.3.1).
type GRR struct {
	k       int
	params  Params
	eps     float64
	pThresh uint64
}

// NewGRR returns a GRR mechanism for domain size k at privacy level eps.
func NewGRR(k int, eps float64) (*GRR, error) {
	params, err := GRRParams(eps, k)
	if err != nil {
		return nil, err
	}
	return &GRR{
		k:       k,
		params:  params,
		eps:     eps,
		pThresh: randsrc.BernoulliThreshold(params.P),
	}, nil
}

// K returns the domain size.
func (m *GRR) K() int { return m.k }

// Eps returns the privacy level ε.
func (m *GRR) Eps() float64 { return m.eps }

// Params returns the calibrated (p, q).
func (m *GRR) Params() Params { return m.params }

// Perturb applies M_GRR to v. It panics if v is outside [0..k); domain
// membership is the caller's contract.
//
//loloha:noalloc
func (m *GRR) Perturb(v int, r *randsrc.Rand) int {
	if v < 0 || v >= m.k {
		panic(fmt.Sprintf("freqoracle: GRR input %d outside [0,%d)", v, m.k))
	}
	if randsrc.BernoulliWord(r.Uint64(), m.pThresh) {
		return v
	}
	return r.IntnOther(m.k, v)
}

// PerturbWord applies M_GRR to v consuming exactly the supplied uniform
// words: keep is decided by w1 and the replacement (if any) is derived from
// w2. This deterministic form implements PRF-based memoization: feeding the
// same (w1, w2) always yields the same output, which is exactly "memoize
// x' for x" in Algorithm 1 without storing the table.
//
//loloha:noalloc
func (m *GRR) PerturbWord(v int, w1, w2 uint64) int {
	if v < 0 || v >= m.k {
		panic(fmt.Sprintf("freqoracle: GRR input %d outside [0,%d)", v, m.k))
	}
	if randsrc.BernoulliWord(w1, m.pThresh) {
		return v
	}
	// Map w2 uniformly onto [0..k−1) and skip v.
	x := int(uint64(m.k-1) * (w2 >> 32) >> 32)
	if x >= v {
		x++
	}
	return x
}

// GRRAggregator tallies GRR reports and produces Eq. (1) estimates.
type GRRAggregator struct {
	mech   *GRR
	counts []int64
	n      int
}

// NewGRRAggregator returns an empty aggregator for the mechanism.
func NewGRRAggregator(m *GRR) *GRRAggregator {
	return &GRRAggregator{mech: m, counts: make([]int64, m.k)}
}

// Add tallies one sanitized report. It panics on out-of-range reports: those
// indicate a protocol mismatch, not user noise.
func (a *GRRAggregator) Add(report int) {
	if report < 0 || report >= a.mech.k {
		panic(fmt.Sprintf("freqoracle: GRR report %d outside [0,%d)", report, a.mech.k))
	}
	a.counts[report]++
	a.n++
}

// N returns the number of reports tallied.
func (a *GRRAggregator) N() int { return a.n }

// Estimate returns the unbiased frequency estimates for all k values.
func (a *GRRAggregator) Estimate() []float64 {
	return EstimateAll(a.counts, a.n, a.mech.params)
}
