package freqoracle

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/domain"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// drawZipf draws n values in [0..k) from a simple Zipf-like distribution so
// that unbiasedness is exercised on a skewed histogram.
func drawZipf(n, k int, r *randsrc.Rand) []int {
	weights := make([]float64, k)
	total := 0.0
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		total += weights[i]
	}
	cdf := make([]float64, k)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	out := make([]int, n)
	for i := range out {
		u := r.Float64()
		for v, c := range cdf {
			if u <= c {
				out[i] = v
				break
			}
		}
	}
	return out
}

// mse returns the mean squared error between two histograms.
func mse(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a))
}

func TestGRREndToEndUnbiased(t *testing.T) {
	const k, n, eps = 12, 60000, 2.0
	r := randsrc.NewSeeded(101)
	values := drawZipf(n, k, r)
	truth := domain.TrueFrequencies(values, k)

	m, err := NewGRR(k, eps)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewGRRAggregator(m)
	for _, v := range values {
		agg.Add(m.Perturb(v, r))
	}
	est := agg.Estimate()
	// Estimates must track truth within a few standard deviations of the
	// theoretical variance.
	sd := math.Sqrt(ApproxVarGRR(eps, k, n))
	for v := range truth {
		if math.Abs(est[v]-truth[v]) > 6*sd+0.01 {
			t.Errorf("GRR estimate[%d] = %v, truth %v (sd %v)", v, est[v], truth[v], sd)
		}
	}
	// Estimates sum to ~1 (a consequence of Eq. (1) and Σ C(v) = n).
	sum := 0.0
	for _, e := range est {
		sum += e
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("GRR estimates sum to %v", sum)
	}
}

func TestGRRKeepRate(t *testing.T) {
	const k, eps = 8, 1.5
	m, _ := NewGRR(k, eps)
	r := randsrc.NewSeeded(7)
	const trials = 200000
	kept := 0
	for i := 0; i < trials; i++ {
		if m.Perturb(3, r) == 3 {
			kept++
		}
	}
	got := float64(kept) / trials
	if math.Abs(got-m.Params().P) > 0.005 {
		t.Errorf("GRR keep rate %v, want %v", got, m.Params().P)
	}
}

func TestGRRNoiseUniformOverOthers(t *testing.T) {
	const k, eps = 6, 1.0
	m, _ := NewGRR(k, eps)
	r := randsrc.NewSeeded(13)
	counts := make([]int, k)
	const trials = 120000
	for i := 0; i < trials; i++ {
		counts[m.Perturb(0, r)]++
	}
	// Each wrong value should appear with probability q.
	q := m.Params().Q
	for v := 1; v < k; v++ {
		got := float64(counts[v]) / trials
		if math.Abs(got-q) > 0.005 {
			t.Errorf("noise value %d rate %v, want %v", v, got, q)
		}
	}
}

func TestGRRPerturbWordDeterministic(t *testing.T) {
	m, _ := NewGRR(10, 1.0)
	r := randsrc.NewSeeded(3)
	for i := 0; i < 1000; i++ {
		w1, w2 := r.Uint64(), r.Uint64()
		v := i % 10
		a := m.PerturbWord(v, w1, w2)
		b := m.PerturbWord(v, w1, w2)
		if a != b {
			t.Fatal("PerturbWord not deterministic")
		}
		if a < 0 || a >= 10 {
			t.Fatalf("PerturbWord out of range: %d", a)
		}
	}
}

func TestGRRPerturbWordMatchesDistribution(t *testing.T) {
	// The word-driven form must induce the same (p, q) distribution as the
	// stream form.
	const k, eps = 5, 1.2
	m, _ := NewGRR(k, eps)
	r := randsrc.NewSeeded(17)
	counts := make([]int, k)
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[m.PerturbWord(2, r.Uint64(), r.Uint64())]++
	}
	if got := float64(counts[2]) / trials; math.Abs(got-m.Params().P) > 0.005 {
		t.Errorf("PerturbWord keep rate %v, want %v", got, m.Params().P)
	}
	for v := 0; v < k; v++ {
		if v == 2 {
			continue
		}
		if got := float64(counts[v]) / trials; math.Abs(got-m.Params().Q) > 0.005 {
			t.Errorf("PerturbWord value %d rate %v, want %v", v, got, m.Params().Q)
		}
	}
}

func TestLHEndToEnd(t *testing.T) {
	const k, n, eps = 50, 40000, 3.0
	r := randsrc.NewSeeded(211)
	values := drawZipf(n, k, r)
	truth := domain.TrueFrequencies(values, k)

	m, err := NewOLH(k, eps)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewLHAggregator(m)
	for _, v := range values {
		agg.Add(m.Privatize(v, r))
	}
	est := agg.Estimate()
	sd := math.Sqrt(ApproxVarLH(eps, m.G(), n))
	for v := range truth {
		if math.Abs(est[v]-truth[v]) > 6*sd+0.02 {
			t.Errorf("OLH estimate[%d] = %v, truth %v (sd %v)", v, est[v], truth[v], sd)
		}
	}
}

func TestBLHBinary(t *testing.T) {
	m, err := NewBLH(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if m.G() != 2 {
		t.Fatalf("BLH g = %d, want 2", m.G())
	}
	r := randsrc.NewSeeded(5)
	rep := m.Privatize(42, r)
	if rep.X != 0 && rep.X != 1 {
		t.Errorf("BLH report %d not binary", rep.X)
	}
}

func TestLHEmpiricalVarianceMatchesTheory(t *testing.T) {
	// Estimate a zero-frequency value many times; the sample variance must
	// match ApproxVarLH within statistical tolerance.
	const k, n, eps, rounds = 20, 2000, 1.0, 40
	m, _ := NewBLH(k, eps)
	r := randsrc.NewSeeded(23)
	var ests []float64
	for round := 0; round < rounds; round++ {
		agg := NewLHAggregator(m)
		for i := 0; i < n; i++ {
			agg.Add(m.Privatize(0, r)) // nobody holds value k-1
		}
		ests = append(ests, agg.Estimate()[k-1])
	}
	mean, varSum := 0.0, 0.0
	for _, e := range ests {
		mean += e
	}
	mean /= rounds
	for _, e := range ests {
		varSum += (e - mean) * (e - mean)
	}
	sampleVar := varSum / (rounds - 1)
	want := ApproxVarLH(eps, 2, n)
	// Sample variance of 40 draws has relative sd ~ sqrt(2/39) ~ 23%.
	if sampleVar < want/2.5 || sampleVar > want*2.5 {
		t.Errorf("BLH sample variance %v, theory %v", sampleVar, want)
	}
	if math.Abs(mean) > 6*math.Sqrt(want/rounds) {
		t.Errorf("BLH estimator biased: mean %v for true 0", mean)
	}
}

func TestUEEndToEnd(t *testing.T) {
	const k, n, eps = 30, 30000, 2.0
	r := randsrc.NewSeeded(307)
	values := drawZipf(n, k, r)
	truth := domain.TrueFrequencies(values, k)

	for name, mk := range map[string]func(int, float64) (*UE, error){
		"SUE": NewSUE,
		"OUE": NewOUE,
	} {
		m, err := mk(k, eps)
		if err != nil {
			t.Fatal(err)
		}
		agg := NewUEAggregator(m)
		for _, v := range values {
			agg.Add(m.Privatize(v, r))
		}
		est := agg.Estimate()
		sd := math.Sqrt(ApproxVarUE(m.Params(), n))
		for v := range truth {
			if math.Abs(est[v]-truth[v]) > 6*sd+0.01 {
				t.Errorf("%s estimate[%d] = %v, truth %v", name, v, est[v], truth[v])
			}
		}
	}
}

func TestUEBitRates(t *testing.T) {
	const k, eps = 16, 1.0
	m, _ := NewOUE(k, eps)
	r := randsrc.NewSeeded(31)
	const trials = 50000
	ones := make([]int, k)
	for i := 0; i < trials; i++ {
		rep := m.Privatize(4, r)
		for v := 0; v < k; v++ {
			if rep.Get(v) {
				ones[v]++
			}
		}
	}
	pHat := float64(ones[4]) / trials
	if math.Abs(pHat-m.Params().P) > 0.01 {
		t.Errorf("true-bit rate %v, want %v", pHat, m.Params().P)
	}
	for v := 0; v < k; v++ {
		if v == 4 {
			continue
		}
		qHat := float64(ones[v]) / trials
		if math.Abs(qHat-m.Params().Q) > 0.01 {
			t.Errorf("zero-bit %d rate %v, want %v", v, qHat, m.Params().Q)
		}
	}
}

func TestOUELowerMSEThanSUEEmpirical(t *testing.T) {
	// At ε = 2 the theoretical OUE/SUE variance ratio is ~1.27, well clear
	// of the ~6% MSE sampling noise at these sizes (at ε = 1 the gap is
	// only ~7% and the comparison would hinge on seed luck).
	const k, n, eps = 40, 8000, 2.0
	r := randsrc.NewSeeded(41)
	values := drawZipf(n, k, r)
	truth := domain.TrueFrequencies(values, k)
	run := func(mk func(int, float64) (*UE, error)) float64 {
		total := 0.0
		const reps = 16
		for rep := 0; rep < reps; rep++ {
			m, _ := mk(k, eps)
			agg := NewUEAggregator(m)
			for _, v := range values {
				agg.Add(m.Privatize(v, r))
			}
			total += mse(agg.Estimate(), truth)
		}
		return total / reps
	}
	if sue, oue := run(NewSUE), run(NewOUE); oue >= sue {
		t.Errorf("OUE MSE %v not below SUE MSE %v", oue, sue)
	}
}

func TestAggregatorsPanicOnBadReports(t *testing.T) {
	grr, _ := NewGRR(5, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GRR aggregator accepted out-of-range report")
			}
		}()
		NewGRRAggregator(grr).Add(5)
	}()

	ue, _ := NewOUE(5, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("UE aggregator accepted wrong-length report")
			}
		}()
		agg := NewUEAggregator(ue)
		m2, _ := NewOUE(6, 1)
		agg.Add(m2.Privatize(0, randsrc.NewSeeded(1)))
	}()
}

func TestNewLHRejectsBadShape(t *testing.T) {
	if _, err := NewBLH(1, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewOLH(10, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewUE(1, Params{P: .6, Q: .4}, 1); err == nil {
		t.Error("UE k=1 accepted")
	}
}
