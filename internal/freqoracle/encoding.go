package freqoracle

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"github.com/loloha-ldp/loloha/internal/bitset"
)

// Wire encodings for the one-shot reports. These exist so that the
// communication-cost column of Table 1 can be *measured* rather than only
// stated: benchmarks serialize reports and record bytes per user per round.

// valueBytes returns the number of bytes needed to carry one value of a
// domain of size k (⌈log₂k⌉ bits rounded up to whole bytes).
//
//loloha:noalloc
func valueBytes(k int) int {
	if k <= 1 {
		return 1
	}
	b := bits.Len(uint(k - 1)) // ceil(log2 k) for k>1
	return (b + 7) / 8
}

// AppendGRRReport appends the wire form of a GRR report over domain size k.
//
//loloha:noalloc
func AppendGRRReport(dst []byte, report, k int) []byte {
	n := valueBytes(k)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(report))
	return append(dst, buf[:n]...)
}

// DecodeGRRReport reads a GRR report over domain size k from src, returning
// the report and the remaining bytes.
//
//loloha:noalloc
func DecodeGRRReport(src []byte, k int) (int, []byte, error) {
	n := valueBytes(k)
	if len(src) < n {
		return 0, nil, fmt.Errorf("freqoracle: short GRR report: %d bytes, want %d", len(src), n)
	}
	var buf [8]byte
	copy(buf[:], src[:n])
	v := int(binary.LittleEndian.Uint64(buf[:]))
	if v >= k {
		return 0, nil, fmt.Errorf("freqoracle: GRR report %d outside [0,%d)", v, k)
	}
	return v, src[n:], nil
}

// AppendLHReport appends the wire form of an LH report: the 8-byte hash
// seed followed by the perturbed hash over [0..g).
//
//loloha:noalloc
func AppendLHReport(dst []byte, rep LHReport, g int) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], rep.Seed)
	dst = append(dst, buf[:]...)
	return AppendGRRReport(dst, rep.X, g)
}

// DecodeLHReport reads an LH report with reduced domain g from src.
//
//loloha:noalloc
func DecodeLHReport(src []byte, g int) (LHReport, []byte, error) {
	if len(src) < 8 {
		return LHReport{}, nil, fmt.Errorf("freqoracle: short LH report: %d bytes", len(src))
	}
	seed := binary.LittleEndian.Uint64(src[:8])
	x, rest, err := DecodeGRRReport(src[8:], g)
	if err != nil {
		return LHReport{}, nil, err
	}
	return LHReport{Seed: seed, X: x}, rest, nil
}

// AppendUEReport appends the wire form of a unary-encoding report: the k
// bits packed little-endian.
//
//loloha:noalloc
func AppendUEReport(dst []byte, rep *bitset.Bitset) []byte {
	nBytes := (rep.Len() + 7) / 8
	start := len(dst)
	for _, w := range rep.Words() {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], w)
		dst = append(dst, buf[:]...)
	}
	return dst[:start+nBytes]
}

// ---------------------------------------------------------------------------
// Allocation-free payload readers. The Decode* functions above materialize
// report values (a Bitset for UE); the readers below validate and consume a
// complete steady-state payload in place, so the server's tally-direct
// ingestion path (longitudinal.WireTallier) performs zero allocations per
// report. Each reader is strict: the payload must be exactly one report,
// with no trailing bytes.

// GRRPayloadBytes returns the exact byte length of a GRR payload over a
// domain of size k.
//
//loloha:noalloc
func GRRPayloadBytes(k int) int { return valueBytes(k) }

// ParseGRRPayload reads a complete GRR payload over domain size k without
// allocating: the payload must be exactly GRRPayloadBytes(k) bytes and
// carry a value in [0..k).
//
//loloha:noalloc
func ParseGRRPayload(src []byte, k int) (int, error) {
	if n := valueBytes(k); len(src) != n {
		return 0, fmt.Errorf("freqoracle: GRR payload is %d bytes, want %d", len(src), n)
	}
	v, _, err := DecodeGRRReport(src, k)
	return v, err
}

// UEPayloadBytes returns the exact byte length of a k-bit UE payload.
//
//loloha:noalloc
func UEPayloadBytes(k int) int { return (k + 7) / 8 }

// CheckUEPayload validates a complete k-bit UE payload in place: exactly
// UEPayloadBytes(k) bytes, with every bit beyond k zero. It allocates only
// on the error path.
//
//loloha:noalloc
func CheckUEPayload(src []byte, k int) error {
	nBytes := UEPayloadBytes(k)
	if len(src) < nBytes {
		return fmt.Errorf("freqoracle: short UE report: %d bytes, want %d", len(src), nBytes)
	}
	if len(src) > nBytes {
		return fmt.Errorf("freqoracle: %d trailing bytes in UE payload", len(src)-nBytes)
	}
	if k%8 != 0 && src[nBytes-1]>>(uint(k)%8) != 0 {
		return fmt.Errorf("freqoracle: nonzero bits beyond length %d", k)
	}
	return nil
}

// AccumulateUEPayload adds each bit of a validated k-bit UE payload (as
// 0/1) into counts, which must have length at least k, without decoding
// into a Bitset. Callers validate with CheckUEPayload first; bits beyond k
// must be zero.
//
//loloha:noalloc
func AccumulateUEPayload(src []byte, k int, counts []int64) {
	nBytes := UEPayloadBytes(k)
	j := 0
	for ; j+8 <= nBytes; j += 8 {
		w := binary.LittleEndian.Uint64(src[j:])
		base := j * 8
		for w != 0 {
			i := bits.TrailingZeros64(w)
			counts[base+i]++
			w &= w - 1
		}
	}
	var w uint64
	for t := j; t < nBytes; t++ {
		w |= uint64(src[t]) << (8 * uint(t-j))
	}
	base := j * 8
	for w != 0 {
		i := bits.TrailingZeros64(w)
		counts[base+i]++
		w &= w - 1
	}
}

// DecodeUEReport reads a k-bit unary-encoding report from src.
func DecodeUEReport(src []byte, k int) (*bitset.Bitset, []byte, error) {
	nBytes := (k + 7) / 8
	if len(src) < nBytes {
		return nil, nil, fmt.Errorf("freqoracle: short UE report: %d bytes, want %d", len(src), nBytes)
	}
	words := make([]uint64, (k+63)/64)
	var buf [8]byte
	for i := range words {
		lo := i * 8
		hi := lo + 8
		if hi > nBytes {
			hi = nBytes
		}
		for j := range buf {
			buf[j] = 0
		}
		copy(buf[:], src[lo:hi])
		words[i] = binary.LittleEndian.Uint64(buf[:])
	}
	bs, err := bitset.FromWords(k, words)
	if err != nil {
		return nil, nil, err
	}
	return bs, src[nBytes:], nil
}
