package freqoracle

import (
	"math"
	"testing"
)

func TestApproxVarGRRClosedMatchesDirect(t *testing.T) {
	// The closed form must agree with q(1−q)/(n(p−q)²).
	for _, eps := range []float64{0.5, 1, 2, 4} {
		for _, k := range []int{2, 10, 360} {
			direct := ApproxVarGRR(eps, k, 5000)
			closed := ApproxVarGRRClosed(eps, k, 5000)
			if math.Abs(direct-closed) > 1e-12*closed {
				t.Errorf("eps=%v k=%d: direct %v != closed %v", eps, k, direct, closed)
			}
		}
	}
}

func TestApproxVarOLHClosedMatchesLH(t *testing.T) {
	// OLH's closed form assumes the continuous-optimal g = e^ε + 1; at
	// that g the ApproxVarLH formula must agree.
	for _, eps := range []float64{1.0, 2.0, 3.0} {
		closed := ApproxVarOLHClosed(eps, 5000)
		// Evaluate LH variance at non-integral optimal g by direct algebra.
		e := math.Exp(eps)
		g := e + 1
		p := e / (e + g - 1)
		qp := 1 / g
		direct := qp * (1 - qp) / (5000 * (p - qp) * (p - qp))
		if math.Abs(direct-closed) > 1e-9*closed {
			t.Errorf("eps=%v: direct %v != closed %v", eps, direct, closed)
		}
	}
}

func TestBestOneShotThreshold(t *testing.T) {
	// The rule: GRR iff k < 3e^ε + 2.
	for _, eps := range []float64{0.5, 1, 2, 3} {
		threshold := 3*math.Exp(eps) + 2
		kBelow := int(threshold) - 1
		kAbove := int(threshold) + 2
		if kBelow >= 2 && BestOneShot(kBelow, eps) != ChooseGRR {
			t.Errorf("eps=%v k=%d: want GRR", eps, kBelow)
		}
		if BestOneShot(kAbove, eps) != ChooseOLH {
			t.Errorf("eps=%v k=%d: want OLH", eps, kAbove)
		}
	}
}

func TestBestOneShotAgreesWithVariances(t *testing.T) {
	// The recommendation must actually pick the lower-variance protocol.
	const n = 10000
	for _, eps := range []float64{0.5, 1, 2, 4} {
		for _, k := range []int{2, 5, 20, 100, 1000} {
			grr := ApproxVarGRRClosed(eps, k, n)
			olh := ApproxVarOLHClosed(eps, n)
			want := ChooseOLH
			if grr < olh {
				want = ChooseGRR
			}
			if got := BestOneShot(k, eps); got != want {
				t.Errorf("eps=%v k=%d: chose %v, variance says %v (grr %v olh %v)",
					eps, k, got, want, grr, olh)
			}
		}
	}
}

func TestOneShotChoiceString(t *testing.T) {
	if ChooseGRR.String() != "GRR" || ChooseOLH.String() != "OLH" {
		t.Error("choice names wrong")
	}
}
