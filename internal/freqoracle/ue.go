package freqoracle

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/bitset"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// UE is the one-shot Unary Encoding protocol (§2.3.3): the input v is
// one-hot encoded into k bits, then every bit is randomized independently —
// ones survive with probability p, zeros are raised with probability q.
// SUE (symmetric, RAPPOR's choice) and OUE (optimal) differ only in (p, q).
type UE struct {
	k       int
	params  Params
	eps     float64
	sampler ReportSampler
}

// NewUE returns a UE mechanism with explicit parameters; use NewSUE/NewOUE
// for the standard calibrations.
func NewUE(k int, params Params, eps float64) (*UE, error) {
	if k < 2 {
		return nil, fmt.Errorf("freqoracle: UE needs k >= 2, got %d", k)
	}
	if !params.Valid() {
		return nil, fmt.Errorf("freqoracle: invalid UE params %+v", params)
	}
	sampler, err := NewReportSampler(k, params.P, params.Q)
	if err != nil {
		return nil, err
	}
	return &UE{
		k:       k,
		params:  params,
		eps:     eps,
		sampler: sampler,
	}, nil
}

// NewSUE returns Symmetric Unary Encoding at privacy level eps.
func NewSUE(k int, eps float64) (*UE, error) {
	params, err := SUEParams(eps)
	if err != nil {
		return nil, err
	}
	return NewUE(k, params, eps)
}

// NewOUE returns Optimal Unary Encoding at privacy level eps.
func NewOUE(k int, eps float64) (*UE, error) {
	params, err := OUEParams(eps)
	if err != nil {
		return nil, err
	}
	return NewUE(k, params, eps)
}

// K returns the domain size.
func (m *UE) K() int { return m.k }

// Eps returns the privacy level ε.
func (m *UE) Eps() float64 { return m.eps }

// Params returns the calibrated (p, q).
func (m *UE) Params() Params { return m.params }

// Privatize one-hot encodes v and randomizes every bit: one round of the
// canonical ReportSampler contract with ones = {v}, skip-sampled when q is
// sparse (OUE at moderate ε). It draws a single anchor word from r per
// call, so report cost no longer scales the caller's stream by k.
func (m *UE) Privatize(v int, r *randsrc.Rand) *bitset.Bitset {
	if v < 0 || v >= m.k {
		panic(fmt.Sprintf("freqoracle: UE input %d outside [0,%d)", v, m.k))
	}
	ones := [1]int32{int32(v)}
	payload := m.sampler.AppendReport(make([]byte, 0, UEPayloadBytes(m.k)), r.Uint64(), ones[:])
	out, _, err := DecodeUEReport(payload, m.k)
	if err != nil {
		panic(err) // impossible: the payload is exactly one well-formed report
	}
	return out
}

// UEAggregator sums the reported bit vectors; C(v) is the number of
// reports whose bit v is set.
type UEAggregator struct {
	mech   *UE
	counts []int64
	n      int
}

// NewUEAggregator returns an empty aggregator for the mechanism.
func NewUEAggregator(m *UE) *UEAggregator {
	return &UEAggregator{mech: m, counts: make([]int64, m.k)}
}

// Add tallies one report. It panics if the report length does not match k.
func (a *UEAggregator) Add(rep *bitset.Bitset) {
	if rep.Len() != a.mech.k {
		panic(fmt.Sprintf("freqoracle: UE report has %d bits, want %d", rep.Len(), a.mech.k))
	}
	rep.AccumulateInto(a.counts)
	a.n++
}

// N returns the number of reports tallied.
func (a *UEAggregator) N() int { return a.n }

// Estimate returns the unbiased frequency estimates for all k values.
func (a *UEAggregator) Estimate() []float64 {
	return EstimateAll(a.counts, a.n, a.mech.params)
}
