package freqoracle

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGRRParamsIdentities(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 2, 5} {
		for _, k := range []int{2, 10, 360, 1412} {
			p, err := GRRParams(eps, k)
			if err != nil {
				t.Fatal(err)
			}
			if !p.Valid() {
				t.Fatalf("GRRParams(%v,%d) invalid: %+v", eps, k, p)
			}
			// p/q must equal e^ε (the LDP guarantee of §2.3.1).
			if got := GRREps(p); math.Abs(got-eps) > 1e-12 {
				t.Errorf("GRREps(GRRParams(%v,%d)) = %v", eps, k, got)
			}
			// Total probability: p + (k-1)q == 1.
			if total := p.P + float64(k-1)*p.Q; math.Abs(total-1) > 1e-12 {
				t.Errorf("GRR k=%d probabilities sum to %v", k, total)
			}
		}
	}
}

func TestGRRParamsRejectsBadInput(t *testing.T) {
	if _, err := GRRParams(0, 10); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := GRRParams(-1, 10); err == nil {
		t.Error("eps<0 accepted")
	}
	if _, err := GRRParams(1, 1); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestSUEParamsIdentities(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 3, 5} {
		p, err := SUEParams(eps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.P+p.Q-1) > 1e-12 {
			t.Errorf("SUE(%v) not symmetric: p+q = %v", eps, p.P+p.Q)
		}
		if got := UEEps(p); math.Abs(got-eps) > 1e-9 {
			t.Errorf("UEEps(SUEParams(%v)) = %v", eps, got)
		}
	}
}

func TestOUEParamsIdentities(t *testing.T) {
	for _, eps := range []float64{0.5, 1, 3, 5} {
		p, err := OUEParams(eps)
		if err != nil {
			t.Fatal(err)
		}
		if p.P != 0.5 {
			t.Errorf("OUE p = %v, want 0.5", p.P)
		}
		if got := UEEps(p); math.Abs(got-eps) > 1e-9 {
			t.Errorf("UEEps(OUEParams(%v)) = %v", eps, got)
		}
	}
}

func TestOUEBeatsSUEVariance(t *testing.T) {
	// The whole point of OUE: strictly lower approximate variance.
	for _, eps := range []float64{0.5, 1, 2, 4} {
		sue, _ := SUEParams(eps)
		oue, _ := OUEParams(eps)
		if ApproxVarUE(oue, 1000) >= ApproxVarUE(sue, 1000) {
			t.Errorf("eps=%v: OUE variance %v not below SUE %v",
				eps, ApproxVarUE(oue, 1000), ApproxVarUE(sue, 1000))
		}
	}
}

func TestEstimateInvertsExactCounts(t *testing.T) {
	// Feeding the *expected* counts into Eq. (1) must return the exact
	// frequency: E[C(v)] = n(f p + (1-f) q) for GRR.
	p := Params{P: 0.7, Q: 0.1}
	n := 10000
	for _, f := range []float64{0, 0.25, 0.5, 1} {
		expected := float64(n) * (f*p.P + (1-f)*p.Q)
		if got := Estimate(expected, n, p); math.Abs(got-f) > 1e-12 {
			t.Errorf("Estimate inverse at f=%v: got %v", f, got)
		}
	}
}

func TestEstimateQuickLinearity(t *testing.T) {
	// Eq. (1) is affine in the count: Estimate(a+b) - Estimate(a) must be
	// b / (n(p-q)).
	p := Params{P: 0.8, Q: 0.2}
	f := func(aRaw, bRaw uint16) bool {
		a, b := float64(aRaw), float64(bRaw)
		n := 5000
		diff := Estimate(a+b, n, p) - Estimate(a, n, p)
		want := b / (float64(n) * (p.P - p.Q))
		return math.Abs(diff-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestOLHOptimalG(t *testing.T) {
	cases := []struct {
		eps  float64
		want int
	}{
		{0.1, 2},  // e^0.1 ~ 1.105 -> 1 + 1 = 2
		{1, 4},    // e ~ 2.718 -> 3 + 1
		{2, 8},    // e^2 ~ 7.39 -> 7 + 1
		{3, 21},   // e^3 ~ 20.09 -> 20 + 1
		{0.01, 2}, // floor at 2
		{5, 149},  // e^5 ~ 148.4 -> 148 + 1
	}
	for _, c := range cases {
		if got := OLHOptimalG(c.eps); got != c.want {
			t.Errorf("OLHOptimalG(%v) = %d, want %d", c.eps, got, c.want)
		}
	}
}

func TestApproxVarianceFormulasPositive(t *testing.T) {
	f := func(epsRaw, kRaw uint8) bool {
		eps := 0.1 + float64(epsRaw%50)/10
		k := int(kRaw%100) + 2
		if v := ApproxVarGRR(eps, k, 1000); !(v > 0) || math.IsInf(v, 0) {
			return false
		}
		if v := ApproxVarLH(eps, 2+int(kRaw%15), 1000); !(v > 0) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestApproxVarGRRGrowsWithK(t *testing.T) {
	prev := 0.0
	for _, k := range []int{2, 8, 32, 128, 1024} {
		v := ApproxVarGRR(1.0, k, 10000)
		if v <= prev {
			t.Errorf("ApproxVarGRR not increasing at k=%d: %v <= %v", k, v, prev)
		}
		prev = v
	}
}

func TestApproxVarShrinksWithN(t *testing.T) {
	if ApproxVarGRR(1, 16, 20000) >= ApproxVarGRR(1, 16, 10000) {
		t.Error("variance did not shrink with n")
	}
	sue, _ := SUEParams(1)
	if ApproxVarUE(sue, 20000) >= ApproxVarUE(sue, 10000) {
		t.Error("UE variance did not shrink with n")
	}
}
