package freqoracle

import "math"

// Protocol selection guidance from Wang et al. (USENIX Sec'17), which the
// paper builds on: GRR's approximate variance beats OLH's exactly when the
// domain is small relative to e^ε.

// OneShotChoice names a recommended one-shot protocol.
type OneShotChoice int

// Recommended one-shot protocols.
const (
	ChooseGRR OneShotChoice = iota
	ChooseOLH
)

// String returns the choice name.
func (c OneShotChoice) String() string {
	if c == ChooseGRR {
		return "GRR"
	}
	return "OLH"
}

// BestOneShot recommends GRR when k < 3e^ε + 2 (where its variance
// (e^ε+k−2)/(n(e^ε−1)²) undercuts OLH's 4e^ε/(n(e^ε−1)²)) and OLH
// otherwise.
func BestOneShot(k int, eps float64) OneShotChoice {
	if float64(k) < 3*math.Exp(eps)+2 {
		return ChooseGRR
	}
	return ChooseOLH
}

// ApproxVarGRRClosed is the standard closed form of GRR's approximate
// variance, (e^ε + k − 2)/(n·(e^ε − 1)²) — algebraically identical to
// ApproxVarGRR and kept for the selection rule's readability.
func ApproxVarGRRClosed(eps float64, k, n int) float64 {
	e := math.Exp(eps)
	return (e + float64(k) - 2) / (float64(n) * (e - 1) * (e - 1))
}

// ApproxVarOLHClosed is the standard closed form of OLH's approximate
// variance, 4e^ε/(n·(e^ε − 1)²).
func ApproxVarOLHClosed(eps float64, n int) float64 {
	e := math.Exp(eps)
	return 4 * e / (float64(n) * (e - 1) * (e - 1))
}
