package freqoracle

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/hashfamily"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// LH is the one-shot Local Hashing protocol (§2.3.2): each user picks a
// random member H of a universal family V → [0..g), hashes the value and
// applies GRR over [0..g) to the hash. BLH fixes g = 2 and OLH picks
// g = ⌊e^ε⌉ + 1.
type LH struct {
	k      int
	family hashfamily.Family
	grr    *GRR
}

// NewLH returns an LH protocol over domain size k with reduced domain g at
// privacy level eps, drawing hash functions from family.
func NewLH(k int, g int, eps float64, family hashfamily.Family) (*LH, error) {
	if k < 2 {
		return nil, fmt.Errorf("freqoracle: LH needs k >= 2, got %d", k)
	}
	grr, err := NewGRR(g, eps)
	if err != nil {
		return nil, err
	}
	return &LH{k: k, family: family, grr: grr}, nil
}

// NewBLH returns Binary Local Hashing (g = 2).
func NewBLH(k int, eps float64) (*LH, error) {
	return NewLH(k, 2, eps, hashfamily.NewSplitMixFamily(2))
}

// NewOLH returns Optimal Local Hashing (g = ⌊e^ε⌉ + 1).
func NewOLH(k int, eps float64) (*LH, error) {
	g := OLHOptimalG(eps)
	return NewLH(k, g, eps, hashfamily.NewSplitMixFamily(g))
}

// K returns the original domain size.
func (m *LH) K() int { return m.k }

// G returns the reduced domain size.
func (m *LH) G() int { return m.grr.k }

// Eps returns the privacy level ε.
func (m *LH) Eps() float64 { return m.grr.eps }

// LHReport is the pair ⟨H, GRR(H(v))⟩ a user sends: the hash member is
// identified by its seed.
type LHReport struct {
	Seed uint64
	X    int
}

// Privatize hashes v with a freshly drawn member and perturbs the hash.
func (m *LH) Privatize(v int, r *randsrc.Rand) LHReport {
	if v < 0 || v >= m.k {
		panic(fmt.Sprintf("freqoracle: LH input %d outside [0,%d)", v, m.k))
	}
	h := m.family.New(r)
	return LHReport{Seed: h.Seed(), X: m.grr.Perturb(h.Index(v), r)}
}

// LHAggregator tallies LH reports. For each candidate value v it counts the
// users whose report supports v, i.e. H_u(v) == x_u, and estimates with
// Eq. (1) using q' = 1/g (§2.3.2).
type LHAggregator struct {
	mech   *LH
	counts []int64
	n      int
}

// NewLHAggregator returns an empty aggregator for the mechanism.
func NewLHAggregator(m *LH) *LHAggregator {
	return &LHAggregator{mech: m, counts: make([]int64, m.k)}
}

// Add tallies one report; it costs O(k) hash evaluations (the server
// run-time of Table 1).
func (a *LHAggregator) Add(rep LHReport) {
	if rep.X < 0 || rep.X >= a.mech.G() {
		panic(fmt.Sprintf("freqoracle: LH report %d outside [0,%d)", rep.X, a.mech.G()))
	}
	h := a.mech.family.FromSeed(rep.Seed)
	for v := 0; v < a.mech.k; v++ {
		if h.Index(v) == rep.X {
			a.counts[v]++
		}
	}
	a.n++
}

// N returns the number of reports tallied.
func (a *LHAggregator) N() int { return a.n }

// Estimate returns the unbiased frequency estimates for all k values.
func (a *LHAggregator) Estimate() []float64 {
	params := Params{P: a.mech.grr.params.P, Q: 1 / float64(a.mech.G())}
	return EstimateAll(a.counts, a.n, params)
}
