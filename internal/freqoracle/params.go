// Package freqoracle implements the one-shot LDP frequency estimation
// protocols of §2.3 of the paper: Generalized Randomized Response (GRR),
// Local Hashing (BLH/OLH) and Unary Encoding (SUE/OUE). They are both the
// building blocks of the longitudinal protocols (GRR is the randomizer
// inside LOLOHA) and the baselines the paper composes into RAPPOR, L-OSUE,
// L-GRR and dBitFlipPM.
package freqoracle

import (
	"fmt"
	"math"
)

// Params holds the two perturbation probabilities of one randomization
// round: P is the probability of keeping the "true" coordinate and Q the
// probability of producing any one particular different coordinate (GRR) or
// of raising a zero bit (unary encoding).
type Params struct {
	P, Q float64
}

// Valid reports whether the parameters are usable probabilities with P > Q
// (an informative, correctly oriented randomizer).
func (p Params) Valid() bool {
	return p.P > p.Q && p.Q > 0 && p.P < 1
}

// checkEps rejects privacy levels the calibrations cannot turn into
// probabilities: non-positive, NaN (every comparison on which is false, so
// it would slide through a plain eps <= 0 guard) and +Inf (e^ε overflows
// and the p/q ratios collapse to NaN).
func checkEps(eps float64) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("freqoracle: eps must be positive and finite, got %v", eps)
	}
	return nil
}

// GRRParams returns the GRR calibration for domain size k at privacy level
// eps: p = e^ε/(e^ε+k−1), q = (1−p)/(k−1) (§2.3.1).
func GRRParams(eps float64, k int) (Params, error) {
	if err := checkEps(eps); err != nil {
		return Params{}, err
	}
	if k < 2 {
		return Params{}, fmt.Errorf("freqoracle: GRR needs k >= 2, got %d", k)
	}
	e := math.Exp(eps)
	p := e / (e + float64(k) - 1)
	return Params{P: p, Q: (1 - p) / (float64(k) - 1)}, nil
}

// GRREps returns the LDP level ln(p/q) implied by GRR parameters.
func GRREps(p Params) float64 { return math.Log(p.P / p.Q) }

// SUEParams returns the Symmetric Unary Encoding (RAPPOR-style) calibration:
// p = e^{ε/2}/(e^{ε/2}+1), q = 1−p (§2.3.3).
func SUEParams(eps float64) (Params, error) {
	if err := checkEps(eps); err != nil {
		return Params{}, err
	}
	e := math.Exp(eps / 2)
	p := e / (e + 1)
	return Params{P: p, Q: 1 - p}, nil
}

// OUEParams returns the Optimal Unary Encoding calibration: p = 1/2,
// q = 1/(e^ε+1) (§2.3.3).
func OUEParams(eps float64) (Params, error) {
	if err := checkEps(eps); err != nil {
		return Params{}, err
	}
	return Params{P: 0.5, Q: 1 / (math.Exp(eps) + 1)}, nil
}

// UEEps returns the LDP level ln(p(1−q)/((1−p)q)) implied by unary-encoding
// parameters (two bits differ between neighbouring one-hot inputs).
func UEEps(p Params) float64 {
	return math.Log(p.P * (1 - p.Q) / ((1 - p.P) * p.Q))
}

// Estimate is the unbiased estimator of Eq. (1):
//
//	f̂(v) = (C(v) − n·q) / (n·(p − q)).
func Estimate(count float64, n int, p Params) float64 {
	nf := float64(n)
	return (count - nf*p.Q) / (nf * (p.P - p.Q))
}

// EstimateAll applies Estimate to a full count vector.
func EstimateAll(counts []int64, n int, p Params) []float64 {
	out := make([]float64, len(counts))
	for v, c := range counts {
		out[v] = Estimate(float64(c), n, p)
	}
	return out
}

// ApproxVarGRR is the approximate (f→0) variance of the GRR estimator:
// q(1−q)/(n(p−q)²).
func ApproxVarGRR(eps float64, k, n int) float64 {
	p, err := GRRParams(eps, k)
	if err != nil {
		return math.NaN()
	}
	return p.Q * (1 - p.Q) / (float64(n) * (p.P - p.Q) * (p.P - p.Q))
}

// ApproxVarLH is the approximate variance of the LH estimator with reduced
// domain g: with q' = 1/g in Eq. (1) the variance is q'(1−q')/(n(p−q')²)
// evaluated at the GRR-over-g keep probability p.
func ApproxVarLH(eps float64, g, n int) float64 {
	p, err := GRRParams(eps, g)
	if err != nil {
		return math.NaN()
	}
	qp := 1 / float64(g)
	return qp * (1 - qp) / (float64(n) * (p.P - qp) * (p.P - qp))
}

// ApproxVarUE is the approximate variance of a unary-encoding estimator:
// q(1−q)/(n(p−q)²).
func ApproxVarUE(p Params, n int) float64 {
	return p.Q * (1 - p.Q) / (float64(n) * (p.P - p.Q) * (p.P - p.Q))
}

// OLHOptimalG returns the OLH reduced-domain size ⌊e^ε⌉ + 1 (rounded to the
// nearest integer, never below 2) from Wang et al., §2.3.2.
func OLHOptimalG(eps float64) int {
	g := int(math.Round(math.Exp(eps))) + 1
	if g < 2 {
		g = 2
	}
	return g
}
