package freqoracle

import (
	"testing"
	"testing/quick"

	"github.com/loloha-ldp/loloha/internal/bitset"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func TestValueBytes(t *testing.T) {
	cases := []struct{ k, want int }{
		{2, 1}, {16, 1}, {256, 1}, {257, 2}, {65536, 2}, {65537, 3}, {1412, 2},
	}
	for _, c := range cases {
		if got := valueBytes(c.k); got != c.want {
			t.Errorf("valueBytes(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestGRRReportRoundTrip(t *testing.T) {
	f := func(vRaw uint16, kRaw uint16) bool {
		k := int(kRaw%2000) + 2
		v := int(vRaw) % k
		buf := AppendGRRReport(nil, v, k)
		got, rest, err := DecodeGRRReport(buf, k)
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGRRReportSizeMatchesTable1(t *testing.T) {
	// Table 1: GRR-style reports cost ceil(log2 k) bits; our byte-aligned
	// wire format rounds up to bytes.
	if n := len(AppendGRRReport(nil, 3, 360)); n != 2 {
		t.Errorf("report over k=360 uses %d bytes, want 2", n)
	}
	if n := len(AppendGRRReport(nil, 1, 2)); n != 1 {
		t.Errorf("report over k=2 uses %d bytes, want 1", n)
	}
}

func TestDecodeGRRReportErrors(t *testing.T) {
	if _, _, err := DecodeGRRReport(nil, 300); err == nil {
		t.Error("short buffer accepted")
	}
	buf := AppendGRRReport(nil, 255, 256)
	if _, _, err := DecodeGRRReport(buf, 200); err == nil {
		t.Error("out-of-domain report accepted")
	}
}

func TestLHReportRoundTrip(t *testing.T) {
	f := func(seed uint64, xRaw uint8, gRaw uint8) bool {
		g := int(gRaw%30) + 2
		x := int(xRaw) % g
		buf := AppendLHReport(nil, LHReport{Seed: seed, X: x}, g)
		got, rest, err := DecodeLHReport(buf, g)
		return err == nil && got.Seed == seed && got.X == x && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUEReportRoundTrip(t *testing.T) {
	r := randsrc.NewSeeded(71)
	for _, k := range []int{2, 8, 63, 64, 65, 100, 360} {
		m, err := NewSUE(k, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		rep := m.Privatize(k/2, r)
		buf := AppendUEReport(nil, rep)
		if len(buf) != (k+7)/8 {
			t.Errorf("k=%d report uses %d bytes, want %d", k, len(buf), (k+7)/8)
		}
		got, rest, err := DecodeUEReport(buf, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Errorf("k=%d leftover bytes: %d", k, len(rest))
		}
		if !got.Equal(rep) {
			t.Errorf("k=%d round trip mismatch", k)
		}
	}
}

func TestUEDecodeShortBuffer(t *testing.T) {
	if _, _, err := DecodeUEReport(make([]byte, 3), 64); err == nil {
		t.Error("short UE buffer accepted")
	}
}

func TestReportStreamConcatenation(t *testing.T) {
	// Reports must be parseable back-to-back from one buffer (batch upload).
	r := randsrc.NewSeeded(73)
	m, _ := NewOLH(100, 1.0)
	var buf []byte
	var want []LHReport
	for i := 0; i < 20; i++ {
		rep := m.Privatize(i%100, r)
		want = append(want, rep)
		buf = AppendLHReport(buf, rep, m.G())
	}
	for i := 0; i < 20; i++ {
		got, rest, err := DecodeLHReport(buf, m.G())
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("report %d mismatch: %+v != %+v", i, got, want[i])
		}
		buf = rest
	}
	if len(buf) != 0 {
		t.Errorf("leftover bytes after stream decode: %d", len(buf))
	}
}

func TestParseGRRPayloadStrict(t *testing.T) {
	const k = 300 // 2 payload bytes
	if n := GRRPayloadBytes(k); n != 2 {
		t.Fatalf("GRRPayloadBytes(%d) = %d, want 2", k, n)
	}
	for v := 0; v < k; v += 37 {
		payload := AppendGRRReport(nil, v, k)
		got, err := ParseGRRPayload(payload, k)
		if err != nil || got != v {
			t.Fatalf("round-trip %d: got %d, err %v", v, got, err)
		}
	}
	if _, err := ParseGRRPayload([]byte{1}, k); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := ParseGRRPayload([]byte{1, 0, 0}, k); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := ParseGRRPayload(AppendGRRReport(nil, k, k+1)[:2], k); err == nil {
		t.Error("out-of-range value accepted")
	}
}

func TestCheckAndAccumulateUEPayload(t *testing.T) {
	for _, k := range []int{5, 8, 24, 64, 67, 130} {
		bs := bitset.New(k)
		for i := 0; i < k; i += 3 {
			bs.Set(i, true)
		}
		payload := AppendUEReport(nil, bs)
		if err := CheckUEPayload(payload, k); err != nil {
			t.Fatalf("k=%d: valid payload rejected: %v", k, err)
		}
		counts := make([]int64, k)
		AccumulateUEPayload(payload, k, counts)
		AccumulateUEPayload(payload, k, counts) // accumulation adds, not assigns
		for i := range counts {
			want := int64(0)
			if i%3 == 0 {
				want = 2
			}
			if counts[i] != want {
				t.Fatalf("k=%d counts[%d] = %d, want %d", k, i, counts[i], want)
			}
		}
		if err := CheckUEPayload(payload[:len(payload)-1], k); err == nil {
			t.Errorf("k=%d: short payload accepted", k)
		}
		if err := CheckUEPayload(append(append([]byte{}, payload...), 0), k); err == nil {
			t.Errorf("k=%d: trailing byte accepted", k)
		}
		if k%8 != 0 {
			bad := append([]byte{}, payload...)
			bad[len(bad)-1] |= 1 << (uint(k) % 8) // set a bit beyond k
			if err := CheckUEPayload(bad, k); err == nil {
				t.Errorf("k=%d: nonzero bit beyond length accepted", k)
			}
		}
	}
}
