package freqoracle

import (
	"testing"
	"testing/quick"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func TestValueBytes(t *testing.T) {
	cases := []struct{ k, want int }{
		{2, 1}, {16, 1}, {256, 1}, {257, 2}, {65536, 2}, {65537, 3}, {1412, 2},
	}
	for _, c := range cases {
		if got := valueBytes(c.k); got != c.want {
			t.Errorf("valueBytes(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestGRRReportRoundTrip(t *testing.T) {
	f := func(vRaw uint16, kRaw uint16) bool {
		k := int(kRaw%2000) + 2
		v := int(vRaw) % k
		buf := AppendGRRReport(nil, v, k)
		got, rest, err := DecodeGRRReport(buf, k)
		return err == nil && got == v && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestGRRReportSizeMatchesTable1(t *testing.T) {
	// Table 1: GRR-style reports cost ceil(log2 k) bits; our byte-aligned
	// wire format rounds up to bytes.
	if n := len(AppendGRRReport(nil, 3, 360)); n != 2 {
		t.Errorf("report over k=360 uses %d bytes, want 2", n)
	}
	if n := len(AppendGRRReport(nil, 1, 2)); n != 1 {
		t.Errorf("report over k=2 uses %d bytes, want 1", n)
	}
}

func TestDecodeGRRReportErrors(t *testing.T) {
	if _, _, err := DecodeGRRReport(nil, 300); err == nil {
		t.Error("short buffer accepted")
	}
	buf := AppendGRRReport(nil, 255, 256)
	if _, _, err := DecodeGRRReport(buf, 200); err == nil {
		t.Error("out-of-domain report accepted")
	}
}

func TestLHReportRoundTrip(t *testing.T) {
	f := func(seed uint64, xRaw uint8, gRaw uint8) bool {
		g := int(gRaw%30) + 2
		x := int(xRaw) % g
		buf := AppendLHReport(nil, LHReport{Seed: seed, X: x}, g)
		got, rest, err := DecodeLHReport(buf, g)
		return err == nil && got.Seed == seed && got.X == x && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUEReportRoundTrip(t *testing.T) {
	r := randsrc.NewSeeded(71)
	for _, k := range []int{2, 8, 63, 64, 65, 100, 360} {
		m, err := NewSUE(k, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		rep := m.Privatize(k/2, r)
		buf := AppendUEReport(nil, rep)
		if len(buf) != (k+7)/8 {
			t.Errorf("k=%d report uses %d bytes, want %d", k, len(buf), (k+7)/8)
		}
		got, rest, err := DecodeUEReport(buf, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 {
			t.Errorf("k=%d leftover bytes: %d", k, len(rest))
		}
		if !got.Equal(rep) {
			t.Errorf("k=%d round trip mismatch", k)
		}
	}
}

func TestUEDecodeShortBuffer(t *testing.T) {
	if _, _, err := DecodeUEReport(make([]byte, 3), 64); err == nil {
		t.Error("short UE buffer accepted")
	}
}

func TestReportStreamConcatenation(t *testing.T) {
	// Reports must be parseable back-to-back from one buffer (batch upload).
	r := randsrc.NewSeeded(73)
	m, _ := NewOLH(100, 1.0)
	var buf []byte
	var want []LHReport
	for i := 0; i < 20; i++ {
		rep := m.Privatize(i%100, r)
		want = append(want, rep)
		buf = AppendLHReport(buf, rep, m.G())
	}
	for i := 0; i < 20; i++ {
		got, rest, err := DecodeLHReport(buf, m.G())
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("report %d mismatch: %+v != %+v", i, got, want[i])
		}
		buf = rest
	}
	if len(buf) != 0 {
		t.Errorf("leftover bytes after stream decode: %d", len(buf))
	}
}
