package core

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// Declarative construction for the LOLOHA families. Importing this package
// (directly or through the public loloha facade) registers all three, so a
// serialized longitudinal.ProtocolSpec reaches Algorithm 1/2 without any
// positional constructor call.

// Spec implements longitudinal.SpecProtocol. The generic "LOLOHA" family
// carries its explicit g; BiLOLOHA (g = 2) and OLOLOHA (g from Eq. (6))
// derive g from the family, so their specs omit it and re-derive it on
// Build. Non-default construction options (custom hash family, exact IRR
// calibration, disabled support cache) are not part of the declarative
// description.
func (p *Protocol) Spec() longitudinal.ProtocolSpec {
	s := longitudinal.ProtocolSpec{Family: p.name, K: p.k, EpsInf: p.epsInf, Eps1: p.eps1}
	if p.name == "LOLOHA" {
		s.G = p.g
	}
	return s
}

func init() {
	budgeted := []longitudinal.Field{longitudinal.FieldK, longitudinal.FieldEpsInf, longitudinal.FieldEps1}
	decoder := func(p longitudinal.Protocol) (longitudinal.Decoder, error) {
		lp, ok := p.(*Protocol)
		if !ok {
			return nil, fmt.Errorf("core: %T is not a LOLOHA protocol", p)
		}
		return ReportDecoder{G: lp.G()}, nil
	}

	longitudinal.RegisterFamily("LOLOHA", longitudinal.FamilyInfo{
		Doc: "LOLOHA with explicit reduced domain g: longitudinal budget g·ε∞ (Algorithms 1–2)",
		Required: []longitudinal.Field{longitudinal.FieldK, longitudinal.FieldG,
			longitudinal.FieldEpsInf, longitudinal.FieldEps1},
		Build: func(s longitudinal.ProtocolSpec) (longitudinal.Protocol, error) {
			return New(s.K, s.G, s.EpsInf, s.Eps1)
		},
		NewDecoder: decoder,
	})
	longitudinal.RegisterFamily("BiLOLOHA", longitudinal.FamilyInfo{
		Doc:      "BiLOLOHA (g = 2): strongest longitudinal protection, worst case 2·ε∞",
		Required: budgeted,
		Optional: []longitudinal.Field{longitudinal.FieldG},
		Build: func(s longitudinal.ProtocolSpec) (longitudinal.Protocol, error) {
			if s.G != 0 && s.G != 2 {
				return nil, fmt.Errorf("core: family BiLOLOHA fixes g = 2, got g=%d (use family LOLOHA for explicit g)", s.G)
			}
			return NewBinary(s.K, s.EpsInf, s.Eps1)
		},
		NewDecoder: decoder,
	})
	longitudinal.RegisterFamily("OLOLOHA", longitudinal.FamilyInfo{
		Doc:      "OLOLOHA: g minimizes the approximate variance (Eq. (6)); best utility",
		Required: budgeted,
		Build: func(s longitudinal.ProtocolSpec) (longitudinal.Protocol, error) {
			return NewOptimal(s.K, s.EpsInf, s.Eps1)
		},
		NewDecoder: decoder,
	})
}
