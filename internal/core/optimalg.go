package core

import (
	"math"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// OptimalG returns the utility-optimal reduced domain size of Eq. (6):
//
//	g = 1 + max(1, ⌊(1 − a² + √(a⁴ − 14a² + 12ab(1−ab) + 12a³b + 1)) / (6(a−b))⌉)
//
// with a = e^{ε∞} and b = e^{ε1}. It minimizes the approximate variance V*
// of Eq. (5) over g (validated against the numeric argmin in tests; the
// two can differ by one step exactly at rounding boundaries, where V* is
// flat). Values are clamped so that g ≥ 2 always holds.
func OptimalG(epsInf, eps1 float64) int {
	a := math.Exp(epsInf)
	b := math.Exp(eps1)
	disc := a*a*a*a - 14*a*a + 12*a*b*(1-a*b) + 12*a*a*a*b + 1
	if disc < 0 {
		// The discriminant is positive throughout the valid region
		// 0 < ε1 < ε∞; guard against float corner cases anyway.
		return 2
	}
	x := (1 - a*a + math.Sqrt(disc)) / (6 * (a - b))
	g := 1 + int(math.Max(1, math.Round(x)))
	if g < 2 {
		g = 2
	}
	return g
}

// OptimalGNumeric returns the integer g in [2..gMax] that minimizes the
// approximate variance V* of the LOLOHA estimator — the ground truth that
// Eq. (6) approximates in closed form.
func OptimalGNumeric(epsInf, eps1 float64, gMax int) int {
	best, bestV := 2, math.Inf(1)
	for g := 2; g <= gMax; g++ {
		v := approxVarianceAtG(epsInf, eps1, g)
		if v < bestV {
			bestV, best = v, g
		}
	}
	return best
}

// approxVarianceAtG evaluates the (n-independent) V* of a LOLOHA protocol
// with reduced domain g. n scales all variances identically, so it is
// fixed at 1 for comparisons.
func approxVarianceAtG(epsInf, eps1 float64, g int) float64 {
	epsIRR, err := longitudinal.EpsIRR(epsInf, eps1)
	if err != nil {
		return math.Inf(1)
	}
	gf := float64(g)
	a := math.Exp(epsInf)
	c := math.Exp(epsIRR)
	params := longitudinal.ChainParams{
		P1: a / (a + gf - 1),
		Q1: 1 / gf,
		P2: c / (c + gf - 1),
		Q2: 1 / (c + gf - 1),
	}
	return params.ApproxVariance(1)
}
