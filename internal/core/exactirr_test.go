package core

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/domain"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func TestExactIRROptionWiring(t *testing.T) {
	paper, err := New(100, 8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := New(100, 8, 4, 2, WithExactIRRCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if exact.EpsIRR() <= paper.EpsIRR() {
		t.Errorf("exact εIRR %v not above paper %v for g=8", exact.EpsIRR(), paper.EpsIRR())
	}
	// At g = 2 both calibrations coincide.
	p2, _ := New(100, 2, 4, 2)
	e2, err := New(100, 2, 4, 2, WithExactIRRCalibration())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2.EpsIRR()-e2.EpsIRR()) > 1e-9 {
		t.Errorf("g=2: exact %v != paper %v", e2.EpsIRR(), p2.EpsIRR())
	}
}

func TestExactIRRVarianceStrictlyBetter(t *testing.T) {
	paper, _ := New(100, 8, 4, 2)
	exact, _ := New(100, 8, 4, 2, WithExactIRRCalibration())
	const n = 10000
	if exact.ApproxVariance(n) >= paper.ApproxVariance(n) {
		t.Errorf("exact V* %v not below paper %v",
			exact.ApproxVariance(n), paper.ApproxVariance(n))
	}
}

func TestExactIRREndToEndStillUnbiased(t *testing.T) {
	// The ablation must preserve estimator correctness, not just improve
	// variance: run a full collection and compare against truth.
	const k, n = 16, 25000
	proto, err := New(k, 8, 4, 2, WithExactIRRCalibration())
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int, n)
	for u := range values {
		values[u] = (u * 3) % k
	}
	truth := domain.TrueFrequencies(values, k)
	clients := make([]*Client, n)
	for u := range clients {
		clients[u] = proto.newClient(randsrc.Derive(5, uint64(u)))
	}
	agg := proto.NewServer()
	for u, v := range values {
		agg.AddReport(u, clients[u].ReportValue(v))
	}
	est := agg.EndRound()
	sd := math.Sqrt(proto.ApproxVariance(n))
	for v := 0; v < k; v++ {
		if math.Abs(est[v]-truth[v]) > 6*sd+0.01 {
			t.Errorf("est[%d] = %v, truth %v (sd %v)", v, est[v], truth[v], sd)
		}
	}
}
