package core

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func TestLolohaReportWireRoundTrip(t *testing.T) {
	p, err := New(200, 16, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := p.newClient(9)
	for i := 0; i < 40; i++ {
		rep := cl.ReportValue(i % 200)
		buf := rep.AppendBinary(nil)
		if len(buf) != 1 {
			t.Fatalf("g=16 payload %d bytes, want 1", len(buf))
		}
		got, rest, err := DecodeReport(buf, 16, rep.HashSeed)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 || got.X != rep.X || got.HashSeed != rep.HashSeed {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, rep)
		}
	}
}

func TestLolohaReportMatchesAppendReport(t *testing.T) {
	// Same-seed clients on the boxed and append paths must emit identical
	// wire bytes and identical registration metadata, for each acceptance
	// domain size.
	for _, k := range []int{16, 64, 1024} {
		p, err := NewOptimal(k, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		clA, clB := p.newClient(21), p.newClient(21)
		if clA.WireRegistration().HashSeed != clB.WireRegistration().HashSeed {
			t.Fatal("same-seed clients drew different hash functions")
		}
		var buf []byte
		for i := 0; i < 30; i++ {
			v := (i * 11) % k
			boxed := clA.ReportValue(v).AppendBinary(nil)
			buf = clB.AppendReport(buf[:0], v)
			if len(buf) != len(boxed) {
				t.Fatalf("k=%d: payload %d bytes vs %d", k, len(buf), len(boxed))
			}
			for j := range buf {
				if buf[j] != boxed[j] {
					t.Fatalf("k=%d round %d: Report %x != AppendReport %x", k, i, boxed, buf)
				}
			}
		}
		if clA.PrivacySpent() != clB.PrivacySpent() {
			t.Fatal("paths charged the ledger differently")
		}
	}
}

func TestLolohaWireAggregationEquivalence(t *testing.T) {
	const k, n = 64, 3000
	p, err := NewBinary(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	direct := p.NewServer()
	viaWire := p.NewServer()
	r := randsrc.NewSeeded(5)
	for u := 0; u < n; u++ {
		cl := p.newClient(uint64(u))
		rep := cl.ReportValue(r.Intn(k))
		direct.AddReport(u, rep)
		decoded, _, err := DecodeReport(rep.AppendBinary(nil), p.G(), rep.HashSeed)
		if err != nil {
			t.Fatal(err)
		}
		viaWire.AddReport(u, decoded)
	}
	a, b := direct.EndRound(), viaWire.EndRound()
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-15 {
			t.Fatalf("estimates diverge at v=%d", v)
		}
	}
}

func TestDecodeReportErrors(t *testing.T) {
	if _, _, err := DecodeReport(nil, 4, 1); err == nil {
		t.Error("empty buffer accepted")
	}
	if _, _, err := DecodeReport([]byte{9}, 4, 1); err == nil {
		t.Error("out-of-domain cell accepted")
	}
}
