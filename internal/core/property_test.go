package core

import (
	"testing"
	"testing/quick"
)

func TestQuickConstructorAcceptsAllValidBudgets(t *testing.T) {
	f := func(a, b, gRaw, kRaw uint8) bool {
		epsInf := 0.2 + float64(a%60)/10
		eps1 := (0.05 + float64(b%90)/100) * epsInf
		g := int(gRaw%15) + 2
		k := int(kRaw%200) + 2
		p, err := New(k, g, epsInf, eps1)
		if err != nil {
			return false
		}
		return p.G() == g && p.K() == k &&
			p.LongitudinalBudget() == float64(g)*epsInf &&
			p.Params().P1 > p.Params().Q1 && p.Params().P2 > p.Params().Q2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickClientReportsInRange(t *testing.T) {
	f := func(seed uint64, vRaw uint8) bool {
		const k, g = 50, 4
		p, err := New(k, g, 2, 1)
		if err != nil {
			return false
		}
		cl := p.newClient(seed)
		rep := cl.ReportValue(int(vRaw) % k)
		return rep.X >= 0 && rep.X < g && rep.HashSeed == cl.HashSeed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickOptimalGStableUnderScaling(t *testing.T) {
	// OptimalG depends only on (ε∞, ε1), never on k or n; evaluate twice
	// to confirm determinism and bounds.
	f := func(a, b uint8) bool {
		epsInf := 0.2 + float64(a%60)/10
		eps1 := (0.05 + float64(b%90)/100) * epsInf
		g1, g2 := OptimalG(epsInf, eps1), OptimalG(epsInf, eps1)
		return g1 == g2 && g1 >= 2 && g1 < 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestQuickAggregatorCountsBounded(t *testing.T) {
	// After any batch of reports, 0 <= C(v) <= n must hold for every v —
	// the support-counting loop can never over- or under-count.
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 || len(seeds) > 64 {
			return true
		}
		const k = 20
		p, err := NewBinary(k, 2, 1)
		if err != nil {
			return false
		}
		agg := p.NewServer()
		for u, s := range seeds {
			cl := p.newClient(uint64(s) + 1)
			agg.AddReport(u, cl.ReportValue(int(s)%k))
		}
		n := int64(len(seeds))
		for _, c := range agg.counts {
			if c < 0 || c > n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickEstimatesSumNearOne(t *testing.T) {
	// Eq. (3) estimates over a full cohort must sum close to 1 in
	// expectation; with BiLOLOHA's q′1 = 1/g the sum is exactly
	// determined by the counts, so check it is finite and near 1 for a
	// real batch.
	const k, n = 16, 2000
	p, err := NewBinary(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg := p.NewServer()
	for u := 0; u < n; u++ {
		cl := p.newClient(uint64(u))
		agg.AddReport(u, cl.ReportValue(u%k))
	}
	est := agg.EndRound()
	sum := 0.0
	for _, e := range est {
		sum += e
	}
	if sum < 0.5 || sum > 1.5 {
		t.Errorf("estimates sum to %v, want ~1", sum)
	}
}
