package core

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// Snapshot-contract assertion (wirecontract): the LOLOHA aggregator's
// round state is (counts, n) like every other family's — its per-user
// hash and table caches are pure functions of the enrolled hash seeds and
// rebuild lazily after a restore, so they are deliberately not exported.
var _ longitudinal.SnapshotTallier = (*Aggregator)(nil)

// ExportTally implements longitudinal.SnapshotTallier.
func (a *Aggregator) ExportTally(dst []int64) ([]int64, int) {
	return append(dst, a.counts...), a.n
}

// ImportTally implements longitudinal.SnapshotTallier.
func (a *Aggregator) ImportTally(counts []int64, n int) error {
	if len(counts) != len(a.counts) {
		return fmt.Errorf("core: LOLOHA import has %d counts, aggregator tallies %d", len(counts), len(a.counts))
	}
	if n < 0 {
		return fmt.Errorf("core: LOLOHA import has negative report count %d", n)
	}
	for i, c := range counts {
		a.counts[i] += c
	}
	a.n += n
	return nil
}
