package core

import (
	"math"
	"testing"
)

func TestOptimalGMatchesNumeric(t *testing.T) {
	// The Eq. (6) closed form must track the integer argmin of V*. At
	// rounding boundaries V* is nearly flat, so allow a one-step gap but
	// require the variance penalty of the closed-form choice to be tiny.
	for _, alpha := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6} {
		for _, epsInf := range []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5} {
			eps1 := alpha * epsInf
			closed := OptimalG(epsInf, eps1)
			numeric := OptimalGNumeric(epsInf, eps1, 600)
			if diff := closed - numeric; diff < -1 || diff > 1 {
				t.Errorf("eps∞=%v α=%v: closed g=%d vs numeric g=%d",
					epsInf, alpha, closed, numeric)
				continue
			}
			vClosed := approxVarianceAtG(epsInf, eps1, closed)
			vNumeric := approxVarianceAtG(epsInf, eps1, numeric)
			// Boundary cases (x ≈ half-integer) round to a neighbour that
			// costs a few percent; anything above 5% is a real bug.
			if vClosed > vNumeric*1.05 {
				t.Errorf("eps∞=%v α=%v: closed-form g=%d pays %.2f%% extra variance",
					epsInf, alpha, closed, 100*(vClosed/vNumeric-1))
			}
		}
	}
}

func TestOptimalGFig1Shape(t *testing.T) {
	// Fig. 1: in high privacy regimes the optimum is binary; it grows with
	// both ε∞ and α.
	if g := OptimalG(0.5, 0.05); g != 2 {
		t.Errorf("high-privacy optimal g = %d, want 2", g)
	}
	if g := OptimalG(1.0, 0.1); g != 2 {
		t.Errorf("eps∞=1 α=0.1: g = %d, want 2", g)
	}
	// Low privacy, α = 0.6: large g (Fig. 1 tops out around 16-17).
	g := OptimalG(5, 3)
	if g < 14 || g > 18 {
		t.Errorf("eps∞=5 α=0.6: g = %d, want ~16", g)
	}
}

func TestOptimalGMonotoneInEpsInf(t *testing.T) {
	for _, alpha := range []float64{0.3, 0.5, 0.6} {
		prev := 0
		for _, epsInf := range []float64{0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5} {
			g := OptimalG(epsInf, alpha*epsInf)
			if g < prev {
				t.Errorf("α=%v: OptimalG decreased at eps∞=%v: %d < %d",
					alpha, epsInf, g, prev)
			}
			prev = g
		}
	}
}

func TestOptimalGAlwaysAtLeastTwo(t *testing.T) {
	for epsInf := 0.05; epsInf < 8; epsInf += 0.173 {
		for _, alpha := range []float64{0.01, 0.3, 0.9} {
			if g := OptimalG(epsInf, alpha*epsInf); g < 2 {
				t.Fatalf("OptimalG(%v,%v) = %d < 2", epsInf, alpha*epsInf, g)
			}
		}
	}
}

func TestApproxVarianceAtGMatchesProtocol(t *testing.T) {
	// The standalone evaluator must agree with a constructed protocol's
	// ApproxVariance (up to the 1/n factor).
	const n = 5000
	for _, g := range []int{2, 3, 8} {
		p, err := New(100, g, 3, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		want := p.ApproxVariance(n)
		got := approxVarianceAtG(3, 1.2, g) / n
		if math.Abs(got-want) > 1e-15*math.Abs(want)+1e-20 {
			t.Errorf("g=%d: standalone %v vs protocol %v", g, got, want)
		}
	}
}

func TestVarianceUShapeInG(t *testing.T) {
	// For a low-privacy pair the variance should strictly improve from
	// g=2 to the optimum and strictly degrade well past it — i.e. the
	// optimum is interior, not a boundary artifact.
	const epsInf, eps1 = 5.0, 3.0
	opt := OptimalGNumeric(epsInf, eps1, 600)
	if opt <= 2 {
		t.Fatalf("expected interior optimum, got g=%d", opt)
	}
	vOpt := approxVarianceAtG(epsInf, eps1, opt)
	if v2 := approxVarianceAtG(epsInf, eps1, 2); v2 <= vOpt {
		t.Errorf("g=2 variance %v not above optimum %v", v2, vOpt)
	}
	if vBig := approxVarianceAtG(epsInf, eps1, 20*opt); vBig <= vOpt {
		t.Errorf("g=%d variance %v not above optimum %v", 20*opt, vBig, vOpt)
	}
}
