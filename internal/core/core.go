// Package core implements the paper's primary contribution: the LOLOHA
// (LOngitudinal LOcal HAshing) protocol family for frequency monitoring of
// evolving data under local differential privacy.
//
// A LOLOHA client (Algorithm 1) draws one universal hash function
// H : V → [0..g) for its lifetime, hashes each value, memoizes a GRR(ε∞)
// response per *hash cell* (PRR step) and re-randomizes the memoized
// response with GRR(ε_IRR) each round (IRR step). Because memoization is
// per hash cell rather than per value, the worst-case longitudinal privacy
// loss is g·ε∞ (Theorem 3.5) instead of the k·ε∞ of RAPPOR-style protocols,
// a reduction of k/g.
//
// The server (Algorithm 2) counts, for each candidate value v, the users
// whose report lands in their hash of v and inverts the two sanitization
// rounds with the Eq. (3) estimator using q′₁ = 1/g.
//
// Two named configurations: BiLOLOHA (g = 2, strongest longitudinal
// protection) and OLOLOHA (g from the closed-form optimum of Eq. (6),
// best utility).
package core

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/freqoracle"
	"github.com/loloha-ldp/loloha/internal/hashfamily"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/privacy"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// Protocol is a configured LOLOHA instance (both client and server side).
type Protocol struct {
	name         string
	k, g         int
	epsInf, eps1 float64
	epsIRR       float64
	family       hashfamily.Family
	prr          *freqoracle.GRR // GRR(ε∞) over [0..g)
	irr          *freqoracle.GRR // GRR(ε_IRR) over [0..g)
	params       longitudinal.ChainParams
	cacheSupport bool
}

// Fast-path contracts (wirecontract): a regression in either interface
// would silently degrade ingestion to the boxed Report path.
var (
	_ longitudinal.SpecProtocol   = (*Protocol)(nil)
	_ longitudinal.TallyProtocol  = (*Protocol)(nil)
	_ longitudinal.AppendReporter = (*Client)(nil)
)

// Option customizes a Protocol.
type Option func(*config)

type config struct {
	family       hashfamily.Family
	cacheSupport bool
	exactIRR     bool
	name         string
}

// WithFamily selects the universal hash family (default: SplitMix).
func WithFamily(f hashfamily.Family) Option {
	return func(c *config) { c.family = f }
}

// WithExactIRRCalibration switches the IRR budget from the paper's
// Algorithm 1 formula (exact for g = 2, conservative for g > 2) to the
// exact g-ary calibration of longitudinal.ExactEpsIRR. The result is
// slightly less IRR noise — and hence lower variance — at the same ε1
// guarantee. Kept as an option so default behaviour reproduces the paper.
func WithExactIRRCalibration() Option {
	return func(c *config) { c.exactIRR = true }
}

// WithoutSupportCache disables the aggregator's per-user hash table cache.
// The cache trades n·k bytes of memory for replacing k hash evaluations
// per report with k byte compares; disable it for huge cohorts.
func WithoutSupportCache() Option {
	return func(c *config) { c.cacheSupport = false }
}

func withName(name string) Option {
	return func(c *config) { c.name = name }
}

// New returns a LOLOHA protocol over domain size k with reduced domain g,
// longitudinal budget epsInf and first-report budget eps1 (0 < eps1 < epsInf).
func New(k, g int, epsInf, eps1 float64, opts ...Option) (*Protocol, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: LOLOHA needs k >= 2, got %d", k)
	}
	if g < 2 {
		return nil, fmt.Errorf("core: LOLOHA needs g >= 2, got %d", g)
	}
	cfg := config{cacheSupport: true, name: "LOLOHA"}
	for _, o := range opts {
		o(&cfg)
	}
	var epsIRR float64
	var err error
	if cfg.exactIRR {
		epsIRR, err = longitudinal.ExactEpsIRR(epsInf, eps1, g)
	} else {
		epsIRR, err = longitudinal.EpsIRR(epsInf, eps1)
	}
	if err != nil {
		return nil, err
	}
	if cfg.family == nil {
		cfg.family = hashfamily.NewSplitMixFamily(g)
	}
	if fg := cfg.family.FromSeed(0).G(); fg != g {
		return nil, fmt.Errorf("core: hash family maps to [0..%d), protocol needs g=%d", fg, g)
	}
	prr, err := freqoracle.NewGRR(g, epsInf)
	if err != nil {
		return nil, err
	}
	irr, err := freqoracle.NewGRR(g, epsIRR)
	if err != nil {
		return nil, err
	}
	return &Protocol{
		name:   cfg.name,
		k:      k,
		g:      g,
		epsInf: epsInf,
		eps1:   eps1,
		epsIRR: epsIRR,
		family: cfg.family,
		prr:    prr,
		irr:    irr,
		params: longitudinal.ChainParams{
			P1: prr.Params().P,
			Q1: 1 / float64(g), // q′₁ of Algorithm 2
			P2: irr.Params().P,
			Q2: irr.Params().Q,
		},
		cacheSupport: cfg.cacheSupport,
	}, nil
}

// NewBinary returns BiLOLOHA: g = 2, the strongest longitudinal protection
// (worst case 2·ε∞ on the users' values).
func NewBinary(k int, epsInf, eps1 float64, opts ...Option) (*Protocol, error) {
	return New(k, 2, epsInf, eps1, append(opts, withName("BiLOLOHA"))...)
}

// NewOptimal returns OLOLOHA: g chosen by the closed form of Eq. (6) to
// minimize the approximate variance V*.
func NewOptimal(k int, epsInf, eps1 float64, opts ...Option) (*Protocol, error) {
	return New(k, OptimalG(epsInf, eps1), epsInf, eps1, append(opts, withName("OLOLOHA"))...)
}

// Name returns the configured protocol name (LOLOHA, BiLOLOHA or OLOLOHA).
func (p *Protocol) Name() string { return p.name }

// K returns the original domain size.
func (p *Protocol) K() int { return p.k }

// G returns the reduced domain size.
func (p *Protocol) G() int { return p.g }

// EpsInf returns the longitudinal budget ε∞.
func (p *Protocol) EpsInf() float64 { return p.epsInf }

// Eps1 returns the first-report budget ε1.
func (p *Protocol) Eps1() float64 { return p.eps1 }

// EpsIRR returns the derived instantaneous-round budget of Algorithm 1.
func (p *Protocol) EpsIRR() float64 { return p.epsIRR }

// Params returns the server-side chain probabilities (with q′₁ = 1/g).
func (p *Protocol) Params() longitudinal.ChainParams { return p.params }

// LongitudinalBudget returns the worst-case privacy loss on the users'
// values, g·ε∞ (Theorem 3.5).
func (p *Protocol) LongitudinalBudget() float64 { return float64(p.g) * p.epsInf }

// ApproxVariance returns V* (Eq. (5)) with the Algorithm 2 parameters.
func (p *Protocol) ApproxVariance(n int) float64 { return p.params.ApproxVariance(n) }

// SteadyReportBits implements longitudinal.Protocol: ⌈log₂ g⌉ bits per
// round (Table 1).
func (p *Protocol) SteadyReportBits() int {
	bits := 0
	for 1<<bits < p.g {
		bits++
	}
	return bits
}

// ---------------------------------------------------------------------------
// Client side (Algorithm 1).

// Client is a single user's LOLOHA state.
type Client struct {
	proto  *Protocol
	hash   hashfamily.Hash
	seed   uint64
	rng    *randsrc.Rand
	ledger *privacy.Ledger
}

// NewClient implements longitudinal.Protocol. The seed determines the hash
// choice, the memoized PRR responses and the IRR noise stream.
func (p *Protocol) NewClient(seed uint64) longitudinal.Client {
	return p.newClient(seed)
}

func (p *Protocol) newClient(seed uint64) *Client {
	rng := randsrc.NewSeeded(randsrc.Derive(seed, 0x10104A))
	return &Client{
		proto:  p,
		hash:   p.family.New(rng),
		seed:   seed,
		rng:    rng,
		ledger: privacy.NewLedger(p.epsInf, p.g),
	}
}

// HashSeed identifies the client's hash function; it is sent to the server
// once ("Send H", Algorithm 1 line 2) as part of the first report.
func (c *Client) HashSeed() uint64 { return c.hash.Seed() }

// Report implements longitudinal.Client: hash, memoized PRR, fresh IRR.
func (c *Client) Report(v int) longitudinal.Report {
	return c.ReportValue(v)
}

// ReportValue is Report with a concrete return type.
func (c *Client) ReportValue(v int) Report {
	return Report{HashSeed: c.hash.Seed(), X: c.reportCell(v), g: c.proto.g}
}

// reportCell runs one round and returns the sanitized hash cell.
//
//loloha:noalloc
func (c *Client) reportCell(v int) int {
	if v < 0 || v >= c.proto.k {
		panic(fmt.Sprintf("core: LOLOHA value %d outside [0,%d)", v, c.proto.k))
	}
	x := c.hash.Index(v) // hash step
	c.ledger.Charge(x)   // a new cell consumes ε∞ (Theorem 3.5 ledger)
	memo := c.proto.prr.PerturbWord(x,
		randsrc.Derive(c.seed, uint64(x), 1),
		randsrc.Derive(c.seed, uint64(x), 2)) // PRR step, memoized by PRF
	return c.proto.irr.Perturb(memo, c.rng) // IRR step
}

// AppendReport implements longitudinal.AppendReporter: the sanitized cell
// straight into wire bytes — no boxed report, zero allocations when dst
// has capacity.
//
//loloha:noalloc
func (c *Client) AppendReport(dst []byte, v int) []byte {
	return freqoracle.AppendGRRReport(dst, c.reportCell(v), c.proto.g)
}

// WireRegistration implements longitudinal.AppendReporter: the hash seed
// the server resolves the client's hash function from (Algorithm 1,
// "Send H").
func (c *Client) WireRegistration() longitudinal.Registration {
	return longitudinal.Registration{HashSeed: c.hash.Seed()}
}

// Charge implements longitudinal.Client: it advances the privacy ledger as
// Report would, without the PRR/IRR work.
//
//loloha:noalloc
func (c *Client) Charge(v int) {
	if v < 0 || v >= c.proto.k {
		panic(fmt.Sprintf("core: LOLOHA value %d outside [0,%d)", v, c.proto.k))
	}
	c.ledger.Charge(c.hash.Index(v))
}

// PrivacySpent implements longitudinal.Client: ε̌ = ε∞ · (distinct hash
// cells used), capped at g·ε∞.
func (c *Client) PrivacySpent() float64 { return c.ledger.Spent() }

// Report is one LOLOHA round payload: the sanitized hash cell. HashSeed
// rides along for server registration; only the cell travels each round in
// steady state.
type Report struct {
	HashSeed uint64
	X        int
	g        int
}

// AppendBinary implements longitudinal.Report (steady state: the cell only).
//
//loloha:noalloc
func (r Report) AppendBinary(dst []byte) []byte {
	return freqoracle.AppendGRRReport(dst, r.X, r.g)
}

// DecodeReport reads a steady-state LOLOHA round payload. The hash seed is
// the user's registration metadata (sent once, Algorithm 1 line 2); g is
// the protocol's reduced domain size.
func DecodeReport(src []byte, g int, hashSeed uint64) (Report, []byte, error) {
	x, rest, err := freqoracle.DecodeGRRReport(src, g)
	if err != nil {
		return Report{}, nil, err
	}
	return Report{HashSeed: hashSeed, X: x, g: g}, rest, nil
}

// ReportDecoder decodes LOLOHA round payloads for a protocol with reduced
// domain g, resolving each user's hash from the enrolled hash seed.
type ReportDecoder struct{ G int }

// Decode implements longitudinal.Decoder.
func (d ReportDecoder) Decode(payload []byte, reg longitudinal.Registration) (longitudinal.Report, error) {
	rep, rest, err := DecodeReport(payload, d.G, reg.HashSeed)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in LOLOHA payload", len(rest))
	}
	return rep, nil
}

// WireDecoder implements longitudinal.WireProtocol.
func (p *Protocol) WireDecoder() longitudinal.Decoder { return ReportDecoder{G: p.g} }

// ---------------------------------------------------------------------------
// Server side (Algorithm 2).

// Aggregator collects one round of LOLOHA reports and estimates the k-bin
// histogram. It registers each user's hash function the first time it sees
// the user and (optionally) caches the user's full hash table.
type Aggregator struct {
	proto  *Protocol
	counts []int64
	n      int
	hashes map[int]hashfamily.Hash
	tables map[int][]uint8 // userID -> H_u(v) for all v, if caching
}

// NewAggregator implements longitudinal.Protocol.
func (p *Protocol) NewAggregator() longitudinal.Aggregator {
	return p.NewServer()
}

// NewServer returns an Aggregator with its concrete type.
func (p *Protocol) NewServer() *Aggregator {
	a := &Aggregator{
		proto:  p,
		counts: make([]int64, p.k),
		hashes: make(map[int]hashfamily.Hash),
	}
	if p.cacheSupport {
		a.tables = make(map[int][]uint8)
	}
	return a
}

// Add implements longitudinal.Aggregator: counts support C(v) for every
// candidate value (the n·k server loop of Table 1).
func (a *Aggregator) Add(userID int, rep longitudinal.Report) {
	r, ok := rep.(Report)
	if !ok {
		panic(fmt.Sprintf("core: LOLOHA aggregator got %T", rep))
	}
	a.AddReport(userID, r)
}

// AddReport is Add with a concrete report type.
//
//loloha:noalloc
func (a *Aggregator) AddReport(userID int, r Report) {
	if r.X < 0 || r.X >= a.proto.g {
		panic(fmt.Sprintf("core: LOLOHA report %d outside [0,%d)", r.X, a.proto.g))
	}
	x := uint8(r.X)
	if a.tables != nil {
		table, ok := a.tables[userID]
		//loloha:alloc-ok cold: the per-user hash table is built once, on first report
		if !ok {
			h := a.proto.family.FromSeed(r.HashSeed)
			table = make([]uint8, a.proto.k)
			for v := range table {
				table[v] = uint8(h.Index(v))
			}
			a.tables[userID] = table
		}
		for v, hv := range table {
			if hv == x {
				a.counts[v]++
			}
		}
	} else {
		h, ok := a.hashes[userID]
		//loloha:alloc-ok cold: the user's hash is resolved once, on first report
		if !ok {
			h = a.proto.family.FromSeed(r.HashSeed)
			a.hashes[userID] = h
		}
		for v := 0; v < a.proto.k; v++ {
			if h.Index(v) == r.X {
				a.counts[v]++
			}
		}
	}
	a.n++
}

// Fork implements longitudinal.MergeableAggregator.
func (a *Aggregator) Fork() longitudinal.Aggregator {
	return a.proto.NewServer()
}

// Merge implements longitudinal.MergeableAggregator: it folds other's
// round tallies into the receiver and resets them. other keeps its
// per-user hash registrations (they are keyed by the users the fork
// tallies, which stay with the fork across rounds).
func (a *Aggregator) Merge(other longitudinal.Aggregator) {
	o, ok := other.(*Aggregator)
	if !ok || o.proto != a.proto {
		panic(fmt.Sprintf("core: LOLOHA aggregator cannot merge %T", other))
	}
	longitudinal.MergeCounts(a.counts, o.counts)
	a.n += o.n
	o.n = 0
}

// EndRound implements longitudinal.Aggregator: Eq. (3) with q′₁ = 1/g.
func (a *Aggregator) EndRound() []float64 {
	est := a.proto.params.EstimateAllL(a.counts, a.n)
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.n = 0
	return est
}

// EstimateDomain implements longitudinal.Aggregator.
func (a *Aggregator) EstimateDomain() int { return a.proto.k }
