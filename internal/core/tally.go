package core

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/freqoracle"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// WireTallier implements longitudinal.TallyProtocol: LOLOHA payloads tally
// directly into the aggregator's support counts, with no Report
// materialized and zero steady-state allocations (the per-user hash table
// is built once, on the user's first report).
func (p *Protocol) WireTallier() longitudinal.WireTallier { return wireTallier{proto: p} }

type wireTallier struct{ proto *Protocol }

var _ longitudinal.ColumnarTallier = wireTallier{}

// PayloadStride implements longitudinal.ColumnarTallier.
//
//loloha:noalloc
func (t wireTallier) PayloadStride() int { return freqoracle.GRRPayloadBytes(t.proto.g) }

// TallyCell implements longitudinal.ColumnarTallier: the hash-cell parse
// keeps its value range check; the length check is hoisted to the batch
// decoder.
//
//loloha:noalloc
func (t wireTallier) TallyCell(agg longitudinal.Aggregator, userID int, cell []byte, reg longitudinal.Registration) error {
	a, ok := agg.(*Aggregator)
	if !ok || a.proto != t.proto {
		return fmt.Errorf("core: LOLOHA tallier cannot tally into %T", agg)
	}
	x, err := freqoracle.ParseGRRPayload(cell, t.proto.g)
	if err != nil {
		return err
	}
	a.AddReport(userID, Report{HashSeed: reg.HashSeed, X: x, g: t.proto.g})
	return nil
}

// TallyWire implements longitudinal.WireTallier: parse the sanitized hash
// cell and run the Algorithm 2 support loop against the user's registered
// hash.
//
//loloha:noalloc
func (t wireTallier) TallyWire(agg longitudinal.Aggregator, userID int, payload []byte, reg longitudinal.Registration) error {
	a, ok := agg.(*Aggregator)
	if !ok || a.proto != t.proto {
		return fmt.Errorf("core: LOLOHA tallier cannot tally into %T", agg)
	}
	x, err := freqoracle.ParseGRRPayload(payload, t.proto.g)
	if err != nil {
		return err
	}
	a.AddReport(userID, Report{HashSeed: reg.HashSeed, X: x, g: t.proto.g})
	return nil
}
