package core

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/domain"
	"github.com/loloha-ldp/loloha/internal/hashfamily"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		k, g         int
		epsInf, eps1 float64
	}{
		{1, 2, 2, 1},   // k too small
		{10, 1, 2, 1},  // g too small
		{10, 2, 2, 2},  // eps1 == epsInf
		{10, 2, 2, 0},  // eps1 zero
		{10, 2, 0, -1}, // everything broken
	}
	for _, c := range cases {
		if _, err := New(c.k, c.g, c.epsInf, c.eps1); err == nil {
			t.Errorf("New(%d,%d,%v,%v) accepted", c.k, c.g, c.epsInf, c.eps1)
		}
	}
	if _, err := New(10, 4, 2, 1, WithFamily(hashfamily.NewSplitMixFamily(8))); err == nil {
		t.Error("family/g mismatch accepted")
	}
}

func TestNamedConstructors(t *testing.T) {
	bi, err := NewBinary(100, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bi.G() != 2 || bi.Name() != "BiLOLOHA" {
		t.Errorf("BiLOLOHA: g=%d name=%q", bi.G(), bi.Name())
	}
	ol, err := NewOptimal(100, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ol.G() != OptimalG(5, 3) || ol.Name() != "OLOLOHA" {
		t.Errorf("OLOLOHA: g=%d name=%q", ol.G(), ol.Name())
	}
	if ol.G() <= 2 {
		t.Errorf("at eps∞=5, α=0.6 the optimal g should exceed 2, got %d", ol.G())
	}
}

func TestTheorem33PRRRatio(t *testing.T) {
	// PRR parameters give p/q = e^{ε∞} exactly.
	p, err := New(50, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pr := p.prr.Params()
	if got := math.Log(pr.P / pr.Q); math.Abs(got-3) > 1e-9 {
		t.Errorf("PRR ratio gives eps %v, want 3", got)
	}
}

func TestTheorem34FirstReportEps(t *testing.T) {
	// The chained per-cell probabilities must satisfy
	// (p1p2+q1q2)/(p1q2+q1p2) = e^{ε1} with the paper's εIRR.
	for _, c := range []struct{ epsInf, eps1 float64 }{
		{1, 0.4}, {2, 1}, {5, 3}, {0.5, 0.05},
	} {
		p, err := New(100, 2, c.epsInf, c.eps1)
		if err != nil {
			t.Fatal(err)
		}
		p1, q1 := p.prr.Params().P, p.prr.Params().Q
		p2, q2 := p.irr.Params().P, p.irr.Params().Q
		ratio := (p1*p2 + q1*q2) / (p1*q2 + q1*p2)
		if math.Abs(ratio-math.Exp(c.eps1)) > 1e-9 {
			t.Errorf("eps∞=%v eps1=%v: first-report ratio %v, want e^ε1 = %v",
				c.epsInf, c.eps1, ratio, math.Exp(c.eps1))
		}
	}
}

func TestTheorem35LongitudinalBudget(t *testing.T) {
	p, _ := New(1000, 4, 2, 1)
	if got := p.LongitudinalBudget(); got != 8 {
		t.Errorf("budget %v, want g·ε∞ = 8", got)
	}
	// A client cycling through the whole domain can never exceed g·ε∞.
	cl := p.newClient(77)
	for v := 0; v < 1000; v++ {
		cl.Report(v)
	}
	if got := cl.PrivacySpent(); got > 8+1e-12 {
		t.Errorf("client spent %v, cap is 8", got)
	}
	if got := cl.PrivacySpent(); got < 2 {
		t.Errorf("client that visited all cells spent only %v", got)
	}
}

func TestLedgerChargesPerHashCellNotPerValue(t *testing.T) {
	// Two values colliding under the client's hash must cost one ε∞.
	p, _ := New(1000, 2, 2, 1)
	cl := p.newClient(5)
	// Find two values with equal hash and two with different hash.
	vSame, vDiff := -1, -1
	h0 := cl.hash.Index(0)
	for v := 1; v < 1000; v++ {
		if cl.hash.Index(v) == h0 && vSame < 0 {
			vSame = v
		}
		if cl.hash.Index(v) != h0 && vDiff < 0 {
			vDiff = v
		}
	}
	cl.Report(0)
	spent0 := cl.PrivacySpent()
	cl.Report(vSame)
	if cl.PrivacySpent() != spent0 {
		t.Error("colliding value charged a fresh ε∞")
	}
	cl.Report(vDiff)
	if cl.PrivacySpent() <= spent0 {
		t.Error("new hash cell did not charge ε∞")
	}
}

func TestMemoizedPRRStable(t *testing.T) {
	// The PRR output for a fixed hash cell must be identical across rounds
	// (PRF memoization); only the IRR varies.
	p, _ := New(100, 4, 2, 0.5)
	cl := p.newClient(3)
	x := cl.hash.Index(42)
	w1 := randsrc.Derive(cl.seed, uint64(x), 1)
	w2 := randsrc.Derive(cl.seed, uint64(x), 2)
	memo := p.prr.PerturbWord(x, w1, w2)
	for i := 0; i < 50; i++ {
		if p.prr.PerturbWord(x, w1, w2) != memo {
			t.Fatal("memoized PRR changed")
		}
	}
}

func TestEndToEndStaticEstimation(t *testing.T) {
	const k, n, tau = 16, 30000, 3
	values := make([]int, n)
	for u := range values {
		values[u] = (u * u) % k
	}
	truth := domain.TrueFrequencies(values, k)

	for _, mk := range []func() (*Protocol, error){
		func() (*Protocol, error) { return NewBinary(k, 3, 1.5) },
		func() (*Protocol, error) { return NewOptimal(k, 3, 1.5) },
		func() (*Protocol, error) { return New(k, 4, 3, 1.5, WithoutSupportCache()) },
		func() (*Protocol, error) {
			return New(k, 4, 3, 1.5, WithFamily(hashfamily.NewCarterWegmanFamily(4)))
		},
	} {
		p, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		clients := make([]*Client, n)
		for u := range clients {
			clients[u] = p.newClient(randsrc.Derive(1000, uint64(u)))
		}
		agg := p.NewServer()
		var est []float64
		for round := 0; round < tau; round++ {
			for u, v := range values {
				agg.AddReport(u, clients[u].ReportValue(v))
			}
			est = agg.EndRound()
		}
		sd := math.Sqrt(p.ApproxVariance(n))
		for v := 0; v < k; v++ {
			if math.Abs(est[v]-truth[v]) > 6*sd+0.01 {
				t.Errorf("%s(g=%d): est[%d] = %v, truth %v (sd %v)",
					p.Name(), p.G(), v, est[v], truth[v], sd)
			}
		}
	}
}

func TestCacheAndNoCacheAgree(t *testing.T) {
	// The support-cache is a pure optimization: identical reports must give
	// identical counts either way.
	const k, n = 32, 500
	mk := func(opts ...Option) (*Protocol, []longitudinal.Report) {
		p, err := New(k, 4, 2, 1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		reports := make([]longitudinal.Report, n)
		for u := 0; u < n; u++ {
			cl := p.newClient(uint64(u))
			reports[u] = cl.ReportValue(u % k)
		}
		return p, reports
	}
	pc, reports := mk()
	pn, _ := mk(WithoutSupportCache())

	aggC, aggN := pc.NewServer(), pn.NewServer()
	for u, rep := range reports {
		aggC.Add(u, rep)
		aggN.Add(u, rep)
	}
	estC, estN := aggC.EndRound(), aggN.EndRound()
	for v := range estC {
		if math.Abs(estC[v]-estN[v]) > 1e-12 {
			t.Fatalf("cache/no-cache estimates diverge at v=%d: %v vs %v", v, estC[v], estN[v])
		}
	}
}

func TestReportEncodingWidth(t *testing.T) {
	p, _ := New(1000, 16, 3, 1)
	cl := p.newClient(1)
	rep := cl.ReportValue(500)
	if got := len(rep.AppendBinary(nil)); got != 1 {
		t.Errorf("g=16 report uses %d bytes, want 1", got)
	}
	if p.SteadyReportBits() != 4 {
		t.Errorf("g=16 steady bits = %d, want 4", p.SteadyReportBits())
	}
	bi, _ := NewBinary(1000, 3, 1)
	if bi.SteadyReportBits() != 1 {
		t.Errorf("BiLOLOHA steady bits = %d, want 1", bi.SteadyReportBits())
	}
}

func TestAggregatorRejectsForeignReport(t *testing.T) {
	p, _ := NewBinary(10, 2, 1)
	agg := p.NewServer()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign report accepted")
		}
	}()
	agg.Add(0, fakeReport{})
}

type fakeReport struct{}

func (fakeReport) AppendBinary(dst []byte) []byte { return dst }

func TestClientPanicsOnOutOfRange(t *testing.T) {
	p, _ := NewBinary(10, 2, 1)
	cl := p.newClient(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range value accepted")
		}
	}()
	cl.ReportValue(10)
}

func TestProtocolImplementsLongitudinalInterface(t *testing.T) {
	var _ longitudinal.Protocol = mustProto(t)
}

func mustProto(t *testing.T) *Protocol {
	t.Helper()
	p, err := NewBinary(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
