package heavyhitter

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{K: 0, Threshold: 0.1},
		{K: 10, Threshold: 0},
		{K: 10, Threshold: 1},
		{K: 10, Threshold: 0.1, Hysteresis: 1.5},
		{K: 10, Threshold: 0.1, Alpha: 2},
		{K: 10, Threshold: 0.1, Alpha: -0.5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(Config{K: 10, Threshold: 0.1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEWMASmoothingMath(t *testing.T) {
	tr, err := New(Config{K: 2, Threshold: 0.5, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	tr.Observe([]float64{1.0, 0.0})
	tr.Observe([]float64{0.0, 1.0})
	// After seeding with round 0 and folding round 1 at α=0.5:
	want := []float64{0.5, 0.5}
	got := tr.Smoothed()
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-12 {
			t.Errorf("smoothed[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	if tr.Rounds() != 2 {
		t.Errorf("rounds = %d", tr.Rounds())
	}
}

func TestDetectionAndOrdering(t *testing.T) {
	tr, _ := New(Config{K: 5, Threshold: 0.2, Alpha: 1})
	tr.Observe([]float64{0.5, 0.3, 0.1, 0.05, 0.05})
	hh := tr.HeavyHitters()
	if len(hh) != 2 {
		t.Fatalf("got %d hitters: %+v", len(hh), hh)
	}
	if hh[0].Value != 0 || hh[1].Value != 1 {
		t.Errorf("ordering wrong: %+v", hh)
	}
	if hh[0].Since != 0 {
		t.Errorf("Since = %d, want 0", hh[0].Since)
	}
}

func TestHysteresisPreventsFlapping(t *testing.T) {
	// Threshold 0.2 with hysteresis 0.8 → exit at 0.16. A value that
	// oscillates between 0.17 and 0.21 must stay active once admitted.
	tr, _ := New(Config{K: 1, Threshold: 0.2, Hysteresis: 0.8, Alpha: 1})
	tr.Observe([]float64{0.21})
	if len(tr.HeavyHitters()) != 1 {
		t.Fatal("hitter not admitted")
	}
	for i := 0; i < 5; i++ {
		tr.Observe([]float64{0.17})
		if len(tr.HeavyHitters()) != 1 {
			t.Fatalf("hitter dropped above exit threshold at round %d", i+1)
		}
	}
	tr.Observe([]float64{0.1})
	if len(tr.HeavyHitters()) != 0 {
		t.Error("hitter survived below exit threshold")
	}
}

func TestSinceTracksReadmission(t *testing.T) {
	tr, _ := New(Config{K: 1, Threshold: 0.2, Hysteresis: 1, Alpha: 1})
	tr.Observe([]float64{0.5})  // round 0: admitted
	tr.Observe([]float64{0.05}) // round 1: dropped
	tr.Observe([]float64{0.5})  // round 2: readmitted
	hh := tr.HeavyHitters()
	if len(hh) != 1 || hh[0].Since != 2 {
		t.Errorf("readmission Since wrong: %+v", hh)
	}
}

func TestObservePanicsOnWrongLength(t *testing.T) {
	tr, _ := New(Config{K: 3, Threshold: 0.1})
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length estimates accepted")
		}
	}()
	tr.Observe([]float64{0.1})
}

func TestEndToEndWithLolohaEstimates(t *testing.T) {
	// Plant two heavy values in a 60-value domain, run BiLOLOHA for a few
	// rounds, and require the tracker to find exactly those two.
	const k, n, rounds = 60, 8000, 6
	proto, err := core.NewBinary(k, 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]longitudinal.Client, n)
	values := make([]int, n)
	r := randsrc.NewSeeded(41)
	for u := range clients {
		clients[u] = proto.NewClient(uint64(u))
		switch {
		case u < n*4/10:
			values[u] = 7
		case u < n*7/10:
			values[u] = 23
		default:
			values[u] = r.Intn(k)
		}
	}
	agg := proto.NewAggregator()
	threshold := SuggestedThreshold(proto.Params(), n, 0.5, 3)
	if threshold > 0.1 {
		t.Fatalf("suggested threshold %v too coarse for the planted hitters", threshold)
	}
	tr, err := New(Config{K: k, Threshold: 0.1, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		for u, v := range values {
			agg.Add(u, clients[u].Report(v))
		}
		tr.Observe(agg.EndRound())
	}
	hh := tr.HeavyHitters()
	if len(hh) != 2 {
		t.Fatalf("got %d hitters, want 2: %+v", len(hh), hh)
	}
	if hh[0].Value != 7 || hh[1].Value != 23 {
		t.Errorf("wrong hitters: %+v", hh)
	}
	if math.Abs(hh[0].Freq-0.4) > 0.05 || math.Abs(hh[1].Freq-0.3) > 0.05 {
		t.Errorf("hitter frequencies off: %+v", hh)
	}
}

func TestNoiseFloorAndSuggestedThreshold(t *testing.T) {
	params := longitudinal.ChainParams{P1: 0.7, Q1: 0.5, P2: 0.8, Q2: 0.2}
	nf := NoiseFloor(params, 10000)
	if !(nf > 0) {
		t.Fatalf("noise floor %v", nf)
	}
	// Smoothing shrinks the effective floor; alpha=1 recovers z·sd.
	full := SuggestedThreshold(params, 10000, 1, 3)
	if math.Abs(full-3*nf) > 1e-12 {
		t.Errorf("alpha=1 threshold %v, want %v", full, 3*nf)
	}
	smoothed := SuggestedThreshold(params, 10000, 0.2, 3)
	if smoothed >= full {
		t.Error("smoothing did not lower the threshold")
	}
}
