// Package heavyhitter tracks the heavy hitters of an evolving distribution
// from the per-round estimates of a longitudinal LDP protocol. Frequency
// oracles are the standard building block for heavy-hitter identification
// (the paper's §2.3 cites this as a primary application); this package adds
// the monitoring-side machinery: exponential smoothing to suppress LDP
// noise across rounds, a detection threshold grounded in the estimator's
// variance, and hysteresis so hitters do not flap at the threshold.
package heavyhitter

import (
	"fmt"
	"math"
	"sort"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// Hitter is one detected heavy hitter.
type Hitter struct {
	// Value is the domain index.
	Value int
	// Freq is the smoothed frequency estimate.
	Freq float64
	// Since is the round (0-based) at which the value last became a
	// hitter.
	Since int
}

// Tracker folds per-round estimates into smoothed frequencies and
// maintains the heavy-hitter set.
type Tracker struct {
	k         int
	threshold float64
	// exit is the hysteresis threshold: a current hitter is only dropped
	// once its smoothed frequency falls below exit (< threshold).
	exit     float64
	alpha    float64 // EWMA weight of the newest round
	smoothed []float64
	active   map[int]int // value -> round it became active
	rounds   int
}

// Config parameterizes a Tracker.
type Config struct {
	// K is the domain size.
	K int
	// Threshold is the smoothed frequency at which a value becomes a
	// heavy hitter.
	Threshold float64
	// Hysteresis is the fraction of Threshold below which a hitter is
	// dropped (default 0.8; must be in (0, 1]).
	Hysteresis float64
	// Alpha is the EWMA weight of the newest round in (0, 1]; 1 disables
	// smoothing (default 0.3).
	Alpha float64
}

// New returns a Tracker.
func New(cfg Config) (*Tracker, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("heavyhitter: K must be positive, got %d", cfg.K)
	}
	if !(cfg.Threshold > 0) || cfg.Threshold >= 1 {
		return nil, fmt.Errorf("heavyhitter: threshold must be in (0,1), got %v", cfg.Threshold)
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 0.8
	}
	if cfg.Hysteresis <= 0 || cfg.Hysteresis > 1 {
		return nil, fmt.Errorf("heavyhitter: hysteresis must be in (0,1], got %v", cfg.Hysteresis)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.3
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("heavyhitter: alpha must be in (0,1], got %v", cfg.Alpha)
	}
	return &Tracker{
		k:         cfg.K,
		threshold: cfg.Threshold,
		exit:      cfg.Threshold * cfg.Hysteresis,
		alpha:     cfg.Alpha,
		smoothed:  make([]float64, cfg.K),
		active:    make(map[int]int),
	}, nil
}

// Observe folds one round of estimates in. It panics if the estimate
// vector has the wrong length (a protocol mismatch, not noise).
func (t *Tracker) Observe(est []float64) {
	if len(est) != t.k {
		panic(fmt.Sprintf("heavyhitter: got %d estimates, want %d", len(est), t.k))
	}
	for v, e := range est {
		if t.rounds == 0 {
			t.smoothed[v] = e
		} else {
			t.smoothed[v] = t.alpha*e + (1-t.alpha)*t.smoothed[v]
		}
	}
	for v, s := range t.smoothed {
		_, isActive := t.active[v]
		switch {
		case !isActive && s >= t.threshold:
			t.active[v] = t.rounds
		case isActive && s < t.exit:
			delete(t.active, v)
		}
	}
	t.rounds++
}

// Rounds returns the number of rounds observed.
func (t *Tracker) Rounds() int { return t.rounds }

// Smoothed returns a copy of the smoothed frequency vector.
func (t *Tracker) Smoothed() []float64 {
	return append([]float64(nil), t.smoothed...)
}

// HeavyHitters returns the current hitters sorted by descending smoothed
// frequency (ties by value).
func (t *Tracker) HeavyHitters() []Hitter {
	out := make([]Hitter, 0, len(t.active))
	for v, since := range t.active {
		out = append(out, Hitter{Value: v, Freq: t.smoothed[v], Since: since})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// ---------------------------------------------------------------------------
// Threshold guidance.

// NoiseFloor returns the standard deviation of a single-round estimate of
// a rare value under the given chain parameters — thresholds materially
// below it will fire on noise. With EWMA smoothing over many rounds the
// effective floor shrinks by sqrt(alpha/(2-alpha)).
func NoiseFloor(params longitudinal.ChainParams, n int) float64 {
	return math.Sqrt(params.ApproxVariance(n))
}

// SuggestedThreshold returns a threshold z noise-floors above zero for the
// smoothed series: z·sd·sqrt(alpha/(2−alpha)). z = 3 gives ~0.1% false
// positives per value per round under a normal approximation.
func SuggestedThreshold(params longitudinal.ChainParams, n int, alpha, z float64) float64 {
	sd := NoiseFloor(params, n)
	return z * sd * math.Sqrt(alpha/(2-alpha))
}
