// Package hashfamily implements the universal hash families used by local
// hashing protocols (Wang et al. USENIX Sec'17) and by LOLOHA.
//
// A family maps an input value v ∈ V into a reduced domain [0..g) such that
// for any two distinct inputs, a randomly chosen member collides with
// probability at most ~1/g (the universal property of §3.1 of the paper).
//
// Two families are provided:
//
//   - SplitMix: a random-oracle style family h(v) = Mix64(seed ⊕ f(v)) mod g.
//     Statistically this behaves like a uniformly random function, which is
//     strictly stronger than 2-universality. It mirrors the xxhash-based
//     family used by the authors' reference implementation.
//   - CarterWegman: the classic provably 2-universal family
//     h(v) = ((a·v + b) mod p) mod g with p = 2^61 − 1 (Mersenne prime).
//
// Members are identified by a compact 64-bit seed, so a client's hash
// function can be communicated to the server as part of its first report
// ("Send H" in Algorithm 1).
package hashfamily

import (
	"math/bits"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// Hash is one member of a universal family, mapping values to [0..G()).
type Hash interface {
	// Index hashes an integer-encoded value.
	Index(v int) int
	// IndexString hashes a string value (for non-integer domains).
	IndexString(v string) int
	// G returns the size of the reduced output domain.
	G() int
	// Seed returns the compact identifier of this member, sufficient for
	// the server to re-instantiate the same function.
	Seed() uint64
}

// Family constructs members of a universal hash family for a fixed g.
type Family interface {
	// New draws a fresh member using r as the source of randomness.
	New(r *randsrc.Rand) Hash
	// FromSeed reconstructs the member identified by seed (server side).
	FromSeed(seed uint64) Hash
	// Name identifies the family in reports and benchmarks.
	Name() string
}

// ---------------------------------------------------------------------------
// SplitMix family (default)

// SplitMixFamily is a random-oracle style family: each seed induces an
// (effectively) independent uniform function V → [0..g).
type SplitMixFamily struct{ g int }

// NewSplitMixFamily returns the SplitMix family with output domain [0..g).
// It panics if g < 2 (a reduced domain must have at least two cells).
func NewSplitMixFamily(g int) SplitMixFamily {
	if g < 2 {
		panic("hashfamily: g must be at least 2")
	}
	return SplitMixFamily{g: g}
}

// Name implements Family.
func (SplitMixFamily) Name() string { return "splitmix" }

// New implements Family.
func (f SplitMixFamily) New(r *randsrc.Rand) Hash {
	return SplitMixHash{seed: r.Uint64(), g: f.g}
}

// FromSeed implements Family.
func (f SplitMixFamily) FromSeed(seed uint64) Hash {
	return SplitMixHash{seed: seed, g: f.g}
}

// SplitMixHash is one member of SplitMixFamily.
type SplitMixHash struct {
	seed uint64
	g    int
}

// Index implements Hash.
func (h SplitMixHash) Index(v int) int {
	return reduce(randsrc.Mix64(h.seed^(uint64(v)*0xD6E8FEB86659FD93+0x9E3779B97F4A7C15)), h.g)
}

// IndexString implements Hash.
func (h SplitMixHash) IndexString(v string) int {
	z := h.seed
	for i := 0; i < len(v); i++ {
		z = randsrc.Mix64(z ^ uint64(v[i])*0xFF51AFD7ED558CCD)
	}
	return reduce(randsrc.Mix64(z^uint64(len(v))), h.g)
}

// G implements Hash.
func (h SplitMixHash) G() int { return h.g }

// Seed implements Hash.
func (h SplitMixHash) Seed() uint64 { return h.seed }

// reduce maps a uniform 64-bit word onto [0..g) with negligible bias
// (Lemire's multiply-shift reduction).
func reduce(w uint64, g int) int {
	hi, _ := bits.Mul64(w, uint64(g))
	return int(hi)
}

// ---------------------------------------------------------------------------
// Carter–Wegman family

// mersenne61 is the Mersenne prime 2^61 − 1, which admits a fast mod.
const mersenne61 = (1 << 61) - 1

// CarterWegmanFamily is the 2-universal family ((a·v + b) mod p) mod g over
// the prime field p = 2^61 − 1, with a ∈ [1, p), b ∈ [0, p).
type CarterWegmanFamily struct{ g int }

// NewCarterWegmanFamily returns the Carter–Wegman family with output domain
// [0..g). It panics if g < 2.
func NewCarterWegmanFamily(g int) CarterWegmanFamily {
	if g < 2 {
		panic("hashfamily: g must be at least 2")
	}
	return CarterWegmanFamily{g: g}
}

// Name implements Family.
func (CarterWegmanFamily) Name() string { return "carter-wegman" }

// New implements Family.
func (f CarterWegmanFamily) New(r *randsrc.Rand) Hash {
	// Pack (a, b) into one 64-bit seed by deriving both from it; this keeps
	// the wire format identical across families.
	return f.FromSeed(r.Uint64())
}

// FromSeed implements Family.
func (f CarterWegmanFamily) FromSeed(seed uint64) Hash {
	a := randsrc.Derive(seed, 1)%(mersenne61-1) + 1 // a ∈ [1, p)
	b := randsrc.Derive(seed, 2) % mersenne61       // b ∈ [0, p)
	return CarterWegmanHash{seed: seed, a: a, b: b, g: f.g}
}

// CarterWegmanHash is one member of CarterWegmanFamily.
type CarterWegmanHash struct {
	seed uint64
	a, b uint64
	g    int
}

// Index implements Hash.
func (h CarterWegmanHash) Index(v int) int {
	x := mod61(uint64(v))
	return int(mod61(mulMod61(h.a, x)+h.b) % uint64(h.g))
}

// IndexString implements Hash.
func (h CarterWegmanHash) IndexString(v string) int {
	// Fold the string into the field with a polynomial in a, then finish
	// with the affine step; still a universal construction for strings.
	var acc uint64
	for i := 0; i < len(v); i++ {
		acc = mod61(mulMod61(acc, h.a) + uint64(v[i]) + 1)
	}
	return int(mod61(mulMod61(h.a, acc)+h.b) % uint64(h.g))
}

// G implements Hash.
func (h CarterWegmanHash) G() int { return h.g }

// Seed implements Hash.
func (h CarterWegmanHash) Seed() uint64 { return h.seed }

// mod61 reduces x modulo 2^61 − 1 for x < 2^62 (sufficient after mulMod61
// and small additions).
func mod61(x uint64) uint64 {
	x = (x & mersenne61) + (x >> 61)
	if x >= mersenne61 {
		x -= mersenne61
	}
	return x
}

// mulMod61 computes (a*b) mod (2^61 − 1) using a 128-bit product.
func mulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi·2^64 + lo ≡ hi·8 + (lo >> 61) + (lo mod 2^61) (mod 2^61−1).
	// With a, b < 2^61 the sum stays below 2^62, which mod61 accepts.
	return mod61((hi << 3) + (lo >> 61) + (lo & mersenne61))
}
