package hashfamily

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func families(g int) []Family {
	return []Family{NewSplitMixFamily(g), NewCarterWegmanFamily(g)}
}

func TestRange(t *testing.T) {
	r := randsrc.NewSeeded(1)
	for _, g := range []int{2, 3, 7, 16} {
		for _, fam := range families(g) {
			h := fam.New(r)
			if h.G() != g {
				t.Fatalf("%s: G() = %d, want %d", fam.Name(), h.G(), g)
			}
			for v := 0; v < 5000; v++ {
				x := h.Index(v)
				if x < 0 || x >= g {
					t.Fatalf("%s: Index(%d) = %d out of [0,%d)", fam.Name(), v, x, g)
				}
			}
		}
	}
}

func TestDeterministicAndSeedRoundTrip(t *testing.T) {
	r := randsrc.NewSeeded(2)
	for _, fam := range families(4) {
		h := fam.New(r)
		h2 := fam.FromSeed(h.Seed())
		for v := 0; v < 1000; v++ {
			if h.Index(v) != h2.Index(v) {
				t.Fatalf("%s: FromSeed(Seed()) disagrees at v=%d", fam.Name(), v)
			}
		}
		if h.IndexString("hello") != h2.IndexString("hello") {
			t.Fatalf("%s: FromSeed(Seed()) disagrees on strings", fam.Name())
		}
	}
}

func TestUniversality(t *testing.T) {
	// For random pairs v1 != v2, Pr[h(v1) == h(v2)] over the family must be
	// close to (at most, for CW) 1/g. We estimate with 20000 members.
	r := randsrc.NewSeeded(3)
	for _, g := range []int{2, 8} {
		for _, fam := range families(g) {
			const members = 20000
			pairs := [][2]int{{0, 1}, {5, 999}, {123456, 123457}, {7, 7000000}}
			for _, pair := range pairs {
				coll := 0
				for i := 0; i < members; i++ {
					h := fam.New(r)
					if h.Index(pair[0]) == h.Index(pair[1]) {
						coll++
					}
				}
				got := float64(coll) / members
				want := 1.0 / float64(g)
				// 6-sigma binomial tolerance.
				tol := 6 * math.Sqrt(want*(1-want)/members)
				if got > want+tol {
					t.Errorf("%s g=%d pair %v: collision rate %v exceeds 1/g=%v (+%v)",
						fam.Name(), g, pair, got, want, tol)
				}
				if got < want-tol {
					t.Logf("%s g=%d pair %v: collision rate %v below 1/g (fine for CW)",
						fam.Name(), g, pair, got)
				}
			}
		}
	}
}

func TestOutputBalance(t *testing.T) {
	// A single member should spread a large input domain evenly over [0..g).
	r := randsrc.NewSeeded(4)
	for _, g := range []int{2, 5, 16} {
		for _, fam := range families(g) {
			h := fam.New(r)
			const domain = 60000
			counts := make([]int, g)
			for v := 0; v < domain; v++ {
				counts[h.Index(v)]++
			}
			want := float64(domain) / float64(g)
			for cell, c := range counts {
				if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
					t.Errorf("%s g=%d: cell %d holds %d of %d, want ~%v",
						fam.Name(), g, cell, c, domain, want)
				}
			}
		}
	}
}

func TestDistinctSeedsDistinctFunctions(t *testing.T) {
	r := randsrc.NewSeeded(5)
	for _, fam := range families(8) {
		a, b := fam.New(r), fam.New(r)
		same := 0
		for v := 0; v < 1000; v++ {
			if a.Index(v) == b.Index(v) {
				same++
			}
		}
		// Two random functions to [0..8) agree on ~1/8 of inputs.
		if same > 300 {
			t.Errorf("%s: two fresh members agree on %d/1000 inputs", fam.Name(), same)
		}
	}
}

func TestStringHashingConsistent(t *testing.T) {
	r := randsrc.NewSeeded(6)
	for _, fam := range families(4) {
		h := fam.New(r)
		words := []string{"", "a", "b", "ab", "ba", "hello", "world", "hello world"}
		for _, w := range words {
			x := h.IndexString(w)
			if x < 0 || x >= 4 {
				t.Fatalf("%s: IndexString(%q) = %d out of range", fam.Name(), w, x)
			}
			if x != h.IndexString(w) {
				t.Fatalf("%s: IndexString(%q) not deterministic", fam.Name(), w)
			}
		}
		// "ab" vs "ba" should not systematically collide across members.
		coll := 0
		for i := 0; i < 2000; i++ {
			m := fam.New(r)
			if m.IndexString("ab") == m.IndexString("ba") {
				coll++
			}
		}
		if coll > 700 { // ~1/4 expected = 500
			t.Errorf("%s: order-insensitive string hashing (%d/2000 collisions)", fam.Name(), coll)
		}
	}
}

func TestPanicsOnSmallG(t *testing.T) {
	for _, g := range []int{-1, 0, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSplitMixFamily(%d) did not panic", g)
				}
			}()
			NewSplitMixFamily(g)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCarterWegmanFamily(%d) did not panic", g)
				}
			}()
			NewCarterWegmanFamily(g)
		}()
	}
}

func TestMod61AgainstBigInt(t *testing.T) {
	p := big.NewInt(mersenne61)
	f := func(x uint64) bool {
		if x >= 1<<62 {
			x >>= 2 // mod61's contract is x < 2^62
		}
		want := new(big.Int).Mod(new(big.Int).SetUint64(x), p).Uint64()
		return mod61(x) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestMulMod61AgainstBigInt(t *testing.T) {
	p := big.NewInt(mersenne61)
	f := func(a, b uint64) bool {
		a %= mersenne61
		b %= mersenne61
		ab := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want := ab.Mod(ab, p).Uint64()
		return mulMod61(a, b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCarterWegmanPairwiseCollisionBound(t *testing.T) {
	// The defining property: for fixed v1 != v2 < p, over a uniform (a,b)
	// the collision probability of the field step is exactly 1/p per target
	// pair, hence after mod g at most ~1/g. Verified empirically above; here
	// we check that a and b derived from seeds are in range.
	fam := NewCarterWegmanFamily(3)
	r := randsrc.NewSeeded(7)
	for i := 0; i < 1000; i++ {
		h := fam.New(r).(CarterWegmanHash)
		if h.a < 1 || h.a >= mersenne61 {
			t.Fatalf("a = %d out of [1, p)", h.a)
		}
		if h.b >= mersenne61 {
			t.Fatalf("b = %d out of [0, p)", h.b)
		}
	}
}

func TestReduceQuick(t *testing.T) {
	f := func(w uint64, gRaw uint8) bool {
		g := int(gRaw%30) + 2
		x := reduce(w, g)
		return x >= 0 && x < g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSplitMixIndex(b *testing.B) {
	h := NewSplitMixFamily(16).FromSeed(12345)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Index(i)
	}
	benchSink = sink
}

func BenchmarkCarterWegmanIndex(b *testing.B) {
	h := NewCarterWegmanFamily(16).FromSeed(12345)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Index(i)
	}
	benchSink = sink
}

var benchSink int
