package analysis

import (
	"math"
	"testing"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

func TestDefaultEpsInfGrid(t *testing.T) {
	g := DefaultEpsInfGrid()
	if len(g) != 10 || g[0] != 0.5 || g[9] != 5.0 {
		t.Fatalf("grid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if math.Abs(g[i]-g[i-1]-0.5) > 1e-12 {
			t.Fatalf("grid not spaced by 0.5: %v", g)
		}
	}
}

func TestFig2ShapeMatchesPaper(t *testing.T) {
	// §4 findings: (i) all four protocols are close when α ≤ 0.3;
	// (ii) at high ε∞ and high α, OLOLOHA ≈ L-OSUE outperform
	// RAPPOR ≈ BiLOLOHA.
	const n = 10000
	at := func(proto string, epsInf, alpha float64) float64 {
		pts, err := Fig2(n, []float64{epsInf}, []float64{alpha})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if p.Protocol == proto {
				return p.VStar
			}
		}
		t.Fatalf("protocol %s missing", proto)
		return 0
	}

	// Low-α regime: within a factor 2 of each other.
	for _, proto := range []string{"OLOLOHA", "RAPPOR", "BiLOLOHA"} {
		ref := at("L-OSUE", 1.0, 0.2)
		v := at(proto, 1.0, 0.2)
		if v > 2*ref || v < ref/2 {
			t.Errorf("α=0.2: %s V*=%v far from L-OSUE %v", proto, v, ref)
		}
	}

	// High-ε∞, high-α regime: optimized beat symmetric/binary clearly.
	if at("OLOLOHA", 5, 0.6) >= at("BiLOLOHA", 5, 0.6) {
		t.Error("OLOLOHA should beat BiLOLOHA at eps∞=5, α=0.6")
	}
	if at("L-OSUE", 5, 0.6) >= at("RAPPOR", 5, 0.6) {
		t.Error("L-OSUE should beat RAPPOR at eps∞=5, α=0.6")
	}
	// OLOLOHA tracks L-OSUE closely (the OLH/OUE connection).
	ratio := at("OLOLOHA", 5, 0.6) / at("L-OSUE", 5, 0.6)
	if ratio > 1.6 || ratio < 0.6 {
		t.Errorf("OLOLOHA/L-OSUE variance ratio %v, want ~1", ratio)
	}
}

func TestFig2MonotoneDecreasingInEps(t *testing.T) {
	pts, err := Fig2(10000, DefaultEpsInfGrid(), []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	for _, p := range pts {
		if prev, ok := last[p.Protocol]; ok && p.VStar >= prev {
			t.Errorf("%s V* not decreasing at eps∞=%v: %v >= %v",
				p.Protocol, p.EpsInf, p.VStar, prev)
		}
		last[p.Protocol] = p.VStar
	}
}

func TestFig1CurvesMatchEq6(t *testing.T) {
	pts := Fig1([]float64{0.5, 5}, []float64{0.1, 0.6})
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.OptimalG < 2 {
			t.Errorf("optimal g %d < 2 at %+v", p.OptimalG, p)
		}
	}
	// α=0.1 in high privacy stays binary; α=0.6 at ε∞=5 is large.
	for _, p := range pts {
		if p.Alpha == 0.1 && p.EpsInf == 0.5 && p.OptimalG != 2 {
			t.Errorf("α=0.1 ε∞=0.5: g = %d, want 2", p.OptimalG)
		}
		if p.Alpha == 0.6 && p.EpsInf == 5 && p.OptimalG < 14 {
			t.Errorf("α=0.6 ε∞=5: g = %d, want ~16", p.OptimalG)
		}
	}
}

func TestVStarLGRRSensitiveToK(t *testing.T) {
	// §4: "L-GRR has shown to be very sensitive to k".
	small, err := VStarLGRR(2, 1, 4, 10000)
	if err != nil {
		t.Fatal(err)
	}
	big, err := VStarLGRR(2, 1, 1412, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if big < 100*small {
		t.Errorf("L-GRR V* at k=1412 (%v) should dwarf k=4 (%v)", big, small)
	}
}

func TestVStarDBitFlip(t *testing.T) {
	// More sampled bits -> lower variance, linearly.
	v1, err := VStarDBitFlip(2, 90, 1, 10000)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := VStarDBitFlip(2, 90, 90, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1/vb-90) > 1e-9 {
		t.Errorf("d-scaling wrong: v1/vb = %v, want 90", v1/vb)
	}
	if _, err := VStarDBitFlip(2, 10, 11, 100); err == nil {
		t.Error("d > b accepted")
	}
	if _, err := VStarDBitFlip(0, 10, 2, 100); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestVStarLOLOHAExactIRRNeverWorse(t *testing.T) {
	// The exact g-ary calibration matches the paper at g=2 and strictly
	// improves for g>2 (DESIGN.md ablation).
	for _, e := range []float64{1, 2, 5} {
		for _, a := range []float64{0.3, 0.5} {
			eps1 := a * e
			for _, g := range []int{2, 4, 8, 16} {
				paper, err := VStarLOLOHA(e, eps1, g, 10000)
				if err != nil {
					t.Fatal(err)
				}
				exact, err := VStarLOLOHAExactIRR(e, eps1, g, 10000)
				if err != nil {
					t.Fatal(err)
				}
				if g == 2 {
					if math.Abs(paper-exact) > 1e-9*paper {
						t.Errorf("g=2 e=%v a=%v: exact %v != paper %v", e, a, exact, paper)
					}
				} else if exact >= paper {
					t.Errorf("g=%d e=%v a=%v: exact %v not below paper %v",
						g, e, a, exact, paper)
				}
			}
		}
	}
}

func TestVStarLOLOHAMatchesEmpiricalOrdering(t *testing.T) {
	// BiLOLOHA (g=2) must be the best LOLOHA configuration at high privacy
	// and beaten by larger g at low privacy — Fig. 1's whole point.
	lo2, _ := VStarLOLOHA(0.5, 0.05, 2, 1000)
	lo8, _ := VStarLOLOHA(0.5, 0.05, 8, 1000)
	if lo2 >= lo8 {
		t.Errorf("high privacy: g=2 V* %v should beat g=8 %v", lo2, lo8)
	}
	hi2, _ := VStarLOLOHA(5, 3, 2, 1000)
	hiOpt, _ := VStarLOLOHA(5, 3, 16, 1000)
	if hiOpt >= hi2 {
		t.Errorf("low privacy: g=16 V* %v should beat g=2 %v", hiOpt, hi2)
	}
}

func TestAccuracyBoundProposition36(t *testing.T) {
	params := longitudinal.ChainParams{P1: 0.8, Q1: 0.5, P2: 0.75, Q2: 0.25}
	b, err := AccuracyBound(100, 10000, 0.05, params)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(100 / (4.0 * 10000 * 0.05 * (0.8 - 0.5) * (0.75 - 0.25)))
	if math.Abs(b-want) > 1e-12 {
		t.Errorf("bound %v, want %v", b, want)
	}
	// Shrinks with n, grows with k, shrinks as beta grows.
	b2, _ := AccuracyBound(100, 40000, 0.05, params)
	if b2 >= b {
		t.Error("bound did not shrink with n")
	}
	b3, _ := AccuracyBound(400, 10000, 0.05, params)
	if b3 <= b {
		t.Error("bound did not grow with k")
	}
	b4, _ := AccuracyBound(100, 10000, 0.2, params)
	if b4 >= b {
		t.Error("bound did not shrink with beta")
	}
}

func TestAccuracyBoundValidation(t *testing.T) {
	params := longitudinal.ChainParams{P1: 0.8, Q1: 0.5, P2: 0.75, Q2: 0.25}
	if _, err := AccuracyBound(10, 10, 0, params); err == nil {
		t.Error("beta=0 accepted")
	}
	if _, err := AccuracyBound(10, 10, 1, params); err == nil {
		t.Error("beta=1 accepted")
	}
	if _, err := AccuracyBound(0, 10, 0.1, params); err == nil {
		t.Error("k=0 accepted")
	}
	bad := longitudinal.ChainParams{P1: 0.3, Q1: 0.5, P2: 0.75, Q2: 0.25}
	if _, err := AccuracyBound(10, 10, 0.1, bad); err == nil {
		t.Error("degenerate params accepted")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	// Paper's Table 1 with k=360, g=4, b=90, d=4.
	rows := Table1(360, 4, 90, 4)
	want := map[string]struct {
		comm   int
		budget int
	}{
		"LOLOHA":     {2, 4},     // ceil(log2 4), g
		"L-GRR":      {9, 360},   // ceil(log2 360), k
		"RAPPOR":     {360, 360}, // k, k
		"L-OSUE":     {360, 360}, // k, k
		"dBitFlipPM": {4, 5},     // d, min(d+1,b)
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Protocol]
		if !ok {
			t.Errorf("unexpected protocol %q", r.Protocol)
			continue
		}
		if r.CommBits != w.comm {
			t.Errorf("%s comm bits = %d, want %d", r.Protocol, r.CommBits, w.comm)
		}
		if r.BudgetUnits != w.budget {
			t.Errorf("%s budget = %d, want %d", r.Protocol, r.BudgetUnits, w.budget)
		}
	}
}

func TestTable1DBitBudgetCapsAtB(t *testing.T) {
	rows := Table1(100, 2, 5, 5)
	for _, r := range rows {
		if r.Protocol == "dBitFlipPM" && r.BudgetUnits != 5 {
			t.Errorf("d=b=5: budget = %d, want b=5", r.BudgetUnits)
		}
	}
}
