// Package analysis evaluates the paper's closed-form results numerically:
// the optimal-g curves of Fig. 1, the approximate-variance comparison of
// Fig. 2, the theoretical comparison of Table 1 and the accuracy bound of
// Proposition 3.6. Everything here is deterministic arithmetic — no
// sampling — so the figures it produces are exact.
package analysis

import (
	"fmt"
	"math"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// DefaultEpsInfGrid is the ε∞ grid used throughout the paper's evaluation:
// [0.5, 1, ..., 4.5, 5].
func DefaultEpsInfGrid() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = 0.5 * float64(i+1)
	}
	return out
}

// ---------------------------------------------------------------------------
// Per-protocol approximate variances V* (Eq. (5) instantiations).

// VStarRAPPOR returns V* of RAPPOR (L-SUE) with n users.
func VStarRAPPOR(epsInf, eps1 float64, n int) (float64, error) {
	p, err := longitudinal.LSUEParams(epsInf, eps1)
	if err != nil {
		return 0, err
	}
	return p.ApproxVariance(n), nil
}

// VStarLOSUE returns V* of L-OSUE with n users.
func VStarLOSUE(epsInf, eps1 float64, n int) (float64, error) {
	p, err := longitudinal.LOSUEParams(epsInf, eps1)
	if err != nil {
		return 0, err
	}
	return p.ApproxVariance(n), nil
}

// VStarLGRR returns V* of L-GRR over domain size k with n users.
func VStarLGRR(epsInf, eps1 float64, k, n int) (float64, error) {
	m, err := longitudinal.NewLGRR(k, epsInf, eps1)
	if err != nil {
		return 0, err
	}
	return m.ApproxVariance(n), nil
}

// VStarLOLOHA returns V* of LOLOHA with reduced domain g and n users
// (Algorithm 2 parameters, q′₁ = 1/g).
func VStarLOLOHA(epsInf, eps1 float64, g, n int) (float64, error) {
	epsIRR, err := longitudinal.EpsIRR(epsInf, eps1)
	if err != nil {
		return 0, err
	}
	gf := float64(g)
	a, c := math.Exp(epsInf), math.Exp(epsIRR)
	params := longitudinal.ChainParams{
		P1: a / (a + gf - 1),
		Q1: 1 / gf,
		P2: c / (c + gf - 1),
		Q2: 1 / (c + gf - 1),
	}
	return params.ApproxVariance(n), nil
}

// VStarLOLOHAExactIRR returns V* of a LOLOHA configuration whose IRR is
// calibrated with the exact g-ary formula (longitudinal.ExactEpsIRR)
// instead of the paper's Algorithm 1 formula — the ablation of DESIGN.md.
func VStarLOLOHAExactIRR(epsInf, eps1 float64, g, n int) (float64, error) {
	epsIRR, err := longitudinal.ExactEpsIRR(epsInf, eps1, g)
	if err != nil {
		return 0, err
	}
	gf := float64(g)
	a, c := math.Exp(epsInf), math.Exp(epsIRR)
	params := longitudinal.ChainParams{
		P1: a / (a + gf - 1),
		Q1: 1 / gf,
		P2: c / (c + gf - 1),
		Q2: 1 / (c + gf - 1),
	}
	return params.ApproxVariance(n), nil
}

// VStarBiLOLOHA returns V* of BiLOLOHA (g = 2).
func VStarBiLOLOHA(epsInf, eps1 float64, n int) (float64, error) {
	return VStarLOLOHA(epsInf, eps1, 2, n)
}

// VStarOLOLOHA returns V* of OLOLOHA (g from Eq. (6)).
func VStarOLOLOHA(epsInf, eps1 float64, n int) (float64, error) {
	return VStarLOLOHA(epsInf, eps1, core.OptimalG(epsInf, eps1), n)
}

// VStarDBitFlip returns the single-round approximate variance of
// dBitFlipPM with b buckets and d sampled bits:
// b·e^{ε∞/2} / (n·d·(e^{ε∞/2}−1)²) (§4).
func VStarDBitFlip(epsInf float64, b, d, n int) (float64, error) {
	if epsInf <= 0 {
		return 0, fmt.Errorf("analysis: epsInf must be positive, got %v", epsInf)
	}
	if d < 1 || d > b {
		return 0, fmt.Errorf("analysis: need 1 <= d <= b, got d=%d b=%d", d, b)
	}
	e := math.Exp(epsInf / 2)
	return float64(b) * e / (float64(n) * float64(d) * (e - 1) * (e - 1)), nil
}

// ---------------------------------------------------------------------------
// Fig. 1: optimal g selection.

// Fig1Point is one point of the optimal-g curves.
type Fig1Point struct {
	Alpha    float64
	EpsInf   float64
	OptimalG int
}

// Fig1 evaluates Eq. (6) over the grid of ε∞ and α = ε1/ε∞ values.
func Fig1(epsInfs, alphas []float64) []Fig1Point {
	var out []Fig1Point
	for _, a := range alphas {
		for _, e := range epsInfs {
			out = append(out, Fig1Point{Alpha: a, EpsInf: e, OptimalG: core.OptimalG(e, a*e)})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Fig. 2: numeric V* comparison.

// Fig2Protocols lists the protocols plotted in Fig. 2, in legend order.
var Fig2Protocols = []string{"L-OSUE", "OLOLOHA", "RAPPOR", "BiLOLOHA"}

// Fig2Point is one point of the Fig. 2 variance curves.
type Fig2Point struct {
	Protocol string
	Alpha    float64
	EpsInf   float64
	VStar    float64
}

// Fig2 evaluates V* for the four Fig. 2 protocols over the grid with n
// users (the paper uses n = 10000).
func Fig2(n int, epsInfs, alphas []float64) ([]Fig2Point, error) {
	var out []Fig2Point
	for _, proto := range Fig2Protocols {
		for _, a := range alphas {
			for _, e := range epsInfs {
				eps1 := a * e
				var v float64
				var err error
				switch proto {
				case "L-OSUE":
					v, err = VStarLOSUE(e, eps1, n)
				case "OLOLOHA":
					v, err = VStarOLOLOHA(e, eps1, n)
				case "RAPPOR":
					v, err = VStarRAPPOR(e, eps1, n)
				case "BiLOLOHA":
					v, err = VStarBiLOLOHA(e, eps1, n)
				}
				if err != nil {
					return nil, fmt.Errorf("analysis: %s at eps∞=%v α=%v: %w", proto, e, a, err)
				}
				out = append(out, Fig2Point{Protocol: proto, Alpha: a, EpsInf: e, VStar: v})
			}
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Proposition 3.6: accuracy bound.

// AccuracyBound returns the high-probability uniform error bound of
// Proposition 3.6: with probability ≥ 1−β,
//
//	max_v |f̂(v) − f(v)| < sqrt(k / (4·n·β·(p1−q′1)(p2−q2))).
func AccuracyBound(k, n int, beta float64, params longitudinal.ChainParams) (float64, error) {
	if beta <= 0 || beta >= 1 {
		return 0, fmt.Errorf("analysis: beta must be in (0,1), got %v", beta)
	}
	if k < 1 || n < 1 {
		return 0, fmt.Errorf("analysis: need k, n >= 1, got k=%d n=%d", k, n)
	}
	d1 := params.P1 - params.Q1
	d2 := params.P2 - params.Q2
	if d1 <= 0 || d2 <= 0 {
		return 0, fmt.Errorf("analysis: degenerate chain params %+v", params)
	}
	return math.Sqrt(float64(k) / (4 * float64(n) * beta * d1 * d2)), nil
}

// ---------------------------------------------------------------------------
// Table 1: theoretical comparison.

// Table1Row is one protocol's row of Table 1.
type Table1Row struct {
	Protocol string
	// CommBits is the communication cost in bits per user per time step.
	CommBits int
	// CommFormula is the symbolic form of CommBits.
	CommFormula string
	// ServerTime is the symbolic server run-time complexity per step.
	ServerTime string
	// Budget is the worst-case longitudinal privacy budget in units of ε∞.
	BudgetUnits int
	// BudgetFormula is the symbolic form of BudgetUnits.
	BudgetFormula string
}

// Table1 instantiates the paper's Table 1 for concrete sizes: domain k,
// LOLOHA reduced domain g, dBitFlipPM buckets b and sampled bits d.
func Table1(k, g, b, d int) []Table1Row {
	ceilLog2 := func(x int) int {
		bits := 0
		for 1<<bits < x {
			bits++
		}
		return bits
	}
	minInt := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	return []Table1Row{
		{
			Protocol: "LOLOHA", CommBits: ceilLog2(g), CommFormula: "ceil(log2 g)",
			ServerTime: "n*k", BudgetUnits: g, BudgetFormula: "g",
		},
		{
			Protocol: "L-GRR", CommBits: ceilLog2(k), CommFormula: "ceil(log2 k)",
			ServerTime: "n", BudgetUnits: k, BudgetFormula: "k",
		},
		{
			Protocol: "RAPPOR", CommBits: k, CommFormula: "k",
			ServerTime: "n*k", BudgetUnits: k, BudgetFormula: "k",
		},
		{
			Protocol: "L-OSUE", CommBits: k, CommFormula: "k",
			ServerTime: "n*k", BudgetUnits: k, BudgetFormula: "k",
		},
		{
			Protocol: "dBitFlipPM", CommBits: d, CommFormula: "d",
			ServerTime: "n*b", BudgetUnits: minInt(d+1, b), BudgetFormula: "min(d+1, b)",
		},
	}
}
