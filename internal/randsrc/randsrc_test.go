package randsrc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownVectors(t *testing.T) {
	// Reference values for SplitMix64 seeded with 1234567
	// (from the public-domain reference implementation by Vigna).
	s := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64(1234567) word %d = %d, want %d", i, got, w)
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// A bijection maps distinct inputs to distinct outputs; spot-check a
	// window plus the boundary values.
	seen := make(map[uint64]uint64, 4100)
	check := func(x uint64) {
		y := Mix64(x)
		if prev, dup := seen[y]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d) == %d", x, prev, y)
		}
		seen[y] = x
	}
	for x := uint64(0); x < 2048; x++ {
		check(x)
	}
	for x := ^uint64(0); x > ^uint64(0)-2048; x-- {
		check(x)
	}
}

func TestDeriveDiscriminates(t *testing.T) {
	// Different discriminator words must yield different PRF outputs
	// (overwhelmingly); identical inputs must be deterministic.
	const seed = 42
	if Derive(seed, 1, 2) != Derive(seed, 1, 2) {
		t.Fatal("Derive is not deterministic")
	}
	if Derive(seed, 1, 2) == Derive(seed, 2, 1) {
		t.Error("Derive ignores word order")
	}
	if Derive(seed, 1) == Derive(seed+1, 1) {
		t.Error("Derive ignores seed")
	}
	seen := make(map[uint64]bool, 10000)
	for w := uint64(0); w < 10000; w++ {
		v := Derive(seed, w)
		if seen[v] {
			t.Fatalf("Derive collision within 10k consecutive words (w=%d)", w)
		}
		seen[v] = true
	}
}

func TestStreamWordMatchesSplitMix(t *testing.T) {
	// StreamWord(base, i) must equal the (i+1)-th output of a SplitMix64
	// generator seeded with base.
	const base = 0xDEADBEEF12345678
	s := NewSplitMix64(base)
	for i := 0; i < 100; i++ {
		if got, want := StreamWord(base, i), s.Uint64(); got != want {
			t.Fatalf("StreamWord(base,%d) = %d, want %d", i, got, want)
		}
	}
}

func TestStreamWordIndependentAcrossBases(t *testing.T) {
	agree := 0
	for i := 0; i < 10000; i++ {
		if StreamWord(1, i)&1 == StreamWord(2, i)&1 {
			agree++
		}
	}
	if agree < 4700 || agree > 5300 {
		t.Errorf("streams from different bases agree on %d/10000 low bits", agree)
	}
}

func TestPCGDeterminismAndSplit(t *testing.T) {
	a, b := NewPCG(7), NewPCG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("PCG streams with equal seeds diverged")
		}
	}
	c := a.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and split child emitted %d identical words of 64", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSeeded(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewSeeded(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	// Standard error is 1/sqrt(12 n) ~ 0.00065; allow 6 sigma.
	if math.Abs(mean-0.5) > 0.004 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := NewSeeded(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		// Binomial sd ~ sqrt(draws * p(1-p)) ~ 95; allow 6 sigma.
		if math.Abs(float64(c)-want) > 600 {
			t.Errorf("Intn(%d): value %d drawn %d times, want ~%v", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSeeded(1).Intn(0)
}

func TestIntnOtherExcludes(t *testing.T) {
	r := NewSeeded(3)
	const n, excluded = 7, 4
	counts := make([]int, n)
	for i := 0; i < 60000; i++ {
		v := r.IntnOther(n, excluded)
		if v == excluded {
			t.Fatal("IntnOther returned the excluded value")
		}
		counts[v]++
	}
	for v, c := range counts {
		if v == excluded {
			continue
		}
		if math.Abs(float64(c)-10000) > 700 {
			t.Errorf("IntnOther: value %d drawn %d times, want ~10000", v, c)
		}
	}
}

func TestIntnOtherQuick(t *testing.T) {
	r := NewSeeded(17)
	f := func(nRaw uint8, exRaw uint8) bool {
		n := int(nRaw%30) + 2
		excluded := int(exRaw) % n
		v := r.IntnOther(n, excluded)
		return v >= 0 && v < n && v != excluded
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBernoulliThresholdEdges(t *testing.T) {
	if BernoulliThreshold(0) != 0 {
		t.Error("threshold(0) must be 0")
	}
	if BernoulliThreshold(-1) != 0 {
		t.Error("threshold(<0) must be 0")
	}
	if BernoulliThreshold(1) != ^uint64(0) {
		t.Error("threshold(1) must be max")
	}
	if BernoulliThreshold(2) != ^uint64(0) {
		t.Error("threshold(>1) must be max")
	}
	// Halfway point.
	half := BernoulliThreshold(0.5)
	if math.Abs(float64(half)-0x1p63) > 0x1p40 {
		t.Errorf("threshold(0.5) = %d, want ~2^63", half)
	}
}

func TestBernoulliThresholdMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		return BernoulliThreshold(a) <= BernoulliThreshold(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewSeeded(23)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		const draws = 100000
		hits := 0
		for i := 0; i < draws; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / draws
		// 6-sigma tolerance: sqrt(p(1-p)/draws) <= 0.0016.
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency = %v", p, got)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewSeeded(31)
	out := make([]int, 50)
	r.Perm(out)
	seen := make([]bool, 50)
	for _, v := range out {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm output is not a permutation: %v", out)
		}
		seen[v] = true
	}
}

func TestShuffleUniformFirstPosition(t *testing.T) {
	r := NewSeeded(37)
	const n, trials = 5, 50000
	counts := make([]int, n)
	s := make([]int, n)
	for i := 0; i < trials; i++ {
		for j := range s {
			s[j] = j
		}
		r.Shuffle(s)
		counts[s[0]]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-trials/n) > 600 {
			t.Errorf("Shuffle: value %d at position 0 %d times, want ~%d", v, c, trials/n)
		}
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	r := NewSeeded(41)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(40)
		d := 1 + r.Intn(n)
		s := r.SampleWithoutReplacement(n, d)
		if len(s) != d {
			t.Fatalf("got %d samples, want %d", len(s), d)
		}
		seen := make(map[int]bool, d)
		for _, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("sample %d out of [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d (n=%d d=%d)", v, n, d)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementFull(t *testing.T) {
	r := NewSeeded(43)
	s := r.SampleWithoutReplacement(8, 8)
	seen := make([]bool, 8)
	for _, v := range s {
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("full sample missing value %d: %v", v, s)
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each element of [0,n) should appear in a d-subset with probability d/n.
	r := NewSeeded(47)
	const n, d, trials = 10, 3, 60000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		for _, v := range r.SampleWithoutReplacement(n, d) {
			counts[v]++
		}
	}
	want := float64(trials) * d / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 800 {
			t.Errorf("element %d sampled %d times, want ~%v", v, c, want)
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("d > n did not panic")
		}
	}()
	NewSeeded(1).SampleWithoutReplacement(3, 4)
}

func TestGeometricMean(t *testing.T) {
	r := NewSeeded(53)
	for _, p := range []float64{0.1, 0.3, 0.7, 1.0} {
		const draws = 50000
		sum := 0.0
		for i := 0; i < draws; i++ {
			sum += float64(r.Geometric(p))
		}
		got := sum / draws
		want := (1 - p) / p
		if math.Abs(got-want) > 0.15*(want+0.05) {
			t.Errorf("Geometric(%v) mean = %v, want %v", p, got, want)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	NewSeeded(1).Geometric(0)
}

func TestGeometricSmallP(t *testing.T) {
	// The small-p regime is where skip-sampling lives and where the old
	// math.Log(1-p) form lost precision. The sample mean must track
	// (1-p)/p ~ 1/p: with n draws the standard error of the mean is
	// ~ (1/p)/sqrt(n), so a 5% tolerance needs n >> 400.
	r := NewSeeded(59)
	for _, p := range []float64{1e-3, 1e-5, 1e-7} {
		const draws = 20000
		sum := 0.0
		for i := 0; i < draws; i++ {
			g := r.Geometric(p)
			if g < 0 {
				t.Fatalf("Geometric(%v) returned negative %d", p, g)
			}
			sum += float64(g)
		}
		got := sum / draws
		want := (1 - p) / p
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("Geometric(%v) mean = %v, want %v (log1p precision?)", p, got, want)
		}
	}
}

func TestGeometricTinyPStaysFinite(t *testing.T) {
	// Below p ~ 2^-53 the old log(1-p) collapsed to log(1) = 0 and the
	// inversion divided by zero; with log1p the sample is huge but finite,
	// non-negative and capped so position arithmetic cannot overflow.
	r := NewSeeded(61)
	for _, p := range []float64{1e-16, 1e-20, 1e-300} {
		for i := 0; i < 100; i++ {
			g := r.Geometric(p)
			if g < 0 || g > maxGeometric {
				t.Fatalf("Geometric(%v) = %d outside [0, %d]", p, g, maxGeometric)
			}
		}
	}
}

func TestGeometricWordDeterministicAndCapped(t *testing.T) {
	inv := GeometricInv(0.01)
	if GeometricWord(12345, inv) != GeometricWord(12345, inv) {
		t.Fatal("GeometricWord is not deterministic")
	}
	// A zero word maps to u = 0: the cap, not a panic or negative value.
	if got := GeometricWord(0, inv); got != maxGeometric {
		t.Errorf("GeometricWord(0) = %d, want cap %d", got, maxGeometric)
	}
	// p = 1 must always yield gap 0 (every position fires).
	inv1 := GeometricInv(1)
	for w := uint64(1); w < 1000; w++ {
		if got := GeometricWord(w*0x9E3779B97F4A7C15, inv1); got != 0 {
			t.Fatalf("GeometricWord(p=1) = %d, want 0", got)
		}
	}
}

func TestGeometricWordMean(t *testing.T) {
	// Driving GeometricWord with a counter-addressed stream must reproduce
	// the geometric distribution: mean (1-p)/p within sampling error.
	for _, p := range []float64{0.05, 0.2, 0.5} {
		inv := GeometricInv(p)
		const draws = 50000
		sum := 0.0
		for j := 0; j < draws; j++ {
			sum += float64(GeometricWord(StreamWord(0xABCDEF, j), inv))
		}
		got := sum / draws
		want := (1 - p) / p
		if math.Abs(got-want) > 0.05*(want+0.1) {
			t.Errorf("GeometricWord(p=%v) mean = %v, want %v", p, got, want)
		}
	}
}

func TestNewSeededDeterministic(t *testing.T) {
	a, b := NewSeeded(1000), NewSeeded(1000)
	for i := 0; i < 64; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewSeeded streams with equal seeds diverged")
		}
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	// Children of consecutive seeds should not correlate: check mean of
	// XOR-ed low bits is ~0.5.
	parent := NewSplitMix64(77)
	a, b := parent.Split(), parent.Split()
	agree := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if a.Uint64()&1 == b.Uint64()&1 {
			agree++
		}
	}
	if math.Abs(float64(agree)-n/2) > 300 {
		t.Errorf("sibling streams agree on %d/%d low bits", agree, n)
	}
}

func BenchmarkPCGUint64(b *testing.B) {
	p := NewPCG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Uint64()
	}
	benchSink = sink
}

func BenchmarkSplitMix64Uint64(b *testing.B) {
	s := NewSplitMix64(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	benchSink = sink
}

func BenchmarkDerive2Words(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Derive(42, uint64(i), uint64(i>>3))
	}
	benchSink = sink
}

func BenchmarkBernoulli(b *testing.B) {
	r := NewSeeded(1)
	t := BernoulliThreshold(0.3)
	var sink int
	for i := 0; i < b.N; i++ {
		if BernoulliWord(r.Uint64(), t) {
			sink++
		}
	}
	benchSinkInt = sink
}

var (
	benchSink    uint64
	benchSinkInt int
)
