// Package randsrc provides the deterministic randomness substrate used by
// every protocol in this repository.
//
// All randomized mechanisms (GRR, unary encoding, local hashing, memoization)
// consume uniform 64-bit words from a Source. Two generators are provided:
//
//   - SplitMix64: a tiny, fast, splittable generator. Its output function is
//     also used as the stateless PRF behind memoization (see Derive).
//   - PCG: permuted congruential generator (128-bit state, XSL-RR output),
//     the default stream generator.
//
// Sources are deliberately not safe for concurrent use; the simulation layer
// gives each worker its own stream via Split, which produces statistically
// independent child streams.
package randsrc

import (
	"math"
	"math/bits"
)

// Source is a deterministic stream of uniform 64-bit words.
type Source interface {
	// Uint64 returns the next uniformly distributed 64-bit word.
	Uint64() uint64
}

// golden64 is the SplitMix64 increment (odd, derived from the golden ratio).
const golden64 = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 finalizer: a bijective scrambler with full
// avalanche. It is the workhorse PRF used for stateless memoization.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Mix64 exposes the SplitMix64 finalizer for other packages (hash families,
// PRF-based memoization). It is a bijection on uint64.
func Mix64(z uint64) uint64 { return mix64(z) }

// Derive combines a seed with an arbitrary number of discriminator words into
// a new 64-bit value with full avalanche. It is the PRF used to implement
// stateless memoization: Derive(seed, w, i) plays the role of "the random word
// memoized for value w at coordinate i".
func Derive(seed uint64, words ...uint64) uint64 {
	z := seed
	for _, w := range words {
		z = mix64(z + golden64 + w*0xD6E8FEB86659FD93)
	}
	return mix64(z + golden64)
}

// StreamWord returns the i-th word of the deterministic stream anchored at
// base: the SplitMix64 sequence seeded with base, evaluated at offset i
// without materializing the generator. It is the cheap inner loop of
// PRF-based memoization — callers derive base once per memoized unit via
// Derive and then read as many words as the unit needs.
func StreamWord(base uint64, i int) uint64 {
	return mix64(base + golden64*uint64(i+1))
}

// SplitMix64 is a splittable PRNG with 64 bits of state.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next word of the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += golden64
	return mix64(s.state)
}

// Split returns a child generator whose stream is independent of the
// parent's future output.
func (s *SplitMix64) Split() *SplitMix64 {
	return &SplitMix64{state: mix64(s.Uint64())}
}

// PCG is a PCG XSL-RR 128/64 generator: 128-bit LCG state with a 64-bit
// output permutation. It passes the usual statistical batteries and is the
// default stream generator for simulations.
type PCG struct {
	hi, lo uint64
}

// pcgMulHi/pcgMulLo form the 128-bit LCG multiplier used by PCG 128.
const (
	pcgMulHi = 2549297995355413924
	pcgMulLo = 4865540595714422341
	pcgIncHi = 6364136223846793005
	pcgIncLo = 1442695040888963407
)

// NewPCG returns a PCG seeded from seed via SplitMix64 (so that nearby seeds
// yield unrelated streams).
func NewPCG(seed uint64) *PCG {
	sm := NewSplitMix64(seed)
	p := &PCG{hi: sm.Uint64(), lo: sm.Uint64()}
	p.step()
	return p
}

func (p *PCG) step() {
	// state = state*mul + inc (128-bit arithmetic).
	hi, lo := bits.Mul64(p.lo, pcgMulLo)
	hi += p.hi*pcgMulLo + p.lo*pcgMulHi
	lo, c := bits.Add64(lo, pcgIncLo, 0)
	hi, _ = bits.Add64(hi, pcgIncHi, c)
	p.hi, p.lo = hi, lo
}

// Uint64 returns the next word of the stream.
func (p *PCG) Uint64() uint64 {
	// XSL-RR output function.
	out := bits.RotateLeft64(p.hi^p.lo, -int(p.hi>>58))
	p.step()
	return out
}

// Split returns a child generator seeded from the parent stream.
func (p *PCG) Split() *PCG { return NewPCG(p.Uint64()) }

// Rand couples a Source with the distribution helpers protocols need.
// The zero value is not usable; construct with New.
type Rand struct {
	src Source
}

// New returns a Rand drawing from src.
func New(src Source) *Rand { return &Rand{src: src} }

// NewSeeded returns a Rand over a fresh PCG stream seeded with seed.
func NewSeeded(seed uint64) *Rand { return New(NewPCG(seed)) }

// Uint64 returns the next raw word.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.src.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Uses Lemire's nearly-divisionless bounded sampling.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randsrc: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.src.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.src.Uint64(), un)
		}
	}
	return int(hi)
}

// IntnOther returns a uniform integer in [0, n) \ {excluded}. It panics if
// n < 2 or excluded is outside [0, n). This is the exogenous-noise draw
// η≠v used by generalized randomized response.
func (r *Rand) IntnOther(n, excluded int) int {
	if n < 2 {
		panic("randsrc: IntnOther needs a domain of at least 2")
	}
	if excluded < 0 || excluded >= n {
		panic("randsrc: IntnOther excluded value out of range")
	}
	v := r.Intn(n - 1)
	if v >= excluded {
		v++
	}
	return v
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Rand) Bernoulli(p float64) bool {
	return r.src.Uint64() < BernoulliThreshold(p)
}

// BernoulliThreshold precomputes the 64-bit threshold for Bernoulli(p):
// a uniform word w satisfies w < threshold with probability p (up to 2^-64).
// Computing the threshold once and comparing raw words is the hot path for
// unary-encoding protocols that flip thousands of bits per report.
func BernoulliThreshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	default:
		// p * 2^64, computed without overflow: p * 2^32 * 2^32.
		hi := uint64(p * 0x1p32)
		frac := p*0x1p32 - float64(hi)
		return hi<<32 + uint64(frac*0x1p32)
	}
}

// BernoulliWord reports whether the raw word w falls under the precomputed
// threshold t, i.e. draws Bernoulli(p) from an externally supplied word.
func BernoulliWord(w, t uint64) bool { return w < t }

// Perm fills out with a uniform permutation of [0..len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	r.Shuffle(out)
}

// Shuffle permutes s uniformly (Fisher–Yates).
func (r *Rand) Shuffle(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// SampleWithoutReplacement returns d distinct integers drawn uniformly from
// [0, n), in random order. It panics if d > n or d < 0. This is the bucket
// sampling step of dBitFlipPM (draw d of b buckets without replacement).
func (r *Rand) SampleWithoutReplacement(n, d int) []int {
	if d < 0 || d > n {
		panic("randsrc: SampleWithoutReplacement with d out of range")
	}
	if d == 0 {
		return nil
	}
	out := make([]int, d)
	if d == n {
		// Full sample: a plain Fisher–Yates permutation, no tracking state
		// (the bBitFlipPM enrollment case, where the sparse map below would
		// hold every index anyway).
		r.Perm(out)
		return out
	}
	// Partial Fisher–Yates via a sparse map: O(d) time and space.
	swapped := make(map[int]int, d)
	for i := 0; i < d; i++ {
		j := i + r.Intn(n-i)
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		out[i] = vj
		swapped[j] = vi
	}
	return out
}

// Geometric returns a sample from the geometric distribution on {0,1,2,...}
// with success probability p: the number of failures before the first
// success. Used for skip-sampling sparse bit flips: the gap between
// consecutive Bernoulli(p) successes over a long bit vector is Geometric(p),
// so a sparse flip set costs O(flips) draws instead of O(bits).
// Panics if p <= 0 or p > 1.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("randsrc: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(log(U) / log1p(-p)), guarding U=0. Log1p matters:
	// math.Log(1-p) suffers catastrophic cancellation for small p — exactly
	// the sparse regime skip-sampling exists for — collapsing to 0 below
	// p ~ 2^-53 (division by zero) and losing most significant digits well
	// before that.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return geometricFromLog(math.Log(u), 1/math.Log1p(-p))
}

// GeometricInv precomputes the reciprocal inversion constant 1/log1p(-p)
// for GeometricWord. Callers that draw many gaps at a fixed p (the
// skip-sampling hot loop) compute it once per protocol.
func GeometricInv(p float64) float64 { return 1 / math.Log1p(-p) }

// GeometricWord maps one uniform 64-bit word onto a Geometric(p) sample
// (failures before the first success) by inversion, with invLog1p from
// GeometricInv(p). Unlike Rand.Geometric it is stateless and
// counter-addressable: feeding StreamWord(base, j) for j = 0, 1, 2, ...
// yields a deterministic gap sequence that any two implementations of the
// same walk reproduce word for word — the property the sparse and dense
// report-generation paths rely on for bit-identical output.
func GeometricWord(w uint64, invLog1p float64) int {
	u := float64(w>>11) * 0x1p-53
	if u == 0 {
		return maxGeometric
	}
	return geometricFromLog(math.Log(u), invLog1p)
}

// maxGeometric caps geometric samples so that downstream position
// arithmetic (pos += 1 + gap) cannot overflow, on 32-bit ints included.
// Any cap beyond the longest bit vector is distributionally irrelevant: a
// gap this size means "no flip in this report".
const maxGeometric = 1 << 30

func geometricFromLog(logU, invLog1p float64) int {
	g := logU * invLog1p // both factors <= 0, so g >= 0
	if !(g < maxGeometric) {
		return maxGeometric
	}
	return int(g)
}
