// Package server implements the wire-level collection service on top of
// the longitudinal protocols: users enroll once with their registration
// metadata (hash seed for LOLOHA, sampled buckets for dBitFlipPM, nothing
// for UE/GRR chains), then stream fixed-size round payloads as raw bytes.
// The service decodes, tallies and publishes per-round results.
//
// Stream is the production-facing face of the library: everything the
// simulation harness does with in-memory Report values, a Stream does from
// bytes — and tests prove the paths produce identical estimates. The
// Collection type and its constructors are the deprecated pre-Stream
// surface, kept as thin shims.
//
// Payload ingestion is open and tallier-first: a protocol implementing
// longitudinal.TallyProtocol supplies a WireTallier that tallies payload
// bits straight into the shard aggregators with zero steady-state
// allocations (every protocol in this repository does); any protocol
// implementing longitudinal.WireProtocol supplies its own decoder as the
// compatibility path, and protocols that cannot be modified are hooked in
// through RegisterDecoder. Nothing in this package enumerates protocol
// types.
package server

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// Registration carries a user's one-time enrollment metadata.
type Registration = longitudinal.Registration

// Decoder turns a round payload into a protocol report for an enrolled
// user.
type Decoder = longitudinal.Decoder

// ---------------------------------------------------------------------------
// Decoder resolution: WireProtocol first, then the family registry.

// RegisterDecoder associates a decoder factory with a protocol name
// (Protocol.Name), for protocols that cannot implement
// longitudinal.WireProtocol themselves. A WireProtocol implementation
// always wins over a registry entry. Registering the same name twice
// replaces the earlier factory; a nil factory removes it.
//
// This is a compatibility shim over the unified protocol family registry
// (longitudinal.RegisterFamily): it creates or updates the family's
// NewDecoder only. Registering the full FamilyInfo additionally makes the
// protocol constructible from a declarative longitudinal.ProtocolSpec.
func RegisterDecoder(name string, mk func(longitudinal.Protocol) (Decoder, error)) {
	//loloha:boxed compatibility shim: decoder-only registrations are boxed by definition
	longitudinal.RegisterWireDecoder(name, mk)
}

// ForProtocol resolves the payload decoder for a protocol: the protocol's
// own WireDecoder when it implements longitudinal.WireProtocol (every
// protocol in this repository does), otherwise the NewDecoder of the family
// registered under its name (longitudinal.RegisterFamily or the
// RegisterDecoder shim).
func ForProtocol(p longitudinal.Protocol) (Decoder, error) {
	if p == nil {
		return nil, fmt.Errorf("server: nil protocol")
	}
	if wp, ok := p.(longitudinal.WireProtocol); ok {
		return wp.WireDecoder(), nil
	}
	if info, ok := longitudinal.LookupFamily(p.Name()); ok && info.NewDecoder != nil {
		return info.NewDecoder(p)
	}
	return nil, fmt.Errorf("server: no decoder for %T: implement longitudinal.WireProtocol, or register family %q (RegisterFamily / RegisterDecoder)",
		p, p.Name())
}

// ---------------------------------------------------------------------------
// Deprecated pre-Stream surface.

// Collection is the deprecated pre-Stream collection service: the same
// engine with []float64 results instead of RoundResult.
//
// Deprecated: use Stream.
type Collection struct {
	s *Stream
}

// New returns a collection service for the protocol, decoding payloads
// with the given decoder and striping ingestion over one shard per
// available CPU.
//
// Deprecated: use NewStream.
func New(proto longitudinal.Protocol, decoder Decoder) *Collection {
	return NewSharded(proto, decoder, longitudinal.DefaultShards())
}

// NewSharded is New with an explicit stripe count. shards <= 1 — including
// any negative value — or an aggregator without merge support yields a
// fully serialized service. (NewStream, unlike this shim, rejects negative
// counts.)
//
// Deprecated: use NewStream with WithShards and WithDecoder.
func NewSharded(proto longitudinal.Protocol, decoder Decoder, shards int) *Collection {
	if shards < 1 {
		shards = 1
	}
	s, err := NewStream(proto, WithShards(shards), WithDecoder(decoder))
	if err != nil {
		// Unreachable for the legacy surface: the decoder is explicit and
		// the shard count normalized, so only a nil protocol errors — the
		// legacy constructors never guarded that either.
		panic(err)
	}
	return &Collection{s: s}
}

// Stream returns the underlying Stream service.
func (c *Collection) Stream() *Stream { return c.s }

// Shards returns the number of ingestion stripes.
func (c *Collection) Shards() int { return c.s.Shards() }

// Enroll registers a user's one-time metadata.
func (c *Collection) Enroll(userID int, reg Registration) error {
	return c.s.Enroll(userID, reg)
}

// Ingest decodes and tallies one user's payload for the current round.
func (c *Collection) Ingest(userID int, payload []byte) error {
	return c.s.Ingest(userID, payload)
}

// CloseRound finalizes the current round, publishes its estimates and
// opens the next round. The returned slice is the caller's to keep.
func (c *Collection) CloseRound() []float64 {
	return c.s.CloseRound().Raw
}

// Round returns a copy of the published estimates of round t (0-based).
func (c *Collection) Round(t int) ([]float64, error) {
	res, err := c.s.Round(t)
	if err != nil {
		return nil, err
	}
	return res.Raw, nil
}

// Rounds returns the number of published rounds.
func (c *Collection) Rounds() int { return c.s.Rounds() }

// Enrolled returns the number of enrolled users.
func (c *Collection) Enrolled() int { return c.s.Enrolled() }
