// Package server implements a wire-level collection service on top of the
// longitudinal protocols: users enroll once with their registration
// metadata (hash seed for LOLOHA, sampled buckets for dBitFlipPM, nothing
// for UE/GRR chains), then stream fixed-size round payloads as raw bytes.
// The service decodes, tallies and publishes per-round estimates.
//
// This is the production-facing face of the library: everything the
// simulation harness does with in-memory Report values, the Collection
// type does from bytes — and tests prove the two paths produce identical
// estimates.
package server

import (
	"fmt"
	"slices"
	"sync"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// Registration carries a user's one-time enrollment metadata.
type Registration struct {
	// HashSeed identifies a LOLOHA user's hash function (Algorithm 1,
	// "Send H").
	HashSeed uint64
	// Sampled lists a dBitFlipPM user's fixed sampled buckets.
	Sampled []int
}

// Decoder turns a round payload into a protocol report for an enrolled
// user. Implementations exist for every protocol in this repository.
type Decoder interface {
	Decode(payload []byte, reg Registration) (longitudinal.Report, error)
}

// Collection is a thread-safe multi-round collection service for one
// protocol. Rounds are explicit: reports land in the current round until
// CloseRound is called, which publishes the round's estimates.
//
// Internally the service is striped: users hash onto shards, each with its
// own lock, enrollment/report maps and aggregator fork, so concurrent
// Ingest calls from different shards never contend. CloseRound acts as a
// round barrier — it excludes all ingestion, merges the shard tallies and
// publishes the estimates. With a non-mergeable aggregator the service
// degrades to a single shard (the pre-striping behaviour).
type Collection struct {
	proto   longitudinal.Protocol
	decoder Decoder

	// mu is the round barrier: CloseRound holds it exclusively; Enroll,
	// Ingest and the published-history readers hold it shared (rounds is
	// only mutated under the exclusive lock).
	mu     sync.RWMutex
	merge  longitudinal.MergeableAggregator // nil when single-shard
	shards []*collectionShard
	rounds [][]float64
}

// collectionShard owns the ingestion state of one stripe of users.
type collectionShard struct {
	mu       sync.Mutex
	agg      longitudinal.Aggregator
	enrolled map[int]Registration
	reported map[int]bool
}

// New returns a collection service for the protocol, decoding payloads
// with the given decoder and striping ingestion over one shard per
// available CPU.
func New(proto longitudinal.Protocol, decoder Decoder) *Collection {
	return NewSharded(proto, decoder, longitudinal.DefaultShards())
}

// NewSharded is New with an explicit stripe count. shards <= 1 (or an
// aggregator without merge support) yields a fully serialized service.
func NewSharded(proto longitudinal.Protocol, decoder Decoder, shards int) *Collection {
	agg := proto.NewAggregator()
	c := &Collection{proto: proto, decoder: decoder}
	ma, mergeable := agg.(longitudinal.MergeableAggregator)
	if shards < 1 || !mergeable {
		shards = 1
	}
	if shards > 1 {
		c.merge = ma
	}
	c.shards = make([]*collectionShard, shards)
	for i := range c.shards {
		sh := &collectionShard{
			enrolled: make(map[int]Registration),
			reported: make(map[int]bool),
		}
		if c.merge != nil {
			sh.agg = ma.Fork()
		} else {
			sh.agg = agg
		}
		c.shards[i] = sh
	}
	return c
}

// Shards returns the number of ingestion stripes.
func (c *Collection) Shards() int { return len(c.shards) }

// shardOf maps a user onto its stripe. The user ID is mixed first so that
// contiguous ID ranges spread evenly regardless of stripe count.
func (c *Collection) shardOf(userID int) *collectionShard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	return c.shards[randsrc.Mix64(uint64(userID))%uint64(len(c.shards))]
}

// Enroll registers a user's one-time metadata. Re-enrollment with
// different metadata is rejected: a changed hash function or changed
// sampled buckets would corrupt the user's support counts.
func (c *Collection) Enroll(userID int, reg Registration) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sh := c.shardOf(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.enrolled[userID]; ok {
		// Sampled buckets compare element-wise: two users with equally
		// many but different buckets are NOT interchangeable (their
		// support counts land in different histogram bins).
		if prev.HashSeed != reg.HashSeed || !slices.Equal(prev.Sampled, reg.Sampled) {
			return fmt.Errorf("server: user %d already enrolled with different metadata", userID)
		}
		return nil
	}
	sh.enrolled[userID] = reg
	return nil
}

// Ingest decodes and tallies one user's payload for the current round.
// Duplicate reports within a round are rejected (they would bias Eq. (3)).
func (c *Collection) Ingest(userID int, payload []byte) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sh := c.shardOf(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	reg, ok := sh.enrolled[userID]
	if !ok {
		return fmt.Errorf("server: user %d not enrolled", userID)
	}
	if sh.reported[userID] {
		return fmt.Errorf("server: user %d already reported this round", userID)
	}
	rep, err := c.decoder.Decode(payload, reg)
	if err != nil {
		return fmt.Errorf("server: user %d payload: %w", userID, err)
	}
	sh.agg.Add(userID, rep)
	sh.reported[userID] = true
	return nil
}

// CloseRound finalizes the current round, publishes its estimates and
// opens the next round. The returned slice is the caller's to keep: the
// published history holds its own copy, so later mutation by the caller
// cannot corrupt Round's results.
func (c *Collection) CloseRound() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var est []float64
	if c.merge != nil {
		for _, sh := range c.shards {
			c.merge.Merge(sh.agg)
		}
		est = c.merge.EndRound()
	} else {
		est = c.shards[0].agg.EndRound()
	}
	for _, sh := range c.shards {
		for u := range sh.reported {
			delete(sh.reported, u)
		}
	}
	c.rounds = append(c.rounds, append([]float64(nil), est...))
	return est
}

// Round returns a copy of the published estimates of round t (0-based);
// mutating it cannot corrupt the published history.
func (c *Collection) Round(t int) ([]float64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if t < 0 || t >= len(c.rounds) {
		return nil, fmt.Errorf("server: round %d not published (have %d)", t, len(c.rounds))
	}
	return append([]float64(nil), c.rounds[t]...), nil
}

// Rounds returns the number of published rounds.
func (c *Collection) Rounds() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.rounds)
}

// Enrolled returns the number of enrolled users.
func (c *Collection) Enrolled() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		total += len(sh.enrolled)
		sh.mu.Unlock()
	}
	return total
}

// ---------------------------------------------------------------------------
// Decoders for every protocol family.

// LolohaDecoder decodes LOLOHA round payloads for a protocol with reduced
// domain g.
type LolohaDecoder struct{ G int }

// Decode implements Decoder.
func (d LolohaDecoder) Decode(payload []byte, reg Registration) (longitudinal.Report, error) {
	rep, rest, err := core.DecodeReport(payload, d.G, reg.HashSeed)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in LOLOHA payload", len(rest))
	}
	return rep, nil
}

// UEDecoder decodes unary-encoding round payloads of k bits.
type UEDecoder struct{ K int }

// Decode implements Decoder.
func (d UEDecoder) Decode(payload []byte, _ Registration) (longitudinal.Report, error) {
	rep, rest, err := longitudinal.DecodeUEReport(payload, d.K)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in UE payload", len(rest))
	}
	return rep, nil
}

// GRRDecoder decodes scalar GRR round payloads over [0..k).
type GRRDecoder struct{ K int }

// Decode implements Decoder.
func (d GRRDecoder) Decode(payload []byte, _ Registration) (longitudinal.Report, error) {
	rep, rest, err := longitudinal.DecodeGRRValueReport(payload, d.K)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in GRR payload", len(rest))
	}
	return rep, nil
}

// DBitDecoder decodes dBitFlipPM round payloads using the user's enrolled
// sampled buckets.
type DBitDecoder struct{}

// Decode implements Decoder.
func (DBitDecoder) Decode(payload []byte, reg Registration) (longitudinal.Report, error) {
	if len(reg.Sampled) == 0 {
		return nil, fmt.Errorf("server: user enrolled without sampled buckets")
	}
	rep, rest, err := longitudinal.DecodeDBitReport(payload, reg.Sampled)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in dBit payload", len(rest))
	}
	return rep, nil
}

// ForProtocol returns the right decoder for any protocol constructed by
// this repository.
func ForProtocol(p longitudinal.Protocol) (Decoder, error) {
	switch proto := p.(type) {
	case *core.Protocol:
		return LolohaDecoder{G: proto.G()}, nil
	case *longitudinal.ChainUE:
		return UEDecoder{K: proto.K()}, nil
	case *longitudinal.LGRR:
		return GRRDecoder{K: proto.K()}, nil
	case *longitudinal.DBitFlipPM:
		return DBitDecoder{}, nil
	default:
		return nil, fmt.Errorf("server: no decoder for %T", p)
	}
}
