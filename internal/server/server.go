// Package server implements a wire-level collection service on top of the
// longitudinal protocols: users enroll once with their registration
// metadata (hash seed for LOLOHA, sampled buckets for dBitFlipPM, nothing
// for UE/GRR chains), then stream fixed-size round payloads as raw bytes.
// The service decodes, tallies and publishes per-round estimates.
//
// This is the production-facing face of the library: everything the
// simulation harness does with in-memory Report values, the Collection
// type does from bytes — and tests prove the two paths produce identical
// estimates.
package server

import (
	"fmt"
	"sync"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// Registration carries a user's one-time enrollment metadata.
type Registration struct {
	// HashSeed identifies a LOLOHA user's hash function (Algorithm 1,
	// "Send H").
	HashSeed uint64
	// Sampled lists a dBitFlipPM user's fixed sampled buckets.
	Sampled []int
}

// Decoder turns a round payload into a protocol report for an enrolled
// user. Implementations exist for every protocol in this repository.
type Decoder interface {
	Decode(payload []byte, reg Registration) (longitudinal.Report, error)
}

// Collection is a thread-safe multi-round collection service for one
// protocol. Rounds are explicit: reports land in the current round until
// CloseRound is called, which publishes the round's estimates.
type Collection struct {
	proto   longitudinal.Protocol
	decoder Decoder

	mu       sync.Mutex
	agg      longitudinal.Aggregator
	enrolled map[int]Registration
	reported map[int]bool
	rounds   [][]float64
}

// New returns a collection service for the protocol, decoding payloads
// with the given decoder.
func New(proto longitudinal.Protocol, decoder Decoder) *Collection {
	return &Collection{
		proto:    proto,
		decoder:  decoder,
		agg:      proto.NewAggregator(),
		enrolled: make(map[int]Registration),
		reported: make(map[int]bool),
	}
}

// Enroll registers a user's one-time metadata. Re-enrollment with
// different metadata is rejected: a changed hash function would corrupt
// the user's support counts.
func (c *Collection) Enroll(userID int, reg Registration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.enrolled[userID]; ok {
		if prev.HashSeed != reg.HashSeed || len(prev.Sampled) != len(reg.Sampled) {
			return fmt.Errorf("server: user %d already enrolled with different metadata", userID)
		}
		return nil
	}
	c.enrolled[userID] = reg
	return nil
}

// Ingest decodes and tallies one user's payload for the current round.
// Duplicate reports within a round are rejected (they would bias Eq. (3)).
func (c *Collection) Ingest(userID int, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	reg, ok := c.enrolled[userID]
	if !ok {
		return fmt.Errorf("server: user %d not enrolled", userID)
	}
	if c.reported[userID] {
		return fmt.Errorf("server: user %d already reported this round", userID)
	}
	rep, err := c.decoder.Decode(payload, reg)
	if err != nil {
		return fmt.Errorf("server: user %d payload: %w", userID, err)
	}
	c.agg.Add(userID, rep)
	c.reported[userID] = true
	return nil
}

// CloseRound finalizes the current round, publishes its estimates and
// opens the next round.
func (c *Collection) CloseRound() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	est := c.agg.EndRound()
	c.rounds = append(c.rounds, est)
	for u := range c.reported {
		delete(c.reported, u)
	}
	return est
}

// Round returns the published estimates of round t (0-based).
func (c *Collection) Round(t int) ([]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t < 0 || t >= len(c.rounds) {
		return nil, fmt.Errorf("server: round %d not published (have %d)", t, len(c.rounds))
	}
	return c.rounds[t], nil
}

// Rounds returns the number of published rounds.
func (c *Collection) Rounds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.rounds)
}

// Enrolled returns the number of enrolled users.
func (c *Collection) Enrolled() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.enrolled)
}

// ---------------------------------------------------------------------------
// Decoders for every protocol family.

// LolohaDecoder decodes LOLOHA round payloads for a protocol with reduced
// domain g.
type LolohaDecoder struct{ G int }

// Decode implements Decoder.
func (d LolohaDecoder) Decode(payload []byte, reg Registration) (longitudinal.Report, error) {
	rep, rest, err := core.DecodeReport(payload, d.G, reg.HashSeed)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in LOLOHA payload", len(rest))
	}
	return rep, nil
}

// UEDecoder decodes unary-encoding round payloads of k bits.
type UEDecoder struct{ K int }

// Decode implements Decoder.
func (d UEDecoder) Decode(payload []byte, _ Registration) (longitudinal.Report, error) {
	rep, rest, err := longitudinal.DecodeUEReport(payload, d.K)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in UE payload", len(rest))
	}
	return rep, nil
}

// GRRDecoder decodes scalar GRR round payloads over [0..k).
type GRRDecoder struct{ K int }

// Decode implements Decoder.
func (d GRRDecoder) Decode(payload []byte, _ Registration) (longitudinal.Report, error) {
	rep, rest, err := longitudinal.DecodeGRRValueReport(payload, d.K)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in GRR payload", len(rest))
	}
	return rep, nil
}

// DBitDecoder decodes dBitFlipPM round payloads using the user's enrolled
// sampled buckets.
type DBitDecoder struct{}

// Decode implements Decoder.
func (DBitDecoder) Decode(payload []byte, reg Registration) (longitudinal.Report, error) {
	if len(reg.Sampled) == 0 {
		return nil, fmt.Errorf("server: user enrolled without sampled buckets")
	}
	rep, rest, err := longitudinal.DecodeDBitReport(payload, reg.Sampled)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes in dBit payload", len(rest))
	}
	return rep, nil
}

// ForProtocol returns the right decoder for any protocol constructed by
// this repository.
func ForProtocol(p longitudinal.Protocol) (Decoder, error) {
	switch proto := p.(type) {
	case *core.Protocol:
		return LolohaDecoder{G: proto.G()}, nil
	case *longitudinal.ChainUE:
		return UEDecoder{K: proto.K()}, nil
	case *longitudinal.LGRR:
		return GRRDecoder{K: proto.K()}, nil
	case *longitudinal.DBitFlipPM:
		return DBitDecoder{}, nil
	default:
		return nil, fmt.Errorf("server: no decoder for %T", p)
	}
}
