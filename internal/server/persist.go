package server

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
)

// Durability and the collector tree. A stream's open-round state is
// per-shard (counts, n) integer tallies plus the registration tables, all
// of which the persist codec serializes exactly — so a snapshot taken
// mid-round and restored later ends the round bit-identically to an
// uninterrupted run, and a root stream that MergeRemotes the exported
// tallies of K leaves estimates bit-identically to a single stream that
// ingested every report itself.

// ErrSnapshotMismatch reports a snapshot produced under a different
// protocol configuration than the stream's: its spec hash disagrees. The
// whole snapshot is rejected — restoring or merging tallies across
// protocol parameters would corrupt every estimate, exactly the
// whole-batch fault ErrColumnarMismatch guards on the ingestion path.
var ErrSnapshotMismatch = errors.New("snapshot does not match the stream's protocol")

// snapshotTallier resolves the aggregator's export/import contract; every
// aggregator in this repository implements it (wirecontract pins the
// assertions), but a stream can front an external protocol that doesn't.
func snapshotTallier(agg longitudinal.Aggregator) (longitudinal.SnapshotTallier, error) {
	st, ok := agg.(longitudinal.SnapshotTallier)
	if !ok {
		return nil, fmt.Errorf("server: aggregator %T does not implement longitudinal.SnapshotTallier", agg)
	}
	return st, nil
}

// Snapshot writes the stream's full open-round state — every shard's
// tallies, registration table and reported bits, plus the open round's
// index — as one LSS1 image. It excludes all ingestion for the copy (the
// same barrier CloseRound takes) but encodes and writes after releasing
// the locks, so a slow disk never stalls ingestion longer than the copy.
func (s *Stream) Snapshot(w io.Writer) error {
	snap, err := s.exportState()
	if err != nil {
		return err
	}
	return persist.Write(w, snap)
}

// exportState deep-copies the stream's open-round state under the round
// barrier.
func (s *Stream) exportState() (*persist.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &persist.Snapshot{
		SpecHash: s.specHash,
		Round:    s.baseRound + len(s.results),
		HasUsers: true,
		Shards:   make([]persist.Shard, len(s.shards)),
	}
	for i, sh := range s.shards {
		st, err := snapshotTallier(sh.agg)
		if err != nil {
			return nil, err
		}
		dst := &snap.Shards[i]
		dst.Counts, dst.N = st.ExportTally(nil)
		dst.Tallied = sh.tallied
		dst.Users = make([]persist.User, 0, len(sh.slots))
		for userID, slot := range sh.slots {
			dst.Users = append(dst.Users, persist.User{
				ID:       userID,
				Reg:      sh.regs[slot],
				Reported: sh.reported.Get(slot),
			})
		}
		// The codec demands ascending IDs (canonical form); sorting also
		// makes the image independent of map iteration order.
		sort.Slice(dst.Users, func(a, b int) bool { return dst.Users[a].ID < dst.Users[b].ID })
	}
	if len(s.ledger) > 0 {
		// The dedup ledger rides the same image as the tallies it
		// describes, so a restored root can never hold counts it does not
		// remember applying (or remember applies it does not hold).
		snap.HasLedger = true
		snap.Ledger = make([]persist.LedgerEntry, 0, len(s.ledger))
		for _, e := range s.ledger {
			snap.Ledger = append(snap.Ledger, e)
		}
		sort.Slice(snap.Ledger, func(a, b int) bool { return snap.Ledger[a].Leaf < snap.Ledger[b].Leaf })
	}
	return snap, nil
}

// RestoreStream rebuilds a stream from a snapshot written by Snapshot.
// proto must be configured identically to the producing stream's protocol
// (the spec hashes must agree; ErrSnapshotMismatch otherwise), but opts
// need not match the original options: users re-partition onto the new
// shard count deterministically (shard assignment is a pure hash of the
// user ID), and all tallies land in shard 0, which is exact because
// CloseRound merges every shard before estimating. Rounds published
// before the snapshot are not retained: Rounds continues from the
// snapshot's round index and Round(t) errors for earlier t.
func RestoreStream(r io.Reader, proto longitudinal.Protocol, opts ...Option) (*Stream, error) {
	snap, err := persist.Read(r)
	if err != nil {
		return nil, err
	}
	s, err := NewStream(proto, opts...)
	if err != nil {
		return nil, err
	}
	if snap.SpecHash != s.specHash {
		return nil, fmt.Errorf("server: snapshot spec hash %#016x, stream has %#016x: %w",
			snap.SpecHash, s.specHash, ErrSnapshotMismatch)
	}
	if !snap.HasUsers {
		return nil, fmt.Errorf("server: tally-only snapshot cannot restore a stream (no registration tables)")
	}
	st0, err := snapshotTallier(s.shards[0].agg)
	if err != nil {
		return nil, err
	}
	for si := range snap.Shards {
		src := &snap.Shards[si]
		for ui := range src.Users {
			u := &src.Users[ui]
			sh := s.shardOf(u.ID)
			if err := sh.enroll(u.ID, u.Reg); err != nil {
				return nil, fmt.Errorf("server: restoring user %d: %w", u.ID, err)
			}
			if u.Reported {
				sh.reported.Set(sh.slots[u.ID], true)
			}
		}
		if err := st0.ImportTally(src.Counts, src.N); err != nil {
			return nil, fmt.Errorf("server: restoring shard %d tallies: %w", si, err)
		}
		s.shards[0].tallied += src.Tallied
	}
	if len(snap.Ledger) > 0 {
		s.ledger = make(map[string]persist.LedgerEntry, len(snap.Ledger))
		for _, e := range snap.Ledger {
			s.ledger[e.Leaf] = e
		}
	}
	s.baseRound = snap.Round
	return s, nil
}

// MergeRemote adds a snapshot's tallies into the stream's open round —
// the root half of the collector tree. Only tallies move: registration
// sections, if present, stay with the producing leaf (the root never owns
// a leaf's users). Returns the number of reports merged. A snapshot whose
// spec hash disagrees with the stream's protocol is rejected whole with
// ErrSnapshotMismatch, mirroring the columnar batch contract.
func (s *Stream) MergeRemote(snap *persist.Snapshot) (int, error) {
	if snap.SpecHash != s.specHash {
		return 0, fmt.Errorf("server: snapshot spec hash %#016x, stream has %#016x: %w",
			snap.SpecHash, s.specHash, ErrSnapshotMismatch)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.importTallies(snap)
}

// importTallies adds snap's tallies into shard 0. Callers hold s.mu (any
// mode) so the round cannot close mid-merge; the shard lock serializes
// against concurrent ingestion.
func (s *Stream) importTallies(snap *persist.Snapshot) (int, error) {
	sh := s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, err := snapshotTallier(sh.agg)
	if err != nil {
		return 0, err
	}
	merged := 0
	for si := range snap.Shards {
		src := &snap.Shards[si]
		if err := st.ImportTally(src.Counts, src.N); err != nil {
			// The length check precedes any mutation, and every shard
			// section of one protocol has the same tally length, so a
			// failure here means nothing was imported.
			return 0, fmt.Errorf("server: merging shard %d: %w", si, err)
		}
		sh.tallied += src.Tallied
		merged += src.Tallied
	}
	return merged, nil
}

// MergeEnvelope applies one collector-tree merge envelope exactly once —
// the root half of exactly-once delivery. The per-leaf ledger records the
// highest envelope sequence number already applied; an envelope at or
// below that watermark is a retry of something the tallies already
// contain, so it is acknowledged as a duplicate without touching a count
// (and without even decoding would-be tallies — the netserver layer
// checks ShouldApply first). The ledger rides the stream's snapshot, so a
// restored root keeps refusing the duplicates its counts already absorbed.
//
// Returns the reports merged and whether the envelope was a duplicate.
func (s *Stream) MergeEnvelope(env *persist.Envelope) (int, bool, error) {
	if len(env.Leaf) == 0 || len(env.Leaf) > persist.MaxLeafName {
		return 0, false, fmt.Errorf("server: envelope leaf name length %d, want 1..%d",
			len(env.Leaf), persist.MaxLeafName)
	}
	if env.Snap.SpecHash != s.specHash {
		return 0, false, fmt.Errorf("server: snapshot spec hash %#016x, stream has %#016x: %w",
			env.Snap.SpecHash, s.specHash, ErrSnapshotMismatch)
	}
	// Exclusive: the ledger update and the tally import must be atomic
	// with respect to Snapshot's exportState, or an image could record the
	// envelope as applied while missing its counts (or vice versa).
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, seen := s.ledger[env.Leaf]
	if seen && env.Seq <= entry.Seq {
		entry.Dups++
		s.ledger[env.Leaf] = entry
		return 0, true, nil
	}
	merged, err := s.importTallies(env.Snap)
	if err != nil {
		return 0, false, err
	}
	entry.Leaf = env.Leaf
	entry.Seq = env.Seq
	entry.Round = env.Round
	entry.Reports += uint64(merged)
	if s.ledger == nil {
		s.ledger = make(map[string]persist.LedgerEntry)
	}
	s.ledger[env.Leaf] = entry
	return merged, false, nil
}

// ShouldApply reports whether an envelope with the given identity would
// merge (true) or be deduplicated (false). It lets the network layer skip
// decoding a duplicate's payload; the ledger re-check inside
// MergeEnvelope remains authoritative.
func (s *Stream) ShouldApply(leaf []byte, seq uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	entry, seen := s.ledger[string(leaf)]
	return !seen || seq > entry.Seq
}

// RecordDuplicate bumps the duplicate counter for a leaf whose envelope
// was deduplicated on the ShouldApply fast path (without a MergeEnvelope
// call). Unknown leaves are ignored: a duplicate implies a prior apply.
func (s *Stream) RecordDuplicate(leaf []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if entry, seen := s.ledger[string(leaf)]; seen {
		entry.Dups++
		s.ledger[string(leaf)] = entry
	}
}

// Ledger returns a copy of the stream's per-leaf applied-envelope
// watermarks in ascending leaf-name order; nil when the stream never
// merged an envelope.
func (s *Stream) Ledger() []persist.LedgerEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.ledger) == 0 {
		return nil
	}
	out := make([]persist.LedgerEntry, 0, len(s.ledger))
	for _, e := range s.ledger {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Leaf < out[b].Leaf })
	return out
}

// CloseRoundExport closes the current round exactly like CloseRound and
// additionally returns the round's merged tallies as a one-shard,
// tally-only snapshot — the leaf half of the collector tree: the leaf
// publishes its local RoundResult (its partition's estimates) and ships
// the snapshot to the root, whose MergeRemote recovers the global counts.
func (s *Stream) CloseRoundExport() (RoundResult, *persist.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.shards[0].agg
	if s.merge != nil {
		target = s.merge
	}
	st, err := snapshotTallier(target)
	if err != nil {
		return RoundResult{}, nil, err
	}
	round := s.baseRound + len(s.results)
	// Merge the shard tallies into the round target first — exactly what
	// closeRoundLocked does — so the export sees the full round; EndRound
	// inside closeRoundLocked then finds the counts already merged, which
	// is idempotent (merging moves counts, it does not copy them).
	if s.merge != nil {
		for _, sh := range s.shards {
			s.merge.Merge(sh.agg)
		}
	}
	snap := &persist.Snapshot{SpecHash: s.specHash, Round: round, Shards: make([]persist.Shard, 1)}
	snap.Shards[0].Counts, snap.Shards[0].N = st.ExportTally(nil)
	res := s.closeRoundLocked(0)
	snap.Shards[0].Tallied = res.Reports
	return res, snap, nil
}
