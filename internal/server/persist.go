package server

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
)

// Durability and the collector tree. A stream's open-round state is
// per-shard (counts, n) integer tallies plus the registration tables, all
// of which the persist codec serializes exactly — so a snapshot taken
// mid-round and restored later ends the round bit-identically to an
// uninterrupted run, and a root stream that MergeRemotes the exported
// tallies of K leaves estimates bit-identically to a single stream that
// ingested every report itself.

// ErrSnapshotMismatch reports a snapshot produced under a different
// protocol configuration than the stream's: its spec hash disagrees. The
// whole snapshot is rejected — restoring or merging tallies across
// protocol parameters would corrupt every estimate, exactly the
// whole-batch fault ErrColumnarMismatch guards on the ingestion path.
var ErrSnapshotMismatch = errors.New("snapshot does not match the stream's protocol")

// snapshotTallier resolves the aggregator's export/import contract; every
// aggregator in this repository implements it (wirecontract pins the
// assertions), but a stream can front an external protocol that doesn't.
func snapshotTallier(agg longitudinal.Aggregator) (longitudinal.SnapshotTallier, error) {
	st, ok := agg.(longitudinal.SnapshotTallier)
	if !ok {
		return nil, fmt.Errorf("server: aggregator %T does not implement longitudinal.SnapshotTallier", agg)
	}
	return st, nil
}

// Snapshot writes the stream's full open-round state — every shard's
// tallies, registration table and reported bits, plus the open round's
// index — as one LSS1 image. It excludes all ingestion for the copy (the
// same barrier CloseRound takes) but encodes and writes after releasing
// the locks, so a slow disk never stalls ingestion longer than the copy.
func (s *Stream) Snapshot(w io.Writer) error {
	snap, err := s.exportState()
	if err != nil {
		return err
	}
	return persist.Write(w, snap)
}

// exportState deep-copies the stream's open-round state under the round
// barrier.
func (s *Stream) exportState() (*persist.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &persist.Snapshot{
		SpecHash: s.specHash,
		Round:    s.baseRound + len(s.results),
		HasUsers: true,
		Shards:   make([]persist.Shard, len(s.shards)),
	}
	for i, sh := range s.shards {
		st, err := snapshotTallier(sh.agg)
		if err != nil {
			return nil, err
		}
		dst := &snap.Shards[i]
		dst.Counts, dst.N = st.ExportTally(nil)
		dst.Tallied = sh.tallied
		dst.Users = make([]persist.User, 0, len(sh.slots))
		for userID, slot := range sh.slots {
			dst.Users = append(dst.Users, persist.User{
				ID:       userID,
				Reg:      sh.regs[slot],
				Reported: sh.reported.Get(slot),
			})
		}
		// The codec demands ascending IDs (canonical form); sorting also
		// makes the image independent of map iteration order.
		sort.Slice(dst.Users, func(a, b int) bool { return dst.Users[a].ID < dst.Users[b].ID })
	}
	return snap, nil
}

// RestoreStream rebuilds a stream from a snapshot written by Snapshot.
// proto must be configured identically to the producing stream's protocol
// (the spec hashes must agree; ErrSnapshotMismatch otherwise), but opts
// need not match the original options: users re-partition onto the new
// shard count deterministically (shard assignment is a pure hash of the
// user ID), and all tallies land in shard 0, which is exact because
// CloseRound merges every shard before estimating. Rounds published
// before the snapshot are not retained: Rounds continues from the
// snapshot's round index and Round(t) errors for earlier t.
func RestoreStream(r io.Reader, proto longitudinal.Protocol, opts ...Option) (*Stream, error) {
	snap, err := persist.Read(r)
	if err != nil {
		return nil, err
	}
	s, err := NewStream(proto, opts...)
	if err != nil {
		return nil, err
	}
	if snap.SpecHash != s.specHash {
		return nil, fmt.Errorf("server: snapshot spec hash %#016x, stream has %#016x: %w",
			snap.SpecHash, s.specHash, ErrSnapshotMismatch)
	}
	if !snap.HasUsers {
		return nil, fmt.Errorf("server: tally-only snapshot cannot restore a stream (no registration tables)")
	}
	st0, err := snapshotTallier(s.shards[0].agg)
	if err != nil {
		return nil, err
	}
	for si := range snap.Shards {
		src := &snap.Shards[si]
		for ui := range src.Users {
			u := &src.Users[ui]
			sh := s.shardOf(u.ID)
			if err := sh.enroll(u.ID, u.Reg); err != nil {
				return nil, fmt.Errorf("server: restoring user %d: %w", u.ID, err)
			}
			if u.Reported {
				sh.reported.Set(sh.slots[u.ID], true)
			}
		}
		if err := st0.ImportTally(src.Counts, src.N); err != nil {
			return nil, fmt.Errorf("server: restoring shard %d tallies: %w", si, err)
		}
		s.shards[0].tallied += src.Tallied
	}
	s.baseRound = snap.Round
	return s, nil
}

// MergeRemote adds a snapshot's tallies into the stream's open round —
// the root half of the collector tree. Only tallies move: registration
// sections, if present, stay with the producing leaf (the root never owns
// a leaf's users). Returns the number of reports merged. A snapshot whose
// spec hash disagrees with the stream's protocol is rejected whole with
// ErrSnapshotMismatch, mirroring the columnar batch contract.
func (s *Stream) MergeRemote(snap *persist.Snapshot) (int, error) {
	if snap.SpecHash != s.specHash {
		return 0, fmt.Errorf("server: snapshot spec hash %#016x, stream has %#016x: %w",
			snap.SpecHash, s.specHash, ErrSnapshotMismatch)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	sh := s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, err := snapshotTallier(sh.agg)
	if err != nil {
		return 0, err
	}
	merged := 0
	for si := range snap.Shards {
		src := &snap.Shards[si]
		if err := st.ImportTally(src.Counts, src.N); err != nil {
			// The length check precedes any mutation, and every shard
			// section of one protocol has the same tally length, so a
			// failure here means nothing was imported.
			return 0, fmt.Errorf("server: merging shard %d: %w", si, err)
		}
		sh.tallied += src.Tallied
		merged += src.Tallied
	}
	return merged, nil
}

// CloseRoundExport closes the current round exactly like CloseRound and
// additionally returns the round's merged tallies as a one-shard,
// tally-only snapshot — the leaf half of the collector tree: the leaf
// publishes its local RoundResult (its partition's estimates) and ships
// the snapshot to the root, whose MergeRemote recovers the global counts.
func (s *Stream) CloseRoundExport() (RoundResult, *persist.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.shards[0].agg
	if s.merge != nil {
		target = s.merge
	}
	st, err := snapshotTallier(target)
	if err != nil {
		return RoundResult{}, nil, err
	}
	round := s.baseRound + len(s.results)
	// Merge the shard tallies into the round target first — exactly what
	// closeRoundLocked does — so the export sees the full round; EndRound
	// inside closeRoundLocked then finds the counts already merged, which
	// is idempotent (merging moves counts, it does not copy them).
	if s.merge != nil {
		for _, sh := range s.shards {
			s.merge.Merge(sh.agg)
		}
	}
	snap := &persist.Snapshot{SpecHash: s.specHash, Round: round, Shards: make([]persist.Shard, 1)}
	snap.Shards[0].Counts, snap.Shards[0].N = st.ExportTally(nil)
	res := s.closeRoundLocked(0)
	snap.Shards[0].Tallied = res.Reports
	return res, snap, nil
}
