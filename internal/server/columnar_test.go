package server

import (
	"errors"
	"strings"
	"testing"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

var _ = core.New // import for the LOLOHA-family registry entries

// columnarSpec returns a feasible spec for every registered family, so the
// parity matrix automatically covers families added later (the test fails
// loudly on a family it cannot parameterize).
func columnarSpec(t *testing.T, family string, k int) longitudinal.ProtocolSpec {
	t.Helper()
	switch family {
	case "dBitFlipPM":
		return longitudinal.ProtocolSpec{Family: family, K: k, B: 8, D: 3, EpsInf: 2}
	case "1BitFlipPM", "bBitFlipPM":
		return longitudinal.ProtocolSpec{Family: family, K: k, B: 8, EpsInf: 2}
	case "LOLOHA":
		return longitudinal.ProtocolSpec{Family: family, K: k, G: 2, EpsInf: 2, Eps1: 1}
	case "RAPPOR", "L-OSUE", "L-OUE", "L-SOUE", "L-GRR", "BiLOLOHA", "OLOLOHA":
		return longitudinal.ProtocolSpec{Family: family, K: k, EpsInf: 2, Eps1: 1}
	default:
		t.Fatalf("no columnar parity spec for registered family %q — add one", family)
		return longitudinal.ProtocolSpec{}
	}
}

// TestIngestColumnarParity pins the tentpole contract: for every
// registered family and shard count, a columnar batch (enrolling through
// its registration columns in round 0) tallies bit-identically to Enroll
// + per-report IngestBatch, on both the ColumnarTallier fast path and the
// WithDecoder compatibility path.
func TestIngestColumnarParity(t *testing.T) {
	const k, n, rounds = 24, 160, 3
	for _, family := range longitudinal.Families() {
		spec := columnarSpec(t, family, k)
		for _, shards := range []int{1, 4} {
			t.Run(family+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				proto, err := spec.Build()
				if err != nil {
					t.Fatalf("Build(%+v): %v", spec, err)
				}
				stride, ok := longitudinal.ColumnarStrideOf(proto)
				if !ok {
					t.Fatalf("%s: protocol has no columnar stride", family)
				}
				specHash := longitudinal.SpecHashOf(proto)

				ref, err := NewStream(proto, WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				colS, err := NewStream(proto, WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				dec, err := ForProtocol(proto)
				if err != nil {
					t.Fatal(err)
				}
				compat, err := NewStream(proto, WithShards(shards), WithDecoder(dec))
				if err != nil {
					t.Fatal(err)
				}

				clients := make([]longitudinal.AppendReporter, n)
				regs := make([]longitudinal.Registration, n)
				for u := range clients {
					clients[u] = proto.NewClient(randsrc.Derive(11, uint64(u))).(longitudinal.AppendReporter)
					regs[u] = clients[u].WireRegistration()
					if err := ref.Enroll(u, regs[u]); err != nil {
						t.Fatalf("enroll %d: %v", u, err)
					}
				}
				d := len(regs[0].Sampled)

				ids := make([]int, n)
				payloads := make([][]byte, n)
				var batch longitudinal.ColumnarBatch
				for round := 0; round < rounds; round++ {
					w, err := longitudinal.NewColumnarWriter(specHash, stride)
					if err != nil {
						t.Fatal(err)
					}
					// Round 0 enrolls through the batch's registration
					// columns; later rounds ride the steady-state form.
					if round == 0 {
						if err := w.WithRegistrations(d); err != nil {
							t.Fatal(err)
						}
					}
					for u := range clients {
						ids[u] = u
						payloads[u] = clients[u].AppendReport(payloads[u][:0], (u*7+round)%k)
						if round == 0 {
							err = w.AddWithRegistration(u, payloads[u], regs[u])
						} else {
							err = w.Add(u, payloads[u])
						}
						if err != nil {
							t.Fatalf("round %d add %d: %v", round, u, err)
						}
					}
					if err := ref.IngestBatch(ids, payloads); err != nil {
						t.Fatalf("round %d IngestBatch: %v", round, err)
					}
					enc := w.AppendTo(nil)
					for name, s := range map[string]*Stream{"columnar": colS, "compat": compat} {
						if err := longitudinal.DecodeColumnar(enc, &batch); err != nil {
							t.Fatalf("round %d decode: %v", round, err)
						}
						if err := s.IngestColumnar(&batch); err != nil {
							t.Fatalf("round %d IngestColumnar (%s): %v", round, name, err)
						}
					}

					want := ref.CloseRound()
					for name, s := range map[string]*Stream{"columnar": colS, "compat": compat} {
						got := s.CloseRound()
						if got.Reports != want.Reports {
							t.Fatalf("round %d (%s): %d reports, want %d", round, name, got.Reports, want.Reports)
						}
						for v := range want.Raw {
							if got.Raw[v] != want.Raw[v] || got.Estimates[v] != want.Estimates[v] {
								t.Fatalf("round %d (%s): estimate %d = %v/%v, want %v/%v",
									round, name, v, got.Raw[v], got.Estimates[v], want.Raw[v], want.Estimates[v])
							}
						}
					}
				}
			})
		}
	}
}

// TestIngestColumnarRejections pins the batch- and report-level rejection
// semantics of the columnar path.
func TestIngestColumnarRejections(t *testing.T) {
	proto, err := core.NewBinary(32, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stride, _ := longitudinal.ColumnarStrideOf(proto)
	specHash := longitudinal.SpecHashOf(proto)
	cell := make([]byte, stride)

	newStream := func() *Stream {
		s, err := NewStream(proto, WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	encode := func(w *longitudinal.ColumnarWriter) *longitudinal.ColumnarBatch {
		var b longitudinal.ColumnarBatch
		if err := longitudinal.DecodeColumnar(w.AppendTo(nil), &b); err != nil {
			t.Fatal(err)
		}
		return &b
	}

	t.Run("spec hash mismatch rejects the whole batch", func(t *testing.T) {
		s := newStream()
		w, _ := longitudinal.NewColumnarWriter(specHash+1, stride)
		if err := w.Add(1, cell); err != nil {
			t.Fatal(err)
		}
		err := s.IngestColumnar(encode(w))
		if !errors.Is(err, ErrColumnarMismatch) {
			t.Fatalf("err = %v, want ErrColumnarMismatch", err)
		}
		if s.Pending() != 0 {
			t.Fatalf("%d reports tallied from a mismatched batch", s.Pending())
		}
	})

	t.Run("stride mismatch rejects the whole batch", func(t *testing.T) {
		s := newStream()
		w, _ := longitudinal.NewColumnarWriter(specHash, stride+1)
		if err := w.Add(1, make([]byte, stride+1)); err != nil {
			t.Fatal(err)
		}
		if err := s.IngestColumnar(encode(w)); !errors.Is(err, ErrColumnarMismatch) {
			t.Fatalf("err = %v, want ErrColumnarMismatch", err)
		}
	})

	t.Run("duplicate row rejected, first tallied", func(t *testing.T) {
		s := newStream()
		cl := proto.NewClient(3).(longitudinal.AppendReporter)
		if err := s.Enroll(8, cl.WireRegistration()); err != nil {
			t.Fatal(err)
		}
		w, _ := longitudinal.NewColumnarWriter(specHash, stride)
		p := cl.AppendReport(nil, 0)
		if err := w.Add(8, p); err != nil {
			t.Fatal(err)
		}
		if err := w.Add(8, p); err != nil {
			t.Fatal(err)
		}
		err := s.IngestColumnar(encode(w))
		if err == nil || !strings.Contains(err.Error(), "already reported") {
			t.Fatalf("err = %v, want a duplicate-report rejection", err)
		}
		if s.Pending() != 1 {
			t.Fatalf("Pending() = %d, want 1", s.Pending())
		}
	})

	t.Run("not enrolled without registration columns", func(t *testing.T) {
		s := newStream()
		w, _ := longitudinal.NewColumnarWriter(specHash, stride)
		if err := w.Add(4, cell); err != nil {
			t.Fatal(err)
		}
		err := s.IngestColumnar(encode(w))
		if err == nil || !strings.Contains(err.Error(), "not enrolled") {
			t.Fatalf("err = %v, want a not-enrolled rejection", err)
		}
	})

	t.Run("conflicting registration reported, report still tallies", func(t *testing.T) {
		s := newStream()
		cl := proto.NewClient(3).(longitudinal.AppendReporter)
		reg := cl.WireRegistration()
		if err := s.Enroll(8, reg); err != nil {
			t.Fatal(err)
		}
		w, _ := longitudinal.NewColumnarWriter(specHash, stride)
		if err := w.WithRegistrations(0); err != nil {
			t.Fatal(err)
		}
		conflicting := longitudinal.Registration{HashSeed: reg.HashSeed + 1}
		if err := w.AddWithRegistration(8, cl.AppendReport(nil, 0), conflicting); err != nil {
			t.Fatal(err)
		}
		err := s.IngestColumnar(encode(w))
		if err == nil || !strings.Contains(err.Error(), "already enrolled") {
			t.Fatalf("err = %v, want a conflicting-enrollment rejection", err)
		}
		if s.Pending() != 1 {
			t.Fatalf("Pending() = %d, want 1 (report tallies under the original registration)", s.Pending())
		}
	})
}
