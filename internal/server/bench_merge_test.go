package server

import (
	"fmt"
	"io"
	"testing"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// BenchmarkMergeTree measures the moving parts of durability and the
// collector tree, per BENCH_merge.json:
//
//   - snapshot-encode/decode: one full-state LSS1 image (tallies +
//     registration tables for `users` enrolled users) written to /
//     decoded from memory — the per-snapshot cost a daemon pays on its
//     -snapshot-every timer and at restore.
//   - leaf-export: one CloseRoundExport plus encoding the tally-only
//     merge payload — the leaf's per-round overhead beyond a plain
//     CloseRound.
//   - merge-round: the root's cost of one collection round fed by K
//     leaves: decode K merge payloads, MergeRemote each, close the round.
//
// Families mirror BENCH_network.json: BiLOLOHA (widest tally vector of
// the k-domain families) and dBitFlipPM (bucketed, b counts).
func BenchmarkMergeTree(b *testing.B) {
	for _, fam := range []struct {
		name string
		spec longitudinal.ProtocolSpec
	}{
		{"BiLOLOHA", longitudinal.ProtocolSpec{Family: "BiLOLOHA", K: 64, EpsInf: 2, Eps1: 1}},
		{"dBitFlipPM", longitudinal.ProtocolSpec{Family: "dBitFlipPM", K: 64, B: 16, D: 4, EpsInf: 2}},
	} {
		proto, err := fam.spec.Build()
		if err != nil {
			b.Fatal(err)
		}
		for _, users := range []int{1024, 16384} {
			b.Run(fmt.Sprintf("%s/snapshot-encode/users=%d", fam.name, users), func(b *testing.B) {
				s := newBenchStream(b, proto, users)
				var size int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cw := &countingWriter{}
					if err := s.Snapshot(cw); err != nil {
						b.Fatal(err)
					}
					size = cw.n
				}
				b.SetBytes(size)
			})
			b.Run(fmt.Sprintf("%s/snapshot-decode/users=%d", fam.name, users), func(b *testing.B) {
				s := newBenchStream(b, proto, users)
				snap, err := s.exportState()
				if err != nil {
					b.Fatal(err)
				}
				enc, err := persist.Append(nil, snap)
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(int64(len(enc)))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := persist.Decode(enc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}

		b.Run(fam.name+"/leaf-export", func(b *testing.B) {
			leaf := newBenchStream(b, proto, 256)
			_, seed, err := leaf.CloseRoundExport()
			if err != nil {
				b.Fatal(err)
			}
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Re-arm the round with the seed tallies so every export
				// carries a realistic count vector.
				if _, err := leaf.MergeRemote(seed); err != nil {
					b.Fatal(err)
				}
				_, snap, err := leaf.CloseRoundExport()
				if err != nil {
					b.Fatal(err)
				}
				if buf, err = persist.Append(buf[:0], snap); err != nil {
					b.Fatal(err)
				}
			}
		})

		for _, leaves := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s/merge-round/leaves=%d", fam.name, leaves), func(b *testing.B) {
				frames := make([][]byte, leaves)
				reports := 0
				for i := range frames {
					leaf := newBenchStream(b, proto, 256)
					res, snap, err := leaf.CloseRoundExport()
					if err != nil {
						b.Fatal(err)
					}
					reports += res.Reports
					if frames[i], err = persist.Append(nil, snap); err != nil {
						b.Fatal(err)
					}
				}
				root, err := NewStream(proto)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if i%4096 == 0 && i > 0 {
						// Bound the published-history growth; stream setup is
						// noise next to 4096 merge rounds.
						if root, err = NewStream(proto); err != nil {
							b.Fatal(err)
						}
					}
					got := 0
					for _, frame := range frames {
						snap, err := persist.Decode(frame)
						if err != nil {
							b.Fatal(err)
						}
						n, err := root.MergeRemote(snap)
						if err != nil {
							b.Fatal(err)
						}
						got += n
					}
					if res := root.CloseRound(); res.Reports != got || got != reports {
						b.Fatalf("round merged %d reports, want %d", res.Reports, reports)
					}
				}
				b.ReportMetric(float64(reports), "reports/round")
			})
		}
	}
}

// newBenchStream returns a stream with `users` enrolled users that have
// all reported into the open round.
func newBenchStream(b *testing.B, proto longitudinal.Protocol, users int) *Stream {
	b.Helper()
	s, err := NewStream(proto)
	if err != nil {
		b.Fatal(err)
	}
	var payload []byte
	for u := 0; u < users; u++ {
		cl := proto.NewClient(randsrc.Derive(7, uint64(u))).(longitudinal.AppendReporter)
		if err := s.Enroll(u, cl.WireRegistration()); err != nil {
			b.Fatal(err)
		}
		payload = cl.AppendReport(payload[:0], u%proto.K())
		if err := s.Ingest(u, payload); err != nil {
			b.Fatal(err)
		}
	}
	return s
}

type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }

var _ io.Writer = (*countingWriter)(nil)
