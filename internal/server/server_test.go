package server

import (
	"math"
	"sync"
	"testing"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

func registrationOf(cl longitudinal.Client) Registration {
	switch c := cl.(type) {
	case *core.Client:
		return Registration{HashSeed: c.HashSeed()}
	default:
		return Registration{}
	}
}

func TestCollectionMatchesDirectAggregation(t *testing.T) {
	// Byte path (Enroll/Ingest/CloseRound) vs direct Aggregator: identical
	// estimates for every protocol family.
	const k, n, rounds = 24, 1200, 3
	protos := map[string]longitudinal.Protocol{}
	if p, err := core.NewBinary(k, 2, 1); err == nil {
		protos["LOLOHA"] = p
	}
	if p, err := longitudinal.NewRAPPOR(k, 2, 1); err == nil {
		protos["RAPPOR"] = p
	}
	if p, err := longitudinal.NewLGRR(k, 2, 1); err == nil {
		protos["L-GRR"] = p
	}
	if p, err := longitudinal.NewDBitFlipPM(k, 8, 3, 2); err == nil {
		protos["dBitFlipPM"] = p
	}
	for name, proto := range protos {
		dec, err := ForProtocol(proto)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		col := New(proto, dec)
		direct := proto.NewAggregator()

		clients := make([]longitudinal.Client, n)
		for u := range clients {
			clients[u] = proto.NewClient(randsrc.Derive(9, uint64(u)))
			reg := registrationOf(clients[u])
			// dBit clients expose sampled buckets through their first
			// report; enroll after we see it below.
			if name != "dBitFlipPM" {
				if err := col.Enroll(u, reg); err != nil {
					t.Fatalf("%s: enroll: %v", name, err)
				}
			}
		}
		r := randsrc.NewSeeded(33)
		for round := 0; round < rounds; round++ {
			for u, cl := range clients {
				v := (u + round*r.Intn(k)) % k
				rep := cl.Report(v)
				direct.Add(u, rep)
				if name == "dBitFlipPM" && round == 0 {
					db := rep.(longitudinal.DBitReport)
					if err := col.Enroll(u, Registration{Sampled: db.Sampled}); err != nil {
						t.Fatalf("%s: enroll: %v", name, err)
					}
				}
				if err := col.Ingest(u, rep.AppendBinary(nil)); err != nil {
					t.Fatalf("%s: ingest: %v", name, err)
				}
			}
			wire := col.CloseRound()
			want := direct.EndRound()
			for v := range want {
				if math.Abs(wire[v]-want[v]) > 1e-15 {
					t.Fatalf("%s round %d: wire estimate %v != direct %v",
						name, round, wire[v], want[v])
				}
			}
		}
		if col.Rounds() != rounds || col.Enrolled() != n {
			t.Errorf("%s: rounds=%d enrolled=%d", name, col.Rounds(), col.Enrolled())
		}
	}
}

func TestCollectionRejectsUnknownAndDuplicate(t *testing.T) {
	proto, _ := core.NewBinary(10, 2, 1)
	dec, _ := ForProtocol(proto)
	col := New(proto, dec)
	cl := proto.NewClient(1).(*core.Client)
	payload := cl.ReportValue(3).AppendBinary(nil)

	if err := col.Ingest(0, payload); err == nil {
		t.Error("unenrolled ingest accepted")
	}
	if err := col.Enroll(0, Registration{HashSeed: cl.HashSeed()}); err != nil {
		t.Fatal(err)
	}
	if err := col.Ingest(0, payload); err != nil {
		t.Fatal(err)
	}
	if err := col.Ingest(0, payload); err == nil {
		t.Error("duplicate report in one round accepted")
	}
	col.CloseRound()
	if err := col.Ingest(0, cl.ReportValue(3).AppendBinary(nil)); err != nil {
		t.Errorf("fresh round report rejected: %v", err)
	}
}

func TestCollectionEnrollmentConflicts(t *testing.T) {
	proto, _ := core.NewBinary(10, 2, 1)
	dec, _ := ForProtocol(proto)
	col := New(proto, dec)
	if err := col.Enroll(0, Registration{HashSeed: 5}); err != nil {
		t.Fatal(err)
	}
	if err := col.Enroll(0, Registration{HashSeed: 5}); err != nil {
		t.Errorf("idempotent re-enroll rejected: %v", err)
	}
	if err := col.Enroll(0, Registration{HashSeed: 6}); err == nil {
		t.Error("conflicting re-enroll accepted")
	}
}

func TestCollectionEnrollmentSampledBucketConflicts(t *testing.T) {
	// Regression: re-enrollment used to compare only len(Sampled), so a
	// dBitFlipPM user re-enrolling with different buckets of the same
	// length was silently accepted — corrupting support counts.
	proto, _ := longitudinal.NewDBitFlipPM(20, 10, 3, 2)
	dec, _ := ForProtocol(proto)
	col := New(proto, dec)
	if err := col.Enroll(0, Registration{Sampled: []int{1, 4, 7}}); err != nil {
		t.Fatal(err)
	}
	if err := col.Enroll(0, Registration{Sampled: []int{1, 4, 7}}); err != nil {
		t.Errorf("idempotent re-enroll rejected: %v", err)
	}
	if err := col.Enroll(0, Registration{Sampled: []int{1, 4, 8}}); err == nil {
		t.Error("re-enroll with different sampled buckets of equal length accepted")
	}
	if err := col.Enroll(0, Registration{Sampled: []int{1, 4}}); err == nil {
		t.Error("re-enroll with fewer sampled buckets accepted")
	}
}

func TestCollectionPublishedRoundsImmutable(t *testing.T) {
	// Regression: CloseRound and Round used to alias the internal history
	// slice, so a caller mutating the result corrupted published rounds.
	proto, _ := core.NewBinary(12, 2, 1)
	dec, _ := ForProtocol(proto)
	col := New(proto, dec)
	cl := proto.NewClient(3).(*core.Client)
	if err := col.Enroll(0, Registration{HashSeed: cl.HashSeed()}); err != nil {
		t.Fatal(err)
	}
	if err := col.Ingest(0, cl.ReportValue(5).AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	closed := col.CloseRound()
	want := append([]float64(nil), closed...)
	for i := range closed {
		closed[i] = math.Inf(1) // caller scribbles on the returned slice
	}
	got, err := col.Round(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("round history corrupted by caller mutation: est[%d] = %v, want %v", v, got[v], want[v])
		}
	}
	for i := range got {
		got[i] = -1 // scribbling on Round's result must not stick either
	}
	again, err := col.Round(0)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if again[v] != want[v] {
			t.Fatalf("round history corrupted via Round aliasing: est[%d] = %v, want %v", v, again[v], want[v])
		}
	}
}

func TestCollectionRejectsMalformedPayloads(t *testing.T) {
	proto, _ := longitudinal.NewRAPPOR(64, 2, 1)
	dec, _ := ForProtocol(proto)
	col := New(proto, dec)
	if err := col.Enroll(0, Registration{}); err != nil {
		t.Fatal(err)
	}
	if err := col.Ingest(0, []byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	long := make([]byte, 64/8+3)
	if err := col.Ingest(0, long); err == nil {
		t.Error("payload with trailing bytes accepted")
	}
}

func TestCollectionRoundAccess(t *testing.T) {
	proto, _ := longitudinal.NewLGRR(6, 2, 1)
	dec, _ := ForProtocol(proto)
	col := New(proto, dec)
	if _, err := col.Round(0); err == nil {
		t.Error("unpublished round accessible")
	}
	col.CloseRound()
	if _, err := col.Round(0); err != nil {
		t.Errorf("published round inaccessible: %v", err)
	}
	if _, err := col.Round(1); err == nil {
		t.Error("future round accessible")
	}
}

func TestCollectionConcurrentIngest(t *testing.T) {
	// The service is documented thread-safe: hammer it from goroutines.
	const k, n = 16, 400
	proto, _ := core.NewBinary(k, 2, 1)
	dec, _ := ForProtocol(proto)
	col := New(proto, dec)
	payloads := make([][]byte, n)
	for u := 0; u < n; u++ {
		cl := proto.NewClient(uint64(u)).(*core.Client)
		if err := col.Enroll(u, Registration{HashSeed: cl.HashSeed()}); err != nil {
			t.Fatal(err)
		}
		payloads[u] = cl.ReportValue(u % k).AppendBinary(nil)
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for u := 0; u < n; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if err := col.Ingest(u, payloads[u]); err != nil {
				errs <- err
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	est := col.CloseRound()
	sum := 0.0
	for _, e := range est {
		sum += e
	}
	if math.Abs(sum-1) > 0.5 {
		t.Errorf("estimates sum %v after concurrent ingest", sum)
	}
}

func TestForProtocolUnknownType(t *testing.T) {
	if _, err := ForProtocol(nil); err == nil {
		t.Error("nil protocol accepted")
	}
}
