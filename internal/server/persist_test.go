package server

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// buildParityFleet enrolls n deterministic clients into each of the given
// streams and returns one steady-state payload per user per round —
// generated once, so every stream tallies byte-identical reports.
func buildParityFleet(t *testing.T, proto longitudinal.Protocol, n, rounds, k int, streams ...*Stream) [][][]byte {
	t.Helper()
	payloads := make([][][]byte, rounds)
	for r := range payloads {
		payloads[r] = make([][]byte, n)
	}
	for u := 0; u < n; u++ {
		cl := proto.NewClient(randsrc.Derive(23, uint64(u))).(longitudinal.AppendReporter)
		reg := cl.WireRegistration()
		for _, s := range streams {
			if err := s.Enroll(u, reg); err != nil {
				t.Fatalf("enroll %d: %v", u, err)
			}
		}
		for r := 0; r < rounds; r++ {
			payloads[r][u] = cl.AppendReport(nil, (u*7+r)%k)
		}
	}
	return payloads
}

func sameRound(t *testing.T, label string, got, want RoundResult) {
	t.Helper()
	if got.Round != want.Round || got.Reports != want.Reports {
		t.Fatalf("%s: round %d/%d reports, want %d/%d", label, got.Round, got.Reports, want.Round, want.Reports)
	}
	for v := range want.Raw {
		if got.Raw[v] != want.Raw[v] || got.Estimates[v] != want.Estimates[v] {
			t.Fatalf("%s: estimate %d = %v/%v, want %v/%v",
				label, v, got.Raw[v], got.Estimates[v], want.Raw[v], want.Estimates[v])
		}
	}
}

// TestSnapshotRestoreParity pins the crash-recovery contract for every
// registered family: ingest half a round, snapshot (the kill point),
// restore — onto the same shard count and onto a different one — ingest
// the rest, and the closed round is bit-identical to an uninterrupted
// stream that saw all reports.
func TestSnapshotRestoreParity(t *testing.T) {
	const k, n = 24, 90
	for _, family := range longitudinal.Families() {
		spec := columnarSpec(t, family, k)
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", family, shards), func(t *testing.T) {
				proto, err := spec.Build()
				if err != nil {
					t.Fatal(err)
				}
				ref, err := NewStream(proto, WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				live, err := NewStream(proto, WithShards(shards))
				if err != nil {
					t.Fatal(err)
				}
				payloads := buildParityFleet(t, proto, n, 1, k, ref, live)
				for u := 0; u < n; u++ {
					if err := ref.Ingest(u, payloads[0][u]); err != nil {
						t.Fatal(err)
					}
				}
				for u := 0; u < n/2; u++ {
					if err := live.Ingest(u, payloads[0][u]); err != nil {
						t.Fatal(err)
					}
				}

				var buf bytes.Buffer
				if err := live.Snapshot(&buf); err != nil {
					t.Fatalf("Snapshot: %v", err)
				}
				want := ref.CloseRound()

				// Restore onto the original shard count and onto a different
				// one: shard assignment is a pure hash of the user ID, so
				// users re-partition deterministically either way.
				for _, restoreShards := range []int{shards, shards + 2} {
					restored, err := RestoreStream(bytes.NewReader(buf.Bytes()), proto, WithShards(restoreShards))
					if err != nil {
						t.Fatalf("RestoreStream(shards=%d): %v", restoreShards, err)
					}
					if restored.Enrolled() != n {
						t.Fatalf("restored %d enrolled users, want %d", restored.Enrolled(), n)
					}
					if restored.Pending() != n/2 {
						t.Fatalf("restored %d pending reports, want %d", restored.Pending(), n/2)
					}
					// A report already tallied before the snapshot stays a
					// duplicate after restore.
					if err := restored.Ingest(0, payloads[0][0]); err == nil ||
						!strings.Contains(err.Error(), "already reported") {
						t.Fatalf("duplicate after restore: err = %v", err)
					}
					for u := n / 2; u < n; u++ {
						if err := restored.Ingest(u, payloads[0][u]); err != nil {
							t.Fatal(err)
						}
					}
					sameRound(t, fmt.Sprintf("restore shards=%d", restoreShards), restored.CloseRound(), want)
				}
			})
		}
	}
}

// TestSnapshotRoundIndexContinues pins the history semantics across a
// restore: round indices continue from the snapshot's open round, and the
// pre-snapshot history is explicitly not retained.
func TestSnapshotRoundIndexContinues(t *testing.T) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(proto, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	payloads := buildParityFleet(t, proto, 10, 3, 16, s)
	for r := 0; r < 2; r++ {
		for u := 0; u < 10; u++ {
			if err := s.Ingest(u, payloads[r][u]); err != nil {
				t.Fatal(err)
			}
		}
		if res := s.CloseRound(); res.Round != r {
			t.Fatalf("round %d published as %d", r, res.Round)
		}
	}
	for u := 0; u < 10; u++ {
		if err := s.Ingest(u, payloads[2][u]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStream(&buf, proto, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Rounds() != 2 {
		t.Fatalf("Rounds() = %d, want 2 (the open round's index)", restored.Rounds())
	}
	if _, err := restored.Round(1); err == nil || !strings.Contains(err.Error(), "predates") {
		t.Fatalf("pre-snapshot round: err = %v, want a predates-the-snapshot rejection", err)
	}
	if res := restored.CloseRound(); res.Round != 2 || res.Reports != 10 {
		t.Fatalf("restored close = round %d with %d reports, want round 2 with 10", res.Round, res.Reports)
	}
	if got, err := restored.Round(2); err != nil || got.Reports != 10 {
		t.Fatalf("Round(2) = %+v, %v", got, err)
	}
}

// TestRestoreRejections pins the whole-snapshot rejection semantics.
func TestRestoreRejections(t *testing.T) {
	protoA, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	protoB, err := core.NewBinary(32, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(protoA, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	t.Run("wrong spec", func(t *testing.T) {
		_, err := RestoreStream(bytes.NewReader(buf.Bytes()), protoB, WithShards(2))
		if !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
		}
	})
	t.Run("corrupt image", func(t *testing.T) {
		b := append([]byte(nil), buf.Bytes()...)
		b[10] ^= 1
		if _, err := RestoreStream(bytes.NewReader(b), protoA); err == nil {
			t.Fatal("corrupt snapshot restored")
		}
	})
	t.Run("tally-only image", func(t *testing.T) {
		_, snap, err := s.CloseRoundExport()
		if err != nil {
			t.Fatal(err)
		}
		var tallyOnly bytes.Buffer
		if err := persist.Write(&tallyOnly, snap); err != nil {
			t.Fatal(err)
		}
		if _, err := RestoreStream(&tallyOnly, protoA); err == nil ||
			!strings.Contains(err.Error(), "tally-only") {
			t.Fatalf("err = %v, want a tally-only rejection", err)
		}
	})
}

// TestMergeTreeParity pins the collector-tree contract for every
// registered family and shard count: K leaves each ingest a disjoint user
// partition, export their rounds, and a root that MergeRemotes the K
// snapshots publishes rounds bit-identical to a single stream that
// ingested everything — for multiple consecutive rounds, so the leaves'
// round reset is covered too.
func TestMergeTreeParity(t *testing.T) {
	const k, n, rounds = 24, 120, 2
	for _, family := range longitudinal.Families() {
		spec := columnarSpec(t, family, k)
		for _, shards := range []int{1, 4} {
			for _, leaves := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s/shards=%d/leaves=%d", family, shards, leaves), func(t *testing.T) {
					proto, err := spec.Build()
					if err != nil {
						t.Fatal(err)
					}
					single, err := NewStream(proto, WithShards(shards))
					if err != nil {
						t.Fatal(err)
					}
					root, err := NewStream(proto, WithShards(shards))
					if err != nil {
						t.Fatal(err)
					}
					leaf := make([]*Stream, leaves)
					for i := range leaf {
						if leaf[i], err = NewStream(proto, WithShards(shards)); err != nil {
							t.Fatal(err)
						}
					}

					// Enroll each user at the single stream and at its
					// partition's leaf; payloads are generated once.
					payloads := make([][][]byte, rounds)
					for r := range payloads {
						payloads[r] = make([][]byte, n)
					}
					for u := 0; u < n; u++ {
						cl := proto.NewClient(randsrc.Derive(23, uint64(u))).(longitudinal.AppendReporter)
						reg := cl.WireRegistration()
						if err := single.Enroll(u, reg); err != nil {
							t.Fatal(err)
						}
						if err := leaf[u%leaves].Enroll(u, reg); err != nil {
							t.Fatal(err)
						}
						for r := 0; r < rounds; r++ {
							payloads[r][u] = cl.AppendReport(nil, (u*7+r)%k)
						}
					}

					for r := 0; r < rounds; r++ {
						for u := 0; u < n; u++ {
							if err := single.Ingest(u, payloads[r][u]); err != nil {
								t.Fatal(err)
							}
							if err := leaf[u%leaves].Ingest(u, payloads[r][u]); err != nil {
								t.Fatal(err)
							}
						}
						leafReports := 0
						for i := range leaf {
							res, snap, err := leaf[i].CloseRoundExport()
							if err != nil {
								t.Fatalf("leaf %d export: %v", i, err)
							}
							if res.Round != r {
								t.Fatalf("leaf %d published round %d, want %d", i, res.Round, r)
							}
							leafReports += res.Reports
							merged, err := root.MergeRemote(snap)
							if err != nil {
								t.Fatalf("root merge of leaf %d: %v", i, err)
							}
							if merged != res.Reports {
								t.Fatalf("leaf %d merged %d reports, leaf tallied %d", i, merged, res.Reports)
							}
						}
						want := single.CloseRound()
						if leafReports != want.Reports {
							t.Fatalf("round %d: leaves tallied %d reports, single %d", r, leafReports, want.Reports)
						}
						sameRound(t, fmt.Sprintf("round %d", r), root.CloseRound(), want)
					}
				})
			}
		}
	}
}

// TestMergeRemoteMismatch pins whole-snapshot rejection at the root.
func TestMergeRemoteMismatch(t *testing.T) {
	protoA, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	protoB, err := core.NewBinary(32, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := NewStream(protoB, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	root, err := NewStream(protoA, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := leaf.CloseRoundExport()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.MergeRemote(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
	if root.Pending() != 0 {
		t.Fatalf("%d reports merged from a mismatched snapshot", root.Pending())
	}
}

// TestSnapshotExportIsNondestructive pins that Snapshot observes without
// consuming: the stream closes its round identically afterwards.
func TestSnapshotExportIsNondestructive(t *testing.T) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewStream(proto, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(proto, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	payloads := buildParityFleet(t, proto, 40, 1, 16, a, b)
	for u := 0; u < 40; u++ {
		if err := a.Ingest(u, payloads[0][u]); err != nil {
			t.Fatal(err)
		}
		if err := b.Ingest(u, payloads[0][u]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	sameRound(t, "post-snapshot close", a.CloseRound(), b.CloseRound())
}
