package server

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// treeFixture is a two-leaf collector tree plus the single-stream
// baseline it must match, with per-user payloads generated once.
type treeFixture struct {
	single, root *Stream
	leaf         []*Stream
	payloads     [][][]byte // [round][user]
}

func newTreeFixture(t *testing.T, k, n, rounds, leaves int) *treeFixture {
	t.Helper()
	proto, err := core.NewBinary(k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := &treeFixture{leaf: make([]*Stream, leaves)}
	if f.single, err = NewStream(proto, WithShards(2)); err != nil {
		t.Fatal(err)
	}
	if f.root, err = NewStream(proto, WithShards(2)); err != nil {
		t.Fatal(err)
	}
	for i := range f.leaf {
		if f.leaf[i], err = NewStream(proto, WithShards(2)); err != nil {
			t.Fatal(err)
		}
	}
	f.payloads = make([][][]byte, rounds)
	for r := range f.payloads {
		f.payloads[r] = make([][]byte, n)
	}
	for u := 0; u < n; u++ {
		cl := proto.NewClient(randsrc.Derive(23, uint64(u))).(longitudinal.AppendReporter)
		reg := cl.WireRegistration()
		if err := f.single.Enroll(u, reg); err != nil {
			t.Fatal(err)
		}
		if err := f.leaf[u%leaves].Enroll(u, reg); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rounds; r++ {
			f.payloads[r][u] = cl.AppendReport(nil, (u*7+r)%k)
		}
	}
	return f
}

func (f *treeFixture) ingestRound(t *testing.T, r int) {
	t.Helper()
	for u, p := range f.payloads[r] {
		if err := f.single.Ingest(u, p); err != nil {
			t.Fatal(err)
		}
		if err := f.leaf[u%len(f.leaf)].Ingest(u, p); err != nil {
			t.Fatal(err)
		}
	}
}

// exportEnvelope closes the leaf's round and wraps the export in an
// envelope, round-tripping it through the wire codec so the test covers
// the exact bytes a root would decode.
func exportEnvelope(t *testing.T, leaf *Stream, name string, seq uint64) (*persist.Envelope, int) {
	t.Helper()
	res, snap, err := leaf.CloseRoundExport()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := persist.AppendEnvelope(nil, &persist.Envelope{Leaf: name, Round: res.Round, Seq: seq, Snap: snap})
	if err != nil {
		t.Fatal(err)
	}
	env, err := persist.DecodeEnvelope(enc)
	if err != nil {
		t.Fatal(err)
	}
	return env, res.Reports
}

// TestMergeEnvelopeExactlyOnce pins the tentpole invariant at the stream
// layer: a delivery schedule full of retries — every envelope shipped
// twice, plus stale re-ships of the previous round — merges to estimates
// bit-identical to the single-stream baseline, with every duplicate
// counted in the ledger and none applied.
func TestMergeEnvelopeExactlyOnce(t *testing.T) {
	const k, n, rounds = 16, 80, 3
	f := newTreeFixture(t, k, n, rounds, 2)
	seq := make([]uint64, len(f.leaf))
	prev := make([]*persist.Envelope, len(f.leaf))
	wantDups := make([]uint64, len(f.leaf))
	wantReports := make([]uint64, len(f.leaf))
	for r := 0; r < rounds; r++ {
		f.ingestRound(t, r)
		for i, lf := range f.leaf {
			seq[i]++
			env, reports := exportEnvelope(t, lf, fmt.Sprintf("leaf-%d", i), seq[i])
			merged, dup, err := f.root.MergeEnvelope(env)
			if err != nil {
				t.Fatalf("round %d leaf %d: %v", r, i, err)
			}
			if dup || merged != reports {
				t.Fatalf("round %d leaf %d: merged %d (dup=%v), want %d fresh", r, i, merged, dup, reports)
			}
			wantReports[i] += uint64(reports)
			// Retry storm: the same envelope again (ack lost), then the
			// previous round's envelope (redial replaying the outbox).
			retries := []*persist.Envelope{env}
			if prev[i] != nil {
				retries = append(retries, prev[i])
			}
			for _, re := range retries {
				m, d, err := f.root.MergeEnvelope(re)
				if err != nil {
					t.Fatalf("round %d leaf %d retry: %v", r, i, err)
				}
				if !d || m != 0 {
					t.Fatalf("round %d leaf %d: retry merged %d (dup=%v), want deduplicated", r, i, m, d)
				}
				wantDups[i]++
			}
			prev[i] = env
		}
		sameRound(t, fmt.Sprintf("round %d", r), f.root.CloseRound(), f.single.CloseRound())
	}
	ledger := f.root.Ledger()
	if len(ledger) != len(f.leaf) {
		t.Fatalf("%d ledger entries, want %d", len(ledger), len(f.leaf))
	}
	for i, e := range ledger {
		if e.Leaf != fmt.Sprintf("leaf-%d", i) {
			t.Fatalf("ledger[%d] = %q, want sorted leaf names", i, e.Leaf)
		}
		if e.Seq != seq[i] || e.Round != rounds-1 || e.Dups != wantDups[i] || e.Reports != wantReports[i] {
			t.Fatalf("ledger[%d] = %+v, want seq=%d round=%d dups=%d reports=%d",
				i, e, seq[i], rounds-1, wantDups[i], wantReports[i])
		}
	}
}

// TestMergeEnvelopeLedgerSurvivesRestart pins that the dedup ledger rides
// the root's snapshot: a restored root still refuses the envelopes its
// counts already absorbed, and still accepts the next fresh one.
func TestMergeEnvelopeLedgerSurvivesRestart(t *testing.T) {
	const k, n = 16, 60
	f := newTreeFixture(t, k, n, 2, 2)
	proto := f.root.Protocol()

	f.ingestRound(t, 0)
	round0 := make([]*persist.Envelope, len(f.leaf))
	for i, lf := range f.leaf {
		env, _ := exportEnvelope(t, lf, fmt.Sprintf("leaf-%d", i), 1)
		if _, dup, err := f.root.MergeEnvelope(env); err != nil || dup {
			t.Fatalf("leaf %d: dup=%v err=%v", i, dup, err)
		}
		round0[i] = env
	}
	f.single.CloseRound()
	f.root.CloseRound()

	// The root dies and restores from its snapshot (taken with round 1
	// open and the ledger at seq 1 for both leaves).
	var image bytes.Buffer
	if err := f.root.Snapshot(&image); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreStream(&image, proto)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	// Round-0 envelopes re-shipped by leaves that never saw the acks:
	// deduplicated, not reapplied.
	for i, env := range round0 {
		if m, dup, err := restored.MergeEnvelope(env); err != nil || !dup || m != 0 {
			t.Fatalf("restored root reapplied leaf %d: merged=%d dup=%v err=%v", i, m, dup, err)
		}
	}
	ledger := restored.Ledger()
	if len(ledger) != 2 || ledger[0].Dups != 1 || ledger[1].Dups != 1 {
		t.Fatalf("restored ledger = %+v, want one dup per leaf", ledger)
	}

	// The next round's envelopes still apply, and the estimates stay
	// bit-identical to the uninterrupted single stream.
	f.ingestRound(t, 1)
	for i, lf := range f.leaf {
		env, reports := exportEnvelope(t, lf, fmt.Sprintf("leaf-%d", i), 2)
		m, dup, err := restored.MergeEnvelope(env)
		if err != nil || dup || m != reports {
			t.Fatalf("leaf %d after restore: merged=%d dup=%v err=%v", i, m, dup, err)
		}
	}
	sameRound(t, "round 1", restored.CloseRound(), f.single.CloseRound())
}

// TestShouldApplyFastPath pins the decode-skip contract: ShouldApply
// agrees with MergeEnvelope's ledger, and RecordDuplicate keeps the dup
// counter accurate when the network layer dedups without decoding.
func TestShouldApplyFastPath(t *testing.T) {
	f := newTreeFixture(t, 16, 20, 1, 2)
	f.ingestRound(t, 0)
	env, _ := exportEnvelope(t, f.leaf[0], "leaf-0", 5)
	if !f.root.ShouldApply([]byte("leaf-0"), 5) {
		t.Fatal("fresh leaf refused")
	}
	if _, dup, err := f.root.MergeEnvelope(env); err != nil || dup {
		t.Fatalf("dup=%v err=%v", dup, err)
	}
	if f.root.ShouldApply([]byte("leaf-0"), 5) {
		t.Fatal("applied seq still reported as fresh")
	}
	if f.root.ShouldApply([]byte("leaf-0"), 4) {
		t.Fatal("stale seq reported as fresh")
	}
	if !f.root.ShouldApply([]byte("leaf-0"), 6) {
		t.Fatal("next seq refused")
	}
	if !f.root.ShouldApply([]byte("leaf-1"), 1) {
		t.Fatal("unknown leaf refused")
	}
	f.root.RecordDuplicate([]byte("leaf-0"))
	f.root.RecordDuplicate([]byte("never-applied")) // ignored: no entry
	ledger := f.root.Ledger()
	if len(ledger) != 1 || ledger[0].Dups != 1 {
		t.Fatalf("ledger = %+v, want leaf-0 with one dup", ledger)
	}
}

// TestMergeEnvelopeRejections pins whole-envelope rejection: a spec-hash
// mismatch or an unledgerable leaf name leaves the root untouched.
func TestMergeEnvelopeRejections(t *testing.T) {
	protoA, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	protoB, err := core.NewBinary(32, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	root, err := NewStream(protoA, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	other, err := NewStream(protoB, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	_, snap, err := other.CloseRoundExport()
	if err != nil {
		t.Fatal(err)
	}
	env := &persist.Envelope{Leaf: "leaf-0", Round: 0, Seq: 1, Snap: snap}
	if _, _, err := root.MergeEnvelope(env); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
	env.Leaf = ""
	if _, _, err := root.MergeEnvelope(env); err == nil {
		t.Fatal("empty leaf name accepted")
	}
	if root.Pending() != 0 || root.Ledger() != nil {
		t.Fatalf("rejected envelope mutated the root: pending=%d ledger=%v", root.Pending(), root.Ledger())
	}
}
