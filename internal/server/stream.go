package server

import (
	"errors"
	"fmt"
	"slices"
	"sync"

	"github.com/loloha-ldp/loloha/internal/bitset"
	"github.com/loloha-ldp/loloha/internal/heavyhitter"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/postprocess"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// Stream is the collection service of the library: one configurable,
// thread-safe, multi-round frequency-monitoring pipeline for a single
// longitudinal protocol. It subsumes the former Cohort/Collection pair:
//
//   - Wire path: users Enroll once with registration metadata, then stream
//     raw payload bytes through Ingest (one report) or IngestBatch (decode
//     outside the shard locks, one lock acquisition per shard per batch).
//   - Simulation path: WithCohort attaches in-process clients and Collect
//     drives a complete round from raw values.
//
// Rounds are explicit: reports land in the current round until CloseRound
// (or Collect), which publishes a RoundResult to the history and to every
// Subscribe channel. Estimates are bit-identical across shard counts and
// ingestion paths: all randomness lives client-side and shard tallies are
// integer counts.
//
// Internally ingestion is striped: users hash onto shards, each with its
// own lock, enrollment/report maps and aggregator fork, so concurrent
// Ingest calls from different shards never contend. CloseRound acts as a
// round barrier — it excludes all ingestion, merges the shard tallies and
// publishes the estimates. With a non-mergeable aggregator the service
// degrades to a single shard.
type Stream struct {
	proto longitudinal.Protocol
	// tallier is the zero-allocation ingestion path: payload bits tally
	// directly into the shard aggregator with no Report materialized. It
	// is resolved from the protocol (longitudinal.TallyProtocol) unless
	// WithDecoder overrides ingestion; decoder is the compatibility path
	// and may be nil when the protocol supplies only a tallier.
	tallier longitudinal.WireTallier
	decoder Decoder

	// specHash fingerprints the stream's protocol configuration
	// (longitudinal.SpecHashOf); columnar batches carry the producer's
	// hash and IngestColumnar rejects the whole batch on mismatch.
	specHash uint64

	// mu is the round barrier: CloseRound/Collect hold it exclusively;
	// Enroll, Ingest and the published-history readers hold it shared
	// (results and subscribers are only mutated under the exclusive lock).
	mu     sync.RWMutex
	merge  longitudinal.MergeableAggregator // nil when single-shard
	shards []*streamShard

	// scratch pools IngestBatch's per-shard index lists and phase buffers
	// so steady-state batches reuse memory across calls.
	scratch sync.Pool

	pp      postprocess.Method
	tracker *heavyhitter.Tracker

	results  []RoundResult
	subs     []chan RoundResult
	roundCap int
	dropped  uint64
	closed   bool

	// ledger holds the per-leaf applied-envelope watermarks of a
	// collector-tree root (leaf name → highest applied seq plus
	// attribution counters); nil until the first MergeEnvelope. Guarded by
	// mu: reads under the shared lock, updates under the exclusive lock.
	ledger map[string]persist.LedgerEntry

	// baseRound offsets round indices after RestoreStream: the snapshot's
	// open round was baseRound, rounds published before it are not
	// retained, and results[i] holds round baseRound+i. Zero for a stream
	// that never restored.
	baseRound int

	// Simulation cohort (nil unless WithCohort).
	clients   []longitudinal.Client
	collector *longitudinal.ShardedCollector
}

// streamShard owns the ingestion state of one stripe of users. Enrollment
// assigns each user a dense slot, so the steady-state hot path pays one
// map lookup per report (userID → slot) instead of two (the former
// map[int]Registration + map[int]bool pair): the registration lives in a
// dense slice and the per-round duplicate check is one bit in a bitset
// that resets every round without reallocating.
type streamShard struct {
	mu       sync.Mutex
	agg      longitudinal.Aggregator
	slots    map[int]int    // userID → slot, assigned at Enroll
	regs     []Registration // slot → enrollment metadata
	reported *bitset.Bitset // slot → reported this round
	tallied  int
}

// batchScratch is IngestBatch's reusable working memory: the per-shard
// index lists of the partition phase plus the decode-path phase buffers.
type batchScratch struct {
	perShard [][]int
	regs     []Registration
	ok       []bool
	reps     []longitudinal.Report
	// cells re-frames a columnar payload column as per-report slices for
	// the IngestBatch compatibility path.
	cells [][]byte
}

// RoundResult is one published collection round.
type RoundResult struct {
	// Round is the 0-based round index.
	Round int
	// Reports is the number of reports tallied into the round.
	Reports int
	// Raw holds the unbiased Eq. (3) estimates.
	Raw []float64
	// Estimates holds the post-processed estimates (a copy of Raw when the
	// stream was built without WithPostProcess).
	Estimates []float64
	// HeavyHitters is the tracker's current heavy-hitter set; nil unless
	// the stream was built with WithHeavyHitters.
	HeavyHitters []heavyhitter.Hitter
}

// clone returns a deep copy so history, subscribers and the caller never
// share mutable slices.
func (r RoundResult) clone() RoundResult {
	c := r
	c.Raw = append([]float64(nil), r.Raw...)
	c.Estimates = append([]float64(nil), r.Estimates...)
	c.HeavyHitters = append([]heavyhitter.Hitter(nil), r.HeavyHitters...)
	return c
}

// ---------------------------------------------------------------------------
// Options.

// Option configures a Stream.
type Option func(*streamConfig)

type streamConfig struct {
	shards    int
	shardsSet bool
	decoder   Decoder
	pp        postprocess.Method
	hh        *heavyhitter.Config
	roundCap  int
	cohortN   int
	cohortSet bool
	seed      uint64
}

// WithShards sets the ingestion stripe count and, when a cohort is
// attached, the collection parallelism. 0 (the default) selects one shard
// per available CPU; 1 fully serializes the service; negative counts are
// rejected at construction.
func WithShards(shards int) Option {
	return func(c *streamConfig) { c.shards = shards; c.shardsSet = true }
}

// WithDecoder overrides payload decoding. Without it the decoder is
// resolved from the protocol (WireProtocol, then the registry); use it to
// drive a stream with a custom wire format.
func WithDecoder(dec Decoder) Option {
	return func(c *streamConfig) { c.decoder = dec }
}

// WithPostProcess selects the server-side estimate transform applied to
// every RoundResult's Estimates (costs no privacy by Proposition 2.2). The
// unbiased estimates always remain available as RoundResult.Raw.
func WithPostProcess(m postprocess.Method) Option {
	return func(c *streamConfig) { c.pp = m }
}

// WithHeavyHitters attaches a heavy-hitter tracker fed the post-processed
// estimates of every round; RoundResult.HeavyHitters carries its current
// set. cfg.K defaults to the protocol's estimate domain when zero.
func WithHeavyHitters(cfg heavyhitter.Config) Option {
	return func(c *streamConfig) { c.hh = &cfg }
}

// WithRoundCapacity sets the buffer of each Subscribe channel (default
// 16). Must be at least 1.
//
// The buffer is the whole backpressure contract: publication NEVER blocks
// on a subscriber. A subscriber that has n unconsumed rounds buffered when
// CloseRound publishes the next one does not receive that round — it is
// dropped for that subscriber only (drop, not block). Every delivered
// RoundResult carries its Round index, so gaps are detectable, Round(t)
// backfills any missed round from the history, and DroppedRounds counts
// drops across all subscribers. TestStreamSlowSubscriberDropPolicy pins
// this behavior.
func WithRoundCapacity(n int) Option {
	return func(c *streamConfig) { c.roundCap = n }
}

// WithCohort attaches n in-process simulation clients, seeded
// deterministically from seed, so Collect can drive complete rounds from
// raw values. The clients own user IDs [0..n): wire enrollment under
// those IDs is rejected, since it would tally a user twice per round.
// Production deployments run clients on devices and use the wire path
// instead.
func WithCohort(n int, seed uint64) Option {
	return func(c *streamConfig) { c.cohortN = n; c.cohortSet = true; c.seed = seed }
}

// NewStream returns a collection service for the protocol.
func NewStream(proto longitudinal.Protocol, opts ...Option) (*Stream, error) {
	cfg := streamConfig{roundCap: 16}
	for _, o := range opts {
		o(&cfg)
	}
	if proto == nil {
		return nil, fmt.Errorf("server: nil protocol")
	}
	if cfg.shards < 0 {
		return nil, fmt.Errorf("server: negative shard count %d", cfg.shards)
	}
	if !cfg.shardsSet || cfg.shards == 0 {
		cfg.shards = longitudinal.DefaultShards()
	}
	if cfg.roundCap < 1 {
		return nil, fmt.Errorf("server: round capacity must be at least 1, got %d", cfg.roundCap)
	}
	if cfg.cohortSet && cfg.cohortN < 1 {
		return nil, fmt.Errorf("server: cohort needs at least one user, got %d", cfg.cohortN)
	}
	var tallier longitudinal.WireTallier
	if cfg.decoder == nil {
		// Tally-direct is the default ingestion path; Decoder is resolved
		// alongside it as the compatibility path. A protocol providing
		// only a tallier (no WireDecoder, no registry entry) is complete.
		if tp, ok := proto.(longitudinal.TallyProtocol); ok {
			tallier = tp.WireTallier()
		}
		dec, err := ForProtocol(proto)
		if err != nil {
			if tallier == nil {
				return nil, err
			}
			dec = nil
		}
		cfg.decoder = dec
	}

	s := &Stream{
		proto:    proto,
		tallier:  tallier,
		decoder:  cfg.decoder,
		specHash: longitudinal.SpecHashOf(proto),
		pp:       cfg.pp,
		roundCap: cfg.roundCap,
	}
	agg := proto.NewAggregator()
	shards := cfg.shards
	ma, mergeable := agg.(longitudinal.MergeableAggregator)
	if shards < 1 || !mergeable {
		shards = 1
	}
	if shards > 1 {
		s.merge = ma
	}
	s.shards = make([]*streamShard, shards)
	for i := range s.shards {
		sh := &streamShard{
			slots:    make(map[int]int),
			reported: bitset.New(0),
		}
		if s.merge != nil {
			sh.agg = ma.Fork()
		} else {
			sh.agg = agg
		}
		s.shards[i] = sh
	}
	s.scratch.New = func() any {
		return &batchScratch{perShard: make([][]int, len(s.shards))}
	}

	if cfg.hh != nil {
		hhCfg := *cfg.hh
		if hhCfg.K == 0 {
			hhCfg.K = agg.EstimateDomain()
		}
		if hhCfg.K != agg.EstimateDomain() {
			return nil, fmt.Errorf("server: heavy-hitter tracker over %d values, protocol estimates %d",
				hhCfg.K, agg.EstimateDomain())
		}
		tracker, err := heavyhitter.New(hhCfg)
		if err != nil {
			return nil, err
		}
		s.tracker = tracker
	}

	if cfg.cohortSet {
		s.clients = make([]longitudinal.Client, cfg.cohortN)
		for u := range s.clients {
			s.clients[u] = proto.NewClient(randsrc.Derive(cfg.seed, uint64(u)))
		}
		// Cohort tallies land in the round's merge target so Collect and
		// wire ingestion share rounds.
		target := agg
		s.collector = longitudinal.NewShardedCollector(target, cfg.cohortN, cfg.shards)
		if s.tallier != nil {
			// Route cohort collection through the same allocation-free
			// generate→tally round trip as wire ingestion (clients emit
			// AppendReport payloads into per-shard buffers). WithDecoder
			// pins the boxed Report path here too.
			s.collector.EnableTallyDirect(s.tallier)
		}
	}
	return s, nil
}

// Protocol returns the protocol the stream collects for.
func (s *Stream) Protocol() longitudinal.Protocol { return s.proto }

// Shards returns the number of ingestion stripes.
func (s *Stream) Shards() int { return len(s.shards) }

// shardOf maps a user onto its stripe. The user ID is mixed first so that
// contiguous ID ranges spread evenly regardless of stripe count.
//
//loloha:noalloc
func (s *Stream) shardOf(userID int) *streamShard {
	return s.shards[s.shardIndex(userID)]
}

//loloha:noalloc
func (s *Stream) shardIndex(userID int) int {
	if len(s.shards) == 1 {
		return 0
	}
	return int(randsrc.Mix64(uint64(userID)) % uint64(len(s.shards)))
}

// ---------------------------------------------------------------------------
// Wire ingestion.

// checkWireID rejects wire operations on IDs owned by the attached
// cohort: client u of WithCohort(n, seed) is user u, so a wire report
// under the same ID would tally the user twice in one round — exactly the
// duplicate bias the per-round report check exists to prevent.
//
//loloha:noalloc
func (s *Stream) checkWireID(userID int) error {
	if s.clients != nil && userID >= 0 && userID < len(s.clients) {
		return fmt.Errorf("server: user %d is an attached cohort client; wire users must use IDs outside [0..%d)",
			userID, len(s.clients))
	}
	return nil
}

// Enroll registers a user's one-time metadata. Re-enrollment with
// different metadata is rejected: a changed hash function or changed
// sampled buckets would corrupt the user's support counts. With an
// attached cohort, wire user IDs must lie outside the cohort's [0..n).
func (s *Stream) Enroll(userID int, reg Registration) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkWireID(userID); err != nil {
		return err
	}
	sh := s.shardOf(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.enroll(userID, reg)
}

func (sh *streamShard) enroll(userID int, reg Registration) error {
	if slot, ok := sh.slots[userID]; ok {
		// Sampled buckets compare element-wise: two users with equally
		// many but different buckets are NOT interchangeable (their
		// support counts land in different histogram bins).
		prev := sh.regs[slot]
		if prev.HashSeed != reg.HashSeed || !slices.Equal(prev.Sampled, reg.Sampled) {
			return fmt.Errorf("server: user %d already enrolled with different metadata", userID)
		}
		return nil
	}
	slot := len(sh.regs)
	sh.slots[userID] = slot
	sh.regs = append(sh.regs, reg)
	sh.reported.Grow(slot + 1)
	return nil
}

// Ingest decodes and tallies one user's payload for the current round.
// Duplicate reports within a round are rejected (they would bias Eq. (3)).
// With a tally-capable protocol (longitudinal.TallyProtocol — every
// protocol in this repository) the steady state performs zero allocations
// per report: one map lookup resolves the user's slot, the duplicate check
// is a bit test, and the payload tallies in place.
//
//loloha:noalloc
func (s *Stream) Ingest(userID int, payload []byte) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.checkWireID(userID); err != nil {
		return err
	}
	sh := s.shardOf(userID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	slot, ok := sh.slots[userID]
	if !ok {
		return fmt.Errorf("server: user %d not enrolled", userID)
	}
	if sh.reported.Get(slot) {
		return fmt.Errorf("server: user %d already reported this round", userID)
	}
	if s.tallier != nil {
		if err := s.tallier.TallyWire(sh.agg, userID, payload, sh.regs[slot]); err != nil {
			return fmt.Errorf("server: user %d payload: %w", userID, err)
		}
	} else {
		// Single-report compatibility path: one payload decodes under one
		// shard lock; only IngestBatch amortizes decoding outside the locks.
		//loloha:locksafe one bounded decode per Ingest; batches use IngestBatch phase 2
		//loloha:alloc-ok boxed Decoder compatibility path materializes a Report
		rep, err := s.decoder.Decode(payload, sh.regs[slot])
		if err != nil {
			return fmt.Errorf("server: user %d payload: %w", userID, err)
		}
		//loloha:alloc-ok boxed Aggregator.Add is the compatibility tally
		sh.agg.Add(userID, rep)
	}
	sh.reported.Set(slot, true)
	sh.tallied++
	return nil
}

// IngestBatch tallies a whole batch of payloads, payloads[i] belonging to
// userIDs[i], with one shard-lock acquisition per shard per phase rather
// than one per report. With a tally-capable protocol the batch tallies in
// place in a single pass; with a Decoder, decoding (the expensive
// per-report work) runs outside the shard locks. Either way the working
// memory — per-shard index lists and phase buffers — comes from a pool,
// so steady-state batches allocate nothing (see BenchmarkIngestPath).
//
// The batch is not transactional: every enrolled, non-duplicate,
// well-formed report is tallied, and the returned error joins one error
// per rejected report (nil when all landed). Tallies are integer counts,
// so estimates are bit-identical to ingesting the same reports one at a
// time in any order.
//
//loloha:noalloc
func (s *Stream) IngestBatch(userIDs []int, payloads [][]byte) error {
	if len(userIDs) != len(payloads) {
		return fmt.Errorf("server: batch has %d user IDs for %d payloads", len(userIDs), len(payloads))
	}
	if len(userIDs) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()

	sc := s.scratch.Get().(*batchScratch)
	defer s.putScratch(sc)

	var errs []error
	// Partition the batch by shard so each phase takes one lock per shard.
	perShard := sc.perShard
	for i := range perShard {
		perShard[i] = perShard[i][:0]
	}
	for i, u := range userIDs {
		if err := s.checkWireID(u); err != nil {
			errs = append(errs, err)
			continue
		}
		si := s.shardIndex(u)
		perShard[si] = append(perShard[si], i)
	}

	// Tally-direct: enrollment lookup, duplicate check and in-place
	// tally under one lock acquisition per shard. A user repeated
	// within the batch is rejected exactly like a repeat across
	// Ingest calls. This early return IS the steady state, so noalloc
	// checks it despite the terminating shape.
	//loloha:steady
	if s.tallier != nil {
		for si, idxs := range perShard {
			if len(idxs) == 0 {
				continue
			}
			sh := s.shards[si]
			sh.mu.Lock()
			for _, i := range idxs {
				u := userIDs[i]
				slot, found := sh.slots[u]
				if !found {
					errs = append(errs, fmt.Errorf("server: user %d not enrolled", u))
					continue
				}
				if sh.reported.Get(slot) {
					errs = append(errs, fmt.Errorf("server: user %d already reported this round", u))
					continue
				}
				if err := s.tallier.TallyWire(sh.agg, u, payloads[i], sh.regs[slot]); err != nil {
					errs = append(errs, fmt.Errorf("server: user %d payload: %w", u, err))
					continue
				}
				sh.reported.Set(slot, true)
				sh.tallied++
			}
			sh.mu.Unlock()
		}
		return errors.Join(errs...)
	}

	// Decoder path. Phase 1: snapshot registrations under the shard locks.
	regs := growScratch(sc.regs, len(userIDs))
	sc.regs = regs
	ok := growScratch(sc.ok, len(userIDs))
	sc.ok = ok
	clear(ok)
	for si, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			slot, found := sh.slots[userIDs[i]]
			if !found {
				errs = append(errs, fmt.Errorf("server: user %d not enrolled", userIDs[i]))
				continue
			}
			regs[i] = sh.regs[slot]
			ok[i] = true
		}
		sh.mu.Unlock()
	}

	// Phase 2: decode with no locks held — the expensive per-report work.
	reps := growScratch(sc.reps, len(userIDs))
	sc.reps = reps
	for i := range userIDs {
		if !ok[i] {
			continue
		}
		//loloha:alloc-ok boxed Decoder compatibility path materializes Reports
		rep, err := s.decoder.Decode(payloads[i], regs[i])
		if err != nil {
			ok[i] = false
			errs = append(errs, fmt.Errorf("server: user %d payload: %w", userIDs[i], err))
			continue
		}
		reps[i] = rep
	}

	// Phase 3: tally, one lock acquisition per shard for the whole batch.
	// The duplicate check runs here so a user repeated within the batch is
	// rejected exactly like a repeat across Ingest calls.
	for si, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			if !ok[i] {
				continue
			}
			u := userIDs[i]
			slot := sh.slots[u]
			if sh.reported.Get(slot) {
				errs = append(errs, fmt.Errorf("server: user %d already reported this round", u))
				continue
			}
			//loloha:alloc-ok boxed Aggregator.Add is the compatibility tally
			sh.agg.Add(u, reps[i])
			sh.reported.Set(slot, true)
			sh.tallied++
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// ErrColumnarMismatch reports a columnar batch built for a different
// protocol configuration than the stream's: its spec hash or payload
// stride disagrees. The whole batch is rejected — the producer's encoder
// is misconfigured, which is a framing-level fault, not a per-report one.
var ErrColumnarMismatch = errors.New("columnar batch does not match the stream's protocol")

// IngestColumnar tallies one decoded columnar batch (see
// longitudinal.DecodeColumnar). With a columnar-capable tallier
// (longitudinal.ColumnarTallier — every tallier in this repository) the
// packed payload column tallies cell by cell with the length validation
// hoisted out of the loop, one shard-lock acquisition per shard per
// batch, and zero steady-state allocations. A batch carrying registration
// columns enrolls each user before tallying (idempotent for already
// enrolled users; a conflicting re-enrollment is reported but the report
// still tallies under the original registration, exactly as a separate
// enroll-then-report sequence would behave).
//
// The spec hash and payload stride must match the stream's protocol;
// otherwise the whole batch is rejected with ErrColumnarMismatch.
// Per-report rejections (not enrolled, duplicate, malformed cell) join
// into the returned error exactly like IngestBatch.
//
//loloha:noalloc
func (s *Stream) IngestColumnar(batch *longitudinal.ColumnarBatch) error {
	if batch.SpecHash != s.specHash {
		return fmt.Errorf("server: batch spec hash %#016x, stream has %#016x: %w",
			batch.SpecHash, s.specHash, ErrColumnarMismatch)
	}
	n := batch.Count()
	if n == 0 {
		return nil
	}
	ct, columnar := s.tallier.(longitudinal.ColumnarTallier)
	if !columnar {
		// Compatibility path: a WithDecoder override or a tallier without
		// the columnar contract re-frames the column and rides IngestBatch.
		return s.ingestColumnarCompat(batch)
	}
	if batch.Stride != ct.PayloadStride() {
		return fmt.Errorf("server: batch payload stride %d, protocol takes %d: %w",
			batch.Stride, ct.PayloadStride(), ErrColumnarMismatch)
	}

	s.mu.RLock()
	defer s.mu.RUnlock()

	sc := s.scratch.Get().(*batchScratch)
	defer s.putScratch(sc)

	var errs []error
	// Partition by shard so the tally loop takes one lock per shard.
	perShard := sc.perShard
	for i := range perShard {
		perShard[i] = perShard[i][:0]
	}
	for i, u := range batch.IDs {
		if err := s.checkWireID(u); err != nil {
			errs = append(errs, err)
			continue
		}
		si := s.shardIndex(u)
		perShard[si] = append(perShard[si], i)
	}

	hasRegs := batch.HasRegistrations()
	for si, idxs := range perShard {
		if len(idxs) == 0 {
			continue
		}
		sh := s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			u := batch.IDs[i]
			if hasRegs {
				// Cold path: the batch enrolls its users inline. The sampled
				// view aliases the batch's pooled bucket column, so the
				// retained registration clones it.
				reg := batch.Registration(i)
				//loloha:alloc-ok cold enrollment clones the batch's sampled-bucket view
				reg.Sampled = slices.Clone(reg.Sampled)
				//loloha:alloc-ok cold enrollment extends the shard's slot tables
				if err := sh.enroll(u, reg); err != nil {
					errs = append(errs, err)
				}
			}
			slot, found := sh.slots[u]
			if !found {
				errs = append(errs, fmt.Errorf("server: user %d not enrolled", u))
				continue
			}
			if sh.reported.Get(slot) {
				errs = append(errs, fmt.Errorf("server: user %d already reported this round", u))
				continue
			}
			if err := ct.TallyCell(sh.agg, u, batch.Payload(i), sh.regs[slot]); err != nil {
				errs = append(errs, fmt.Errorf("server: user %d payload: %w", u, err))
				continue
			}
			sh.reported.Set(slot, true)
			sh.tallied++
		}
		sh.mu.Unlock()
	}
	return errors.Join(errs...)
}

// ingestColumnarCompat routes a columnar batch through the per-report
// IngestBatch machinery for streams without a columnar tallier (decoder
// override, or an external tallier without the columnar contract).
// Enrollment runs first without the stream lock held — IngestBatch takes
// its own — so the two phases cannot deadlock against a waiting writer.
func (s *Stream) ingestColumnarCompat(batch *longitudinal.ColumnarBatch) error {
	var errs []error
	if batch.HasRegistrations() {
		for i, u := range batch.IDs {
			if s.checkWireID(u) != nil {
				continue // IngestBatch reports the cohort-ID rejection once
			}
			reg := batch.Registration(i)
			reg.Sampled = slices.Clone(reg.Sampled)
			if err := s.Enroll(u, reg); err != nil {
				errs = append(errs, err)
			}
		}
	}
	sc := s.scratch.Get().(*batchScratch)
	cells := growScratch(sc.cells, batch.Count())
	sc.cells = cells
	for i := range cells {
		cells[i] = batch.Payload(i)
	}
	err := s.IngestBatch(batch.IDs, cells)
	s.putScratch(sc)
	if err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// growScratch returns s resized to n elements, reusing its capacity when
// possible. Contents are unspecified; callers overwrite or clear.
//
//loloha:noalloc
func growScratch[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// putScratch returns batch working memory to the pool, dropping references
// to decoded reports and registration snapshots so pooled buffers never
// pin payload-derived data between batches.
//
//loloha:noalloc
func (s *Stream) putScratch(sc *batchScratch) {
	clear(sc.reps)
	clear(sc.regs)
	clear(sc.cells)
	s.scratch.Put(sc)
}

// ---------------------------------------------------------------------------
// Simulation cohort.

// Collect runs one complete collection round for the attached cohort:
// values[u] is client u's current value. Every client reports, the round
// is closed, and its RoundResult returned — wire reports ingested since
// the previous round share the same result. Requires WithCohort.
func (s *Stream) Collect(values []int) (RoundResult, error) {
	if s.clients == nil {
		return RoundResult{}, fmt.Errorf("server: no cohort attached (use WithCohort)")
	}
	if len(values) != len(s.clients) {
		return RoundResult{}, fmt.Errorf("server: got %d values for %d users", len(values), len(s.clients))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.collector.Tally(s.clients, values); err != nil {
		return RoundResult{}, err
	}
	return s.closeRoundLocked(len(s.clients)), nil
}

// CohortSize returns the number of attached simulation clients (0 without
// WithCohort).
func (s *Stream) CohortSize() int { return len(s.clients) }

// CohortShards returns the cohort's effective collection parallelism (0
// without WithCohort). It can be lower than Shards: collection partitions
// users contiguously and clamps to the cohort size.
func (s *Stream) CohortShards() int {
	if s.collector == nil {
		return 0
	}
	return s.collector.Shards()
}

// PrivacySpent returns each attached client's longitudinal privacy loss ε̌
// so far (nil without WithCohort).
func (s *Stream) PrivacySpent() []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.clients == nil {
		return nil
	}
	out := make([]float64, len(s.clients))
	for u, cl := range s.clients {
		out[u] = cl.PrivacySpent()
	}
	return out
}

// MaxPrivacySpent returns the worst ε̌ across the attached cohort (0
// without WithCohort).
func (s *Stream) MaxPrivacySpent() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	worst := 0.0
	for _, cl := range s.clients {
		if spent := cl.PrivacySpent(); spent > worst {
			worst = spent
		}
	}
	return worst
}

// ---------------------------------------------------------------------------
// Round lifecycle and publication.

// CloseRound finalizes the current round, publishes its RoundResult (to
// the history and every subscriber) and opens the next round. The returned
// result is the caller's to keep: history and subscribers hold their own
// copies, so later mutation cannot corrupt Round's results.
func (s *Stream) CloseRound() RoundResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeRoundLocked(0)
}

// closeRoundLocked merges shard tallies, estimates, post-processes and
// publishes. extraReports counts reports tallied outside the shard maps
// (the cohort path). Caller holds s.mu exclusively.
func (s *Stream) closeRoundLocked(extraReports int) RoundResult {
	var raw []float64
	if s.merge != nil {
		for _, sh := range s.shards {
			s.merge.Merge(sh.agg)
		}
		raw = s.merge.EndRound()
	} else {
		raw = s.shards[0].agg.EndRound()
	}
	reports := extraReports
	for _, sh := range s.shards {
		reports += sh.tallied
		sh.tallied = 0
		sh.reported.Reset()
	}

	estimates := append([]float64(nil), raw...)
	estimates = postprocess.Apply(s.pp, estimates)
	res := RoundResult{
		Round:     s.baseRound + len(s.results),
		Reports:   reports,
		Raw:       raw,
		Estimates: estimates,
	}
	if s.tracker != nil {
		s.tracker.Observe(estimates)
		res.HeavyHitters = s.tracker.HeavyHitters()
	}
	s.results = append(s.results, res.clone())
	if !s.closed {
		for _, sub := range s.subs {
			// Non-blocking: a subscriber that lags more than its buffer
			// (WithRoundCapacity) misses rounds rather than stalling the
			// round barrier; RoundResult.Round makes gaps detectable and
			// Round(t) backfills them. CloseRound is the only sender and
			// holds s.mu exclusively, so a full buffer can only drain —
			// checking occupancy first skips the clone a select would
			// evaluate and then drop.
			if len(sub) == cap(sub) {
				s.dropped++
				continue
			}
			sub <- res.clone()
		}
	}
	return res
}

// Subscribe returns a channel receiving every subsequently published
// RoundResult. The channel is buffered (WithRoundCapacity); when the
// buffer is full the subscriber misses rounds instead of blocking
// CloseRound — the explicit slow-subscriber policy is drop, never block
// (see WithRoundCapacity). Close closes all subscription channels; after
// Close, Subscribe returns an already-closed channel.
func (s *Stream) Subscribe() <-chan RoundResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan RoundResult, s.roundCap)
	if s.closed {
		close(ch)
		return ch
	}
	s.subs = append(s.subs, ch)
	return ch
}

// Close terminates publication: every subscription channel is closed and
// later Subscribe calls return closed channels. Ingestion and the round
// history remain usable; Close only ends the streaming side.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, sub := range s.subs {
		close(sub)
	}
	s.subs = nil
}

// Round returns a copy of the published result of round t (0-based);
// mutating it cannot corrupt the published history.
func (s *Stream) Round(t int) (RoundResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t >= s.baseRound && t < s.baseRound+len(s.results) {
		return s.results[t-s.baseRound].clone(), nil
	}
	if t >= 0 && t < s.baseRound {
		// Published before the snapshot this stream restored from; the
		// history was not serialized (only the open round's state is).
		return RoundResult{}, fmt.Errorf("server: round %d predates the restored snapshot (history starts at %d)",
			t, s.baseRound)
	}
	return RoundResult{}, fmt.Errorf("server: round %d not published (have %d)", t, s.baseRound+len(s.results))
}

// Rounds returns the index one past the last published round (the open
// round's index). For a stream that never restored this is the number of
// published rounds; after RestoreStream it continues from the snapshot's
// round, although the earlier history itself is not retained.
func (s *Stream) Rounds() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.baseRound + len(s.results)
}

// Enrolled returns the number of enrolled users.
func (s *Stream) Enrolled() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.slots)
		sh.mu.Unlock()
	}
	return total
}

// Pending returns the number of reports tallied into the currently open
// round (excluding cohort reports, which close their round in the same
// call). A daemon closing rounds on a timer uses it to skip publishing
// empty rounds.
func (s *Stream) Pending() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.tallied
		sh.mu.Unlock()
	}
	return total
}

// DroppedRounds returns the total number of round deliveries skipped
// because a subscriber's buffer was full (summed over all subscribers; a
// round missed by three subscribers counts three). It makes the drop
// policy of WithRoundCapacity observable without instrumenting every
// subscriber.
func (s *Stream) DroppedRounds() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dropped
}
