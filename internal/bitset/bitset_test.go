package bitset

import (
	"testing"
	"testing/quick"
)

func TestGetSet(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.Set(i, true)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		b.Set(i, false)
		if b.Get(i) {
			t.Fatalf("bit %d still set after clear", i)
		}
	}
}

func TestCount(t *testing.T) {
	b := New(200)
	if b.Count() != 0 {
		t.Fatal("fresh bitset count != 0")
	}
	idx := []int{0, 3, 63, 64, 100, 199}
	for _, i := range idx {
		b.Set(i, true)
	}
	if got := b.Count(); got != len(idx) {
		t.Errorf("Count = %d, want %d", got, len(idx))
	}
	b.Set(0, true) // idempotent
	if got := b.Count(); got != len(idx) {
		t.Errorf("Count after double set = %d, want %d", got, len(idx))
	}
}

func TestFlip(t *testing.T) {
	b := New(10)
	b.Flip(5)
	if !b.Get(5) {
		t.Error("flip 0->1 failed")
	}
	b.Flip(5)
	if b.Get(5) {
		t.Error("flip 1->0 failed")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(70)
	a.Set(69, true)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(0, true)
	if a.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if a.Equal(New(71)) {
		t.Fatal("different lengths compare equal")
	}
}

func TestReset(t *testing.T) {
	b := New(100)
	for i := 0; i < 100; i += 7 {
		b.Set(i, true)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Error("Reset left bits set")
	}
}

func TestAccumulateInto(t *testing.T) {
	b := New(130)
	b.Set(0, true)
	b.Set(64, true)
	b.Set(129, true)
	counts := make([]int64, 130)
	b.AccumulateInto(counts)
	b.AccumulateInto(counts)
	for i, c := range counts {
		want := int64(0)
		if i == 0 || i == 64 || i == 129 {
			want = 2
		}
		if c != want {
			t.Errorf("counts[%d] = %d, want %d", i, c, want)
		}
	}
}

func TestAccumulatePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched counts did not panic")
		}
	}()
	New(10).AccumulateInto(make([]int64, 9))
}

func TestFromWords(t *testing.T) {
	b, err := FromWords(65, []uint64{^uint64(0), 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Count() != 65 {
		t.Errorf("Count = %d, want 65", b.Count())
	}
	if _, err := FromWords(65, []uint64{1}); err == nil {
		t.Error("wrong word count accepted")
	}
	if _, err := FromWords(65, []uint64{0, 4}); err == nil {
		t.Error("bits beyond length accepted")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(8)
	for _, i := range []int{-1, 8, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			b.Get(i)
		}()
	}
}

func TestGrow(t *testing.T) {
	b := New(3)
	b.Set(1, true)
	b.Grow(2) // shrink request is a no-op
	if b.Len() != 3 {
		t.Fatalf("Grow(2) changed length to %d", b.Len())
	}
	b.Grow(130)
	if b.Len() != 130 {
		t.Fatalf("Grow(130): length %d", b.Len())
	}
	if !b.Get(1) || b.Get(0) || b.Get(129) {
		t.Fatal("Grow corrupted existing bits or exposed nonzero new bits")
	}
	if b.Count() != 1 {
		t.Fatalf("Count after Grow = %d, want 1", b.Count())
	}
	// Growth within word capacity must not reallocate (the per-round
	// reported-set contract: expand with enrollment, reset without
	// allocating).
	b.Set(129, true)
	before := &b.Words()[0]
	b.Grow(192) // still 3 words
	if &b.Words()[0] != before {
		t.Fatal("Grow within capacity reallocated the backing words")
	}
	if !b.Get(129) || b.Count() != 2 {
		t.Fatal("Grow within capacity corrupted bits")
	}
	// Words exposed by growing into spare capacity must read as zero even
	// if the backing array carried garbage there.
	words := make([]uint64, 1, 4)
	words[0] = 1
	spare := words[:4]
	spare[3] = ^uint64(0) // garbage beyond the handed-over length
	fw, err := FromWords(64, words)
	if err != nil {
		t.Fatal(err)
	}
	fw.Grow(256)
	if fw.Count() != 1 {
		t.Fatalf("Grow exposed garbage words: count %d, want 1", fw.Count())
	}
}

func TestQuickSetGetConsistency(t *testing.T) {
	f := func(nRaw uint8, positions []uint16) bool {
		n := int(nRaw) + 1
		b := New(n)
		ref := make(map[int]bool)
		for _, p := range positions {
			i := int(p) % n
			b.Flip(i)
			ref[i] = !ref[i]
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		want := 0
		for _, v := range ref {
			if v {
				want++
			}
		}
		return b.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
