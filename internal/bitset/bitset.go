// Package bitset implements a dense bit vector used for unary-encoding
// reports (RAPPOR-family protocols) and for the server-side tallies that
// aggregate millions of such reports.
package bitset

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-length vector of bits backed by 64-bit words.
type Bitset struct {
	n     int
	words []uint64
}

// New returns a zeroed bitset of n bits. It panics if n < 0.
func New(n int) *Bitset {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// FromWords wraps the given words as a bitset of n bits. The slice is used
// directly (not copied); callers hand over ownership. Bits beyond n must be
// zero for Count and Equal to be meaningful.
func FromWords(n int, words []uint64) (*Bitset, error) {
	if len(words) != (n+63)/64 {
		return nil, fmt.Errorf("bitset: %d words cannot back %d bits", len(words), n)
	}
	if n%64 != 0 && len(words) > 0 {
		if tail := words[len(words)-1] >> (uint(n) % 64); tail != 0 {
			return nil, fmt.Errorf("bitset: nonzero bits beyond length %d", n)
		}
	}
	return &Bitset{n: n, words: words}, nil
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Words exposes the backing words (little-endian bit order within a word).
// Mutating them mutates the bitset.
func (b *Bitset) Words() []uint64 { return b.words }

// Get reports whether bit i is set. It panics if i is out of range.
func (b *Bitset) Get(i int) bool {
	b.check(i)
	return b.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Set sets bit i to v.
func (b *Bitset) Set(i int, v bool) {
	b.check(i)
	mask := uint64(1) << (uint(i) & 63)
	if v {
		b.words[i>>6] |= mask
	} else {
		b.words[i>>6] &^= mask
	}
}

// Flip inverts bit i.
func (b *Bitset) Flip(i int) {
	b.check(i)
	b.words[i>>6] ^= uint64(1) << (uint(i) & 63)
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Equal reports whether b and o have identical length and bits.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{n: b.n, words: w}
}

// Grow extends the bitset to at least n bits; existing bits keep their
// values and new bits are zero. Growth within the current word capacity
// does not allocate, which makes a Bitset usable as a per-round scratch
// set that expands with enrollment but resets without reallocation.
func (b *Bitset) Grow(n int) {
	if n <= b.n {
		return
	}
	need := (n + 63) / 64
	if need > len(b.words) {
		if need <= cap(b.words) {
			// The reslice may expose garbage from a FromWords caller's
			// larger backing array; new words must read as zero.
			grown := b.words[len(b.words):need]
			for i := range grown {
				grown[i] = 0
			}
			b.words = b.words[:need]
		} else {
			words := make([]uint64, need, 2*need)
			copy(words, b.words)
			b.words = words
		}
	}
	b.n = n
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// AccumulateInto adds each bit of b (as 0/1) into counts, which must have
// length b.Len(). This is the server-side tally loop for unary encodings;
// it skips zero words, which dominate sparse reports.
func (b *Bitset) AccumulateInto(counts []int64) {
	if len(counts) != b.n {
		panic(fmt.Sprintf("bitset: counts length %d != bits %d", len(counts), b.n))
	}
	for wi, w := range b.words {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			counts[wi<<6+i]++
			w &= w - 1
		}
	}
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of [0,%d)", i, b.n))
	}
}
