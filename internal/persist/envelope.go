package persist

// The merge envelope (LME1) is the exactly-once delivery unit of the
// collector tree: one LSS1 snapshot image wrapped with the shipping
// leaf's identity and a monotonically increasing (round, seq) epoch. The
// root keeps a per-leaf applied-seq ledger (the snapshot's ledger
// section), so a retried envelope — redial, ack lost after apply, leaf
// crash between export and ack — is acknowledged without being
// reapplied: delivery is idempotent, and duplicates are observable
// instead of silently biasing every frequency estimate.
//
// Layout (fixed-width integers little-endian):
//
//	u32  magic "LME1"
//	u8   leaf-name length L (1..255)
//	L    leaf name bytes
//	u32  round (the leaf's 0-based round the tallies belong to)
//	u64  seq (the leaf's envelope sequence number, strictly increasing
//	     across rounds AND restarts — the outbox persists the counter)
//	u32  snapshot length N
//	N    LSS1 image bytes (persist.Append form, itself CRC-guarded)
//	u32  CRC32 (IEEE) of every preceding byte
//
// Like the snapshot format, the encoding is canonical: one envelope has
// exactly one encoding, and truncation, bad magic, bad CRC, a zero-length
// leaf name and trailing bytes are all decode errors.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// EnvelopeMagic is the 4-byte header of every merge envelope: "LME1"
// (Loloha Merge Envelope, version 1).
const EnvelopeMagic = "LME1"

const (
	// envelopeFixedBytes is the size of everything except the leaf name
	// and the snapshot image: magic + name length + round + seq +
	// snapshot length + CRC.
	envelopeFixedBytes = 4 + 1 + 4 + 8 + 4 + 4

	// MaxLeafName bounds a leaf identity (one length byte on the wire).
	MaxLeafName = 255
)

// Envelope is the decoded form of one LME1 merge envelope.
type Envelope struct {
	// Leaf is the shipping leaf's stable identity — the ledger key. It
	// must survive leaf restarts (lolohad's -leaf-id), or a restarted
	// leaf would open a fresh dedup history at the root.
	Leaf string
	// Round is the leaf-local 0-based round index the tallies belong to.
	Round int
	// Seq is the leaf's envelope sequence number: strictly increasing
	// across rounds and restarts. The root deduplicates on it.
	Seq uint64
	// Snap is the round's exported tallies.
	Snap *Snapshot
}

// EnvelopeHeader is the zero-copy view of an envelope's identity: Leaf
// aliases the source buffer, Image is the inner LSS1 bytes (not yet
// decoded). Valid only while the source buffer is.
type EnvelopeHeader struct {
	Leaf  []byte
	Round int
	Seq   uint64
	Image []byte
}

// AppendEnvelope appends the canonical encoding of env to dst and
// returns the extended buffer. It errors (dst unmodified) when env is
// not encodable: empty or oversize leaf name, negative or out-of-range
// round, or an unencodable snapshot.
func AppendEnvelope(dst []byte, env *Envelope) ([]byte, error) {
	if len(env.Leaf) == 0 || len(env.Leaf) > MaxLeafName {
		return dst, fmt.Errorf("persist: leaf name length %d, want 1..%d", len(env.Leaf), MaxLeafName)
	}
	if env.Round < 0 || int64(env.Round) > math.MaxUint32 {
		return dst, fmt.Errorf("persist: envelope round %d outside wire range", env.Round)
	}
	image, err := Append(nil, env.Snap)
	if err != nil {
		return dst, err
	}
	return AppendEnvelopeImage(dst, env.Leaf, env.Round, env.Seq, image)
}

// AppendEnvelopeImage appends an envelope around an already-encoded LSS1
// image — the outbox path, which spools the image once and frames it on
// every ship attempt without re-encoding. The image is not re-validated
// here; ParseEnvelopeHeader and the inner Decode reject corruption on
// the receiving side.
//
//loloha:noalloc
func AppendEnvelopeImage(dst []byte, leaf string, round int, seq uint64, image []byte) ([]byte, error) {
	if len(leaf) == 0 || len(leaf) > MaxLeafName {
		return dst, fmt.Errorf("persist: leaf name length %d, want 1..%d", len(leaf), MaxLeafName)
	}
	if round < 0 || int64(round) > math.MaxUint32 {
		return dst, fmt.Errorf("persist: envelope round %d outside wire range", round)
	}
	if int64(len(image)) > math.MaxUint32 {
		return dst, fmt.Errorf("persist: snapshot image %d bytes outside wire range", len(image))
	}
	start := len(dst)
	dst = append(dst, EnvelopeMagic...)
	dst = append(dst, byte(len(leaf)))
	dst = append(dst, leaf...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(round))
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(image)))
	dst = append(dst, image...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// IsEnvelope reports whether src begins with the envelope magic — the
// merge endpoints use it to route a body between the envelope path and
// the legacy raw-snapshot path.
//
//loloha:noalloc
func IsEnvelope(src []byte) bool {
	return len(src) >= 4 && string(src[:4]) == EnvelopeMagic
}

// ParseEnvelopeHeader validates an envelope's framing (magic, lengths,
// CRC) and returns a zero-copy view of its identity and inner image.
// The view aliases src. The inner LSS1 image is NOT decoded — the root
// checks the ledger first and skips the decode entirely for a duplicate
// envelope, which is what makes retry storms cheap.
//
//loloha:noalloc
func ParseEnvelopeHeader(src []byte) (EnvelopeHeader, error) {
	var h EnvelopeHeader
	if len(src) < envelopeFixedBytes+1 {
		return h, fmt.Errorf("persist: short envelope: %d bytes", len(src))
	}
	if string(src[:4]) != EnvelopeMagic {
		return h, fmt.Errorf("persist: bad envelope magic %q, want %q", src[:4], EnvelopeMagic)
	}
	body, tail := src[:len(src)-4], src[len(src)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return h, fmt.Errorf("persist: envelope checksum %#08x, trailer says %#08x", got, want)
	}
	nameLen := int(src[4])
	if nameLen == 0 {
		return h, fmt.Errorf("persist: empty leaf name")
	}
	if len(src) < envelopeFixedBytes+nameLen {
		return h, fmt.Errorf("persist: envelope truncated inside leaf name")
	}
	rest := src[5:]
	h.Leaf = rest[:nameLen]
	rest = rest[nameLen:]
	h.Round = int(binary.LittleEndian.Uint32(rest))
	h.Seq = binary.LittleEndian.Uint64(rest[4:])
	imageLen := binary.LittleEndian.Uint32(rest[12:])
	rest = rest[16:]
	if uint64(len(rest)) != uint64(imageLen)+4 {
		return h, fmt.Errorf("persist: envelope image length %d disagrees with %d remaining bytes",
			imageLen, len(rest)-4)
	}
	h.Image = rest[:imageLen]
	return h, nil
}

// DecodeEnvelope decodes one canonical envelope, including its inner
// snapshot. The returned envelope shares nothing with src.
func DecodeEnvelope(src []byte) (*Envelope, error) {
	h, err := ParseEnvelopeHeader(src)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(h.Image)
	if err != nil {
		return nil, fmt.Errorf("persist: envelope image: %w", err)
	}
	return &Envelope{Leaf: string(h.Leaf), Round: h.Round, Seq: h.Seq, Snap: snap}, nil
}
