package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

func sampleEnvelope() *Envelope {
	return &Envelope{
		Leaf:  "leaf-west-1",
		Round: 4,
		Seq:   23,
		Snap: &Snapshot{
			SpecHash: 0xFEEDFACE,
			Round:    4,
			Shards:   []Shard{{Counts: []int64{5, -2, 0, 9}, N: 7, Tallied: 7}},
		},
	}
}

func encodeEnvelope(t *testing.T, env *Envelope) []byte {
	t.Helper()
	enc, err := AppendEnvelope(nil, env)
	if err != nil {
		t.Fatalf("AppendEnvelope: %v", err)
	}
	return enc
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := sampleEnvelope()
	enc := encodeEnvelope(t, env)
	if !IsEnvelope(enc) {
		t.Fatal("IsEnvelope = false on a fresh envelope")
	}
	dec, err := DecodeEnvelope(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Leaf != env.Leaf || dec.Round != env.Round || dec.Seq != env.Seq {
		t.Fatalf("identity mismatch: %+v", dec)
	}
	if dec.Snap.SpecHash != env.Snap.SpecHash || dec.Snap.Reports() != env.Snap.Reports() {
		t.Fatalf("inner snapshot mismatch: %+v", dec.Snap)
	}
	// Canonical: re-encoding the decoded envelope is byte-identical.
	enc2 := encodeEnvelope(t, dec)
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoding differs:\n in %x\nout %x", enc, enc2)
	}
}

// TestEnvelopeImagePath pins that framing a pre-encoded image (the
// outbox's ship path) produces the same bytes as encoding the envelope
// whole — the spooled file and a fresh export are interchangeable.
func TestEnvelopeImagePath(t *testing.T) {
	env := sampleEnvelope()
	image, err := Append(nil, env.Snap)
	if err != nil {
		t.Fatal(err)
	}
	fromImage, err := AppendEnvelopeImage(nil, env.Leaf, env.Round, env.Seq, image)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromImage, encodeEnvelope(t, env)) {
		t.Fatal("AppendEnvelopeImage disagrees with AppendEnvelope")
	}
	h, err := ParseEnvelopeHeader(fromImage)
	if err != nil {
		t.Fatal(err)
	}
	if string(h.Leaf) != env.Leaf || h.Round != env.Round || h.Seq != env.Seq {
		t.Fatalf("header view mismatch: %+v", h)
	}
	if !bytes.Equal(h.Image, image) {
		t.Fatal("header view image differs from the encoded snapshot")
	}
}

func TestEnvelopeEncodeRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Envelope)
		want string
	}{
		{"empty leaf", func(e *Envelope) { e.Leaf = "" }, "leaf name length"},
		{"oversize leaf", func(e *Envelope) { e.Leaf = strings.Repeat("x", MaxLeafName+1) }, "leaf name length"},
		{"negative round", func(e *Envelope) { e.Round = -1 }, "round"},
		{"bad snapshot", func(e *Envelope) { e.Snap.Shards = nil }, "shard sections"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			env := sampleEnvelope()
			tc.mut(env)
			if _, err := AppendEnvelope(nil, env); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestEnvelopeDecodeRejections(t *testing.T) {
	enc := encodeEnvelope(t, sampleEnvelope())
	recrc := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		return b
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"empty", func(b []byte) []byte { return nil }, "short envelope"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return recrc(b) }, "bad envelope magic"},
		{"flipped bit", func(b []byte) []byte { b[7] ^= 1; return b }, "checksum"},
		{"zero name length", func(b []byte) []byte { b[4] = 0; return recrc(b) }, "empty leaf name"},
		{"name past end", func(b []byte) []byte { b[4] = 255; return recrc(b) }, "truncated inside leaf name"},
		{"trailing bytes", func(b []byte) []byte {
			return recrc(append(b[:len(b)-4], 0, 0, 0, 0, 0, 0, 0, 0))
		}, "disagrees"},
		{"truncated image", func(b []byte) []byte { return recrc(b[:len(b)-8]) }, "disagrees"},
		{"corrupt inner image", func(b []byte) []byte {
			// Flip a bit inside the LSS1 payload and refresh only the outer
			// CRC: the framing stays valid, so only the inner decode (its
			// own CRC now stale) can catch the damage.
			b[5+int(b[4])+16+4] ^= 1
			return recrc(b)
		}, "envelope image"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), enc...))
			if _, err := DecodeEnvelope(b); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestParseEnvelopeHeaderSkipsInnerDecode pins the dedup fast path: a
// corrupt inner image still parses at the header layer (CRC-refreshed),
// because the root consults the ledger before decoding the payload.
func TestParseEnvelopeHeaderSkipsInnerDecode(t *testing.T) {
	enc := encodeEnvelope(t, sampleEnvelope())
	nameLen := int(enc[4])
	imageOff := 5 + nameLen + 16
	enc[imageOff+8] ^= 0xFF // corrupt the inner image body
	binary.LittleEndian.PutUint32(enc[len(enc)-4:], crc32.ChecksumIEEE(enc[:len(enc)-4]))
	if _, err := ParseEnvelopeHeader(enc); err != nil {
		t.Fatalf("header parse should not decode the image: %v", err)
	}
	if _, err := DecodeEnvelope(enc); err == nil {
		t.Fatal("full decode accepted a corrupt inner image")
	}
}

// TestEnvelopeReaderZeroAlloc is the runtime side of the //loloha:noalloc
// annotations on IsEnvelope and ParseEnvelopeHeader: the dedup fast path
// must inspect an envelope's identity without allocating (the warm-up run
// absorbs crc32's one-time table build).
func TestEnvelopeReaderZeroAlloc(t *testing.T) {
	enc := encodeEnvelope(t, sampleEnvelope())
	var hdr EnvelopeHeader
	allocs := testing.AllocsPerRun(100, func() {
		if !IsEnvelope(enc) {
			t.Fatal("IsEnvelope = false")
		}
		h, err := ParseEnvelopeHeader(enc)
		if err != nil {
			t.Fatal(err)
		}
		hdr = h
	})
	if allocs != 0 {
		t.Fatalf("envelope header read allocates %.1f times per envelope, want 0", allocs)
	}
	if hdr.Seq != 23 {
		t.Fatalf("parsed seq %d, want 23", hdr.Seq)
	}
}
