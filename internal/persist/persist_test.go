package persist

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

func sample() *Snapshot {
	return &Snapshot{
		SpecHash: 0xDEADBEEFCAFEF00D,
		Round:    7,
		HasUsers: true,
		Shards: []Shard{
			{
				Counts:  []int64{0, 3, -1, 1 << 40, 5},
				N:       12,
				Tallied: 12,
				Users: []User{
					{ID: 0, Reg: longitudinal.Registration{HashSeed: 99}, Reported: true},
					{ID: 5, Reg: longitudinal.Registration{Sampled: []int{1, 7, 3}}},
					{ID: 1 << 33, Reg: longitudinal.Registration{HashSeed: 1}, Reported: true},
				},
			},
			{Counts: []int64{2, 2, 2, 2, 2}, N: 2, Tallied: 2},
		},
	}
}

// reencode pins the canonical property: decode(encode(s)) == s and the
// re-encoding is byte-identical.
func reencode(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	enc, err := Append(nil, s)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	enc2, err := Append(nil, dec)
	if err != nil {
		t.Fatalf("re-Append: %v", err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoding differs: %x vs %x", enc, enc2)
	}
	return enc
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sample()
	enc := reencode(t, s)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SpecHash != s.SpecHash || dec.Round != s.Round || !dec.HasUsers {
		t.Fatalf("header mismatch: %+v", dec)
	}
	if len(dec.Shards) != len(s.Shards) {
		t.Fatalf("%d shards, want %d", len(dec.Shards), len(s.Shards))
	}
	for i := range s.Shards {
		want, got := &s.Shards[i], &dec.Shards[i]
		if got.N != want.N || got.Tallied != want.Tallied {
			t.Fatalf("shard %d counters: %+v, want %+v", i, got, want)
		}
		if !bytes.Equal(int64Bytes(got.Counts), int64Bytes(want.Counts)) {
			t.Fatalf("shard %d counts: %v, want %v", i, got.Counts, want.Counts)
		}
		if len(got.Users) != len(want.Users) {
			t.Fatalf("shard %d: %d users, want %d", i, len(got.Users), len(want.Users))
		}
		for ui := range want.Users {
			w, g := want.Users[ui], got.Users[ui]
			if g.ID != w.ID || g.Reported != w.Reported || g.Reg.HashSeed != w.Reg.HashSeed ||
				len(g.Reg.Sampled) != len(w.Reg.Sampled) {
				t.Fatalf("shard %d user %d: %+v, want %+v", i, ui, g, w)
			}
		}
	}
	if dec.Reports() != 14 {
		t.Fatalf("Reports() = %d, want 14", dec.Reports())
	}
}

func int64Bytes(v []int64) []byte {
	var b []byte
	for _, x := range v {
		b = binary.LittleEndian.AppendUint64(b, uint64(x))
	}
	return b
}

func TestSnapshotTallyOnly(t *testing.T) {
	s := &Snapshot{SpecHash: 1, Round: 0, Shards: []Shard{{Counts: []int64{1, 2}, N: 3, Tallied: 3}}}
	enc := reencode(t, s)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.HasUsers || dec.Shards[0].Users != nil {
		t.Fatalf("tally-only snapshot decoded users: %+v", dec.Shards[0])
	}
}

// TestSnapshotEmptyTableRoundTrips pins that HasUsers survives an empty
// registration table — a freshly started daemon snapshotting before any
// enrollment must restore as "with users", not silently flip tally-only.
func TestSnapshotEmptyTableRoundTrips(t *testing.T) {
	s := &Snapshot{SpecHash: 1, HasUsers: true, Shards: []Shard{{Counts: []int64{0}}}}
	dec, err := Decode(reencode(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.HasUsers {
		t.Fatal("HasUsers lost on an empty table")
	}
}

func TestSnapshotEncodeRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Snapshot)
		want string
	}{
		{"negative round", func(s *Snapshot) { s.Round = -1 }, "round"},
		{"no shards", func(s *Snapshot) { s.Shards = nil }, "shard sections"},
		{"negative n", func(s *Snapshot) { s.Shards[0].N = -1 }, "negative report counters"},
		{"unsorted users", func(s *Snapshot) { s.Shards[0].Users[1].ID = 0 }, "strictly ascending"},
		{"negative user ID", func(s *Snapshot) { s.Shards[0].Users[0].ID = -2 }, "negative"},
		{"users in tally-only", func(s *Snapshot) { s.HasUsers = false }, "tally-only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sample()
			tc.mut(s)
			if _, err := Append(nil, s); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestSnapshotDecodeRejections(t *testing.T) {
	enc, err := Append(nil, sample())
	if err != nil {
		t.Fatal(err)
	}
	recrc := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		return b
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"empty", func(b []byte) []byte { return nil }, "short snapshot"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return recrc(b) }, "bad magic"},
		{"flipped bit", func(b []byte) []byte { b[9] ^= 1; return b }, "checksum"},
		{"unknown flags", func(b []byte) []byte { b[20] |= 4; return recrc(b) }, "unknown flags"},
		{"ledger flag without section", func(b []byte) []byte { b[20] |= 2; return recrc(b) }, "ledger"},
		{"zero shards", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 0)
			return recrc(b)
		}, "shards"},
		{"hostile shard count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:], 1<<15)
			return recrc(b)
		}, "shard sections need"},
		{"truncated", func(b []byte) []byte { return recrc(b[:len(b)-8]) }, "shard"},
		{"trailing bytes", func(b []byte) []byte {
			return recrc(append(b[:len(b)-4], 0, 0, 0, 0, 0, 0, 0, 0))
		}, "trailing"},
		{"hostile tally length", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerBytes:], 1<<27)
			return recrc(b)
		}, "counts need"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), enc...))
			if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func ledgerSample() *Snapshot {
	s := sample()
	s.HasLedger = true
	s.Ledger = []LedgerEntry{
		{Leaf: "leaf-a", Seq: 17, Round: 6, Reports: 1200, Dups: 3},
		{Leaf: "leaf-b", Seq: 9, Round: 7, Reports: 801, Dups: 0},
	}
	return s
}

func TestSnapshotLedgerRoundTrip(t *testing.T) {
	s := ledgerSample()
	dec, err := Decode(reencode(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.HasLedger || len(dec.Ledger) != len(s.Ledger) {
		t.Fatalf("ledger lost: HasLedger=%v entries=%d", dec.HasLedger, len(dec.Ledger))
	}
	for i, want := range s.Ledger {
		if dec.Ledger[i] != want {
			t.Fatalf("ledger[%d] = %+v, want %+v", i, dec.Ledger[i], want)
		}
	}
}

// TestSnapshotEmptyLedgerRoundTrips pins that HasLedger survives an empty
// ledger — a root snapshotting before its first merge must restore as a
// root, and the flag must stay distinguishable from a plain leaf image.
func TestSnapshotEmptyLedgerRoundTrips(t *testing.T) {
	s := &Snapshot{SpecHash: 1, HasLedger: true, Shards: []Shard{{Counts: []int64{0}}}}
	dec, err := Decode(reencode(t, s))
	if err != nil {
		t.Fatal(err)
	}
	if !dec.HasLedger {
		t.Fatal("HasLedger lost on an empty ledger")
	}
}

func TestSnapshotLedgerEncodeRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Snapshot)
		want string
	}{
		{"ledger without flag", func(s *Snapshot) { s.HasLedger = false }, "without HasLedger"},
		{"empty leaf name", func(s *Snapshot) { s.Ledger[0].Leaf = "" }, "leaf-name length"},
		{"oversize leaf name", func(s *Snapshot) { s.Ledger[0].Leaf = strings.Repeat("x", 256) }, "leaf-name length"},
		{"unsorted leaves", func(s *Snapshot) { s.Ledger[1].Leaf = "leaf-a" }, "strictly ascending"},
		{"negative entry round", func(s *Snapshot) { s.Ledger[0].Round = -1 }, "round"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := ledgerSample()
			tc.mut(s)
			if _, err := Append(nil, s); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestSnapshotLedgerDecodeRejections(t *testing.T) {
	enc, err := Append(nil, ledgerSample())
	if err != nil {
		t.Fatal(err)
	}
	recrc := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.ChecksumIEEE(b[:len(b)-4]))
		return b
	}
	// The ledger section starts right after the shard sections; its entry
	// count is the first u32 there.
	countOff := len(enc) - crcBytes
	for i := len(ledgerSample().Ledger) - 1; i >= 0; i-- {
		e := ledgerSample().Ledger[i]
		countOff -= ledgerFixedBytes + len(e.Leaf)
	}
	countOff -= 4
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"hostile entry count", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[countOff:], 1<<30)
			return recrc(b)
		}, "entries need"},
		{"truncated entry", func(b []byte) []byte { return recrc(b[:len(b)-6]) }, "ledger"},
		{"empty entry name", func(b []byte) []byte { b[countOff+4] = 0; return recrc(b) }, "leaf name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mut(append([]byte(nil), enc...))
			if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestSnapshotWriteRead(t *testing.T) {
	var buf bytes.Buffer
	s := sample()
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	dec, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SpecHash != s.SpecHash || dec.Round != s.Round {
		t.Fatalf("Read: %+v", dec)
	}
}
