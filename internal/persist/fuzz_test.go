package persist

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// FuzzSnapshotDecode drives the snapshot decoder with hostile bytes: a
// malformed image must error without panicking or over-allocating, and a
// successfully decoded image must re-encode byte-identically (the
// canonical-form contract every other codec in this repository pins).
func FuzzSnapshotDecode(f *testing.F) {
	seed, err := Append(nil, &Snapshot{
		SpecHash: 42,
		Round:    3,
		HasUsers: true,
		Shards: []Shard{
			{
				Counts:  []int64{1, -2, 3},
				N:       2,
				Tallied: 2,
				Users: []User{
					{ID: 1, Reg: longitudinal.Registration{HashSeed: 9}, Reported: true},
					{ID: 4, Reg: longitudinal.Registration{Sampled: []int{0, 2}}},
				},
			},
			{Counts: []int64{0, 0, 0}},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add([]byte(Magic))
	trunc := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(trunc[16:], 1<<14) // hostile shard count
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Append(nil, s)
		if err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("valid image is not canonical:\n in %x\nout %x", data, enc)
		}
	})
}
