package persist

import (
	"bytes"
	"encoding/binary"
	"testing"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// FuzzSnapshotDecode drives the snapshot decoder with hostile bytes: a
// malformed image must error without panicking or over-allocating, and a
// successfully decoded image must re-encode byte-identically (the
// canonical-form contract every other codec in this repository pins).
func FuzzSnapshotDecode(f *testing.F) {
	seed, err := Append(nil, &Snapshot{
		SpecHash: 42,
		Round:    3,
		HasUsers: true,
		Shards: []Shard{
			{
				Counts:  []int64{1, -2, 3},
				N:       2,
				Tallied: 2,
				Users: []User{
					{ID: 1, Reg: longitudinal.Registration{HashSeed: 9}, Reported: true},
					{ID: 4, Reg: longitudinal.Registration{Sampled: []int{0, 2}}},
				},
			},
			{Counts: []int64{0, 0, 0}},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-5])
	f.Add([]byte(Magic))
	trunc := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(trunc[16:], 1<<14) // hostile shard count
	f.Add(trunc)
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Append(nil, s)
		if err != nil {
			t.Fatalf("decoded snapshot does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("valid image is not canonical:\n in %x\nout %x", data, enc)
		}
	})
}

// FuzzMergeEnvelope drives the LME1 envelope decoder — the bytes a root
// accepts from the network — with hostile input: malformed envelopes must
// error cleanly, the zero-copy header parse must agree with the full
// decode about validity of the framing, and a valid envelope must
// re-encode byte-identically.
func FuzzMergeEnvelope(f *testing.F) {
	snap := &Snapshot{
		SpecHash:  7,
		Round:     2,
		HasLedger: true,
		Shards:    []Shard{{Counts: []int64{4, 0, -1}, N: 3, Tallied: 3}},
		Ledger:    []LedgerEntry{{Leaf: "a", Seq: 5, Round: 1, Reports: 10}},
	}
	seed, err := AppendEnvelope(nil, &Envelope{Leaf: "leaf-0", Round: 2, Seq: 6, Snap: snap})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte(EnvelopeMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, herr := ParseEnvelopeHeader(data)
		env, derr := DecodeEnvelope(data)
		if herr != nil {
			if derr == nil {
				t.Fatalf("full decode accepted framing the header parse rejected: %v", herr)
			}
			return
		}
		if derr != nil {
			// Framing valid, inner image bad — the dedup fast path.
			return
		}
		if string(h.Leaf) != env.Leaf || h.Round != env.Round || h.Seq != env.Seq {
			t.Fatalf("header view %+v disagrees with decode %+v", h, env)
		}
		enc, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("valid envelope is not canonical:\n in %x\nout %x", data, enc)
		}
	})
}
