// Package persist is the durability codec of the collection service: a
// versioned binary snapshot format (LSS1) carrying a stream's open-round
// state — per-shard tally counts plus, optionally, the registration
// tables memoized clients depend on. The same wire form serves two jobs:
//
//   - Crash recovery: cmd/lolohad writes periodic and on-SIGTERM
//     snapshots; a restart restores enrollment, reported bits and tallies
//     so the interrupted round ends bit-identically to an uninterrupted
//     one (tallies are integer counts, so nothing is approximated).
//   - The collector tree: a leaf daemon exports its round tallies as a
//     one-shard, tally-only snapshot and ships it to the root inside a
//     merge frame (netserver FrameMerge / POST /v1/merge). Integer adds
//     commute, so the root's estimates match a single-node run exactly.
//
// Layout (all fixed-width integers little-endian):
//
//	u32  magic "LSS1"
//	u64  spec hash (longitudinal.SpecHashOf of the producing protocol)
//	u32  round (0-based index of the open round the tallies belong to)
//	u32  shard count S
//	u32  flags (bit 0: registration sections present)
//	S ×  shard section:
//	       u32      L — tally length (the aggregator's count-vector size)
//	       u64      n — reports behind the tallies
//	       u64      tallied — reports tallied through the shard this round
//	       L ×      zigzag uvarint count
//	       if flags&1:
//	         u32    U — enrolled user count
//	         U ×    uvarint user-ID delta (first absolute, then gap to the
//	                previous ID, so IDs are strictly ascending) ++
//	                longitudinal.AppendRegistration bytes
//	         ⌈U/8⌉  reported bitset, bit i = i-th user reported this round
//	if flags&2 (collector-tree ledger, strictly ascending by leaf name):
//	  u32  E — ledger entry count
//	  E ×  u8 leaf-name length ++ name ++ u64 applied seq ++ u32 applied
//	       round ++ u64 reports merged ++ u64 duplicates suppressed
//	u32  CRC32 (IEEE) of every preceding byte
//
// The encoding is canonical: a Snapshot has exactly one encoding (user
// IDs must ascend strictly) and every valid encoding re-encodes to the
// same bytes. Trailing bytes, a bad CRC, unsorted IDs and truncated
// sections are all decode errors, and every length is validated against
// the bytes actually present before any allocation it sizes — hostile
// headers cannot force a large allocation.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// Magic is the 4-byte header of every snapshot: "LSS1" (Loloha Stream
// Snapshot, version 1).
const Magic = "LSS1"

const (
	// headerBytes is the fixed prefix: magic + spec hash + round + shard
	// count + flags.
	headerBytes = 4 + 8 + 4 + 4 + 4
	// shardFixedBytes is the fixed prefix of one shard section.
	shardFixedBytes = 4 + 8 + 8
	// crcBytes is the trailing checksum.
	crcBytes = 4

	// flagUsers marks snapshots carrying registration sections. A leaf's
	// merge payload omits them: the root never owns a leaf's users, only
	// its tallies.
	flagUsers = 1
	// flagLedger marks snapshots carrying the collector-tree ledger: the
	// root's per-leaf applied-envelope watermarks. The ledger rides the
	// same image as the tallies, so a restored root cannot disagree with
	// itself about which envelopes its counts already contain.
	flagLedger = 2

	// ledgerFixedBytes is one ledger entry minus its name: length byte +
	// seq + round + reports + duplicates.
	ledgerFixedBytes = 1 + 8 + 4 + 8 + 8

	// MaxShards bounds the shard count a decoder will accept; far above
	// any real stream (shards default to the CPU count) while keeping a
	// hostile header from looking plausible.
	MaxShards = 1 << 16
	// MaxTallyLen bounds one shard's tally length (the protocol's domain
	// size k, or b for bucketed protocols).
	MaxTallyLen = 1 << 28
)

// User is one enrolled user: identity, enrollment metadata and whether
// the user already reported in the snapshotted round (so a restored
// stream keeps rejecting the duplicate).
type User struct {
	ID       int
	Reg      longitudinal.Registration
	Reported bool
}

// Shard is one shard section: the open round's tally state plus the
// shard's registration table (Users is nil in tally-only snapshots).
type Shard struct {
	// Counts is the aggregator's exported support-count vector.
	Counts []int64
	// N is the report count behind Counts (SnapshotTallier's n).
	N int
	// Tallied is the shard's reports-this-round counter (Stream.Pending).
	Tallied int
	// Users is the shard's registration table in ascending-ID order; nil
	// when the snapshot carries tallies only.
	Users []User
}

// LedgerEntry is one leaf's applied-envelope watermark in the root's
// dedup ledger: every envelope with Seq ≤ the recorded Seq is already in
// the root's tallies and must be acknowledged without being reapplied.
type LedgerEntry struct {
	// Leaf is the shipping leaf's stable identity (Envelope.Leaf).
	Leaf string
	// Seq is the highest envelope sequence number applied from the leaf.
	Seq uint64
	// Round is the leaf-local round of that envelope (attribution).
	Round int
	// Reports counts reports merged from the leaf, cumulatively.
	Reports uint64
	// Dups counts duplicate envelopes suppressed — the observable proof
	// that the at-least-once transport never double-counted.
	Dups uint64
}

// Snapshot is the decoded form of one LSS1 image.
type Snapshot struct {
	// SpecHash fingerprints the producing protocol's configuration;
	// restore and merge reject a snapshot whose hash disagrees with the
	// consuming stream's (server.ErrSnapshotMismatch).
	SpecHash uint64
	// Round is the 0-based index of the open round the tallies belong to.
	Round int
	// HasUsers records whether registration sections were encoded; it is
	// set independently of len(Users) so an empty table round-trips.
	HasUsers bool
	// HasLedger records whether the collector-tree ledger section was
	// encoded, independently of len(Ledger) so an empty ledger
	// round-trips.
	HasLedger bool
	// Shards holds one section per stream shard.
	Shards []Shard
	// Ledger holds the root's per-leaf applied-envelope watermarks in
	// strictly ascending leaf-name order; nil without HasLedger.
	Ledger []LedgerEntry
}

// Reports returns the total reports tallied into the snapshotted round,
// summed over shards.
func (s *Snapshot) Reports() int {
	total := 0
	for i := range s.Shards {
		total += s.Shards[i].Tallied
	}
	return total
}

// zigzag maps a signed count onto the uvarint domain (LSB = sign), the
// same scheme as the columnar codec's ID deltas.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarint reads one minimally-encoded uvarint. Rejecting non-minimal
// forms (a value padded with continuation bytes) keeps the format
// canonical at the byte level: FuzzSnapshotDecode re-encodes every valid
// image and demands identity.
func uvarint(src []byte) (uint64, int, error) {
	v, w := binary.Uvarint(src)
	if w <= 0 {
		return 0, 0, fmt.Errorf("truncated or oversize varint")
	}
	if w > 1 && v < 1<<(7*uint(w-1)) {
		return 0, 0, fmt.Errorf("non-minimal varint encoding")
	}
	return v, w, nil
}

// Append appends the canonical encoding of s to dst and returns the
// extended buffer. It errors (dst unmodified) when s is not encodable:
// negative round/N/Tallied, out-of-range lengths, unsorted or negative
// user IDs, or a registration AppendRegistration rejects.
func Append(dst []byte, s *Snapshot) ([]byte, error) {
	if err := validateEncodable(s); err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, Magic...)
	dst = binary.LittleEndian.AppendUint64(dst, s.SpecHash)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Round))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Shards)))
	var flags uint32
	if s.HasUsers {
		flags |= flagUsers
	}
	if s.HasLedger {
		flags |= flagLedger
	}
	dst = binary.LittleEndian.AppendUint32(dst, flags)
	for i := range s.Shards {
		sh := &s.Shards[i]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sh.Counts)))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(sh.N))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(sh.Tallied))
		for _, c := range sh.Counts {
			dst = binary.AppendUvarint(dst, zigzag(c))
		}
		if !s.HasUsers {
			continue
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sh.Users)))
		prev := 0
		for ui := range sh.Users {
			u := &sh.Users[ui]
			delta := u.ID
			if ui > 0 {
				delta = u.ID - prev
			}
			prev = u.ID
			dst = binary.AppendUvarint(dst, uint64(delta))
			var err error
			dst, err = longitudinal.AppendRegistration(dst, u.Reg)
			if err != nil {
				return dst[:start], err
			}
		}
		base := len(dst)
		dst = append(dst, make([]byte, (len(sh.Users)+7)/8)...)
		for ui := range sh.Users {
			if sh.Users[ui].Reported {
				dst[base+ui/8] |= 1 << (uint(ui) % 8)
			}
		}
	}
	if s.HasLedger {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s.Ledger)))
		for i := range s.Ledger {
			e := &s.Ledger[i]
			dst = append(dst, byte(len(e.Leaf)))
			dst = append(dst, e.Leaf...)
			dst = binary.LittleEndian.AppendUint64(dst, e.Seq)
			dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Round))
			dst = binary.LittleEndian.AppendUint64(dst, e.Reports)
			dst = binary.LittleEndian.AppendUint64(dst, e.Dups)
		}
	}
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:])), nil
}

// validateEncodable rejects snapshots outside the wire's value ranges
// before any byte is appended.
func validateEncodable(s *Snapshot) error {
	if s.Round < 0 || int64(s.Round) > math.MaxUint32 {
		return fmt.Errorf("persist: round %d outside wire range", s.Round)
	}
	if len(s.Shards) == 0 || len(s.Shards) > MaxShards {
		return fmt.Errorf("persist: %d shard sections, want 1..%d", len(s.Shards), MaxShards)
	}
	for i := range s.Shards {
		sh := &s.Shards[i]
		if len(sh.Counts) > MaxTallyLen {
			return fmt.Errorf("persist: shard %d tally length %d exceeds %d", i, len(sh.Counts), MaxTallyLen)
		}
		if sh.N < 0 || sh.Tallied < 0 {
			return fmt.Errorf("persist: shard %d has negative report counters (n=%d, tallied=%d)", i, sh.N, sh.Tallied)
		}
		if !s.HasUsers {
			if len(sh.Users) != 0 {
				return fmt.Errorf("persist: shard %d carries %d users in a tally-only snapshot", i, len(sh.Users))
			}
			continue
		}
		prev := -1
		for ui := range sh.Users {
			id := sh.Users[ui].ID
			if id < 0 {
				return fmt.Errorf("persist: shard %d user ID %d negative", i, id)
			}
			if id <= prev {
				return fmt.Errorf("persist: shard %d user IDs not strictly ascending (%d after %d)", i, id, prev)
			}
			prev = id
		}
	}
	if !s.HasLedger {
		if len(s.Ledger) != 0 {
			return fmt.Errorf("persist: %d ledger entries in a snapshot without HasLedger", len(s.Ledger))
		}
		return nil
	}
	prevName := ""
	for i := range s.Ledger {
		e := &s.Ledger[i]
		if len(e.Leaf) == 0 || len(e.Leaf) > MaxLeafName {
			return fmt.Errorf("persist: ledger entry %d leaf-name length %d, want 1..%d", i, len(e.Leaf), MaxLeafName)
		}
		if i > 0 && e.Leaf <= prevName {
			return fmt.Errorf("persist: ledger leaf names not strictly ascending (%q after %q)", e.Leaf, prevName)
		}
		prevName = e.Leaf
		if e.Round < 0 || int64(e.Round) > math.MaxUint32 {
			return fmt.Errorf("persist: ledger entry %q round %d outside wire range", e.Leaf, e.Round)
		}
	}
	return nil
}

// Decode decodes one canonical snapshot image. The returned snapshot
// shares nothing with src. Truncation, a bad magic or CRC, out-of-range
// lengths, unsorted user IDs and trailing bytes are all errors; every
// length is checked against the bytes present before the allocation it
// sizes.
func Decode(src []byte) (*Snapshot, error) {
	if len(src) < headerBytes+crcBytes {
		return nil, fmt.Errorf("persist: short snapshot: %d bytes, want at least %d", len(src), headerBytes+crcBytes)
	}
	if string(src[:4]) != Magic {
		return nil, fmt.Errorf("persist: bad magic %q, want %q", src[:4], Magic)
	}
	body, tail := src[:len(src)-crcBytes], src[len(src)-crcBytes:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("persist: checksum %#08x, header says %#08x", got, want)
	}
	s := &Snapshot{
		SpecHash: binary.LittleEndian.Uint64(src[4:]),
		Round:    int(binary.LittleEndian.Uint32(src[12:])),
	}
	shards := binary.LittleEndian.Uint32(src[16:])
	flags := binary.LittleEndian.Uint32(src[20:])
	if flags&^uint32(flagUsers|flagLedger) != 0 {
		return nil, fmt.Errorf("persist: unknown flags %#x", flags)
	}
	s.HasUsers = flags&flagUsers != 0
	s.HasLedger = flags&flagLedger != 0
	if shards == 0 || shards > MaxShards {
		return nil, fmt.Errorf("persist: snapshot claims %d shards, want 1..%d", shards, MaxShards)
	}
	rest := body[headerBytes:]
	// Each shard section costs at least its fixed prefix; checking the
	// total up front keeps a hostile count from sizing the slice.
	if uint64(len(rest)) < uint64(shards)*shardFixedBytes {
		return nil, fmt.Errorf("persist: %d shard sections need %d bytes, have %d",
			shards, uint64(shards)*shardFixedBytes, len(rest))
	}
	s.Shards = make([]Shard, shards)
	for i := range s.Shards {
		var err error
		rest, err = decodeShard(rest, &s.Shards[i], s.HasUsers)
		if err != nil {
			return nil, fmt.Errorf("persist: shard %d: %w", i, err)
		}
	}
	if s.HasLedger {
		var err error
		rest, err = decodeLedger(rest, s)
		if err != nil {
			return nil, fmt.Errorf("persist: ledger: %w", err)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("persist: %d trailing bytes after the last section", len(rest))
	}
	return s, nil
}

// decodeLedger decodes the collector-tree ledger section into s.Ledger.
func decodeLedger(src []byte, s *Snapshot) ([]byte, error) {
	if len(src) < 4 {
		return nil, fmt.Errorf("truncated entry count")
	}
	entries := binary.LittleEndian.Uint32(src)
	rest := src[4:]
	// Every entry costs at least its fixed prefix plus a one-byte name;
	// checking the total up front keeps a hostile count from sizing the
	// slice.
	if uint64(len(rest)) < uint64(entries)*(ledgerFixedBytes+1) {
		return nil, fmt.Errorf("%d entries need at least %d bytes, have %d",
			entries, uint64(entries)*(ledgerFixedBytes+1), len(rest))
	}
	if entries > 0 {
		s.Ledger = make([]LedgerEntry, entries)
	}
	prev := ""
	for i := range s.Ledger {
		if len(rest) < 1 {
			return nil, fmt.Errorf("truncated entry %d", i)
		}
		nameLen := int(rest[0])
		if nameLen == 0 {
			return nil, fmt.Errorf("entry %d has an empty leaf name", i)
		}
		if len(rest) < ledgerFixedBytes+nameLen {
			return nil, fmt.Errorf("truncated entry %d", i)
		}
		e := &s.Ledger[i]
		e.Leaf = string(rest[1 : 1+nameLen])
		if i > 0 && e.Leaf <= prev {
			return nil, fmt.Errorf("leaf names not strictly ascending (%q after %q)", e.Leaf, prev)
		}
		prev = e.Leaf
		rest = rest[1+nameLen:]
		e.Seq = binary.LittleEndian.Uint64(rest)
		e.Round = int(binary.LittleEndian.Uint32(rest[8:]))
		e.Reports = binary.LittleEndian.Uint64(rest[12:])
		e.Dups = binary.LittleEndian.Uint64(rest[20:])
		rest = rest[28:]
	}
	return rest, nil
}

func decodeShard(src []byte, sh *Shard, hasUsers bool) ([]byte, error) {
	if len(src) < shardFixedBytes {
		return nil, fmt.Errorf("truncated section header: %d bytes", len(src))
	}
	tallyLen := binary.LittleEndian.Uint32(src)
	n := binary.LittleEndian.Uint64(src[4:])
	tallied := binary.LittleEndian.Uint64(src[12:])
	if tallyLen > MaxTallyLen {
		return nil, fmt.Errorf("tally length %d exceeds %d", tallyLen, MaxTallyLen)
	}
	if n > math.MaxInt64 || tallied > math.MaxInt64 {
		return nil, fmt.Errorf("report counters out of range (n=%d, tallied=%d)", n, tallied)
	}
	rest := src[shardFixedBytes:]
	// A varint count occupies at least one byte: the remaining length
	// bounds the element count before the slice is sized.
	if uint64(len(rest)) < uint64(tallyLen) {
		return nil, fmt.Errorf("%d counts need at least %d bytes, have %d", tallyLen, tallyLen, len(rest))
	}
	sh.N, sh.Tallied = int(n), int(tallied)
	if tallyLen > 0 {
		sh.Counts = make([]int64, tallyLen)
	}
	for i := range sh.Counts {
		u, w, err := uvarint(rest)
		if err != nil {
			return nil, fmt.Errorf("count %d: %w", i, err)
		}
		sh.Counts[i] = unzigzag(u)
		rest = rest[w:]
	}
	if !hasUsers {
		return rest, nil
	}
	if len(rest) < 4 {
		return nil, fmt.Errorf("truncated user count")
	}
	users := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	// Every user record is at least a one-byte delta plus the 12-byte
	// fixed registration prefix, and the bitset follows.
	minBytes := uint64(users)*13 + (uint64(users)+7)/8
	if uint64(len(rest)) < minBytes {
		return nil, fmt.Errorf("%d user records need at least %d bytes, have %d", users, minBytes, len(rest))
	}
	if users > 0 {
		sh.Users = make([]User, users)
	}
	prev := -1
	for i := range sh.Users {
		delta, w, err := uvarint(rest)
		if err != nil || delta > math.MaxInt {
			return nil, fmt.Errorf("user-ID delta %d truncated or oversize", i)
		}
		rest = rest[w:]
		id := int(delta)
		if i > 0 {
			if delta == 0 {
				return nil, fmt.Errorf("user IDs not strictly ascending at record %d", i)
			}
			id = prev + int(delta)
			if id < prev { // overflow
				return nil, fmt.Errorf("user-ID overflow at record %d", i)
			}
		}
		prev = id
		sh.Users[i].ID = id
		sh.Users[i].Reg, rest, err = longitudinal.DecodeRegistration(rest)
		if err != nil {
			return nil, fmt.Errorf("user record %d: %w", i, err)
		}
	}
	bitBytes := int(users+7) / 8
	if len(rest) < bitBytes {
		return nil, fmt.Errorf("truncated reported bitset: %d bytes, want %d", len(rest), bitBytes)
	}
	for i := range sh.Users {
		sh.Users[i].Reported = rest[i/8]>>(uint(i)%8)&1 == 1
	}
	// Canonical form: bits past the last user must be zero, or two
	// distinct encodings would decode to the same snapshot.
	for i := int(users); i < bitBytes*8; i++ {
		if rest[i/8]>>(uint(i)%8)&1 == 1 {
			return nil, fmt.Errorf("nonzero padding bit %d in reported bitset", i)
		}
	}
	return rest[bitBytes:], nil
}

// Write writes the canonical encoding of s to w.
func Write(w io.Writer, s *Snapshot) error {
	buf, err := Append(nil, s)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Read decodes one snapshot image from r (consuming r to EOF; a snapshot
// file holds exactly one image).
func Read(r io.Reader) (*Snapshot, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("persist: reading snapshot: %w", err)
	}
	return Decode(buf)
}
