// Package attack implements the adversary models the paper evaluates:
//
//   - Change detection against dBitFlipPM (Table 2): because dBitFlipPM has
//     no instantaneous round, the server sees the memoized response itself;
//     a report that differs from the previous round's proves the user's
//     bucket changed. The paper measures the percentage of users for whom
//     *all* bucket-change points were detected this way.
//
//   - The averaging attack against naive re-randomization (§2.4): without
//     memoization, fresh noise at every round lets the server average
//     reports and recover the user's value — the reason memoization exists.
package attack

import (
	"fmt"

	"github.com/loloha-ldp/loloha/internal/freqoracle"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// DetectionResult summarizes a change-detection experiment over a cohort.
type DetectionResult struct {
	// Users is the cohort size.
	Users int
	// UsersWithChanges counts users whose bucket sequence changed at least
	// once (users with constant sequences are excluded from the rate, as a
	// "fully detected" claim is vacuous for them).
	UsersWithChanges int
	// FullyDetected counts users for whom every bucket-change point
	// produced a differing report.
	FullyDetected int
	// ChangePoints and DetectedPoints count individual change events.
	ChangePoints, DetectedPoints int
}

// FullyDetectedRate returns the Table 2 metric: the fraction of users (with
// at least one change) whose change points were all detected.
func (r DetectionResult) FullyDetectedRate() float64 {
	if r.UsersWithChanges == 0 {
		return 0
	}
	return float64(r.FullyDetected) / float64(r.UsersWithChanges)
}

// PointDetectionRate returns the fraction of individual change points that
// were detected.
func (r DetectionResult) PointDetectionRate() float64 {
	if r.ChangePoints == 0 {
		return 0
	}
	return float64(r.DetectedPoints) / float64(r.ChangePoints)
}

// DetectDBitFlipChanges runs the Table 2 worst-case adversary: it replays
// each user's value sequence through a dBitFlipPM client and compares
// consecutive reports. values[t][u] is user u's value at round t; seeds
// supplies one PRNG seed per user.
func DetectDBitFlipChanges(proto *longitudinal.DBitFlipPM, values [][]int, seedBase uint64) (DetectionResult, error) {
	if len(values) == 0 || len(values[0]) == 0 {
		return DetectionResult{}, fmt.Errorf("attack: empty value matrix")
	}
	tau := len(values)
	n := len(values[0])
	z := proto.Bucketizer()
	var res DetectionResult
	res.Users = n
	for u := 0; u < n; u++ {
		cl := proto.NewClient(randsrc.Derive(seedBase, uint64(u)))
		prevRep := cl.Report(values[0][u]).(longitudinal.DBitReport)
		prevBucket := z.Bucket(values[0][u])
		changed, allDetected := false, true
		for t := 1; t < tau; t++ {
			rep := cl.Report(values[t][u]).(longitudinal.DBitReport)
			bucket := z.Bucket(values[t][u])
			if bucket != prevBucket {
				changed = true
				res.ChangePoints++
				if !rep.Equal(prevRep) {
					res.DetectedPoints++
				} else {
					allDetected = false
				}
			}
			prevRep, prevBucket = rep, bucket
		}
		if changed {
			res.UsersWithChanges++
			if allDetected {
				res.FullyDetected++
			}
		}
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Averaging attack.

// AveragingAttack models the adversary of §2.4 against a *naively* repeated
// GRR randomizer (fresh noise each round, no memoization): after tau
// observations of the same true value it returns the maximum-likelihood
// value, the count of its observations, and whether the attack recovered
// the truth.
type AveragingAttack struct {
	grr *freqoracle.GRR
}

// NewAveragingAttack returns an attack against a GRR randomizer over
// domain size k at level eps.
func NewAveragingAttack(k int, eps float64) (*AveragingAttack, error) {
	grr, err := freqoracle.NewGRR(k, eps)
	if err != nil {
		return nil, err
	}
	return &AveragingAttack{grr: grr}, nil
}

// RunFresh simulates tau fresh randomizations of trueValue and returns the
// adversary's maximum-likelihood guess. With fresh noise the guess
// converges to the true value as tau grows (the attack succeeds).
func (a *AveragingAttack) RunFresh(trueValue, tau int, r *randsrc.Rand) int {
	counts := make([]int, a.grr.K())
	for t := 0; t < tau; t++ {
		counts[a.grr.Perturb(trueValue, r)]++
	}
	return argmax(counts)
}

// RunMemoized simulates the same adversary against a *memoized* randomizer:
// the response is drawn once and replayed, so the observation multiset is
// degenerate and the ML guess is just the memoized response — correct only
// with probability p, independent of tau (the attack fails to improve).
func (a *AveragingAttack) RunMemoized(trueValue, tau int, r *randsrc.Rand) int {
	memo := a.grr.Perturb(trueValue, r)
	counts := make([]int, a.grr.K())
	for t := 0; t < tau; t++ {
		counts[memo]++
	}
	return argmax(counts)
}

// SuccessRateFresh estimates the attack success probability over trials
// independent users with fresh randomization.
func (a *AveragingAttack) SuccessRateFresh(trueValue, tau, trials int, r *randsrc.Rand) float64 {
	wins := 0
	for i := 0; i < trials; i++ {
		if a.RunFresh(trueValue, tau, r) == trueValue {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}

// SuccessRateMemoized estimates the attack success probability against
// memoized responses; it stays pinned near the single-report keep
// probability p however large tau is.
func (a *AveragingAttack) SuccessRateMemoized(trueValue, tau, trials int, r *randsrc.Rand) float64 {
	wins := 0
	for i := 0; i < trials; i++ {
		if a.RunMemoized(trueValue, tau, r) == trueValue {
			wins++
		}
	}
	return float64(wins) / float64(trials)
}

func argmax(counts []int) int {
	best, bestC := 0, counts[0]
	for v, c := range counts {
		if c > bestC {
			best, bestC = v, c
		}
	}
	return best
}
