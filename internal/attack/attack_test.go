package attack

import (
	"testing"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/randsrc"
)

// synSequence builds a τ×n matrix of uniform values with change prob pch.
func synSequence(n, k, tau int, pch float64, seed uint64) [][]int {
	r := randsrc.NewSeeded(seed)
	values := make([][]int, tau)
	values[0] = make([]int, n)
	for u := range values[0] {
		values[0][u] = r.Intn(k)
	}
	for t := 1; t < tau; t++ {
		row := make([]int, n)
		for u := range row {
			if r.Bernoulli(pch) {
				row[u] = r.Intn(k)
			} else {
				row[u] = values[t-1][u]
			}
		}
		values[t] = row
	}
	return values
}

func TestDetectionFullSamplingIsTotal(t *testing.T) {
	// Table 2, d = b column: with every bucket sampled, two different
	// buckets share a memoized b-bit vector only with vanishing
	// probability, so essentially all changes are detected.
	const k, b = 60, 30
	proto, err := longitudinal.NewDBitFlipPM(k, b, b, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	values := synSequence(400, k, 25, 0.3, 11)
	res, err := DetectDBitFlipChanges(proto, values, 77)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsersWithChanges == 0 {
		t.Fatal("no users changed; test vacuous")
	}
	if rate := res.FullyDetectedRate(); rate < 0.95 {
		t.Errorf("d=b fully-detected rate %v, want ~1", rate)
	}
}

func TestDetectionSingleBitIsRare(t *testing.T) {
	// Table 2, d = 1 column: one memoized bit collides across buckets with
	// probability ~1/2 per change, so detecting *all* of a user's many
	// changes is rare.
	const k, b = 60, 30
	proto, err := longitudinal.NewDBitFlipPM(k, b, 1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	values := synSequence(400, k, 25, 0.3, 12)
	res, err := DetectDBitFlipChanges(proto, values, 78)
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.FullyDetectedRate(); rate > 0.05 {
		t.Errorf("d=1 fully-detected rate %v, want ~0", rate)
	}
	// Individual points are still detected about half the time.
	if pr := res.PointDetectionRate(); pr < 0.3 || pr > 0.7 {
		t.Errorf("d=1 point detection rate %v, want ~0.5", pr)
	}
}

func TestDetectionNoChangesNoDetections(t *testing.T) {
	proto, err := longitudinal.NewDBitFlipPM(40, 10, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Constant sequences: zero change points, zero users with changes.
	row := make([]int, 50)
	for u := range row {
		row[u] = u % 40
	}
	values := [][]int{row, row, row}
	res, err := DetectDBitFlipChanges(proto, values, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChangePoints != 0 || res.UsersWithChanges != 0 {
		t.Errorf("constant data produced %d change points", res.ChangePoints)
	}
	if res.FullyDetectedRate() != 0 {
		t.Error("vacuous full detection reported")
	}
}

func TestDetectionWithinBucketMovesInvisible(t *testing.T) {
	// Moves inside one bucket change nothing: no change points counted.
	proto, err := longitudinal.NewDBitFlipPM(100, 10, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket width is 10: values 0..9 share bucket 0.
	values := [][]int{
		make([]int, 30), make([]int, 30), make([]int, 30),
	}
	for u := 0; u < 30; u++ {
		values[0][u] = 0
		values[1][u] = 5 // same bucket
		values[2][u] = 9 // same bucket
	}
	res, err := DetectDBitFlipChanges(proto, values, 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChangePoints != 0 {
		t.Errorf("within-bucket moves produced %d change points", res.ChangePoints)
	}
}

func TestDetectionEmptyMatrixRejected(t *testing.T) {
	proto, _ := longitudinal.NewDBitFlipPM(10, 5, 2, 1)
	if _, err := DetectDBitFlipChanges(proto, nil, 1); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestAveragingAttackSucceedsOnFreshNoise(t *testing.T) {
	a, err := NewAveragingAttack(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := randsrc.NewSeeded(100)
	// With many repeated fresh randomizations the ML guess nails the value.
	rate := a.SuccessRateFresh(3, 200, 200, r)
	if rate < 0.99 {
		t.Errorf("fresh-noise attack success %v, want ~1", rate)
	}
}

func TestAveragingAttackDefeatedByMemoization(t *testing.T) {
	a, err := NewAveragingAttack(10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := randsrc.NewSeeded(101)
	// Memoization pins the attack at the single-report keep probability p,
	// no matter how many rounds the adversary observes.
	p := 2.718281828 / (2.718281828 + 9) // e^1/(e^1+k-1)
	rate := a.SuccessRateMemoized(3, 200, 3000, r)
	if rate > p+0.05 || rate < p-0.05 {
		t.Errorf("memoized attack success %v, want ~p = %v", rate, p)
	}
}

func TestAveragingAttackGapGrowsWithTau(t *testing.T) {
	a, err := NewAveragingAttack(8, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	r := randsrc.NewSeeded(102)
	short := a.SuccessRateFresh(2, 3, 1500, r)
	long := a.SuccessRateFresh(2, 100, 1500, r)
	if long <= short {
		t.Errorf("fresh attack did not improve with tau: %v -> %v", short, long)
	}
}
