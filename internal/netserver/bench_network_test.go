package netserver

// BenchmarkNetworkIngest measures what the socket boundary costs: one
// collection round (batch ingest + round close) per iteration, identical
// payloads pushed in-process, over loopback HTTP (/v1/reports batch
// bodies) and over loopback TCP (report frames + flush barrier).
// BENCH_network.json records the checked-in baseline.
//
//	go test -run xxx -bench NetworkIngest -benchmem ./internal/netserver

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

func BenchmarkNetworkIngest(b *testing.B) {
	for _, fam := range parityFamilies {
		for _, batch := range []int{256, 4096} {
			mkRound := func(b *testing.B) (*roundFixture, longitudinal.Protocol) {
				proto, err := fam.build()
				if err != nil {
					b.Fatal(err)
				}
				return newRoundFixture(b, proto, batch), proto
			}
			b.Run(fmt.Sprintf("%s/inproc/batch=%d", fam.name, batch), func(b *testing.B) {
				fx, proto := mkRound(b)
				stream := newTestStream(b, proto)
				fx.enrollDirect(b, stream)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := stream.IngestBatch(fx.ids, fx.payloads); err != nil {
						b.Fatal(err)
					}
					if res := stream.CloseRound(); res.Reports != batch {
						b.Fatalf("round tallied %d reports, want %d", res.Reports, batch)
					}
				}
				reportRate(b, batch)
			})
			b.Run(fmt.Sprintf("%s/http/batch=%d", fam.name, batch), func(b *testing.B) {
				fx, proto := mkRound(b)
				stream := newTestStream(b, proto)
				srv := newTestServer(b, stream, Config{})
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				fx.enrollDirect(b, stream)
				body := fx.batchBody()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp, err := http.Post(ts.URL+"/v1/reports", "application/octet-stream", bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("batch POST: status %d", resp.StatusCode)
					}
					if res := stream.CloseRound(); res.Reports != batch {
						b.Fatalf("round tallied %d reports, want %d", res.Reports, batch)
					}
				}
				reportRate(b, batch)
			})
			b.Run(fmt.Sprintf("%s/tcp/batch=%d", fam.name, batch), func(b *testing.B) {
				fx, proto := mkRound(b)
				stream := newTestStream(b, proto)
				srv := newTestServer(b, stream, Config{})
				conn := dialTCPServer(b, srv)
				fx.enrollDirect(b, stream)
				frames := fx.reportFrames()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := conn.Write(frames); err != nil {
						b.Fatal(err)
					}
					ack, err := ReadAck(conn)
					if err != nil {
						b.Fatal(err)
					}
					if ack.ReportRejected != 0 {
						b.Fatalf("ack = %+v: rejected reports", ack)
					}
					if res := stream.CloseRound(); res.Reports != batch {
						b.Fatalf("round tallied %d reports, want %d", res.Reports, batch)
					}
				}
				reportRate(b, batch)
			})
			b.Run(fmt.Sprintf("%s/http-columnar/batch=%d", fam.name, batch), func(b *testing.B) {
				fx, proto := mkRound(b)
				stream := newTestStream(b, proto)
				srv := newTestServer(b, stream, Config{})
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				fx.enrollDirect(b, stream)
				body := fx.columnarBody(b, proto)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					resp, err := http.Post(ts.URL+"/v1/reports", ContentTypeColumnar, bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("columnar POST: status %d", resp.StatusCode)
					}
					if res := stream.CloseRound(); res.Reports != batch {
						b.Fatalf("round tallied %d reports, want %d", res.Reports, batch)
					}
				}
				reportRate(b, batch)
			})
			b.Run(fmt.Sprintf("%s/tcp-columnar/batch=%d", fam.name, batch), func(b *testing.B) {
				fx, proto := mkRound(b)
				stream := newTestStream(b, proto)
				srv := newTestServer(b, stream, Config{})
				conn := dialTCPServer(b, srv)
				fx.enrollDirect(b, stream)
				frames := AppendFlushFrame(AppendColumnarFrame(nil, fx.columnarBody(b, proto)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := conn.Write(frames); err != nil {
						b.Fatal(err)
					}
					ack, err := ReadAck(conn)
					if err != nil {
						b.Fatal(err)
					}
					if ack.ReportRejected != 0 {
						b.Fatalf("ack = %+v: rejected reports", ack)
					}
					if res := stream.CloseRound(); res.Reports != batch {
						b.Fatalf("round tallied %d reports, want %d", res.Reports, batch)
					}
				}
				reportRate(b, batch)
			})
		}
	}
}

// roundFixture is one pre-generated round: n enrolled users, one payload
// each. Rounds close between iterations, so the same payload bytes
// re-tally every iteration — the steady-state shape of a collection round
// without per-iteration client work on the clock.
type roundFixture struct {
	ids      []int
	regs     []longitudinal.Registration
	payloads [][]byte
}

func newRoundFixture(b *testing.B, proto longitudinal.Protocol, n int) *roundFixture {
	b.Helper()
	fx := &roundFixture{
		ids:      make([]int, n),
		regs:     make([]longitudinal.Registration, n),
		payloads: make([][]byte, n),
	}
	for u := 0; u < n; u++ {
		cl, ok := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
		if !ok {
			b.Fatalf("%s client does not implement AppendReporter", proto.Name())
		}
		fx.ids[u] = u
		fx.regs[u] = cl.WireRegistration()
		fx.payloads[u] = cl.AppendReport(nil, u%proto.K())
	}
	return fx
}

func (fx *roundFixture) enrollDirect(b *testing.B, stream interface {
	Enroll(int, longitudinal.Registration) error
}) {
	b.Helper()
	for i, id := range fx.ids {
		if err := stream.Enroll(id, fx.regs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func (fx *roundFixture) batchBody() []byte {
	var body []byte
	for i, id := range fx.ids {
		body = AppendBatchRecord(body, id, fx.payloads[i])
	}
	return body
}

// columnarBody encodes the round as one columnar batch (steady-state
// form: no registration columns; enrollment happened via enrollDirect).
func (fx *roundFixture) columnarBody(b *testing.B, proto longitudinal.Protocol) []byte {
	b.Helper()
	stride, ok := longitudinal.ColumnarStrideOf(proto)
	if !ok {
		b.Fatalf("%s has no columnar stride", proto.Name())
	}
	w, err := longitudinal.NewColumnarWriter(longitudinal.SpecHashOf(proto), stride)
	if err != nil {
		b.Fatal(err)
	}
	for i, id := range fx.ids {
		if err := w.Add(id, fx.payloads[i]); err != nil {
			b.Fatal(err)
		}
	}
	return w.AppendTo(nil)
}

func (fx *roundFixture) reportFrames() []byte {
	var frames []byte
	for i, id := range fx.ids {
		frames = AppendReportFrame(frames, id, fx.payloads[i])
	}
	return AppendFlushFrame(frames)
}

func reportRate(b *testing.B, batch int) {
	b.Helper()
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "reports/s")
}
