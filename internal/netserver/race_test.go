//go:build race

package netserver

// raceEnabled reports that the race detector is instrumenting this build;
// alloc-pinning tests skip.
const raceEnabled = true
