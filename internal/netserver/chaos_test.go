package netserver

// The chaos parity gate: a collector tree whose every merge link runs
// through a fault-injecting proxy must still produce rounds bit-identical
// to a single fault-free stream — no report lost, none double-counted —
// for every fault mode, over both merge transports. The ack-side faults
// (black-hole, reset-after-apply) force the root to prove its dedup: the
// envelope WAS applied, the leaf retries anyway, and the only acceptable
// outcome is a duplicate ack observable in the root's counters.

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/loloha-ldp/loloha/internal/faultnet"
	"github.com/loloha-ldp/loloha/internal/server"
)

// chaosFault describes one fault mode's script and what it must provoke.
type chaosFault struct {
	name   string
	script faultnet.Script
	// applied reports whether the fault lets the root apply the envelope
	// while the shipper sees a failure — the modes that MUST surface
	// duplicates at the root.
	applied bool
	// retries reports whether the schedule forces at least one failed
	// ship attempt.
	retries bool
	// timeout is the merge client's per-ship budget. Generous by default
	// so a loaded CI machine cannot turn a survivable fault into an
	// unscripted timeout-after-apply (a duplicate the schedule did not
	// call for); BlackholeDown overrides it downward because waiting out
	// this timeout IS that fault's failure mode.
	timeout time.Duration
}

func chaosFaults() []chaosFault {
	return []chaosFault{
		{
			name:    "drop-conn",
			script:  faultnet.Script{Plan: []faultnet.Rule{{Fault: faultnet.DropConn}, {Fault: faultnet.DropConn}}},
			retries: true,
		},
		{
			name:   "delay",
			script: faultnet.Script{Default: faultnet.Rule{Fault: faultnet.Delay, Delay: 30 * time.Millisecond}},
		},
		{
			name: "truncate-mid-frame",
			script: faultnet.Script{Plan: []faultnet.Rule{
				{Fault: faultnet.TruncateUpstream, TruncateAfter: 10},
				{Fault: faultnet.TruncateUpstream, TruncateAfter: 23},
			}},
			retries: true,
		},
		{
			name:    "blackhole-ack",
			script:  faultnet.Script{Plan: []faultnet.Rule{{Fault: faultnet.BlackholeDown}}},
			applied: true,
			retries: true,
			timeout: 500 * time.Millisecond,
		},
		{
			name: "reset-after-apply",
			script: faultnet.Script{Plan: []faultnet.Rule{
				{Fault: faultnet.ResetAfterReply},
				{Fault: faultnet.ResetAfterReply},
			}},
			applied: true,
			retries: true,
		},
	}
}

func TestChaosParity(t *testing.T) {
	const (
		nleaves = 3
		users   = 48
		rounds  = 2
	)
	for _, transport := range []string{"tcp", "http"} {
		for _, fault := range chaosFaults() {
			t.Run(transport+"/"+fault.name, func(t *testing.T) {
				t.Parallel()
				proto, err := parityFamilies[0].build()
				if err != nil {
					t.Fatal(err)
				}
				ref := newTestStream(t, proto)
				rootStream := newTestStream(t, proto)
				rootSrv := newTestServer(t, rootStream, Config{AcceptMerges: true})

				// The merge target the proxies forward to: the raw-frame
				// listener or the HTTP API, same engine either way.
				var target string
				if transport == "tcp" {
					target = serveTCPAddr(t, rootSrv)
				} else {
					ts := httptest.NewServer(rootSrv.Handler())
					t.Cleanup(ts.Close)
					target = ts.Listener.Addr().String()
				}

				// Every leaf's merge link runs through its own faulty proxy
				// with the same script: K simultaneously-faulty leaves.
				leafStreams := make([]*server.Stream, nleaves)
				leafSrvs := make([]*Server, nleaves)
				for i := range leafStreams {
					leafStreams[i] = newTestStream(t, proto)
					proxy, err := faultnet.New(target, fault.script)
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { proxy.Close() })
					timeout := fault.timeout
					if timeout == 0 {
						timeout = 10 * time.Second
					}
					var up MergeSender
					if transport == "tcp" {
						if up, err = DialMerge(proxy.Addr(), timeout); err != nil {
							t.Fatal(err)
						}
					} else {
						up = NewHTTPMergeClient("http://"+proxy.Addr(), timeout)
					}
					t.Cleanup(func() { up.Close() })
					leafSrvs[i] = newTestServer(t, leafStreams[i], Config{
						Upstream:     up,
						LeafID:       fmt.Sprintf("leaf-%d", i),
						OutboxDir:    t.TempDir(),
						ShipRetryMin: 2 * time.Millisecond,
						ShipRetryMax: 20 * time.Millisecond,
					})
				}
				clients := treeClients(t, proto, ref, leafStreams, users)

				for round := 0; round < rounds; round++ {
					for u, cl := range clients {
						payload := cl.AppendReport(nil, (u*5+round)%proto.K())
						if err := ref.Ingest(u, payload); err != nil {
							t.Fatal(err)
						}
						if err := leafStreams[u%nleaves].Ingest(u, payload); err != nil {
							t.Fatal(err)
						}
					}
					refRes := ref.CloseRound()
					for i, srv := range leafSrvs {
						// The inline ship may fail under the fault; the round
						// must close locally regardless, with the envelope
						// spooled for the background shipper.
						if res, err := srv.closeRound(); res.Reports != users/nleaves {
							t.Fatalf("leaf %d round %d closed with %d reports (err %v), want %d",
								i, round, res.Reports, err, users/nleaves)
						}
					}
					for i, srv := range leafSrvs {
						if err := srv.FlushOutbox(30 * time.Second); err != nil {
							t.Fatalf("leaf %d round %d: %v", i, round, err)
						}
					}
					rootRes := rootStream.CloseRound()
					if rootRes.Reports != refRes.Reports {
						t.Fatalf("round %d: root holds %d reports, reference %d — lost or double-counted under %s",
							round, rootRes.Reports, refRes.Reports, fault.name)
					}
					if !sameFloats(rootRes.Raw, refRes.Raw) || !sameFloats(rootRes.Estimates, refRes.Estimates) {
						t.Fatalf("round %d: root estimates diverge from the fault-free single stream under %s",
							round, fault.name)
					}
				}

				if got := rootSrv.mergeReports.Load(); got != uint64(users*rounds) {
					t.Fatalf("root merged %d reports total, want exactly %d", got, users*rounds)
				}
				if fault.applied && rootSrv.mergeDup.Load() == 0 {
					t.Fatalf("%s applied envelopes behind lost acks but the root recorded no duplicates", fault.name)
				}
				if !fault.applied && rootSrv.mergeDup.Load() != 0 {
					t.Fatalf("%s never applied behind the leaf's back, yet the root recorded %d duplicates",
						fault.name, rootSrv.mergeDup.Load())
				}
				for i, srv := range leafSrvs {
					if fault.retries && srv.shipFailed.Load() == 0 {
						t.Fatalf("leaf %d never saw a failed ship under %s", i, fault.name)
					}
					if got := srv.shipped.Load(); got != rounds {
						t.Fatalf("leaf %d confirmed %d envelopes, want %d", i, got, rounds)
					}
					if n, _ := srv.outbox.stats(); n != 0 {
						t.Fatalf("leaf %d finished with %d unshipped envelopes", i, n)
					}
				}
			})
		}
	}
}
