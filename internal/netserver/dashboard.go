package netserver

import "net/http"

// The dashboard is one self-contained page: no build step, no external
// assets, served from this string so the daemon binary stays a single
// file. It polls /v1/status and subscribes to /v1/stream, rendering the
// latest round's estimates as bars plus a rolling round log.

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>lolohad — live collection</title>
<style>
  body { font: 14px/1.4 system-ui, sans-serif; margin: 2rem; color: #222; }
  h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
  code { background: #f2f2f2; padding: 0 .3em; }
  #stats { display: flex; gap: 2rem; flex-wrap: wrap; }
  #stats div { min-width: 8rem; }
  #stats b { display: block; font-size: 1.4rem; }
  .bar { height: 14px; background: #4a7db5; margin: 1px 0; }
  .bar span { font-size: 11px; padding-left: 4px; color: #fff; white-space: nowrap; }
  #rounds { border-collapse: collapse; }
  #rounds td, #rounds th { border: 1px solid #ddd; padding: .2em .6em; text-align: right; }
  #gap { color: #b00; }
</style>
</head>
<body>
<h1>lolohad — live longitudinal LDP collection</h1>
<div id="stats"></div>
<h2>Latest round estimates</h2>
<div id="bars">(waiting for a round…)</div>
<h2>Rounds <span id="gap"></span></h2>
<table id="rounds"><tr><th>round</th><th>reports</th><th>max estimate</th><th>sum</th></tr></table>
<script>
const fmt = x => x.toLocaleString();
let lastRound = -1;
async function status() {
  const s = await (await fetch('/v1/status')).json();
  document.getElementById('stats').innerHTML =
    '<div><b>' + s.protocol + '</b>protocol</div>' +
    '<div><b>' + fmt(s.enrolled) + '</b>enrolled</div>' +
    '<div><b>' + fmt(s.rounds) + '</b>rounds</div>' +
    '<div><b>' + fmt(s.pending) + '</b>pending reports</div>' +
    '<div><b>' + fmt(s.tcp.reports) + '</b>tcp reports</div>' +
    '<div><b>' + fmt(s.http.reports) + '</b>http reports</div>' +
    '<div><b>' + fmt(s.sse.clients) + '</b>sse clients</div>';
}
function onRound(r) {
  if (lastRound >= 0 && r.round !== lastRound + 1)
    document.getElementById('gap').textContent =
      '(missed rounds ' + (lastRound + 1) + '…' + (r.round - 1) + ' — slow subscriber)';
  lastRound = r.round;
  const est = r.estimates || [];
  const max = Math.max(1e-12, ...est);
  document.getElementById('bars').innerHTML = est.map((e, i) =>
    '<div class="bar" style="width:' + Math.max(0, e / max * 600) + 'px">' +
    '<span>' + i + ': ' + e.toFixed(4) + '</span></div>').join('');
  const tbl = document.getElementById('rounds');
  const row = tbl.insertRow(1);
  const sum = est.reduce((a, b) => a + b, 0);
  row.innerHTML = '<td>' + r.round + '</td><td>' + fmt(r.reports) + '</td><td>' +
    Math.max(...est, 0).toFixed(4) + '</td><td>' + sum.toFixed(4) + '</td>';
  while (tbl.rows.length > 21) tbl.deleteRow(21);
}
new EventSource('/v1/stream').addEventListener('round', ev => onRound(JSON.parse(ev.data)));
status(); setInterval(status, 2000);
</script>
</body>
</html>
`
