package netserver

// End-to-end parity: the same payload bytes pushed through the daemon's
// HTTP and TCP fronts — in per-report framing and in columnar batches —
// must produce rounds bit-identical to ingesting them in-process. The
// daemon adds transport, never arithmetic; TestEndToEndParity pins that
// for every registered protocol family over both wires and both body
// formats.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/server"
)

// parityFamilies is the compact matrix the benches use: a hash-seed
// family (BiLOLOHA) and a sampled-bucket family (dBitFlipPM) exercise
// both Registration fields. TestEndToEndParity goes wider and covers
// every registered family via paritySpec.
var parityFamilies = []struct {
	name  string
	build func() (longitudinal.Protocol, error)
}{
	{"BiLOLOHA", func() (longitudinal.Protocol, error) { return core.NewBinary(32, 2, 1) }},
	{"dBitFlipPM", func() (longitudinal.Protocol, error) { return longitudinal.NewDBitFlipPM(32, 8, 3, 2) }},
}

// paritySpec returns a feasible spec for every registered family so the
// end-to-end matrix automatically covers families added later.
func paritySpec(t *testing.T, family string, k int) longitudinal.ProtocolSpec {
	t.Helper()
	switch family {
	case "dBitFlipPM":
		return longitudinal.ProtocolSpec{Family: family, K: k, B: 8, D: 3, EpsInf: 2}
	case "1BitFlipPM", "bBitFlipPM":
		return longitudinal.ProtocolSpec{Family: family, K: k, B: 8, EpsInf: 2}
	case "LOLOHA":
		return longitudinal.ProtocolSpec{Family: family, K: k, G: 2, EpsInf: 2, Eps1: 1}
	case "RAPPOR", "L-OSUE", "L-OUE", "L-SOUE", "L-GRR", "BiLOLOHA", "OLOLOHA":
		return longitudinal.ProtocolSpec{Family: family, K: k, EpsInf: 2, Eps1: 1}
	default:
		t.Fatalf("no parity spec for registered family %q — add one", family)
		return longitudinal.ProtocolSpec{}
	}
}

func newTestStream(t testing.TB, proto longitudinal.Protocol) *server.Stream {
	return newTestStreamShards(t, proto, 4)
}

func newTestStreamShards(t testing.TB, proto longitudinal.Protocol, shards int) *server.Stream {
	t.Helper()
	s, err := server.NewStream(proto, server.WithShards(shards))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func newTestServer(t testing.TB, stream *server.Stream, cfg Config) *Server {
	t.Helper()
	cfg.Stream = stream
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// dialTCPServer attaches a raw-TCP front to srv and dials it.
func dialTCPServer(t testing.TB, srv *Server) net.Conn {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeTCP(l)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func postJSON(t testing.TB, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func flushAndAck(t testing.TB, conn net.Conn) Ack {
	t.Helper()
	if _, err := conn.Write(AppendFlushFrame(nil)); err != nil {
		t.Fatal(err)
	}
	ack, err := ReadAck(conn)
	if err != nil {
		t.Fatal(err)
	}
	return ack
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEndToEndParity(t *testing.T) {
	const k = 32
	for _, family := range longitudinal.Families() {
		spec := paritySpec(t, family, k)
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", family, shards), func(t *testing.T) {
				proto, err := spec.Build()
				if err != nil {
					t.Fatalf("Build(%+v): %v", spec, err)
				}
				stride, ok := longitudinal.ColumnarStrideOf(proto)
				if !ok {
					t.Fatalf("%s: protocol has no columnar stride", family)
				}
				specHash := longitudinal.SpecHashOf(proto)
				const n, rounds, httpChunk = 120, 3, 48

				ref := newTestStreamShards(t, proto, shards)
				httpStream := newTestStreamShards(t, proto, shards)
				tcpStream := newTestStreamShards(t, proto, shards)
				httpColStream := newTestStreamShards(t, proto, shards)
				tcpColStream := newTestStreamShards(t, proto, shards)

				httpSrv := newTestServer(t, httpStream, Config{})
				ts := httptest.NewServer(httpSrv.Handler())
				defer ts.Close()
				httpColSrv := newTestServer(t, httpColStream, Config{})
				tsCol := httptest.NewServer(httpColSrv.Handler())
				defer tsCol.Close()

				tcpSrv := newTestServer(t, tcpStream, Config{})
				conn := dialTCPServer(t, tcpSrv)
				tcpColSrv := newTestServer(t, tcpColStream, Config{})
				colConn := dialTCPServer(t, tcpColSrv)

				// Enroll the same users on the per-report legs: directly,
				// over JSON, and over enroll frames. The columnar legs
				// enroll through their round-0 registration columns instead.
				clients := make([]longitudinal.AppendReporter, n)
				regs := make([]longitudinal.Registration, n)
				ids := make([]int, n)
				var frames []byte
				for u := range clients {
					cl, ok := proto.NewClient(uint64(u)).(longitudinal.AppendReporter)
					if !ok {
						t.Fatalf("%s client does not implement AppendReporter", family)
					}
					clients[u], ids[u] = cl, u
					reg := cl.WireRegistration()
					regs[u] = reg
					if err := ref.Enroll(u, reg); err != nil {
						t.Fatal(err)
					}
					resp := postJSON(t, ts.URL+"/v1/enroll",
						enrollRequest{UserID: u, HashSeed: reg.HashSeed, Sampled: reg.Sampled})
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("enroll user %d: status %d", u, resp.StatusCode)
					}
					resp.Body.Close()
					if frames, err = AppendEnrollFrame(frames, u, reg); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := conn.Write(frames); err != nil {
					t.Fatal(err)
				}
				if ack := flushAndAck(t, conn); ack.Enrolled != n || ack.EnrollRejected != 0 {
					t.Fatalf("tcp enrollment ack = %+v, want %d enrolled", ack, n)
				}

				for round := 0; round < rounds; round++ {
					// One payload per user per round, identical bytes on every
					// path; clients advance their memoized chain between rounds.
					payloads := make([][]byte, n)
					for u, cl := range clients {
						payloads[u] = cl.AppendReport(nil, (u+round)%proto.K())
					}

					if err := ref.IngestBatch(ids, payloads); err != nil {
						t.Fatal(err)
					}
					refRes := ref.CloseRound()

					// HTTP: several batch bodies, then close over the API and
					// check the JSON response against the reference (Go's JSON
					// float encoding round-trips float64 exactly).
					for lo := 0; lo < n; lo += httpChunk {
						hi := min(lo+httpChunk, n)
						var body []byte
						for u := lo; u < hi; u++ {
							body = AppendBatchRecord(body, ids[u], payloads[u])
						}
						resp, err := http.Post(ts.URL+"/v1/reports", "application/octet-stream", bytes.NewReader(body))
						if err != nil {
							t.Fatal(err)
						}
						var got struct {
							Received int    `json:"received"`
							Rejected int    `json:"rejected"`
							Error    string `json:"error"`
						}
						if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
							t.Fatal(err)
						}
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK || got.Received != hi-lo || got.Rejected != 0 {
							t.Fatalf("batch [%d,%d): status %d, response %+v", lo, hi, resp.StatusCode, got)
						}
					}
					resp := postJSON(t, ts.URL+"/v1/round/close", struct{}{})
					var httpRes roundJSON
					if err := json.NewDecoder(resp.Body).Decode(&httpRes); err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()

					// TCP: one frame per report, flush as the round barrier.
					frames = frames[:0]
					for u := range clients {
						frames = AppendReportFrame(frames, ids[u], payloads[u])
					}
					if _, err := conn.Write(frames); err != nil {
						t.Fatal(err)
					}
					if ack := flushAndAck(t, conn); ack.Reports != uint64(n*(round+1)) || ack.ReportRejected != 0 {
						t.Fatalf("round %d tcp ack = %+v, want %d reports", round, ack, n*(round+1))
					}
					tcpRes := tcpStream.CloseRound()

					// Columnar: one packed batch per round, identical payload
					// bytes; round 0 carries the registration columns that
					// enroll the users on these legs.
					w, err := longitudinal.NewColumnarWriter(specHash, stride)
					if err != nil {
						t.Fatal(err)
					}
					w.SetRound(uint32(round))
					if round == 0 {
						if err := w.WithRegistrations(len(regs[0].Sampled)); err != nil {
							t.Fatal(err)
						}
					}
					for u := range clients {
						if round == 0 {
							err = w.AddWithRegistration(ids[u], payloads[u], regs[u])
						} else {
							err = w.Add(ids[u], payloads[u])
						}
						if err != nil {
							t.Fatal(err)
						}
					}
					enc := w.AppendTo(nil)

					resp, err = http.Post(tsCol.URL+"/v1/reports", ContentTypeColumnar, bytes.NewReader(enc))
					if err != nil {
						t.Fatal(err)
					}
					var colGot struct {
						Received int    `json:"received"`
						Rejected int    `json:"rejected"`
						Error    string `json:"error"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&colGot); err != nil {
						t.Fatal(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK || colGot.Received != n || colGot.Rejected != 0 {
						t.Fatalf("round %d columnar POST: status %d, response %+v", round, resp.StatusCode, colGot)
					}
					httpColRes := httpColStream.CloseRound()

					if _, err := colConn.Write(AppendColumnarFrame(nil, enc)); err != nil {
						t.Fatal(err)
					}
					if ack := flushAndAck(t, colConn); ack.Reports != uint64(n*(round+1)) || ack.ReportRejected != 0 {
						t.Fatalf("round %d columnar tcp ack = %+v, want %d reports", round, ack, n*(round+1))
					}
					tcpColRes := tcpColStream.CloseRound()

					for name, res := range map[string]roundJSON{
						"http":          httpRes,
						"tcp":           toRoundJSON(tcpRes),
						"http-columnar": toRoundJSON(httpColRes),
						"tcp-columnar":  toRoundJSON(tcpColRes),
					} {
						if res.Round != round || refRes.Round != round {
							t.Fatalf("round indices diverge: ref %d, %s %d", refRes.Round, name, res.Round)
						}
						if res.Reports != n || refRes.Reports != n {
							t.Fatalf("round %d report counts diverge: ref %d, %s %d",
								round, refRes.Reports, name, res.Reports)
						}
						if !sameFloats(refRes.Raw, res.Raw) || !sameFloats(refRes.Estimates, res.Estimates) {
							t.Fatalf("round %d estimates diverge between ref and %s", round, name)
						}
					}
				}
			})
		}
	}
}

func TestSSERoundStream(t *testing.T) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream := newTestStream(t, proto)
	srv := newTestServer(t, stream, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	// The headers arrive before the hub registration; wait for the client
	// to land so the first round cannot race past it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if clients, _ := srv.hub.stats(); clients == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("SSE client never registered with the hub")
		}
		time.Sleep(time.Millisecond)
	}

	cl := proto.NewClient(1).(longitudinal.AppendReporter)
	if err := stream.Enroll(1, cl.WireRegistration()); err != nil {
		t.Fatal(err)
	}
	if err := stream.Ingest(1, cl.AppendReport(nil, 3)); err != nil {
		t.Fatal(err)
	}
	want := stream.CloseRound()

	br := bufio.NewReader(resp.Body)
	var event, data string
	for data == "" {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if event != "round" {
		t.Fatalf("SSE event = %q, want round", event)
	}
	var got roundJSON
	if err := json.Unmarshal([]byte(data), &got); err != nil {
		t.Fatalf("SSE data %q: %v", data, err)
	}
	if got.Round != want.Round || got.Reports != want.Reports || !sameFloats(got.Estimates, want.Estimates) {
		t.Fatalf("SSE round = %+v, want %+v", got, want)
	}
}

func TestStatusAndDashboard(t *testing.T) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream := newTestStream(t, proto)
	srv := newTestServer(t, stream, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cl := proto.NewClient(9).(longitudinal.AppendReporter)
	if err := stream.Enroll(9, cl.WireRegistration()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	var st statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Protocol != proto.Name() {
		t.Fatalf("status protocol = %q, want %q", st.Protocol, proto.Name())
	}
	if st.Enrolled != 1 || st.Shards != stream.Shards() {
		t.Fatalf("status = %+v, want 1 enrolled over %d shards", st, stream.Shards())
	}
	if st.Spec == nil || st.Spec.Family == "" {
		t.Fatalf("status spec missing for %s", proto.Name())
	}

	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	var page bytes.Buffer
	if _, err := page.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(page.String(), "lolohad") {
		t.Fatalf("dashboard: status %d, body %.80q", resp.StatusCode, page.String())
	}

	// The round history endpoint 404s before any round exists and serves
	// the result after.
	resp, err = http.Get(ts.URL + "/v1/rounds/0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rounds/0 before any round: status %d, want 404", resp.StatusCode)
	}
	if err := stream.Ingest(9, cl.AppendReport(nil, 2)); err != nil {
		t.Fatal(err)
	}
	want := stream.CloseRound()
	resp, err = http.Get(ts.URL + "/v1/rounds/0")
	if err != nil {
		t.Fatal(err)
	}
	var got roundJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Round != 0 || !sameFloats(got.Estimates, want.Estimates) {
		t.Fatalf("rounds/0 = %+v, want %+v", got, want)
	}
}

func TestHTTPRejections(t *testing.T) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream := newTestStream(t, proto)
	srv := newTestServer(t, stream, Config{MaxBatchBytes: 1 << 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Truncated batch record: framing error, whole batch rejected.
	resp, err := http.Post(ts.URL+"/v1/reports", "application/octet-stream", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated batch: status %d, want 400", resp.StatusCode)
	}

	// Oversize body: refused before reading.
	resp, err = http.Post(ts.URL+"/v1/reports", "application/octet-stream", bytes.NewReader(make([]byte, 2<<10)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch: status %d, want 413", resp.StatusCode)
	}

	// Unknown JSON fields and conflicting re-enrollment are caller bugs.
	resp = postJSON(t, ts.URL+"/v1/enroll", map[string]any{"user_id": 1, "bogus": true})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown enroll field: status %d, want 400", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/enroll", enrollRequest{UserID: 2, HashSeed: 7})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enroll: status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/enroll", enrollRequest{UserID: 2, HashSeed: 8})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting re-enrollment: status %d, want 409", resp.StatusCode)
	}

	// A batch whose records are well-framed but reference unknown users
	// lands with per-report rejections and a 200.
	body := AppendBatchRecord(nil, 999, []byte{0})
	resp, err = http.Post(ts.URL+"/v1/reports", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Received int `json:"received"`
		Rejected int `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || got.Rejected != 1 || got.Received != 0 {
		t.Fatalf("unknown-user batch: status %d, response %+v", resp.StatusCode, got)
	}
}

func TestTCPProtocolErrors(t *testing.T) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream := newTestStream(t, proto)
	srv := newTestServer(t, stream, Config{MaxFrameBytes: 1 << 10})

	// An oversize frame length is a protocol error: the connection dies
	// without reading the hostile body.
	conn := dialTCPServer(t, srv)
	var hdr [frameHeaderBytes]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0x7f
	hdr[4] = FrameReport
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived an oversize frame")
	}

	// An unknown frame type likewise.
	conn = dialTCPServer(t, srv)
	if _, err := conn.Write([]byte{0, 0, 0, 0, 0x7e}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived an unknown frame type")
	}

	// Semantic rejections (short body, unknown user) only bump counters.
	conn = dialTCPServer(t, srv)
	var frames []byte
	frames = appendShortReportFrame(frames)
	frames = AppendReportFrame(frames, 424242, []byte{0}) // not enrolled
	if _, err := conn.Write(frames); err != nil {
		t.Fatal(err)
	}
	ack := flushAndAck(t, conn)
	if ack.Reports != 0 || ack.ReportRejected != 2 {
		t.Fatalf("ack = %+v, want 2 rejected reports", ack)
	}
}

// appendShortReportFrame appends a well-framed report frame whose
// body is too short to carry a user ID.
func appendShortReportFrame(dst []byte) []byte {
	dst = append(dst, 4, 0, 0, 0, FrameReport)
	return append(dst, 1, 2, 3, 4)
}

func TestServerCloseLeavesStreamOpen(t *testing.T) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream := newTestStream(t, proto)
	srv := newTestServer(t, stream, Config{})
	conn := dialTCPServer(t, srv)

	cl := proto.NewClient(5).(longitudinal.AppendReporter)
	frames, err := AppendEnrollFrame(nil, 5, cl.WireRegistration())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frames); err != nil {
		t.Fatal(err)
	}
	if ack := flushAndAck(t, conn); ack.Enrolled != 1 {
		t.Fatalf("ack = %+v, want 1 enrolled", ack)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
	// The daemon is gone but the stream and its enrollment survive.
	if got := stream.Enrolled(); got != 1 {
		t.Fatalf("enrolled after daemon close = %d, want 1", got)
	}
	if err := stream.Ingest(5, cl.AppendReport(nil, 1)); err != nil {
		t.Fatal(err)
	}
	if res := stream.CloseRound(); res.Reports != 1 {
		t.Fatalf("round after daemon close = %+v, want 1 report", res)
	}
}

func TestRoundTimerClosesPendingRounds(t *testing.T) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream := newTestStream(t, proto)
	newTestServer(t, stream, Config{RoundEvery: 5 * time.Millisecond})

	cl := proto.NewClient(3).(longitudinal.AppendReporter)
	if err := stream.Enroll(3, cl.WireRegistration()); err != nil {
		t.Fatal(err)
	}
	if err := stream.Ingest(3, cl.AppendReport(nil, 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for stream.Rounds() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("round timer never closed the pending round")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := stream.Round(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports != 1 {
		t.Fatalf("timer-closed round = %+v, want 1 report", res)
	}
	// With nothing pending the timer stays quiet: no empty rounds.
	rounds := stream.Rounds()
	time.Sleep(50 * time.Millisecond)
	if got := stream.Rounds(); got != rounds {
		t.Fatalf("timer published %d empty rounds", got-rounds)
	}
}
