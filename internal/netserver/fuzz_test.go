package netserver

// Fuzz targets for the two network-facing parsers: the TCP frame reader
// and the HTTP batch-body decoder. Both consume attacker-controlled bytes
// before any authentication, so they must never panic, never allocate
// anything sized by an unvalidated length, and — for the batch decoder —
// accept exactly the bodies AppendBatchRecord produces.
//
// CI runs these for a few seconds per push (the fuzz-smoke job); longer
// local runs: go test -fuzz FuzzFrameStream ./internal/netserver

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"github.com/loloha-ldp/loloha/internal/core"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/server"
)

func FuzzFrameStream(f *testing.F) {
	// Seeds: a well-formed session (enroll, report, flush), then
	// structured garbage around each validation edge.
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		f.Fatal(err)
	}
	cl := proto.NewClient(1).(longitudinal.AppendReporter)
	session, err := AppendEnrollFrame(nil, 1, cl.WireRegistration())
	if err != nil {
		f.Fatal(err)
	}
	session = AppendReportFrame(session, 1, cl.AppendReport(nil, 3))
	session = AppendFlushFrame(session)
	f.Add(session)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, FrameReport}) // oversize length
	f.Add([]byte{4, 0, 0, 0, FrameEnroll, 1, 2, 3, 4}) // short enroll body
	f.Add([]byte{0, 0, 0, 0, 0x7e})                    // unknown type
	f.Add(append([]byte{9, 0, 0, 0, FrameReport}, make([]byte, 9)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		stream, err := server.NewStream(proto, server.WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		srv, err := New(Config{Stream: stream, MaxFrameBytes: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		// Drive the connection loop directly over the fuzz bytes; acks go
		// nowhere. serve must terminate (EOF at the latest) without panic.
		c := &tcpConn{
			srv: srv,
			br:  bufio.NewReader(bytes.NewReader(data)),
			bw:  bufio.NewWriter(io.Discard),
		}
		c.serve()
	})
}

// FuzzMergeFrame drives a collector root's connection loop with an
// arbitrary merge-frame body. Like the other frame types the body is
// attacker-controlled bytes reaching persist.Decode and MergeRemote
// before any authentication: serve must terminate without panicking, and
// a rejected body must drop the connection without tallying anything.
func FuzzMergeFrame(f *testing.F) {
	proto, err := core.NewBinary(16, 2, 1)
	if err != nil {
		f.Fatal(err)
	}
	// Seeds: a matching tally-only snapshot (the leaf wire form), a
	// full-state snapshot with a user table, a mismatched-spec image, and
	// structured garbage.
	leaf, err := server.NewStream(proto, server.WithShards(1))
	if err != nil {
		f.Fatal(err)
	}
	cl := proto.NewClient(3).(longitudinal.AppendReporter)
	if err := leaf.Enroll(3, cl.WireRegistration()); err != nil {
		f.Fatal(err)
	}
	if err := leaf.Ingest(3, cl.AppendReport(nil, 5)); err != nil {
		f.Fatal(err)
	}
	var full bytes.Buffer
	if err := leaf.Snapshot(&full); err != nil {
		f.Fatal(err)
	}
	_, snap, err := leaf.CloseRoundExport()
	if err != nil {
		f.Fatal(err)
	}
	tallyOnly, err := persist.Append(nil, snap)
	if err != nil {
		f.Fatal(err)
	}
	leaf.Close()
	f.Add(tallyOnly)
	f.Add(full.Bytes())
	f.Add(tallyOnly[:len(tallyOnly)/2])
	f.Add([]byte("LSS1 but not really"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		stream, err := server.NewStream(proto, server.WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		defer stream.Close()
		srv, err := New(Config{Stream: stream, AcceptMerges: true})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		wire := AppendMergeFrame(nil, data)
		wire = AppendFlushFrame(wire)
		c := &tcpConn{
			srv: srv,
			br:  bufio.NewReader(bytes.NewReader(wire)),
			bw:  bufio.NewWriter(io.Discard),
		}
		c.serve()
		// Whatever the bytes were, the stream must still close a coherent
		// round afterwards.
		stream.CloseRound()
	})
}

func FuzzBatchBody(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBatchRecord(nil, 7, []byte{1, 2, 3}))
	f.Add(AppendBatchRecord(AppendBatchRecord(nil, 0, nil), 1, []byte{9}))
	f.Add([]byte{1, 2, 3})                                    // truncated header
	f.Add(append(AppendBatchRecord(nil, 1, []byte{5}), 0xff)) // trailing garbage
	hostile := AppendBatchRecord(nil, 2, []byte{1})
	hostile[8] = 0xff // declared payload length far past the body
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		ids, payloads, err := decodeBatchBody(data, nil, nil, 1<<10)
		if err != nil {
			return
		}
		if len(ids) != len(payloads) {
			t.Fatalf("decode returned %d ids for %d payloads", len(ids), len(payloads))
		}
		// Accepted bodies are exactly the canonical encoding: re-encoding
		// the decoded records must reproduce the input byte for byte.
		var reencoded []byte
		for i := range ids {
			reencoded = AppendBatchRecord(reencoded, ids[i], payloads[i])
		}
		if !bytes.Equal(reencoded, data) {
			t.Fatalf("decode/encode round-trip diverges:\n in  %x\n out %x", data, reencoded)
		}
	})
}
