package netserver

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/loloha-ldp/loloha/internal/longitudinal"
)

// HTTP batch-body format for POST /v1/reports: a concatenation of
// records, each
//
//	u64 LE  userID
//	u32 LE  payload length m (≤ MaxFrameBytes)
//	m bytes payload (Report.AppendBinary wire form)
//
// The decoder walks the body once, collecting user IDs and payload
// sub-slices that alias the body buffer — no per-record copy — and feeds
// them to Stream.IngestBatch, which takes one shard-lock acquisition per
// shard per batch. Request-scoped working memory (body buffer, ID and
// payload slices) is pooled, so steady-state batches allocate nothing in
// the decode→tally path.

// ContentTypeColumnar selects the columnar body format on POST
// /v1/reports: the body is one longitudinal columnar batch
// (ColumnarWriter.AppendTo bytes) instead of per-report records. Any
// other content type selects the record format below.
const ContentTypeColumnar = "application/x-loloha-columnar"

// AppendBatchRecord appends one report record to a batch body under
// construction. Clients build a body with repeated calls and POST it to
// /v1/reports.
//
//loloha:noalloc
func AppendBatchRecord(dst []byte, userID int, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(userID))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// batchRecordBytes is the fixed per-record framing overhead.
const batchRecordBytes = 8 + 4

// decodeBatchBody parses a /v1/reports body, appending into ids and
// payloads (reusing their capacity) and returning the filled slices.
// Payload sub-slices alias body. Record payload lengths are validated
// against maxPayload and the remaining body before use, so hostile
// lengths cannot oversize anything. A framing error fails the whole
// batch: unlike a rejected report, a corrupt body gives no way to find
// the next record boundary.
//
//loloha:noalloc
func decodeBatchBody(body []byte, ids []int, payloads [][]byte, maxPayload int) ([]int, [][]byte, error) {
	ids = ids[:0]
	payloads = payloads[:0]
	for off := 0; off < len(body); {
		if len(body)-off < batchRecordBytes {
			return ids, payloads, fmt.Errorf("netserver: batch record header truncated at offset %d", off)
		}
		id := binary.LittleEndian.Uint64(body[off:])
		m := int(binary.LittleEndian.Uint32(body[off+8:]))
		off += batchRecordBytes
		if m > maxPayload {
			return ids, payloads, fmt.Errorf("netserver: batch record payload %d bytes exceeds limit %d", m, maxPayload)
		}
		if m > len(body)-off {
			return ids, payloads, fmt.Errorf("netserver: batch record payload truncated: %d bytes declared, %d remain", m, len(body)-off)
		}
		if id > maxUserID {
			return ids, payloads, fmt.Errorf("netserver: user ID %d not representable", id)
		}
		ids = append(ids, int(id))
		payloads = append(payloads, body[off:off+m:off+m])
		off += m
	}
	return ids, payloads, nil
}

// maxUserID is the largest wire user ID an int can hold.
const maxUserID = uint64(int(^uint(0) >> 1))

// batchBuffers is the pooled per-request working memory of the HTTP
// ingestion handler.
type batchBuffers struct {
	body     []byte
	ids      []int
	payloads [][]byte
	// col is the columnar decode target (ContentTypeColumnar requests);
	// its column slices are reused across requests like ids/payloads.
	col longitudinal.ColumnarBatch
}

var batchPool = sync.Pool{New: func() any { return new(batchBuffers) }}

// putBatchBuffers drops payload aliases into the pool-held slices so
// pooled memory never pins a request body's decoded view longer than the
// request.
func putBatchBuffers(b *batchBuffers) {
	clear(b.payloads)
	b.col.Payloads = nil
	batchPool.Put(b)
}
