//go:build !race

package netserver

// raceEnabled mirrors the root package's build-tag pair: allocation
// assertions are meaningless under the race detector's instrumentation,
// so alloc-pinning tests skip when it is on.
const raceEnabled = false
