package netserver

// The leaf outbox is the durable half of exactly-once delivery: a closed
// round's exported tallies are wrapped in an LME1 envelope and spooled to
// disk BEFORE the first ship attempt, so a leaf crash anywhere between
// round close and ack loses nothing — boot replays every unshipped
// envelope in sequence order, and the root's ledger absorbs whatever was
// actually delivered before the crash as duplicates. The envelope
// sequence counter itself is durable (the SEQ file), so a restarted leaf
// never reuses a sequence number the root has already applied, which is
// what keeps "fresh envelope" and "retry" distinguishable forever.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/loloha-ldp/loloha/internal/persist"
)

const (
	// outboxSeqFile holds the last assigned envelope sequence number
	// (decimal), replaced atomically before the envelope it numbers is
	// spooled. A crash between the two skips a sequence number, which is
	// harmless: the root only needs monotonicity, not density.
	outboxSeqFile = "SEQ"
	// outboxEnvSuffix names spooled envelope files: env-%016x.lme1.
	outboxEnvSuffix = ".lme1"
	outboxEnvPrefix = "env-"
)

// outboxItem is one unshipped envelope.
type outboxItem struct {
	seq   uint64
	round int
	env   []byte // complete LME1 bytes, shipped verbatim
}

// outbox spools unshipped merge envelopes. With a directory it is
// durable (atomic temp+rename per envelope, like the periodic snapshot);
// without one it degrades to in-memory spooling — retries survive, a
// process crash does not, and the boot replay has nothing to read.
type outbox struct {
	dir  string // "" = memory mode
	leaf string

	mu      sync.Mutex
	nextSeq uint64 // last assigned sequence number
	pending []outboxItem
}

// openOutbox opens (or initializes) the outbox for leaf in dir, replaying
// any spooled envelopes left by a previous process. An unreadable spool
// is a hard error: silently skipping an envelope would lose a round.
func openOutbox(dir, leaf string) (*outbox, error) {
	ob := &outbox{dir: dir, leaf: leaf}
	if dir == "" {
		return ob, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("netserver: outbox dir: %w", err)
	}
	if raw, err := os.ReadFile(filepath.Join(dir, outboxSeqFile)); err == nil {
		seq, perr := strconv.ParseUint(strings.TrimSpace(string(raw)), 10, 64)
		if perr != nil {
			return nil, fmt.Errorf("netserver: outbox SEQ file: %w", perr)
		}
		ob.nextSeq = seq
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("netserver: outbox SEQ file: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("netserver: outbox dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, outboxEnvPrefix) || !strings.HasSuffix(name, outboxEnvSuffix) {
			continue // SEQ file, temp files cleaned below, foreign files
		}
		env, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("netserver: outbox replay %s: %w", name, err)
		}
		h, err := persist.ParseEnvelopeHeader(env)
		if err != nil {
			return nil, fmt.Errorf("netserver: outbox replay %s: %w", name, err)
		}
		if string(h.Leaf) != leaf {
			return nil, fmt.Errorf("netserver: outbox replay %s: envelope belongs to leaf %q, this daemon is %q",
				name, h.Leaf, leaf)
		}
		ob.pending = append(ob.pending, outboxItem{seq: h.Seq, round: h.Round, env: env})
		if h.Seq > ob.nextSeq {
			ob.nextSeq = h.Seq
		}
	}
	sort.Slice(ob.pending, func(a, b int) bool { return ob.pending[a].seq < ob.pending[b].seq })
	return ob, nil
}

// add assigns the next sequence number, wraps image (persist.Append
// bytes) in an envelope and spools it. The in-memory entry is always
// created — a disk error degrades durability, not delivery — and is
// reported alongside the assigned sequence number.
func (ob *outbox) add(round int, image []byte) (uint64, error) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	seq := ob.nextSeq + 1
	env, err := persist.AppendEnvelopeImage(nil, ob.leaf, round, seq, image)
	if err != nil {
		return 0, err
	}
	ob.nextSeq = seq
	ob.pending = append(ob.pending, outboxItem{seq: seq, round: round, env: env})
	if ob.dir == "" {
		return seq, nil
	}
	// SEQ first, then the envelope: if the crash lands between the two,
	// the number is burned but never reused.
	if err := ob.writeAtomic(outboxSeqFile, []byte(strconv.FormatUint(seq, 10))); err != nil {
		return seq, fmt.Errorf("netserver: outbox SEQ: %w", err)
	}
	if err := ob.writeAtomic(envFileName(seq), env); err != nil {
		return seq, fmt.Errorf("netserver: spooling round %d: %w", round, err)
	}
	return seq, nil
}

func envFileName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", outboxEnvPrefix, seq, outboxEnvSuffix)
}

// writeAtomic replaces dir/name via temp file + fsync + rename, the same
// torn-write guarantee as the daemon's periodic snapshots.
func (ob *outbox) writeAtomic(name string, data []byte) error {
	f, err := os.CreateTemp(ob.dir, name+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, filepath.Join(ob.dir, name))
}

// first returns the oldest unshipped envelope, if any. The bytes are
// shipped verbatim; they stay owned by the outbox until ack.
func (ob *outbox) first() (outboxItem, bool) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	if len(ob.pending) == 0 {
		return outboxItem{}, false
	}
	return ob.pending[0], true
}

// ack marks seq delivered: the entry and its spool file are removed.
func (ob *outbox) ack(seq uint64) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	for i := range ob.pending {
		if ob.pending[i].seq == seq {
			ob.pending = append(ob.pending[:i], ob.pending[i+1:]...)
			break
		}
	}
	if ob.dir != "" {
		// Best-effort: a leftover file replays as a duplicate, which the
		// root's ledger absorbs.
		os.Remove(filepath.Join(ob.dir, envFileName(seq)))
	}
}

// stats returns the unshipped count and the oldest unshipped round
// (-1 when empty) for /v1/status.
func (ob *outbox) stats() (int, int) {
	ob.mu.Lock()
	defer ob.mu.Unlock()
	if len(ob.pending) == 0 {
		return 0, -1
	}
	return len(ob.pending), ob.pending[0].round
}

// seqHash seeds the shipper's deterministic jitter stream from the leaf
// identity (FNV-1a), so a fleet of leaves retrying the same outage
// spreads out instead of thundering in lockstep, while any single leaf's
// schedule stays reproducible.
func seqHash(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}
