package netserver

import (
	"sync"

	"github.com/loloha-ldp/loloha/internal/server"
)

// hub fans published rounds out to SSE clients. It mirrors the Stream's
// own subscriber contract one level up: every client has a buffered
// channel, and the explicit slow-subscriber policy is DROP, never block —
// a client whose buffer is full when a round arrives misses that round
// (each RoundResult carries its Round index, so the browser can detect
// the gap and backfill over /v1/rounds/{t}). A hub must never stall: it
// sits between Stream.Subscribe and N remote sockets of arbitrary speed,
// and one stalled socket must not delay the rest of the fan-out.
type hub struct {
	capacity int

	mu      sync.Mutex
	clients map[*hubClient]struct{}
	dropped uint64
	closed  bool
}

// hubClient is one SSE subscriber; ch closes when the client is removed
// or the hub shuts down.
type hubClient struct {
	ch chan server.RoundResult
}

func newHub(capacity int) *hub {
	return &hub{capacity: capacity, clients: map[*hubClient]struct{}{}}
}

// add registers a new client. After closeAll it returns a client whose
// channel is already closed (the Subscribe-after-Close semantics of the
// stream itself).
func (h *hub) add() *hubClient {
	cl := &hubClient{ch: make(chan server.RoundResult, h.capacity)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(cl.ch)
		return cl
	}
	h.clients[cl] = struct{}{}
	return cl
}

// remove unregisters a client and closes its channel. Closing under the
// hub lock is what makes the occupancy-guarded send in broadcast safe:
// no send can race the close.
func (h *hub) remove(cl *hubClient) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.clients[cl]; !ok {
		return
	}
	delete(h.clients, cl)
	close(cl.ch)
}

// broadcast delivers one round to every client that has buffer space;
// full clients drop the round and the hub counts the drop.
func (h *hub) broadcast(res server.RoundResult) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for cl := range h.clients {
		// Occupancy-guarded send (the lockorder-pinned pattern): the hub
		// is the only sender and holds h.mu, so a full buffer can only
		// drain — never refill — between the check and the send.
		if len(cl.ch) == cap(cl.ch) {
			h.dropped++
			continue
		}
		cl.ch <- res
	}
}

// closeAll shuts the hub down: every client channel closes and later add
// calls return closed channels. Idempotent.
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for cl := range h.clients {
		close(cl.ch)
	}
	clear(h.clients)
}

// stats returns the live client count and cumulative dropped deliveries.
func (h *hub) stats() (clients int, dropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.clients), h.dropped
}
