package netserver

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/loloha-ldp/loloha/internal/heavyhitter"
	"github.com/loloha-ldp/loloha/internal/longitudinal"
	"github.com/loloha-ldp/loloha/internal/persist"
	"github.com/loloha-ldp/loloha/internal/server"
)

// HTTP API. All bodies are JSON except /v1/reports, whose binary batch
// format (AppendBatchRecord) exists so the hot path stays hot: JSON
// would cost a parse and an allocation per report.
//
//	POST /v1/enroll       {"user_id":7,"hash_seed":9,"sampled":[1,2]}
//	POST /v1/reports      binary batch body → {"received":N,"rejected":M}
//	POST /v1/merge        binary LSS1 snapshot body → {"merged":N} (collector roots only)
//	POST /v1/round/close  → RoundResult of the closed round
//	GET  /v1/rounds/{t}   → RoundResult of round t
//	GET  /v1/status       → daemon + stream counters and the protocol spec
//	GET  /v1/stream       → text/event-stream of RoundResults
//	GET  /                → embedded live dashboard

// enrollRequest is the JSON enrollment body; HashSeed and Sampled mirror
// longitudinal.Registration.
type enrollRequest struct {
	UserID   int    `json:"user_id"`
	HashSeed uint64 `json:"hash_seed"`
	Sampled  []int  `json:"sampled,omitempty"`
}

// roundJSON is the wire form of a RoundResult.
type roundJSON struct {
	Round        int                  `json:"round"`
	Reports      int                  `json:"reports"`
	Raw          []float64            `json:"raw"`
	Estimates    []float64            `json:"estimates"`
	HeavyHitters []heavyhitter.Hitter `json:"heavy_hitters,omitempty"`
}

func toRoundJSON(r server.RoundResult) roundJSON {
	return roundJSON{
		Round:        r.Round,
		Reports:      r.Reports,
		Raw:          r.Raw,
		Estimates:    r.Estimates,
		HeavyHitters: r.HeavyHitters,
	}
}

// statusJSON is the /v1/status body.
type statusJSON struct {
	Protocol      string                     `json:"protocol"`
	Spec          *longitudinal.ProtocolSpec `json:"spec,omitempty"`
	Enrolled      int                        `json:"enrolled"`
	Rounds        int                        `json:"rounds"`
	Pending       int                        `json:"pending"`
	Shards        int                        `json:"shards"`
	UptimeSeconds float64                    `json:"uptime_seconds"`
	TCP           ingestStatsJSON            `json:"tcp"`
	HTTP          httpStatsJSON              `json:"http"`
	SSE           sseStatsJSON               `json:"sse"`
	Merge         *mergeStatsJSON            `json:"merge,omitempty"`
}

type ingestStatsJSON struct {
	LiveConns  int64  `json:"live_conns"`
	TotalConns uint64 `json:"total_conns"`
	Reports    uint64 `json:"reports"`
	Rejected   uint64 `json:"rejected"`
}

type httpStatsJSON struct {
	Batches  uint64 `json:"batches"`
	Reports  uint64 `json:"reports"`
	Rejected uint64 `json:"rejected"`
}

type sseStatsJSON struct {
	Clients       int    `json:"clients"`
	DroppedRounds uint64 `json:"dropped_rounds"`
}

// mergeStatsJSON reports collector-tree traffic. Present only when the
// daemon participates in a tree: Frames/Reports/Rejected/Duplicates
// count inbound merges (roots), Shipped/ShipFailed/Retries/Unshipped
// count outbound envelopes (leaves). Leaves is the root's per-leaf
// applied-envelope ledger plus current-round arrival attribution —
// during a partial round it names exactly which leaves the published
// estimates cover.
type mergeStatsJSON struct {
	Frames     uint64 `json:"frames"`
	Reports    uint64 `json:"reports"`
	Rejected   uint64 `json:"rejected"`
	Duplicates uint64 `json:"duplicates"`
	Shipped    uint64 `json:"shipped,omitempty"`
	ShipFailed uint64 `json:"ship_failed,omitempty"`
	Retries    uint64 `json:"retries,omitempty"`
	// Unshipped/OldestUnshippedRound expose the leaf outbox: rounds
	// closed but not yet confirmed by the parent. -1 when empty.
	Unshipped            int `json:"unshipped"`
	OldestUnshippedRound int `json:"oldest_unshipped_round"`
	// Root graceful degradation: distinct leaves merged into the open
	// round, the configured expectation/quorum, and how many rounds the
	// deadline closed below expectation.
	Arrived       int                      `json:"arrived,omitempty"`
	ExpectLeaves  int                      `json:"expect_leaves,omitempty"`
	Quorum        int                      `json:"quorum,omitempty"`
	PartialRounds uint64                   `json:"partial_rounds,omitempty"`
	Leaves        map[string]leafStatsJSON `json:"leaves,omitempty"`
}

// leafStatsJSON is one leaf's row in the root's ledger attribution.
type leafStatsJSON struct {
	Seq     uint64 `json:"seq"`
	Round   int    `json:"round"`
	Reports uint64 `json:"reports"`
	Dups    uint64 `json:"dups"`
	// InRound reports whether the leaf has merged into the open round.
	InRound bool `json:"in_round"`
}

func (s *Server) newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/enroll", s.handleEnroll)
	mux.HandleFunc("POST /v1/reports", s.handleReports)
	if s.acceptMerges {
		// Leaves have no merge endpoint at all: a misrouted snapshot is a
		// 404, not a silent double count.
		mux.HandleFunc("POST /v1/merge", s.handleMergeHTTP)
	}
	mux.HandleFunc("POST /v1/round/close", s.handleRoundClose)
	mux.HandleFunc("GET /v1/rounds/{t}", s.handleRound)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleEnroll(w http.ResponseWriter, r *http.Request) {
	var req enrollRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.UserID < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("netserver: negative user ID %d", req.UserID))
		return
	}
	reg := longitudinal.Registration{HashSeed: req.HashSeed, Sampled: req.Sampled}
	if err := s.stream.Enroll(req.UserID, reg); err != nil {
		// Conflicting re-enrollment (or a cohort-owned ID) is the caller's
		// bug, not the server's.
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleReports(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength > int64(s.maxBatch) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("netserver: batch body %d bytes exceeds limit %d", r.ContentLength, s.maxBatch))
		return
	}
	bb := batchPool.Get().(*batchBuffers)
	defer putBatchBuffers(bb)
	body, err := readBody(r, bb.body, s.maxBatch)
	bb.body = body[:0]
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var n int
	var ingestErr error
	if r.Header.Get("Content-Type") == ContentTypeColumnar {
		if err := longitudinal.DecodeColumnar(body, &bb.col); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		n = bb.col.Count()
		ingestErr = s.stream.IngestColumnar(&bb.col)
		if errors.Is(ingestErr, server.ErrColumnarMismatch) {
			// The whole batch was built for another protocol configuration:
			// the client's encoder is misconfigured, a 400 like a framing
			// error, not a per-report rejection.
			writeError(w, http.StatusBadRequest, ingestErr)
			return
		}
	} else {
		ids, payloads, err := decodeBatchBody(body, bb.ids, bb.payloads, s.maxFrame)
		bb.ids, bb.payloads = ids, payloads
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		n = len(ids)
		ingestErr = s.stream.IngestBatch(ids, payloads)
	}
	rejected := countJoined(ingestErr)
	s.httpBatches.Add(1)
	s.httpReports.Add(uint64(n - rejected))
	s.httpRejected.Add(uint64(rejected))
	resp := map[string]any{"received": n - rejected, "rejected": rejected}
	if ingestErr != nil {
		resp["error"] = ingestErr.Error()
	}
	// Per-report rejections are data, not transport failure: the batch
	// landed, so the status stays 200 and the counts tell the story.
	writeJSON(w, http.StatusOK, resp)
}

// readBody reads the request body into buf (reusing capacity). With a
// declared Content-Length it reads exactly once into a right-sized
// buffer; chunked bodies fall back to append-style reading capped at max.
func readBody(r *http.Request, buf []byte, max int) ([]byte, error) {
	if n := r.ContentLength; n >= 0 {
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(r.Body, buf); err != nil {
			return nil, fmt.Errorf("netserver: short body: %w", err)
		}
		return buf, nil
	}
	buf = buf[:0]
	lr := io.LimitReader(r.Body, int64(max)+1)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	if len(buf) > max {
		return nil, fmt.Errorf("netserver: batch body exceeds limit %d", max)
	}
	return buf, nil
}

// countJoined counts the sub-errors of an errors.Join result (IngestBatch
// joins one error per rejected report). Steady state is err == nil;
// everything past the first return only runs for rejected reports.
//
//loloha:noalloc
func countJoined(err error) int {
	if err == nil {
		return 0
	}
	var multi interface{ Unwrap() []error }
	//loloha:alloc-ok cold: only reached when reports were rejected
	if errors.As(err, &multi) {
		return len(multi.Unwrap())
	}
	return 1
}

// handleMergeHTTP is the HTTP transport for collector-tree merges: the
// body is one LME1 merge envelope (exactly-once, per-envelope ack with
// dedup) or, legacy, one raw LSS1 snapshot image (cumulative, no dedup).
// Registered only when AcceptMerges is set.
func (s *Server) handleMergeHTTP(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, int64(s.maxBatch)))
	if err != nil {
		s.mergeBad.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("netserver: reading merge body: %w", err))
		return
	}
	if persist.IsEnvelope(body) {
		s.handleMergeEnvelopeHTTP(w, body)
		return
	}
	snap, err := persist.Decode(body)
	if err != nil {
		s.mergeBad.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, err := s.stream.MergeRemote(snap)
	if err != nil {
		// Spec mismatch or a mid-decode state error: like ErrColumnarMismatch
		// on the report path, the whole payload is for another protocol
		// configuration, so nothing was applied.
		s.mergeBad.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.mergeFrames.Add(1)
	s.mergeReports.Add(uint64(n))
	writeJSON(w, http.StatusOK, map[string]int{"merged": n})
}

// handleMergeEnvelopeHTTP applies one LME1 envelope with the same
// exactly-once semantics as the TCP path and answers the per-envelope
// ack as JSON: {"seq":..,"merged":..,"duplicate":..}.
func (s *Server) handleMergeEnvelopeHTTP(w http.ResponseWriter, body []byte) {
	h, err := persist.ParseEnvelopeHeader(body)
	if err != nil {
		s.mergeBad.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ackJSON := func(merged int, duplicate bool) {
		writeJSON(w, http.StatusOK, map[string]any{"seq": h.Seq, "merged": merged, "duplicate": duplicate})
	}
	if !s.stream.ShouldApply(h.Leaf, h.Seq) {
		s.stream.RecordDuplicate(h.Leaf)
		s.mergeDup.Add(1)
		ackJSON(0, true)
		return
	}
	env, err := persist.DecodeEnvelope(body)
	if err != nil {
		s.mergeBad.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, dup, err := s.stream.MergeEnvelope(env)
	if err != nil {
		s.mergeBad.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if dup {
		s.mergeDup.Add(1)
		ackJSON(0, true)
		return
	}
	s.mergeFrames.Add(1)
	s.mergeReports.Add(uint64(n))
	s.noteLeafArrival(env.Leaf, n)
	ackJSON(n, false)
}

func (s *Server) handleRoundClose(w http.ResponseWriter, r *http.Request) {
	res, err := s.closeRound()
	if err != nil {
		// The round DID close locally; shipping to the parent failed and
		// the envelope stays spooled in the outbox for the background
		// shipper. Report both — the operator sees the round AND the
		// degradation, and /v1/status tracks the unshipped backlog.
		writeJSON(w, http.StatusOK, map[string]any{
			"round": toRoundJSON(res), "ship_error": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, toRoundJSON(res))
}

func (s *Server) handleRound(w http.ResponseWriter, r *http.Request) {
	t, err := strconv.Atoi(r.PathValue("t"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("netserver: bad round index %q", r.PathValue("t")))
		return
	}
	res, err := s.stream.Round(t)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, toRoundJSON(res))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	proto := s.stream.Protocol()
	st := statusJSON{
		Protocol:      proto.Name(),
		Enrolled:      s.stream.Enrolled(),
		Rounds:        s.stream.Rounds(),
		Pending:       s.stream.Pending(),
		Shards:        s.stream.Shards(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		TCP: ingestStatsJSON{
			LiveConns:  s.tcpLive.Load(),
			TotalConns: s.tcpTotal.Load(),
			Reports:    s.tcpReports.Load(),
			Rejected:   s.tcpRejected.Load(),
		},
		HTTP: httpStatsJSON{
			Batches:  s.httpBatches.Load(),
			Reports:  s.httpReports.Load(),
			Rejected: s.httpRejected.Load(),
		},
	}
	if spec, ok := longitudinal.SpecOf(proto); ok {
		st.Spec = &spec
	}
	if s.acceptMerges || s.upstream != nil {
		m := &mergeStatsJSON{
			Frames:               s.mergeFrames.Load(),
			Reports:              s.mergeReports.Load(),
			Rejected:             s.mergeBad.Load(),
			Duplicates:           s.mergeDup.Load(),
			Shipped:              s.shipped.Load(),
			ShipFailed:           s.shipFailed.Load(),
			Retries:              s.shipRetries.Load(),
			OldestUnshippedRound: -1,
		}
		if s.outbox != nil {
			m.Unshipped, m.OldestUnshippedRound = s.outbox.stats()
		}
		if s.acceptMerges {
			m.ExpectLeaves = s.expectLeaves
			m.Quorum = s.quorum
			m.PartialRounds = s.partialRound.Load()
			s.arrivalMu.Lock()
			m.Arrived = len(s.arrivals)
			inRound := make(map[string]bool, len(s.arrivals))
			for leaf := range s.arrivals {
				inRound[leaf] = true
			}
			s.arrivalMu.Unlock()
			if ledger := s.stream.Ledger(); len(ledger) > 0 {
				m.Leaves = make(map[string]leafStatsJSON, len(ledger))
				for _, e := range ledger {
					m.Leaves[e.Leaf] = leafStatsJSON{
						Seq:     e.Seq,
						Round:   e.Round,
						Reports: e.Reports,
						Dups:    e.Dups,
						InRound: inRound[e.Leaf],
					}
				}
			}
		}
		st.Merge = m
	}
	st.SSE.Clients, st.SSE.DroppedRounds = s.hub.stats()
	writeJSON(w, http.StatusOK, st)
}

// handleStream serves the SSE round feed: one `event: round` per
// published RoundResult, JSON data. A client that cannot keep up misses
// rounds (hub drop policy) and can detect the gap from the round indices.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("netserver: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	cl := s.hub.add()
	defer s.hub.remove(cl)
	enc := json.NewEncoder(w)
	for {
		select {
		case res, ok := <-cl.ch:
			if !ok {
				return // hub shut down
			}
			if _, err := io.WriteString(w, "event: round\ndata: "); err != nil {
				return
			}
			if err := enc.Encode(toRoundJSON(res)); err != nil {
				return
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		}
	}
}
