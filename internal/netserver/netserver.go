// Package netserver is the networked collection daemon engine: it fronts
// a server.Stream with real sockets so "millions of users" means remote
// processes, not in-process function calls.
//
// Two ingestion fronts share one Stream:
//
//   - HTTP: JSON enrollment (POST /v1/enroll), binary batched report
//     ingestion (POST /v1/reports, the batch-record format of
//     AppendBatchRecord feeding Stream.IngestBatch), round control
//     (POST /v1/round/close), history and status reads, and a live
//     Server-Sent-Events round stream (GET /v1/stream) behind a hub with
//     per-client buffered channels and an explicit slow-subscriber drop
//     policy. GET / serves a minimal embedded dashboard.
//
//   - Raw TCP: length-prefixed frames (see frame.go) carrying the
//     existing wire formats — longitudinal.AppendRegistration for
//     enrollment, Report.AppendBinary payloads for reports — decoded in a
//     per-connection read loop whose steady state reuses one frame buffer
//     and tallies through Stream.Ingest at zero allocations per report,
//     so the PR 3/5 zero-alloc property survives the socket boundary.
//
// Estimates are bit-identical to ingesting the same payloads in-process:
// the daemon adds transport, never arithmetic (pinned by the parity tests
// in e2e_test.go).
package netserver

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/loloha-ldp/loloha/internal/server"
)

// Config parameterizes a daemon engine.
type Config struct {
	// Stream is the collection service to front. Required; the caller
	// retains ownership (the daemon never calls Stream.Close).
	Stream *server.Stream
	// MaxFrameBytes bounds a TCP frame body and an HTTP batch record's
	// payload; oversize frames kill the connection before any allocation
	// sized by the hostile length. Default 1 MiB.
	MaxFrameBytes int
	// MaxBatchBytes bounds an HTTP /v1/reports body. Default 8 MiB.
	MaxBatchBytes int
	// RoundEvery, when positive, closes the round on this period whenever
	// reports are pending (empty rounds are not published). Zero means
	// rounds close only via POST /v1/round/close or the owning process.
	RoundEvery time.Duration
	// SSECapacity is each SSE client's buffered round count; a client
	// whose buffer is full when a round is published drops that round
	// (the hub mirrors Stream's WithRoundCapacity drop-not-block policy).
	// Default 16.
	SSECapacity int
}

// Server is the daemon engine: listeners, connection registry, SSE hub
// and round timer around one server.Stream. Create with New, attach
// listeners with ServeTCP/ServeHTTP (or mount Handler in a test server),
// stop with Close.
type Server struct {
	stream    *server.Stream
	maxFrame  int
	maxBatch  int
	hub       *hub
	mux       *http.ServeMux
	roundTick time.Duration
	started   time.Time

	// Live counters, all monotonic except tcpLive.
	tcpTotal     atomic.Uint64
	tcpLive      atomic.Int64
	tcpReports   atomic.Uint64
	tcpRejected  atomic.Uint64
	httpBatches  atomic.Uint64
	httpReports  atomic.Uint64
	httpRejected atomic.Uint64

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// New returns an engine fronting cfg.Stream. The SSE hub subscribes to
// the stream immediately, so rounds closed before any listener is
// attached still reach later SSE clients' history via /v1/rounds.
func New(cfg Config) (*Server, error) {
	if cfg.Stream == nil {
		return nil, fmt.Errorf("netserver: nil Stream")
	}
	if cfg.MaxFrameBytes == 0 {
		cfg.MaxFrameBytes = 1 << 20
	}
	if cfg.MaxFrameBytes < frameMinBody {
		return nil, fmt.Errorf("netserver: MaxFrameBytes %d below minimum frame body %d",
			cfg.MaxFrameBytes, frameMinBody)
	}
	if cfg.MaxBatchBytes == 0 {
		cfg.MaxBatchBytes = 8 << 20
	}
	if cfg.SSECapacity == 0 {
		cfg.SSECapacity = 16
	}
	if cfg.SSECapacity < 1 {
		return nil, fmt.Errorf("netserver: SSECapacity must be at least 1, got %d", cfg.SSECapacity)
	}
	s := &Server{
		stream:    cfg.Stream,
		maxFrame:  cfg.MaxFrameBytes,
		maxBatch:  cfg.MaxBatchBytes,
		hub:       newHub(cfg.SSECapacity),
		roundTick: cfg.RoundEvery,
		started:   time.Now(),
		conns:     map[net.Conn]struct{}{},
		done:      make(chan struct{}),
	}
	s.mux = s.newMux()
	s.wg.Add(1)
	go s.forwardRounds()
	if s.roundTick > 0 {
		s.wg.Add(1)
		go s.roundTimer()
	}
	return s, nil
}

// Stream returns the fronted collection service.
func (s *Server) Stream() *server.Stream { return s.stream }

// forwardRounds pumps every published RoundResult into the SSE hub until
// the stream or the server closes.
func (s *Server) forwardRounds() {
	defer s.wg.Done()
	sub := s.stream.Subscribe()
	for {
		select {
		case res, ok := <-sub:
			if !ok {
				s.hub.closeAll()
				return
			}
			s.hub.broadcast(res)
		case <-s.done:
			return
		}
	}
}

// roundTimer closes the round every RoundEvery while reports are pending.
func (s *Server) roundTimer() {
	defer s.wg.Done()
	t := time.NewTicker(s.roundTick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.stream.Pending() > 0 {
				s.stream.CloseRound()
			}
		case <-s.done:
			return
		}
	}
}

// ServeTCP accepts raw-frame connections on l until l or the server
// closes. It blocks; run it in a goroutine. The listener is closed by
// Server.Close.
func (s *Server) ServeTCP(l net.Listener) error {
	if !s.track(l) {
		l.Close()
		return fmt.Errorf("netserver: server closed")
	}
	for {
		nc, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil // closed by Close; not an error
			default:
				return err
			}
		}
		if !s.trackConn(nc) {
			nc.Close()
			return nil
		}
		s.tcpTotal.Add(1)
		s.tcpLive.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrackConn(nc)
			defer s.tcpLive.Add(-1)
			newTCPConn(s, nc).serve()
		}()
	}
}

// ServeHTTP serves the daemon's HTTP API on l until l or the server
// closes. It blocks; run it in a goroutine.
func (s *Server) ServeHTTP(l net.Listener) error {
	if !s.track(l) {
		l.Close()
		return fmt.Errorf("netserver: server closed")
	}
	srv := &http.Server{Handler: s.mux}
	err := srv.Serve(l)
	select {
	case <-s.done:
		return nil
	default:
		return err
	}
}

// Handler exposes the HTTP API for tests and embedding (httptest.Server,
// custom TLS fronting, an existing mux).
func (s *Server) Handler() http.Handler { return s.mux }

// track registers a listener; false when the server is already closed.
func (s *Server) track(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners = append(s.listeners, l)
	return true
}

func (s *Server) trackConn(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrackConn(nc net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, nc)
	nc.Close()
}

// Close stops the daemon: listeners and live connections close, the round
// timer and hub forwarding stop, and every SSE client's channel closes.
// The fronted Stream is left open — rounds already published stay
// readable and the owner may keep ingesting in-process. Close is
// idempotent and waits for connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	for _, l := range s.listeners {
		l.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.hub.closeAll()
	return nil
}
