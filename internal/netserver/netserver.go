// Package netserver is the networked collection daemon engine: it fronts
// a server.Stream with real sockets so "millions of users" means remote
// processes, not in-process function calls.
//
// Two ingestion fronts share one Stream:
//
//   - HTTP: JSON enrollment (POST /v1/enroll), binary batched report
//     ingestion (POST /v1/reports, the batch-record format of
//     AppendBatchRecord feeding Stream.IngestBatch), round control
//     (POST /v1/round/close), history and status reads, and a live
//     Server-Sent-Events round stream (GET /v1/stream) behind a hub with
//     per-client buffered channels and an explicit slow-subscriber drop
//     policy. GET / serves a minimal embedded dashboard.
//
//   - Raw TCP: length-prefixed frames (see frame.go) carrying the
//     existing wire formats — longitudinal.AppendRegistration for
//     enrollment, Report.AppendBinary payloads for reports — decoded in a
//     per-connection read loop whose steady state reuses one frame buffer
//     and tallies through Stream.Ingest at zero allocations per report,
//     so the PR 3/5 zero-alloc property survives the socket boundary.
//
// Estimates are bit-identical to ingesting the same payloads in-process:
// the daemon adds transport, never arithmetic (pinned by the parity tests
// in e2e_test.go).
package netserver

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/loloha-ldp/loloha/internal/server"
)

// Config parameterizes a daemon engine.
type Config struct {
	// Stream is the collection service to front. Required; the caller
	// retains ownership (the daemon never calls Stream.Close).
	Stream *server.Stream
	// MaxFrameBytes bounds a TCP frame body and an HTTP batch record's
	// payload; oversize frames kill the connection before any allocation
	// sized by the hostile length. Default 1 MiB.
	MaxFrameBytes int
	// MaxBatchBytes bounds an HTTP /v1/reports body. Default 8 MiB.
	MaxBatchBytes int
	// RoundEvery, when positive, closes the round on this period whenever
	// reports are pending (empty rounds are not published). Zero means
	// rounds close only via POST /v1/round/close or the owning process.
	RoundEvery time.Duration
	// SSECapacity is each SSE client's buffered round count; a client
	// whose buffer is full when a round is published drops that round
	// (the hub mirrors Stream's WithRoundCapacity drop-not-block policy).
	// Default 16.
	SSECapacity int
	// AcceptMerges makes this daemon a collector-tree root: merge frames
	// (TCP 0x05) and POST /v1/merge add leaf tallies into the stream's
	// open round. Off by default — a merge frame at a non-root is an
	// unknown frame and drops the connection.
	AcceptMerges bool
	// Upstream makes this daemon a collector-tree leaf: instead of merely
	// closing rounds, the round timer and POST /v1/round/close export each
	// round's merged tallies and ship them to the parent through this
	// client. The leaf still publishes its local RoundResult (its user
	// partition's estimates). A daemon may set both AcceptMerges and
	// Upstream — an interior node of a deeper tree.
	Upstream *MergeClient
}

// Server is the daemon engine: listeners, connection registry, SSE hub
// and round timer around one server.Stream. Create with New, attach
// listeners with ServeTCP/ServeHTTP (or mount Handler in a test server),
// stop with Close.
type Server struct {
	stream       *server.Stream
	maxFrame     int
	maxBatch     int
	hub          *hub
	mux          *http.ServeMux
	roundTick    time.Duration
	started      time.Time
	acceptMerges bool
	upstream     *MergeClient

	// Live counters, all monotonic except tcpLive.
	tcpTotal     atomic.Uint64
	tcpLive      atomic.Int64
	tcpReports   atomic.Uint64
	tcpRejected  atomic.Uint64
	httpBatches  atomic.Uint64
	httpReports  atomic.Uint64
	httpRejected atomic.Uint64
	mergeFrames  atomic.Uint64 // root: merge frames/requests applied
	mergeReports atomic.Uint64 // root: reports merged from leaves
	mergeBad     atomic.Uint64 // root: undecodable or mismatched merges
	shipped      atomic.Uint64 // leaf: rounds shipped upstream
	shipFailed   atomic.Uint64 // leaf: failed ships (tallies re-imported)

	mu        sync.Mutex
	listeners []net.Listener
	// tcpListeners is the raw-frame subset of listeners: Drain closes
	// these directly (stopping new connections) while the HTTP listeners
	// shut down gracefully through their http.Server.
	tcpListeners []net.Listener
	httpSrvs     []*http.Server
	conns        map[net.Conn]struct{}
	draining     bool
	closed       bool
	done         chan struct{}
	wg           sync.WaitGroup
	// connWg tracks TCP connection goroutines separately from the
	// engine's own (forwardRounds, roundTimer), so Drain can wait for
	// in-flight frames without deadlocking on goroutines that only exit
	// at Close.
	connWg sync.WaitGroup
}

// New returns an engine fronting cfg.Stream. The SSE hub subscribes to
// the stream immediately, so rounds closed before any listener is
// attached still reach later SSE clients' history via /v1/rounds.
func New(cfg Config) (*Server, error) {
	if cfg.Stream == nil {
		return nil, fmt.Errorf("netserver: nil Stream")
	}
	if cfg.MaxFrameBytes == 0 {
		cfg.MaxFrameBytes = 1 << 20
	}
	if cfg.MaxFrameBytes < frameMinBody {
		return nil, fmt.Errorf("netserver: MaxFrameBytes %d below minimum frame body %d",
			cfg.MaxFrameBytes, frameMinBody)
	}
	if cfg.MaxBatchBytes == 0 {
		cfg.MaxBatchBytes = 8 << 20
	}
	if cfg.SSECapacity == 0 {
		cfg.SSECapacity = 16
	}
	if cfg.SSECapacity < 1 {
		return nil, fmt.Errorf("netserver: SSECapacity must be at least 1, got %d", cfg.SSECapacity)
	}
	s := &Server{
		stream:       cfg.Stream,
		maxFrame:     cfg.MaxFrameBytes,
		maxBatch:     cfg.MaxBatchBytes,
		hub:          newHub(cfg.SSECapacity),
		roundTick:    cfg.RoundEvery,
		started:      time.Now(),
		acceptMerges: cfg.AcceptMerges,
		upstream:     cfg.Upstream,
		conns:        map[net.Conn]struct{}{},
		done:         make(chan struct{}),
	}
	s.mux = s.newMux()
	s.wg.Add(1)
	go s.forwardRounds()
	if s.roundTick > 0 {
		s.wg.Add(1)
		go s.roundTimer()
	}
	return s, nil
}

// Stream returns the fronted collection service.
func (s *Server) Stream() *server.Stream { return s.stream }

// forwardRounds pumps every published RoundResult into the SSE hub until
// the stream or the server closes.
func (s *Server) forwardRounds() {
	defer s.wg.Done()
	sub := s.stream.Subscribe()
	for {
		select {
		case res, ok := <-sub:
			if !ok {
				s.hub.closeAll()
				return
			}
			s.hub.broadcast(res)
		case <-s.done:
			return
		}
	}
}

// roundTimer closes the round every RoundEvery while reports are pending.
// A leaf (Config.Upstream) ships each closed round's tallies upstream
// instead of only publishing locally.
func (s *Server) roundTimer() {
	defer s.wg.Done()
	t := time.NewTicker(s.roundTick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if s.stream.Pending() > 0 {
				s.closeRound()
			}
		case <-s.done:
			return
		}
	}
}

// closeRound closes the stream's round through the daemon's role: a leaf
// exports the tallies and ships them upstream, everything else just
// closes. The returned error is the ship failure, if any; the local
// RoundResult is published either way.
func (s *Server) closeRound() (server.RoundResult, error) {
	if s.upstream == nil {
		return s.stream.CloseRound(), nil
	}
	res, snap, err := s.stream.CloseRoundExport()
	if err != nil {
		// The aggregator cannot export (an external protocol without the
		// snapshot contract): the round still closes.
		return s.stream.CloseRound(), err
	}
	if _, err := s.upstream.Send(snap); err != nil {
		// Failed ship: fold the tallies back into the now-open round so
		// the next successful ship carries them — they arrive late (in
		// the parent's later round) but are never lost. Snapshots are
		// not consumed by a failed Send, so the re-import is exact.
		s.shipFailed.Add(1)
		if _, mergeErr := s.stream.MergeRemote(snap); mergeErr != nil {
			return res, fmt.Errorf("netserver: ship failed (%w) and re-import failed (%v)", err, mergeErr)
		}
		return res, fmt.Errorf("netserver: shipping round %d upstream: %w", res.Round, err)
	}
	s.shipped.Add(1)
	return res, nil
}

// ServeTCP accepts raw-frame connections on l until l or the server
// closes. It blocks; run it in a goroutine. The listener is closed by
// Server.Close.
func (s *Server) ServeTCP(l net.Listener) error {
	if !s.track(l) {
		l.Close()
		return fmt.Errorf("netserver: server closed")
	}
	s.mu.Lock()
	s.tcpListeners = append(s.tcpListeners, l)
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil // closed by Close; not an error
			default:
				if s.isDraining() {
					return nil // listener closed by Drain; not an error
				}
				return err
			}
		}
		if !s.trackConn(nc) {
			nc.Close()
			return nil
		}
		s.tcpTotal.Add(1)
		s.tcpLive.Add(1)
		s.wg.Add(1)
		s.connWg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.connWg.Done()
			defer s.untrackConn(nc)
			defer s.tcpLive.Add(-1)
			newTCPConn(s, nc).serve()
		}()
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ServeHTTP serves the daemon's HTTP API on l until l or the server
// closes. It blocks; run it in a goroutine.
func (s *Server) ServeHTTP(l net.Listener) error {
	if !s.track(l) {
		l.Close()
		return fmt.Errorf("netserver: server closed")
	}
	srv := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.httpSrvs = append(s.httpSrvs, srv)
	s.mu.Unlock()
	err := srv.Serve(l)
	if err == http.ErrServerClosed {
		return nil // Drain shut it down gracefully
	}
	select {
	case <-s.done:
		return nil
	default:
		if s.isDraining() {
			return nil
		}
		return err
	}
}

// Handler exposes the HTTP API for tests and embedding (httptest.Server,
// custom TLS fronting, an existing mux).
func (s *Server) Handler() http.Handler { return s.mux }

// track registers a listener; false when the server is already closed.
func (s *Server) track(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners = append(s.listeners, l)
	return true
}

func (s *Server) trackConn(nc net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[nc] = struct{}{}
	return true
}

func (s *Server) untrackConn(nc net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, nc)
	nc.Close()
}

// Drain gracefully quiesces ingestion within the timeout: new
// connections stop (listeners close), in-flight HTTP requests finish
// (http.Server.Shutdown), and live TCP connections get until the
// deadline to be consumed — frames already buffered in a connection are
// read and applied, so a batch in flight when shutdown begins still
// tallies before the final snapshot, instead of being cut off mid-frame.
// A connection still open at the deadline is abandoned to Close.
//
// Drain does not stop the engine: call Close afterwards. The intended
// shutdown sequence of a durable daemon is Drain → Stream.Snapshot →
// Close, so the snapshot includes everything the sockets delivered.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	tcpLs := append([]net.Listener(nil), s.tcpListeners...)
	httpSrvs := append([]*http.Server(nil), s.httpSrvs...)
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for _, l := range tcpLs {
		l.Close()
	}
	// A read deadline lets each connection loop consume everything already
	// buffered and then exit on the timeout (or earlier, on the client's
	// EOF) instead of blocking in ReadFull forever.
	for _, nc := range conns {
		nc.SetReadDeadline(deadline)
	}
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	var err error
	for _, srv := range httpSrvs {
		if e := srv.Shutdown(ctx); e != nil && err == nil {
			err = fmt.Errorf("netserver: draining HTTP: %w", e)
		}
	}
	done := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Until(deadline)):
		err = fmt.Errorf("netserver: drain deadline passed with TCP connections still open")
	}
	return err
}

// Close stops the daemon: listeners and live connections close, the round
// timer and hub forwarding stop, and every SSE client's channel closes.
// The fronted Stream is left open — rounds already published stay
// readable and the owner may keep ingesting in-process. Close is
// idempotent and waits for connection goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	for _, l := range s.listeners {
		l.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.hub.closeAll()
	return nil
}
